#include <gtest/gtest.h>

#include "common/random.h"
#include "core/mapper.h"
#include "core/topk.h"
#include "test_util.h"

namespace gdim {
namespace {

using testing_util::RandomConnectedGraph;

TEST(RankByScoresTest, SortsAscendingWithIdTieBreak) {
  Ranking r = RankByScores({0.5, 0.1, 0.5, 0.0});
  ASSERT_EQ(r.size(), 4u);
  EXPECT_EQ(r[0].id, 3);
  EXPECT_EQ(r[1].id, 1);
  EXPECT_EQ(r[2].id, 0);  // ties broken by id
  EXPECT_EQ(r[3].id, 2);
}

TEST(TopKTest, TruncatesAndClamps) {
  Ranking r = RankByScores({0.3, 0.2, 0.1});
  EXPECT_EQ(TopK(r, 2).size(), 2u);
  EXPECT_EQ(TopK(r, 10).size(), 3u);
  EXPECT_EQ(TopK(r, 0).size(), 0u);
}

TEST(ExactRankingTest, SelfIsClosest) {
  Rng rng(55);
  GraphDatabase db;
  for (int i = 0; i < 6; ++i) {
    db.push_back(RandomConnectedGraph(6, 2, 3, 2, &rng));
  }
  // Query with db[2] itself: it must rank first with distance 0.
  Ranking r = ExactRanking(db[2], db);
  EXPECT_EQ(r[0].id, 2);
  EXPECT_DOUBLE_EQ(r[0].score, 0.0);
}

TEST(MappedRankingTest, HammingOrder) {
  std::vector<uint8_t> q = {1, 1, 0, 0};
  std::vector<std::vector<uint8_t>> db = {
      {1, 1, 0, 0},  // distance 0
      {1, 0, 0, 0},  // 1 bit
      {0, 0, 1, 1},  // 4 bits
      {1, 1, 1, 0},  // 1 bit
  };
  Ranking r = MappedRanking(q, db);
  EXPECT_EQ(r[0].id, 0);
  EXPECT_EQ(r[1].id, 1);  // ties (1 vs 3) broken by id
  EXPECT_EQ(r[2].id, 3);
  EXPECT_EQ(r[3].id, 2);
}

TEST(FeatureMapperTest, MapsAgainstFeatures) {
  // Features: single edge (0)-(0), single edge (0)-(1).
  Graph f0;
  f0.AddVertex(0);
  f0.AddVertex(0);
  f0.AddEdge(0, 1, 0);
  Graph f1;
  f1.AddVertex(0);
  f1.AddVertex(1);
  f1.AddEdge(0, 1, 0);
  FeatureMapper mapper({f0, f1});
  EXPECT_EQ(mapper.num_features(), 2);

  Graph g;  // path (0)-(0)-(1): contains both features
  g.AddVertex(0);
  g.AddVertex(0);
  g.AddVertex(1);
  g.AddEdge(0, 1, 0);
  g.AddEdge(1, 2, 0);
  std::vector<uint8_t> bits = mapper.Map(g);
  EXPECT_EQ(bits, (std::vector<uint8_t>{1, 1}));

  Graph h;  // single (0)-(1) edge: only f1
  h.AddVertex(0);
  h.AddVertex(1);
  h.AddEdge(0, 1, 0);
  EXPECT_EQ(mapper.Map(h), (std::vector<uint8_t>{0, 1}));
}

TEST(FeatureMapperTest, MapAllMatchesMap) {
  Rng rng(66);
  GraphDatabase features;
  for (int i = 0; i < 3; ++i) {
    features.push_back(RandomConnectedGraph(3, 0, 2, 2, &rng));
  }
  FeatureMapper mapper(features);
  GraphDatabase graphs;
  for (int i = 0; i < 5; ++i) {
    graphs.push_back(RandomConnectedGraph(6, 2, 2, 2, &rng));
  }
  auto all = mapper.MapAll(graphs);
  ASSERT_EQ(all.size(), 5u);
  for (size_t i = 0; i < graphs.size(); ++i) {
    EXPECT_EQ(all[i], mapper.Map(graphs[i]));
  }
}

}  // namespace
}  // namespace gdim
