// Runtime tests for the annotated synchronization layer (common/sync.h).
// The layer's main value is static — clang's -Wthread-safety turns the
// annotations into compile errors — but the wrappers still have runtime
// semantics worth pinning down, and running this binary under TSan checks
// that Mutex/MutexLock/CondVar establish the happens-before edges their
// std counterparts do.

#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/sync.h"

namespace gdim {
namespace {

TEST(SyncTest, MutexLockSerializesCriticalSections) {
  Mutex mu;
  int counter = 0;  // written only under mu
  std::vector<std::thread> threads;
  constexpr int kThreads = 8;
  constexpr int kIncrements = 1000;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&mu, &counter] {
      for (int i = 0; i < kIncrements; ++i) {
        MutexLock lock(&mu);
        ++counter;
      }
    });
  }
  for (std::thread& th : threads) th.join();
  MutexLock lock(&mu);
  EXPECT_EQ(counter, kThreads * kIncrements);
}

TEST(SyncTest, MutexLockReleasesAtEndOfScope) {
  Mutex mu;
  {
    MutexLock lock(&mu);
    EXPECT_FALSE(mu.TryLock());  // held by the scoped lock
  }
  EXPECT_TRUE(mu.TryLock());  // released when the scope closed
  mu.Unlock();
}

TEST(SyncTest, TryLockContendsCorrectly) {
  Mutex mu;
  ASSERT_TRUE(mu.TryLock());
  std::thread other([&mu] { EXPECT_FALSE(mu.TryLock()); });
  other.join();
  mu.Unlock();
  EXPECT_TRUE(mu.TryLock());
  mu.Unlock();
}

TEST(SyncTest, CondVarWaitObservesPredicateWrittenUnderLock) {
  // The canonical project wait shape: an explicit while loop over guarded
  // state (not a predicate lambda — the analysis checks lambdas as separate
  // functions, so the loop form is what all call sites use).
  Mutex mu;
  CondVar cv;
  bool ready = false;
  int payload = 0;
  std::thread producer([&] {
    MutexLock lock(&mu);
    payload = 42;
    ready = true;
    cv.NotifyOne();
  });
  {
    MutexLock lock(&mu);
    while (!ready) cv.Wait(&mu);
    // Wait() reacquired the mutex: the guarded payload is safe to read and
    // must carry the producer's write.
    EXPECT_EQ(payload, 42);
  }
  producer.join();
}

TEST(SyncTest, CondVarNotifyAllWakesEveryWaiter) {
  Mutex mu;
  CondVar cv;
  bool go = false;
  int awake = 0;
  constexpr int kWaiters = 4;
  std::vector<std::thread> waiters;
  waiters.reserve(kWaiters);
  for (int t = 0; t < kWaiters; ++t) {
    waiters.emplace_back([&] {
      MutexLock lock(&mu);
      while (!go) cv.Wait(&mu);
      ++awake;
    });
  }
  {
    MutexLock lock(&mu);
    go = true;
    cv.NotifyAll();
  }
  for (std::thread& th : waiters) th.join();
  MutexLock lock(&mu);
  EXPECT_EQ(awake, kWaiters);
}

TEST(SyncTest, CondVarWaitReleasesMutexWhileBlocked) {
  // If Wait() failed to release the mutex, the main thread could never
  // acquire it to flip the predicate and this test would deadlock (caught
  // by the ctest timeout rather than an assertion).
  Mutex mu;
  CondVar cv;
  bool done = false;
  std::thread waiter([&] {
    MutexLock lock(&mu);
    while (!done) cv.Wait(&mu);
  });
  for (;;) {
    MutexLock lock(&mu);
    // Reaching here at all proves the waiter is not holding mu across its
    // block; flip the predicate once we know the lock is obtainable.
    done = true;
    cv.NotifyOne();
    break;
  }
  waiter.join();
}

// A small self-locking fixture in the project idiom: public entry points
// EXCLUDE the mutex, guarded state lives behind it. Exercises the same
// boundary shape BatchExecutor/ResultCache/NetServer use.
class Turnstile {
 public:
  void Pass() GDIM_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    ++count_;
    cv_.NotifyAll();
  }

  void WaitForAtLeast(int n) GDIM_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    while (count_ < n) cv_.Wait(&mu_);
  }

  int count() const GDIM_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return count_;
  }

 private:
  mutable Mutex mu_;
  CondVar cv_;
  int count_ GDIM_GUARDED_BY(mu_) = 0;
};

TEST(SyncTest, ExcludesBoundaryComposesAcrossThreads) {
  Turnstile turnstile;
  constexpr int kThreads = 6;
  constexpr int kPasses = 50;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&turnstile] {
      for (int i = 0; i < kPasses; ++i) turnstile.Pass();
    });
  }
  turnstile.WaitForAtLeast(kThreads * kPasses);
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(turnstile.count(), kThreads * kPasses);
}

TEST(SyncTest, ThreadRoleIsAZeroCostCapability) {
  // Roles are purely static: acquiring, asserting, and releasing are no-ops
  // that must be safe to nest and to copy through (role-carrying engines
  // keep value semantics).
  ThreadRole role;
  role.Acquire();
  role.Assert();  // held: acquired on the line above
  role.Release();
  ThreadRole copy = role;  // capability identity is the naming expression
  {
    ScopedRole held(&copy);
    copy.Assert();  // held: by the scoped role above
  }
  {
    ScopedRole again(&copy);  // reacquirable after scoped release
  }
  SUCCEED();
}

}  // namespace
}  // namespace gdim
