#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/logging.h"
#include "common/random.h"
#include "common/sync.h"
#include "core/index.h"
#include "core/index_io.h"
#include "core/topk.h"
#include "datasets/chemgen.h"
#include "graph/graph_io.h"
#include "serve/query_engine.h"

namespace gdim {
namespace {

PersistedIndex SmallIndex() {
  PersistedIndex p;
  Graph f;
  f.AddVertex(1);
  f.AddVertex(2);
  f.AddEdge(0, 1, 3);
  p.features.push_back(f);
  Graph f2;
  f2.AddVertex(0);
  p.features.push_back(f2);
  p.db_bits = {{1, 0}, {0, 1}, {1, 1}};
  return p;
}

TEST(IndexIoTest, RoundTrip) {
  PersistedIndex p = SmallIndex();
  std::string path = ::testing::TempDir() + "/gdim_index_test.idx";
  ASSERT_TRUE(WriteIndexFile(p, path).ok());
  Result<PersistedIndex> back = ReadIndexFile(path);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ASSERT_EQ(back->features.size(), 2u);
  EXPECT_EQ(back->features[0], p.features[0]);
  EXPECT_EQ(back->features[1], p.features[1]);
  EXPECT_EQ(back->db_bits, p.db_bits);
}

TEST(IndexIoTest, RejectsBadMagic) {
  std::string path = ::testing::TempDir() + "/gdim_bad_magic.idx";
  {
    std::ofstream out(path);
    out << "not-an-index\n";
  }
  Result<PersistedIndex> r = ReadIndexFile(path);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
}

TEST(IndexIoTest, RejectsWidthMismatch) {
  PersistedIndex p = SmallIndex();
  p.db_bits.push_back({1});  // ragged row
  std::string path = ::testing::TempDir() + "/gdim_ragged.idx";
  EXPECT_FALSE(WriteIndexFile(p, path).ok());
}

TEST(IndexIoTest, RejectsCorruptVectorRow) {
  PersistedIndex p = SmallIndex();
  std::string path = ::testing::TempDir() + "/gdim_corrupt.idx";
  ASSERT_TRUE(WriteIndexFile(p, path).ok());
  // Append garbage by truncating a row: rewrite with a broken line.
  std::string text;
  {
    std::ifstream in(path);
    std::stringstream ss;
    ss << in.rdbuf();
    text = ss.str();
  }
  size_t pos = text.rfind("11");
  text.replace(pos, 2, "1x");
  {
    std::ofstream out(path);
    out << text;
  }
  EXPECT_FALSE(ReadIndexFile(path).ok());
}

TEST(IndexIoTest, MissingFile) {
  EXPECT_FALSE(ReadIndexFile("/no/such/dir/x.idx").ok());
  EXPECT_FALSE(WriteIndexFile(SmallIndex(), "/no/such/dir/x.idx").ok());
}

std::string Slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

void Spit(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary);
  out << text;
}

TEST(IndexIoTest, ReadsCrlfTextIndexes) {
  PersistedIndex p = SmallIndex();
  const std::string path = ::testing::TempDir() + "/gdim_crlf.idx";
  ASSERT_TRUE(WriteIndexFile(p, path).ok());
  // Simulate a Windows checkout / CRLF transfer of the whole file — the
  // magic line, the feature graph lines, and every vector row.
  std::string text = Slurp(path);
  std::string crlf;
  for (char c : text) {
    if (c == '\n') crlf += '\r';
    crlf += c;
  }
  Spit(path, crlf);
  Result<PersistedIndex> back = ReadIndexFile(path);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->features.size(), p.features.size());
  EXPECT_EQ(back->features[0], p.features[0]);
  EXPECT_EQ(back->db_bits, p.db_bits);
}

/// A p-dimensional index with single-vertex features and random vectors —
/// arbitrary shapes for the round-trip property tests.
PersistedIndex RandomIndex(int n, int p, Rng* rng) {
  PersistedIndex index;
  for (int r = 0; r < p; ++r) {
    Graph f;
    f.AddVertex(static_cast<LabelId>(r));
    index.features.push_back(f);
  }
  index.db_bits = RandomBitRows(n, p, 0.35, rng);
  return index;
}

TEST(IndexIoTest, AllFormatsRoundTripAcrossShapes) {
  Rng rng(17);
  // Widths straddle word boundaries; n = 0 exercises empty databases.
  for (int p : {0, 1, 63, 64, 65, 130}) {
    for (int n : {0, 1, 17}) {
      const PersistedIndex index = RandomIndex(n, p, &rng);
      for (IndexFormat format :
           {IndexFormat::kV1Text, IndexFormat::kV2Binary,
            IndexFormat::kV3Sectioned}) {
        const std::string path = ::testing::TempDir() + "/gdim_rt_" +
                                 std::to_string(p) + "_" + std::to_string(n) +
                                 (format == IndexFormat::kV1Text ? ".idx"
                                                                 : ".idx2");
        ASSERT_TRUE(WriteIndexFile(index, path, format).ok());
        Result<PersistedIndex> back = ReadIndexFile(path);
        ASSERT_TRUE(back.ok())
            << "p=" << p << " n=" << n << ": " << back.status().ToString();
        EXPECT_EQ(back->features, index.features);
        EXPECT_EQ(back->db_bits, index.db_bits) << "p=" << p << " n=" << n;
      }
    }
  }
}

TEST(IndexIoTest, ConvertV1ToV2AndBackIsLossless) {
  Rng rng(23);
  const PersistedIndex index = RandomIndex(12, 70, &rng);
  const std::string v1 = ::testing::TempDir() + "/gdim_conv.idx";
  const std::string v2 = ::testing::TempDir() + "/gdim_conv.idx2";
  const std::string v1_again = ::testing::TempDir() + "/gdim_conv2.idx";
  ASSERT_TRUE(WriteIndexFile(index, v1, IndexFormat::kV1Text).ok());
  // v1 -> v2 (what `gdim_tool convert` does).
  Result<PersistedIndex> from_v1 = ReadIndexFile(v1);
  ASSERT_TRUE(from_v1.ok());
  ASSERT_TRUE(WriteIndexFile(*from_v1, v2, IndexFormat::kV2Binary).ok());
  // v2 -> v1 again.
  Result<PersistedIndex> from_v2 = ReadIndexFile(v2);
  ASSERT_TRUE(from_v2.ok());
  ASSERT_TRUE(WriteIndexFile(*from_v2, v1_again, IndexFormat::kV1Text).ok());
  EXPECT_EQ(from_v2->db_bits, index.db_bits);
  EXPECT_EQ(from_v2->features, index.features);
  // The two text files are byte-identical: nothing was lost in the middle.
  EXPECT_EQ(Slurp(v1), Slurp(v1_again));
}

TEST(IndexIoTest, V2RejectsTruncationAndTrailingGarbage) {
  Rng rng(29);
  const PersistedIndex index = RandomIndex(8, 65, &rng);
  const std::string path = ::testing::TempDir() + "/gdim_v2_corrupt.idx2";
  ASSERT_TRUE(WriteIndexFile(index, path, IndexFormat::kV2Binary).ok());
  const std::string good = Slurp(path);

  Spit(path, good.substr(0, good.size() - 5));  // truncated word block
  EXPECT_EQ(ReadIndexFile(path).status().code(), StatusCode::kParseError);

  Spit(path, good + "junk");  // trailing garbage
  EXPECT_EQ(ReadIndexFile(path).status().code(), StatusCode::kParseError);

  std::string flipped = good;
  flipped[9] ^= 0x40;  // header version field
  Spit(path, flipped);
  EXPECT_EQ(ReadIndexFile(path).status().code(), StatusCode::kParseError);

  flipped = good;
  flipped[13] ^= 0xFF;  // endianness tag
  Spit(path, flipped);
  EXPECT_EQ(ReadIndexFile(path).status().code(), StatusCode::kParseError);

  // Hostile header counts must come back as a Status, not a crash: a
  // feature-section length far beyond the file, and a huge row count on a
  // p = 0 index whose rows occupy no bytes (so the size check can't see it).
  flipped = good;
  flipped[30] = 0x7F;  // feature_bytes (u64 at offset 24) -> ~2^55
  Spit(path, flipped);
  EXPECT_EQ(ReadIndexFile(path).status().code(), StatusCode::kParseError);

  const std::string zero_width_prefix =
      good.substr(0, 16) +            // magic + version + tag
      std::string(8, '\0') +          // p = 0
      std::string(8, '\0');           // feature_bytes = 0
  std::string degenerate = zero_width_prefix;
  degenerate.append(7, '\0');
  degenerate += '\x10';               // n = 2^60 (beyond int range)
  degenerate.append(8, '\0');         // words_per_row = 0
  degenerate.append(8, '\0');         // next_id = 0
  Spit(path, degenerate);
  EXPECT_EQ(ReadIndexFile(path).status().code(), StatusCode::kParseError);

  // n = 2^30 fits in int and rows occupy no file bytes at p = 0, but each
  // row still owes 8 id-block bytes, so the size check rejects the count
  // before any allocation.
  const std::string big_n = std::string(3, '\0') + '\x40' +  // 2^30, LE u64
                            std::string(4, '\0');
  degenerate = zero_width_prefix;
  degenerate += big_n;                // n = 2^30
  degenerate.append(8, '\0');         // words_per_row = 0
  degenerate += big_n;                // next_id = 2^30 (valid: >= n)
  Spit(path, degenerate);
  EXPECT_EQ(ReadIndexFile(path).status().code(), StatusCode::kParseError);
}

TEST(IndexIoTest, ParseIndexFormatNames) {
  ASSERT_TRUE(ParseIndexFormat("v1").ok());
  EXPECT_EQ(*ParseIndexFormat("v1"), IndexFormat::kV1Text);
  ASSERT_TRUE(ParseIndexFormat("v2").ok());
  EXPECT_EQ(*ParseIndexFormat("v2"), IndexFormat::kV2Binary);
  ASSERT_TRUE(ParseIndexFormat("v3").ok());
  EXPECT_EQ(*ParseIndexFormat("v3"), IndexFormat::kV3Sectioned);
  EXPECT_EQ(ParseIndexFormat("v4").status().code(),
            StatusCode::kInvalidArgument);
}

TEST(IndexIoTest, V2PersistsCustomIdsAndRejectsBadOnes) {
  Rng rng(37);
  PersistedIndex index = RandomIndex(4, 9, &rng);
  index.ids = {3, 7, 9, 40};
  const std::string path = ::testing::TempDir() + "/gdim_ids.idx2";
  ASSERT_TRUE(WriteIndexFile(index, path, IndexFormat::kV2Binary).ok());
  Result<PersistedIndex> back = ReadIndexFile(path);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->ids, index.ids);
  EXPECT_EQ(back->db_bits, index.db_bits);

  // An engine over the reloaded index serves those ids and keeps numbering
  // after them.
  auto engine = QueryEngine::FromIndex(std::move(back).value());
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  // This test body is the engine's single writer.
  ScopedRole writer(&engine->writer_role());
  EXPECT_EQ(engine->alive_ids(), index.ids);
  ASSERT_TRUE(engine->Remove(7).ok());
  auto inserted = engine->InsertMapped(std::vector<uint8_t>(9, 1));
  ASSERT_TRUE(inserted.ok());
  EXPECT_EQ(*inserted, 41);

  // The id counter survives snapshot/reload: removing the highest id (41)
  // and reloading must not re-issue it to the next insert.
  ASSERT_TRUE(engine->Remove(41).ok());
  const std::string snap = ::testing::TempDir() + "/gdim_ids_snap.idx2";
  ASSERT_TRUE(engine->Snapshot(snap).ok());
  auto reloaded = QueryEngine::FromIndex(
      std::move(ReadIndexFile(snap)).value());
  ASSERT_TRUE(reloaded.ok());
  ScopedRole reloaded_writer(&reloaded->writer_role());
  auto after_reload = reloaded->InsertMapped(std::vector<uint8_t>(9, 0));
  ASSERT_TRUE(after_reload.ok());
  EXPECT_EQ(*after_reload, 42);  // not a resurrected 41

  // Writers, readers, and FromIndex all reject non-ascending or mis-sized
  // id lists.
  index.ids = {3, 3, 9, 40};
  EXPECT_EQ(WriteIndexFile(index, path, IndexFormat::kV2Binary).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(QueryEngine::FromIndex(index).status().code(),
            StatusCode::kInvalidArgument);
  index.ids = {3, 7, 9};
  EXPECT_EQ(WriteIndexFile(index, path, IndexFormat::kV2Binary).code(),
            StatusCode::kInvalidArgument);
  index.ids = {3, 7, 9, 40};
  PersistedIndex scrambled = index;
  scrambled.ids = {3, 7, 9, 40};
  ASSERT_TRUE(WriteIndexFile(scrambled, path, IndexFormat::kV2Binary).ok());
  std::string bytes = Slurp(path);
  // The id block is the last 4 u64s; make it non-ascending in place.
  bytes[bytes.size() - 8] = 0;  // last id 40 -> 0
  Spit(path, bytes);
  EXPECT_EQ(ReadIndexFile(path).status().code(), StatusCode::kParseError);
}

TEST(IndexIoTest, MutatedEngineSnapshotReloadsEquivalently) {
  Rng rng(31);
  const PersistedIndex index = RandomIndex(30, 6, &rng);
  auto engine = QueryEngine::FromIndex(index);
  ASSERT_TRUE(engine.ok());
  // This test body is the engine's single writer.
  ScopedRole writer(&engine->writer_role());

  // Churn: remove a few base rows, insert fresh fingerprints, compact,
  // then keep a tombstone and a delta row live at snapshot time.
  for (int id : {2, 7, 21}) ASSERT_TRUE(engine->Remove(id).ok());
  for (const auto& bits : RandomBitRows(5, 6, 0.35, &rng)) {
    ASSERT_TRUE(engine->InsertMapped(bits).ok());
  }
  engine->Compact();
  ASSERT_TRUE(engine->Remove(30).ok());  // a post-compaction removal
  for (const auto& bits : RandomBitRows(2, 6, 0.35, &rng)) {
    ASSERT_TRUE(engine->InsertMapped(bits).ok());
  }

  for (IndexFormat format : {IndexFormat::kV1Text, IndexFormat::kV2Binary,
                             IndexFormat::kV3Sectioned}) {
    const std::string path =
        ::testing::TempDir() +
        (format == IndexFormat::kV1Text ? "/gdim_snap.idx"
                                        : "/gdim_snap.idx2");
    ASSERT_TRUE(engine->Snapshot(path, format).ok());
    Result<PersistedIndex> back = ReadIndexFile(path);
    ASSERT_TRUE(back.ok()) << back.status().ToString();
    // The snapshot is exactly the live database in id order; v2/v3 also
    // carry the external ids, v1 renumbers positionally.
    EXPECT_EQ(back->db_bits, engine->ToPersistedIndex().db_bits);
    const std::vector<int> live_ids = engine->alive_ids();
    const bool keeps_ids = format != IndexFormat::kV1Text;
    if (keeps_ids) {
      EXPECT_EQ(back->ids, live_ids);
    } else {
      EXPECT_TRUE(back->ids.empty());
    }
    auto reloaded = QueryEngine::FromIndex(std::move(back).value());
    ASSERT_TRUE(reloaded.ok());
    ScopedRole reloaded_writer(&reloaded->writer_role());
    EXPECT_EQ(reloaded->num_graphs(), engine->num_graphs());
    Graph probe;  // vertex labels 0..2 = features 0..2
    probe.AddVertex(0);
    probe.AddVertex(1);
    probe.AddVertex(2);
    // A v2-reloaded engine answers bit-identically with the same external
    // ids; a v1 reload answers identically after mapping its positional
    // ids through the mutated engine's live id list.
    Ranking expected = reloaded->Query(probe, {.k = 10});
    if (!keeps_ids) {
      for (RankedResult& r : expected) {
        r.id = live_ids[static_cast<size_t>(r.id)];
      }
    }
    EXPECT_EQ(engine->Query(probe, {.k = 10}), expected);
    if (keeps_ids) {
      EXPECT_EQ(reloaded->alive_ids(), live_ids);
      // Removing by external id hits the same graph in both engines.
      ASSERT_TRUE(reloaded->Remove(live_ids[1]).ok());
      ASSERT_TRUE(engine->Remove(live_ids[1]).ok());
      EXPECT_EQ(engine->Query(probe, {.k = 10}),
                reloaded->Query(probe, {.k = 10}));
    }
  }
}

TEST(IndexIoTest, PackedReaderMatchesByteReaderForAllFormats) {
  Rng rng(41);
  for (int p : {0, 1, 63, 64, 65, 130}) {
    for (int n : {0, 1, 17}) {
      PersistedIndex index = RandomIndex(n, p, &rng);
      if (n > 0) {
        index.ids.resize(static_cast<size_t>(n));
        for (int i = 0; i < n; ++i) {
          index.ids[static_cast<size_t>(i)] = 2 * i + 1;  // sparse ids
        }
      }
      for (IndexFormat format :
           {IndexFormat::kV1Text, IndexFormat::kV2Binary,
            IndexFormat::kV3Sectioned}) {
        const std::string path = ::testing::TempDir() + "/gdim_packed_rt" +
                                 (format == IndexFormat::kV1Text ? ".idx"
                                                                 : ".idx2");
        ASSERT_TRUE(WriteIndexFile(index, path, format).ok());
        Result<PackedIndex> packed = ReadIndexFilePacked(path);
        ASSERT_TRUE(packed.ok())
            << "p=" << p << " n=" << n << ": " << packed.status().ToString();
        Result<PersistedIndex> bytes = ReadIndexFile(path);
        ASSERT_TRUE(bytes.ok());
        EXPECT_EQ(packed->features, bytes->features);
        EXPECT_EQ(packed->ids, bytes->ids);
        EXPECT_EQ(packed->next_id, bytes->next_id);
        ASSERT_EQ(packed->rows.num_rows(), n);
        ASSERT_EQ(packed->rows.num_bits(), p);
        for (int i = 0; i < n; ++i) {
          EXPECT_EQ(packed->rows.UnpackRow(i),
                    bytes->db_bits[static_cast<size_t>(i)])
              << "p=" << p << " row=" << i;
        }
      }
    }
  }
}

TEST(IndexIoTest, PackedReaderMasksHostilePaddingBits) {
  // p = 10 leaves 54 padding bits per word; a hostile writer can set them,
  // and the direct word-adopting load path must not let them poison the
  // popcount distances.
  const int p = 10;
  Rng rng(43);
  PersistedIndex meta = RandomIndex(3, p, &rng);
  const std::vector<uint64_t> dirty_rows = {
      0x00000000000003FFULL | 0xFFFFFFFFFFFFFC00ULL,  // all 10 bits + junk
      0x0000000000000001ULL | 0xABCDEF0000000C00ULL,  // bit 0 + junk
      0x0000000000000000ULL | 0xFFFFFFFFFFFFFC00ULL,  // no bits + junk
  };
  const std::string path = ::testing::TempDir() + "/gdim_dirty_pad.idx2";
  ASSERT_TRUE(WriteIndexFileV2Words(
                  meta.features, 3, 1,
                  [&](uint64_t i) { return &dirty_rows[i]; }, {}, -1, path)
                  .ok());
  Result<PackedIndex> packed = ReadIndexFilePacked(path);
  ASSERT_TRUE(packed.ok()) << packed.status().ToString();
  EXPECT_EQ(packed->rows.UnpackRow(0), std::vector<uint8_t>(p, 1));
  std::vector<uint8_t> bit0(p, 0);
  bit0[0] = 1;
  EXPECT_EQ(packed->rows.UnpackRow(1), bit0);
  EXPECT_EQ(packed->rows.UnpackRow(2), std::vector<uint8_t>(p, 0));
  // Distances see only the real bits: an all-ones query is 0 away from row
  // 0 and p-away from row 2 — junk would inflate the popcount.
  const std::vector<uint64_t> query =
      packed->rows.PackQuery(std::vector<uint8_t>(p, 1));
  EXPECT_EQ(packed->rows.HammingDistance(query, 0), 0);
  EXPECT_EQ(packed->rows.HammingDistance(query, 1), p - 1);
  EXPECT_EQ(packed->rows.HammingDistance(query, 2), p);
}

TEST(IndexIoTest, OpenServesIdenticallyThroughThePackedPath) {
  Rng rng(47);
  PersistedIndex index = RandomIndex(25, 70, &rng);
  const std::string path = ::testing::TempDir() + "/gdim_packed_open.idx2";
  ASSERT_TRUE(WriteIndexFile(index, path, IndexFormat::kV2Binary).ok());
  // Open() loads v2 through ReadIndexFilePacked (block read, no byte
  // detour); it must serve bit-identically to the byte-path engine.
  auto packed_engine = QueryEngine::Open(path);
  ASSERT_TRUE(packed_engine.ok()) << packed_engine.status().ToString();
  auto byte_engine = QueryEngine::FromIndex(index);
  ASSERT_TRUE(byte_engine.ok());
  // This test body is both engines' single writer.
  ScopedRole packed_writer(&packed_engine->writer_role());
  ScopedRole byte_writer(&byte_engine->writer_role());
  EXPECT_EQ(packed_engine->num_graphs(), 25);
  for (const auto& probe_bits : RandomBitRows(6, 70, 0.35, &rng)) {
    EXPECT_EQ(packed_engine->QueryMapped(probe_bits, {.k = 8}),
              byte_engine->QueryMapped(probe_bits, {.k = 8}));
  }
  // Mutations on a packed-loaded engine behave identically too.
  ASSERT_TRUE(packed_engine->Remove(3).ok());
  ASSERT_TRUE(byte_engine->Remove(3).ok());
  auto a = packed_engine->InsertMapped(RandomBitRows(1, 70, 0.5, &rng)[0]);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(*a, 25);
  packed_engine->Compact();
  EXPECT_EQ(packed_engine->num_graphs(), 25);
}

// ------------------------------------------------------------------ v3 --

std::string U64(uint64_t v) {
  return std::string(reinterpret_cast<const char*>(&v), 8);
}

/// One framed v3 section: 4-byte tag + u64 length + payload.
std::string Section(const char* tag, const std::string& payload) {
  return std::string(tag, 4) + U64(payload.size()) + payload;
}

/// A 4-row, 9-bit index with sparse external ids — the shared corpus for
/// the v3 section tests (wpc = 1 keeps handcrafted IVFX payloads short).
PersistedIndex V3Corpus() {
  Rng rng(53);
  PersistedIndex index = RandomIndex(4, 9, &rng);
  index.ids = {3, 7, 9, 40};
  return index;
}

/// The corpus written as a DIMS-only v3 file, returned as raw bytes; the
/// fuzz tests splice hostile sections onto it.
std::string V3BaseBytes() {
  const std::string path = ::testing::TempDir() + "/gdim_v3_base.idx2";
  GDIM_CHECK(
      WriteIndexFile(V3Corpus(), path, IndexFormat::kV3Sectioned).ok());
  return Slurp(path);
}

/// A valid IVFX payload for V3Corpus: two buckets covering {3,7} and
/// {9,40}.
std::string GoodIvfxPayload() {
  return U64(2) + U64(9) + U64(1) +              // buckets, num_bits, wpc
         U64(0x21) + U64(2) + U64(3) + U64(7) +  // centroid, count, ids
         U64(0x42) + U64(2) + U64(9) + U64(40);
}

/// A valid STOR payload for V3Corpus: one single-vertex graph per row.
std::string GoodStorPayload() {
  GraphDatabase graphs;
  for (int i = 0; i < 4; ++i) {
    Graph g;
    g.AddVertex(static_cast<LabelId>(i));
    graphs.push_back(g);
  }
  std::ostringstream text;
  WriteGraphStream(graphs, text);
  const std::string str = text.str();
  return U64(4) + U64(3) + U64(7) + U64(9) + U64(40) + U64(str.size()) + str;
}

StatusCode ReadCode(const std::string& path, const std::string& bytes) {
  Spit(path, bytes);
  return ReadIndexFilePacked(path).status().code();
}

TEST(IndexIoTest, V3RoundTripCarriesSections) {
  const PersistedIndex index = V3Corpus();
  const PackedBitMatrix packed = PackedBitMatrix::FromRows(index.db_bits, 9);

  PersistedMeta meta;
  meta.generation = 5;
  meta.epoch = 77;
  PersistedIvf ivf;
  ivf.num_bits = 9;
  ivf.buckets.push_back({{0x21}, {3, 7}});
  ivf.buckets.push_back({{0x42}, {9, 40}});
  GraphDatabase store_graphs;
  for (int i = 0; i < 4; ++i) {
    Graph g;
    g.AddVertex(static_cast<LabelId>(i));
    store_graphs.push_back(g);
  }
  V3Sections sections;
  sections.meta = &meta;
  sections.store_ids = &index.ids;
  sections.store_graphs = &store_graphs;
  sections.ivf = &ivf;

  const std::string path = ::testing::TempDir() + "/gdim_v3_full.idx2";
  ASSERT_TRUE(WriteIndexFileV3Words(
                  index.features, 4, 1,
                  [&](uint64_t i) { return packed.row(static_cast<int>(i)); },
                  index.ids, -1, sections, path)
                  .ok());

  Result<PackedIndex> back = ReadIndexFilePacked(path);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->ids, index.ids);
  EXPECT_EQ(back->next_id, 41);
  ASSERT_TRUE(back->meta.has_value());
  EXPECT_EQ(back->meta->generation, 5u);
  EXPECT_EQ(back->meta->epoch, 77u);
  ASSERT_TRUE(back->store.has_value());
  EXPECT_EQ(back->store->ids, index.ids);
  ASSERT_EQ(back->store->graphs.size(), 4u);
  EXPECT_EQ(back->store->graphs[2], store_graphs[2]);
  ASSERT_TRUE(back->ivf.has_value());
  EXPECT_EQ(back->ivf->num_bits, 9);
  ASSERT_EQ(back->ivf->buckets.size(), 2u);
  EXPECT_EQ(back->ivf->buckets[0].centroid_words, std::vector<uint64_t>{0x21});
  EXPECT_EQ(back->ivf->buckets[0].ids, (std::vector<int>{3, 7}));
  EXPECT_EQ(back->ivf->buckets[1].ids, (std::vector<int>{9, 40}));

  // An engine opened from the file adopts the persisted epoch, and the
  // byte-view reader still accepts the file (sections validated, dropped).
  auto engine = QueryEngine::Open(path);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  EXPECT_EQ(engine->epoch(), 77u);
  EXPECT_EQ(engine->ivf_buckets(), 2);
  ASSERT_TRUE(ReadIndexFile(path).ok());
}

TEST(IndexIoTest, V3WriterMirrorsReaderValidation) {
  const PersistedIndex index = V3Corpus();
  const PackedBitMatrix packed = PackedBitMatrix::FromRows(index.db_bits, 9);
  const auto row_words = [&](uint64_t i) {
    return packed.row(static_cast<int>(i));
  };
  const std::string path = ::testing::TempDir() + "/gdim_v3_bad_write.idx2";
  const auto write = [&](const V3Sections& sections) {
    return WriteIndexFileV3Words(index.features, 4, 1, row_words, index.ids,
                                 -1, sections, path);
  };

  // Store ids and graphs must come as a pair.
  V3Sections lone_ids;
  lone_ids.store_ids = &index.ids;
  EXPECT_EQ(write(lone_ids).code(), StatusCode::kInvalidArgument);

  // Store row count must match the index.
  GraphDatabase three_graphs(3);
  std::vector<int> three_ids = {3, 7, 9};
  V3Sections short_store;
  short_store.store_ids = &three_ids;
  short_store.store_graphs = &three_graphs;
  EXPECT_EQ(write(short_store).code(), StatusCode::kInvalidArgument);

  // IVF postings must cover every id exactly once, with matching width.
  PersistedIvf ivf;
  ivf.num_bits = 9;
  ivf.buckets.push_back({{0x21}, {3, 7}});
  V3Sections uncovered;
  uncovered.ivf = &ivf;
  EXPECT_EQ(write(uncovered).code(), StatusCode::kInvalidArgument);

  ivf.buckets.push_back({{0x42}, {9, 40, 41}});  // 41 is not a row
  EXPECT_EQ(write(uncovered).code(), StatusCode::kInvalidArgument);

  ivf.buckets[1] = {{0x42}, {9, 40}};
  ivf.num_bits = 8;
  EXPECT_EQ(write(uncovered).code(), StatusCode::kInvalidArgument);

  ivf.num_bits = 9;
  ivf.buckets.push_back({{0x13}, {}});  // empty bucket
  EXPECT_EQ(write(uncovered).code(), StatusCode::kInvalidArgument);
}

TEST(IndexIoTest, V3RejectsHostileSectionFraming) {
  const std::string base = V3BaseBytes();
  const std::string header = base.substr(0, 16);  // magic + version + tag
  const std::string path = ::testing::TempDir() + "/gdim_v3_framing.idx2";

  // A header with no sections at all: DIMS is required.
  EXPECT_EQ(ReadCode(path, header), StatusCode::kParseError);

  // Stray bytes too short for a section header.
  EXPECT_EQ(ReadCode(path, base + "ME"), StatusCode::kParseError);
  EXPECT_EQ(ReadCode(path, base + std::string("META") + U64(16).substr(0, 3)),
            StatusCode::kParseError);

  // A section claiming more payload than the file holds.
  EXPECT_EQ(ReadCode(path, base + std::string("META") + U64(1000)),
            StatusCode::kParseError);

  // Unknown tags are rejected, not skipped: a snapshot section the reader
  // does not understand means state it would silently fail to restore.
  EXPECT_EQ(ReadCode(path, base + Section("ZZZZ", "")),
            StatusCode::kParseError);
  EXPECT_EQ(ReadCode(path, base + Section("DIM\x01", "")),
            StatusCode::kParseError);

  // Duplicate sections: a second DIMS (spliced verbatim) and a second META.
  const std::string dims_section = base.substr(16);
  EXPECT_EQ(ReadCode(path, base + dims_section), StatusCode::kParseError);
  const std::string meta_section = Section("META", U64(1) + U64(2));
  EXPECT_EQ(ReadCode(path, base + meta_section + meta_section),
            StatusCode::kParseError);

  // Sections before DIMS have nothing to validate against.
  EXPECT_EQ(ReadCode(path, header + meta_section + dims_section),
            StatusCode::kParseError);

  // Truncation anywhere inside a section payload is typed, never a crash.
  const std::string full = base + meta_section;
  for (size_t cut : {base.size() + 5, base.size() + 14, size_t{20},
                     base.size() / 2}) {
    EXPECT_EQ(ReadCode(path, full.substr(0, cut)), StatusCode::kParseError)
        << "cut=" << cut;
  }
}

TEST(IndexIoTest, V3RejectsHostileSectionPayloads) {
  const std::string base = V3BaseBytes();
  const std::string path = ::testing::TempDir() + "/gdim_v3_payload.idx2";

  // META must be exactly two u64s.
  EXPECT_EQ(ReadCode(path, base + Section("META", U64(1))),
            StatusCode::kParseError);
  EXPECT_EQ(ReadCode(path, base + Section("META", U64(1) + U64(2) + U64(3))),
            StatusCode::kParseError);

  // STOR: row count and ids must reproduce the DIMS ids exactly.
  const std::string stor = GoodStorPayload();
  ASSERT_EQ(ReadCode(path, base + Section("STOR", stor)), StatusCode::kOk);
  std::string short_count = stor;
  short_count[0] = 3;  // count 4 -> 3
  EXPECT_EQ(ReadCode(path, base + Section("STOR", short_count)),
            StatusCode::kParseError);
  std::string wrong_id = stor;
  wrong_id[8] = 4;  // first store id 3 -> 4
  EXPECT_EQ(ReadCode(path, base + Section("STOR", wrong_id)),
            StatusCode::kParseError);
  // Text length must be exactly the rest of the section.
  EXPECT_EQ(ReadCode(path, base + Section("STOR", stor + "x")),
            StatusCode::kParseError);

  // IVFX: the good payload loads; every single-field corruption is typed.
  const std::string ivfx = GoodIvfxPayload();
  ASSERT_EQ(ReadCode(path, base + Section("IVFX", ivfx)), StatusCode::kOk);

  const auto patched = [&](size_t offset, char value) {
    std::string bytes = ivfx;
    bytes[offset] = value;
    return base + Section("IVFX", bytes);
  };
  EXPECT_EQ(ReadCode(path, patched(8, 8)),    // num_bits 9 -> 8
            StatusCode::kParseError);
  EXPECT_EQ(ReadCode(path, patched(16, 2)),   // wpc 1 -> 2
            StatusCode::kParseError);
  EXPECT_EQ(ReadCode(path, patched(32, 0)),   // bucket 0 posting count -> 0
            StatusCode::kParseError);
  EXPECT_EQ(ReadCode(path, patched(40, 5)),   // posting id 3 -> 5 (not live)
            StatusCode::kParseError);
  EXPECT_EQ(ReadCode(path, patched(48, 9)),   // id 7 -> 9: duplicated by
            StatusCode::kParseError);          // bucket 1's first posting
  EXPECT_EQ(ReadCode(path, patched(48, 3)),   // ids 3,3: not ascending
            StatusCode::kParseError);
  EXPECT_EQ(ReadCode(path, patched(0, 1)),    // bucket count 2 -> 1 leaves
            StatusCode::kParseError);          // bucket 1 as trailing bytes
  // Coverage shortfall: a single well-formed bucket, so {9, 40} would be
  // unreachable by any probe.
  const std::string half = U64(1) + U64(9) + U64(1) +
                           U64(0x21) + U64(2) + U64(3) + U64(7);
  EXPECT_EQ(ReadCode(path, base + Section("IVFX", half)),
            StatusCode::kParseError);
  // A bucket count far beyond what the section could hold.
  EXPECT_EQ(ReadCode(path, patched(0, 0x7F)), StatusCode::kParseError);
}

TEST(IndexIoTest, V2FilesLoadWithoutSections) {
  // The pre-v3 degraded path: a v2 snapshot still loads, with no META (the
  // generation/epoch restart at zero), no STOR, and no IVFX.
  const PersistedIndex index = V3Corpus();
  const std::string path = ::testing::TempDir() + "/gdim_v2_compat.idx2";
  ASSERT_TRUE(WriteIndexFile(index, path, IndexFormat::kV2Binary).ok());
  Result<PackedIndex> packed = ReadIndexFilePacked(path);
  ASSERT_TRUE(packed.ok()) << packed.status().ToString();
  EXPECT_FALSE(packed->meta.has_value());
  EXPECT_FALSE(packed->store.has_value());
  EXPECT_FALSE(packed->ivf.has_value());
  EXPECT_EQ(packed->ids, index.ids);
}

TEST(IndexIoTest, EndToEndServeFromDisk) {
  // Build an index, persist its dimension + vectors, reload, and verify a
  // query answered from the reloaded artifacts matches the live index.
  ChemGenOptions gen;
  gen.num_graphs = 40;
  GraphDatabase db = GenerateChemDatabase(gen);
  IndexOptions options;
  options.selector = "DSPM";
  options.p = 24;
  options.mining.min_support = 0.1;
  options.mining.max_edges = 4;
  Result<GraphSearchIndex> index = GraphSearchIndex::Build(db, options);
  ASSERT_TRUE(index.ok()) << index.status().ToString();

  PersistedIndex p;
  p.features = index->dimension();
  p.db_bits = index->mapped_database();
  std::string path = ::testing::TempDir() + "/gdim_served.idx";
  ASSERT_TRUE(WriteIndexFile(p, path).ok());
  Result<PersistedIndex> back = ReadIndexFile(path);
  ASSERT_TRUE(back.ok());

  GraphDatabase queries = GenerateChemQueries(gen, 3);
  FeatureMapper mapper(back->features);
  for (const Graph& q : queries) {
    Ranking from_disk = MappedRanking(mapper.Map(q), back->db_bits);
    Ranking live = index->Query(q, static_cast<int>(db.size()));
    ASSERT_EQ(from_disk.size(), live.size());
    for (size_t i = 0; i < live.size(); ++i) {
      EXPECT_EQ(from_disk[i].id, live[i].id);
      EXPECT_DOUBLE_EQ(from_disk[i].score, live[i].score);
    }
  }
}

}  // namespace
}  // namespace gdim
