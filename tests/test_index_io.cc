#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "core/index.h"
#include "core/index_io.h"
#include "core/topk.h"
#include "datasets/chemgen.h"

namespace gdim {
namespace {

PersistedIndex SmallIndex() {
  PersistedIndex p;
  Graph f;
  f.AddVertex(1);
  f.AddVertex(2);
  f.AddEdge(0, 1, 3);
  p.features.push_back(f);
  Graph f2;
  f2.AddVertex(0);
  p.features.push_back(f2);
  p.db_bits = {{1, 0}, {0, 1}, {1, 1}};
  return p;
}

TEST(IndexIoTest, RoundTrip) {
  PersistedIndex p = SmallIndex();
  std::string path = ::testing::TempDir() + "/gdim_index_test.idx";
  ASSERT_TRUE(WriteIndexFile(p, path).ok());
  Result<PersistedIndex> back = ReadIndexFile(path);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ASSERT_EQ(back->features.size(), 2u);
  EXPECT_EQ(back->features[0], p.features[0]);
  EXPECT_EQ(back->features[1], p.features[1]);
  EXPECT_EQ(back->db_bits, p.db_bits);
}

TEST(IndexIoTest, RejectsBadMagic) {
  std::string path = ::testing::TempDir() + "/gdim_bad_magic.idx";
  {
    std::ofstream out(path);
    out << "not-an-index\n";
  }
  Result<PersistedIndex> r = ReadIndexFile(path);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
}

TEST(IndexIoTest, RejectsWidthMismatch) {
  PersistedIndex p = SmallIndex();
  p.db_bits.push_back({1});  // ragged row
  std::string path = ::testing::TempDir() + "/gdim_ragged.idx";
  EXPECT_FALSE(WriteIndexFile(p, path).ok());
}

TEST(IndexIoTest, RejectsCorruptVectorRow) {
  PersistedIndex p = SmallIndex();
  std::string path = ::testing::TempDir() + "/gdim_corrupt.idx";
  ASSERT_TRUE(WriteIndexFile(p, path).ok());
  // Append garbage by truncating a row: rewrite with a broken line.
  std::string text;
  {
    std::ifstream in(path);
    std::stringstream ss;
    ss << in.rdbuf();
    text = ss.str();
  }
  size_t pos = text.rfind("11");
  text.replace(pos, 2, "1x");
  {
    std::ofstream out(path);
    out << text;
  }
  EXPECT_FALSE(ReadIndexFile(path).ok());
}

TEST(IndexIoTest, MissingFile) {
  EXPECT_FALSE(ReadIndexFile("/no/such/dir/x.idx").ok());
  EXPECT_FALSE(WriteIndexFile(SmallIndex(), "/no/such/dir/x.idx").ok());
}

TEST(IndexIoTest, EndToEndServeFromDisk) {
  // Build an index, persist its dimension + vectors, reload, and verify a
  // query answered from the reloaded artifacts matches the live index.
  ChemGenOptions gen;
  gen.num_graphs = 40;
  GraphDatabase db = GenerateChemDatabase(gen);
  IndexOptions options;
  options.selector = "DSPM";
  options.p = 24;
  options.mining.min_support = 0.1;
  options.mining.max_edges = 4;
  Result<GraphSearchIndex> index = GraphSearchIndex::Build(db, options);
  ASSERT_TRUE(index.ok()) << index.status().ToString();

  PersistedIndex p;
  p.features = index->dimension();
  p.db_bits = index->mapped_database();
  std::string path = ::testing::TempDir() + "/gdim_served.idx";
  ASSERT_TRUE(WriteIndexFile(p, path).ok());
  Result<PersistedIndex> back = ReadIndexFile(path);
  ASSERT_TRUE(back.ok());

  GraphDatabase queries = GenerateChemQueries(gen, 3);
  FeatureMapper mapper(back->features);
  for (const Graph& q : queries) {
    Ranking from_disk = MappedRanking(mapper.Map(q), back->db_bits);
    Ranking live = index->Query(q, static_cast<int>(db.size()));
    ASSERT_EQ(from_disk.size(), live.size());
    for (size_t i = 0; i < live.size(); ++i) {
      EXPECT_EQ(from_disk[i].id, live[i].id);
      EXPECT_DOUBLE_EQ(from_disk[i].score, live[i].score);
    }
  }
}

}  // namespace
}  // namespace gdim
