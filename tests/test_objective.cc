#include <cmath>

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/binary_db.h"
#include "core/objective.h"

namespace gdim {
namespace {

// Random bit matrix db + random delta matrix for objective tests.
BinaryFeatureDb RandomBits(int n, int m, double density, Rng* rng) {
  std::vector<std::vector<uint8_t>> rows(
      static_cast<size_t>(n), std::vector<uint8_t>(static_cast<size_t>(m)));
  for (auto& row : rows) {
    for (auto& bit : row) bit = rng->Bernoulli(density) ? 1 : 0;
  }
  return BinaryFeatureDb::FromBitMatrix(rows);
}

DissimilarityMatrix RandomDelta(int n, Rng* rng) {
  std::vector<double> vals(static_cast<size_t>(n) * static_cast<size_t>(n),
                           0.0);
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      double v = rng->UniformDouble();
      vals[static_cast<size_t>(i) * static_cast<size_t>(n) +
           static_cast<size_t>(j)] = v;
      vals[static_cast<size_t>(j) * static_cast<size_t>(n) +
           static_cast<size_t>(i)] = v;
    }
  }
  return DissimilarityMatrix::FromDense(n, std::move(vals));
}

TEST(ObjectiveTest, WeightedDistanceHandComputed) {
  BinaryFeatureDb db = BinaryFeatureDb::FromBitMatrix({
      {1, 0, 1},
      {0, 1, 1},
  });
  std::vector<double> c = {0.5, 2.0, 7.0};
  // Symmetric difference = features 0 and 1: sqrt(0.25 + 4).
  EXPECT_DOUBLE_EQ(WeightedDistance(db, c, 0, 1), std::sqrt(4.25));
  EXPECT_DOUBLE_EQ(WeightedDistance(db, c, 0, 0), 0.0);
}

TEST(ObjectiveTest, OptimizedMatchesNaive) {
  Rng rng(77);
  for (int round = 0; round < 5; ++round) {
    BinaryFeatureDb db = RandomBits(12, 20, 0.3, &rng);
    DissimilarityMatrix delta = RandomDelta(12, &rng);
    std::vector<double> c(20);
    for (double& v : c) v = rng.UniformDouble();
    double fast = StressObjective(db, c, delta);
    double naive = StressObjectiveNaive(db, c, delta);
    EXPECT_NEAR(fast, naive, 1e-9 * std::max(1.0, naive)) << "round " << round;
  }
}

TEST(ObjectiveTest, ZeroWeightsGiveDeltaNormSquared) {
  Rng rng(78);
  BinaryFeatureDb db = RandomBits(8, 10, 0.4, &rng);
  DissimilarityMatrix delta = RandomDelta(8, &rng);
  std::vector<double> c(10, 0.0);
  double expect = 0.0;
  for (int i = 0; i < 8; ++i) {
    for (int j = 0; j < 8; ++j) {
      expect += delta.at(i, j) * delta.at(i, j);
    }
  }
  EXPECT_NEAR(StressObjective(db, c, delta), expect, 1e-9);
}

TEST(ObjectiveTest, DistanceMatrixSymmetric) {
  Rng rng(79);
  BinaryFeatureDb db = RandomBits(10, 15, 0.3, &rng);
  std::vector<double> c(15, 0.1);
  std::vector<double> d = WeightedDistanceMatrix(db, c);
  for (int i = 0; i < 10; ++i) {
    for (int j = 0; j < 10; ++j) {
      EXPECT_DOUBLE_EQ(d[static_cast<size_t>(i) * 10 + static_cast<size_t>(j)],
                       d[static_cast<size_t>(j) * 10 + static_cast<size_t>(i)]);
    }
    EXPECT_DOUBLE_EQ(d[static_cast<size_t>(i) * 10 + static_cast<size_t>(i)],
                     0.0);
  }
}

TEST(ObjectiveTest, BinaryMappedDistance) {
  std::vector<uint8_t> a = {1, 0, 1, 0};
  std::vector<uint8_t> b = {1, 1, 0, 0};
  EXPECT_DOUBLE_EQ(BinaryMappedDistance(a, b), std::sqrt(2.0 / 4.0));
  EXPECT_DOUBLE_EQ(BinaryMappedDistance(a, a), 0.0);
  std::vector<uint8_t> empty_a, empty_b;
  EXPECT_DOUBLE_EQ(BinaryMappedDistance(empty_a, empty_b), 0.0);
}

TEST(ObjectiveTest, BinaryMappedDistanceBounds) {
  // Normalized to [0, 1]: all-different vectors hit exactly 1.
  std::vector<uint8_t> a = {1, 1, 1};
  std::vector<uint8_t> b = {0, 0, 0};
  EXPECT_DOUBLE_EQ(BinaryMappedDistance(a, b), 1.0);
}

}  // namespace
}  // namespace gdim
