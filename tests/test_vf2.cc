#include <gtest/gtest.h>

#include "isomorphism/vf2.h"
#include "test_util.h"

namespace gdim {
namespace {

using testing_util::BruteForceSubgraphIso;
using testing_util::RandomConnectedGraph;
using testing_util::RandomEdgeSubgraph;

Graph PathGraph(std::initializer_list<LabelId> vlabels, LabelId elabel) {
  Graph g;
  for (LabelId l : vlabels) g.AddVertex(l);
  for (int i = 0; i + 1 < g.NumVertices(); ++i) g.AddEdge(i, i + 1, elabel);
  return g;
}

TEST(Vf2Test, EmptyPatternAlwaysEmbeds) {
  Graph empty;
  Graph target = PathGraph({1, 2, 3}, 0);
  EXPECT_TRUE(IsSubgraphIsomorphic(empty, target));
  EXPECT_TRUE(IsSubgraphIsomorphic(empty, empty));
}

TEST(Vf2Test, SingleVertexLabelMatch) {
  Graph p;
  p.AddVertex(2);
  Graph t = PathGraph({1, 2, 3}, 0);
  EXPECT_TRUE(IsSubgraphIsomorphic(p, t));
  Graph p2;
  p2.AddVertex(9);
  EXPECT_FALSE(IsSubgraphIsomorphic(p2, t));
}

TEST(Vf2Test, EdgeLabelMustMatch) {
  Graph p = PathGraph({1, 2}, 5);
  Graph t = PathGraph({1, 2}, 6);
  EXPECT_FALSE(IsSubgraphIsomorphic(p, t));
  Graph t2 = PathGraph({1, 2}, 5);
  EXPECT_TRUE(IsSubgraphIsomorphic(p, t2));
}

TEST(Vf2Test, PathIntoTriangleNonInduced) {
  Graph p = PathGraph({1, 1, 1}, 0);
  Graph t;
  t.AddVertex(1);
  t.AddVertex(1);
  t.AddVertex(1);
  t.AddEdge(0, 1, 0);
  t.AddEdge(1, 2, 0);
  t.AddEdge(0, 2, 0);
  EXPECT_TRUE(IsSubgraphIsomorphic(p, t));  // non-induced: allowed
  SubgraphIsoOptions induced;
  induced.induced = true;
  EXPECT_FALSE(IsSubgraphIsomorphic(p, t, induced));  // induced: forbidden
}

TEST(Vf2Test, TriangleNotInPath) {
  Graph t = PathGraph({1, 1, 1}, 0);
  Graph p;
  p.AddVertex(1);
  p.AddVertex(1);
  p.AddVertex(1);
  p.AddEdge(0, 1, 0);
  p.AddEdge(1, 2, 0);
  p.AddEdge(0, 2, 0);
  EXPECT_FALSE(IsSubgraphIsomorphic(p, t));
}

TEST(Vf2Test, DisconnectedPattern) {
  Graph p;
  p.AddVertex(1);
  p.AddVertex(2);  // two isolated labeled vertices
  Graph t = PathGraph({1, 3, 2}, 0);
  EXPECT_TRUE(IsSubgraphIsomorphic(p, t));
  Graph t2 = PathGraph({1, 3, 3}, 0);
  EXPECT_FALSE(IsSubgraphIsomorphic(p, t2));
}

TEST(Vf2Test, FindEmbeddingReturnsValidMapping) {
  Graph p = PathGraph({1, 2}, 4);
  Graph t;
  t.AddVertex(2);
  t.AddVertex(1);
  t.AddVertex(3);
  t.AddEdge(0, 1, 4);
  t.AddEdge(1, 2, 9);
  std::vector<VertexId> mapping;
  ASSERT_TRUE(FindSubgraphEmbedding(p, t, &mapping));
  ASSERT_EQ(mapping.size(), 2u);
  EXPECT_EQ(t.VertexLabel(mapping[0]), 1u);
  EXPECT_EQ(t.VertexLabel(mapping[1]), 2u);
  EXPECT_TRUE(t.HasEdge(mapping[0], mapping[1]));
}

TEST(Vf2Test, CountEmbeddingsOnSymmetricTarget) {
  // Single edge (1)-(1) into a triangle of label-1 vertices: 6 ordered
  // embeddings.
  Graph p = PathGraph({1, 1}, 0);
  Graph t;
  t.AddVertex(1);
  t.AddVertex(1);
  t.AddVertex(1);
  t.AddEdge(0, 1, 0);
  t.AddEdge(1, 2, 0);
  t.AddEdge(0, 2, 0);
  EXPECT_EQ(CountSubgraphEmbeddings(p, t), 6u);
}

TEST(Vf2Test, NodeBudgetAborts) {
  Rng rng(3);
  Graph t = RandomConnectedGraph(12, 10, 1, 1, &rng);
  Graph p = RandomConnectedGraph(8, 4, 1, 1, &rng);
  SubgraphIsoOptions opts;
  opts.max_nodes = 1;
  SubgraphIsoStats stats;
  IsSubgraphIsomorphic(p, t, opts, &stats);
  EXPECT_LE(stats.nodes, 2u);
}

TEST(Vf2Test, GraphIsomorphismBasics) {
  Graph a = PathGraph({1, 2, 3}, 0);
  // Same path built in reverse vertex order.
  Graph b;
  b.AddVertex(3);
  b.AddVertex(2);
  b.AddVertex(1);
  b.AddEdge(0, 1, 0);
  b.AddEdge(1, 2, 0);
  EXPECT_TRUE(AreGraphsIsomorphic(a, b));
  Graph c = PathGraph({1, 2, 4}, 0);
  EXPECT_FALSE(AreGraphsIsomorphic(a, c));
  EXPECT_FALSE(AreGraphsIsomorphic(a, PathGraph({1, 2}, 0)));
}

// Property: VF2 agrees with brute force on random graph pairs.
class Vf2RandomTest : public ::testing::TestWithParam<int> {};

TEST_P(Vf2RandomTest, MatchesBruteForce) {
  Rng rng(static_cast<uint64_t>(GetParam()));
  for (int round = 0; round < 25; ++round) {
    Graph target = RandomConnectedGraph(rng.UniformInt(3, 7),
                                        rng.UniformInt(0, 3), 2, 2, &rng);
    Graph pattern;
    if (rng.Bernoulli(0.5)) {
      // True subgraph: must embed.
      pattern = RandomEdgeSubgraph(target, rng.UniformInt(1, 4), &rng);
      EXPECT_TRUE(IsSubgraphIsomorphic(pattern, target))
          << "round " << round;
    } else {
      pattern = RandomConnectedGraph(rng.UniformInt(2, 5),
                                     rng.UniformInt(0, 2), 2, 2, &rng);
    }
    EXPECT_EQ(IsSubgraphIsomorphic(pattern, target),
              BruteForceSubgraphIso(pattern, target))
        << "round " << round;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Vf2RandomTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace gdim
