// Wire-protocol and TCP front-end tests: every verb round-trips over a real
// socket, malformed lines answer ERR without dropping the connection, and
// concurrent connections all get bit-exact answers.

#include <gtest/gtest.h>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <fstream>
#include <future>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "common/sync.h"
#include "common/timer.h"
#include "core/index_io.h"
#include "core/kernels/scan_kernel.h"
#include "graph/graph.h"
#include "serve/query_engine.h"
#include "server/batch_executor.h"
#include "server/net_server.h"
#include "server/net_socket.h"
#include "server/sharded_engine.h"
#include "server/wire.h"
#include "store/graph_store.h"

namespace gdim {
namespace {

PersistedIndex LabelIndex(int rows) {
  const int kLabels = 5;
  PersistedIndex index;
  for (LabelId r = 0; r < kLabels; ++r) {
    Graph f;
    f.AddVertex(r);
    index.features.push_back(f);
  }
  const std::vector<std::vector<uint8_t>> patterns = {
      {1, 1, 0, 0, 0}, {0, 0, 1, 1, 0}, {1, 0, 1, 0, 1}, {0, 1, 0, 1, 1},
  };
  for (int i = 0; i < rows; ++i) {
    index.db_bits.push_back(patterns[static_cast<size_t>(i) %
                                     patterns.size()]);
  }
  return index;
}

Graph LabelGraph(std::vector<LabelId> labels) {
  Graph g;
  for (LabelId l : labels) g.AddVertex(l);
  return g;
}

// ---------------------------------------------------------------- wire ----

TEST(WireTest, GraphInlineRoundTrip) {
  Graph g;
  g.AddVertex(3);
  g.AddVertex(7);
  g.AddVertex(3);
  g.AddEdge(0, 1, 2);
  g.AddEdge(1, 2, 0);
  const std::string spec = EncodeGraphInline(g);
  EXPECT_EQ(spec.find('\n'), std::string::npos);
  Result<Graph> back = DecodeGraphInline(spec);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(*back, g);
}

TEST(WireTest, ParseRequestAcceptsEveryVerb) {
  const std::string spec = EncodeGraphInline(LabelGraph({1, 2}));
  auto query = ParseWireRequest("QUERY 7 " + spec);
  ASSERT_TRUE(query.ok());
  EXPECT_EQ(query->verb, WireVerb::kQuery);
  EXPECT_EQ(query->options.k, 7);
  EXPECT_EQ(query->graph, LabelGraph({1, 2}));

  auto insert = ParseWireRequest("INSERT " + spec);
  ASSERT_TRUE(insert.ok());
  EXPECT_EQ(insert->verb, WireVerb::kInsert);

  auto remove = ParseWireRequest("REMOVE 42");
  ASSERT_TRUE(remove.ok());
  EXPECT_EQ(remove->verb, WireVerb::kRemove);
  EXPECT_EQ(remove->id, 42);

  auto snapshot = ParseWireRequest("SNAPSHOT /tmp/some path.idx2");
  ASSERT_TRUE(snapshot.ok());
  EXPECT_EQ(snapshot->verb, WireVerb::kSnapshot);
  EXPECT_EQ(snapshot->path, "/tmp/some path.idx2");

  auto compact = ParseWireRequest("COMPACT");
  ASSERT_TRUE(compact.ok());
  EXPECT_EQ(compact->verb, WireVerb::kCompact);

  auto reindex = ParseWireRequest("REINDEX");
  ASSERT_TRUE(reindex.ok());
  EXPECT_EQ(reindex->verb, WireVerb::kReindex);
  EXPECT_EQ(reindex->p, 0);  // keep the current dimension count

  auto reindex_p = ParseWireRequest("REINDEX 128");
  ASSERT_TRUE(reindex_p.ok());
  EXPECT_EQ(reindex_p->verb, WireVerb::kReindex);
  EXPECT_EQ(reindex_p->p, 128);

  EXPECT_EQ(ParseWireRequest("STATS")->verb, WireVerb::kStats);
  EXPECT_EQ(ParseWireRequest("PING")->verb, WireVerb::kPing);
  EXPECT_EQ(ParseWireRequest("QUIT")->verb, WireVerb::kQuit);
}

TEST(WireTest, ParseRequestAcceptsQueryOptionTokens) {
  const std::string spec = EncodeGraphInline(LabelGraph({1, 2}));
  auto full = ParseWireRequest("QUERY 7 MODE=full " + spec);
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(full->options.k, 7);
  EXPECT_EQ(full->options.scan_mode, ScanMode::kFull);
  EXPECT_EQ(full->graph, LabelGraph({1, 2}));

  auto automatic = ParseWireRequest("QUERY 7 MODE=auto " + spec);
  ASSERT_TRUE(automatic.ok());
  EXPECT_EQ(automatic->options.scan_mode, ScanMode::kAuto);

  // Repeats are allowed; the last one wins, like every KEY=VALUE protocol.
  auto last = ParseWireRequest("QUERY 7 MODE=full MODE=auto " + spec);
  ASSERT_TRUE(last.ok());
  EXPECT_EQ(last->options.scan_mode, ScanMode::kAuto);
}

TEST(WireTest, ParseRequestRejectsMalformedLines) {
  for (const std::string& line : {
           std::string("FROB 1"), std::string("QUERY"),
           std::string("QUERY x t # 0;v 0 1"), std::string("QUERY -1 t # 0"),
           std::string("QUERY 3 not-a-graph"), std::string("REMOVE"),
           std::string("REMOVE -4"), std::string("REMOVE 1,2"),
           std::string("INSERT"), std::string("SNAPSHOT"),
           std::string("STATS now"), std::string("PING x"),
           std::string("COMPACT now"), std::string("REINDEX 0"),
           std::string("REINDEX -5"), std::string("REINDEX x"),
           std::string("REINDEX 1 2"),
           // Option-token shapes: bad value, unknown key, option but no
           // graph, option glued to a missing value.
           std::string("QUERY 3 MODE=banana t # 0;v 0 1"),
           std::string("QUERY 3 FROB=1 t # 0;v 0 1"),
           std::string("QUERY 3 MODE=full"),
           std::string("QUERY 3 MODE= t # 0;v 0 1"),
           std::string("QUERY 3 =full t # 0;v 0 1"),
       }) {
    EXPECT_FALSE(ParseWireRequest(line).ok()) << line;
  }
}

TEST(WireTest, RankingResponseRoundTrip) {
  Ranking ranking = {{3, 0.0}, {17, 0.258199}, {4, 1.0}};
  Result<Ranking> back = ParseRankingResponse(FormatRankingResponse(ranking));
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back->size(), ranking.size());
  for (size_t i = 0; i < ranking.size(); ++i) {
    EXPECT_EQ((*back)[i].id, ranking[i].id);
    EXPECT_NEAR((*back)[i].score, ranking[i].score, 1e-6);
  }
  EXPECT_TRUE(ParseRankingResponse("OK 0")->empty());

  Result<Ranking> err = ParseRankingResponse(FormatErrorResponse(
      Status::ResourceExhausted("admission queue full")));
  ASSERT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(err.status().message(), "admission queue full");

  EXPECT_FALSE(ParseRankingResponse("OK 2 1:0.5").ok());  // short
  EXPECT_FALSE(ParseRankingResponse("OK 1 1:0.5 9:0.7").ok());  // long
  EXPECT_FALSE(ParseRankingResponse("gibberish").ok());
}

// ---------------------------------------------------------- net server ----

/// One client connection with line-RPC convenience.
class Client {
 public:
  explicit Client(int port) {
    Result<ScopedFd> fd = ConnectTcp("127.0.0.1", port);
    EXPECT_TRUE(fd.ok()) << fd.status().ToString();
    fd_ = std::move(fd).value();
    reader_.emplace(fd_.get());
  }

  /// Sends one request line, returns the response line ("" on EOF/error).
  std::string Rpc(const std::string& line) {
    if (!SendAll(fd_.get(), line + "\n").ok()) return "";
    Result<std::optional<std::string>> response = reader_->ReadLine();
    if (!response.ok() || !response->has_value()) return "";
    return **response;
  }

  /// Sends one request line and reads exactly n response lines (a TRACE=1
  /// query answers two). Truncated on EOF/error.
  std::vector<std::string> RpcMulti(const std::string& line, int n) {
    std::vector<std::string> lines;
    if (!SendAll(fd_.get(), line + "\n").ok()) return lines;
    for (int i = 0; i < n; ++i) {
      Result<std::optional<std::string>> response = reader_->ReadLine();
      if (!response.ok() || !response->has_value()) return lines;
      lines.push_back(**response);
    }
    return lines;
  }

  /// Sends METRICS and returns every exposition line up to (excluding) the
  /// '# EOF' terminator. Empty on a truncated scrape.
  std::vector<std::string> ScrapeMetrics() {
    std::vector<std::string> lines;
    if (!SendAll(fd_.get(), "METRICS\n").ok()) return lines;
    for (;;) {
      Result<std::optional<std::string>> response = reader_->ReadLine();
      if (!response.ok() || !response->has_value()) return {};
      if (**response == "# EOF") return lines;
      lines.push_back(**response);
    }
  }

  /// True once the server has closed this connection.
  bool AtEof() {
    Result<std::optional<std::string>> response = reader_->ReadLine();
    return response.ok() && !response->has_value();
  }

 private:
  ScopedFd fd_;
  std::optional<LineReader> reader_;
};

class NetServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto engine = ShardedEngine::FromIndex(LabelIndex(20), [] {
      ShardedOptions opts;
      opts.num_shards = 2;
      return opts;
    }());
    ASSERT_TRUE(engine.ok()) << engine.status().ToString();
    engine_.emplace(std::move(engine).value());
    BatchExecutorOptions executor_opts;
    executor_opts.cache_bytes = 1 << 20;  // serve the cached configuration
    executor_.emplace(&*engine_, executor_opts);
    server_.emplace(&*executor_);
    ASSERT_TRUE(server_->Start().ok());
    // A shadow engine for expected answers (the served one is owned by the
    // executor once it runs).
    auto shadow = QueryEngine::FromIndex(LabelIndex(20));
    ASSERT_TRUE(shadow.ok());
    shadow_.emplace(std::move(shadow).value());
  }

  void TearDown() override {
    server_->Stop();
  }

  std::optional<ShardedEngine> engine_;
  std::optional<BatchExecutor> executor_;
  std::optional<NetServer> server_;
  std::optional<QueryEngine> shadow_;
};

TEST_F(NetServerTest, VerbsRoundTripOverTcp) {
  Client client(server_->port());
  EXPECT_EQ(client.Rpc("PING"), "OK pong");

  const Graph probe = LabelGraph({0, 2, 4});
  const std::string expected =
      FormatRankingResponse(shadow_->Query(probe, {.k = 5}));
  EXPECT_EQ(client.Rpc("QUERY 5 " + EncodeGraphInline(probe)), expected);

  EXPECT_EQ(client.Rpc("INSERT " + EncodeGraphInline(LabelGraph({0, 1}))),
            "OK 20");
  EXPECT_EQ(client.Rpc("REMOVE 20"), "OK removed 20");
  EXPECT_EQ(client.Rpc("REMOVE 20"),
            "ERR NotFound no live graph with id 20");

  const std::string snap = ::testing::TempDir() + "/gdim_net_snap.idx2";
  EXPECT_EQ(client.Rpc("SNAPSHOT " + snap), "OK snapshot");
  auto reloaded = QueryEngine::Open(snap);
  ASSERT_TRUE(reloaded.ok());
  EXPECT_EQ(reloaded->num_graphs(), 20);

  const std::string stats = client.Rpc("STATS");
  EXPECT_EQ(stats.rfind("OK graphs=20 shards=2 features=5 ", 0), 0u)
      << stats;
  // The scan kernel this server process resolved is reported verbatim —
  // what the CI kernel matrix greps to prove GDIM_FORCE_KERNEL took.
  EXPECT_NE(
      stats.find(" kernel=" + std::string(ActiveScanKernel().name())),
      std::string::npos)
      << stats;

  EXPECT_EQ(client.Rpc("QUIT"), "OK bye");
  EXPECT_TRUE(client.AtEof());
}

TEST_F(NetServerTest, MalformedLinesAnswerErrAndKeepTheConnection) {
  Client client(server_->port());
  EXPECT_EQ(client.Rpc("FROB 1"), "ERR InvalidArgument unknown verb 'FROB'");
  EXPECT_EQ(client.Rpc("QUERY nope t # 0;v 0 1"),
            "ERR InvalidArgument bad k 'nope'");
  EXPECT_EQ(client.Rpc("REMOVE -1").rfind("ERR InvalidArgument", 0), 0u);
  EXPECT_EQ(client.Rpc("QUERY 3 garbage").rfind("ERR ", 0), 0u);
  EXPECT_EQ(client.Rpc("QUERY 3 FROB=1 t # 0;v 0 1"),
            "ERR InvalidArgument unknown QUERY option 'FROB'");
  EXPECT_EQ(client.Rpc("QUERY 3 MODE=banana t # 0;v 0 1"),
            "ERR InvalidArgument bad QUERY MODE 'banana' "
            "(want auto|full|approx)");
  // The connection survived all of it.
  EXPECT_EQ(client.Rpc("PING"), "OK pong");
}

TEST_F(NetServerTest, QueryModeOptionTravelsOverTheWire) {
  Client client(server_->port());
  const Graph probe = LabelGraph({0, 2, 4});
  const std::string spec = EncodeGraphInline(probe);
  // This fixture has no prefilter, so kAuto and kFull answer identically —
  // the wire option must parse, execute, and change nothing.
  const std::string expected =
      FormatRankingResponse(shadow_->Query(probe, {.k = 5}));
  EXPECT_EQ(client.Rpc("QUERY 5 " + spec), expected);
  EXPECT_EQ(client.Rpc("QUERY 5 MODE=full " + spec), expected);
  EXPECT_EQ(client.Rpc("QUERY 5 MODE=auto " + spec), expected);
  // MODE=approx NPROBE=all probes every IVF bucket, which is bit-identical
  // to the full scan — the wire-level correctness anchor.
  EXPECT_EQ(client.Rpc("QUERY 5 MODE=approx NPROBE=all " + spec), expected);
  const std::string stats = client.Rpc("STATS");
  EXPECT_GE(StatsField(stats, "approx_queries"), 1) << stats;
  EXPECT_GT(StatsField(stats, "ivf_buckets"), 0) << stats;
  // NPROBE is meaningless outside MODE=approx and a bad value is typed.
  EXPECT_EQ(client.Rpc("QUERY 5 NPROBE=2 " + spec),
            "ERR InvalidArgument QUERY NPROBE requires MODE=approx");
  EXPECT_EQ(client.Rpc("QUERY 5 MODE=approx NPROBE=0 " + spec),
            "ERR InvalidArgument QUERY NPROBE must be >= 1 (or 'all')");
}

TEST_F(NetServerTest, ConcurrentConnectionsGetExactAnswers) {
  const std::vector<Graph> probes = {
      LabelGraph({0}), LabelGraph({1, 2}), LabelGraph({3, 4}),
      LabelGraph({0, 1, 2, 3, 4}),
  };
  std::vector<std::string> expected;
  for (const Graph& p : probes) {
    expected.push_back(FormatRankingResponse(shadow_->Query(p, {.k = 6})));
  }
  constexpr int kClients = 5;
  constexpr int kPerClient = 20;
  std::vector<std::thread> clients;
  std::vector<int> failures(kClients, 0);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      Client client(server_->port());
      for (int i = 0; i < kPerClient; ++i) {
        const size_t which = static_cast<size_t>(c + i) % probes.size();
        if (client.Rpc("QUERY 6 " + EncodeGraphInline(probes[which])) !=
            expected[which]) {
          ++failures[static_cast<size_t>(c)];
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  for (int c = 0; c < kClients; ++c) EXPECT_EQ(failures[c], 0) << c;
  EXPECT_EQ(server_->connections_accepted(), static_cast<uint64_t>(kClients));
}

TEST_F(NetServerTest, StatsReportsCacheEpochAndSnapshotFields) {
  Client client(server_->port());
  const std::string probe = EncodeGraphInline(LabelGraph({1, 2, 3}));
  // Cold then hot: one miss, one hit, at an unchanged epoch.
  const std::string cold = client.Rpc("QUERY 4 " + probe);
  EXPECT_EQ(client.Rpc("QUERY 4 " + probe), cold);
  std::string stats = client.Rpc("STATS");
  EXPECT_EQ(StatsField(stats, "cache_hits"), 1) << stats;
  EXPECT_EQ(StatsField(stats, "cache_misses"), 1) << stats;
  EXPECT_EQ(StatsField(stats, "cache_entries"), 1) << stats;
  EXPECT_GT(StatsField(stats, "cache_bytes"), 0) << stats;
  EXPECT_EQ(StatsField(stats, "cache_evictions"), 0) << stats;
  EXPECT_EQ(StatsField(stats, "epoch"), 0) << stats;
  EXPECT_EQ(StatsField(stats, "snapshots_in_progress"), 0) << stats;
  EXPECT_EQ(StatsField(stats, "snapshots_completed"), 0) << stats;

  // A mutation bumps the epoch over the wire; the old entry goes stale.
  EXPECT_EQ(client.Rpc("INSERT " + probe), "OK 20");
  stats = client.Rpc("STATS");
  EXPECT_EQ(StatsField(stats, "epoch"), 1) << stats;

  const std::string snap = ::testing::TempDir() + "/gdim_net_stats.idx2";
  EXPECT_EQ(client.Rpc("SNAPSHOT " + snap), "OK snapshot");
  stats = client.Rpc("STATS");
  EXPECT_EQ(StatsField(stats, "snapshots_completed"), 1) << stats;
  EXPECT_EQ(StatsField(stats, "snapshots_in_progress"), 0) << stats;
}

TEST_F(NetServerTest, CompactOverTheWireReclaimsTombstones) {
  Client client(server_->port());
  // Fresh server: nothing to reclaim.
  EXPECT_EQ(client.Rpc("COMPACT"), "OK compacted 0");

  // Full scans score removed-but-uncompacted rows; the physical_rows and
  // tombstones gauges make that visible over the wire.
  EXPECT_EQ(client.Rpc("REMOVE 4"), "OK removed 4");
  EXPECT_EQ(client.Rpc("REMOVE 11"), "OK removed 11");
  std::string stats = client.Rpc("STATS");
  EXPECT_EQ(StatsField(stats, "graphs"), 18) << stats;
  EXPECT_EQ(StatsField(stats, "physical_rows"), 20) << stats;
  EXPECT_EQ(StatsField(stats, "tombstones"), 2) << stats;

  EXPECT_EQ(client.Rpc("COMPACT"), "OK compacted 2");
  stats = client.Rpc("STATS");
  EXPECT_EQ(StatsField(stats, "graphs"), 18) << stats;
  EXPECT_EQ(StatsField(stats, "physical_rows"), 18) << stats;
  EXPECT_EQ(StatsField(stats, "tombstones"), 0) << stats;
}

TEST_F(NetServerTest, ReindexWithoutStoreIsATypedError) {
  Client client(server_->port());
  EXPECT_EQ(client.Rpc("REINDEX").rfind("ERR InvalidArgument", 0), 0u);
  const std::string stats = client.Rpc("STATS");
  EXPECT_EQ(StatsField(stats, "dimension_generation"), 0) << stats;
  EXPECT_EQ(StatsField(stats, "reindex_in_progress"), 0) << stats;
  EXPECT_EQ(StatsField(stats, "reindex_completed"), 0) << stats;
}

/// REINDEX over the wire needs a store of real (edge-bearing) graphs to
/// mine; this fixture serves a tiny path-graph corpus with the store wired
/// in, the way `serve-net --db` does.
class ReindexNetServerTest : public ::testing::Test {
 protected:
  static Graph PathGraph(LabelId a, LabelId b, LabelId c, LabelId el) {
    Graph g;
    g.AddVertex(a);
    g.AddVertex(b);
    g.AddVertex(c);
    g.AddEdge(0, 1, el);
    g.AddEdge(1, 2, el);
    return g;
  }

  void SetUp() override {
    for (int i = 0; i < 16; ++i) {
      corpus_.push_back(PathGraph(static_cast<LabelId>(i % 3),
                                  static_cast<LabelId>((i + 1) % 3),
                                  static_cast<LabelId>(i % 2), 0));
    }
    // The initial index's fingerprints are placeholders on a single-vertex
    // dimension; the REINDEX replaces them with a mined generation.
    auto engine = ShardedEngine::FromIndex(LabelIndex(16), [] {
      ShardedOptions opts;
      opts.num_shards = 2;
      return opts;
    }());
    ASSERT_TRUE(engine.ok());
    engine_.emplace(std::move(engine).value());
    {
      // The executor doesn't exist yet, so SetUp is the store's writer
      // while it seeds the corpus.
      ScopedRole store_writer(&store_.writer_role());
      for (int i = 0; i < 16; ++i) {
        ASSERT_TRUE(store_.Put(i, corpus_[static_cast<size_t>(i)]).ok());
      }
    }
    BatchExecutorOptions executor_opts;
    executor_opts.cache_bytes = 1 << 20;
    executor_opts.store = &store_;
    executor_opts.refresh.mining.min_support = 0.3;
    executor_opts.refresh.mining.max_edges = 2;
    executor_.emplace(&*engine_, executor_opts);
    server_.emplace(&*executor_);
    ASSERT_TRUE(server_->Start().ok());
  }

  void TearDown() override { server_->Stop(); }

  GraphDatabase corpus_;
  GraphStore store_;
  std::optional<ShardedEngine> engine_;
  std::optional<BatchExecutor> executor_;
  std::optional<NetServer> server_;
};

TEST_F(ReindexNetServerTest, ReindexOverTheWireSwapsAGeneration) {
  Client client(server_->port());
  std::string stats = client.Rpc("STATS");
  EXPECT_EQ(StatsField(stats, "dimension_generation"), 0) << stats;
  const long long epoch_before = StatsField(stats, "epoch");

  const std::string response = client.Rpc("REINDEX 4");
  ASSERT_EQ(response.rfind("OK reindexed generation=1 features=", 0), 0u)
      << response;

  stats = client.Rpc("STATS");
  EXPECT_EQ(StatsField(stats, "dimension_generation"), 1) << stats;
  EXPECT_EQ(StatsField(stats, "reindex_completed"), 1) << stats;
  EXPECT_EQ(StatsField(stats, "reindex_in_progress"), 0) << stats;
  EXPECT_GT(StatsField(stats, "epoch"), epoch_before) << stats;
  EXPECT_EQ(StatsField(stats, "graphs"), 16) << stats;

  // The swapped generation answers on the mined dimension: a corpus graph
  // queried against itself is an exact fingerprint match.
  const std::string answer =
      client.Rpc("QUERY 1 " + EncodeGraphInline(corpus_[0]));
  Result<Ranking> ranking = ParseRankingResponse(answer);
  ASSERT_TRUE(ranking.ok()) << answer;
  ASSERT_EQ(ranking->size(), 1u);
  EXPECT_DOUBLE_EQ((*ranking)[0].score, 0.0);
}

// ----------------------------------------------------------- wire fuzz ----

/// Every fuzz line must draw exactly one reply — ERR for garbage — and must
/// never kill the connection or the server. Seeds are fixed, so a failure
/// replays byte for byte.
TEST_F(NetServerTest, FuzzedLinesAlwaysGetOneReplyAndKeepTheConnection) {
  Rng rng(0x600D5EED);
  Client client(server_->port());
  const std::string valid_graph = EncodeGraphInline(LabelGraph({0, 1}));

  // Hand-picked shapes first: truncations, bad integers, embedded NULs,
  // overflow-sized integers, verb-case confusion, trailing garbage.
  std::vector<std::string> lines = {
      "QUERY",
      "QUERY 5",
      "QUERY 5 ",
      "QUERY 99999999999999999999 " + valid_graph,
      "QUERY -3 " + valid_graph,
      "QUERY 5 t # 0;v",
      "QUERY 5 t # 0;v 0 99999999999999999999",
      "INSERT",
      "INSERT ;;;;",
      "REMOVE 99999999999999999999",
      "REMOVE 1 2",
      "SNAPSHOT",
      "STATS plus",
      "PING pong",
      "QUIT now",
      "query 5 " + valid_graph,  // verbs are case-sensitive
      std::string("QUERY\0 5 x", 9),
      std::string("PI\0NG", 5),
      std::string("\0", 1),
      std::string("INSERT t # 0;v 0 1\0;v 1 2", 25),
  };
  // Then random byte soup (no '\n'; blank and pure-'\r' lines draw no
  // response by protocol design, so skip generating them).
  for (int i = 0; i < 200; ++i) {
    const int len = rng.UniformInt(1, 60);
    std::string line;
    for (int j = 0; j < len; ++j) {
      char c;
      do {
        c = static_cast<char>(rng.UniformInt(0, 255));
      } while (c == '\n');
      line.push_back(c);
    }
    // (std::string(1, 'x') rather than = "x": GCC 12's -O3 -Wrestrict
    // false-positives on literal assignment, see src/common/flags.cc.)
    if (line.find_first_not_of('\r') == std::string::npos) {
      line = std::string(1, 'x');
    }
    lines.push_back(std::move(line));
  }

  for (size_t i = 0; i < lines.size(); ++i) {
    const std::string response = client.Rpc(lines[i]);
    ASSERT_FALSE(response.empty())
        << "no reply (connection dropped?) for fuzz line " << i;
    const bool typed = response.rfind("ERR ", 0) == 0 ||
                       response.rfind("OK", 0) == 0;
    EXPECT_TRUE(typed) << "untyped reply '" << response << "' for line " << i;
  }
  // The connection survived the whole barrage.
  EXPECT_EQ(client.Rpc("PING"), "OK pong");
}

TEST_F(NetServerTest, OversizedLineAnswersTypedErrorAndResynchronizes) {
  Client client(server_->port());
  // Well past the reader's 1 MiB line cap, no newline until the end.
  std::string huge(2'000'000, 'x');
  const std::string response = client.Rpc(huge);
  EXPECT_EQ(response.rfind("ERR InvalidArgument line exceeds", 0), 0u)
      << response;
  // The reader resynchronized on the terminator: the connection still works.
  EXPECT_EQ(client.Rpc("PING"), "OK pong");
  const Graph probe = LabelGraph({0, 2, 4});
  EXPECT_EQ(client.Rpc("QUERY 5 " + EncodeGraphInline(probe)),
            FormatRankingResponse(shadow_->Query(probe, {.k = 5})));
}

// --------------------------------------------------- snapshot under load --

/// Network-level non-blocking snapshot, deterministic via a FIFO: while the
/// background writer is parked on the pipe (provably in progress), other
/// connections keep getting answers; draining the pipe completes the
/// SNAPSHOT RPC with OK.
TEST_F(NetServerTest, SnapshotOverTheWireDoesNotBlockOtherConnections) {
  const std::string fifo = ::testing::TempDir() + "/gdim_net_snap_fifo_" +
                           std::to_string(::getpid());
  ::unlink(fifo.c_str());
  ASSERT_EQ(::mkfifo(fifo.c_str(), 0600), 0);

  auto pending = std::async(std::launch::async, [&] {
    Client snapshotter(server_->port());
    return snapshotter.Rpc("SNAPSHOT " + fifo);
  });

  Client client(server_->port());
  for (int i = 0; i < 5000; ++i) {
    const std::string stats = client.Rpc("STATS");
    if (StatsField(stats, "snapshots_in_progress") == 1) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // Sustained service while the snapshot writer is parked.
  const Graph probe = LabelGraph({1, 3});
  const std::string expected =
      FormatRankingResponse(shadow_->Query(probe, {.k = 6}));
  for (int i = 0; i < 20; ++i) {
    ASSERT_EQ(client.Rpc("QUERY 6 " + EncodeGraphInline(probe)), expected);
  }
  ASSERT_EQ(StatsField(client.Rpc("STATS"), "snapshots_in_progress"), 1);

  // Drain the pipe; the RPC must now complete with OK and valid v2 bytes.
  const std::string drained = fifo + ".idx2";
  {
    const int read_fd = ::open(fifo.c_str(), O_RDONLY);
    ASSERT_GE(read_fd, 0);
    std::ofstream out(drained, std::ios::binary);
    char buffer[4096];
    ssize_t n;
    while ((n = ::read(read_fd, buffer, sizeof(buffer))) > 0) {
      out.write(buffer, n);
    }
    ::close(read_fd);
  }
  EXPECT_EQ(pending.get(), "OK snapshot");
  Result<QueryEngine> reloaded = QueryEngine::Open(drained);
  ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();
  EXPECT_EQ(reloaded->num_graphs(), 20);
  ::unlink(fifo.c_str());
}

// ----------------------------------------------------- observability ------

TEST_F(NetServerTest, MetricsExpositionOverTheWire) {
  Client client(server_->port());
  const std::string probe = EncodeGraphInline(LabelGraph({0, 2, 4}));
  EXPECT_EQ(client.Rpc("QUERY 5 " + probe).rfind("OK ", 0), 0u);
  EXPECT_EQ(client.Rpc("QUERY 5 " + probe).rfind("OK ", 0), 0u);  // cache hit
  EXPECT_EQ(client.Rpc("INSERT " + probe), "OK 20");

  const std::vector<std::string> lines = client.ScrapeMetrics();
  ASSERT_FALSE(lines.empty());
  std::string text;
  for (const std::string& l : lines) text += l + "\n";

  // Counters replaced the old under-mu_ tallies and agree with STATS.
  EXPECT_NE(text.find("# TYPE gdim_requests_accepted_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("gdim_requests_accepted_total 3"), std::string::npos)
      << text;
  EXPECT_NE(text.find("gdim_mutations_total 1"), std::string::npos) << text;
  EXPECT_NE(text.find("# TYPE gdim_queue_depth gauge"), std::string::npos);
  // Per-stage histograms exist and carry this run's samples.
  EXPECT_NE(text.find("# TYPE gdim_stage_admission_wait_usec histogram"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE gdim_stage_map_all_usec histogram"),
            std::string::npos);
  EXPECT_NE(text.find("gdim_stage_map_all_usec_count 2"), std::string::npos)
      << text;
  EXPECT_NE(text.find("gdim_stage_mutation_apply_usec_count 1"),
            std::string::npos)
      << text;
  // The scan histogram is labeled with the kernel that ran it.
  EXPECT_NE(
      text.find("gdim_stage_scan_exact_usec_bucket{kernel=\"" +
                std::string(ActiveScanKernel().name()) + "\",le=\"1\"}"),
      std::string::npos)
      << text;

  // Families come out in stable sorted order, and within each histogram the
  // cumulative buckets are monotone with count == the +Inf bucket.
  std::string previous_family;
  for (size_t i = 0; i < lines.size(); ++i) {
    const std::string& line = lines[i];
    if (line.rfind("# HELP ", 0) != 0) continue;
    const std::string family = line.substr(7, line.find(' ', 7) - 7);
    EXPECT_LT(previous_family, family) << "unsorted at " << family;
    previous_family = family;
  }
  long long cumulative = -1;
  long long inf_bucket = -1;
  for (const std::string& line : lines) {
    if (line.rfind("gdim_stage_map_all_usec_bucket", 0) == 0) {
      const long long v =
          std::strtoll(line.c_str() + line.rfind(' ') + 1, nullptr, 10);
      EXPECT_GE(v, cumulative) << line;
      cumulative = v;
      if (line.find("le=\"+Inf\"") != std::string::npos) inf_bucket = v;
    }
    if (line.rfind("gdim_stage_map_all_usec_count", 0) == 0) {
      EXPECT_EQ(std::strtoll(line.c_str() + line.rfind(' ') + 1, nullptr, 10),
                inf_bucket)
          << line;
    }
  }
  EXPECT_EQ(inf_bucket, 2);

  // STATS stays frozen and consistent with the registry view (the STATS
  // call itself admits one gauges request, hence 4).
  const std::string stats = client.Rpc("STATS");
  EXPECT_EQ(StatsField(stats, "accepted"), 4) << stats;
  EXPECT_GE(StatsField(stats, "uptime_seconds"), 0) << stats;
  EXPECT_GT(StatsField(stats, "start_epoch"), 0) << stats;
  EXPECT_EQ(StatsField(stats, "queue_depth"), 0) << stats;
  EXPECT_GE(StatsField(stats, "queue_high_watermark"), 1) << stats;
}

TEST_F(NetServerTest, TraceOptionReturnsAStageBreakdownLine) {
  Client client(server_->port());
  const Graph probe = LabelGraph({0, 2, 4});
  const std::string spec = EncodeGraphInline(probe);
  const std::string expected =
      FormatRankingResponse(shadow_->Query(probe, {.k = 5}));

  WallTimer client_timer;
  const std::vector<std::string> traced =
      client.RpcMulti("QUERY 5 TRACE=1 " + spec, 2);
  const double client_usec = client_timer.Micros();
  ASSERT_EQ(traced.size(), 2u);
  EXPECT_EQ(traced[0].rfind("TRACE ", 0), 0u) << traced[0];
  EXPECT_EQ(traced[1], expected);
  const long long queue = StatsField(traced[0], "queue");
  const long long map = StatsField(traced[0], "map");
  const long long cache = StatsField(traced[0], "cache");
  const long long scan = StatsField(traced[0], "scan");
  const long long total = StatsField(traced[0], "total");
  EXPECT_GE(queue, 0);
  EXPECT_GE(map, 0);
  EXPECT_GE(cache, 0);
  EXPECT_GE(scan, 0);
  // Stages are non-overlapping segments of the query's life: their sum
  // cannot exceed the total (slack covers the four roundings), and the
  // total cannot exceed the latency the client measured around the RPC.
  EXPECT_LE(queue + map + cache + scan, total + 4) << traced[0];
  EXPECT_LE(static_cast<double>(total), client_usec) << traced[0];
  EXPECT_EQ(StatsField(traced[0], "cache_hit"), 0) << traced[0];

  // The same query again: a cache hit, scan=0, flagged as a hit.
  const std::vector<std::string> hit =
      client.RpcMulti("QUERY 5 TRACE=1 " + spec, 2);
  ASSERT_EQ(hit.size(), 2u);
  EXPECT_EQ(hit[1], expected);
  EXPECT_EQ(StatsField(hit[0], "cache_hit"), 1) << hit[0];
  EXPECT_EQ(StatsField(hit[0], "scan"), 0) << hit[0];

  // TRACE=0 and an untraced query answer exactly one line, bit-identical.
  EXPECT_EQ(client.Rpc("QUERY 5 TRACE=0 " + spec), expected);
  EXPECT_EQ(client.Rpc("QUERY 5 " + spec), expected);
  // The connection is still in sync after all the multi-line traffic.
  EXPECT_EQ(client.Rpc("PING"), "OK pong");
}

TEST_F(NetServerTest, MalformedTraceValueIsATypedError) {
  Client client(server_->port());
  const std::string spec = EncodeGraphInline(LabelGraph({0, 2}));
  EXPECT_EQ(client.Rpc("QUERY 5 TRACE=2 " + spec),
            "ERR InvalidArgument bad QUERY TRACE '2' (want 0|1)");
  EXPECT_EQ(client.Rpc("QUERY 5 TRACE= " + spec),
            "ERR InvalidArgument bad QUERY TRACE '' (want 0|1)");
  EXPECT_EQ(client.Rpc("QUERY 5 TRACE=yes " + spec),
            "ERR InvalidArgument bad QUERY TRACE 'yes' (want 0|1)");
  // The connection survived; a well-formed traced query still works.
  EXPECT_EQ(client.RpcMulti("QUERY 5 TRACE=1 " + spec, 2).size(), 2u);
}

/// Fixture with the slow-query log armed at 1us — every query is an
/// outlier — and a sink capturing the log lines instead of stderr.
class SlowQueryLogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto engine = ShardedEngine::FromIndex(LabelIndex(20), ShardedOptions{});
    ASSERT_TRUE(engine.ok());
    engine_.emplace(std::move(engine).value());
    BatchExecutorOptions executor_opts;
    executor_opts.cache_bytes = 1 << 20;
    executor_opts.slow_query_usec = 1;
    executor_opts.slow_query_sink = [this](const std::string& line) {
      MutexLock lock(&mu_);
      log_lines_.push_back(line);
    };
    executor_.emplace(&*engine_, executor_opts);
    server_.emplace(&*executor_);
    ASSERT_TRUE(server_->Start().ok());
  }

  void TearDown() override { server_->Stop(); }

  std::vector<std::string> LogLines() {
    MutexLock lock(&mu_);
    return log_lines_;
  }

  Mutex mu_;
  std::vector<std::string> log_lines_ GDIM_GUARDED_BY(mu_);
  std::optional<ShardedEngine> engine_;
  std::optional<BatchExecutor> executor_;
  std::optional<NetServer> server_;
};

TEST_F(SlowQueryLogTest, FiresExactlyOncePerSlowQuery) {
  Client client(server_->port());
  const std::string a = EncodeGraphInline(LabelGraph({0, 2, 4}));
  const std::string b = EncodeGraphInline(LabelGraph({1, 3}));
  // Three queries over the 1us threshold — including a cache-hit repeat,
  // which is still a (fast) query and still gets its own log line. The sink
  // fires on the dispatcher before the response promise resolves, so by the
  // time each RPC returns its line is visible.
  EXPECT_EQ(client.Rpc("QUERY 5 " + a).rfind("OK ", 0), 0u);
  EXPECT_EQ(client.Rpc("QUERY 5 " + b).rfind("OK ", 0), 0u);
  EXPECT_EQ(client.Rpc("QUERY 5 " + a).rfind("OK ", 0), 0u);  // cache hit
  // A mutation is not a query: no slow-query line no matter how slow.
  EXPECT_EQ(client.Rpc("INSERT " + a), "OK 20");

  const std::vector<std::string> lines = LogLines();
  ASSERT_EQ(lines.size(), 3u);
  for (const std::string& line : lines) {
    EXPECT_EQ(line.rfind("slow-query total_usec=", 0), 0u) << line;
    EXPECT_GE(StatsField(line, "queue"), 0) << line;
    EXPECT_GE(StatsField(line, "scan"), 0) << line;
    EXPECT_NE(line.find(" k=5 "), std::string::npos) << line;
  }
  EXPECT_EQ(StatsField(lines[0], "cache_hit"), 0) << lines[0];
  EXPECT_EQ(StatsField(lines[2], "cache_hit"), 1) << lines[2];

  // The counter agrees with the sink.
  std::string metrics;
  for (const std::string& l : client.ScrapeMetrics()) metrics += l + "\n";
  EXPECT_NE(metrics.find("gdim_slow_queries_total 3"), std::string::npos)
      << metrics;
}

TEST_F(NetServerTest, StopSeversLiveConnections) {
  Client client(server_->port());
  EXPECT_EQ(client.Rpc("PING"), "OK pong");
  server_->Stop();
  EXPECT_TRUE(client.AtEof());
  // Stop is idempotent.
  server_->Stop();
}

}  // namespace
}  // namespace gdim
