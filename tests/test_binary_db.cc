#include <gtest/gtest.h>

#include "core/binary_db.h"
#include "datasets/chemgen.h"
#include "isomorphism/vf2.h"
#include "mining/gspan.h"

namespace gdim {
namespace {

BinaryFeatureDb SmallBitDb() {
  // 4 graphs × 3 features.
  return BinaryFeatureDb::FromBitMatrix({
      {1, 0, 1},
      {1, 1, 0},
      {0, 1, 0},
      {0, 0, 0},
  });
}

TEST(BinaryFeatureDbTest, FromBitMatrixShape) {
  BinaryFeatureDb db = SmallBitDb();
  EXPECT_EQ(db.num_graphs(), 4);
  EXPECT_EQ(db.num_features(), 3);
}

TEST(BinaryFeatureDbTest, ContainsMatchesMatrix) {
  BinaryFeatureDb db = SmallBitDb();
  EXPECT_TRUE(db.Contains(0, 0));
  EXPECT_FALSE(db.Contains(0, 1));
  EXPECT_TRUE(db.Contains(2, 1));
  EXPECT_FALSE(db.Contains(3, 2));
}

TEST(BinaryFeatureDbTest, InvertedListsConsistent) {
  BinaryFeatureDb db = SmallBitDb();
  EXPECT_EQ(db.FeatureSupport(0), (std::vector<int>{0, 1}));
  EXPECT_EQ(db.FeatureSupport(1), (std::vector<int>{1, 2}));
  EXPECT_EQ(db.FeatureSupport(2), (std::vector<int>{0}));
  EXPECT_EQ(db.GraphFeatures(0), (std::vector<int>{0, 2}));
  EXPECT_EQ(db.GraphFeatures(3), (std::vector<int>{}));
  EXPECT_EQ(db.SupportSize(1), 2);
}

TEST(BinaryFeatureDbTest, SubsetRemapsIds) {
  BinaryFeatureDb db = SmallBitDb();
  BinaryFeatureDb sub = db.Subset({1, 3});
  EXPECT_EQ(sub.num_graphs(), 2);
  EXPECT_EQ(sub.num_features(), 3);
  EXPECT_TRUE(sub.Contains(0, 0));   // old graph 1
  EXPECT_TRUE(sub.Contains(0, 1));
  EXPECT_FALSE(sub.Contains(1, 0));  // old graph 3
  EXPECT_EQ(sub.FeatureSupport(0), (std::vector<int>{0}));
  EXPECT_EQ(sub.FeatureSupport(2), (std::vector<int>{}));
}

TEST(BinaryFeatureDbTest, FromPatternsMatchesVf2Containment) {
  ChemGenOptions copts;
  copts.num_graphs = 30;
  GraphDatabase graphs = GenerateChemDatabase(copts);
  MiningOptions mopts;
  mopts.min_support = 0.3;
  mopts.max_edges = 3;
  auto mined = MineFrequentSubgraphs(graphs, mopts);
  ASSERT_TRUE(mined.ok());
  ASSERT_FALSE(mined->empty());
  BinaryFeatureDb db = BinaryFeatureDb::FromPatterns(
      static_cast<int>(graphs.size()), *mined);
  ASSERT_EQ(db.num_features(), static_cast<int>(mined->size()));
  // The bit matrix from support sets must agree with direct VF2 containment.
  for (int r = 0; r < db.num_features(); ++r) {
    for (int i = 0; i < db.num_graphs(); ++i) {
      EXPECT_EQ(db.Contains(i, r),
                IsSubgraphIsomorphic(db.feature_graphs()[static_cast<size_t>(r)],
                                     graphs[static_cast<size_t>(i)]))
          << "graph " << i << " feature " << r;
    }
  }
}

}  // namespace
}  // namespace gdim
