#include <sstream>

#include <gtest/gtest.h>

#include "graph/graph.h"
#include "graph/graph_io.h"
#include "graph/graph_utils.h"
#include "graph/label_map.h"

namespace gdim {
namespace {

Graph Triangle() {
  Graph g;
  g.AddVertex(0);
  g.AddVertex(1);
  g.AddVertex(2);
  g.AddEdge(0, 1, 5);
  g.AddEdge(1, 2, 6);
  g.AddEdge(0, 2, 7);
  return g;
}

TEST(GraphTest, AddVertexAndEdge) {
  Graph g;
  EXPECT_EQ(g.AddVertex(3), 0);
  EXPECT_EQ(g.AddVertex(4), 1);
  EXPECT_EQ(g.NumVertices(), 2);
  EXPECT_EQ(g.AddEdge(0, 1, 9), 0);
  EXPECT_EQ(g.NumEdges(), 1);
  EXPECT_EQ(g.VertexLabel(0), 3u);
  EXPECT_EQ(g.VertexLabel(1), 4u);
}

TEST(GraphTest, EdgesAreNormalized) {
  Graph g;
  g.AddVertex(0);
  g.AddVertex(0);
  g.AddEdge(1, 0, 2);  // reversed endpoints
  EXPECT_EQ(g.GetEdge(0).u, 0);
  EXPECT_EQ(g.GetEdge(0).v, 1);
  EXPECT_EQ(g.GetEdge(0).label, 2u);
}

TEST(GraphTest, FindEdgeBothDirections) {
  Graph g = Triangle();
  EXPECT_GE(g.FindEdge(0, 1), 0);
  EXPECT_GE(g.FindEdge(1, 0), 0);
  EXPECT_EQ(g.FindEdge(0, 1), g.FindEdge(1, 0));
}

TEST(GraphTest, FindEdgeMissingAndOutOfRange) {
  Graph g;
  g.AddVertex(0);
  g.AddVertex(0);
  EXPECT_EQ(g.FindEdge(0, 1), -1);
  EXPECT_EQ(g.FindEdge(0, 7), -1);
  EXPECT_EQ(g.FindEdge(-1, 0), -1);
}

TEST(GraphTest, NeighborsAndDegree) {
  Graph g = Triangle();
  EXPECT_EQ(g.Degree(0), 2);
  EXPECT_EQ(g.Degree(1), 2);
  EXPECT_EQ(g.Neighbors(0).size(), 2u);
}

TEST(GraphTest, EqualityIsStructural) {
  EXPECT_EQ(Triangle(), Triangle());
  Graph h = Triangle();
  h.AddVertex(9);
  EXPECT_FALSE(Triangle() == h);
}

TEST(GraphTest, ToStringMentionsSizes) {
  Graph g = Triangle();
  g.set_id(42);
  std::string s = g.ToString();
  EXPECT_NE(s.find("42"), std::string::npos);
  EXPECT_NE(s.find("3"), std::string::npos);
}

TEST(GraphUtilsTest, Connectivity) {
  Graph g = Triangle();
  EXPECT_TRUE(IsConnected(g));
  EXPECT_EQ(NumConnectedComponents(g), 1);
  g.AddVertex(0);  // isolated
  EXPECT_FALSE(IsConnected(g));
  EXPECT_EQ(NumConnectedComponents(g), 2);
}

TEST(GraphUtilsTest, EmptyGraphIsConnected) {
  Graph g;
  EXPECT_TRUE(IsConnected(g));
  EXPECT_EQ(NumConnectedComponents(g), 0);
}

TEST(GraphUtilsTest, InducedSubgraph) {
  Graph g = Triangle();
  Graph sub = InducedSubgraph(g, {0, 2});
  EXPECT_EQ(sub.NumVertices(), 2);
  EXPECT_EQ(sub.NumEdges(), 1);
  EXPECT_EQ(sub.GetEdge(0).label, 7u);
}

TEST(GraphUtilsTest, EdgeSubgraphCompactsVertices) {
  Graph g = Triangle();
  Graph sub = EdgeSubgraph(g, {1});  // edge {1,2}
  EXPECT_EQ(sub.NumVertices(), 2);
  EXPECT_EQ(sub.NumEdges(), 1);
  EXPECT_EQ(sub.VertexLabel(0), 1u);
  EXPECT_EQ(sub.VertexLabel(1), 2u);
}

TEST(GraphUtilsTest, Histograms) {
  Graph g = Triangle();
  auto vh = VertexLabelHistogram(g);
  EXPECT_EQ(vh.size(), 3u);
  EXPECT_EQ(vh[0], 1);
  auto eh = EdgeTripleHistogram(g);
  EXPECT_EQ(eh.size(), 3u);
}

TEST(GraphUtilsTest, EdgeLabelIntersectionBound) {
  Graph a = Triangle();
  Graph b = Triangle();
  EXPECT_EQ(EdgeLabelIntersectionBound(a, b), 3);
  Graph c;
  c.AddVertex(9);
  c.AddVertex(9);
  c.AddEdge(0, 1, 1);
  EXPECT_EQ(EdgeLabelIntersectionBound(a, c), 0);
}

TEST(GraphUtilsTest, DegreeSequenceSortedDescending) {
  Graph g = Triangle();
  g.AddVertex(5);
  g.AddEdge(0, 3, 1);
  std::vector<int> deg = DegreeSequence(g);
  EXPECT_EQ(deg, (std::vector<int>{3, 2, 2, 1}));
}

TEST(GraphUtilsTest, Density) {
  EXPECT_DOUBLE_EQ(GraphDensity(Triangle()), 1.0);
  Graph g;
  g.AddVertex(0);
  EXPECT_DOUBLE_EQ(GraphDensity(g), 0.0);
}

TEST(LabelMapTest, InternAndLookup) {
  LabelMap m;
  LabelId c = m.Intern("C");
  LabelId n = m.Intern("N");
  EXPECT_NE(c, n);
  EXPECT_EQ(m.Intern("C"), c);  // idempotent
  EXPECT_EQ(m.size(), 2);
  EXPECT_EQ(m.Name(c), "C");
  LabelId found = 99;
  EXPECT_TRUE(m.Find("N", &found));
  EXPECT_EQ(found, n);
  EXPECT_FALSE(m.Find("Zr", &found));
}

TEST(GraphIoTest, RoundTrip) {
  GraphDatabase db;
  db.push_back(Triangle());
  Graph g2;
  g2.AddVertex(7);
  db.push_back(g2);
  std::ostringstream out;
  WriteGraphStream(db, out);
  std::istringstream in(out.str());
  Result<GraphDatabase> back = ReadGraphStream(in);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ASSERT_EQ(back->size(), 2u);
  EXPECT_EQ((*back)[0], db[0]);
  EXPECT_EQ((*back)[1], db[1]);
}

TEST(GraphIoTest, ParsesCommentsAndBlankLines) {
  std::istringstream in("# header\n\nt # 0\nv 0 1\nv 1 2\ne 0 1 3\n");
  Result<GraphDatabase> db = ReadGraphStream(in);
  ASSERT_TRUE(db.ok());
  ASSERT_EQ(db->size(), 1u);
  EXPECT_EQ((*db)[0].NumEdges(), 1);
  EXPECT_EQ((*db)[0].id(), 0);
}

TEST(GraphIoTest, RejectsMalformedHeader) {
  std::istringstream in("t 0\n");
  EXPECT_FALSE(ReadGraphStream(in).ok());
}

TEST(GraphIoTest, RejectsVertexBeforeHeader) {
  std::istringstream in("v 0 1\n");
  EXPECT_FALSE(ReadGraphStream(in).ok());
}

TEST(GraphIoTest, RejectsNonConsecutiveVertexIds) {
  std::istringstream in("t # 0\nv 1 1\n");
  EXPECT_FALSE(ReadGraphStream(in).ok());
}

TEST(GraphIoTest, RejectsBadEdgeEndpoint) {
  std::istringstream in("t # 0\nv 0 1\ne 0 5 1\n");
  EXPECT_FALSE(ReadGraphStream(in).ok());
}

TEST(GraphIoTest, RejectsDuplicateEdge) {
  std::istringstream in("t # 0\nv 0 1\nv 1 1\ne 0 1 1\ne 1 0 2\n");
  EXPECT_FALSE(ReadGraphStream(in).ok());
}

TEST(GraphIoTest, RejectsUnknownTag) {
  std::istringstream in("t # 0\nq 1 2\n");
  Result<GraphDatabase> r = ReadGraphStream(in);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
}

TEST(GraphIoTest, FileIoErrors) {
  EXPECT_FALSE(ReadGraphFile("/nonexistent/dir/file.gdb").ok());
  GraphDatabase db;
  EXPECT_FALSE(WriteGraphFile(db, "/nonexistent/dir/file.gdb").ok());
}

TEST(GraphIoTest, FileRoundTrip) {
  GraphDatabase db{Triangle()};
  std::string path = ::testing::TempDir() + "/gdim_io_test.gdb";
  ASSERT_TRUE(WriteGraphFile(db, path).ok());
  Result<GraphDatabase> back = ReadGraphFile(path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ((*back)[0], db[0]);
}

}  // namespace
}  // namespace gdim
