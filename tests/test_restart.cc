// Durable-restart differential: a server restarted from a v3 snapshot
// ALONE — no source database — must be indistinguishable from the process
// that wrote it. The snapshot is taken mid-churn, after two REINDEX
// generation swaps; the restarted engine must restore the dimension
// generation and mutation epoch, seed its graph store from the STOR
// section, adopt the persisted IVF layout without a rebuild, and answer
// MODE=full and MODE=approx/NPROBE=all probes bit-identically — at shards
// {1, 4} x threads {1, 8}. The v2 escape hatch documents the pre-v3
// degraded behavior (generation and epoch restart at zero).

#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/sync.h"
#include "core/index_io.h"
#include "datasets/chemgen.h"
#include "graph/graph.h"
#include "reindex/dimension_refresher.h"
#include "serve/query_engine.h"
#include "server/batch_executor.h"
#include "server/sharded_engine.h"
#include "store/graph_store.h"

namespace gdim {
namespace {

/// Small molecule-like corpus: graphs with edges (so mining finds candidate
/// features) but few vertices (so the per-combo REINDEX pipeline stays
/// cheap in a unit test).
ChemGenOptions SmallChem(int n, uint64_t seed) {
  ChemGenOptions opts;
  opts.num_graphs = n;
  opts.num_families = 4;
  opts.min_vertices = 6;
  opts.max_vertices = 9;
  opts.seed = seed;
  return opts;
}

RefreshOptions FastRefresh(const std::string& selector, int p,
                           uint64_t seed) {
  RefreshOptions options;
  options.selector = selector;
  options.p = p;
  options.mining.min_support = 0.3;
  options.mining.max_edges = 3;
  options.seed = seed;
  options.dspmap.partition_size = 10;
  options.dspmap.sample_size = 4;
  return options;
}

/// A store over db with positional ids 0..n-1 (the serve-net load shape).
GraphStore StoreOf(const GraphDatabase& db) {
  GraphStore store;
  ScopedRole writer(&store.writer_role());
  for (size_t i = 0; i < db.size(); ++i) {
    EXPECT_TRUE(store.Put(static_cast<int>(i), db[i]).ok());
  }
  return store;
}

/// Builds the initial serving generation over db — the same pipeline a
/// reindex runs, so the test starts from a "real" dimension.
PersistedIndex InitialIndex(const GraphDatabase& db,
                            const RefreshOptions& options) {
  GraphStore store = StoreOf(db);
  ScopedRole writer(&store.writer_role());
  Result<RefreshedGeneration> generation =
      BuildGeneration(store.Freeze(), options);
  EXPECT_TRUE(generation.ok()) << generation.status().ToString();
  PersistedIndex index;
  index.features = std::move(generation->features);
  index.db_bits = std::move(generation->fingerprints);
  index.ids = std::move(generation->ids);
  return index;
}

TEST(RestartDifferentialTest, V3SnapshotRestartIsBitIdentical) {
  const GraphDatabase corpus = GenerateChemDatabase(SmallChem(24, 91));
  const GraphDatabase extra = GenerateChemQueries(SmallChem(24, 92), 8);
  const GraphDatabase probes = GenerateChemQueries(SmallChem(24, 93), 4);
  const PersistedIndex index =
      InitialIndex(corpus, FastRefresh("DSPMap", 8, 3));
  const QueryOptions full{.k = 6, .scan_mode = ScanMode::kFull};
  const QueryOptions approx_all{
      .k = 6, .scan_mode = ScanMode::kApprox, .nprobe = kNprobeAll};

  for (int shards : {1, 4}) {
    for (int threads : {1, 8}) {
      SCOPED_TRACE("shards=" + std::to_string(shards) +
                   " threads=" + std::to_string(threads));
      ShardedOptions engine_opts;
      engine_opts.num_shards = shards;
      engine_opts.serve.threads = threads;
      auto engine = ShardedEngine::FromIndex(index, engine_opts);
      ASSERT_TRUE(engine.ok()) << engine.status().ToString();
      GraphStore store = StoreOf(corpus);

      BatchExecutorOptions executor_opts;
      executor_opts.cache_bytes = 1 << 20;
      executor_opts.store = &store;
      executor_opts.refresh = FastRefresh("DSPMap", 0, 13);
      const std::string path = ::testing::TempDir() + "/gdim_restart_" +
                               std::to_string(shards) + "_" +
                               std::to_string(threads) + ".idx2";

      uint64_t epoch_before = 0;
      int graphs_before = 0;
      std::vector<Ranking> full_before, approx_before;
      {
        BatchExecutor executor(&*engine, executor_opts);

        // Churn, REINDEX, churn, REINDEX: the snapshot must carry history
        // no single rebuild could reproduce (two generation swaps with
        // different live sets).
        for (int i = 0; i < 4; ++i) {
          ASSERT_TRUE(executor.Insert(extra[static_cast<size_t>(i)]).ok());
        }
        for (int id : {1, 6, 11}) ASSERT_TRUE(executor.Remove(id).ok());
        Result<ReindexReport> gen1 = executor.Reindex(8);
        ASSERT_TRUE(gen1.ok()) << gen1.status().ToString();
        ASSERT_EQ(gen1->generation, 1u);

        for (int i = 4; i < 8; ++i) {
          ASSERT_TRUE(executor.Insert(extra[static_cast<size_t>(i)]).ok());
        }
        ASSERT_TRUE(executor.Remove(2).ok());
        Result<ReindexReport> gen2 = executor.Reindex(8);
        ASSERT_TRUE(gen2.ok()) << gen2.status().ToString();
        ASSERT_EQ(gen2->generation, 2u);

        // Mid-churn state at snapshot time: a live tombstone and fresh
        // delta rows on the current generation, none compacted away.
        ASSERT_TRUE(executor.Remove(5).ok());
        Result<int> last = executor.Insert(probes[0]);
        ASSERT_TRUE(last.ok());

        ASSERT_TRUE(executor.Snapshot(path).ok());

        // Capture the ground truth AFTER the snapshot with no mutations in
        // between, so the file and the captured answers describe the same
        // state.
        Result<EngineGauges> gauges = executor.Gauges();
        ASSERT_TRUE(gauges.ok());
        EXPECT_EQ(gauges->generation, 2u);
        epoch_before = gauges->epoch;
        graphs_before = gauges->graphs;
        for (const Graph& p : probes) {
          Result<Ranking> f = executor.Query(p, full);
          Result<Ranking> a = executor.Query(p, approx_all);
          ASSERT_TRUE(f.ok());
          ASSERT_TRUE(a.ok());
          // NPROBE=all admits every live row, so approx == full even on
          // the pre-restart engine.
          EXPECT_EQ(*a, *f);
          full_before.push_back(std::move(*f));
          approx_before.push_back(std::move(*a));
        }
      }  // the "process" dies: executor, engine, and store all torn down

      // Restart from the file alone — the original store and engine are
      // gone. The STOR section seeds the new store; META restores the
      // generation and epoch; IVFX is adopted, not rebuilt.
      Result<PackedIndex> packed = ReadIndexFilePacked(path);
      ASSERT_TRUE(packed.ok()) << packed.status().ToString();
      ASSERT_TRUE(packed->meta.has_value());
      ASSERT_TRUE(packed->store.has_value());
      ASSERT_TRUE(packed->ivf.has_value());
      EXPECT_EQ(packed->meta->generation, 2u);
      EXPECT_EQ(packed->meta->epoch, epoch_before);
      const size_t persisted_buckets = packed->ivf->buckets.size();

      GraphStore store2;
      {
        ScopedRole writer(&store2.writer_role());
        for (size_t i = 0; i < packed->store->ids.size(); ++i) {
          ASSERT_TRUE(
              store2.Put(packed->store->ids[i], packed->store->graphs[i])
                  .ok());
        }
      }
      packed->store.reset();
      auto engine2 =
          ShardedEngine::FromPacked(std::move(*packed), engine_opts);
      ASSERT_TRUE(engine2.ok()) << engine2.status().ToString();

      // Adopted, not rebuilt: at an unchanged shard count every persisted
      // bucket returns to the shard that wrote it, so the bucket count is
      // exactly the file's (a rebuild would re-cluster to ceil(sqrt(n))
      // buckets per shard and lose the churned layout).
      EXPECT_EQ(static_cast<size_t>(engine2->ivf_buckets()),
                persisted_buckets);
      EXPECT_EQ(engine2->generation(), 2u);
      EXPECT_EQ(engine2->epoch(), epoch_before);

      BatchExecutorOptions executor2_opts = executor_opts;
      executor2_opts.store = &store2;
      BatchExecutor executor2(&*engine2, executor2_opts);
      Result<EngineGauges> gauges2 = executor2.Gauges();
      ASSERT_TRUE(gauges2.ok());
      EXPECT_EQ(gauges2->generation, 2u);
      EXPECT_EQ(gauges2->epoch, epoch_before);
      EXPECT_EQ(gauges2->graphs, graphs_before);

      // The restarted cache starts empty: the first probe is a compulsory
      // miss, never a replay of a pre-restart entry. (Later probes may hit
      // entries THIS process cached — chem probes can share a graph.)
      const BatchExecutorStats fresh = executor2.Stats();
      EXPECT_EQ(fresh.cache.hits, 0u);
      Result<Ranking> first = executor2.Query(probes[0], full);
      ASSERT_TRUE(first.ok());
      EXPECT_EQ(*first, full_before[0]);
      EXPECT_EQ(executor2.Stats().cache.hits, fresh.cache.hits);
      EXPECT_EQ(executor2.Stats().cache.misses, fresh.cache.misses + 1);

      // The differential: every probe, both modes, bit-identical.
      for (size_t i = 0; i < probes.size(); ++i) {
        Result<Ranking> f = executor2.Query(probes[i], full);
        Result<Ranking> a = executor2.Query(probes[i], approx_all);
        ASSERT_TRUE(f.ok());
        ASSERT_TRUE(a.ok());
        EXPECT_EQ(*f, full_before[i]) << "probe " << i;
        EXPECT_EQ(*a, approx_before[i]) << "probe " << i;
      }

      // The restored epoch keeps climbing from the persisted value, and
      // REINDEX works from the snapshot-seeded store — no --db anywhere.
      ASSERT_TRUE(executor2.Remove(0).ok());
      Result<EngineGauges> after = executor2.Gauges();
      ASSERT_TRUE(after.ok());
      EXPECT_GT(after->epoch, epoch_before);
      Result<ReindexReport> gen3 = executor2.Reindex(8);
      ASSERT_TRUE(gen3.ok()) << gen3.status().ToString();
      EXPECT_EQ(gen3->generation, 3u);
    }
  }
}

TEST(RestartDifferentialTest, V2EscapeHatchDegradesToGenerationZero) {
  // The pre-v3 behavior, kept reachable through the explicit kV2Binary
  // escape hatch: the reload serves the right rows but the generation and
  // epoch restart at zero and the IVF index is rebuilt from scratch. (The
  // serve-net loader WARNs about exactly this when it sees a sectionless
  // snapshot; tools/restart_smoke.sh exercises the wire-level path.)
  const GraphDatabase corpus = GenerateChemDatabase(SmallChem(18, 95));
  const PersistedIndex index =
      InitialIndex(corpus, FastRefresh("Sample", 6, 2));
  ShardedOptions opts;
  opts.num_shards = 2;
  auto engine = ShardedEngine::FromIndex(index, opts);
  ASSERT_TRUE(engine.ok());
  ScopedRole writer(&engine->writer_role());
  ASSERT_TRUE(engine->Remove(3).ok());

  // A generation swap, then a v2 snapshot of the swapped engine.
  auto next = ShardedEngine::FromIndex(
      InitialIndex(corpus, FastRefresh("Sample", 6, 7)), opts);
  ASSERT_TRUE(next.ok());
  engine->SwapGeneration(std::move(next).value());
  ASSERT_EQ(engine->generation(), 1u);
  ASSERT_GT(engine->epoch(), 0u);

  const std::string path = ::testing::TempDir() + "/gdim_v2_degraded.idx2";
  ASSERT_TRUE(engine->Snapshot(path, IndexFormat::kV2Binary).ok());
  Result<PackedIndex> packed = ReadIndexFilePacked(path);
  ASSERT_TRUE(packed.ok());
  EXPECT_FALSE(packed->meta.has_value());  // nothing to restore from
  auto reloaded = ShardedEngine::FromPacked(std::move(*packed), opts);
  ASSERT_TRUE(reloaded.ok());
  EXPECT_EQ(reloaded->generation(), 0u);  // pre-restart history is lost
  EXPECT_EQ(reloaded->epoch(), 0u);
  EXPECT_GT(reloaded->ivf_buckets(), 0);  // rebuilt, serving continues
  EXPECT_EQ(reloaded->num_graphs(), engine->num_graphs());

  // The v3 default restores both counters from the same engine state.
  const std::string v3_path = ::testing::TempDir() + "/gdim_v3_meta.idx2";
  ASSERT_TRUE(engine->Snapshot(v3_path).ok());
  auto restored = ShardedEngine::Open(v3_path, opts);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored->generation(), 1u);
  EXPECT_EQ(restored->epoch(), engine->epoch());
}

}  // namespace
}  // namespace gdim
