// Sharded scatter-gather tests: a ShardedEngine over ANY shard count must
// answer bit-identically (ids and scores) to a single QueryEngine on the
// same database — through tie-heavy score distributions, k larger than any
// shard, shards emptied by removals, interleaved churn, and snapshot/reload
// cycles that change the shard count.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/sync.h"
#include "core/index.h"
#include "core/index_io.h"
#include "core/mapper.h"
#include "datasets/chemgen.h"
#include "serve/query_engine.h"
#include "server/sharded_engine.h"

namespace gdim {
namespace {

ShardedOptions Sharded(int num_shards, int threads = 0,
                       bool prefilter = false) {
  ShardedOptions opts;
  opts.num_shards = num_shards;
  opts.serve.threads = threads;
  opts.serve.containment_prefilter = prefilter;
  return opts;
}

class ShardedEngineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ChemGenOptions gen;
    gen.num_graphs = 40;
    gen.num_families = 6;
    gen.min_vertices = 8;
    gen.max_vertices = 14;
    db_ = new GraphDatabase(GenerateChemDatabase(gen));
    // >= 64 queries so QueryBatch crosses ParallelFor's serial threshold
    // and the thread-determinism assertions actually spawn workers.
    queries_ = new GraphDatabase(GenerateChemQueries(gen, 70));
    IndexOptions opts;
    opts.mining.min_support = 0.15;
    opts.mining.max_edges = 4;
    opts.selector = "DSPM";
    opts.p = 30;
    opts.dspm.max_iters = 10;
    auto built = GraphSearchIndex::Build(*db_, opts);
    GDIM_CHECK(built.ok()) << built.status().ToString();
    index_ = new PersistedIndex();
    index_->features = built->dimension();
    index_->db_bits = built->mapped_database();
  }

  static void TearDownTestSuite() {
    delete db_;
    delete queries_;
    delete index_;
    db_ = nullptr;
    queries_ = nullptr;
    index_ = nullptr;
  }

  static GraphDatabase* db_;
  static GraphDatabase* queries_;
  static PersistedIndex* index_;
};

GraphDatabase* ShardedEngineTest::db_ = nullptr;
GraphDatabase* ShardedEngineTest::queries_ = nullptr;
PersistedIndex* ShardedEngineTest::index_ = nullptr;

TEST_F(ShardedEngineTest, AnyShardCountMatchesSingleEngineBitForBit) {
  auto single = QueryEngine::FromIndex(*index_);
  ASSERT_TRUE(single.ok()) << single.status().ToString();
  for (int shards : {1, 2, 4, 7}) {
    for (int threads : {1, 8}) {
      auto engine =
          ShardedEngine::FromIndex(*index_, Sharded(shards, threads));
      ASSERT_TRUE(engine.ok()) << engine.status().ToString();
      EXPECT_EQ(engine->num_shards(), shards);
      EXPECT_EQ(engine->num_graphs(), single->num_graphs());
      for (int k : {0, 3, 1000}) {
        EXPECT_EQ(engine->QueryBatch(*queries_, {.k = k}),
                  single->QueryBatch(*queries_, {.k = k}))
            << "shards=" << shards << " threads=" << threads << " k=" << k;
      }
    }
  }
}

TEST_F(ShardedEngineTest, ScatterStatsAggregateAcrossShards) {
  auto engine = ShardedEngine::FromIndex(*index_, Sharded(4));
  ASSERT_TRUE(engine.ok());
  ServeQueryStats stats;
  const Ranking top = engine->Query((*queries_)[0], {.k = 5}, &stats);
  EXPECT_EQ(static_cast<int>(top.size()), 5);
  // Full scans in every shard sum to the whole database.
  EXPECT_EQ(stats.scanned, engine->num_graphs());
  EXPECT_FALSE(stats.prefiltered);
  EXPECT_GT(stats.latency_ms, 0.0);
}

TEST_F(ShardedEngineTest, InterleavedChurnStaysIdenticalToSingleEngine) {
  FeatureMapper mapper(index_->features);
  for (int threads : {1, 8}) {
    for (bool prefilter : {false, true}) {
      ServeOptions serve;
      serve.threads = threads;
      serve.containment_prefilter = prefilter;
      auto single = QueryEngine::FromIndex(*index_, serve);
      ASSERT_TRUE(single.ok());
      auto sharded = ShardedEngine::FromIndex(
          *index_, Sharded(4, threads, prefilter));
      ASSERT_TRUE(sharded.ok());
      // This test body is both engines' single writer.
      ScopedRole single_writer(&single->writer_role());
      ScopedRole sharded_writer(&sharded->writer_role());

      // Identical mutation script against both engines: the sharded id
      // sequence must mirror the single engine's exactly.
      for (int id : {1, 5, 19, 38}) {
        ASSERT_TRUE(single->Remove(id).ok());
        ASSERT_TRUE(sharded->Remove(id).ok());
      }
      for (int i = 0; i < 10; ++i) {
        const Graph& g = (*queries_)[static_cast<size_t>(i)];
        auto single_id = single->Insert(g);
        auto sharded_id = sharded->Insert(g);
        ASSERT_TRUE(single_id.ok());
        ASSERT_TRUE(sharded_id.ok());
        EXPECT_EQ(*single_id, *sharded_id);
      }
      sharded->Compact();
      single->Compact();
      for (int id : {0, 2, 40, 44}) {  // 40/44 were inserted above
        ASSERT_TRUE(single->Remove(id).ok());
        ASSERT_TRUE(sharded->Remove(id).ok());
      }
      EXPECT_EQ(sharded->Remove(5).code(), StatusCode::kNotFound);  // twice
      EXPECT_EQ(sharded->Remove(-3).code(), StatusCode::kNotFound);
      EXPECT_EQ(sharded->Remove(9999).code(), StatusCode::kNotFound);

      EXPECT_EQ(sharded->alive_ids(), single->alive_ids());
      EXPECT_EQ(sharded->num_graphs(), single->num_graphs());
      for (int k : {0, 3, 1000}) {
        EXPECT_EQ(sharded->QueryBatch(*queries_, {.k = k}),
                  single->QueryBatch(*queries_, {.k = k}))
            << "threads=" << threads << " prefilter=" << prefilter
            << " k=" << k;
      }
    }
  }
}

TEST_F(ShardedEngineTest, SnapshotReloadsUnderAnyShardCount) {
  auto sharded = ShardedEngine::FromIndex(*index_, Sharded(4));
  ASSERT_TRUE(sharded.ok());
  ScopedRole writer(&sharded->writer_role());
  for (int id : {0, 7, 13}) ASSERT_TRUE(sharded->Remove(id).ok());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(sharded->Insert((*queries_)[static_cast<size_t>(i)]).ok());
  }
  const std::string path =
      ::testing::TempDir() + "/gdim_sharded_snapshot.idx2";
  ASSERT_TRUE(sharded->Snapshot(path).ok());

  const std::vector<Ranking> expected =
      sharded->QueryBatch(*queries_, {.k = 6});
  const std::vector<int> expected_ids = sharded->alive_ids();
  // The snapshot is shard-count independent: reload as a single engine and
  // as sharded engines of other counts, all bit-identical.
  auto single = QueryEngine::Open(path);
  ASSERT_TRUE(single.ok()) << single.status().ToString();
  EXPECT_EQ(single->alive_ids(), expected_ids);
  EXPECT_EQ(single->QueryBatch(*queries_, {.k = 6}), expected);
  for (int shards : {2, 7}) {
    auto reloaded = ShardedEngine::Open(path, Sharded(shards));
    ASSERT_TRUE(reloaded.ok());
    ScopedRole reloaded_writer(&reloaded->writer_role());
    EXPECT_EQ(reloaded->alive_ids(), expected_ids);
    EXPECT_EQ(reloaded->QueryBatch(*queries_, {.k = 6}), expected)
        << "shards=" << shards;
    // The persisted id counter survives: the next insert gets the same id
    // everywhere, never a re-issued one.
    auto id = reloaded->Insert((*queries_)[9]);
    ASSERT_TRUE(id.ok());
    EXPECT_EQ(*id, 45);  // 40 initial + 5 inserted, removals don't recycle
  }
}

TEST_F(ShardedEngineTest, RejectsBadShardCountsAndBadIds) {
  EXPECT_FALSE(ShardedEngine::FromIndex(*index_, Sharded(0)).ok());
  EXPECT_FALSE(ShardedEngine::FromIndex(*index_, Sharded(-2)).ok());
  EXPECT_EQ(ShardedEngine::FromIndex(*index_, Sharded(0)).status().code(),
            StatusCode::kInvalidArgument);

  PersistedIndex bad = *index_;
  bad.ids.resize(bad.db_bits.size());
  for (size_t i = 0; i < bad.ids.size(); ++i) {
    bad.ids[i] = static_cast<int>(bad.ids.size() - i);  // descending
  }
  EXPECT_EQ(ShardedEngine::FromIndex(std::move(bad), Sharded(2))
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------------
// Controlled-index tests: single-vertex features make fingerprints exact
// label sets, so tie structure and shard occupancy are fully scripted.

/// p single-vertex features; each row is one of a handful of patterns, so
/// scores collapse onto very few distinct values (maximal tie pressure on
/// the merge).
PersistedIndex TieHeavyIndex(int rows) {
  const int kLabels = 6;
  PersistedIndex index;
  for (LabelId r = 0; r < kLabels; ++r) {
    Graph f;
    f.AddVertex(r);
    index.features.push_back(f);
  }
  const std::vector<std::vector<uint8_t>> patterns = {
      {1, 1, 0, 0, 0, 0}, {0, 0, 1, 1, 0, 0}, {1, 0, 1, 0, 1, 0},
      {0, 1, 0, 1, 0, 1},
  };
  for (int i = 0; i < rows; ++i) {
    index.db_bits.push_back(patterns[static_cast<size_t>(i) %
                                     patterns.size()]);
  }
  return index;
}

TEST(ShardedEngineTieTest, TieHeavyMergePreservesIdOrder) {
  const PersistedIndex index = TieHeavyIndex(40);
  auto single = QueryEngine::FromIndex(index);
  ASSERT_TRUE(single.ok());
  const std::vector<std::vector<uint8_t>> probes = {
      {1, 1, 0, 0, 0, 0}, {0, 0, 0, 0, 0, 0}, {1, 1, 1, 1, 1, 1},
      {1, 0, 0, 0, 0, 1},
  };
  for (int shards : {1, 2, 4, 7}) {
    for (int threads : {1, 8}) {
      auto engine =
          ShardedEngine::FromIndex(index, Sharded(shards, threads));
      ASSERT_TRUE(engine.ok());
      for (const auto& probe : probes) {
        for (int k : {1, 5, 39, 40, 100}) {
          EXPECT_EQ(engine->QueryMapped(probe, {.k = k}),
                    single->QueryMapped(probe, {.k = k}))
              << "shards=" << shards << " threads=" << threads
              << " k=" << k;
        }
      }
    }
  }
}

TEST(ShardedEngineTieTest, KLargerThanAnyShardsLiveRows) {
  const PersistedIndex index = TieHeavyIndex(10);
  auto single = QueryEngine::FromIndex(index);
  ASSERT_TRUE(single.ok());
  // 7 shards over 10 rows: every shard holds 1-2 rows, far below k.
  auto engine = ShardedEngine::FromIndex(index, Sharded(7));
  ASSERT_TRUE(engine.ok());
  const std::vector<uint8_t> probe = {1, 0, 1, 0, 0, 0};
  for (int k : {8, 10, 50}) {
    const Ranking got = engine->QueryMapped(probe, {.k = k});
    EXPECT_EQ(got, single->QueryMapped(probe, {.k = k})) << "k=" << k;
    EXPECT_EQ(got.size(), std::min<size_t>(static_cast<size_t>(k), 10u));
  }
}

TEST(ShardedEngineTieTest, ShardsEmptiedByRemovalsStillMerge) {
  const PersistedIndex index = TieHeavyIndex(12);
  auto single = QueryEngine::FromIndex(index);
  auto engine = ShardedEngine::FromIndex(index, Sharded(4));
  ASSERT_TRUE(single.ok());
  ASSERT_TRUE(engine.ok());
  ScopedRole single_writer(&single->writer_role());
  ScopedRole engine_writer(&engine->writer_role());
  // Remove every id ≡ 1 and ≡ 2 (mod 4): shards 1 and 2 end up empty.
  for (int id = 0; id < 12; ++id) {
    if (id % 4 == 1 || id % 4 == 2) {
      ASSERT_TRUE(single->Remove(id).ok());
      ASSERT_TRUE(engine->Remove(id).ok());
    }
  }
  EXPECT_EQ(engine->shard(1).num_graphs(), 0);
  EXPECT_EQ(engine->shard(2).num_graphs(), 0);
  const std::vector<uint8_t> probe = {0, 1, 1, 0, 0, 0};
  for (int k : {3, 6, 12}) {
    EXPECT_EQ(engine->QueryMapped(probe, {.k = k}),
              single->QueryMapped(probe, {.k = k}))
        << "k=" << k;
  }

  // Empty the database entirely: queries answer cleanly with nothing.
  for (int id = 0; id < 12; ++id) {
    if (id % 4 == 0 || id % 4 == 3) {
      ASSERT_TRUE(engine->Remove(id).ok());
    }
  }
  EXPECT_EQ(engine->num_graphs(), 0);
  EXPECT_TRUE(engine->QueryMapped(probe, {.k = 5}).empty());
  engine->Compact();
  EXPECT_TRUE(engine->QueryMapped(probe, {.k = 5}).empty());
}

TEST(ShardedEngineTieTest, EpochSumsShardMutationsAndFreezeIsStable) {
  const PersistedIndex index = TieHeavyIndex(12);
  auto engine = ShardedEngine::FromIndex(index, Sharded(4));
  ASSERT_TRUE(engine.ok());
  ScopedRole writer(&engine->writer_role());
  EXPECT_EQ(engine->epoch(), 0u);
  const std::vector<uint8_t> probe = {1, 0, 1, 0, 0, 0};
  engine->QueryMapped(probe, {.k = 5});
  EXPECT_EQ(engine->epoch(), 0u);  // queries never bump

  const std::vector<uint8_t> row = {1, 1, 0, 0, 0, 0};
  ASSERT_TRUE(engine->InsertMapped(row).ok());
  EXPECT_EQ(engine->epoch(), 1u);
  ASSERT_TRUE(engine->Remove(3).ok());
  EXPECT_EQ(engine->epoch(), 2u);
  EXPECT_FALSE(engine->Remove(3).ok());  // failed ops leave it alone
  EXPECT_EQ(engine->epoch(), 2u);
  // Compact bumps once per shard that did work; monotonic either way.
  engine->Compact();
  EXPECT_GT(engine->epoch(), 2u);
  const uint64_t settled = engine->epoch();
  engine->Compact();  // global no-op
  EXPECT_EQ(engine->epoch(), settled);

  // Freeze + WriteSnapshot equals the synchronous snapshot bit for bit,
  // and the capture survives mutations applied after it.
  const FrozenShardedState frozen = engine->Freeze();
  EXPECT_EQ(frozen.epoch, settled);
  ASSERT_TRUE(engine->InsertMapped(row).ok());
  ASSERT_TRUE(engine->Remove(0).ok());
  engine->Compact();
  const std::string from_frozen =
      ::testing::TempDir() + "/gdim_frozen_snap.idx2";
  ASSERT_TRUE(ShardedEngine::WriteSnapshot(frozen, from_frozen).ok());
  auto reloaded = QueryEngine::Open(from_frozen);
  ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();
  std::vector<int> frozen_ids;
  for (const FrozenEngineState& shard : frozen.shards) {
    for (const auto& [id, words] : shard.LiveRowWords()) {
      (void)words;
      frozen_ids.push_back(id);
    }
  }
  std::sort(frozen_ids.begin(), frozen_ids.end());
  EXPECT_EQ(reloaded->alive_ids(), frozen_ids);
  for (int k : {1, 6, 20}) {
    // The reloaded capture answers like the engine did at freeze time: it
    // must still contain id 0 (removed after) and not the second insert.
    const Ranking got = reloaded->QueryMapped(probe, {.k = k});
    for (const RankedResult& r : got) EXPECT_NE(r.id, 13);
  }
}

TEST(ShardedEngineTieTest, ToPersistedIndexRoundTripsThroughSingleEngine) {
  const PersistedIndex index = TieHeavyIndex(12);
  auto engine = ShardedEngine::FromIndex(index, Sharded(3));
  ASSERT_TRUE(engine.ok());
  ScopedRole writer(&engine->writer_role());
  ASSERT_TRUE(engine->Remove(4).ok());
  const std::vector<uint8_t> row = {1, 1, 1, 0, 0, 0};
  ASSERT_TRUE(engine->InsertMapped(row).ok());

  auto rebuilt = QueryEngine::FromIndex(engine->ToPersistedIndex());
  ASSERT_TRUE(rebuilt.ok()) << rebuilt.status().ToString();
  EXPECT_EQ(rebuilt->alive_ids(), engine->alive_ids());
  const std::vector<uint8_t> probe = {1, 1, 0, 0, 0, 1};
  for (int k : {1, 6, 20}) {
    EXPECT_EQ(rebuilt->QueryMapped(probe, {.k = k}),
              engine->QueryMapped(probe, {.k = k}));
  }
}

}  // namespace
}  // namespace gdim
