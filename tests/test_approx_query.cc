// Serving-level guarantees of MODE=approx (the IVF candidate-pruning
// path):
//
//  - NPROBE=all is bit-identical to a forced full scan — probing every
//    bucket prunes nothing, and the candidate path scores through the same
//    kernels and the same (score, id) total order.
//  - Incremental maintenance preserves that identity: after any
//    insert/remove/compact churn, a churned engine, a fresh engine built
//    from its live state, and a full scan all agree, across shard counts
//    {1, 4} x thread counts {1, 8}.
//  - At the default probe width on a clustered corpus, approx answers keep
//    recall@10 >= 0.9 against exact while scanning under a quarter of the
//    live rows — the CI gate's in-process twin (bench/approx_workload.cc
//    proves the same at 50k rows).
//  - A generation swap rebuilds every shard's IVF index from the new
//    generation's fingerprints: zero stale-bucket hits, proven by
//    bit-comparison against a from-scratch engine at every probe width.
//  - The BatchExecutor publishes approx scan work (approx_queries,
//    approx_candidates_scanned, approx_rows_pruned) and keys its result
//    cache on nprobe, so different probe depths never share an entry.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/random.h"
#include "common/sync.h"
#include "core/index_io.h"
#include "graph/graph.h"
#include "serve/query_engine.h"
#include "server/batch_executor.h"
#include "server/sharded_engine.h"

namespace gdim {
namespace {

constexpr int kFeatures = 24;
constexpr int kClusters = 8;
constexpr int kRows = 400;
constexpr int kTopK = 10;

/// Single-vertex features (labels 0..p-1): a graph's fingerprint is exactly
/// its vertex-label set, so tests can reason in raw bit vectors.
GraphDatabase LabelFeatures() {
  GraphDatabase features;
  for (LabelId r = 0; r < kFeatures; ++r) {
    Graph f;
    f.AddVertex(r);
    features.push_back(f);
  }
  return features;
}

/// The graph whose fingerprint equals `bits` under LabelFeatures().
Graph GraphForBits(const std::vector<uint8_t>& bits) {
  Graph g;
  for (size_t r = 0; r < bits.size(); ++r) {
    if (bits[r] != 0) g.AddVertex(static_cast<LabelId>(r));
  }
  return g;
}

std::vector<uint8_t> RandomBits(Rng* rng) {
  std::vector<uint8_t> bits(kFeatures);
  for (auto& bit : bits) bit = rng->UniformU64(2) != 0 ? 1 : 0;
  return bits;
}

/// `base` with each bit flipped with probability 1/denominator — the
/// cluster structure IVF exploits (uniform random bits have none).
std::vector<uint8_t> Perturb(const std::vector<uint8_t>& base,
                             uint64_t denominator, Rng* rng) {
  std::vector<uint8_t> bits = base;
  for (auto& bit : bits) {
    if (rng->UniformU64(denominator) == 0) bit = bit != 0 ? 0 : 1;
  }
  return bits;
}

/// A clustered corpus: kClusters prototypes, kRows rows scattered around
/// them with light per-bit noise.
struct Corpus {
  std::vector<std::vector<uint8_t>> prototypes;
  std::vector<std::vector<uint8_t>> rows;
};

Corpus ClusteredCorpus(uint64_t seed) {
  Rng rng(seed);
  Corpus corpus;
  for (int c = 0; c < kClusters; ++c) {
    corpus.prototypes.push_back(RandomBits(&rng));
  }
  for (int i = 0; i < kRows; ++i) {
    const auto& proto =
        corpus.prototypes[rng.UniformU64(kClusters)];
    corpus.rows.push_back(Perturb(proto, /*denominator=*/12, &rng));
  }
  return corpus;
}

PersistedIndex IndexFor(const std::vector<std::vector<uint8_t>>& rows) {
  PersistedIndex index;
  index.features = LabelFeatures();
  index.db_bits = rows;
  return index;
}

ShardedOptions Sharded(int num_shards, int threads = 0) {
  ShardedOptions opts;
  opts.num_shards = num_shards;
  opts.serve.threads = threads;
  return opts;
}

TEST(ApproxQueryTest, NprobeAllIsBitIdenticalToFullScan) {
  const Corpus corpus = ClusteredCorpus(/*seed=*/11);
  const PersistedIndex index = IndexFor(corpus.rows);
  Rng rng(12);
  for (int shards : {1, 4}) {
    auto engine = ShardedEngine::FromIndex(index, Sharded(shards));
    ASSERT_TRUE(engine.ok()) << engine.status().ToString();
    for (int q = 0; q < 20; ++q) {
      const std::vector<uint8_t> query =
          Perturb(corpus.prototypes[static_cast<size_t>(q % kClusters)],
                  /*denominator=*/10, &rng);
      ServeQueryStats approx_stats;
      const Ranking approx = engine->QueryMapped(
          query, {.k = kTopK, .scan_mode = ScanMode::kApprox,
                  .nprobe = kNprobeAll},
          &approx_stats);
      const Ranking full = engine->QueryMapped(
          query, {.k = kTopK, .scan_mode = ScanMode::kFull});
      EXPECT_EQ(approx, full) << "shards=" << shards << " q=" << q;
      EXPECT_TRUE(approx_stats.approx);
      EXPECT_EQ(approx_stats.rows_pruned, 0);
    }
  }
}

TEST(ApproxQueryTest, DefaultNprobeKeepsRecallWhilePruning) {
  const Corpus corpus = ClusteredCorpus(/*seed=*/13);
  const PersistedIndex index = IndexFor(corpus.rows);
  auto engine = ShardedEngine::FromIndex(index, Sharded(1));
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  Rng rng(14);
  double recall_sum = 0.0;
  long long scanned = 0;
  const int num_queries = 40;
  for (int q = 0; q < num_queries; ++q) {
    const std::vector<uint8_t> query =
        Perturb(corpus.prototypes[static_cast<size_t>(q % kClusters)],
                /*denominator=*/10, &rng);
    ServeQueryStats stats;
    const Ranking approx = engine->QueryMapped(
        query, {.k = kTopK, .scan_mode = ScanMode::kApprox}, &stats);
    const Ranking exact = engine->QueryMapped(
        query, {.k = kTopK, .scan_mode = ScanMode::kFull});
    std::set<int> exact_ids;
    for (const RankedResult& r : exact) exact_ids.insert(r.id);
    int hits = 0;
    for (const RankedResult& r : approx) {
      hits += exact_ids.count(r.id) != 0 ? 1 : 0;
    }
    recall_sum += static_cast<double>(hits) /
                  static_cast<double>(exact.size());
    scanned += stats.scanned;
    EXPECT_TRUE(stats.approx);
    EXPECT_EQ(stats.rows_pruned + stats.scanned, kRows);
  }
  EXPECT_GE(recall_sum / num_queries, 0.9);
  // The default probe width (an eighth of the buckets) must scan well
  // under a quarter of the rows — the ISSUE's pruning acceptance bound.
  EXPECT_LT(scanned, static_cast<long long>(num_queries) * kRows / 4);
}

TEST(ApproxQueryTest, MaintenanceChurnPreservesNprobeAllIdentity) {
  const Corpus corpus = ClusteredCorpus(/*seed=*/15);
  for (int shards : {1, 4}) {
    for (int threads : {1, 8}) {
      SCOPED_TRACE("shards=" + std::to_string(shards) +
                   " threads=" + std::to_string(threads));
      auto churned = ShardedEngine::FromIndex(IndexFor(corpus.rows),
                                              Sharded(shards, threads));
      ASSERT_TRUE(churned.ok()) << churned.status().ToString();
      ScopedRole writer(&churned->writer_role());
      Rng rng(16);
      // Interleaved churn: inserts into every shard, removals across the
      // id space, a mid-stream compaction, then more of both.
      for (int step = 0; step < 120; ++step) {
        const uint64_t coin = rng.UniformU64(3);
        if (coin == 0) {
          auto inserted =
              churned->InsertMapped(Perturb(
                  corpus.prototypes[rng.UniformU64(kClusters)],
                  /*denominator=*/12, &rng));
          ASSERT_TRUE(inserted.ok());
        } else if (coin == 1) {
          const std::vector<int> alive = churned->alive_ids();
          if (!alive.empty()) {
            ASSERT_TRUE(
                churned->Remove(alive[rng.UniformU64(alive.size())]).ok());
          }
        } else if (step == 60) {
          churned->Compact();
        }
      }
      churned->Compact();
      // A fresh engine over the churned live state: its IVF index is a
      // from-scratch clustering, the churned one is Build + AddRow +
      // Renumber — at NPROBE=all both degrade to the full live set, so
      // every query must agree bit for bit (and with the full scan).
      auto fresh = ShardedEngine::FromIndex(churned->ToPersistedIndex(),
                                            Sharded(shards, threads));
      ASSERT_TRUE(fresh.ok()) << fresh.status().ToString();
      for (int q = 0; q < 15; ++q) {
        const std::vector<uint8_t> query =
            Perturb(corpus.prototypes[static_cast<size_t>(q % kClusters)],
                    /*denominator=*/10, &rng);
        const QueryOptions approx_all{.k = kTopK,
                                      .scan_mode = ScanMode::kApprox,
                                      .nprobe = kNprobeAll};
        const Ranking churned_approx =
            churned->QueryMapped(query, approx_all);
        EXPECT_EQ(churned_approx, fresh->QueryMapped(query, approx_all));
        EXPECT_EQ(churned_approx,
                  churned->QueryMapped(
                      query, {.k = kTopK, .scan_mode = ScanMode::kFull}));
      }
    }
  }
}

TEST(ApproxQueryTest, GenerationSwapRebuildsIvfWithZeroStaleBuckets) {
  const Corpus corpus = ClusteredCorpus(/*seed=*/17);
  auto engine =
      ShardedEngine::FromIndex(IndexFor(corpus.rows), Sharded(4, 2));
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  ScopedRole writer(&engine->writer_role());
  // Churn the first generation so its IVF postings diverge from what a
  // fresh build over the final live set would produce.
  Rng rng(18);
  for (int step = 0; step < 60; ++step) {
    if (rng.UniformU64(2) == 0) {
      ASSERT_TRUE(engine
                      ->InsertMapped(Perturb(
                          corpus.prototypes[rng.UniformU64(kClusters)],
                          /*denominator=*/12, &rng))
                      .ok());
    } else {
      const std::vector<int> alive = engine->alive_ids();
      ASSERT_TRUE(engine->Remove(alive[rng.UniformU64(alive.size())]).ok());
    }
  }
  // The swap: a new generation built over the live set, exactly what the
  // reindex pipeline installs. Its shards (and their IVF indexes) are
  // fresh builds.
  const PersistedIndex live = engine->ToPersistedIndex();
  auto next = ShardedEngine::FromIndex(live, Sharded(4, 2));
  ASSERT_TRUE(next.ok()) << next.status().ToString();
  const uint64_t generation_before = engine->generation();
  engine->SwapGeneration(std::move(next).value());
  EXPECT_EQ(engine->generation(), generation_before + 1);

  // Zero stale-bucket hits: at EVERY probe width the swapped engine
  // answers bit-identically to a from-scratch engine over the same rows —
  // any posting left over from the pre-swap clustering would change some
  // narrow-probe candidate pool and show up as a ranking diff.
  auto fresh = ShardedEngine::FromIndex(live, Sharded(4, 2));
  ASSERT_TRUE(fresh.ok()) << fresh.status().ToString();
  EXPECT_EQ(engine->ivf_buckets(), fresh->ivf_buckets());
  for (int q = 0; q < 10; ++q) {
    const std::vector<uint8_t> query =
        Perturb(corpus.prototypes[static_cast<size_t>(q % kClusters)],
                /*denominator=*/10, &rng);
    for (int nprobe : {1, 2, 3, kNprobeAll}) {
      EXPECT_EQ(engine->QueryMapped(query,
                                    {.k = kTopK,
                                     .scan_mode = ScanMode::kApprox,
                                     .nprobe = nprobe}),
                fresh->QueryMapped(query, {.k = kTopK,
                                           .scan_mode = ScanMode::kApprox,
                                           .nprobe = nprobe}))
          << "q=" << q << " nprobe=" << nprobe;
    }
  }
}

TEST(ApproxQueryTest, ExecutorPublishesApproxCountersAndKeysCacheOnNprobe) {
  const Corpus corpus = ClusteredCorpus(/*seed=*/19);
  auto engine =
      ShardedEngine::FromIndex(IndexFor(corpus.rows), Sharded(2, 2));
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  BatchExecutorOptions opts;
  opts.cache_bytes = 1 << 20;
  BatchExecutor executor(&engine.value(), opts);
  Rng rng(20);
  const Graph query = GraphForBits(
      Perturb(corpus.prototypes[0], /*denominator=*/10, &rng));

  const QueryOptions narrow{.k = kTopK, .scan_mode = ScanMode::kApprox,
                            .nprobe = 1};
  const QueryOptions all{.k = kTopK, .scan_mode = ScanMode::kApprox,
                         .nprobe = kNprobeAll};
  auto narrow_answer = executor.Query(query, narrow);
  ASSERT_TRUE(narrow_answer.ok());
  auto all_answer = executor.Query(query, all);
  ASSERT_TRUE(all_answer.ok());
  const BatchExecutorStats after_cold = executor.Stats();
  EXPECT_EQ(after_cold.approx_queries, 2u);
  EXPECT_EQ(after_cold.approx_candidates_scanned +
                after_cold.approx_rows_pruned,
            2u * kRows);
  EXPECT_GT(after_cold.approx_rows_pruned, 0u);  // nprobe=1 pruned rows

  // Same fingerprint, different nprobe: the cache must key them apart. The
  // repeats must be hits that replay each depth's own answer, and hits do
  // not re-count scan work.
  auto narrow_hit = executor.Query(query, narrow);
  auto all_hit = executor.Query(query, all);
  ASSERT_TRUE(narrow_hit.ok() && all_hit.ok());
  EXPECT_EQ(*narrow_hit, *narrow_answer);
  EXPECT_EQ(*all_hit, *all_answer);
  const BatchExecutorStats after_hits = executor.Stats();
  EXPECT_EQ(after_hits.cache.hits, 2u);
  EXPECT_EQ(after_hits.approx_queries, 2u);
  EXPECT_EQ(after_hits.approx_candidates_scanned,
            after_cold.approx_candidates_scanned);

  // The full-scan answer equals NPROBE=all through the executor too.
  auto full = executor.Query(query, {.k = kTopK,
                                     .scan_mode = ScanMode::kFull});
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(*full, *all_answer);
}

TEST(ApproxQueryTest, ChurnedCountersCountOnlyLiveRows) {
  // IVF maintenance is lazy: removals leave tombstoned postings in their
  // buckets until the next Compact. Those ghosts must be invisible in the
  // published STATS — approx_candidates_scanned counts live rows actually
  // scored and approx_rows_pruned is live minus scanned, so per approx
  // query the two sum to the LIVE count, never the (inflated) physical
  // row count.
  const Corpus corpus = ClusteredCorpus(/*seed=*/23);
  auto engine =
      ShardedEngine::FromIndex(IndexFor(corpus.rows), Sharded(2, 2));
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  BatchExecutorOptions opts;
  opts.cache_bytes = 1 << 20;
  BatchExecutor executor(&engine.value(), opts);

  // Heavy churn, no compact: a third of the corpus tombstoned, a batch of
  // fresh rows appended to the deltas.
  Rng rng(24);
  for (int id = 0; id < kRows; id += 3) {
    ASSERT_TRUE(executor.Remove(id).ok());
  }
  for (int i = 0; i < 30; ++i) {
    const auto& proto = corpus.prototypes[static_cast<size_t>(i % kClusters)];
    ASSERT_TRUE(
        executor.Insert(GraphForBits(Perturb(proto, /*denominator=*/10,
                                             &rng)))
            .ok());
  }
  auto gauges = executor.Gauges();
  ASSERT_TRUE(gauges.ok());
  const uint64_t live = static_cast<uint64_t>(gauges->graphs);
  ASSERT_GT(gauges->tombstones, 0);  // the ghosts the counters must ignore
  const uint64_t physical = static_cast<uint64_t>(gauges->physical_rows);
  ASSERT_GT(physical, live);

  // A narrow probe: whatever it scans plus whatever it prunes must be
  // exactly the live set.
  const Graph q1 = GraphForBits(
      Perturb(corpus.prototypes[1], /*denominator=*/10, &rng));
  ASSERT_TRUE(executor
                  .Query(q1, {.k = kTopK, .scan_mode = ScanMode::kApprox,
                              .nprobe = 1})
                  .ok());
  const BatchExecutorStats narrow = executor.Stats();
  EXPECT_EQ(narrow.approx_candidates_scanned + narrow.approx_rows_pruned,
            live);
  EXPECT_GT(narrow.approx_rows_pruned, 0u);

  // NPROBE=all prunes nothing: it scans the live rows — all of them and
  // only them. A tombstone-inflated counter would report `physical` here.
  const Graph q2 = GraphForBits(
      Perturb(corpus.prototypes[2], /*denominator=*/10, &rng));
  ASSERT_TRUE(executor
                  .Query(q2, {.k = kTopK, .scan_mode = ScanMode::kApprox,
                              .nprobe = kNprobeAll})
                  .ok());
  const BatchExecutorStats all = executor.Stats();
  EXPECT_EQ(all.approx_candidates_scanned - narrow.approx_candidates_scanned,
            live);
  EXPECT_EQ(all.approx_rows_pruned, narrow.approx_rows_pruned);
}

TEST(ApproxQueryTest, SaturatedNprobeSharesTheNprobeAllCacheEntry) {
  // NPROBE=n with n >= every shard's bucket count probes everything, so it
  // answers bit-identically to NPROBE=all — and must therefore share its
  // cache entry. The executor normalizes saturated depths to kNprobeAll
  // before keying; without that, the same answer would be computed and
  // stored once per distinct spelling of "all of it".
  const Corpus corpus = ClusteredCorpus(/*seed=*/29);
  auto engine =
      ShardedEngine::FromIndex(IndexFor(corpus.rows), Sharded(2, 2));
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  const int saturation = engine->max_shard_ivf_buckets();
  ASSERT_GT(saturation, 0);
  BatchExecutorOptions opts;
  opts.cache_bytes = 1 << 20;
  BatchExecutor executor(&engine.value(), opts);
  Rng rng(30);
  const Graph query = GraphForBits(
      Perturb(corpus.prototypes[3], /*denominator=*/10, &rng));

  // Cold fill under one spelling, then every saturated spelling hits it.
  auto all_answer = executor.Query(
      query, {.k = kTopK, .scan_mode = ScanMode::kApprox,
              .nprobe = saturation + 7});
  ASSERT_TRUE(all_answer.ok());
  for (int nprobe : {saturation, saturation + 1, kNprobeAll}) {
    auto repeat = executor.Query(
        query,
        {.k = kTopK, .scan_mode = ScanMode::kApprox, .nprobe = nprobe});
    ASSERT_TRUE(repeat.ok());
    EXPECT_EQ(*repeat, *all_answer) << "nprobe=" << nprobe;
  }
  const BatchExecutorStats stats = executor.Stats();
  EXPECT_EQ(stats.cache.hits, 3u);
  EXPECT_EQ(stats.approx_queries, 1u);  // one computation, three replays

  // One below saturation is a genuinely different probe set: its own miss,
  // its own entry.
  auto narrower = executor.Query(
      query, {.k = kTopK, .scan_mode = ScanMode::kApprox,
              .nprobe = saturation - 1});
  ASSERT_TRUE(narrower.ok());
  EXPECT_EQ(executor.Stats().cache.hits, 3u);
  EXPECT_EQ(executor.Stats().approx_queries, 2u);
}

}  // namespace
}  // namespace gdim
