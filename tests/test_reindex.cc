// Reindex subsystem tests: the background dimension refresh produces
// deterministic generations, the hot swap is bit-identical to an offline
// rebuild over the same live set and seed (across shard counts, thread
// counts, and prefilter settings), epoch/generation counters prove the
// result cache never crosses a generation boundary, and — via a FIFO-parked
// selection — queries and mutations demonstrably flow while a refresh is in
// progress, with churn-during-selection reconciled into the swapped
// generation.

#include <gtest/gtest.h>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <chrono>
#include <future>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/sync.h"
#include "datasets/chemgen.h"
#include "graph/graph.h"
#include "reindex/dimension_refresher.h"
#include "serve/query_engine.h"
#include "server/batch_executor.h"
#include "server/sharded_engine.h"
#include "store/graph_store.h"

namespace gdim {
namespace {

/// Small molecule-like corpus: graphs with edges (so mining finds candidate
/// features) but few vertices (so mining and DSPMap's MCS blocks stay
/// cheap in a unit test).
ChemGenOptions SmallChem(int n, uint64_t seed) {
  ChemGenOptions opts;
  opts.num_graphs = n;
  opts.num_families = 4;
  opts.min_vertices = 6;
  opts.max_vertices = 9;
  opts.seed = seed;
  return opts;
}

/// Refresh options the tests share; selector chosen per test (DSPMap for
/// the differential, the cheap seeded "Sample" where selection quality is
/// irrelevant).
RefreshOptions FastRefresh(const std::string& selector, int p,
                           uint64_t seed) {
  RefreshOptions options;
  options.selector = selector;
  options.p = p;
  options.mining.min_support = 0.3;
  options.mining.max_edges = 3;
  options.seed = seed;
  options.dspmap.partition_size = 10;
  options.dspmap.sample_size = 4;
  return options;
}

/// A store over db with positional ids 0..n-1 (the serve-net load shape).
GraphStore StoreOf(const GraphDatabase& db) {
  GraphStore store;
  ScopedRole writer(&store.writer_role());
  for (size_t i = 0; i < db.size(); ++i) {
    EXPECT_TRUE(store.Put(static_cast<int>(i), db[i]).ok());
  }
  return store;
}

/// Builds the initial serving generation over db with the given refresh
/// options — the same pipeline a reindex runs, so tests start from a
/// "real" dimension.
PersistedIndex InitialIndex(const GraphDatabase& db,
                            const RefreshOptions& options) {
  GraphStore store = StoreOf(db);
  ScopedRole writer(&store.writer_role());
  Result<RefreshedGeneration> generation =
      BuildGeneration(store.Freeze(), options);
  EXPECT_TRUE(generation.ok()) << generation.status().ToString();
  PersistedIndex index;
  index.features = std::move(generation->features);
  index.db_bits = std::move(generation->fingerprints);
  index.ids = std::move(generation->ids);
  return index;
}

// ------------------------------------------------------------- pipeline --

TEST(BuildGenerationTest, DeterministicInFrozenSetAndSeed) {
  const GraphDatabase db = GenerateChemDatabase(SmallChem(18, 11));
  GraphStore store = StoreOf(db);
  ScopedRole writer(&store.writer_role());
  const RefreshOptions options = FastRefresh("DSPMap", 8, 5);
  Result<RefreshedGeneration> a = BuildGeneration(store.Freeze(), options);
  Result<RefreshedGeneration> b = BuildGeneration(store.Freeze(), options);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->features.size(), 8u);
  ASSERT_EQ(a->features.size(), b->features.size());
  for (size_t r = 0; r < a->features.size(); ++r) {
    EXPECT_EQ(a->features[r], b->features[r]) << "feature " << r;
  }
  EXPECT_EQ(a->ids, b->ids);
  EXPECT_EQ(a->fingerprints, b->fingerprints);
  EXPECT_GE(a->mined_features, 8);
}

TEST(BuildGenerationTest, FingerprintsAgreeWithTheMapper) {
  // Support-set fingerprints (mining) and VF2 fingerprints (mapper) answer
  // the same subgraph-isomorphism question — the property the swap
  // reconcile path depends on.
  const GraphDatabase db = GenerateChemDatabase(SmallChem(16, 3));
  GraphStore store = StoreOf(db);
  ScopedRole writer(&store.writer_role());
  Result<RefreshedGeneration> generation =
      BuildGeneration(store.Freeze(), FastRefresh("DSPMap", 6, 9));
  ASSERT_TRUE(generation.ok()) << generation.status().ToString();
  const FeatureMapper mapper(generation->features);
  for (size_t i = 0; i < db.size(); ++i) {
    EXPECT_EQ(generation->fingerprints[i], mapper.Map(db[i])) << "graph " << i;
  }
}

TEST(BuildGenerationTest, RejectsDegenerateInputs) {
  const GraphDatabase db = GenerateChemDatabase(SmallChem(8, 1));
  GraphStore store = StoreOf(db);
  ScopedRole writer(&store.writer_role());
  EXPECT_EQ(
      BuildGeneration(FrozenGraphSet{}, FastRefresh("DSPMap", 4, 1)).status()
          .code(),
      StatusCode::kInvalidArgument);
  EXPECT_EQ(BuildGeneration(store.Freeze(), FastRefresh("DSPMap", 0, 1))
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(BuildGeneration(store.Freeze(), FastRefresh("NoSuchSelector", 4, 1))
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  RefreshOptions impossible = FastRefresh("DSPMap", 4, 1);
  impossible.mining.min_support_count = 1000;  // nothing is that frequent
  EXPECT_EQ(BuildGeneration(store.Freeze(), impossible).status().code(),
            StatusCode::kNotFound);
}

// ------------------------------------------------------ generation swap --

TEST(GenerationSwapTest, QueryEngineAdoptKeepsEpochStrictlyMonotonic) {
  const GraphDatabase db = GenerateChemDatabase(SmallChem(12, 21));
  const PersistedIndex index = InitialIndex(db, FastRefresh("Sample", 6, 2));
  auto engine = QueryEngine::FromIndex(index);
  ASSERT_TRUE(engine.ok());
  ScopedRole writer(&engine->writer_role());
  ASSERT_TRUE(engine->Remove(0).ok());
  ASSERT_TRUE(engine->Remove(1).ok());
  const uint64_t before = engine->epoch();
  ASSERT_GE(before, 2u);

  auto next = QueryEngine::FromIndex(
      InitialIndex(db, FastRefresh("Sample", 4, 7)));
  ASSERT_TRUE(next.ok());
  EXPECT_EQ(next->epoch(), 0u);  // fresh build
  engine->AdoptGeneration(std::move(next).value());
  EXPECT_GT(engine->epoch(), before);
  EXPECT_EQ(engine->num_features(), 4);
  EXPECT_EQ(engine->num_graphs(), static_cast<int>(db.size()));

  // Raising is monotonic and never lowers.
  const uint64_t raised = engine->epoch() + 5;
  engine->RaiseEpochToAtLeast(raised);
  EXPECT_EQ(engine->epoch(), raised);
  engine->RaiseEpochToAtLeast(1);
  EXPECT_EQ(engine->epoch(), raised);
}

TEST(GenerationSwapTest, ShardedSwapBumpsEpochAndGeneration) {
  const GraphDatabase db = GenerateChemDatabase(SmallChem(14, 31));
  const PersistedIndex index = InitialIndex(db, FastRefresh("Sample", 6, 2));
  ShardedOptions opts;
  opts.num_shards = 3;
  auto engine = ShardedEngine::FromIndex(index, opts);
  ASSERT_TRUE(engine.ok());
  ScopedRole writer(&engine->writer_role());
  ASSERT_TRUE(engine->Remove(2).ok());
  const uint64_t before = engine->epoch();
  EXPECT_EQ(engine->generation(), 0u);

  auto next = ShardedEngine::FromIndex(
      InitialIndex(db, FastRefresh("Sample", 5, 7)), opts);
  ASSERT_TRUE(next.ok());
  engine->SwapGeneration(std::move(next).value());
  EXPECT_GT(engine->epoch(), before);
  EXPECT_EQ(engine->generation(), 1u);
  EXPECT_EQ(engine->num_features(), 5);
  EXPECT_EQ(engine->num_graphs(), static_cast<int>(db.size()));
  EXPECT_EQ(engine->tombstoned_rows(), 0);  // fresh generation, no ghosts

  // Swapping again keeps climbing — epochs never reset across generations.
  const uint64_t second = engine->epoch();
  auto again = ShardedEngine::FromIndex(
      InitialIndex(db, FastRefresh("Sample", 5, 8)), opts);
  ASSERT_TRUE(again.ok());
  engine->SwapGeneration(std::move(again).value());
  EXPECT_GT(engine->epoch(), second);
  EXPECT_EQ(engine->generation(), 2u);
}

// ------------------------------------------------- online vs offline ----

/// The acceptance differential: churn through the executor, REINDEX, and
/// compare the swapped-in generation's answers bit-for-bit against a fresh
/// engine built offline (same pipeline, same live set, same seed) — at
/// shards {1, 4} × threads {1, 8}, with and without the containment
/// prefilter; half the combinations compact mid-churn. Epoch, generation,
/// and cache counters prove the swap invalidated every cached answer.
TEST(ReindexDifferentialTest, SwapMatchesOfflineRebuild) {
  const GraphDatabase corpus = GenerateChemDatabase(SmallChem(26, 77));
  const GraphDatabase fresh_graphs =
      GenerateChemQueries(SmallChem(26, 78), 8);
  const GraphDatabase probes = GenerateChemQueries(SmallChem(26, 79), 5);
  const RefreshOptions initial = FastRefresh("DSPMap", 10, 3);
  const PersistedIndex index = InitialIndex(corpus, initial);

  int combo = 0;
  for (int shards : {1, 4}) {
    for (int threads : {1, 8}) {
      for (bool prefilter : {false, true}) {
        SCOPED_TRACE("shards=" + std::to_string(shards) + " threads=" +
                     std::to_string(threads) +
                     (prefilter ? " prefilter" : ""));
        ShardedOptions engine_opts;
        engine_opts.num_shards = shards;
        engine_opts.serve.threads = threads;
        engine_opts.serve.containment_prefilter = prefilter;
        auto engine = ShardedEngine::FromIndex(index, engine_opts);
        ASSERT_TRUE(engine.ok()) << engine.status().ToString();
        GraphStore store = StoreOf(corpus);

        BatchExecutorOptions executor_opts;
        executor_opts.cache_bytes = 1 << 20;
        executor_opts.store = &store;
        executor_opts.refresh = FastRefresh("DSPMap", 0, 13);
        BatchExecutor executor(&*engine, executor_opts);

        // Churn: insert the shifted graphs, remove every fourth original.
        for (const Graph& g : fresh_graphs) {
          ASSERT_TRUE(executor.Insert(g).ok());
        }
        for (size_t id = 0; id < corpus.size(); id += 4) {
          ASSERT_TRUE(executor.Remove(static_cast<int>(id)).ok());
        }
        if (combo % 2 == 0) {
          Result<int> reclaimed = executor.Compact();
          ASSERT_TRUE(reclaimed.ok());
          EXPECT_EQ(*reclaimed, static_cast<int>((corpus.size() + 3) / 4));
        }

        // Warm the cache on the old generation, and capture pre-swap
        // gauges.
        std::vector<Ranking> before;
        for (const Graph& p : probes) {
          Result<Ranking> cold = executor.Query(p, {.k = 6});
          ASSERT_TRUE(cold.ok());
          Result<Ranking> hot = executor.Query(p, {.k = 6});
          ASSERT_TRUE(hot.ok());
          EXPECT_EQ(*hot, *cold);
          before.push_back(std::move(*cold));
        }
        Result<EngineGauges> pre = executor.Gauges();
        ASSERT_TRUE(pre.ok());
        EXPECT_EQ(pre->generation, 0u);
        ASSERT_GE(executor.Stats().cache.hits, probes.size());

        // The online reindex. It is ONE client request: the internal
        // generation-adoption step must not fabricate a phantom entry in
        // the accepted/completed arithmetic clients do from STATS deltas.
        const uint64_t accepted_before = executor.Stats().accepted;
        Result<ReindexReport> report = executor.Reindex(8);
        ASSERT_TRUE(report.ok()) << report.status().ToString();
        EXPECT_EQ(report->generation, 1u);
        EXPECT_EQ(report->features, 8);
        EXPECT_EQ(report->remapped, 0);  // no churn during this refresh
        const BatchExecutorStats drained = executor.Stats();
        EXPECT_EQ(drained.accepted, accepted_before + 1);
        EXPECT_EQ(drained.completed, drained.accepted);

        Result<EngineGauges> post = executor.Gauges();
        ASSERT_TRUE(post.ok());
        EXPECT_GT(post->epoch, pre->epoch);
        EXPECT_EQ(post->generation, 1u);
        EXPECT_EQ(post->features, 8);
        EXPECT_EQ(post->graphs, pre->graphs);
        const BatchExecutorStats stats = executor.Stats();
        EXPECT_EQ(stats.reindexes_completed, 1u);
        EXPECT_EQ(stats.reindexes_in_progress, 0u);

        // The offline rebuild: same live set, same pipeline, same seed.
        RefreshOptions offline_opts = FastRefresh("DSPMap", 8, 13);
        // The executor is idle (every request above has drained), so this
        // thread may act as the store's writer for the capture.
        ScopedRole store_writer(&store.writer_role());
        Result<RefreshedGeneration> offline =
            BuildGeneration(store.Freeze(), offline_opts);
        ASSERT_TRUE(offline.ok()) << offline.status().ToString();
        PersistedIndex offline_index;
        offline_index.features = std::move(offline->features);
        offline_index.db_bits = std::move(offline->fingerprints);
        offline_index.ids = std::move(offline->ids);
        auto offline_engine =
            ShardedEngine::FromIndex(std::move(offline_index), engine_opts);
        ASSERT_TRUE(offline_engine.ok());

        // Cross-generation proof on a distinguished probe: probes[0] is
        // cached on the OLD generation (warmed above); its first query
        // after the swap must be a fresh miss — the epoch bump makes the
        // old entry unreachable — answered exactly like the offline build.
        const uint64_t hits_at_swap = executor.Stats().cache.hits;
        const uint64_t misses_at_swap = executor.Stats().cache.misses;
        Result<Ranking> first = executor.Query(probes[0], {.k = 6});
        ASSERT_TRUE(first.ok());
        EXPECT_EQ(*first, offline_engine->Query(probes[0], {.k = 6}));
        EXPECT_EQ(executor.Stats().cache.hits, hits_at_swap)
            << "a cached answer crossed the generation boundary";
        EXPECT_EQ(executor.Stats().cache.misses, misses_at_swap + 1);

        // Bit-identical answers for the whole probe set (probes sharing a
        // fingerprint may legitimately hit same-generation entries now).
        for (size_t i = 0; i < probes.size(); ++i) {
          const Ranking expected = offline_engine->Query(probes[i], {.k = 6});
          Result<Ranking> got = executor.Query(probes[i], {.k = 6});
          ASSERT_TRUE(got.ok());
          EXPECT_EQ(*got, expected) << "probe " << i;
        }
        ++combo;
      }
    }
  }
}

// ----------------------------------------------- refresh under traffic --

TEST(ReindexLiveTest, ReindexUnavailableWithoutStore) {
  const GraphDatabase db = GenerateChemDatabase(SmallChem(10, 41));
  auto engine =
      ShardedEngine::FromIndex(InitialIndex(db, FastRefresh("Sample", 5, 2)));
  ASSERT_TRUE(engine.ok());
  BatchExecutor executor(&*engine);
  Result<ReindexReport> report = executor.Reindex();
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kInvalidArgument);
}

/// The deterministic mid-selection proof: the refresh thread parks on a
/// FIFO open before mining (selection_gate), and while it is provably
/// parked — reindex_in_progress == 1, the FIFO has no writer — queries are
/// answered and mutations land. Opening the writer releases the refresh;
/// the swap must then reflect the mutations that happened DURING the
/// selection (inserted graph present on the new dimension, removed graph
/// gone), because the adopt step reconciles against the live store.
TEST(ReindexLiveTest, QueriesAndMutationsFlowWhileSelectionIsParked) {
  const GraphDatabase corpus = GenerateChemDatabase(SmallChem(20, 51));
  const GraphDatabase extra = GenerateChemQueries(SmallChem(20, 52), 2);
  auto engine = ShardedEngine::FromIndex(
      InitialIndex(corpus, FastRefresh("Sample", 6, 2)), [] {
        ShardedOptions opts;
        opts.num_shards = 2;
        return opts;
      }());
  ASSERT_TRUE(engine.ok());
  GraphStore store = StoreOf(corpus);

  const std::string fifo = ::testing::TempDir() + "/gdim_reindex_fifo_" +
                           std::to_string(::getpid());
  ::unlink(fifo.c_str());
  ASSERT_EQ(::mkfifo(fifo.c_str(), 0600), 0);

  BatchExecutorOptions executor_opts;
  executor_opts.cache_bytes = 1 << 20;
  executor_opts.store = &store;
  executor_opts.refresh = FastRefresh("Sample", 0, 23);
  executor_opts.refresh.selection_gate = [fifo] {
    // Parks until the test opens the write end: a blocking FIFO open is
    // the deterministic "selection still running" state.
    const int fd = ::open(fifo.c_str(), O_RDONLY);
    ASSERT_GE(fd, 0);
    char byte;
    while (::read(fd, &byte, 1) == 1) {
    }
    ::close(fd);
  };
  BatchExecutor executor(&*engine, executor_opts);

  auto pending = std::async(std::launch::async,
                            [&] { return executor.Reindex(5); });
  for (int i = 0;
       i < 5000 && executor.Stats().reindexes_in_progress == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(executor.Stats().reindexes_in_progress, 1u);

  // Queries flow while the selection is parked...
  Result<Ranking> during = executor.Query(corpus[0], {.k = 3});
  ASSERT_TRUE(during.ok());
  EXPECT_EQ(during->size(), 3u);
  // ... and so do mutations (plus a compaction, which must prune the store
  // without disturbing the frozen capture the selection is reading).
  Result<int> inserted = executor.Insert(extra[0]);
  ASSERT_TRUE(inserted.ok());
  ASSERT_TRUE(executor.Remove(3).ok());
  ASSERT_TRUE(executor.Compact().ok());
  // A second REINDEX while one is parked is typed backpressure, not a
  // queue-up.
  Result<ReindexReport> second = executor.Reindex();
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), StatusCode::kResourceExhausted);
  ASSERT_EQ(executor.Stats().reindexes_in_progress, 1u);
  EXPECT_EQ(executor.Gauges()->generation, 0u);

  // Release the selection; the swap lands and the RPC resolves.
  {
    const int fd = ::open(fifo.c_str(), O_WRONLY);
    ASSERT_GE(fd, 0);
    ::close(fd);  // EOF releases the gate's read loop
  }
  Result<ReindexReport> report = pending.get();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->generation, 1u);
  EXPECT_EQ(report->features, 5);
  EXPECT_EQ(report->remapped, 1);  // the graph inserted mid-selection

  // The new generation reflects the churn that happened during selection:
  // the inserted graph is present (its own fingerprint at distance 0) and
  // the removed one is gone.
  Result<EngineGauges> gauges = executor.Gauges();
  ASSERT_TRUE(gauges.ok());
  EXPECT_EQ(gauges->generation, 1u);
  Result<Ranking> all = executor.Query(extra[0], {.k = gauges->graphs});
  ASSERT_TRUE(all.ok());
  bool found_inserted = false;
  for (const RankedResult& r : *all) {
    EXPECT_NE(r.id, 3) << "removed id resurfaced after the swap";
    if (r.id == *inserted) {
      found_inserted = true;
      EXPECT_DOUBLE_EQ(r.score, 0.0);
    }
  }
  EXPECT_TRUE(found_inserted);
  ::unlink(fifo.c_str());
}

TEST(ReindexLiveTest, AutoTriggerRefreshesAfterNMutations) {
  const GraphDatabase corpus = GenerateChemDatabase(SmallChem(16, 61));
  const GraphDatabase extra = GenerateChemQueries(SmallChem(16, 62), 4);
  auto engine = ShardedEngine::FromIndex(
      InitialIndex(corpus, FastRefresh("Sample", 6, 2)));
  ASSERT_TRUE(engine.ok());
  GraphStore store = StoreOf(corpus);

  BatchExecutorOptions executor_opts;
  executor_opts.store = &store;
  executor_opts.refresh = FastRefresh("Sample", 0, 29);
  executor_opts.reindex_every = 4;
  BatchExecutor executor(&*engine, executor_opts);

  for (const Graph& g : extra) {
    ASSERT_TRUE(executor.Insert(g).ok());
  }
  // The fourth mutation fires a background refresh; poll the gauges until
  // the generation lands (bounded wait, no sleep-based timing assumption).
  uint64_t generation = 0;
  for (int i = 0; i < 10000 && generation == 0; ++i) {
    Result<EngineGauges> gauges = executor.Gauges();
    ASSERT_TRUE(gauges.ok());
    generation = gauges->generation;
    if (generation == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  EXPECT_EQ(generation, 1u);
  EXPECT_EQ(executor.Stats().reindexes_completed, 1u);
  // Keep serving on the new generation.
  Result<Ranking> after = executor.Query(extra[0], {.k = 4});
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->size(), 4u);
}

}  // namespace
}  // namespace gdim
