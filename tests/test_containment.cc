#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "core/binary_db.h"
#include "core/containment.h"
#include "datasets/chemgen.h"
#include "isomorphism/vf2.h"
#include "mining/gspan.h"
#include "test_util.h"

namespace gdim {
namespace {

using testing_util::RandomConnectedGraph;
using testing_util::RandomEdgeSubgraph;

// Builds a containment index over a chem database with mined features.
struct Fixture {
  GraphDatabase db;
  std::unique_ptr<ContainmentIndex> index;

  explicit Fixture(int n, double minsup = 0.1) {
    ChemGenOptions opts;
    opts.num_graphs = n;
    db = GenerateChemDatabase(opts);
    MiningOptions mining;
    mining.min_support = minsup;
    mining.max_edges = 4;
    auto mined = MineFrequentSubgraphs(db, mining);
    BinaryFeatureDb features =
        BinaryFeatureDb::FromPatterns(n, mined.value());
    std::vector<std::vector<uint8_t>> rows(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) {
      std::vector<uint8_t> row(
          static_cast<size_t>(features.num_features()), 0);
      for (int r : features.GraphFeatures(i)) {
        row[static_cast<size_t>(r)] = 1;
      }
      rows[static_cast<size_t>(i)] = std::move(row);
    }
    GraphDatabase fgraphs = features.feature_graphs();
    index = std::make_unique<ContainmentIndex>(db, std::move(fgraphs), rows);
  }
};

TEST(ContainmentIndexTest, AnswersMatchBruteForce) {
  Fixture fx(40);
  Rng rng(5);
  for (int round = 0; round < 10; ++round) {
    // Query = a subgraph of some database graph (guaranteed answers) or a
    // fresh random pattern.
    Graph query;
    if (rng.Bernoulli(0.7)) {
      const Graph& host = fx.db[static_cast<size_t>(rng.UniformInt(0, 39))];
      query = RandomEdgeSubgraph(host, rng.UniformInt(1, 5), &rng);
    } else {
      query = RandomConnectedGraph(4, 1, 3, 2, &rng);
    }
    std::vector<int> got = fx.index->Query(query);
    std::vector<int> expect;
    for (int i = 0; i < 40; ++i) {
      if (IsSubgraphIsomorphic(query, fx.db[static_cast<size_t>(i)])) {
        expect.push_back(i);
      }
    }
    EXPECT_EQ(got, expect) << "round " << round;
  }
}

TEST(ContainmentIndexTest, FilterIsSupersetOfAnswers) {
  Fixture fx(40);
  Rng rng(7);
  for (int round = 0; round < 10; ++round) {
    const Graph& host = fx.db[static_cast<size_t>(rng.UniformInt(0, 39))];
    Graph query = RandomEdgeSubgraph(host, rng.UniformInt(2, 6), &rng);
    ContainmentIndex::QueryStats stats;
    std::vector<int> candidates = fx.index->FilterCandidates(query, &stats);
    std::vector<int> answers = fx.index->Query(query);
    EXPECT_TRUE(std::includes(candidates.begin(), candidates.end(),
                              answers.begin(), answers.end()))
        << "round " << round;
    EXPECT_EQ(stats.candidates, static_cast<int>(candidates.size()));
  }
}

TEST(ContainmentIndexTest, EmptyQueryMatchesEverything) {
  Fixture fx(20);
  Graph empty;
  std::vector<int> got = fx.index->Query(empty);
  EXPECT_EQ(got.size(), 20u);
}

TEST(ContainmentIndexTest, ImpossibleLabelFiltersToNothing) {
  Fixture fx(20);
  Graph query;
  query.AddVertex(999);  // label that no molecule uses
  query.AddVertex(999);
  query.AddEdge(0, 1, 0);
  EXPECT_TRUE(fx.index->Query(query).empty());
}

TEST(ContainmentIndexTest, StatsReportFeatureUse) {
  Fixture fx(30);
  // A database graph itself should contain several indexed features.
  ContainmentIndex::QueryStats stats;
  fx.index->Query(fx.db[0], &stats);
  EXPECT_GT(stats.features_used, 0);
  EXPECT_GE(stats.candidates, stats.answers);
}

TEST(ContainmentIndexTest, SelfQueryFindsSelf) {
  Fixture fx(25);
  for (int i = 0; i < 25; i += 5) {
    std::vector<int> answers = fx.index->Query(fx.db[static_cast<size_t>(i)]);
    EXPECT_TRUE(std::find(answers.begin(), answers.end(), i) !=
                answers.end())
        << "graph " << i << " does not contain itself";
  }
}

}  // namespace
}  // namespace gdim
