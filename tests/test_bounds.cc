// Property tests for the paper's theory (Sec. 4.1): Lemma 4.1, Theorems
// 4.1–4.3. Each is checked on random graph triples (q, q' ⊆ q, g) with exact
// MCS computations.

#include <cmath>

#include <gtest/gtest.h>

#include "core/objective.h"
#include "core/mapper.h"
#include "mcs/dissimilarity.h"
#include "mcs/mcs.h"
#include "mining/gspan.h"
#include "test_util.h"

namespace gdim {
namespace {

using testing_util::RandomConnectedGraph;
using testing_util::RandomEdgeSubgraph;

struct Triple {
  Graph q, q_sub, g;
};

Triple RandomTriple(Rng* rng) {
  Triple t;
  t.q = RandomConnectedGraph(rng->UniformInt(4, 7), rng->UniformInt(1, 3), 2,
                             2, rng);
  int keep = rng->UniformInt(1, std::max(1, t.q.NumEdges() - 1));
  t.q_sub = RandomEdgeSubgraph(t.q, keep, rng);
  t.g = RandomConnectedGraph(rng->UniformInt(4, 7), rng->UniformInt(1, 3), 2,
                             2, rng);
  return t;
}

class BoundsTest : public ::testing::TestWithParam<int> {};

TEST_P(BoundsTest, Lemma41McsDifferenceBound) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 997);
  for (int round = 0; round < 15; ++round) {
    Triple t = RandomTriple(&rng);
    int mcs_q = McsSize(t.q, t.g);
    int mcs_sub = McsSize(t.q_sub, t.g);
    int xi = mcs_q - mcs_sub;
    EXPECT_GE(xi, 0) << "ξ must be non-negative, round " << round;
    EXPECT_LE(xi, t.q.NumEdges() - t.q_sub.NumEdges())
        << "ξ exceeds |E(q)|-|E(q')|, round " << round;
  }
}

TEST_P(BoundsTest, Theorem41Delta1Bounds) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 1013);
  for (int round = 0; round < 15; ++round) {
    Triple t = RandomTriple(&rng);
    if (t.q_sub.NumEdges() == 0 || t.g.NumEdges() == 0) continue;
    double alpha = GraphDissimilarity(t.q, t.g, DissimilarityKind::kDelta1);
    double actual =
        GraphDissimilarity(t.q_sub, t.g, DissimilarityKind::kDelta1);
    int eq = t.q.NumEdges(), es = t.q_sub.NumEdges(), eg = t.g.NumEdges();
    double eps_l = (eq - std::min(es, eg)) /
                   static_cast<double>(std::min(es, eg)) * (1.0 - alpha);
    double eps_r = (eq - es) / static_cast<double>(eg);
    EXPECT_GE(actual, alpha - eps_l - 1e-9) << "round " << round;
    EXPECT_LE(actual, alpha + eps_r + 1e-9) << "round " << round;
  }
}

TEST_P(BoundsTest, Theorem42Delta2Bounds) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 1031);
  for (int round = 0; round < 15; ++round) {
    Triple t = RandomTriple(&rng);
    if (t.q_sub.NumEdges() == 0 || t.g.NumEdges() == 0) continue;
    double alpha = GraphDissimilarity(t.q, t.g, DissimilarityKind::kDelta2);
    double actual =
        GraphDissimilarity(t.q_sub, t.g, DissimilarityKind::kDelta2);
    double eps2 = (t.q.NumEdges() - t.q_sub.NumEdges()) /
                  static_cast<double>(t.q_sub.NumEdges() + t.g.NumEdges());
    EXPECT_GE(actual, alpha - (1.0 - alpha) * eps2 - 1e-9) << "round " << round;
    EXPECT_LE(actual, alpha + (1.0 + alpha) * eps2 + 1e-9) << "round " << round;
  }
}

TEST_P(BoundsTest, Theorem43MappedDistanceBounds) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 1049);
  // Feature dimension mined from a sample of random graphs.
  GraphDatabase sample;
  for (int i = 0; i < 20; ++i) {
    sample.push_back(RandomConnectedGraph(6, 2, 2, 2, &rng));
  }
  MiningOptions mopts;
  mopts.min_support = 0.2;
  mopts.max_edges = 3;
  auto mined = MineFrequentSubgraphs(sample, mopts);
  ASSERT_TRUE(mined.ok());
  GraphDatabase features;
  for (const FrequentPattern& p : *mined) features.push_back(p.graph);
  if (features.empty()) GTEST_SKIP() << "no features mined";
  FeatureMapper mapper(features);
  const double p = static_cast<double>(mapper.num_features());

  for (int round = 0; round < 15; ++round) {
    Triple t = RandomTriple(&rng);
    std::vector<uint8_t> yq = mapper.Map(t.q);
    std::vector<uint8_t> ysub = mapper.Map(t.q_sub);
    std::vector<uint8_t> yg = mapper.Map(t.g);
    // F(q') ⊆ F(q): subgraph containment is transitive.
    int tq = 0, tsub = 0;
    for (size_t r = 0; r < yq.size(); ++r) {
      tq += yq[r];
      tsub += ysub[r];
      EXPECT_LE(ysub[r], yq[r]) << "feature " << r << " violates F(q')⊆F(q)";
    }
    double beta = BinaryMappedDistance(yq, yg);
    double actual = BinaryMappedDistance(ysub, yg);
    double bound = std::sqrt(static_cast<double>(tq - tsub) / p);
    EXPECT_GE(actual, beta - bound - 1e-9) << "round " << round;
    EXPECT_LE(actual, beta + bound + 1e-9) << "round " << round;
  }
}

// Corollaries 4.1/4.2: the approximation ratio λ = δ/d of a sub- or
// super-graph query is bracketed by the ratio bounds derived from Theorems
// 4.1–4.3. Checked for δ2 (the paper's experimental choice) on mined
// feature dimensions.
TEST_P(BoundsTest, Corollary41And42RatioBounds) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 1061);
  GraphDatabase sample;
  for (int i = 0; i < 20; ++i) {
    sample.push_back(RandomConnectedGraph(6, 2, 2, 2, &rng));
  }
  MiningOptions mopts;
  mopts.min_support = 0.2;
  mopts.max_edges = 3;
  auto mined = MineFrequentSubgraphs(sample, mopts);
  ASSERT_TRUE(mined.ok());
  GraphDatabase features;
  for (const FrequentPattern& fp : *mined) features.push_back(fp.graph);
  if (features.empty()) GTEST_SKIP() << "no features mined";
  FeatureMapper mapper(features);
  const double p = static_cast<double>(mapper.num_features());

  for (int round = 0; round < 12; ++round) {
    Triple t = RandomTriple(&rng);
    if (t.q_sub.NumEdges() == 0 || t.g.NumEdges() == 0) continue;
    std::vector<uint8_t> yq = mapper.Map(t.q);
    std::vector<uint8_t> ysub = mapper.Map(t.q_sub);
    std::vector<uint8_t> yg = mapper.Map(t.g);
    int tq = 0, tsub = 0;
    for (size_t r = 0; r < yq.size(); ++r) {
      tq += yq[r];
      tsub += ysub[r];
    }
    const double root = std::sqrt(static_cast<double>(tq - tsub) / p);

    // Corollary 4.1 (q' ⊆ q, δ2 case): λ2 = δ2(q',g)/d(y_q',y_g) within
    // [(α−(1−α)ε2)/(β+√(t/p)), (α+(1+α)ε2)/(β−√(t/p))].
    double alpha = GraphDissimilarity(t.q, t.g, DissimilarityKind::kDelta2);
    double beta = BinaryMappedDistance(yq, yg);
    double eps2 = (t.q.NumEdges() - t.q_sub.NumEdges()) /
                  static_cast<double>(t.q_sub.NumEdges() + t.g.NumEdges());
    double actual_delta =
        GraphDissimilarity(t.q_sub, t.g, DissimilarityKind::kDelta2);
    double actual_d = BinaryMappedDistance(ysub, yg);
    if (actual_d > 1e-12 && beta - root > 1e-12) {
      double lambda = actual_delta / actual_d;
      double lo = (alpha - (1.0 - alpha) * eps2) / (beta + root);
      double hi = (alpha + (1.0 + alpha) * eps2) / (beta - root);
      EXPECT_GE(lambda, lo - 1e-9) << "Cor 4.1 lower, round " << round;
      EXPECT_LE(lambda, hi + 1e-9) << "Cor 4.1 upper, round " << round;
    }

    // Corollary 4.2 (q ⊇ q', δ2 case): λ2' = δ2(q,g)/d(y_q,y_g) within
    // [(α'−ε2)/((β'+√(t/p))(1+ε2)), (α'+ε2)/((β'−√(t/p))(1+ε2))].
    double alpha_p = actual_delta;  // δ(q', g)
    double beta_p = actual_d;
    if (beta > 1e-12 && beta_p - root > 1e-12) {
      double lambda_p = alpha / beta;
      double lo = (alpha_p - eps2) / ((beta_p + root) * (1.0 + eps2));
      double hi = (alpha_p + eps2) / ((beta_p - root) * (1.0 + eps2));
      EXPECT_GE(lambda_p, lo - 1e-9) << "Cor 4.2 lower, round " << round;
      EXPECT_LE(lambda_p, hi + 1e-9) << "Cor 4.2 upper, round " << round;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BoundsTest, ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace gdim
