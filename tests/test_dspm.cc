#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/dspm.h"
#include "core/measures.h"
#include "core/objective.h"

namespace gdim {
namespace {

BinaryFeatureDb RandomBits(int n, int m, double density, Rng* rng) {
  std::vector<std::vector<uint8_t>> rows(
      static_cast<size_t>(n), std::vector<uint8_t>(static_cast<size_t>(m)));
  for (auto& row : rows) {
    for (auto& bit : row) bit = rng->Bernoulli(density) ? 1 : 0;
  }
  return BinaryFeatureDb::FromBitMatrix(rows);
}

DissimilarityMatrix RandomDelta(int n, Rng* rng) {
  std::vector<double> vals(static_cast<size_t>(n) * static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      double v = rng->UniformDouble();
      vals[static_cast<size_t>(i) * static_cast<size_t>(n) +
           static_cast<size_t>(j)] = v;
      vals[static_cast<size_t>(j) * static_cast<size_t>(n) +
           static_cast<size_t>(i)] = v;
    }
  }
  return DissimilarityMatrix::FromDense(n, std::move(vals));
}

// Delta that matches the binary structure: graphs sharing features are close.
// DSPM should be able to fit this well.
DissimilarityMatrix StructuredDelta(const BinaryFeatureDb& db,
                                    const std::vector<double>& true_c) {
  const int n = db.num_graphs();
  std::vector<double> vals(static_cast<size_t>(n) * static_cast<size_t>(n),
                           0.0);
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      double v = WeightedDistance(db, true_c, i, j);
      vals[static_cast<size_t>(i) * static_cast<size_t>(n) +
           static_cast<size_t>(j)] = v;
      vals[static_cast<size_t>(j) * static_cast<size_t>(n) +
           static_cast<size_t>(i)] = v;
    }
  }
  return DissimilarityMatrix::FromDense(n, std::move(vals));
}

TEST(DspmTest, ObjectiveNeverIncreases) {
  Rng rng(101);
  for (int round = 0; round < 4; ++round) {
    BinaryFeatureDb db = RandomBits(20, 30, 0.3, &rng);
    DissimilarityMatrix delta = RandomDelta(20, &rng);
    DspmOptions opts;
    opts.p = 10;
    opts.max_iters = 15;
    opts.epsilon = 0.0;  // run all iterations
    DspmResult r = RunDspm(db, delta, opts);
    ASSERT_GE(r.objective_history.size(), 2u);
    for (size_t k = 1; k < r.objective_history.size(); ++k) {
      EXPECT_LE(r.objective_history[k],
                r.objective_history[k - 1] + 1e-9 * r.objective_history[0])
          << "iteration " << k << " round " << round;
    }
  }
}

TEST(DspmTest, AllUpdatePathsAgree) {
  Rng rng(102);
  BinaryFeatureDb db = RandomBits(15, 25, 0.35, &rng);
  DissimilarityMatrix delta = RandomDelta(15, &rng);
  DspmOptions base;
  base.p = 8;
  base.max_iters = 6;
  base.epsilon = 0.0;
  DspmOptions closed = base;
  closed.update_path = DspmUpdatePath::kClosedForm;
  DspmOptions inverted = base;
  inverted.update_path = DspmUpdatePath::kInvertedLists;
  DspmOptions naive = base;
  naive.update_path = DspmUpdatePath::kNaive;
  DspmResult a = RunDspm(db, delta, closed);
  DspmResult b = RunDspm(db, delta, inverted);
  DspmResult cres = RunDspm(db, delta, naive);
  ASSERT_EQ(a.weights.size(), b.weights.size());
  ASSERT_EQ(a.weights.size(), cres.weights.size());
  for (size_t r = 0; r < a.weights.size(); ++r) {
    EXPECT_NEAR(a.weights[r], b.weights[r], 1e-8) << "feature " << r;
    EXPECT_NEAR(a.weights[r], cres.weights[r], 1e-8) << "feature " << r;
  }
  EXPECT_EQ(a.selected, b.selected);
  EXPECT_EQ(a.selected, cres.selected);
  ASSERT_EQ(a.objective_history.size(), b.objective_history.size());
  for (size_t k = 0; k < a.objective_history.size(); ++k) {
    EXPECT_NEAR(a.objective_history[k], b.objective_history[k],
                1e-7 * std::max(1.0, a.objective_history[0]));
    EXPECT_NEAR(a.objective_history[k], cres.objective_history[k],
                1e-7 * std::max(1.0, a.objective_history[0]));
  }
}

TEST(DspmTest, WeightsAreNormalized) {
  Rng rng(103);
  BinaryFeatureDb db = RandomBits(15, 20, 0.3, &rng);
  DissimilarityMatrix delta = RandomDelta(15, &rng);
  DspmOptions opts;
  opts.p = 5;
  DspmResult r = RunDspm(db, delta, opts);
  double norm2 = 0;
  for (double w : r.weights) norm2 += w * w;
  EXPECT_NEAR(norm2, 1.0, 1e-9);
}

TEST(DspmTest, UninformativeFeaturesGetZeroWeight) {
  // Feature 0: in all graphs; feature 1: in none; both carry no distance
  // information and must receive zero weight.
  std::vector<std::vector<uint8_t>> rows = {
      {1, 0, 1, 0}, {1, 0, 0, 1}, {1, 0, 1, 1}, {1, 0, 0, 0}};
  BinaryFeatureDb db = BinaryFeatureDb::FromBitMatrix(rows);
  Rng rng(104);
  DissimilarityMatrix delta = RandomDelta(4, &rng);
  DspmOptions opts;
  opts.p = 2;
  DspmResult r = RunDspm(db, delta, opts);
  EXPECT_DOUBLE_EQ(r.weights[0], 0.0);
  EXPECT_DOUBLE_EQ(r.weights[1], 0.0);
  // Selected features are the informative ones.
  std::set<int> sel(r.selected.begin(), r.selected.end());
  EXPECT_TRUE(sel.count(2));
  EXPECT_TRUE(sel.count(3));
}

TEST(DspmTest, RecoversPlantedWeights) {
  // Distances generated from a known sparse weight vector: DSPM should put
  // its largest weights on the planted features.
  Rng rng(105);
  BinaryFeatureDb db = RandomBits(30, 20, 0.4, &rng);
  std::vector<double> true_c(20, 0.0);
  true_c[3] = 0.7;
  true_c[11] = 0.5;
  true_c[17] = 0.5;
  DissimilarityMatrix delta = StructuredDelta(db, true_c);
  DspmOptions opts;
  opts.p = 3;
  opts.max_iters = 60;
  opts.epsilon = 1e-9;
  DspmResult r = RunDspm(db, delta, opts);
  std::set<int> sel(r.selected.begin(), r.selected.end());
  int recovered = static_cast<int>(sel.count(3)) +
                  static_cast<int>(sel.count(11)) +
                  static_cast<int>(sel.count(17));
  EXPECT_GE(recovered, 2) << "selected features missed the planted ones";
  // Final stress must be tiny relative to the starting stress.
  EXPECT_LT(r.objective_history.back(), 0.2 * r.objective_history.front());
}

TEST(DspmTest, SelectionSizeClamped) {
  Rng rng(106);
  BinaryFeatureDb db = RandomBits(10, 5, 0.4, &rng);
  DissimilarityMatrix delta = RandomDelta(10, &rng);
  DspmOptions opts;
  opts.p = 50;  // more than m
  DspmResult r = RunDspm(db, delta, opts);
  EXPECT_EQ(r.selected.size(), 5u);
}

TEST(DspmTest, Deterministic) {
  Rng rng(107);
  BinaryFeatureDb db = RandomBits(12, 18, 0.3, &rng);
  DissimilarityMatrix delta = RandomDelta(12, &rng);
  DspmOptions opts;
  opts.p = 6;
  DspmResult a = RunDspm(db, delta, opts);
  DspmResult b = RunDspm(db, delta, opts);
  EXPECT_EQ(a.selected, b.selected);
  EXPECT_EQ(a.weights, b.weights);
}

TEST(DspmTest, EmptyInputs) {
  BinaryFeatureDb db = BinaryFeatureDb::FromBitMatrix({});
  DissimilarityMatrix delta = DissimilarityMatrix::FromDense(0, {});
  DspmOptions opts;
  DspmResult r = RunDspm(db, delta, opts);
  EXPECT_TRUE(r.selected.empty());
}

}  // namespace
}  // namespace gdim
