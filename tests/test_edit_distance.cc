#include <gtest/gtest.h>

#include "mcs/edit_distance.h"
#include "test_util.h"

namespace gdim {
namespace {

using testing_util::RandomConnectedGraph;

Graph LabeledPath(std::initializer_list<LabelId> vlabels, LabelId elabel) {
  Graph g;
  for (LabelId l : vlabels) g.AddVertex(l);
  for (int i = 0; i + 1 < g.NumVertices(); ++i) g.AddEdge(i, i + 1, elabel);
  return g;
}

TEST(GedTest, IdenticalGraphsZero) {
  Graph g = LabeledPath({1, 2, 3}, 0);
  EXPECT_DOUBLE_EQ(GraphEditDistance(g, g).distance, 0.0);
}

TEST(GedTest, EmptyToGraphCostsAllInsertions) {
  Graph empty;
  Graph g = LabeledPath({1, 2, 3}, 0);  // 3 vertices, 2 edges
  GedResult r = GraphEditDistance(empty, g);
  EXPECT_DOUBLE_EQ(r.distance, 3.0 + 2.0);
  GedResult rev = GraphEditDistance(g, empty);
  EXPECT_DOUBLE_EQ(rev.distance, 5.0);
}

TEST(GedTest, SingleVertexRelabel) {
  Graph a = LabeledPath({1, 2, 3}, 0);
  Graph b = LabeledPath({1, 2, 9}, 0);
  EXPECT_DOUBLE_EQ(GraphEditDistance(a, b).distance, 1.0);
}

TEST(GedTest, SingleEdgeRelabel) {
  Graph a = LabeledPath({1, 2}, 0);
  Graph b = LabeledPath({1, 2}, 7);
  EXPECT_DOUBLE_EQ(GraphEditDistance(a, b).distance, 1.0);
}

TEST(GedTest, EdgeInsertion) {
  Graph a = LabeledPath({1, 1, 1}, 0);  // path
  Graph b = a;
  b.AddEdge(0, 2, 0);  // triangle
  EXPECT_DOUBLE_EQ(GraphEditDistance(a, b).distance, 1.0);
}

TEST(GedTest, VertexPlusEdgeInsertion) {
  Graph a = LabeledPath({1, 2}, 0);
  Graph b = LabeledPath({1, 2, 3}, 0);
  EXPECT_DOUBLE_EQ(GraphEditDistance(a, b).distance, 2.0);
}

TEST(GedTest, CustomCostsRespected) {
  Graph a = LabeledPath({1, 2, 3}, 0);
  Graph b = LabeledPath({1, 2, 9}, 0);
  EditCosts costs;
  costs.vertex_substitution = 0.25;
  EXPECT_DOUBLE_EQ(GraphEditDistance(a, b, costs).distance, 0.25);
  // With substitution costlier than delete+insert, the optimum switches.
  costs.vertex_substitution = 10.0;
  costs.vertex_indel = 1.0;
  costs.edge_indel = 1.0;
  // delete vertex 3's vertex (1) + its edge (1), insert vertex 9 (1) + edge
  // (1) = 4 instead of 10.
  EXPECT_DOUBLE_EQ(GraphEditDistance(a, b, costs).distance, 4.0);
}

TEST(GedTest, NodeBudgetFlagsNonOptimal) {
  Rng rng(3);
  Graph a = RandomConnectedGraph(7, 3, 2, 2, &rng);
  Graph b = RandomConnectedGraph(7, 3, 2, 2, &rng);
  GedResult r = GraphEditDistance(a, b, {}, /*max_nodes=*/2);
  EXPECT_FALSE(r.optimal);
  // Still returns the trivial upper bound or better.
  EXPECT_LE(r.distance,
            (a.NumVertices() + b.NumVertices()) + (a.NumEdges() + b.NumEdges()));
}

class GedPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(GedPropertyTest, SymmetricAndNonNegative) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 71);
  for (int round = 0; round < 6; ++round) {
    Graph a = RandomConnectedGraph(rng.UniformInt(2, 5),
                                   rng.UniformInt(0, 2), 2, 2, &rng);
    Graph b = RandomConnectedGraph(rng.UniformInt(2, 5),
                                   rng.UniformInt(0, 2), 2, 2, &rng);
    double ab = GraphEditDistance(a, b).distance;
    double ba = GraphEditDistance(b, a).distance;
    EXPECT_GE(ab, 0.0);
    EXPECT_DOUBLE_EQ(ab, ba) << "round " << round;
  }
}

TEST_P(GedPropertyTest, TriangleInequality) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 73);
  for (int round = 0; round < 4; ++round) {
    Graph a = RandomConnectedGraph(3, 1, 2, 1, &rng);
    Graph b = RandomConnectedGraph(4, 1, 2, 1, &rng);
    Graph c = RandomConnectedGraph(3, 2, 2, 1, &rng);
    double ab = GraphEditDistance(a, b).distance;
    double bc = GraphEditDistance(b, c).distance;
    double ac = GraphEditDistance(a, c).distance;
    EXPECT_LE(ac, ab + bc + 1e-9) << "round " << round;
  }
}

TEST_P(GedPropertyTest, ZeroIffIsomorphic) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 79);
  for (int round = 0; round < 6; ++round) {
    Graph a = RandomConnectedGraph(rng.UniformInt(3, 5),
                                   rng.UniformInt(0, 1), 2, 2, &rng);
    // Relabel-permute a into b (isomorphic copy).
    std::vector<VertexId> perm(static_cast<size_t>(a.NumVertices()));
    for (int i = 0; i < a.NumVertices(); ++i) {
      perm[static_cast<size_t>(i)] = i;
    }
    rng.Shuffle(&perm);
    Graph b;
    std::vector<VertexId> inverse(perm.size());
    for (size_t i = 0; i < perm.size(); ++i) {
      inverse[static_cast<size_t>(perm[i])] = static_cast<VertexId>(i);
    }
    for (size_t i = 0; i < perm.size(); ++i) {
      b.AddVertex(a.VertexLabel(perm[i]));
    }
    for (const Edge& e : a.edges()) {
      b.AddEdge(inverse[static_cast<size_t>(e.u)],
                inverse[static_cast<size_t>(e.v)], e.label);
    }
    EXPECT_DOUBLE_EQ(GraphEditDistance(a, b).distance, 0.0)
        << "round " << round;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GedPropertyTest,
                         ::testing::Values(1, 2, 3, 4));

}  // namespace
}  // namespace gdim
