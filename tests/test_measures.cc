#include <gtest/gtest.h>

#include "core/measures.h"

namespace gdim {
namespace {

Ranking MakeRanking(std::initializer_list<int> ids) {
  Ranking r;
  double score = 0.0;
  for (int id : ids) {
    r.push_back(RankedResult{id, score});
    score += 0.1;
  }
  return r;
}

TEST(PrecisionTest, PerfectAgreement) {
  Ranking exact = MakeRanking({0, 1, 2, 3, 4});
  EXPECT_DOUBLE_EQ(PrecisionAtK(exact, exact, 3), 1.0);
}

TEST(PrecisionTest, PartialOverlap) {
  Ranking exact = MakeRanking({0, 1, 2, 3, 4});
  Ranking approx = MakeRanking({0, 9, 2, 8, 7});
  // top-3 overlap: {0, 2} of {0,1,2} -> 2/3.
  EXPECT_DOUBLE_EQ(PrecisionAtK(exact, approx, 3), 2.0 / 3.0);
}

TEST(PrecisionTest, OrderWithinTopKIrrelevant) {
  Ranking exact = MakeRanking({0, 1, 2, 3});
  Ranking approx = MakeRanking({2, 1, 0, 3});
  EXPECT_DOUBLE_EQ(PrecisionAtK(exact, approx, 3), 1.0);
}

TEST(KendallTest, PerfectRankingGetsMaximalConcordance) {
  Ranking exact = MakeRanking({0, 1, 2, 3, 4, 5, 6, 7, 8, 9});
  const int k = 4;
  // Concordant pairs = k(k-1)/2 = 6; denominator k(2n-k-1) = 4*15 = 60.
  EXPECT_DOUBLE_EQ(KendallTauAtK(exact, exact, k), 6.0 / 60.0);
}

TEST(KendallTest, ReversedTopKHasZeroConcordance) {
  Ranking exact = MakeRanking({0, 1, 2, 3, 4, 5});
  Ranking approx = MakeRanking({3, 2, 1, 0, 4, 5});
  EXPECT_DOUBLE_EQ(KendallTauAtK(exact, approx, 4), 0.0);
}

TEST(KendallTest, BetterRankingScoresHigher) {
  Ranking exact = MakeRanking({0, 1, 2, 3, 4, 5, 6, 7});
  Ranking good = MakeRanking({0, 1, 3, 2, 4, 5, 6, 7});
  Ranking bad = MakeRanking({7, 6, 5, 4, 3, 2, 1, 0});
  EXPECT_GT(KendallTauAtK(exact, good, 4), KendallTauAtK(exact, bad, 4));
}

TEST(RankDistanceTest, PerfectRankingClampsToK) {
  Ranking exact = MakeRanking({0, 1, 2, 3, 4});
  // Zero footrule clamps denominator to 1 -> k.
  EXPECT_DOUBLE_EQ(InverseRankDistanceAtK(exact, exact, 3), 3.0);
}

TEST(RankDistanceTest, KnownFootrule) {
  Ranking exact = MakeRanking({0, 1, 2, 3, 4});
  Ranking approx = MakeRanking({1, 0, 2, 3, 4});
  // |1-2| + |2-1| + |3-3| = 2 for k=3 -> 3/2.
  EXPECT_DOUBLE_EQ(InverseRankDistanceAtK(exact, approx, 3), 1.5);
}

TEST(RankDistanceTest, WorseRankingScoresLower) {
  Ranking exact = MakeRanking({0, 1, 2, 3, 4, 5});
  Ranking good = MakeRanking({1, 0, 2, 3, 4, 5});
  Ranking bad = MakeRanking({5, 4, 3, 2, 1, 0});
  EXPECT_GT(InverseRankDistanceAtK(exact, good, 4),
            InverseRankDistanceAtK(exact, bad, 4));
}

TEST(FeatureJaccardTest, KnownSupports) {
  BinaryFeatureDb db = BinaryFeatureDb::FromBitMatrix({
      {1, 1, 0},
      {1, 0, 0},
      {0, 1, 1},
      {1, 1, 0},
  });
  // sup(0)={0,1,3}, sup(1)={0,2,3}: inter=2, union=4.
  EXPECT_DOUBLE_EQ(FeatureJaccard(db, 0, 1), 0.5);
  // sup(2)={2}: inter with sup(0) = 0.
  EXPECT_DOUBLE_EQ(FeatureJaccard(db, 0, 2), 0.0);
  EXPECT_DOUBLE_EQ(FeatureJaccard(db, 0, 0), 1.0);
}

TEST(CorrelationScoreTest, SumsOverPairs) {
  BinaryFeatureDb db = BinaryFeatureDb::FromBitMatrix({
      {1, 1, 0},
      {1, 0, 0},
      {0, 1, 1},
      {1, 1, 0},
  });
  double expected = FeatureJaccard(db, 0, 1) + FeatureJaccard(db, 0, 2) +
                    FeatureJaccard(db, 1, 2);
  EXPECT_DOUBLE_EQ(CorrelationScore(db, {0, 1, 2}), expected);
  EXPECT_DOUBLE_EQ(CorrelationScore(db, {0}), 0.0);
  EXPECT_DOUBLE_EQ(CorrelationScore(db, {}), 0.0);
}

TEST(HistogramTest, FractionsSumToOne) {
  std::vector<double> values = {0.05, 0.15, 0.15, 0.95, 1.0};
  std::vector<double> h = HistogramFractions(values, 10);
  ASSERT_EQ(h.size(), 10u);
  double total = 0;
  for (double f : h) total += f;
  EXPECT_NEAR(total, 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(h[0], 0.2);
  EXPECT_DOUBLE_EQ(h[1], 0.4);
  EXPECT_DOUBLE_EQ(h[9], 0.4);  // 0.95 and the clamped 1.0
}

TEST(HistogramTest, EmptyInput) {
  std::vector<double> h = HistogramFractions({}, 5);
  for (double f : h) EXPECT_DOUBLE_EQ(f, 0.0);
}

}  // namespace
}  // namespace gdim
