// Differential tests for the SIMD Hamming-scan kernels: every kernel this
// binary can run on this host must be bit-identical to the scalar baseline —
// exact integer diffs, for any width (word-multiple or not), any row count
// (block-multiple or not), any query count (tile-multiple or not), hostile
// padding words, and empty rows. Kernels the host cannot run are skipped,
// not failed: the same test binary passes on an AVX-512 box and a plain
// x86-64 one.

#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/sync.h"
#include "core/kernels/scan_kernel.h"
#include "core/objective.h"
#include "core/packed_bits.h"
#include "gtest/gtest.h"
#include "serve/query_engine.h"

namespace gdim {
namespace {

/// Naive word-popcount reference, deliberately independent of every kernel.
uint32_t ReferenceDiff(const uint64_t* a, const uint64_t* b, size_t words) {
  uint32_t diff = 0;
  for (size_t w = 0; w < words; ++w) {
    uint64_t x = a[w] ^ b[w];
    while (x != 0) {
      x &= x - 1;
      ++diff;
    }
  }
  return diff;
}

std::vector<const ScanKernel*> HostKernels() { return SupportedScanKernels(); }

/// A packed matrix plus packed queries over random 0/1 rows.
struct Fixture {
  PackedBitMatrix matrix;
  std::vector<std::vector<uint64_t>> queries;
};

Fixture MakeFixture(int num_rows, int num_bits, int num_queries, Rng* rng) {
  Fixture f;
  f.matrix = PackedBitMatrix::FromRows(
      RandomBitRows(num_rows, num_bits, 0.4, rng), num_bits);
  for (const auto& q : RandomBitRows(num_queries, num_bits, 0.4, rng)) {
    f.queries.push_back(f.matrix.PackQuery(q));
  }
  return f;
}

TEST(ScanKernelTest, RegistryShape) {
  EXPECT_STREQ(ScalarScanKernel().name(), "scalar");
  EXPECT_GE(ScalarScanKernel().tile_width(), 1);
  const auto kernels = HostKernels();
  ASSERT_FALSE(kernels.empty());
  EXPECT_STREQ(kernels.front()->name(), "scalar");
  for (const ScanKernel* kernel : kernels) {
    EXPECT_EQ(FindScanKernel(kernel->name()), kernel);
  }
  EXPECT_EQ(FindScanKernel("bogus"), nullptr);
  EXPECT_EQ(FindScanKernel(""), nullptr);
  // The active kernel is always one the host supports.
  EXPECT_NE(FindScanKernel(ActiveScanKernel().name()), nullptr);
}

// Single-query blocks: every kernel, every hostile width and row count.
TEST(ScanKernelTest, HammingBlockMatchesReferenceAcrossShapes) {
  Rng rng(20260807);
  const int widths[] = {1, 5, 63, 64, 65, 127, 128, 192, 300, 511, 512, 517};
  const int row_counts[] = {1, 2, 7, 64, 255, 256, 257};
  for (const int num_bits : widths) {
    for (const int num_rows : row_counts) {
      const Fixture f = MakeFixture(num_rows, num_bits, 1, &rng);
      const size_t words = f.matrix.words_per_row();
      std::vector<uint32_t> expected(static_cast<size_t>(num_rows));
      for (int r = 0; r < num_rows; ++r) {
        expected[static_cast<size_t>(r)] =
            ReferenceDiff(f.queries[0].data(), f.matrix.row(r), words);
      }
      for (const ScanKernel* kernel : HostKernels()) {
        std::vector<uint32_t> got(static_cast<size_t>(num_rows), 0xdeadbeef);
        kernel->HammingBlock(f.queries[0].data(), f.matrix.row(0), words,
                             num_rows, got.data());
        EXPECT_EQ(got, expected) << kernel->name() << " p=" << num_bits
                                 << " rows=" << num_rows;
      }
    }
  }
}

// Multi-query blocks: query counts straddling every kernel's tile width.
TEST(ScanKernelTest, HammingBlockMultiMatchesReferenceAcrossTileRemainders) {
  Rng rng(7);
  const int num_bits = 300;
  const int num_rows = 130;
  for (const ScanKernel* kernel : HostKernels()) {
    const int tile = kernel->tile_width();
    ASSERT_GE(tile, 1) << kernel->name();
    const int query_counts[] = {1,        tile - 1, tile,
                                tile + 1, 2 * tile, 2 * tile + 3};
    for (const int num_queries : query_counts) {
      if (num_queries < 1) continue;
      const Fixture f = MakeFixture(num_rows, num_bits, num_queries, &rng);
      const size_t words = f.matrix.words_per_row();
      std::vector<const uint64_t*> query_ptrs;
      for (const auto& q : f.queries) query_ptrs.push_back(q.data());
      std::vector<uint32_t> got(
          static_cast<size_t>(num_queries) * num_rows, 0xdeadbeef);
      kernel->HammingBlockMulti(query_ptrs.data(), num_queries,
                                f.matrix.row(0), words, num_rows, got.data());
      for (int q = 0; q < num_queries; ++q) {
        for (int r = 0; r < num_rows; ++r) {
          EXPECT_EQ(got[static_cast<size_t>(q) * num_rows + r],
                    ReferenceDiff(query_ptrs[static_cast<size_t>(q)],
                                  f.matrix.row(r), words))
              << kernel->name() << " q=" << q << " r=" << r
              << " nq=" << num_queries;
        }
      }
    }
  }
}

// Splitting a scan into blocks must not change a single diff — the engines
// call kernels in kScanBlockRows chunks and the split point is invisible.
TEST(ScanKernelTest, BlockSplitsAreInvisible) {
  Rng rng(99);
  const Fixture f = MakeFixture(300, 517, 1, &rng);
  const size_t words = f.matrix.words_per_row();
  const int n = f.matrix.num_rows();
  for (const ScanKernel* kernel : HostKernels()) {
    std::vector<uint32_t> whole(static_cast<size_t>(n));
    kernel->HammingBlock(f.queries[0].data(), f.matrix.row(0), words, n,
                         whole.data());
    for (const int split : {1, 17, 64, 256, 299}) {
      std::vector<uint32_t> parts(static_cast<size_t>(n));
      for (int r0 = 0; r0 < n; r0 += split) {
        const int nr = std::min(split, n - r0);
        kernel->HammingBlock(f.queries[0].data(), f.matrix.row(r0), words,
                             nr, parts.data() + r0);
      }
      EXPECT_EQ(parts, whole) << kernel->name() << " split=" << split;
    }
  }
}

// FromWords must mask hostile padding bits so every kernel sees clean rows:
// a snapshot block with garbage beyond num_bits still scans exactly.
TEST(ScanKernelTest, HostilePaddingIsMaskedBeforeKernelsSeeIt) {
  Rng rng(4242);
  const int num_bits = 130;  // 3 words, 62 padding bits in the last
  const int num_rows = 70;
  const auto byte_rows = RandomBitRows(num_rows, num_bits, 0.5, &rng);
  const PackedBitMatrix clean =
      PackedBitMatrix::FromRows(byte_rows, num_bits);
  const size_t words = clean.words_per_row();
  std::vector<uint64_t> hostile_words;
  for (int r = 0; r < num_rows; ++r) {
    for (size_t w = 0; w < words; ++w) {
      uint64_t word = clean.row(r)[w];
      if (w + 1 == words) word |= ~((1ull << (num_bits % 64)) - 1);
      hostile_words.push_back(word);
    }
  }
  const PackedBitMatrix hostile =
      PackedBitMatrix::FromWords(num_rows, num_bits, std::move(hostile_words));
  const std::vector<uint64_t> query =
      clean.PackQuery(RandomBitRows(1, num_bits, 0.5, &rng)[0]);
  std::vector<uint32_t> expected(static_cast<size_t>(num_rows));
  for (int r = 0; r < num_rows; ++r) {
    expected[static_cast<size_t>(r)] =
        ReferenceDiff(query.data(), clean.row(r), words);
  }
  for (const ScanKernel* kernel : HostKernels()) {
    std::vector<uint32_t> got(static_cast<size_t>(num_rows));
    kernel->HammingBlock(query.data(), hostile.row(0), words, num_rows,
                         got.data());
    EXPECT_EQ(got, expected) << kernel->name();
  }
}

// Degenerate shapes: zero rows is a no-op, all-zero rows score the query's
// own popcount, and identical rows tie exactly.
TEST(ScanKernelTest, DegenerateShapes) {
  Rng rng(5);
  const Fixture f = MakeFixture(8, 200, 2, &rng);
  const size_t words = f.matrix.words_per_row();
  const PackedBitMatrix zeros = PackedBitMatrix::FromRows(
      std::vector<std::vector<uint8_t>>(16, std::vector<uint8_t>(200, 0)),
      200);
  const uint32_t query_pop =
      ReferenceDiff(f.queries[0].data(),
                    std::vector<uint64_t>(words, 0).data(), words);
  for (const ScanKernel* kernel : HostKernels()) {
    uint32_t sentinel = 0xdeadbeef;
    kernel->HammingBlock(f.queries[0].data(), f.matrix.row(0), words, 0,
                         &sentinel);
    EXPECT_EQ(sentinel, 0xdeadbeefu) << kernel->name();  // untouched
    const uint64_t* queries[] = {f.queries[0].data(), f.queries[1].data()};
    kernel->HammingBlockMulti(queries, 2, f.matrix.row(0), words, 0,
                              &sentinel);
    EXPECT_EQ(sentinel, 0xdeadbeefu) << kernel->name();
    std::vector<uint32_t> got(16);
    kernel->HammingBlock(f.queries[0].data(), zeros.row(0), words, 16,
                         got.data());
    for (const uint32_t d : got) EXPECT_EQ(d, query_pop) << kernel->name();
  }
}

// ScoreAllMultiInto (the engine-facing tiled entry point) must agree with
// per-row NormalizedDistance on whatever kernel the process is running —
// including when the matrix has tombstone-style all-zero and duplicate rows.
TEST(ScanKernelTest, ScoreAllMultiMatchesPerRowScores) {
  Rng rng(31337);
  const int num_bits = 257;
  auto rows = RandomBitRows(60, num_bits, 0.3, &rng);
  rows[7] = std::vector<uint8_t>(static_cast<size_t>(num_bits), 0);
  rows[8] = rows[9];  // exact tie
  const PackedBitMatrix matrix = PackedBitMatrix::FromRows(rows, num_bits);
  const auto raw_queries = RandomBitRows(5, num_bits, 0.3, &rng);
  std::vector<std::vector<uint64_t>> packed;
  std::vector<const uint64_t*> query_ptrs;
  for (const auto& q : raw_queries) packed.push_back(matrix.PackQuery(q));
  for (const auto& q : packed) query_ptrs.push_back(q.data());
  std::vector<std::vector<double>> scores(
      5, std::vector<double>(static_cast<size_t>(matrix.num_rows())));
  std::vector<double*> outs;
  for (auto& s : scores) outs.push_back(s.data());
  matrix.ScoreAllMultiInto(query_ptrs.data(), 5, outs.data());
  for (int q = 0; q < 5; ++q) {
    for (int r = 0; r < matrix.num_rows(); ++r) {
      EXPECT_EQ(scores[static_cast<size_t>(q)][static_cast<size_t>(r)],
                matrix.NormalizedDistance(packed[static_cast<size_t>(q)], r))
          << "q=" << q << " r=" << r;
      EXPECT_EQ(scores[static_cast<size_t>(q)][static_cast<size_t>(r)],
                BinaryMappedDistance(raw_queries[static_cast<size_t>(q)],
                                     rows[static_cast<size_t>(r)]))
          << "q=" << q << " r=" << r;
    }
  }
}

// The batch engine's tiled path must answer exactly like the single-query
// path, including across tombstones and a live delta segment.
TEST(ScanKernelTest, TiledBatchMatchesSingleQueriesAcrossMutations) {
  Rng rng(11);
  const int p = 96;
  PersistedIndex index;
  for (LabelId r = 0; r < p; ++r) {
    Graph f;
    f.AddVertex(r);
    index.features.push_back(f);
  }
  index.db_bits = RandomBitRows(40, p, 0.4, &rng);
  ServeOptions options;
  options.containment_prefilter = false;
  Result<QueryEngine> built = QueryEngine::FromIndex(index, options);
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  QueryEngine engine = std::move(built).value();
  // This test body is the engine's single writer.
  ScopedRole writer(&engine.writer_role());
  for (const auto& row : RandomBitRows(9, p, 0.4, &rng)) {
    ASSERT_TRUE(engine.InsertMapped(row).ok());  // delta segment
  }
  ASSERT_TRUE(engine.Remove(3).ok());
  ASSERT_TRUE(engine.Remove(41).ok());  // one base, one delta tombstone
  const std::vector<std::vector<uint8_t>> fingerprints =
      RandomBitRows(13, p, 0.4, &rng);
  const QueryOptions query_options{.k = 6, .scan_mode = ScanMode::kFull};
  const std::vector<Ranking> tiled = engine.QueryMappedTile(
      fingerprints.data(), static_cast<int>(fingerprints.size()),
      query_options);
  ASSERT_EQ(tiled.size(), fingerprints.size());
  for (size_t i = 0; i < fingerprints.size(); ++i) {
    EXPECT_EQ(tiled[i], engine.QueryMapped(fingerprints[i], query_options))
        << "query " << i;
  }
}

// GDIM_FORCE_KERNEL is resolved by ActiveScanKernel exactly once; the test
// binary can only observe the already-resolved value, so assert the
// invariant every CI matrix entry relies on: the resolved kernel is
// supported here, and when the env var names a supported kernel it won.
TEST(ScanKernelTest, ForcedKernelHonoredWhenRunnable) {
  const char* forced = std::getenv("GDIM_FORCE_KERNEL");
  const std::string active = ActiveScanKernel().name();
  EXPECT_NE(FindScanKernel(active), nullptr);
  if (forced != nullptr && FindScanKernel(forced) != nullptr) {
    EXPECT_EQ(active, forced);
  }
}

}  // namespace
}  // namespace gdim
