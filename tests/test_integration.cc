// Cross-module integration properties that no single-module suite covers:
// generator → miner → mapper → measure chains, and the substitution claims
// DESIGN.md makes about the generators.

#include <algorithm>
#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/dspmap.h"
#include "core/measures.h"
#include "core/objective.h"
#include "datasets/chemgen.h"
#include "datasets/graphgen.h"
#include "graph/graph_utils.h"
#include "mcs/dissimilarity.h"
#include "mining/gspan.h"

namespace gdim {
namespace {

TEST(GeneratorMiningTest, ZipfSkewYieldsMoreFrequentPatterns) {
  // The DESIGN.md substitution claim: with 20 uniform labels almost nothing
  // is frequent at τ=5%, while the Zipf-skewed distribution (the default)
  // yields a rich pool.
  GraphGenOptions uniform;
  uniform.num_graphs = 120;
  uniform.label_zipf = 0.0;
  GraphGenOptions skewed = uniform;
  skewed.label_zipf = 1.0;
  MiningOptions mining;
  mining.min_support = 0.05;
  mining.max_edges = 4;
  auto m_uniform =
      MineFrequentSubgraphs(GenerateSyntheticDatabase(uniform), mining);
  auto m_skewed =
      MineFrequentSubgraphs(GenerateSyntheticDatabase(skewed), mining);
  ASSERT_TRUE(m_uniform.ok() && m_skewed.ok());
  EXPECT_GT(static_cast<double>(m_skewed->size()),
            1.3 * static_cast<double>(m_uniform->size()))
      << "zipf=" << m_skewed->size() << " uniform=" << m_uniform->size();
}

TEST(GeneratorMiningTest, ChemFamiliesShareScaffoldPatterns) {
  // Graphs of one family should share more mined features than graphs of
  // different families — the "natural clusters" property.
  ChemGenOptions opts;
  opts.num_graphs = 60;
  opts.num_families = 4;
  GraphDatabase db = GenerateChemDatabase(opts);
  MiningOptions mining;
  mining.min_support = 0.1;
  mining.max_edges = 4;
  auto mined = MineFrequentSubgraphs(db, mining);
  ASSERT_TRUE(mined.ok());
  BinaryFeatureDb features = BinaryFeatureDb::FromPatterns(60, *mined);
  // Pairs with small δ2 should share more features than pairs with large
  // δ2 (coarse correlation check across 200 sampled pairs).
  DissimilarityMatrix delta = DissimilarityMatrix::Compute(db);
  std::vector<std::pair<double, int>> samples;  // (delta, shared features)
  for (int i = 0; i < 60; i += 3) {
    for (int j = i + 1; j < 60; j += 3) {
      const auto& a = features.GraphFeatures(i);
      const auto& b = features.GraphFeatures(j);
      std::vector<int> shared;
      std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                            std::back_inserter(shared));
      samples.push_back({delta.at(i, j), static_cast<int>(shared.size())});
    }
  }
  double low_shared = 0, high_shared = 0;
  int low_n = 0, high_n = 0;
  for (const auto& [d, s] : samples) {
    if (d < 0.5) {
      low_shared += s;
      ++low_n;
    } else {
      high_shared += s;
      ++high_n;
    }
  }
  ASSERT_GT(low_n, 0);
  ASSERT_GT(high_n, 0);
  EXPECT_GT(low_shared / low_n, high_shared / high_n)
      << "similar graphs should share more features";
}

TEST(PipelinePropertyTest, MappedDistanceCorrelatesWithDelta) {
  // Spearman-style sanity: across random pairs, DSPM-space distances and δ2
  // must rank pairs concordantly far more often than discordantly.
  ChemGenOptions opts;
  opts.num_graphs = 50;
  GraphDatabase db = GenerateChemDatabase(opts);
  MiningOptions mining;
  mining.min_support = 0.08;
  mining.max_edges = 5;
  auto mined = MineFrequentSubgraphs(db, mining);
  ASSERT_TRUE(mined.ok());
  BinaryFeatureDb features = BinaryFeatureDb::FromPatterns(50, *mined);
  DissimilarityMatrix delta = DissimilarityMatrix::Compute(db);
  DspmOptions dspm;
  dspm.p = std::min(40, features.num_features());
  dspm.max_iters = 60;
  dspm.epsilon = 1e-8;
  DspmResult r = RunDspm(features, delta, dspm);

  auto mapped_distance = [&](int i, int j) {
    int diff = 0;
    for (int f : r.selected) {
      diff += features.Contains(i, f) != features.Contains(j, f) ? 1 : 0;
    }
    return std::sqrt(static_cast<double>(diff) /
                     static_cast<double>(r.selected.size()));
  };
  Rng rng(17);
  int concordant = 0, discordant = 0;
  for (int trial = 0; trial < 400; ++trial) {
    int a = rng.UniformInt(0, 49), b = rng.UniformInt(0, 49);
    int c = rng.UniformInt(0, 49), d = rng.UniformInt(0, 49);
    if (a == b || c == d) continue;
    double dd = delta.at(a, b) - delta.at(c, d);
    double dm = mapped_distance(a, b) - mapped_distance(c, d);
    if (std::abs(dd) < 0.05 || std::abs(dm) < 1e-12) continue;
    if ((dd > 0) == (dm > 0)) {
      ++concordant;
    } else {
      ++discordant;
    }
  }
  ASSERT_GT(concordant + discordant, 50);
  EXPECT_GT(concordant, 2 * discordant)
      << "concordant=" << concordant << " discordant=" << discordant;
}

TEST(DspmapStructureTest, CallCountMatchesRecursionTree) {
  // Algorithm 6 runs DSPM once per leaf and once per internal node:
  // 2·np − 1 calls for np partitions.
  Rng rng(23);
  std::vector<std::vector<uint8_t>> rows(60, std::vector<uint8_t>(20));
  for (auto& row : rows) {
    for (auto& bit : row) bit = rng.Bernoulli(0.3) ? 1 : 0;
  }
  BinaryFeatureDb db = BinaryFeatureDb::FromBitMatrix(rows);
  DspmapOptions opts;
  opts.p = 5;
  opts.partition_size = 10;
  DspmapResult r = RunDspmap(
      db, [](int i, int j) { return i == j ? 0.0 : 0.5; }, opts);
  const int np = static_cast<int>(r.partitions.size());
  EXPECT_GT(np, 1);
  EXPECT_EQ(r.dspm_calls, 2 * np - 1);
}

TEST(MeasureConsistencyTest, BetterRankingNeverScoresWorseOnAllThree) {
  // Degrading an approximate ranking by swapping a correct top answer with
  // the true worst answer must not improve any quality measure.
  Ranking exact;
  for (int i = 0; i < 30; ++i) exact.push_back({i, i * 0.01});
  Ranking good = exact;
  Ranking bad = exact;
  std::swap(bad[0], bad[29]);
  const int k = 10;
  EXPECT_GE(PrecisionAtK(exact, good, k), PrecisionAtK(exact, bad, k));
  EXPECT_GE(KendallTauAtK(exact, good, k), KendallTauAtK(exact, bad, k));
  EXPECT_GE(InverseRankDistanceAtK(exact, good, k),
            InverseRankDistanceAtK(exact, bad, k));
}

TEST(ConnectedComponentsVsMcsTest, DisconnectedDbStillWorks) {
  // The pipeline must not assume connected graphs even though generators
  // produce them: hand-build a db with disconnected members.
  GraphDatabase db;
  for (int i = 0; i < 6; ++i) {
    Graph g;
    g.AddVertex(0);
    g.AddVertex(1);
    g.AddVertex(0);
    g.AddVertex(1);
    g.AddEdge(0, 1, 0);
    g.AddEdge(2, 3, i % 2 == 0 ? 0u : 1u);  // second component varies
    db.push_back(g);
  }
  DissimilarityMatrix delta = DissimilarityMatrix::Compute(db);
  for (int i = 0; i < 6; ++i) {
    for (int j = 0; j < 6; ++j) {
      if (i % 2 == j % 2) {
        EXPECT_DOUBLE_EQ(delta.at(i, j), 0.0) << i << "," << j;
      } else {
        EXPECT_NEAR(delta.at(i, j), 0.5, 1e-12) << i << "," << j;
      }
    }
  }
}

}  // namespace
}  // namespace gdim
