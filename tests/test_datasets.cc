#include <set>

#include <gtest/gtest.h>

#include "datasets/chemgen.h"
#include "datasets/fingerprint.h"
#include "datasets/graphgen.h"
#include "graph/graph_utils.h"
#include "isomorphism/vf2.h"

namespace gdim {
namespace {

TEST(GraphGenTest, ProducesRequestedCount) {
  GraphGenOptions opts;
  opts.num_graphs = 50;
  GraphDatabase db = GenerateSyntheticDatabase(opts);
  EXPECT_EQ(db.size(), 50u);
}

TEST(GraphGenTest, GraphsAreConnectedAndLabeled) {
  GraphGenOptions opts;
  opts.num_graphs = 40;
  opts.num_vertex_labels = 5;
  opts.num_edge_labels = 2;
  GraphDatabase db = GenerateSyntheticDatabase(opts);
  for (const Graph& g : db) {
    EXPECT_TRUE(IsConnected(g));
    EXPECT_GE(g.NumEdges(), g.NumVertices() - 1);
    for (VertexId v = 0; v < g.NumVertices(); ++v) {
      EXPECT_LT(g.VertexLabel(v), 5u);
    }
    for (const Edge& e : g.edges()) EXPECT_LT(e.label, 2u);
  }
}

TEST(GraphGenTest, AverageEdgesNearTarget) {
  GraphGenOptions opts;
  opts.num_graphs = 200;
  opts.avg_edges = 20;
  GraphDatabase db = GenerateSyntheticDatabase(opts);
  double total = 0;
  for (const Graph& g : db) total += g.NumEdges();
  EXPECT_NEAR(total / 200.0, 20.0, 2.0);
}

TEST(GraphGenTest, DensityNearTarget) {
  GraphGenOptions opts;
  opts.num_graphs = 200;
  opts.avg_edges = 20;
  opts.density = 0.2;
  GraphDatabase db = GenerateSyntheticDatabase(opts);
  double total = 0;
  for (const Graph& g : db) total += GraphDensity(g);
  EXPECT_NEAR(total / 200.0, 0.2, 0.05);
}

TEST(GraphGenTest, DeterministicInSeed) {
  GraphGenOptions opts;
  opts.num_graphs = 10;
  GraphDatabase a = GenerateSyntheticDatabase(opts);
  GraphDatabase b = GenerateSyntheticDatabase(opts);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
  opts.seed = 2;
  GraphDatabase c = GenerateSyntheticDatabase(opts);
  bool all_same = true;
  for (size_t i = 0; i < a.size(); ++i) all_same &= (a[i] == c[i]);
  EXPECT_FALSE(all_same);
}

TEST(ChemGenTest, SizesWithinBounds) {
  ChemGenOptions opts;
  opts.num_graphs = 100;
  GraphDatabase db = GenerateChemDatabase(opts);
  ASSERT_EQ(db.size(), 100u);
  for (const Graph& g : db) {
    EXPECT_GE(g.NumVertices(), opts.min_vertices);
    // Fused-ring scaffolds may slightly exceed the budget before growth
    // stops; allow the scaffold margin.
    EXPECT_LE(g.NumVertices(), opts.max_vertices + 10);
    EXPECT_TRUE(IsConnected(g));
  }
}

TEST(ChemGenTest, UsesChemicalAlphabets) {
  ChemGenOptions opts;
  opts.num_graphs = 60;
  GraphDatabase db = GenerateChemDatabase(opts);
  LabelMap atoms = ChemAtomNames();
  LabelMap bonds = ChemBondNames();
  int carbon = 0, total = 0;
  for (const Graph& g : db) {
    for (VertexId v = 0; v < g.NumVertices(); ++v) {
      EXPECT_LT(static_cast<int>(g.VertexLabel(v)), atoms.size());
      carbon += g.VertexLabel(v) == kCarbon ? 1 : 0;
      ++total;
    }
    for (const Edge& e : g.edges()) {
      EXPECT_LT(static_cast<int>(e.label), bonds.size());
    }
  }
  // Carbon dominates, as in real compound data.
  EXPECT_GT(static_cast<double>(carbon) / total, 0.4);
}

TEST(ChemGenTest, QueriesDifferFromDatabaseButShareFamilies) {
  ChemGenOptions opts;
  opts.num_graphs = 30;
  GraphDatabase db = GenerateChemDatabase(opts);
  GraphDatabase queries = GenerateChemQueries(opts, 30);
  ASSERT_EQ(queries.size(), 30u);
  // Streams differ: the i-th graphs should not all coincide.
  int same = 0;
  for (size_t i = 0; i < db.size(); ++i) same += (db[i] == queries[i]) ? 1 : 0;
  EXPECT_LT(same, 5);
}

TEST(ChemGenTest, Deterministic) {
  ChemGenOptions opts;
  opts.num_graphs = 20;
  GraphDatabase a = GenerateChemDatabase(opts);
  GraphDatabase b = GenerateChemDatabase(opts);
  for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
}

TEST(FingerprintTest, BuildRejectsBadArgs) {
  GraphDatabase sample = GenerateChemDatabase({.num_graphs = 20});
  EXPECT_FALSE(FingerprintDictionary::Build(sample, 0).ok());
}

TEST(FingerprintTest, BuildAndMatch) {
  ChemGenOptions opts;
  opts.num_graphs = 40;
  GraphDatabase sample = GenerateChemDatabase(opts);
  auto dict = FingerprintDictionary::Build(sample, 64, 0.2, 3);
  ASSERT_TRUE(dict.ok()) << dict.status().ToString();
  EXPECT_GT(dict->bits(), 0);
  EXPECT_LE(dict->bits(), 64);
  // Fingerprint of a sample graph: bit r set iff pattern r embeds.
  std::vector<uint8_t> fp = dict->Fingerprint(sample[0]);
  ASSERT_EQ(static_cast<int>(fp.size()), dict->bits());
  for (int r = 0; r < dict->bits(); ++r) {
    EXPECT_EQ(fp[static_cast<size_t>(r)] != 0,
              IsSubgraphIsomorphic(dict->patterns()[static_cast<size_t>(r)],
                                   sample[0]));
  }
}

TEST(TanimotoTest, KnownValues) {
  std::vector<uint8_t> a = {1, 1, 0, 0};
  std::vector<uint8_t> b = {1, 0, 1, 0};
  EXPECT_DOUBLE_EQ(TanimotoSimilarity(a, b), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(TanimotoSimilarity(a, a), 1.0);
  std::vector<uint8_t> zero = {0, 0, 0, 0};
  EXPECT_DOUBLE_EQ(TanimotoSimilarity(zero, zero), 1.0);
  EXPECT_DOUBLE_EQ(TanimotoSimilarity(a, zero), 0.0);
}

}  // namespace
}  // namespace gdim
