#ifndef GDIM_TESTS_TEST_UTIL_H_
#define GDIM_TESTS_TEST_UTIL_H_

#include <algorithm>
#include <vector>

#include "common/random.h"
#include "graph/graph.h"
#include "graph/graph_utils.h"
#include "isomorphism/vf2.h"

namespace gdim {
namespace testing_util {

/// Random connected labeled graph with n vertices and extra random edges.
inline Graph RandomConnectedGraph(int n, int extra_edges, int vertex_labels,
                                  int edge_labels, Rng* rng) {
  Graph g;
  for (int v = 0; v < n; ++v) {
    g.AddVertex(static_cast<LabelId>(
        rng->UniformU64(static_cast<uint64_t>(vertex_labels))));
  }
  for (int v = 1; v < n; ++v) {
    int u = static_cast<int>(rng->UniformU64(static_cast<uint64_t>(v)));
    g.AddEdge(u, v, static_cast<LabelId>(rng->UniformU64(
                        static_cast<uint64_t>(edge_labels))));
  }
  int guard = 0;
  while (extra_edges > 0 && guard < 200) {
    ++guard;
    int u = static_cast<int>(rng->UniformU64(static_cast<uint64_t>(n)));
    int v = static_cast<int>(rng->UniformU64(static_cast<uint64_t>(n)));
    if (u == v || g.HasEdge(u, v)) continue;
    g.AddEdge(u, v, static_cast<LabelId>(rng->UniformU64(
                        static_cast<uint64_t>(edge_labels))));
    --extra_edges;
  }
  return g;
}

/// Random edge-subgraph of g with the given number of edges kept.
inline Graph RandomEdgeSubgraph(const Graph& g, int keep_edges, Rng* rng) {
  std::vector<EdgeId> ids;
  for (EdgeId e = 0; e < g.NumEdges(); ++e) ids.push_back(e);
  rng->Shuffle(&ids);
  keep_edges = std::min<int>(keep_edges, static_cast<int>(ids.size()));
  ids.resize(static_cast<size_t>(keep_edges));
  return EdgeSubgraph(g, ids);
}

/// Brute-force subgraph isomorphism: tries all injective vertex mappings.
/// Only usable for tiny patterns.
inline bool BruteForceSubgraphIso(const Graph& pattern, const Graph& target) {
  const int np = pattern.NumVertices();
  const int nt = target.NumVertices();
  if (np > nt) return false;
  std::vector<int> perm(static_cast<size_t>(nt));
  for (int i = 0; i < nt; ++i) perm[static_cast<size_t>(i)] = i;
  std::sort(perm.begin(), perm.end());
  do {
    bool ok = true;
    for (int v = 0; v < np && ok; ++v) {
      if (pattern.VertexLabel(v) !=
          target.VertexLabel(perm[static_cast<size_t>(v)])) {
        ok = false;
      }
    }
    for (const Edge& e : pattern.edges()) {
      if (!ok) break;
      EdgeId te = target.FindEdge(perm[static_cast<size_t>(e.u)],
                                  perm[static_cast<size_t>(e.v)]);
      if (te < 0 || target.GetEdge(te).label != e.label) ok = false;
    }
    if (ok) return true;
  } while (std::next_permutation(perm.begin(), perm.end()));
  return false;
}

/// Brute-force maximum common edge subgraph size: tries all edge subsets of
/// the smaller graph. Exponential; patterns must have few edges.
inline int BruteForceMcs(const Graph& a, const Graph& b) {
  const Graph& small = a.NumEdges() <= b.NumEdges() ? a : b;
  const Graph& big = a.NumEdges() <= b.NumEdges() ? b : a;
  const int ne = small.NumEdges();
  int best = 0;
  for (uint32_t mask = 0; mask < (1u << ne); ++mask) {
    int bits = __builtin_popcount(mask);
    if (bits <= best) continue;
    std::vector<EdgeId> ids;
    for (int e = 0; e < ne; ++e) {
      if (mask & (1u << e)) ids.push_back(e);
    }
    Graph sub = EdgeSubgraph(small, ids);
    if (BruteForceSubgraphIso(sub, big)) best = bits;
  }
  return best;
}

}  // namespace testing_util
}  // namespace gdim

#endif  // GDIM_TESTS_TEST_UTIL_H_
