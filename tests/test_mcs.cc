#include <gtest/gtest.h>

#include "mcs/dissimilarity.h"
#include "mcs/mcs.h"
#include "test_util.h"

namespace gdim {
namespace {

using testing_util::BruteForceMcs;
using testing_util::RandomConnectedGraph;
using testing_util::RandomEdgeSubgraph;

Graph LabeledPath(std::initializer_list<LabelId> vlabels, LabelId elabel) {
  Graph g;
  for (LabelId l : vlabels) g.AddVertex(l);
  for (int i = 0; i + 1 < g.NumVertices(); ++i) g.AddEdge(i, i + 1, elabel);
  return g;
}

TEST(McsTest, IdenticalGraphs) {
  Graph g = LabeledPath({1, 2, 3}, 0);
  EXPECT_EQ(McsSize(g, g), g.NumEdges());
}

TEST(McsTest, DisjointLabelsGiveZero) {
  Graph a = LabeledPath({1, 1}, 0);
  Graph b = LabeledPath({2, 2}, 0);
  EXPECT_EQ(McsSize(a, b), 0);
}

TEST(McsTest, EmptyGraphs) {
  Graph empty;
  Graph g = LabeledPath({1, 2}, 0);
  EXPECT_EQ(McsSize(empty, g), 0);
  EXPECT_EQ(McsSize(empty, empty), 0);
}

TEST(McsTest, SubgraphGivesPatternSize) {
  Rng rng(21);
  for (int round = 0; round < 10; ++round) {
    Graph g = RandomConnectedGraph(8, 3, 2, 2, &rng);
    Graph sub = RandomEdgeSubgraph(g, 4, &rng);
    EXPECT_EQ(McsSize(sub, g), sub.NumEdges()) << "round " << round;
  }
}

TEST(McsTest, Symmetric) {
  Rng rng(22);
  for (int round = 0; round < 10; ++round) {
    Graph a = RandomConnectedGraph(6, 2, 2, 2, &rng);
    Graph b = RandomConnectedGraph(7, 2, 2, 2, &rng);
    EXPECT_EQ(McsSize(a, b), McsSize(b, a)) << "round " << round;
  }
}

TEST(McsTest, NodeBudgetReturnsNonOptimalFlag) {
  Rng rng(23);
  Graph a = RandomConnectedGraph(10, 6, 1, 1, &rng);
  Graph b = RandomConnectedGraph(10, 6, 1, 1, &rng);
  McsOptions opts;
  opts.max_nodes = 5;
  McsResult r = MaxCommonEdgeSubgraph(a, b, opts);
  EXPECT_FALSE(r.optimal);
  EXPECT_LE(r.common_edges, std::min(a.NumEdges(), b.NumEdges()));
}

TEST(McsTest, BoundedByLabelIntersection) {
  Rng rng(24);
  for (int round = 0; round < 10; ++round) {
    Graph a = RandomConnectedGraph(6, 3, 3, 2, &rng);
    Graph b = RandomConnectedGraph(6, 3, 3, 2, &rng);
    EXPECT_LE(McsSize(a, b), EdgeLabelIntersectionBound(a, b));
  }
}

// Property: exact MCS equals brute force on small random graphs.
class McsRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(McsRandomTest, MatchesBruteForce) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 101);
  for (int round = 0; round < 8; ++round) {
    Graph a = RandomConnectedGraph(rng.UniformInt(3, 6),
                                   rng.UniformInt(0, 2), 2, 2, &rng);
    Graph b = RandomConnectedGraph(rng.UniformInt(3, 6),
                                   rng.UniformInt(0, 2), 2, 2, &rng);
    EXPECT_EQ(McsSize(a, b), BruteForceMcs(a, b))
        << "seed " << GetParam() << " round " << round;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, McsRandomTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

TEST(ConnectedMcsTest, AtMostUnconstrained) {
  Rng rng(31);
  McsOptions connected;
  connected.connected = true;
  for (int round = 0; round < 10; ++round) {
    Graph a = RandomConnectedGraph(6, 2, 2, 2, &rng);
    Graph b = RandomConnectedGraph(6, 2, 2, 2, &rng);
    int unconstrained = McsSize(a, b);
    int conn = MaxCommonEdgeSubgraph(a, b, connected).common_edges;
    EXPECT_LE(conn, unconstrained) << "round " << round;
    EXPECT_GE(conn, unconstrained > 0 ? 1 : 0);
  }
}

TEST(ConnectedMcsTest, IdenticalConnectedGraph) {
  Graph g = LabeledPath({1, 2, 3, 1}, 0);
  McsOptions opts;
  opts.connected = true;
  EXPECT_EQ(MaxCommonEdgeSubgraph(g, g, opts).common_edges, g.NumEdges());
}

TEST(ConnectedMcsTest, ForcedDisconnectedCommonStructure) {
  // a: path (1)-(2) plus path (3)-(4); b has both pieces but never joined.
  Graph a;
  a.AddVertex(1);
  a.AddVertex(2);
  a.AddVertex(3);
  a.AddVertex(4);
  a.AddEdge(0, 1, 0);
  a.AddEdge(2, 3, 0);
  Graph b;
  b.AddVertex(1);
  b.AddVertex(2);
  b.AddVertex(3);
  b.AddVertex(4);
  b.AddEdge(0, 1, 0);
  b.AddEdge(2, 3, 0);
  EXPECT_EQ(McsSize(a, b), 2);
  McsOptions opts;
  opts.connected = true;
  EXPECT_EQ(MaxCommonEdgeSubgraph(a, b, opts).common_edges, 1);
}

// Property: both exact algorithms agree on random graphs.
class McsAlgorithmEquivalenceTest : public ::testing::TestWithParam<int> {};

TEST_P(McsAlgorithmEquivalenceTest, CliqueMatchesMcGregor) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 211);
  for (int round = 0; round < 10; ++round) {
    Graph a = RandomConnectedGraph(rng.UniformInt(4, 8),
                                   rng.UniformInt(0, 3), 2, 2, &rng);
    Graph b = RandomConnectedGraph(rng.UniformInt(4, 8),
                                   rng.UniformInt(0, 3), 2, 2, &rng);
    McsOptions mg;
    mg.algorithm = McsAlgorithm::kMcGregor;
    McsOptions cl;
    cl.algorithm = McsAlgorithm::kClique;
    McsOptions automatic;
    automatic.algorithm = McsAlgorithm::kAuto;
    int vmg = MaxCommonEdgeSubgraph(a, b, mg).common_edges;
    int vcl = MaxCommonEdgeSubgraph(a, b, cl).common_edges;
    int vauto = MaxCommonEdgeSubgraph(a, b, automatic).common_edges;
    EXPECT_EQ(vmg, vcl) << "round " << round;
    EXPECT_EQ(vmg, vauto) << "round " << round;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, McsAlgorithmEquivalenceTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

TEST(DissimilarityTest, DeltaFormulas) {
  EXPECT_DOUBLE_EQ(Delta1FromMcs(2, 4, 2), 1.0 - 2.0 / 4.0);
  EXPECT_DOUBLE_EQ(Delta2FromMcs(2, 4, 2), 1.0 - 4.0 / 6.0);
  // Both empty: identical.
  EXPECT_DOUBLE_EQ(Delta1FromMcs(0, 0, 0), 0.0);
  EXPECT_DOUBLE_EQ(Delta2FromMcs(0, 0, 0), 0.0);
}

TEST(DissimilarityTest, RangeAndIdentity) {
  Rng rng(41);
  for (int round = 0; round < 10; ++round) {
    Graph a = RandomConnectedGraph(6, 2, 2, 2, &rng);
    Graph b = RandomConnectedGraph(6, 2, 2, 2, &rng);
    for (DissimilarityKind kind :
         {DissimilarityKind::kDelta1, DissimilarityKind::kDelta2}) {
      double d = GraphDissimilarity(a, b, kind);
      EXPECT_GE(d, 0.0);
      EXPECT_LE(d, 1.0);
      EXPECT_DOUBLE_EQ(GraphDissimilarity(a, a, kind), 0.0);
    }
  }
}

TEST(DissimilarityTest, Delta1GeDelta2IsFalseInGeneral) {
  // δ1 normalizes by max size, δ2 by average: δ1 >= δ2 always.
  Rng rng(43);
  for (int round = 0; round < 10; ++round) {
    Graph a = RandomConnectedGraph(5, 2, 2, 2, &rng);
    Graph b = RandomConnectedGraph(7, 2, 2, 2, &rng);
    double d1 = GraphDissimilarity(a, b, DissimilarityKind::kDelta1);
    double d2 = GraphDissimilarity(a, b, DissimilarityKind::kDelta2);
    EXPECT_GE(d1 + 1e-12, d2);
  }
}

TEST(DissimilarityMatrixTest, SymmetricZeroDiagonal) {
  Rng rng(44);
  GraphDatabase db;
  for (int i = 0; i < 8; ++i) {
    db.push_back(RandomConnectedGraph(5, 2, 2, 2, &rng));
  }
  DissimilarityMatrix m = DissimilarityMatrix::Compute(db);
  ASSERT_EQ(m.size(), 8);
  for (int i = 0; i < 8; ++i) {
    EXPECT_DOUBLE_EQ(m.at(i, i), 0.0);
    for (int j = 0; j < 8; ++j) {
      EXPECT_DOUBLE_EQ(m.at(i, j), m.at(j, i));
      EXPECT_DOUBLE_EQ(m.at(i, j), GraphDissimilarity(db[static_cast<size_t>(i)],
                                                      db[static_cast<size_t>(j)]));
    }
  }
}

TEST(DissimilarityMatrixTest, FromDense) {
  std::vector<double> vals = {0, 0.5, 0.5, 0};
  DissimilarityMatrix m = DissimilarityMatrix::FromDense(2, vals);
  EXPECT_EQ(m.size(), 2);
  EXPECT_DOUBLE_EQ(m.at(0, 1), 0.5);
}

TEST(QueryDissimilaritiesTest, MatchesPointwise) {
  Rng rng(45);
  GraphDatabase db, queries;
  for (int i = 0; i < 4; ++i) db.push_back(RandomConnectedGraph(5, 1, 2, 2, &rng));
  for (int i = 0; i < 3; ++i) {
    queries.push_back(RandomConnectedGraph(5, 1, 2, 2, &rng));
  }
  auto qd = QueryDissimilarities(queries, db);
  ASSERT_EQ(qd.size(), 3u);
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    for (size_t gi = 0; gi < db.size(); ++gi) {
      EXPECT_DOUBLE_EQ(qd[qi][gi], GraphDissimilarity(queries[qi], db[gi]));
    }
  }
}

}  // namespace
}  // namespace gdim
