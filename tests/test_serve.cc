// Serving hot-path tests: the packed bit-matrix scan must agree bit for bit
// with the byte-vector reference, and the QueryEngine must be deterministic
// across thread counts.

#include <gtest/gtest.h>

#include <vector>

#include "common/histogram.h"
#include "common/random.h"
#include "core/index.h"
#include "core/index_io.h"
#include "core/objective.h"
#include "core/packed_bits.h"
#include "core/topk.h"
#include "datasets/chemgen.h"
#include "serve/query_engine.h"

namespace gdim {
namespace {

TEST(PackedBitMatrixTest, RoundTripsBitsAcrossWordBoundaries) {
  Rng rng(3);
  for (int p : {1, 7, 63, 64, 65, 128, 300}) {
    const auto rows = RandomBitRows(17, p, 0.4, &rng);
    const PackedBitMatrix m = PackedBitMatrix::FromRows(rows);
    ASSERT_EQ(m.num_rows(), 17);
    ASSERT_EQ(m.num_bits(), p);
    ASSERT_EQ(m.words_per_row(), (static_cast<size_t>(p) + 63) / 64);
    for (int i = 0; i < m.num_rows(); ++i) {
      for (int r = 0; r < p; ++r) {
        EXPECT_EQ(m.GetBit(i, r),
                  rows[static_cast<size_t>(i)][static_cast<size_t>(r)] != 0)
            << "p=" << p << " row=" << i << " bit=" << r;
      }
    }
  }
}

TEST(PackedBitMatrixTest, HammingAndNormalizedDistanceMatchReference) {
  Rng rng(11);
  const int p = 130;  // straddles a word boundary with a partial last word
  const auto rows = RandomBitRows(25, p, 0.3, &rng);
  const PackedBitMatrix m = PackedBitMatrix::FromRows(rows);
  const auto queries = RandomBitRows(6, p, 0.3, &rng);
  for (const auto& q : queries) {
    const std::vector<uint64_t> packed = PackedBitMatrix::PackBits(q);
    for (int i = 0; i < m.num_rows(); ++i) {
      int diff = 0;
      for (int r = 0; r < p; ++r) {
        diff += q[static_cast<size_t>(r)] !=
                rows[static_cast<size_t>(i)][static_cast<size_t>(r)];
      }
      EXPECT_EQ(m.HammingDistance(packed, i), diff);
      EXPECT_DOUBLE_EQ(m.NormalizedDistance(packed, i),
                       BinaryMappedDistance(q, rows[static_cast<size_t>(i)]));
    }
  }
}

TEST(PackedBitMatrixTest, PackedMappedRankingEqualsByteMappedRanking) {
  Rng rng(19);
  for (int p : {5, 64, 100, 256, 300}) {
    const auto rows = RandomBitRows(200, p, 0.25, &rng);
    const PackedBitMatrix m = PackedBitMatrix::FromRows(rows);
    const auto queries = RandomBitRows(5, p, 0.25, &rng);
    for (const auto& q : queries) {
      const Ranking byte_ranking = MappedRanking(q, rows);
      const Ranking packed_ranking = MappedRanking(q, m);
      // Bit-for-bit: same ids and identical floating-point scores.
      EXPECT_EQ(byte_ranking, packed_ranking) << "p=" << p;
    }
  }
}

TEST(PackedBitMatrixTest, SubsetScoresMatchFullScan) {
  Rng rng(23);
  const auto rows = RandomBitRows(60, 90, 0.35, &rng);
  const PackedBitMatrix m = PackedBitMatrix::FromRows(rows);
  std::vector<uint64_t> q =
      PackedBitMatrix::PackBits(RandomBitRows(1, 90, 0.35, &rng)[0]);
  std::vector<double> all, subset;
  m.ScoreAll(q, &all);
  const std::vector<int> candidates = {0, 3, 17, 41, 59};
  m.ScoreSubset(q, candidates, &subset);
  ASSERT_EQ(subset.size(), candidates.size());
  for (size_t j = 0; j < candidates.size(); ++j) {
    EXPECT_DOUBLE_EQ(subset[j], all[static_cast<size_t>(candidates[j])]);
  }
}

TEST(TopKByScoresTest, EqualsFullSortThenTruncate) {
  Rng rng(29);
  std::vector<double> scores(500);
  for (auto& s : scores) {
    s = static_cast<double>(rng.UniformU64(40)) / 40.0;  // many ties
  }
  for (int k : {0, 1, 10, 499, 500, 600}) {
    EXPECT_EQ(TopKByScores(scores, k), TopK(RankByScores(scores), k))
        << "k=" << k;
  }

  // Candidate-set counterpart, non-contiguous ids with the same ties.
  std::vector<int> ids;
  std::vector<double> sub_scores;
  for (int i = 0; i < 500; i += 3) {
    ids.push_back(i);
    sub_scores.push_back(scores[static_cast<size_t>(i)]);
  }
  for (int k : {0, 1, 10, 200}) {
    EXPECT_EQ(TopKCandidates(ids, sub_scores, k),
              TopK(RankCandidates(ids, sub_scores), k))
        << "k=" << k;
  }
}

TEST(LatencySummaryTest, PercentilesUseNearestRank) {
  std::vector<double> samples;
  for (int i = 100; i >= 1; --i) samples.push_back(static_cast<double>(i));
  const LatencySummary s = SummarizeLatencies(samples);
  EXPECT_EQ(s.count, 100u);
  EXPECT_DOUBLE_EQ(s.mean, 50.5);
  EXPECT_DOUBLE_EQ(s.p50, 50.0);
  EXPECT_DOUBLE_EQ(s.p95, 95.0);
  EXPECT_DOUBLE_EQ(s.p99, 99.0);
  EXPECT_DOUBLE_EQ(s.max, 100.0);
  EXPECT_EQ(SummarizeLatencies({}).count, 0u);

  // Nearest rank = smallest sample with cumulative frequency >= q: for 13
  // samples, rank(0.95) = ceil(12.35) = 13, not a round-to-nearest 12.
  std::vector<double> thirteen;
  for (int i = 1; i <= 13; ++i) thirteen.push_back(static_cast<double>(i));
  const LatencySummary t = SummarizeLatencies(thirteen);
  EXPECT_DOUBLE_EQ(t.p50, 7.0);
  EXPECT_DOUBLE_EQ(t.p95, 13.0);
  EXPECT_DOUBLE_EQ(t.p99, 13.0);
}

class QueryEngineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ChemGenOptions gen;
    gen.num_graphs = 40;
    gen.num_families = 6;
    gen.min_vertices = 8;
    gen.max_vertices = 14;
    db_ = new GraphDatabase(GenerateChemDatabase(gen));
    // >= 64 queries so QueryBatch actually crosses ParallelFor's serial
    // fallback threshold and the thread-determinism test spawns workers.
    queries_ = new GraphDatabase(GenerateChemQueries(gen, 70));
    IndexOptions opts;
    opts.mining.min_support = 0.15;
    opts.mining.max_edges = 4;
    opts.selector = "DSPM";
    opts.p = 30;
    opts.dspm.max_iters = 10;
    auto built = GraphSearchIndex::Build(*db_, opts);
    GDIM_CHECK(built.ok()) << built.status().ToString();
    index_ = new PersistedIndex();
    index_->features = built->dimension();
    index_->db_bits = built->mapped_database();
  }

  static void TearDownTestSuite() {
    delete db_;
    delete queries_;
    delete index_;
    db_ = nullptr;
    queries_ = nullptr;
    index_ = nullptr;
  }

  static GraphDatabase* db_;
  static GraphDatabase* queries_;
  static PersistedIndex* index_;
};

GraphDatabase* QueryEngineTest::db_ = nullptr;
GraphDatabase* QueryEngineTest::queries_ = nullptr;
PersistedIndex* QueryEngineTest::index_ = nullptr;

TEST_F(QueryEngineTest, MatchesOfflineMappedRanking) {
  auto engine = QueryEngine::FromIndex(*index_);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  FeatureMapper mapper(index_->features);
  for (const Graph& q : *queries_) {
    const Ranking expected =
        TopK(MappedRanking(mapper.Map(q), index_->db_bits), 5);
    ServeQueryStats stats;
    const Ranking got = engine->Query(q, 5, &stats);
    EXPECT_EQ(got, expected);
    EXPECT_EQ(stats.scanned, engine->num_graphs());
    EXPECT_FALSE(stats.prefiltered);
  }
}

TEST_F(QueryEngineTest, BatchIsDeterministicAcrossThreadCounts) {
  ServeOptions one;
  one.threads = 1;
  ServeOptions eight;
  eight.threads = 8;
  auto engine1 = QueryEngine::FromIndex(*index_, one);
  auto engine8 = QueryEngine::FromIndex(*index_, eight);
  ASSERT_TRUE(engine1.ok());
  ASSERT_TRUE(engine8.ok());
  ServeBatchReport report1, report8;
  std::vector<ServeQueryStats> stats1, stats8;
  const auto results1 = engine1->QueryBatch(*queries_, 4, &report1, &stats1);
  const auto results8 = engine8->QueryBatch(*queries_, 4, &report8, &stats8);
  EXPECT_EQ(results1, results8);
  ASSERT_EQ(results1.size(), queries_->size());
  EXPECT_EQ(report1.latency_ms.count, queries_->size());
  EXPECT_EQ(stats1.size(), stats8.size());
  for (size_t i = 0; i < stats1.size(); ++i) {
    EXPECT_EQ(stats1[i].scanned, stats8[i].scanned);
    EXPECT_EQ(stats1[i].features_on, stats8[i].features_on);
  }
}

TEST_F(QueryEngineTest, PrefilterNeverWidensAndKeepsOrder) {
  ServeOptions opts;
  opts.containment_prefilter = true;
  auto engine = QueryEngine::FromIndex(*index_, opts);
  ASSERT_TRUE(engine.ok());
  auto plain = QueryEngine::FromIndex(*index_);
  ASSERT_TRUE(plain.ok());
  for (const Graph& q : *queries_) {
    ServeQueryStats stats;
    const Ranking got = engine->Query(q, 3, &stats);
    EXPECT_LE(stats.scanned, engine->num_graphs());
    for (size_t i = 1; i < got.size(); ++i) {
      EXPECT_LE(got[i - 1].score, got[i].score);
    }
    if (!stats.prefiltered) {
      // Fallback path must equal the unfiltered engine exactly.
      EXPECT_EQ(got, plain->Query(q, 3));
    }
  }
}

// A fully controllable index: feature r is the single vertex labeled r, so a
// graph's fingerprint is exactly its vertex-label set. Lets us pick the
// candidate sets the prefilter must produce and assert the narrowed scan is
// exact, not merely ordered.
TEST(QueryEnginePrefilterTest, NarrowedScanEqualsRestrictedFullRanking) {
  const int kLabels = 4;
  PersistedIndex index;
  for (LabelId r = 0; r < kLabels; ++r) {
    Graph f;
    f.AddVertex(r);
    index.features.push_back(f);
  }
  // Label sets per database graph (as paths); bits = label membership.
  const std::vector<std::vector<LabelId>> label_sets = {
      {0, 1}, {0, 1, 2}, {0, 1, 2, 3}, {2, 3}, {0, 2}, {1, 3}, {0, 1, 3},
  };
  for (const auto& labels : label_sets) {
    std::vector<uint8_t> bits(kLabels, 0);
    for (LabelId l : labels) bits[static_cast<size_t>(l)] = 1;
    index.db_bits.push_back(bits);
  }
  ServeOptions opts;
  opts.containment_prefilter = true;
  auto engine = QueryEngine::FromIndex(index, opts);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();

  // Query with labels {0, 1}: candidates = graphs 0, 1, 2, 6.
  Graph q;
  q.AddVertex(0);
  q.AddVertex(1);
  q.AddEdge(0, 1, 0);
  ServeQueryStats stats;
  const Ranking got = engine->Query(q, 3, &stats);
  EXPECT_TRUE(stats.prefiltered);
  EXPECT_EQ(stats.scanned, 4);
  EXPECT_EQ(stats.features_on, 2);

  // Expected: the full byte-vector ranking restricted to the candidates.
  FeatureMapper mapper(index.features);
  Ranking expected;
  for (const RankedResult& r : MappedRanking(mapper.Map(q), index.db_bits)) {
    if (r.id == 0 || r.id == 1 || r.id == 2 || r.id == 6) {
      expected.push_back(r);
    }
  }
  expected.resize(3);
  EXPECT_EQ(got, expected);
}

TEST_F(QueryEngineTest, RejectsRaggedIndexRows) {
  PersistedIndex bad = *index_;
  ASSERT_FALSE(bad.db_bits.empty());
  bad.db_bits[0].pop_back();
  auto engine = QueryEngine::FromIndex(std::move(bad));
  EXPECT_FALSE(engine.ok());
  EXPECT_EQ(engine.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace gdim
