// Serving hot-path tests: the packed bit-matrix scan must agree bit for bit
// with the byte-vector reference, and the QueryEngine must be deterministic
// across thread counts.

#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "common/histogram.h"
#include "common/random.h"
#include "common/sync.h"
#include "core/index.h"
#include "core/index_io.h"
#include "core/objective.h"
#include "core/packed_bits.h"
#include "core/topk.h"
#include "datasets/chemgen.h"
#include "serve/query_engine.h"

namespace gdim {
namespace {

TEST(PackedBitMatrixTest, RoundTripsBitsAcrossWordBoundaries) {
  Rng rng(3);
  for (int p : {1, 7, 63, 64, 65, 128, 300}) {
    const auto rows = RandomBitRows(17, p, 0.4, &rng);
    const PackedBitMatrix m = PackedBitMatrix::FromRows(rows);
    ASSERT_EQ(m.num_rows(), 17);
    ASSERT_EQ(m.num_bits(), p);
    ASSERT_EQ(m.words_per_row(), (static_cast<size_t>(p) + 63) / 64);
    for (int i = 0; i < m.num_rows(); ++i) {
      for (int r = 0; r < p; ++r) {
        EXPECT_EQ(m.GetBit(i, r),
                  rows[static_cast<size_t>(i)][static_cast<size_t>(r)] != 0)
            << "p=" << p << " row=" << i << " bit=" << r;
      }
    }
  }
}

TEST(PackedBitMatrixTest, HammingAndNormalizedDistanceMatchReference) {
  Rng rng(11);
  const int p = 130;  // straddles a word boundary with a partial last word
  const auto rows = RandomBitRows(25, p, 0.3, &rng);
  const PackedBitMatrix m = PackedBitMatrix::FromRows(rows);
  const auto queries = RandomBitRows(6, p, 0.3, &rng);
  for (const auto& q : queries) {
    const std::vector<uint64_t> packed = PackedBitMatrix::PackBits(q);
    for (int i = 0; i < m.num_rows(); ++i) {
      int diff = 0;
      for (int r = 0; r < p; ++r) {
        diff += q[static_cast<size_t>(r)] !=
                rows[static_cast<size_t>(i)][static_cast<size_t>(r)];
      }
      EXPECT_EQ(m.HammingDistance(packed, i), diff);
      EXPECT_DOUBLE_EQ(m.NormalizedDistance(packed, i),
                       BinaryMappedDistance(q, rows[static_cast<size_t>(i)]));
    }
  }
}

TEST(PackedBitMatrixTest, PackedMappedRankingEqualsByteMappedRanking) {
  Rng rng(19);
  for (int p : {5, 64, 100, 256, 300}) {
    const auto rows = RandomBitRows(200, p, 0.25, &rng);
    const PackedBitMatrix m = PackedBitMatrix::FromRows(rows);
    const auto queries = RandomBitRows(5, p, 0.25, &rng);
    for (const auto& q : queries) {
      const Ranking byte_ranking = MappedRanking(q, rows);
      const Ranking packed_ranking = MappedRanking(q, m);
      // Bit-for-bit: same ids and identical floating-point scores.
      EXPECT_EQ(byte_ranking, packed_ranking) << "p=" << p;
    }
  }
}

TEST(PackedBitMatrixTest, SubsetScoresMatchFullScan) {
  Rng rng(23);
  const auto rows = RandomBitRows(60, 90, 0.35, &rng);
  const PackedBitMatrix m = PackedBitMatrix::FromRows(rows);
  std::vector<uint64_t> q =
      PackedBitMatrix::PackBits(RandomBitRows(1, 90, 0.35, &rng)[0]);
  std::vector<double> all, subset;
  m.ScoreAll(q, &all);
  const std::vector<int> candidates = {0, 3, 17, 41, 59};
  m.ScoreSubset(q, candidates, &subset);
  ASSERT_EQ(subset.size(), candidates.size());
  for (size_t j = 0; j < candidates.size(); ++j) {
    EXPECT_DOUBLE_EQ(subset[j], all[static_cast<size_t>(candidates[j])]);
  }
}

TEST(TopKByScoresTest, EqualsFullSortThenTruncate) {
  Rng rng(29);
  std::vector<double> scores(500);
  for (auto& s : scores) {
    s = static_cast<double>(rng.UniformU64(40)) / 40.0;  // many ties
  }
  for (int k : {0, 1, 10, 499, 500, 600}) {
    EXPECT_EQ(TopKByScores(scores, k), TopK(RankByScores(scores), k))
        << "k=" << k;
  }

  // Candidate-set counterpart, non-contiguous ids with the same ties.
  std::vector<int> ids;
  std::vector<double> sub_scores;
  for (int i = 0; i < 500; i += 3) {
    ids.push_back(i);
    sub_scores.push_back(scores[static_cast<size_t>(i)]);
  }
  for (int k : {0, 1, 10, 200}) {
    EXPECT_EQ(TopKCandidates(ids, sub_scores, k),
              TopK(RankCandidates(ids, sub_scores), k))
        << "k=" << k;
  }
}

TEST(LatencySummaryTest, PercentilesUseNearestRank) {
  std::vector<double> samples;
  for (int i = 100; i >= 1; --i) samples.push_back(static_cast<double>(i));
  const LatencySummary s = SummarizeLatencies(samples);
  EXPECT_EQ(s.count, 100u);
  EXPECT_DOUBLE_EQ(s.mean, 50.5);
  EXPECT_DOUBLE_EQ(s.p50, 50.0);
  EXPECT_DOUBLE_EQ(s.p95, 95.0);
  EXPECT_DOUBLE_EQ(s.p99, 99.0);
  EXPECT_DOUBLE_EQ(s.max, 100.0);
  EXPECT_EQ(SummarizeLatencies({}).count, 0u);

  // Nearest rank = smallest sample with cumulative frequency >= q: for 13
  // samples, rank(0.95) = ceil(12.35) = 13, not a round-to-nearest 12.
  std::vector<double> thirteen;
  for (int i = 1; i <= 13; ++i) thirteen.push_back(static_cast<double>(i));
  const LatencySummary t = SummarizeLatencies(thirteen);
  EXPECT_DOUBLE_EQ(t.p50, 7.0);
  EXPECT_DOUBLE_EQ(t.p95, 13.0);
  EXPECT_DOUBLE_EQ(t.p99, 13.0);
}

class QueryEngineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ChemGenOptions gen;
    gen.num_graphs = 40;
    gen.num_families = 6;
    gen.min_vertices = 8;
    gen.max_vertices = 14;
    db_ = new GraphDatabase(GenerateChemDatabase(gen));
    // >= 64 queries so QueryBatch actually crosses ParallelFor's serial
    // fallback threshold and the thread-determinism test spawns workers.
    queries_ = new GraphDatabase(GenerateChemQueries(gen, 70));
    IndexOptions opts;
    opts.mining.min_support = 0.15;
    opts.mining.max_edges = 4;
    opts.selector = "DSPM";
    opts.p = 30;
    opts.dspm.max_iters = 10;
    auto built = GraphSearchIndex::Build(*db_, opts);
    GDIM_CHECK(built.ok()) << built.status().ToString();
    index_ = new PersistedIndex();
    index_->features = built->dimension();
    index_->db_bits = built->mapped_database();
  }

  static void TearDownTestSuite() {
    delete db_;
    delete queries_;
    delete index_;
    db_ = nullptr;
    queries_ = nullptr;
    index_ = nullptr;
  }

  static GraphDatabase* db_;
  static GraphDatabase* queries_;
  static PersistedIndex* index_;
};

GraphDatabase* QueryEngineTest::db_ = nullptr;
GraphDatabase* QueryEngineTest::queries_ = nullptr;
PersistedIndex* QueryEngineTest::index_ = nullptr;

TEST_F(QueryEngineTest, MatchesOfflineMappedRanking) {
  auto engine = QueryEngine::FromIndex(*index_);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  FeatureMapper mapper(index_->features);
  for (const Graph& q : *queries_) {
    const Ranking expected =
        TopK(MappedRanking(mapper.Map(q), index_->db_bits), 5);
    ServeQueryStats stats;
    const Ranking got = engine->Query(q, {.k = 5}, &stats);
    EXPECT_EQ(got, expected);
    EXPECT_EQ(stats.scanned, engine->num_graphs());
    EXPECT_FALSE(stats.prefiltered);
  }
}

TEST_F(QueryEngineTest, BatchIsDeterministicAcrossThreadCounts) {
  ServeOptions one;
  one.threads = 1;
  ServeOptions eight;
  eight.threads = 8;
  auto engine1 = QueryEngine::FromIndex(*index_, one);
  auto engine8 = QueryEngine::FromIndex(*index_, eight);
  ASSERT_TRUE(engine1.ok());
  ASSERT_TRUE(engine8.ok());
  ServeBatchReport report1, report8;
  std::vector<ServeQueryStats> stats1, stats8;
  const auto results1 =
      engine1->QueryBatch(*queries_, {.k = 4}, &report1, &stats1);
  const auto results8 =
      engine8->QueryBatch(*queries_, {.k = 4}, &report8, &stats8);
  EXPECT_EQ(results1, results8);
  ASSERT_EQ(results1.size(), queries_->size());
  EXPECT_EQ(report1.latency_ms.count, queries_->size());
  EXPECT_EQ(stats1.size(), stats8.size());
  for (size_t i = 0; i < stats1.size(); ++i) {
    EXPECT_EQ(stats1[i].scanned, stats8[i].scanned);
    EXPECT_EQ(stats1[i].features_on, stats8[i].features_on);
  }
}

TEST_F(QueryEngineTest, PrefilterNeverWidensAndKeepsOrder) {
  ServeOptions opts;
  opts.containment_prefilter = true;
  auto engine = QueryEngine::FromIndex(*index_, opts);
  ASSERT_TRUE(engine.ok());
  auto plain = QueryEngine::FromIndex(*index_);
  ASSERT_TRUE(plain.ok());
  for (const Graph& q : *queries_) {
    ServeQueryStats stats;
    const Ranking got = engine->Query(q, {.k = 3}, &stats);
    EXPECT_LE(stats.scanned, engine->num_graphs());
    for (size_t i = 1; i < got.size(); ++i) {
      EXPECT_LE(got[i - 1].score, got[i].score);
    }
    if (!stats.prefiltered) {
      // Fallback path must equal the unfiltered engine exactly.
      EXPECT_EQ(got, plain->Query(q, {.k = 3}));
    }
  }
}

// A fully controllable index: feature r is the single vertex labeled r, so a
// graph's fingerprint is exactly its vertex-label set. Lets us pick the
// candidate sets the prefilter must produce and assert the narrowed scan is
// exact, not merely ordered.
TEST(QueryEnginePrefilterTest, NarrowedScanEqualsRestrictedFullRanking) {
  const int kLabels = 4;
  PersistedIndex index;
  for (LabelId r = 0; r < kLabels; ++r) {
    Graph f;
    f.AddVertex(r);
    index.features.push_back(f);
  }
  // Label sets per database graph (as paths); bits = label membership.
  const std::vector<std::vector<LabelId>> label_sets = {
      {0, 1}, {0, 1, 2}, {0, 1, 2, 3}, {2, 3}, {0, 2}, {1, 3}, {0, 1, 3},
  };
  for (const auto& labels : label_sets) {
    std::vector<uint8_t> bits(kLabels, 0);
    for (LabelId l : labels) bits[static_cast<size_t>(l)] = 1;
    index.db_bits.push_back(bits);
  }
  ServeOptions opts;
  opts.containment_prefilter = true;
  auto engine = QueryEngine::FromIndex(index, opts);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();

  // Query with labels {0, 1}: candidates = graphs 0, 1, 2, 6.
  Graph q;
  q.AddVertex(0);
  q.AddVertex(1);
  q.AddEdge(0, 1, 0);
  ServeQueryStats stats;
  const Ranking got = engine->Query(q, {.k = 3}, &stats);
  EXPECT_TRUE(stats.prefiltered);
  EXPECT_EQ(stats.scanned, 4);
  EXPECT_EQ(stats.features_on, 2);

  // Expected: the full byte-vector ranking restricted to the candidates.
  FeatureMapper mapper(index.features);
  Ranking expected;
  for (const RankedResult& r : MappedRanking(mapper.Map(q), index.db_bits)) {
    if (r.id == 0 || r.id == 1 || r.id == 2 || r.id == 6) {
      expected.push_back(r);
    }
  }
  expected.resize(3);
  EXPECT_EQ(got, expected);
}

TEST_F(QueryEngineTest, RejectsRaggedIndexRows) {
  PersistedIndex bad = *index_;
  ASSERT_FALSE(bad.db_bits.empty());
  bad.db_bits[0].pop_back();
  auto engine = QueryEngine::FromIndex(std::move(bad));
  EXPECT_FALSE(engine.ok());
  EXPECT_EQ(engine.status().code(), StatusCode::kInvalidArgument);
}

TEST(PackedBitMatrixTest, AppendRowMatchesFromRows) {
  Rng rng(41);
  for (int p : {1, 63, 64, 65, 130}) {
    const auto rows = RandomBitRows(9, p, 0.4, &rng);
    const PackedBitMatrix whole = PackedBitMatrix::FromRows(rows);
    PackedBitMatrix grown = PackedBitMatrix::WithWidth(p);
    EXPECT_EQ(grown.num_rows(), 0);
    EXPECT_EQ(grown.num_bits(), p);
    grown.Reserve(static_cast<int>(rows.size()));
    for (size_t i = 0; i < rows.size(); ++i) {
      EXPECT_EQ(grown.AppendRow(rows[i]), static_cast<int>(i));
    }
    ASSERT_EQ(grown.num_rows(), whole.num_rows());
    PackedBitMatrix copied = PackedBitMatrix::WithWidth(p);
    for (int i = whole.num_rows() - 1; i >= 0; --i) {
      copied.AppendRowFrom(whole, i);  // word-level copy, reversed order
    }
    const std::vector<uint64_t> q =
        grown.PackQuery(RandomBitRows(1, p, 0.4, &rng)[0]);
    for (int i = 0; i < whole.num_rows(); ++i) {
      EXPECT_EQ(grown.UnpackRow(i), rows[static_cast<size_t>(i)]);
      EXPECT_EQ(grown.HammingDistance(q, i), whole.HammingDistance(q, i));
      EXPECT_EQ(copied.UnpackRow(whole.num_rows() - 1 - i),
                rows[static_cast<size_t>(i)]);
    }
  }
}

TEST(PackedBitMatrixTest, PackQueryValidatesWidthEvenWhenEmpty) {
  const PackedBitMatrix empty = PackedBitMatrix::FromRows({}, 10);
  EXPECT_EQ(empty.num_rows(), 0);
  EXPECT_EQ(empty.num_bits(), 10);
  EXPECT_EQ(empty.PackQuery(std::vector<uint8_t>(10, 1)).size(), 1u);
  EXPECT_DEATH(empty.PackQuery(std::vector<uint8_t>(7, 1)),
               "query width");
}

// ---------------------------------------------------------------------------
// Mutable engine: segmented insert/remove/compact.

/// Applies the same mutation to an engine and to a shadow (id, bits) model;
/// the shadow stays sorted by id because new ids always exceed old ones.
struct ShadowDb {
  std::vector<std::pair<int, std::vector<uint8_t>>> rows;
  int next_id = 0;

  void Insert(std::vector<uint8_t> bits) {
    rows.emplace_back(next_id++, std::move(bits));
  }
  void Remove(int id) {
    for (size_t i = 0; i < rows.size(); ++i) {
      if (rows[i].first == id) {
        rows.erase(rows.begin() + static_cast<std::ptrdiff_t>(i));
        return;
      }
    }
    FAIL() << "shadow has no id " << id;
  }
  std::vector<int> ids() const {
    std::vector<int> out;
    for (const auto& [id, bits] : rows) out.push_back(id);
    return out;
  }
  PersistedIndex Equivalent(const GraphDatabase& features) const {
    PersistedIndex index;
    index.features = features;
    for (const auto& [id, bits] : rows) index.db_bits.push_back(bits);
    return index;
  }
};

TEST_F(QueryEngineTest, MutationSequenceMatchesFreshEngineAcrossThreads) {
  FeatureMapper mapper(index_->features);
  for (int threads : {1, 8}) {
    for (bool prefilter : {false, true}) {
      ServeOptions opts;
      opts.threads = threads;
      opts.containment_prefilter = prefilter;
      auto engine = QueryEngine::FromIndex(*index_, opts);
      ASSERT_TRUE(engine.ok()) << engine.status().ToString();
      // This test body is the engine's single writer.
      ScopedRole writer(&engine->writer_role());

      ShadowDb shadow;
      for (const auto& bits : index_->db_bits) shadow.Insert(bits);

      // Interleaved mutation script: removes, inserts, a mid-sequence
      // compaction, then more churn on both old and new ids.
      for (int id : {1, 5, 19, 38}) {
        ASSERT_TRUE(engine->Remove(id).ok());
        shadow.Remove(id);
      }
      for (int i = 0; i < 10; ++i) {
        const Graph& g = (*queries_)[static_cast<size_t>(i)];
        auto inserted = engine->Insert(g);
        ASSERT_TRUE(inserted.ok());
        EXPECT_EQ(*inserted, shadow.next_id);
        shadow.Insert(mapper.Map(g));
      }
      engine->Compact();
      EXPECT_EQ(engine->delta_rows(), 0);
      EXPECT_EQ(engine->tombstoned_rows(), 0);
      for (int id : {0, 2, 40, 44}) {  // ids 40/44 came from the delta
        ASSERT_TRUE(engine->Remove(id).ok());
        shadow.Remove(id);
      }
      for (int i = 10; i < 16; ++i) {
        const Graph& g = (*queries_)[static_cast<size_t>(i)];
        ASSERT_TRUE(engine->Insert(g).ok());
        shadow.Insert(mapper.Map(g));
      }

      // Mutation-surface sanity: ids are stable and misuse is graceful.
      EXPECT_EQ(engine->alive_ids(), shadow.ids());
      EXPECT_EQ(engine->num_graphs(), static_cast<int>(shadow.rows.size()));
      EXPECT_EQ(engine->Remove(5).code(), StatusCode::kNotFound);  // twice
      EXPECT_EQ(engine->Remove(9999).code(), StatusCode::kNotFound);
      EXPECT_EQ(engine->InsertMapped(std::vector<uint8_t>(3, 0))
                    .status()
                    .code(),
                StatusCode::kInvalidArgument);

      // The invariant: bit-identical QueryBatch vs a fresh engine over the
      // equivalent database, after mapping the fresh engine's positional
      // ids through the live id list.
      auto fresh =
          QueryEngine::FromIndex(shadow.Equivalent(index_->features), opts);
      ASSERT_TRUE(fresh.ok());
      const std::vector<int> live_ids = shadow.ids();
      for (int k : {0, 3, 1000}) {
        std::vector<Ranking> expected = fresh->QueryBatch(*queries_, {.k = k});
        for (Ranking& ranking : expected) {
          for (RankedResult& r : ranking) {
            r.id = live_ids[static_cast<size_t>(r.id)];
          }
        }
        EXPECT_EQ(engine->QueryBatch(*queries_, {.k = k}), expected)
            << "threads=" << threads << " prefilter=" << prefilter
            << " k=" << k;
      }

      // And the same invariant again after a final compaction.
      engine->Compact();
      std::vector<Ranking> expected = fresh->QueryBatch(*queries_, {.k = 4});
      for (Ranking& ranking : expected) {
        for (RankedResult& r : ranking) {
          r.id = live_ids[static_cast<size_t>(r.id)];
        }
      }
      EXPECT_EQ(engine->QueryBatch(*queries_, {.k = 4}), expected);
      EXPECT_EQ(engine->alive_ids(), live_ids);
    }
  }
}

TEST_F(QueryEngineTest, NegativeKAnswersEmptyInsteadOfAborting) {
  auto engine = QueryEngine::FromIndex(*index_);
  ASSERT_TRUE(engine.ok());
  ServeQueryStats stats;
  EXPECT_TRUE(engine->Query((*queries_)[0], {.k = -3}, &stats).empty());
  EXPECT_EQ(stats.scanned, engine->num_graphs());
  const auto batch = engine->QueryBatch(*queries_, {.k = -1});
  ASSERT_EQ(batch.size(), queries_->size());
  for (const Ranking& r : batch) EXPECT_TRUE(r.empty());
}

/// Single-vertex-feature index (see NarrowedScanEqualsRestrictedFullRanking)
/// with one feature nobody contains, so a query can force an empty stage-2
/// intersection.
PersistedIndex LabelSetIndex() {
  const int kLabels = 5;  // feature 4 has empty support
  PersistedIndex index;
  for (LabelId r = 0; r < kLabels; ++r) {
    Graph f;
    f.AddVertex(r);
    index.features.push_back(f);
  }
  const std::vector<std::vector<LabelId>> label_sets = {
      {0, 1}, {0, 1, 2}, {0, 1, 2, 3}, {2, 3}, {0, 2}, {1, 3}, {0, 1, 3},
  };
  for (const auto& labels : label_sets) {
    std::vector<uint8_t> bits(kLabels, 0);
    for (LabelId l : labels) bits[static_cast<size_t>(l)] = 1;
    index.db_bits.push_back(bits);
  }
  return index;
}

Graph LabelGraph(std::vector<LabelId> labels) {
  Graph g;
  for (LabelId l : labels) g.AddVertex(l);
  return g;
}

TEST(QueryEnginePrefilterTest, EmptyIntersectionFallsBackEvenAtKZero) {
  ServeOptions opts;
  opts.containment_prefilter = true;
  auto engine = QueryEngine::FromIndex(LabelSetIndex(), opts);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();

  // Labels {0, 4}: sup(0) ∩ sup(4) = ∅. A zero-row scan is not a narrowed
  // scan — the documented fallback must fire, also at k == 0.
  for (int k : {0, 3}) {
    ServeQueryStats stats;
    const Ranking got = engine->Query(LabelGraph({0, 4}), {.k = k}, &stats);
    EXPECT_FALSE(stats.prefiltered) << "k=" << k;
    EXPECT_EQ(stats.scanned, engine->num_graphs()) << "k=" << k;
    if (k == 0) {
      EXPECT_TRUE(got.empty());
    } else {
      EXPECT_EQ(got.size(), 3u);
    }
  }

  // A non-empty candidate set still counts as narrowed at k == 0.
  ServeQueryStats stats;
  EXPECT_TRUE(engine->Query(LabelGraph({0, 3}), {.k = 0}, &stats).empty());
  EXPECT_TRUE(stats.prefiltered);
  EXPECT_EQ(stats.scanned, 2);  // graphs {0,1,2,3} and {0,1,3}
}

TEST(QueryEngineEmptyTest, EmptyDatabaseValidatesAndServes) {
  // n = 0, p > 0: the engine must keep validating query width (the old
  // packed matrix lost its width with no rows) and serve empty rankings.
  PersistedIndex index = LabelSetIndex();
  index.db_bits.clear();
  auto engine = QueryEngine::FromIndex(index);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  EXPECT_EQ(engine->num_graphs(), 0);
  EXPECT_EQ(engine->num_features(), 5);
  ServeQueryStats stats;
  EXPECT_TRUE(engine->Query(LabelGraph({0, 1}), {.k = 4}, &stats).empty());
  EXPECT_EQ(stats.scanned, 0);
  const auto batch =
      engine->QueryBatch({LabelGraph({0}), LabelGraph({2})}, {.k = 2});
  ASSERT_EQ(batch.size(), 2u);
  for (const Ranking& r : batch) EXPECT_TRUE(r.empty());

  // The empty engine is a valid insert target.
  ScopedRole writer(&engine->writer_role());
  auto id = engine->Insert(LabelGraph({0, 1}));
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(*id, 0);
  const Ranking got = engine->Query(LabelGraph({0, 1}), {.k = 4});
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].id, 0);
  EXPECT_DOUBLE_EQ(got[0].score, 0.0);
}

TEST(QueryEngineEmptyTest, ZeroFeatureDimension) {
  // p = 0: every fingerprint is empty and every distance is 0; ranking
  // degenerates to ascending ids. n = 0 and n > 0 both serve.
  PersistedIndex empty;  // p = 0, n = 0
  auto engine = QueryEngine::FromIndex(empty);
  ASSERT_TRUE(engine.ok());
  EXPECT_TRUE(engine->Query(LabelGraph({0}), {.k = 3}).empty());

  PersistedIndex degenerate;  // p = 0, n = 2
  degenerate.db_bits = {{}, {}};
  auto engine2 = QueryEngine::FromIndex(degenerate);
  ASSERT_TRUE(engine2.ok());
  const Ranking got = engine2->Query(LabelGraph({0}), {.k = 5});
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0].id, 0);
  EXPECT_EQ(got[1].id, 1);
  EXPECT_DOUBLE_EQ(got[0].score, 0.0);
}

TEST(QueryEngineMutationTest, EpochBumpsOnMutationsOnly) {
  auto engine = QueryEngine::FromIndex(LabelSetIndex());
  ASSERT_TRUE(engine.ok());
  ScopedRole writer(&engine->writer_role());
  EXPECT_EQ(engine->epoch(), 0u);

  // Queries never bump.
  engine->Query(LabelGraph({0, 1}), {.k = 3});
  EXPECT_EQ(engine->epoch(), 0u);

  auto id = engine->Insert(LabelGraph({0, 3}));
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(engine->epoch(), 1u);
  ASSERT_TRUE(engine->Remove(*id).ok());
  EXPECT_EQ(engine->epoch(), 2u);

  // Failed mutations leave the engine unchanged — and the epoch with it.
  EXPECT_FALSE(engine->Remove(*id).ok());
  EXPECT_FALSE(engine->InsertMapped({1, 0}).ok());  // wrong width
  EXPECT_EQ(engine->epoch(), 2u);

  // A working Compact bumps (physical rows moved); a no-op one does not.
  engine->Compact();
  EXPECT_EQ(engine->epoch(), 3u);
  engine->Compact();
  EXPECT_EQ(engine->epoch(), 3u);
}

TEST(QueryEngineMutationTest, FreezeCapturesStateImmuneToLaterMutations) {
  auto engine = QueryEngine::FromIndex(LabelSetIndex());
  ASSERT_TRUE(engine.ok());
  ScopedRole writer(&engine->writer_role());
  ASSERT_TRUE(engine->Insert(LabelGraph({1, 2})).ok());  // delta row
  ASSERT_TRUE(engine->Remove(0).ok());
  const std::vector<int> ids_at_freeze = engine->alive_ids();
  const FrozenEngineState frozen = engine->Freeze();

  // Mutate hard after the freeze: append, remove, and compact (which
  // replaces the sealed base the capture shares).
  ASSERT_TRUE(engine->Insert(LabelGraph({0})).ok());
  ASSERT_TRUE(engine->Remove(2).ok());
  engine->Compact();

  std::vector<int> frozen_ids;
  for (const auto& [id, words] : frozen.LiveRowWords()) {
    frozen_ids.push_back(id);
    EXPECT_NE(words, nullptr);
  }
  EXPECT_EQ(frozen_ids, ids_at_freeze);
}

TEST(QueryEngineMutationTest, TombstonesNeverSurfaceWhenKExceedsLiveCount) {
  auto engine = QueryEngine::FromIndex(LabelSetIndex());
  ASSERT_TRUE(engine.ok());
  ScopedRole writer(&engine->writer_role());
  ASSERT_TRUE(engine->Remove(0).ok());
  ASSERT_TRUE(engine->Remove(4).ok());
  // k far beyond the live count: removed rows must not pad the ranking.
  const Ranking got = engine->Query(LabelGraph({0, 1}), {.k = 100});
  EXPECT_EQ(got.size(), 5u);
  for (const RankedResult& r : got) {
    EXPECT_NE(r.id, 0);
    EXPECT_NE(r.id, 4);
  }
}

}  // namespace
}  // namespace gdim
