#include <numeric>
#include <set>

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/dspm.h"
#include "core/dspmap.h"
#include "core/objective.h"

namespace gdim {
namespace {

BinaryFeatureDb RandomBits(int n, int m, double density, Rng* rng) {
  std::vector<std::vector<uint8_t>> rows(
      static_cast<size_t>(n), std::vector<uint8_t>(static_cast<size_t>(m)));
  for (auto& row : rows) {
    for (auto& bit : row) bit = rng->Bernoulli(density) ? 1 : 0;
  }
  return BinaryFeatureDb::FromBitMatrix(rows);
}

DissimilarityFn StructuredDeltaFn(const BinaryFeatureDb& db,
                                  const std::vector<double>& true_c) {
  return [&db, true_c](int i, int j) {
    return WeightedDistance(db, true_c, i, j);
  };
}

TEST(PartitionTest, CoversAllGraphsExactlyOnce) {
  Rng rng(201);
  BinaryFeatureDb db = RandomBits(57, 20, 0.3, &rng);
  DspmapOptions opts;
  opts.partition_size = 10;
  auto parts = PartitionDatabase(db, opts);
  std::set<int> seen;
  for (const auto& part : parts) {
    EXPECT_LE(static_cast<int>(part.size()), opts.partition_size);
    EXPECT_FALSE(part.empty());
    for (int id : part) {
      EXPECT_TRUE(seen.insert(id).second) << "duplicate id " << id;
    }
  }
  EXPECT_EQ(static_cast<int>(seen.size()), 57);
}

TEST(PartitionTest, SmallDatabaseSinglePartition) {
  Rng rng(202);
  BinaryFeatureDb db = RandomBits(8, 10, 0.3, &rng);
  DspmapOptions opts;
  opts.partition_size = 20;
  auto parts = PartitionDatabase(db, opts);
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0].size(), 8u);
}

TEST(PartitionTest, BalancedBlockCount) {
  Rng rng(203);
  BinaryFeatureDb db = RandomBits(100, 20, 0.3, &rng);
  DspmapOptions opts;
  opts.partition_size = 20;
  auto parts = PartitionDatabase(db, opts);
  // ceil(100/20) = 5 blocks expected from the balancing rule.
  EXPECT_EQ(parts.size(), 5u);
}

TEST(PartitionTest, DeterministicInSeed) {
  Rng rng(204);
  BinaryFeatureDb db = RandomBits(40, 15, 0.3, &rng);
  DspmapOptions opts;
  opts.partition_size = 10;
  auto a = PartitionDatabase(db, opts);
  auto b = PartitionDatabase(db, opts);
  EXPECT_EQ(a, b);
}

TEST(DspmapTest, ProducesRequestedDimensions) {
  Rng rng(205);
  BinaryFeatureDb db = RandomBits(40, 25, 0.35, &rng);
  std::vector<double> true_c(25, 0.0);
  true_c[5] = 1.0;
  DspmapOptions opts;
  opts.p = 7;
  opts.partition_size = 10;
  DspmapResult r = RunDspmap(db, StructuredDeltaFn(db, true_c), opts);
  EXPECT_EQ(r.selected.size(), 7u);
  std::set<int> uniq(r.selected.begin(), r.selected.end());
  EXPECT_EQ(uniq.size(), 7u);
  EXPECT_GT(r.dspm_calls, 1);
}

TEST(DspmapTest, TouchesFarFewerPairsThanFullMatrix) {
  Rng rng(206);
  const int n = 80;
  BinaryFeatureDb db = RandomBits(n, 20, 0.3, &rng);
  std::vector<double> true_c(20, 0.0);
  true_c[2] = 1.0;
  DspmapOptions opts;
  opts.p = 5;
  opts.partition_size = 10;
  DspmapResult r = RunDspmap(db, StructuredDeltaFn(db, true_c), opts);
  long long full_pairs = static_cast<long long>(n) * (n - 1) / 2;
  EXPECT_LT(r.delta_evaluations, full_pairs / 2)
      << "DSPMap should evaluate O(n·b) pairs, not O(n²)";
}

TEST(DspmapTest, RecoversPlantedFeatureApproximately) {
  Rng rng(207);
  BinaryFeatureDb db = RandomBits(60, 20, 0.4, &rng);
  std::vector<double> true_c(20, 0.0);
  true_c[4] = 0.8;
  true_c[13] = 0.6;
  DspmapOptions opts;
  opts.p = 4;
  opts.partition_size = 15;
  opts.dspm.max_iters = 40;
  DspmapResult r = RunDspmap(db, StructuredDeltaFn(db, true_c), opts);
  std::set<int> sel(r.selected.begin(), r.selected.end());
  EXPECT_TRUE(sel.count(4) || sel.count(13))
      << "DSPMap missed both planted features";
}

TEST(DspmapTest, AgreesWithDspmOnSinglePartition) {
  // With b >= n there is exactly one partition and DSPMap degenerates to
  // DSPM (same weights up to normalization of the single call).
  Rng rng(208);
  BinaryFeatureDb db = RandomBits(20, 15, 0.35, &rng);
  std::vector<double> true_c(15, 0.0);
  true_c[3] = 1.0;
  DissimilarityFn fn = StructuredDeltaFn(db, true_c);
  DspmapOptions opts;
  opts.p = 5;
  opts.partition_size = 50;
  DspmapResult approx = RunDspmap(db, fn, opts);
  EXPECT_EQ(approx.dspm_calls, 1);
  std::vector<double> dense(400, 0.0);
  for (int i = 0; i < 20; ++i) {
    for (int j = 0; j < 20; ++j) {
      dense[static_cast<size_t>(i) * 20 + static_cast<size_t>(j)] =
          i == j ? 0.0 : fn(i, j);
    }
  }
  DspmOptions dopts = opts.dspm;
  dopts.p = 5;
  DspmResult exact = RunDspm(
      db, DissimilarityMatrix::FromDense(20, std::move(dense)), dopts);
  EXPECT_EQ(approx.selected, exact.selected);
}

TEST(DspmapTest, EmptyDatabase) {
  BinaryFeatureDb db = BinaryFeatureDb::FromBitMatrix({});
  DspmapOptions opts;
  DspmapResult r = RunDspmap(db, [](int, int) { return 0.0; }, opts);
  EXPECT_TRUE(r.selected.empty());
  EXPECT_EQ(r.dspm_calls, 0);
}

}  // namespace
}  // namespace gdim
