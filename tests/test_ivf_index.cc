// Unit tests of the IVF candidate-pruning index (src/index/ivf_index.h):
// deterministic builds, posting coverage, probe semantics (clamping,
// tombstone skipping, NPROBE=all == everything), and the incremental
// maintenance hooks (AddRow on fresh and empty indexes, Renumber through a
// compaction map). The serving-level guarantees — bit-identity to full
// scans, recall, generation swaps — live in test_approx_query.cc.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <set>
#include <vector>

#include "common/random.h"
#include "core/packed_bits.h"
#include "index/ivf_index.h"
#include "serve/query_options.h"

namespace gdim {
namespace {

/// Seeded random 0/1 rows, `p` bits wide.
std::vector<std::vector<uint8_t>> RandomRows(int n, int p, uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<uint8_t>> rows(static_cast<size_t>(n));
  for (auto& row : rows) {
    row.resize(static_cast<size_t>(p));
    for (auto& bit : row) bit = rng.UniformU64(2) != 0 ? 1 : 0;
  }
  return rows;
}

/// All posted rows of every bucket, merged.
std::vector<int> AllPosted(const IvfIndex& index) {
  std::vector<int> posted;
  for (int b = 0; b < index.num_buckets(); ++b) {
    posted.insert(posted.end(), index.posting(b).begin(),
                  index.posting(b).end());
  }
  std::sort(posted.begin(), posted.end());
  return posted;
}

TEST(IvfIndexTest, BuildPartitionsEveryRowExactlyOnce) {
  const auto bits = RandomRows(100, 48, /*seed=*/1);
  const PackedBitMatrix rows = PackedBitMatrix::FromRows(bits, 48);
  const IvfIndex index = IvfIndex::Build(rows, /*bucket_override=*/0);
  EXPECT_EQ(index.num_buckets(), 10);  // ceil(sqrt(100))
  std::vector<int> expected(100);
  for (int i = 0; i < 100; ++i) expected[static_cast<size_t>(i)] = i;
  EXPECT_EQ(AllPosted(index), expected);
  for (int b = 0; b < index.num_buckets(); ++b) {
    EXPECT_TRUE(std::is_sorted(index.posting(b).begin(),
                               index.posting(b).end()));
  }
}

TEST(IvfIndexTest, BuildIsDeterministic) {
  const auto bits = RandomRows(80, 33, /*seed=*/2);
  const PackedBitMatrix rows = PackedBitMatrix::FromRows(bits, 33);
  const IvfIndex a = IvfIndex::Build(rows, 0);
  const IvfIndex b = IvfIndex::Build(rows, 0);
  ASSERT_EQ(a.num_buckets(), b.num_buckets());
  for (int bucket = 0; bucket < a.num_buckets(); ++bucket) {
    EXPECT_EQ(a.posting(bucket), b.posting(bucket));
  }
}

TEST(IvfIndexTest, BucketOverrideClampsToRowCount) {
  const auto bits = RandomRows(5, 16, /*seed=*/3);
  const PackedBitMatrix rows = PackedBitMatrix::FromRows(bits, 16);
  EXPECT_EQ(IvfIndex::Build(rows, 3).num_buckets(), 3);
  EXPECT_EQ(IvfIndex::Build(rows, 100).num_buckets(), 5);
  EXPECT_EQ(IvfIndex::Build(PackedBitMatrix::WithWidth(16), 0).num_buckets(),
            0);
}

TEST(IvfIndexTest, ProbeAllBucketsReturnsEveryLiveRow) {
  const auto bits = RandomRows(60, 40, /*seed=*/4);
  const PackedBitMatrix rows = PackedBitMatrix::FromRows(bits, 40);
  const IvfIndex index = IvfIndex::Build(rows, 0);
  std::vector<uint8_t> tombstones(60, 0);
  tombstones[7] = 1;
  tombstones[41] = 1;
  const std::vector<uint64_t> query = rows.PackQuery(bits[0]);
  const std::vector<int> all = index.Probe(query, kNprobeAll, tombstones);
  std::vector<int> expected;
  for (int i = 0; i < 60; ++i) {
    if (tombstones[static_cast<size_t>(i)] == 0) expected.push_back(i);
  }
  EXPECT_EQ(all, expected);
}

TEST(IvfIndexTest, ProbeClampsAndNarrowsMonotonically) {
  const auto bits = RandomRows(120, 64, /*seed=*/5);
  const PackedBitMatrix rows = PackedBitMatrix::FromRows(bits, 64);
  const IvfIndex index = IvfIndex::Build(rows, 8);
  const std::vector<uint8_t> tombstones(120, 0);
  const std::vector<uint64_t> query = rows.PackQuery(bits[3]);
  // A wider probe's pool contains every narrower probe's pool, and probing
  // past num_buckets is the same as probing all of them.
  std::vector<int> previous;
  for (int nprobe = 1; nprobe <= 8; ++nprobe) {
    const std::vector<int> pool = index.Probe(query, nprobe, tombstones);
    EXPECT_TRUE(std::includes(pool.begin(), pool.end(), previous.begin(),
                              previous.end()));
    previous = pool;
  }
  EXPECT_EQ(index.Probe(query, 1000, tombstones), previous);
  EXPECT_EQ(previous.size(), 120u);
}

TEST(IvfIndexTest, AddRowKeepsPostingsSortedAndCovered) {
  const auto bits = RandomRows(50, 32, /*seed=*/6);
  const PackedBitMatrix rows = PackedBitMatrix::FromRows(bits, 32);
  IvfIndex index = IvfIndex::Build(rows, 0);
  PackedBitMatrix grown = rows;
  const auto extra = RandomRows(20, 32, /*seed=*/7);
  for (const auto& row : extra) {
    const int id = grown.AppendRow(row);
    index.AddRow(grown.row(id), grown.words_per_row(), id);
  }
  std::vector<int> expected(70);
  for (int i = 0; i < 70; ++i) expected[static_cast<size_t>(i)] = i;
  EXPECT_EQ(AllPosted(index), expected);
  for (int b = 0; b < index.num_buckets(); ++b) {
    EXPECT_TRUE(std::is_sorted(index.posting(b).begin(),
                               index.posting(b).end()));
  }
}

TEST(IvfIndexTest, AddRowSeedsAnIndexBuiltOverZeroRows) {
  // An engine constructed over an empty database still Builds its index
  // (zero buckets, width pinned); the first insert seeds one bucket.
  IvfIndex index = IvfIndex::Build(PackedBitMatrix::WithWidth(24), 0);
  EXPECT_EQ(index.num_buckets(), 0);
  PackedBitMatrix rows = PackedBitMatrix::WithWidth(24);
  const auto bits = RandomRows(3, 24, /*seed=*/8);
  for (const auto& row : bits) {
    const int id = rows.AppendRow(row);
    index.AddRow(rows.row(id), rows.words_per_row(), id);
  }
  EXPECT_EQ(index.num_buckets(), 1);
  EXPECT_EQ(AllPosted(index), (std::vector<int>{0, 1, 2}));
  const std::vector<uint8_t> tombstones(3, 0);
  EXPECT_EQ(index.Probe(rows.PackQuery(bits[1]), 1, tombstones),
            (std::vector<int>{0, 1, 2}));
}

TEST(IvfIndexTest, RenumberDropsTombstonesAndRemaps) {
  const auto bits = RandomRows(40, 32, /*seed=*/9);
  const PackedBitMatrix rows = PackedBitMatrix::FromRows(bits, 32);
  IvfIndex index = IvfIndex::Build(rows, 0);
  // Compact-style monotone map: drop every row divisible by 3.
  std::vector<int> old_to_new(40, -1);
  int next = 0;
  for (int i = 0; i < 40; ++i) {
    if (i % 3 != 0) old_to_new[static_cast<size_t>(i)] = next++;
  }
  index.Renumber(old_to_new);
  std::vector<int> expected(static_cast<size_t>(next));
  for (int i = 0; i < next; ++i) expected[static_cast<size_t>(i)] = i;
  EXPECT_EQ(AllPosted(index), expected);
}

TEST(IvfIndexTest, PostingsRespectBucketAssignmentUnderProbeOrder) {
  // Probing exactly one bucket returns a subset of rows that the same
  // query's wider probes keep — the single nearest bucket is stable.
  const auto bits = RandomRows(90, 56, /*seed=*/10);
  const PackedBitMatrix rows = PackedBitMatrix::FromRows(bits, 56);
  const IvfIndex index = IvfIndex::Build(rows, 0);
  const std::vector<uint8_t> tombstones(90, 0);
  std::set<int> probed_rows;
  for (int q = 0; q < 10; ++q) {
    const std::vector<uint64_t> query = rows.PackQuery(bits[q]);
    const std::vector<int> one = index.Probe(query, 1, tombstones);
    EXPECT_FALSE(one.empty());
    probed_rows.insert(one.begin(), one.end());
  }
  EXPECT_LE(probed_rows.size(), 90u);
}

}  // namespace
}  // namespace gdim
