#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "common/random.h"
#include "mcs/max_clique.h"

namespace gdim {
namespace {

// Brute-force maximum clique by subset enumeration (n <= 20).
int BruteForceClique(const BitsetGraph& g) {
  const int n = g.n();
  int best = 0;
  for (uint32_t mask = 0; mask < (1u << n); ++mask) {
    int bits = __builtin_popcount(mask);
    if (bits <= best) continue;
    bool is_clique = true;
    for (int u = 0; u < n && is_clique; ++u) {
      if (!(mask & (1u << u))) continue;
      for (int v = u + 1; v < n && is_clique; ++v) {
        if (!(mask & (1u << v))) continue;
        if (!g.HasEdge(u, v)) is_clique = false;
      }
    }
    if (is_clique) best = bits;
  }
  return best;
}

bool IsClique(const BitsetGraph& g, const std::vector<int>& vs) {
  for (size_t i = 0; i < vs.size(); ++i) {
    for (size_t j = i + 1; j < vs.size(); ++j) {
      if (!g.HasEdge(vs[i], vs[j])) return false;
    }
  }
  return true;
}

TEST(BitsetGraphTest, EdgesAndDegrees) {
  BitsetGraph g(70);  // spans two 64-bit words
  g.AddEdge(0, 69);
  g.AddEdge(0, 1);
  EXPECT_TRUE(g.HasEdge(0, 69));
  EXPECT_TRUE(g.HasEdge(69, 0));
  EXPECT_FALSE(g.HasEdge(1, 69));
  EXPECT_EQ(g.Degree(0), 2);
  EXPECT_EQ(g.Degree(69), 1);
}

TEST(MaxCliqueTest, EmptyAndSingleton) {
  BitsetGraph empty(0);
  EXPECT_EQ(MaxClique(empty).size, 0);
  BitsetGraph one(1);
  MaxCliqueResult r = MaxClique(one);
  EXPECT_EQ(r.size, 1);
  EXPECT_EQ(r.vertices, (std::vector<int>{0}));
}

TEST(MaxCliqueTest, TriangleWithTail) {
  BitsetGraph g(4);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(0, 2);
  g.AddEdge(2, 3);
  MaxCliqueResult r = MaxClique(g);
  EXPECT_EQ(r.size, 3);
  EXPECT_TRUE(IsClique(g, r.vertices));
  std::set<int> vs(r.vertices.begin(), r.vertices.end());
  EXPECT_EQ(vs, (std::set<int>{0, 1, 2}));
}

TEST(MaxCliqueTest, CompleteGraph) {
  BitsetGraph g(8);
  for (int u = 0; u < 8; ++u) {
    for (int v = u + 1; v < 8; ++v) g.AddEdge(u, v);
  }
  EXPECT_EQ(MaxClique(g).size, 8);
}

TEST(MaxCliqueTest, StopAtShortCircuits) {
  BitsetGraph g(8);
  for (int u = 0; u < 8; ++u) {
    for (int v = u + 1; v < 8; ++v) g.AddEdge(u, v);
  }
  MaxCliqueResult r = MaxClique(g, /*stop_at=*/3);
  EXPECT_GE(r.size, 3);
}

TEST(MaxCliqueTest, NodeBudgetFlagsNonOptimal) {
  Rng rng(5);
  BitsetGraph g(30);
  for (int u = 0; u < 30; ++u) {
    for (int v = u + 1; v < 30; ++v) {
      if (rng.Bernoulli(0.6)) g.AddEdge(u, v);
    }
  }
  MaxCliqueResult r = MaxClique(g, 0, /*max_nodes=*/2);
  EXPECT_FALSE(r.optimal);
}

class MaxCliqueRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(MaxCliqueRandomTest, MatchesBruteForce) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 37);
  for (int round = 0; round < 10; ++round) {
    int n = rng.UniformInt(5, 14);
    double density = 0.2 + 0.6 * rng.UniformDouble();
    BitsetGraph g(n);
    for (int u = 0; u < n; ++u) {
      for (int v = u + 1; v < n; ++v) {
        if (rng.Bernoulli(density)) g.AddEdge(u, v);
      }
    }
    MaxCliqueResult r = MaxClique(g);
    EXPECT_TRUE(r.optimal);
    EXPECT_EQ(r.size, BruteForceClique(g)) << "n=" << n << " round " << round;
    EXPECT_EQ(static_cast<int>(r.vertices.size()), r.size);
    EXPECT_TRUE(IsClique(g, r.vertices));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MaxCliqueRandomTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace gdim
