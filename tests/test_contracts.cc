// API-contract death tests: the library CHECK-fails loudly on misuse
// instead of silently corrupting state.

#include <gtest/gtest.h>

#include "core/binary_db.h"
#include "core/objective.h"
#include "graph/graph.h"
#include "mcs/dissimilarity.h"
#include "mcs/edit_distance.h"

namespace gdim {
namespace {

TEST(GraphContractTest, SelfLoopRejected) {
  Graph g;
  g.AddVertex(0);
  EXPECT_DEATH(g.AddEdge(0, 0, 1), "self-loop");
}

TEST(GraphContractTest, ParallelEdgeRejected) {
  Graph g;
  g.AddVertex(0);
  g.AddVertex(1);
  g.AddEdge(0, 1, 1);
  EXPECT_DEATH(g.AddEdge(1, 0, 2), "parallel edge");
}

TEST(GraphContractTest, BadEndpointRejected) {
  Graph g;
  g.AddVertex(0);
  EXPECT_DEATH(g.AddEdge(0, 5, 1), "bad endpoint");
}

TEST(BinaryDbContractTest, RaggedMatrixRejected) {
  std::vector<std::vector<uint8_t>> rows = {{1, 0}, {1}};
  EXPECT_DEATH(BinaryFeatureDb::FromBitMatrix(rows), "ragged");
}

TEST(BinaryDbContractTest, SubsetIdOutOfRangeRejected) {
  BinaryFeatureDb db = BinaryFeatureDb::FromBitMatrix({{1}, {0}});
  EXPECT_DEATH(db.Subset({5}), "bad subset id");
}

TEST(ObjectiveContractTest, MatrixSizeMismatchRejected) {
  BinaryFeatureDb db = BinaryFeatureDb::FromBitMatrix({{1}, {0}});
  DissimilarityMatrix delta = DissimilarityMatrix::FromDense(3, {0, 0, 0, 0, 0, 0, 0, 0, 0});
  std::vector<double> c = {1.0};
  EXPECT_DEATH(StressObjective(db, c, delta), "mismatch");
}

TEST(DissimilarityContractTest, DenseBufferSizeChecked) {
  EXPECT_DEATH(DissimilarityMatrix::FromDense(2, {0.0, 1.0}), "size mismatch");
}

TEST(GedContractTest, NegativeCostsRejected) {
  Graph g;
  g.AddVertex(0);
  EditCosts costs;
  costs.vertex_indel = -1.0;
  EXPECT_DEATH(GraphEditDistance(g, g, costs), "non-negative");
}

TEST(MappedDistanceContractTest, WidthMismatchRejected) {
  std::vector<uint8_t> a = {1, 0};
  std::vector<uint8_t> b = {1};
  EXPECT_DEATH(BinaryMappedDistance(a, b), "width mismatch");
}

}  // namespace
}  // namespace gdim
