// Differential churn fuzzer for the cached serving path: seed-driven
// random interleavings of INSERT / REMOVE / COMPACT / SNAPSHOT / QUERY are
// executed against the full stack (ShardedEngine behind a BatchExecutor
// with the epoch-versioned result cache enabled) and, in lockstep, against
// a plain model of the database. Every query is answered twice — cold path
// and guaranteed cache hit — and both must be bit-identical to a fresh
// brute-force QueryEngine built from the model at that step. Any cache
// staleness bug (missed epoch bump, key collision, invalidation hole) shows
// up as a ranking diff; the failing (shards, threads, seed) triple is in
// the scoped trace for replay.
//
// Coverage: shard counts {1, 4} x thread counts {1, 8} x 30 seeds = 120
// random interleavings (the acceptance floor is 100), with the containment
// prefilter on for half the seeds so both scan modes churn through the
// cache.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/random.h"
#include "core/index_io.h"
#include "graph/graph.h"
#include "serve/query_engine.h"
#include "server/batch_executor.h"
#include "server/sharded_engine.h"

namespace gdim {
namespace {

constexpr int kFeatures = 6;

/// Single-vertex features (labels 0..p-1): a graph's fingerprint is exactly
/// its vertex-label set, so the model can reason in raw bit vectors.
GraphDatabase LabelFeatures() {
  GraphDatabase features;
  for (LabelId r = 0; r < kFeatures; ++r) {
    Graph f;
    f.AddVertex(r);
    features.push_back(f);
  }
  return features;
}

/// The graph whose fingerprint equals `bits` under LabelFeatures().
Graph GraphForBits(const std::vector<uint8_t>& bits) {
  Graph g;
  for (size_t r = 0; r < bits.size(); ++r) {
    if (bits[r] != 0) g.AddVertex(static_cast<LabelId>(r));
  }
  return g;
}

/// The brute-force reference: live (id, fingerprint) rows in id order plus
/// the id counter — everything a fresh engine needs.
struct Model {
  std::vector<std::pair<int, std::vector<uint8_t>>> live;  // ascending id
  int next_id = 0;

  PersistedIndex ToIndex() const {
    PersistedIndex index;
    index.features = LabelFeatures();
    for (const auto& [id, bits] : live) {
      index.ids.push_back(id);
      index.db_bits.push_back(bits);
    }
    index.next_id = next_id;
    return index;
  }
};

void ExpectRankingEq(const Ranking& got, const Ranking& want,
                     const std::string& what) {
  ASSERT_EQ(got.size(), want.size()) << what;
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].id, want[i].id) << what << " rank " << i;
    EXPECT_EQ(got[i].score, want[i].score) << what << " rank " << i;
  }
}

/// One random interleaving; ~40 ops. Returns early on fatal failure.
void RunChurnInterleaving(int shards, int threads, uint64_t seed) {
  SCOPED_TRACE("replay with shards=" + std::to_string(shards) +
               " threads=" + std::to_string(threads) +
               " seed=" + std::to_string(seed));
  Rng rng(seed);

  Model model;
  const int initial_rows = rng.UniformInt(8, 32);
  for (int i = 0; i < initial_rows; ++i) {
    std::vector<uint8_t> bits(kFeatures, 0);
    for (auto& b : bits) b = rng.Bernoulli(0.5) ? 1 : 0;
    model.live.emplace_back(model.next_id++, std::move(bits));
  }

  ShardedOptions opts;
  opts.num_shards = shards;
  opts.serve.threads = threads;
  opts.serve.containment_prefilter = seed % 2 == 0;
  Result<ShardedEngine> engine =
      ShardedEngine::FromIndex(model.ToIndex(), opts);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();

  BatchExecutorOptions executor_opts;
  executor_opts.cache_bytes = 1 << 14;  // small: eviction churns too
  BatchExecutor executor(&*engine, executor_opts);

  // A small probe pool: repeats are what exercise hits across epochs.
  std::vector<std::vector<uint8_t>> probes;
  for (int i = 0; i < 6; ++i) {
    std::vector<uint8_t> bits(kFeatures, 0);
    for (auto& b : bits) b = rng.Bernoulli(0.5) ? 1 : 0;
    probes.push_back(std::move(bits));
  }
  const std::vector<int> ks = {0, 1, 3, 7, 50};

  uint64_t queries_issued = 0;
  const int ops = rng.UniformInt(30, 50);
  for (int op = 0; op < ops; ++op) {
    SCOPED_TRACE("op " + std::to_string(op));
    switch (rng.UniformInt(0, 9)) {
      case 0:
      case 1: {  // INSERT
        std::vector<uint8_t> bits(kFeatures, 0);
        for (auto& b : bits) b = rng.Bernoulli(0.5) ? 1 : 0;
        Result<int> id = executor.Insert(GraphForBits(bits));
        ASSERT_TRUE(id.ok()) << id.status().ToString();
        ASSERT_EQ(*id, model.next_id);
        model.live.emplace_back(model.next_id++, std::move(bits));
        break;
      }
      case 2:
      case 3: {  // REMOVE (live id, or an id that may be dead/unknown)
        int id;
        if (!model.live.empty() && rng.Bernoulli(0.8)) {
          id = model.live[static_cast<size_t>(rng.UniformInt(
                              0, static_cast<int>(model.live.size()) - 1))]
                   .first;
        } else {
          id = rng.UniformInt(0, model.next_id + 3);
        }
        const auto it = std::find_if(
            model.live.begin(), model.live.end(),
            [id](const auto& row) { return row.first == id; });
        Status removed = executor.Remove(id);
        if (it != model.live.end()) {
          ASSERT_TRUE(removed.ok()) << removed.ToString();
          model.live.erase(it);
        } else {
          ASSERT_EQ(removed.code(), StatusCode::kNotFound);
        }
        break;
      }
      case 4: {  // COMPACT
        ASSERT_TRUE(executor.Compact().ok());
        break;
      }
      case 5: {  // SNAPSHOT: written async, must capture exactly this state
        const std::string path =
            ::testing::TempDir() + "/gdim_diff_snap_" +
            std::to_string(shards) + "_" + std::to_string(threads) + "_" +
            std::to_string(seed) + ".idx2";
        ASSERT_TRUE(executor.Snapshot(path).ok());
        Result<QueryEngine> reloaded = QueryEngine::Open(path);
        ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();
        std::vector<int> want_ids;
        for (const auto& [id, bits] : model.live) want_ids.push_back(id);
        ASSERT_EQ(reloaded->alive_ids(), want_ids);
        break;
      }
      default: {  // QUERY, twice: cold/populating, then a guaranteed hit
        const std::vector<uint8_t>& probe =
            probes[static_cast<size_t>(rng.UniformInt(
                0, static_cast<int>(probes.size()) - 1))];
        const int k =
            ks[static_cast<size_t>(rng.UniformInt(
                0, static_cast<int>(ks.size()) - 1))];
        // The reference runs single-engine, single-threaded, uncached —
        // but with the same prefilter setting: the containment prefilter
        // is deliberately lossy for similarity, so it is part of the
        // configuration under test, not noise to normalize away.
        ServeOptions brute_opts;
        brute_opts.containment_prefilter = opts.serve.containment_prefilter;
        Result<QueryEngine> brute =
            QueryEngine::FromIndex(model.ToIndex(), brute_opts);
        ASSERT_TRUE(brute.ok()) << brute.status().ToString();
        const Ranking want = brute->Query(GraphForBits(probe), {.k = k});

        Result<Ranking> first = executor.Query(GraphForBits(probe), {.k = k});
        ASSERT_TRUE(first.ok()) << first.status().ToString();
        ExpectRankingEq(*first, want, "cold query vs brute force");
        // No mutation can interleave (this test is the only producer), so
        // the second ask is served at the same epoch — from the cache if
        // it fits — and must be byte-for-byte the same answer.
        Result<Ranking> second = executor.Query(GraphForBits(probe), {.k = k});
        ASSERT_TRUE(second.ok()) << second.status().ToString();
        ExpectRankingEq(*second, want, "repeat (cache-hit) query vs brute");
        ++queries_issued;
        break;
      }
    }
    if (::testing::Test::HasFatalFailure()) return;
  }

  // The differential pass proves nothing unless the cache actually served:
  // every repeat above was a same-epoch ask of a just-populated key.
  const BatchExecutorStats stats = executor.Stats();
  if (queries_issued > 0) {
    EXPECT_GE(stats.cache.hits, queries_issued);
  }
  EXPECT_EQ(stats.cache.max_bytes, executor_opts.cache_bytes);
}

TEST(CacheDifferentialTest, RandomChurnInterleavingsStayBitIdentical) {
  for (int shards : {1, 4}) {
    for (int threads : {1, 8}) {
      for (uint64_t seed = 0; seed < 30; ++seed) {
        RunChurnInterleaving(shards, threads, seed);
        if (::testing::Test::HasFatalFailure()) {
          FAIL() << "stopping at first failing interleaving: shards="
                 << shards << " threads=" << threads << " seed=" << seed
                 << " (re-run RunChurnInterleaving with this triple)";
        }
      }
    }
  }
}

}  // namespace
}  // namespace gdim
