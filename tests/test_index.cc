// Integration tests: the end-to-end GraphSearchIndex pipeline on generated
// chemical data — mining, selection, mapping, and top-k answering.

#include <gtest/gtest.h>

#include "core/index.h"
#include "core/measures.h"
#include "datasets/chemgen.h"

namespace gdim {
namespace {

ChemGenOptions SmallChem() {
  ChemGenOptions opts;
  opts.num_graphs = 40;
  opts.num_families = 6;
  opts.min_vertices = 8;
  opts.max_vertices = 14;
  return opts;
}

IndexOptions FastIndex(const std::string& selector) {
  IndexOptions opts;
  opts.mining.min_support = 0.15;
  opts.mining.max_edges = 4;
  opts.selector = selector;
  opts.p = 40;
  opts.dspm.max_iters = 15;
  opts.dspmap.partition_size = 15;
  return opts;
}

TEST(IndexTest, BuildAndQueryDspm) {
  GraphDatabase db = GenerateChemDatabase(SmallChem());
  auto index = GraphSearchIndex::Build(db, FastIndex("DSPM"));
  ASSERT_TRUE(index.ok()) << index.status().ToString();
  EXPECT_EQ(index->database().size(), db.size());
  EXPECT_GT(index->build_stats().mined_features, 0);
  EXPECT_LE(index->build_stats().selected_features, 40);
  EXPECT_GT(index->build_stats().dissimilarity_seconds, 0.0);

  GraphDatabase queries = GenerateChemQueries(SmallChem(), 3);
  Ranking top = index->Query(queries[0], 5);
  ASSERT_EQ(top.size(), 5u);
  for (size_t i = 1; i < top.size(); ++i) {
    EXPECT_LE(top[i - 1].score, top[i].score);
  }
}

TEST(IndexTest, QueryingDatabaseMemberRanksItFirst) {
  GraphDatabase db = GenerateChemDatabase(SmallChem());
  auto index = GraphSearchIndex::Build(db, FastIndex("DSPM"));
  ASSERT_TRUE(index.ok());
  Ranking top = index->Query(db[7], 3);
  // db[7] maps to its own bit vector: distance 0. Ties possible but id
  // tie-break guarantees a 0-distance answer at the front.
  EXPECT_DOUBLE_EQ(top[0].score, 0.0);
  Ranking exact = index->QueryExact(db[7], 3);
  EXPECT_EQ(exact[0].id, 7);
  EXPECT_DOUBLE_EQ(exact[0].score, 0.0);
}

TEST(IndexTest, ApproximateBeatsRandomBaseline) {
  GraphDatabase db = GenerateChemDatabase(SmallChem());
  auto dspm = GraphSearchIndex::Build(db, FastIndex("DSPM"));
  ASSERT_TRUE(dspm.ok());
  GraphDatabase queries = GenerateChemQueries(SmallChem(), 8);
  const int k = 10;
  double total_precision = 0.0;
  for (const Graph& q : queries) {
    Ranking exact = ExactRanking(q, db);
    Ranking approx = MappedRanking(dspm->MapQuery(q), dspm->mapped_database());
    total_precision += PrecisionAtK(exact, approx, k);
  }
  double avg = total_precision / static_cast<double>(queries.size());
  // Random top-10 of 40 would hit 0.25 in expectation; a working mapping
  // must do far better.
  EXPECT_GT(avg, 0.45) << "DSPM precision too low: " << avg;
}

TEST(IndexTest, DspmapBuildWorks) {
  GraphDatabase db = GenerateChemDatabase(SmallChem());
  auto index = GraphSearchIndex::Build(db, FastIndex("DSPMap"));
  ASSERT_TRUE(index.ok()) << index.status().ToString();
  // DSPMap never computes the full matrix inside Build.
  EXPECT_DOUBLE_EQ(index->build_stats().dissimilarity_seconds, 0.0);
  Ranking top = index->Query(db[0], 5);
  EXPECT_EQ(top.size(), 5u);
}

TEST(IndexTest, BaselineSelectorsBuild) {
  GraphDatabase db = GenerateChemDatabase(SmallChem());
  for (const char* name :
       {"Original", "Sample", "SFS", "MICI", "MCFS", "UDFS", "NDFS"}) {
    IndexOptions opts = FastIndex(name);
    opts.params.eigen_iters = 30;  // keep the spectral baselines quick
    opts.params.outer_iters = 2;
    auto index = GraphSearchIndex::Build(db, opts);
    ASSERT_TRUE(index.ok()) << name << ": " << index.status().ToString();
    EXPECT_GT(index->dimension().size(), 0u) << name;
    Ranking top = index->Query(db[3], 3);
    EXPECT_EQ(top.size(), 3u) << name;
  }
}

TEST(IndexTest, BuildIsDeterministic) {
  GraphDatabase db = GenerateChemDatabase(SmallChem());
  IndexOptions opts = FastIndex("DSPM");
  auto a = GraphSearchIndex::Build(db, opts);
  auto b = GraphSearchIndex::Build(db, opts);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(a->dimension().size(), b->dimension().size());
  for (size_t r = 0; r < a->dimension().size(); ++r) {
    EXPECT_EQ(a->dimension()[r], b->dimension()[r]);
  }
  EXPECT_EQ(a->mapped_database(), b->mapped_database());
}

TEST(IndexTest, MappedVectorsMatchMapperOnDatabaseGraphs) {
  // The db bit rows come from mining support sets; mapping the same graph
  // through VF2 must give identical bits (a mismatch would mean the miner
  // and the matcher disagree about containment).
  GraphDatabase db = GenerateChemDatabase(SmallChem());
  auto index = GraphSearchIndex::Build(db, FastIndex("DSPM"));
  ASSERT_TRUE(index.ok());
  for (size_t i = 0; i < db.size(); i += 7) {
    EXPECT_EQ(index->MapQuery(db[i]), index->mapped_database()[i])
        << "graph " << i;
  }
}

TEST(IndexTest, UnknownSelectorRejected) {
  GraphDatabase db = GenerateChemDatabase(SmallChem());
  auto index = GraphSearchIndex::Build(db, FastIndex("Bogus"));
  ASSERT_FALSE(index.ok());
  EXPECT_EQ(index.status().code(), StatusCode::kInvalidArgument);
}

TEST(IndexTest, TooHighSupportYieldsNotFound) {
  GraphDatabase db = GenerateChemDatabase(SmallChem());
  IndexOptions opts = FastIndex("DSPM");
  opts.mining.min_support_count = 1000;  // impossible support
  auto index = GraphSearchIndex::Build(db, opts);
  ASSERT_FALSE(index.ok());
  EXPECT_EQ(index.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace gdim
