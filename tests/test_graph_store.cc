// GraphStore tests: the live-graph side table behind the reindex subsystem
// mirrors the engine lifecycle (Put on insert, Remove marks, Compact
// prunes) and hands out frozen captures in ascending-id order.

#include <gtest/gtest.h>

#include <vector>

#include "common/sync.h"
#include "graph/graph.h"
#include "store/graph_store.h"

namespace gdim {
namespace {

Graph LabelGraph(std::vector<LabelId> labels) {
  Graph g;
  for (LabelId l : labels) g.AddVertex(l);
  return g;
}

TEST(GraphStoreTest, PutFindRemoveLifecycle) {
  GraphStore store;
  ScopedRole writer(&store.writer_role());
  ASSERT_TRUE(store.Put(0, LabelGraph({0})).ok());
  ASSERT_TRUE(store.Put(3, LabelGraph({3})).ok());
  ASSERT_TRUE(store.Put(7, LabelGraph({7})).ok());
  EXPECT_EQ(store.live_count(), 3);
  EXPECT_EQ(store.total_entries(), 3);
  EXPECT_EQ(store.live_ids(), (std::vector<int>{0, 3, 7}));

  ASSERT_NE(store.FindLive(3), nullptr);
  EXPECT_EQ(*store.FindLive(3), LabelGraph({3}));
  EXPECT_EQ(store.FindLive(1), nullptr);  // never stored
  EXPECT_EQ(store.FindLive(8), nullptr);  // past the end

  ASSERT_TRUE(store.Remove(3).ok());
  EXPECT_EQ(store.Remove(3).code(), StatusCode::kNotFound);  // already dead
  EXPECT_EQ(store.Remove(1).code(), StatusCode::kNotFound);
  EXPECT_EQ(store.FindLive(3), nullptr);
  EXPECT_EQ(store.live_count(), 2);
  EXPECT_EQ(store.total_entries(), 3);  // dead entry awaits Compact
  EXPECT_EQ(store.live_ids(), (std::vector<int>{0, 7}));
}

TEST(GraphStoreTest, IdsMustAscendAcrossTheLifetime) {
  GraphStore store;
  ScopedRole writer(&store.writer_role());
  ASSERT_TRUE(store.Put(5, LabelGraph({0})).ok());
  EXPECT_EQ(store.Put(5, LabelGraph({1})).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(store.Put(2, LabelGraph({1})).code(),
            StatusCode::kInvalidArgument);
  // Removing the largest id does not free it for reuse — external ids are
  // never re-issued, and the store enforces the same contract.
  ASSERT_TRUE(store.Remove(5).ok());
  store.Compact();
  EXPECT_EQ(store.Put(5, LabelGraph({1})).code(),
            StatusCode::kInvalidArgument);
  EXPECT_TRUE(store.Put(6, LabelGraph({1})).ok());
}

TEST(GraphStoreTest, CompactPrunesDeadEntriesAndReportsReclaimed) {
  GraphStore store;
  ScopedRole writer(&store.writer_role());
  for (int id = 0; id < 6; ++id) {
    ASSERT_TRUE(store.Put(id, LabelGraph({static_cast<LabelId>(id)})).ok());
  }
  ASSERT_TRUE(store.Remove(1).ok());
  ASSERT_TRUE(store.Remove(4).ok());
  EXPECT_EQ(store.Compact(), 2);
  EXPECT_EQ(store.total_entries(), 4);
  EXPECT_EQ(store.live_count(), 4);
  EXPECT_EQ(store.live_ids(), (std::vector<int>{0, 2, 3, 5}));
  EXPECT_EQ(*store.FindLive(5), LabelGraph({5}));
  EXPECT_EQ(store.Compact(), 0);  // idempotent when nothing is dead
}

TEST(GraphStoreTest, FreezeCapturesTheLiveSetInIdOrder) {
  GraphStore store;
  ScopedRole writer(&store.writer_role());
  for (int id = 0; id < 5; ++id) {
    ASSERT_TRUE(store.Put(id, LabelGraph({static_cast<LabelId>(id)})).ok());
  }
  ASSERT_TRUE(store.Remove(2).ok());
  FrozenGraphSet frozen = store.Freeze();
  EXPECT_EQ(frozen.ids, (std::vector<int>{0, 1, 3, 4}));
  ASSERT_EQ(frozen.graphs.size(), 4u);
  for (size_t i = 0; i < frozen.ids.size(); ++i) {
    EXPECT_EQ(frozen.graphs[i],
              LabelGraph({static_cast<LabelId>(frozen.ids[i])}));
  }
  // The capture is independent: churn after the freeze does not touch it.
  ASSERT_TRUE(store.Remove(0).ok());
  store.Compact();
  ASSERT_TRUE(store.Put(9, LabelGraph({9})).ok());
  EXPECT_EQ(frozen.ids, (std::vector<int>{0, 1, 3, 4}));
  EXPECT_EQ(frozen.graphs[0], LabelGraph({0}));

  GraphStore empty;
  ScopedRole empty_writer(&empty.writer_role());
  EXPECT_TRUE(empty.Freeze().empty());
}

}  // namespace
}  // namespace gdim
