// BatchExecutor tests: coalesced query batches answer exactly like the
// engine, admission is bounded with a typed backpressure status (never a
// blocked producer), and mutations are FIFO-serialized with queries.

#include <gtest/gtest.h>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "core/index_io.h"
#include "graph/graph.h"
#include "serve/query_engine.h"
#include "server/batch_executor.h"
#include "server/sharded_engine.h"

namespace gdim {
namespace {

/// Single-vertex-feature index (fingerprint == vertex-label set), so
/// queries are cheap and fully scripted.
PersistedIndex LabelIndex(int rows) {
  const int kLabels = 5;
  PersistedIndex index;
  for (LabelId r = 0; r < kLabels; ++r) {
    Graph f;
    f.AddVertex(r);
    index.features.push_back(f);
  }
  const std::vector<std::vector<uint8_t>> patterns = {
      {1, 1, 0, 0, 0}, {0, 0, 1, 1, 0}, {1, 0, 1, 0, 1},
  };
  for (int i = 0; i < rows; ++i) {
    index.db_bits.push_back(patterns[static_cast<size_t>(i) %
                                     patterns.size()]);
  }
  return index;
}

Graph LabelGraph(std::vector<LabelId> labels) {
  Graph g;
  for (LabelId l : labels) g.AddVertex(l);
  return g;
}

ShardedEngine MakeEngine(int rows, int shards) {
  ShardedOptions opts;
  opts.num_shards = shards;
  auto engine = ShardedEngine::FromIndex(LabelIndex(rows), opts);
  EXPECT_TRUE(engine.ok()) << engine.status().ToString();
  return std::move(engine).value();
}

TEST(BatchExecutorTest, ConcurrentQueriesMatchDirectEngine) {
  ShardedEngine engine = MakeEngine(30, 3);
  // Expected answers computed before the executor exists (the executor owns
  // all engine access once running).
  const std::vector<Graph> probes = {
      LabelGraph({0, 1}), LabelGraph({2}), LabelGraph({0, 2, 4}),
      LabelGraph({3, 4}),
  };
  std::vector<Ranking> expected;
  for (const Graph& p : probes) expected.push_back(engine.Query(p, {.k = 7}));

  BatchExecutorOptions opts;
  opts.queue_capacity = 64;
  opts.max_batch = 8;
  BatchExecutor executor(&engine, opts);
  constexpr int kThreads = 6;
  constexpr int kPerThread = 25;
  std::vector<std::future<bool>> done;
  done.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    done.push_back(std::async(std::launch::async, [&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const size_t which = static_cast<size_t>(t + i) % probes.size();
        Result<Ranking> got = executor.Query(probes[which], {.k = 7});
        if (!got.ok() || *got != expected[which]) return false;
      }
      return true;
    }));
  }
  for (auto& d : done) EXPECT_TRUE(d.get());

  const BatchExecutorStats stats = executor.Stats();
  EXPECT_EQ(stats.accepted, static_cast<uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(stats.completed, stats.accepted);
  EXPECT_EQ(stats.rejected, 0u);
  EXPECT_GE(stats.batches, 1u);
  // Coalescing must never run more batches than requests.
  EXPECT_LE(stats.batches, stats.accepted);
  EXPECT_EQ(stats.latency_ms.count, stats.accepted);
}

TEST(BatchExecutorTest, FullQueueRejectsWithResourceExhausted) {
  ShardedEngine engine = MakeEngine(12, 2);
  BatchExecutorOptions opts;
  opts.queue_capacity = 2;
  opts.max_batch = 4;
  BatchExecutor executor(&engine, opts);
  // Freeze the dispatcher so admitted requests stay queued, deterministic.
  executor.Pause();
  auto q1 = std::async(std::launch::async, [&] {
    return executor.Query(LabelGraph({0}), {.k = 3});
  });
  auto q2 = std::async(std::launch::async, [&] {
    return executor.Query(LabelGraph({1}), {.k = 3});
  });
  while (executor.Stats().queued < 2) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // Queue is at capacity: the next submit must bounce immediately with the
  // typed backpressure status instead of blocking.
  Result<Ranking> rejected = executor.Query(LabelGraph({2}), {.k = 3});
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kResourceExhausted);
  Status rejected_remove = executor.Remove(0);
  EXPECT_EQ(rejected_remove.code(), StatusCode::kResourceExhausted);

  executor.Resume();
  EXPECT_TRUE(q1.get().ok());
  EXPECT_TRUE(q2.get().ok());
  const BatchExecutorStats stats = executor.Stats();
  EXPECT_EQ(stats.rejected, 2u);
  EXPECT_EQ(stats.completed, 2u);
}

TEST(BatchExecutorTest, MutationsAreFifoWithQueries) {
  ShardedEngine engine = MakeEngine(6, 3);
  BatchExecutor executor(&engine);
  // Insert → the very next query (same producer, FIFO queue) sees the row.
  Result<int> id = executor.Insert(LabelGraph({0, 1, 2, 3, 4}));
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(*id, 6);
  Result<Ranking> with = executor.Query(LabelGraph({0, 1, 2, 3, 4}), {.k = 1});
  ASSERT_TRUE(with.ok());
  ASSERT_EQ(with->size(), 1u);
  EXPECT_EQ((*with)[0].id, 6);
  EXPECT_DOUBLE_EQ((*with)[0].score, 0.0);

  ASSERT_TRUE(executor.Remove(6).ok());
  EXPECT_EQ(executor.Remove(6).code(), StatusCode::kNotFound);
  Result<Ranking> without =
      executor.Query(LabelGraph({0, 1, 2, 3, 4}), {.k = 100});
  ASSERT_TRUE(without.ok());
  for (const RankedResult& r : *without) EXPECT_NE(r.id, 6);

  Result<EngineGauges> gauges = executor.Gauges();
  ASSERT_TRUE(gauges.ok());
  EXPECT_EQ(gauges->graphs, 6);
  EXPECT_EQ(gauges->shards, 3);
  EXPECT_EQ(gauges->features, 5);

  const std::string path = ::testing::TempDir() + "/gdim_executor_snap.idx2";
  ASSERT_TRUE(executor.Snapshot(path).ok());
  auto reloaded = QueryEngine::Open(path);
  ASSERT_TRUE(reloaded.ok());
  EXPECT_EQ(reloaded->num_graphs(), 6);

  const BatchExecutorStats stats = executor.Stats();
  EXPECT_EQ(stats.mutations, 4u);  // insert + 2 removes + snapshot
}

TEST(BatchExecutorTest, CacheHitsAreExactAndEveryMutationInvalidates) {
  ShardedEngine engine = MakeEngine(18, 3);
  BatchExecutorOptions opts;
  opts.cache_bytes = 1 << 20;
  BatchExecutor executor(&engine, opts);
  const Graph probe = LabelGraph({0, 1, 2, 3, 4});

  Result<Ranking> cold = executor.Query(probe, {.k = 5});
  ASSERT_TRUE(cold.ok());
  Result<Ranking> hit = executor.Query(probe, {.k = 5});
  ASSERT_TRUE(hit.ok());
  EXPECT_EQ(*hit, *cold);
  BatchExecutorStats stats = executor.Stats();
  EXPECT_EQ(stats.cache.hits, 1u);
  EXPECT_EQ(stats.cache.misses, 1u);

  // Different k is a different key, not a truncation of the cached list.
  Result<Ranking> other_k = executor.Query(probe, {.k = 2});
  ASSERT_TRUE(other_k.ok());
  EXPECT_EQ(other_k->size(), 2u);
  EXPECT_EQ(executor.Stats().cache.misses, 2u);

  // Insert an exact match: the stale top-5 must NOT be replayed — the new
  // row (distance 0) has to surface immediately.
  Result<int> id = executor.Insert(probe);
  ASSERT_TRUE(id.ok());
  Result<Ranking> after_insert = executor.Query(probe, {.k = 5});
  ASSERT_TRUE(after_insert.ok());
  ASSERT_FALSE(after_insert->empty());
  EXPECT_EQ((*after_insert)[0].id, *id);
  EXPECT_DOUBLE_EQ((*after_insert)[0].score, 0.0);

  // Remove it again: the (now stale) post-insert answer must not replay.
  ASSERT_TRUE(executor.Remove(*id).ok());
  Result<Ranking> after_remove = executor.Query(probe, {.k = 5});
  ASSERT_TRUE(after_remove.ok());
  EXPECT_EQ(*after_remove, *cold);

  // Compact does not change answers but must still invalidate (epoch bump):
  // the next ask is a fresh miss that returns the identical ranking.
  const uint64_t misses_before = executor.Stats().cache.misses;
  ASSERT_TRUE(executor.Compact().ok());
  Result<Ranking> after_compact = executor.Query(probe, {.k = 5});
  ASSERT_TRUE(after_compact.ok());
  EXPECT_EQ(*after_compact, *cold);
  EXPECT_EQ(executor.Stats().cache.misses, misses_before + 1);

  Result<EngineGauges> gauges = executor.Gauges();
  ASSERT_TRUE(gauges.ok());
  EXPECT_GE(gauges->epoch, 3u);  // insert + remove + compact at least
}

TEST(BatchExecutorTest, CacheDisabledByDefaultReportsNothing) {
  ShardedEngine engine = MakeEngine(6, 2);
  BatchExecutor executor(&engine);
  ASSERT_TRUE(executor.Query(LabelGraph({0}), {.k = 3}).ok());
  ASSERT_TRUE(executor.Query(LabelGraph({0}), {.k = 3}).ok());
  const BatchExecutorStats stats = executor.Stats();
  EXPECT_EQ(stats.cache.hits, 0u);
  EXPECT_EQ(stats.cache.misses, 0u);
  EXPECT_EQ(stats.cache.max_bytes, 0u);
}

// The non-blocking-snapshot proof, made deterministic with a FIFO: the
// background writer blocks opening the pipe (no reader yet), and while it
// is provably still in progress the dispatcher keeps answering queries and
// mutations. Draining the pipe then releases the writer, and the bytes that
// come out are a valid v2 snapshot of the state at freeze time — the
// mutations that ran DURING the snapshot are not in it.
TEST(BatchExecutorTest, SnapshotStreamsInBackgroundWithoutBlockingQueries) {
  constexpr int kRows = 12;
  ShardedEngine engine = MakeEngine(kRows, 2);
  BatchExecutorOptions opts;
  opts.cache_bytes = 1 << 20;
  BatchExecutor executor(&engine, opts);

  const std::string fifo =
      ::testing::TempDir() + "/gdim_snap_fifo_" +
      std::to_string(::getpid());
  ::unlink(fifo.c_str());
  ASSERT_EQ(::mkfifo(fifo.c_str(), 0600), 0);

  auto pending = std::async(std::launch::async,
                            [&] { return executor.Snapshot(fifo); });
  // The freeze + handoff happen quickly; the write then parks on the pipe.
  for (int i = 0; i < 5000 && executor.Stats().snapshots_in_progress == 0;
       ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(executor.Stats().snapshots_in_progress, 1u);

  // Queries and mutations keep flowing while the snapshot is in flight.
  Result<Ranking> during = executor.Query(LabelGraph({0, 2, 4}), {.k = 4});
  ASSERT_TRUE(during.ok());
  EXPECT_EQ(during->size(), 4u);
  Result<int> inserted = executor.Insert(LabelGraph({0, 1, 2, 3, 4}));
  ASSERT_TRUE(inserted.ok());
  EXPECT_EQ(executor.Stats().snapshots_in_progress, 1u)
      << "snapshot must still be writing while queries are served";

  // Release the writer: drain the pipe into a real file.
  const std::string drained = fifo + ".idx2";
  {
    const int read_fd = ::open(fifo.c_str(), O_RDONLY);
    ASSERT_GE(read_fd, 0);
    std::ofstream out(drained, std::ios::binary);
    char buffer[4096];
    ssize_t n;
    while ((n = ::read(read_fd, buffer, sizeof(buffer))) > 0) {
      out.write(buffer, n);
    }
    ::close(read_fd);
  }
  Status written = pending.get();
  EXPECT_TRUE(written.ok()) << written.ToString();
  const BatchExecutorStats stats = executor.Stats();
  EXPECT_EQ(stats.snapshots_in_progress, 0u);
  EXPECT_EQ(stats.snapshots_completed, 1u);

  // The drained bytes are the freeze-time state: the insert that happened
  // mid-write is absent, everything older is present.
  Result<QueryEngine> reloaded = QueryEngine::Open(drained);
  ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();
  EXPECT_EQ(reloaded->num_graphs(), kRows);
  for (int id : reloaded->alive_ids()) EXPECT_NE(id, *inserted);
  ::unlink(fifo.c_str());
}

TEST(BatchExecutorTest, DestructorDrainsAdmittedRequests) {
  ShardedEngine engine = MakeEngine(12, 2);
  std::vector<std::future<Result<Ranking>>> pending;
  {
    BatchExecutor executor(&engine);
    executor.Pause();
    for (int i = 0; i < 5; ++i) {
      pending.push_back(std::async(std::launch::async, [&] {
        return executor.Query(LabelGraph({0, 2}), {.k = 4});
      }));
    }
    while (executor.Stats().queued < 5) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    // Destruction drains the paused queue before stopping the dispatcher.
  }
  for (auto& p : pending) {
    Result<Ranking> got = p.get();
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(got->size(), 4u);
  }
}

}  // namespace
}  // namespace gdim
