// BatchExecutor tests: coalesced query batches answer exactly like the
// engine, admission is bounded with a typed backpressure status (never a
// blocked producer), and mutations are FIFO-serialized with queries.

#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <thread>
#include <vector>

#include "core/index_io.h"
#include "graph/graph.h"
#include "serve/query_engine.h"
#include "server/batch_executor.h"
#include "server/sharded_engine.h"

namespace gdim {
namespace {

/// Single-vertex-feature index (fingerprint == vertex-label set), so
/// queries are cheap and fully scripted.
PersistedIndex LabelIndex(int rows) {
  const int kLabels = 5;
  PersistedIndex index;
  for (LabelId r = 0; r < kLabels; ++r) {
    Graph f;
    f.AddVertex(r);
    index.features.push_back(f);
  }
  const std::vector<std::vector<uint8_t>> patterns = {
      {1, 1, 0, 0, 0}, {0, 0, 1, 1, 0}, {1, 0, 1, 0, 1},
  };
  for (int i = 0; i < rows; ++i) {
    index.db_bits.push_back(patterns[static_cast<size_t>(i) %
                                     patterns.size()]);
  }
  return index;
}

Graph LabelGraph(std::vector<LabelId> labels) {
  Graph g;
  for (LabelId l : labels) g.AddVertex(l);
  return g;
}

ShardedEngine MakeEngine(int rows, int shards) {
  ShardedOptions opts;
  opts.num_shards = shards;
  auto engine = ShardedEngine::FromIndex(LabelIndex(rows), opts);
  EXPECT_TRUE(engine.ok()) << engine.status().ToString();
  return std::move(engine).value();
}

TEST(BatchExecutorTest, ConcurrentQueriesMatchDirectEngine) {
  ShardedEngine engine = MakeEngine(30, 3);
  // Expected answers computed before the executor exists (the executor owns
  // all engine access once running).
  const std::vector<Graph> probes = {
      LabelGraph({0, 1}), LabelGraph({2}), LabelGraph({0, 2, 4}),
      LabelGraph({3, 4}),
  };
  std::vector<Ranking> expected;
  for (const Graph& p : probes) expected.push_back(engine.Query(p, 7));

  BatchExecutorOptions opts;
  opts.queue_capacity = 64;
  opts.max_batch = 8;
  BatchExecutor executor(&engine, opts);
  constexpr int kThreads = 6;
  constexpr int kPerThread = 25;
  std::vector<std::future<bool>> done;
  done.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    done.push_back(std::async(std::launch::async, [&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const size_t which = static_cast<size_t>(t + i) % probes.size();
        Result<Ranking> got = executor.Query(probes[which], 7);
        if (!got.ok() || *got != expected[which]) return false;
      }
      return true;
    }));
  }
  for (auto& d : done) EXPECT_TRUE(d.get());

  const BatchExecutorStats stats = executor.Stats();
  EXPECT_EQ(stats.accepted, static_cast<uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(stats.completed, stats.accepted);
  EXPECT_EQ(stats.rejected, 0u);
  EXPECT_GE(stats.batches, 1u);
  // Coalescing must never run more batches than requests.
  EXPECT_LE(stats.batches, stats.accepted);
  EXPECT_EQ(stats.latency_ms.count, stats.accepted);
}

TEST(BatchExecutorTest, FullQueueRejectsWithResourceExhausted) {
  ShardedEngine engine = MakeEngine(12, 2);
  BatchExecutorOptions opts;
  opts.queue_capacity = 2;
  opts.max_batch = 4;
  BatchExecutor executor(&engine, opts);
  // Freeze the dispatcher so admitted requests stay queued, deterministic.
  executor.Pause();
  auto q1 = std::async(std::launch::async,
                       [&] { return executor.Query(LabelGraph({0}), 3); });
  auto q2 = std::async(std::launch::async,
                       [&] { return executor.Query(LabelGraph({1}), 3); });
  while (executor.Stats().queued < 2) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // Queue is at capacity: the next submit must bounce immediately with the
  // typed backpressure status instead of blocking.
  Result<Ranking> rejected = executor.Query(LabelGraph({2}), 3);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kResourceExhausted);
  Status rejected_remove = executor.Remove(0);
  EXPECT_EQ(rejected_remove.code(), StatusCode::kResourceExhausted);

  executor.Resume();
  EXPECT_TRUE(q1.get().ok());
  EXPECT_TRUE(q2.get().ok());
  const BatchExecutorStats stats = executor.Stats();
  EXPECT_EQ(stats.rejected, 2u);
  EXPECT_EQ(stats.completed, 2u);
}

TEST(BatchExecutorTest, MutationsAreFifoWithQueries) {
  ShardedEngine engine = MakeEngine(6, 3);
  BatchExecutor executor(&engine);
  // Insert → the very next query (same producer, FIFO queue) sees the row.
  Result<int> id = executor.Insert(LabelGraph({0, 1, 2, 3, 4}));
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(*id, 6);
  Result<Ranking> with = executor.Query(LabelGraph({0, 1, 2, 3, 4}), 1);
  ASSERT_TRUE(with.ok());
  ASSERT_EQ(with->size(), 1u);
  EXPECT_EQ((*with)[0].id, 6);
  EXPECT_DOUBLE_EQ((*with)[0].score, 0.0);

  ASSERT_TRUE(executor.Remove(6).ok());
  EXPECT_EQ(executor.Remove(6).code(), StatusCode::kNotFound);
  Result<Ranking> without = executor.Query(LabelGraph({0, 1, 2, 3, 4}), 100);
  ASSERT_TRUE(without.ok());
  for (const RankedResult& r : *without) EXPECT_NE(r.id, 6);

  Result<EngineGauges> gauges = executor.Gauges();
  ASSERT_TRUE(gauges.ok());
  EXPECT_EQ(gauges->graphs, 6);
  EXPECT_EQ(gauges->shards, 3);
  EXPECT_EQ(gauges->features, 5);

  const std::string path = ::testing::TempDir() + "/gdim_executor_snap.idx2";
  ASSERT_TRUE(executor.Snapshot(path).ok());
  auto reloaded = QueryEngine::Open(path);
  ASSERT_TRUE(reloaded.ok());
  EXPECT_EQ(reloaded->num_graphs(), 6);

  const BatchExecutorStats stats = executor.Stats();
  EXPECT_EQ(stats.mutations, 4u);  // insert + 2 removes + snapshot
}

TEST(BatchExecutorTest, DestructorDrainsAdmittedRequests) {
  ShardedEngine engine = MakeEngine(12, 2);
  std::vector<std::future<Result<Ranking>>> pending;
  {
    BatchExecutor executor(&engine);
    executor.Pause();
    for (int i = 0; i < 5; ++i) {
      pending.push_back(std::async(std::launch::async, [&] {
        return executor.Query(LabelGraph({0, 2}), 4);
      }));
    }
    while (executor.Stats().queued < 5) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    // Destruction drains the paused queue before stopping the dispatcher.
  }
  for (auto& p : pending) {
    Result<Ranking> got = p.get();
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(got->size(), 4u);
  }
}

}  // namespace
}  // namespace gdim
