#include <gtest/gtest.h>

#include <vector>

#include "common/histogram.h"

namespace gdim {
namespace {

TEST(BucketHistogramTest, EmptyIsAllZero) {
  BucketHistogram h({1.0, 10.0, 100.0});
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.99), 0.0);
  ASSERT_EQ(h.bucket_counts().size(), 4u);  // 3 finite bounds + overflow
  for (uint64_t c : h.bucket_counts()) EXPECT_EQ(c, 0u);
}

TEST(BucketHistogramTest, RecordPicksFirstBucketWithBoundAtLeastValue) {
  BucketHistogram h({1.0, 10.0, 100.0});
  h.Record(0.5);    // <= 1
  h.Record(1.0);    // exactly on a bound stays in that bucket (le semantics)
  h.Record(7.0);    // <= 10
  h.Record(100.0);  // exactly on the last finite bound
  h.Record(5000.0);  // overflow
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 1.0 + 7.0 + 100.0 + 5000.0);
  const std::vector<uint64_t>& counts = h.bucket_counts();
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 1u);
  EXPECT_EQ(counts[2], 1u);
  EXPECT_EQ(counts[3], 1u);
  const std::vector<uint64_t> cumulative = h.CumulativeCounts();
  EXPECT_EQ(cumulative.back(), h.count());
  for (size_t i = 1; i < cumulative.size(); ++i) {
    EXPECT_GE(cumulative[i], cumulative[i - 1]);
  }
}

TEST(BucketHistogramTest, SingleSampleQuantiles) {
  BucketHistogram h({1.0, 10.0, 100.0});
  h.Record(7.0);
  // Every quantile of a one-sample histogram lands in the sample's bucket
  // (1, 10]; interpolation cannot do better than the bucket's range.
  for (double q : {0.0, 0.5, 0.99, 1.0}) {
    EXPECT_GE(h.Quantile(q), 1.0) << "q=" << q;
    EXPECT_LE(h.Quantile(q), 10.0) << "q=" << q;
  }
}

TEST(BucketHistogramTest, ExactBoundaryQuantiles) {
  BucketHistogram h({10.0, 20.0, 30.0});
  // 10 samples in (0,10], 10 in (10,20]: the median sits exactly on the
  // bucket boundary and the extremes pin to the bucket edges.
  for (int i = 0; i < 10; ++i) h.Record(5.0);
  for (int i = 0; i < 10; ++i) h.Record(15.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 10.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), 20.0);
  // q=0.25 is halfway through the first bucket (0,10].
  EXPECT_DOUBLE_EQ(h.Quantile(0.25), 5.0);
}

TEST(BucketHistogramTest, OverflowQuantileReportsLargestFiniteBound) {
  BucketHistogram h({1.0, 10.0});
  h.Record(99999.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.99), 10.0);
}

TEST(BucketHistogramTest, MergeAddsCountsAndSum) {
  BucketHistogram a({1.0, 10.0, 100.0});
  BucketHistogram b({1.0, 10.0, 100.0});
  a.Record(0.5);
  a.Record(50.0);
  b.Record(5.0);
  b.Record(500.0);
  a.Merge(b);
  EXPECT_EQ(a.count(), 4u);
  EXPECT_DOUBLE_EQ(a.sum(), 0.5 + 50.0 + 5.0 + 500.0);
  EXPECT_EQ(a.bucket_counts()[0], 1u);
  EXPECT_EQ(a.bucket_counts()[1], 1u);
  EXPECT_EQ(a.bucket_counts()[2], 1u);
  EXPECT_EQ(a.bucket_counts()[3], 1u);
  // b is untouched.
  EXPECT_EQ(b.count(), 2u);
}

TEST(BucketHistogramTest, MergeWithMismatchedBoundsIsDropped) {
  BucketHistogram a({1.0, 10.0});
  BucketHistogram other({2.0, 20.0});
  other.Record(1.5);
  a.Merge(other);
  EXPECT_EQ(a.count(), 0u);
  EXPECT_DOUBLE_EQ(a.sum(), 0.0);
}

TEST(BucketHistogramTest, FromPartsRoundTrips) {
  BucketHistogram h({1.0, 10.0, 100.0});
  h.Record(0.5);
  h.Record(42.0);
  h.Record(1e6);
  BucketHistogram rebuilt(h.upper_bounds(), h.bucket_counts(), h.sum());
  EXPECT_EQ(rebuilt.count(), h.count());
  EXPECT_DOUBLE_EQ(rebuilt.sum(), h.sum());
  EXPECT_EQ(rebuilt.bucket_counts(), h.bucket_counts());
  EXPECT_DOUBLE_EQ(rebuilt.Quantile(0.5), h.Quantile(0.5));
}

}  // namespace
}  // namespace gdim
