#include <gtest/gtest.h>

#include "common/flags.h"

namespace gdim {
namespace {

Flags Make(std::initializer_list<const char*> args) {
  std::vector<char*> argv;
  argv.push_back(const_cast<char*>("prog"));
  for (const char* a : args) argv.push_back(const_cast<char*>(a));
  return Flags(static_cast<int>(argv.size()), argv.data());
}

TEST(FlagsTest, ParsesKeyValue) {
  Flags f = Make({"--n=42", "--rate=0.5", "--name=DSPM"});
  EXPECT_EQ(f.GetInt("n", 0), 42);
  EXPECT_DOUBLE_EQ(f.GetDouble("rate", 0.0), 0.5);
  EXPECT_EQ(f.GetString("name", ""), "DSPM");
}

TEST(FlagsTest, DefaultsWhenAbsent) {
  Flags f = Make({});
  EXPECT_EQ(f.GetInt("n", 7), 7);
  EXPECT_DOUBLE_EQ(f.GetDouble("rate", 1.5), 1.5);
  EXPECT_EQ(f.GetString("name", "x"), "x");
  EXPECT_FALSE(f.Has("n"));
}

TEST(FlagsTest, BareFlagIsTrue) {
  Flags f = Make({"--full"});
  EXPECT_TRUE(f.GetBool("full", false));
  EXPECT_TRUE(f.Has("full"));
}

TEST(FlagsTest, FalseSpellings) {
  Flags f = Make({"--a=0", "--b=false", "--c=1"});
  EXPECT_FALSE(f.GetBool("a", true));
  EXPECT_FALSE(f.GetBool("b", true));
  EXPECT_TRUE(f.GetBool("c", false));
}

TEST(FlagsTest, PositionalsCollected) {
  Flags f = Make({"build", "--n=3", "extra"});
  ASSERT_EQ(f.positional().size(), 2u);
  EXPECT_EQ(f.positional()[0], "build");
  EXPECT_EQ(f.positional()[1], "extra");
}

TEST(FlagsTest, LastValueWins) {
  Flags f = Make({"--n=1", "--n=2"});
  EXPECT_EQ(f.GetInt("n", 0), 2);
}

}  // namespace
}  // namespace gdim
