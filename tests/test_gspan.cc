#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "graph/graph_utils.h"
#include "isomorphism/vf2.h"
#include "mining/dfs_code.h"
#include "mining/gspan.h"
#include "test_util.h"

namespace gdim {
namespace {

using testing_util::RandomConnectedGraph;

// --- DFS code unit tests ----------------------------------------------------

TEST(DfsCodeTest, CodeToGraphRebuildsPattern) {
  // Triangle with labels: (0,1),(1,2),(2,0 backward).
  DfsCode code{{0, 1, 5, 0, 6}, {1, 2, 6, 0, 7}, {2, 0, 7, 0, 5}};
  Graph g = CodeToGraph(code);
  EXPECT_EQ(g.NumVertices(), 3);
  EXPECT_EQ(g.NumEdges(), 3);
  EXPECT_EQ(g.VertexLabel(0), 5u);
  EXPECT_EQ(g.VertexLabel(2), 7u);
  EXPECT_TRUE(g.HasEdge(0, 2));
}

TEST(DfsCodeTest, RightmostPathOfPath) {
  DfsCode code{{0, 1, 0, 0, 0}, {1, 2, 0, 0, 0}, {2, 3, 0, 0, 0}};
  EXPECT_EQ(RightmostPath(code), (std::vector<int>{0, 1, 2}));
}

TEST(DfsCodeTest, RightmostPathWithBranch) {
  // 0-1, 1-2, then branch 1-3: rightmost path is 0-1-3 (positions 0 and 2).
  DfsCode code{{0, 1, 0, 0, 0}, {1, 2, 0, 0, 0}, {1, 3, 0, 0, 0}};
  EXPECT_EQ(RightmostPath(code), (std::vector<int>{0, 2}));
}

TEST(DfsCodeTest, ExtensionOrderBackwardBeforeForward) {
  DfsEdge backward{2, 0, 1, 1, 1};
  DfsEdge forward{2, 3, 1, 1, 1};
  EXPECT_TRUE(ExtensionLess(backward, forward));
  EXPECT_FALSE(ExtensionLess(forward, backward));
}

TEST(DfsCodeTest, ExtensionOrderForwardDeeperFirst) {
  DfsEdge from_deep{2, 3, 1, 1, 1};
  DfsEdge from_shallow{0, 3, 1, 1, 1};
  EXPECT_TRUE(ExtensionLess(from_deep, from_shallow));
}

TEST(DfsCodeTest, ExtensionOrderByLabels) {
  DfsEdge small{2, 3, 1, 0, 1};
  DfsEdge big{2, 3, 1, 1, 1};
  EXPECT_TRUE(ExtensionLess(small, big));
}

TEST(DfsCodeTest, MinimalSingleEdge) {
  EXPECT_TRUE(IsMinimalDfsCode(DfsCode{{0, 1, 1, 0, 2}}));
  // from_label > to_label is never minimal (reverse orientation smaller).
  EXPECT_FALSE(IsMinimalDfsCode(DfsCode{{0, 1, 2, 0, 1}}));
}

TEST(DfsCodeTest, MinimalityOfTriangleCodes) {
  // All-same-label triangle: canonical code is forward,forward,backward.
  DfsCode good{{0, 1, 1, 0, 1}, {1, 2, 1, 0, 1}, {2, 0, 1, 0, 1}};
  EXPECT_TRUE(IsMinimalDfsCode(good));
}

TEST(DfsCodeTest, NonMinimalPathCode) {
  // Path a-b-c with labels 1,2,3 starting from the wrong end: (2,.,3) first
  // is larger than starting from label 1.
  DfsCode bad{{0, 1, 2, 0, 3}, {0, 2, 2, 0, 1}};
  EXPECT_FALSE(IsMinimalDfsCode(bad));
  DfsCode good{{0, 1, 1, 0, 2}, {1, 2, 2, 0, 3}};
  EXPECT_TRUE(IsMinimalDfsCode(good));
}

// --- gSpan miner -------------------------------------------------------------

// Brute-force frequent connected subgraph mining for cross-checking: collect
// all connected edge subsets of every graph, dedupe by isomorphism, count
// support by brute-force embedding.
std::vector<std::pair<Graph, int>> BruteForceMine(const GraphDatabase& db,
                                                  int min_count,
                                                  int max_edges) {
  std::vector<Graph> candidates;
  for (const Graph& g : db) {
    // Enumerate connected edge subsets by BFS over subset space.
    std::set<std::vector<EdgeId>> seen;
    std::vector<std::vector<EdgeId>> frontier;
    for (EdgeId e = 0; e < g.NumEdges(); ++e) {
      frontier.push_back({e});
      seen.insert({e});
    }
    while (!frontier.empty()) {
      std::vector<std::vector<EdgeId>> next;
      for (const auto& subset : frontier) {
        candidates.push_back(EdgeSubgraph(g, subset));
        if (static_cast<int>(subset.size()) >= max_edges) continue;
        // Grow by any edge adjacent to the subset's vertex set.
        std::set<VertexId> verts;
        for (EdgeId e : subset) {
          verts.insert(g.GetEdge(e).u);
          verts.insert(g.GetEdge(e).v);
        }
        for (EdgeId e = 0; e < g.NumEdges(); ++e) {
          if (std::find(subset.begin(), subset.end(), e) != subset.end()) {
            continue;
          }
          if (!verts.count(g.GetEdge(e).u) && !verts.count(g.GetEdge(e).v)) {
            continue;
          }
          std::vector<EdgeId> bigger = subset;
          bigger.push_back(e);
          std::sort(bigger.begin(), bigger.end());
          if (seen.insert(bigger).second) next.push_back(bigger);
        }
      }
      frontier = std::move(next);
    }
  }
  // Dedupe by isomorphism.
  std::vector<Graph> unique;
  for (const Graph& c : candidates) {
    bool dup = false;
    for (const Graph& u : unique) {
      if (AreGraphsIsomorphic(c, u)) {
        dup = true;
        break;
      }
    }
    if (!dup) unique.push_back(c);
  }
  std::vector<std::pair<Graph, int>> out;
  for (const Graph& u : unique) {
    int support = 0;
    for (const Graph& g : db) {
      support += testing_util::BruteForceSubgraphIso(u, g) ? 1 : 0;
    }
    if (support >= min_count) out.emplace_back(u, support);
  }
  return out;
}

GraphDatabase SmallDb(uint64_t seed, int graphs, int n, int extra) {
  Rng rng(seed);
  GraphDatabase db;
  for (int i = 0; i < graphs; ++i) {
    db.push_back(RandomConnectedGraph(n, extra, 2, 1, &rng));
  }
  return db;
}

TEST(GSpanTest, RejectsBadOptions) {
  GraphDatabase db = SmallDb(1, 2, 4, 0);
  MiningOptions opts;
  opts.min_support = 0.0;
  EXPECT_FALSE(MineFrequentSubgraphs(db, opts).ok());
  opts.min_support = 0.5;
  opts.max_edges = 0;
  EXPECT_FALSE(MineFrequentSubgraphs(db, opts).ok());
}

TEST(GSpanTest, SingleGraphAllSubgraphsFrequent) {
  Graph g;
  g.AddVertex(1);
  g.AddVertex(2);
  g.AddVertex(3);
  g.AddEdge(0, 1, 0);
  g.AddEdge(1, 2, 0);
  GraphDatabase db{g};
  MiningOptions opts;
  opts.min_support_count = 1;
  opts.max_edges = 2;
  auto result = MineFrequentSubgraphs(db, opts);
  ASSERT_TRUE(result.ok());
  // Patterns: edge(1-2), edge(2-3), path(1-2-3): 3 patterns.
  EXPECT_EQ(result->size(), 3u);
}

TEST(GSpanTest, SupportSetsAreCorrect) {
  GraphDatabase db = SmallDb(7, 5, 5, 1);
  MiningOptions opts;
  opts.min_support_count = 2;
  opts.max_edges = 3;
  auto result = MineFrequentSubgraphs(db, opts);
  ASSERT_TRUE(result.ok());
  ASSERT_FALSE(result->empty());
  for (const FrequentPattern& p : *result) {
    EXPECT_TRUE(IsMinimalDfsCode(p.code));
    EXPECT_TRUE(IsConnected(p.graph));
    for (int gid = 0; gid < static_cast<int>(db.size()); ++gid) {
      bool contains = IsSubgraphIsomorphic(p.graph, db[static_cast<size_t>(gid)]);
      bool listed = std::find(p.support.begin(), p.support.end(), gid) !=
                    p.support.end();
      EXPECT_EQ(contains, listed)
          << "pattern " << p.graph.ToString() << " graph " << gid;
    }
  }
}

TEST(GSpanTest, NoDuplicatePatterns) {
  GraphDatabase db = SmallDb(9, 4, 5, 1);
  MiningOptions opts;
  opts.min_support_count = 2;
  opts.max_edges = 4;
  auto result = MineFrequentSubgraphs(db, opts);
  ASSERT_TRUE(result.ok());
  for (size_t i = 0; i < result->size(); ++i) {
    for (size_t j = i + 1; j < result->size(); ++j) {
      EXPECT_FALSE(
          AreGraphsIsomorphic((*result)[i].graph, (*result)[j].graph))
          << i << " vs " << j;
    }
  }
}

TEST(GSpanTest, Deterministic) {
  GraphDatabase db = SmallDb(11, 4, 5, 1);
  MiningOptions opts;
  opts.min_support_count = 2;
  opts.max_edges = 3;
  auto a = MineFrequentSubgraphs(db, opts);
  auto b = MineFrequentSubgraphs(db, opts);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->size(), b->size());
  for (size_t i = 0; i < a->size(); ++i) {
    EXPECT_EQ((*a)[i].code, (*b)[i].code);
    EXPECT_EQ((*a)[i].support, (*b)[i].support);
  }
}

TEST(GSpanTest, MaxPatternsCap) {
  GraphDatabase db = SmallDb(13, 4, 6, 2);
  MiningOptions opts;
  opts.min_support_count = 1;
  opts.max_edges = 4;
  opts.max_patterns = 5;
  auto result = MineFrequentSubgraphs(db, opts);
  ASSERT_TRUE(result.ok());
  EXPECT_LE(result->size(), 5u);
}

TEST(GSpanTest, AntiMonotoneSupport) {
  // Every pattern's support must be >= any of its extensions' support; check
  // globally: supports sorted by pattern size are consistent with threshold.
  GraphDatabase db = SmallDb(15, 6, 5, 1);
  MiningOptions opts;
  opts.min_support = 0.5;
  opts.max_edges = 4;
  auto result = MineFrequentSubgraphs(db, opts);
  ASSERT_TRUE(result.ok());
  for (const FrequentPattern& p : *result) {
    EXPECT_GE(static_cast<int>(p.support.size()), 3);  // ceil(0.5*6)
  }
}

class GSpanBruteForceTest : public ::testing::TestWithParam<int> {};

TEST_P(GSpanBruteForceTest, MatchesBruteForceEnumeration) {
  GraphDatabase db = SmallDb(static_cast<uint64_t>(GetParam()) * 31, 3, 4, 1);
  const int min_count = 2;
  const int max_edges = 3;
  MiningOptions opts;
  opts.min_support_count = min_count;
  opts.max_edges = max_edges;
  auto mined = MineFrequentSubgraphs(db, opts);
  ASSERT_TRUE(mined.ok());
  auto brute = BruteForceMine(db, min_count, max_edges);
  ASSERT_EQ(mined->size(), brute.size());
  // Every brute-force pattern appears exactly once in the mined set with the
  // same support size.
  for (const auto& [bg, bsupport] : brute) {
    int matches = 0;
    for (const FrequentPattern& p : *mined) {
      if (AreGraphsIsomorphic(bg, p.graph)) {
        ++matches;
        EXPECT_EQ(static_cast<int>(p.support.size()), bsupport);
      }
    }
    EXPECT_EQ(matches, 1) << "pattern " << bg.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GSpanBruteForceTest,
                         ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace gdim
