#include <set>

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/selector.h"

namespace gdim {
namespace {

BinaryFeatureDb RandomBits(int n, int m, double density, Rng* rng) {
  std::vector<std::vector<uint8_t>> rows(
      static_cast<size_t>(n), std::vector<uint8_t>(static_cast<size_t>(m)));
  for (auto& row : rows) {
    for (auto& bit : row) bit = rng->Bernoulli(density) ? 1 : 0;
  }
  return BinaryFeatureDb::FromBitMatrix(rows);
}

DissimilarityMatrix RandomDelta(int n, Rng* rng) {
  std::vector<double> vals(static_cast<size_t>(n) * static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      double v = rng->UniformDouble();
      vals[static_cast<size_t>(i) * static_cast<size_t>(n) +
           static_cast<size_t>(j)] = v;
      vals[static_cast<size_t>(j) * static_cast<size_t>(n) +
           static_cast<size_t>(i)] = v;
    }
  }
  return DissimilarityMatrix::FromDense(n, std::move(vals));
}

class SelectorContractTest : public ::testing::TestWithParam<std::string> {};

TEST_P(SelectorContractTest, ReturnsValidDistinctFeatures) {
  const std::string name = GetParam();
  auto selector = MakeSelector(name);
  ASSERT_NE(selector, nullptr) << name;
  EXPECT_EQ(selector->name(), name);

  Rng rng(911);
  BinaryFeatureDb db = RandomBits(24, 30, 0.35, &rng);
  DissimilarityMatrix delta = RandomDelta(24, &rng);
  SelectionInput input;
  input.db = &db;
  input.delta = &delta;
  input.p = 10;
  input.seed = 5;
  input.params.eigen_iters = 40;  // keep spectral baselines quick in tests
  input.params.outer_iters = 2;
  input.dspm.max_iters = 10;
  input.dspmap.partition_size = 12;

  Result<SelectionOutput> out = selector->Select(input);
  ASSERT_TRUE(out.ok()) << name << ": " << out.status().ToString();
  const int expect =
      name == "Original" ? db.num_features() : input.p;
  EXPECT_EQ(static_cast<int>(out->selected.size()), expect) << name;
  std::set<int> uniq(out->selected.begin(), out->selected.end());
  EXPECT_EQ(uniq.size(), out->selected.size()) << name << ": duplicates";
  for (int r : out->selected) {
    EXPECT_GE(r, 0);
    EXPECT_LT(r, db.num_features());
  }
}

TEST_P(SelectorContractTest, DeterministicInSeed) {
  const std::string name = GetParam();
  auto selector = MakeSelector(name);
  ASSERT_NE(selector, nullptr);
  Rng rng(913);
  BinaryFeatureDb db = RandomBits(20, 25, 0.35, &rng);
  DissimilarityMatrix delta = RandomDelta(20, &rng);
  SelectionInput input;
  input.db = &db;
  input.delta = &delta;
  input.p = 8;
  input.seed = 77;
  input.params.eigen_iters = 30;
  input.params.outer_iters = 2;
  input.dspm.max_iters = 8;
  input.dspmap.partition_size = 10;
  auto a = selector->Select(input);
  auto b = selector->Select(input);
  ASSERT_TRUE(a.ok() && b.ok()) << name;
  EXPECT_EQ(a->selected, b->selected) << name;
}

INSTANTIATE_TEST_SUITE_P(AllSelectors, SelectorContractTest,
                         ::testing::Values("DSPM", "Original", "Sample",
                                           "SFS", "MICI", "MCFS", "UDFS",
                                           "NDFS", "DSPMap"));

TEST(SelectorRegistryTest, UnknownNameIsNull) {
  EXPECT_EQ(MakeSelector("NoSuchMethod"), nullptr);
}

TEST(SelectorRegistryTest, AllNamesConstructible) {
  for (const std::string& name : AllSelectorNames()) {
    EXPECT_NE(MakeSelector(name), nullptr) << name;
  }
}

TEST(SelectorErrorsTest, MissingInputsRejected) {
  SelectionInput empty;
  for (const std::string& name : AllSelectorNames()) {
    auto selector = MakeSelector(name);
    EXPECT_FALSE(selector->Select(empty).ok()) << name;
  }
}

TEST(SelectorErrorsTest, DissimilarityRequiredWhereDeclared) {
  Rng rng(917);
  BinaryFeatureDb db = RandomBits(10, 12, 0.3, &rng);
  SelectionInput input;
  input.db = &db;
  input.p = 4;
  for (const char* name : {"DSPM", "DSPMap", "SFS"}) {
    auto selector = MakeSelector(name);
    EXPECT_TRUE(selector->NeedsDissimilarity()) << name;
    EXPECT_FALSE(selector->Select(input).ok()) << name;
  }
}

TEST(SampleSelectorTest, DifferentSeedsDiffer) {
  Rng rng(919);
  BinaryFeatureDb db = RandomBits(10, 40, 0.3, &rng);
  auto selector = MakeSelector("Sample");
  SelectionInput input;
  input.db = &db;
  input.p = 10;
  input.seed = 1;
  auto a = selector->Select(input);
  input.seed = 2;
  auto b = selector->Select(input);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_NE(a->selected, b->selected);
}

}  // namespace
}  // namespace gdim
