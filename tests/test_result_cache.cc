// ResultCache tests: epoch versioning (stale entries can never be served
// and are purged on touch), LRU eviction under the byte budget, key
// construction, and counter consistency.

#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "server/result_cache.h"

namespace gdim {
namespace {

std::vector<uint8_t> Bits(std::initializer_list<int> on, int width = 64) {
  std::vector<uint8_t> bits(static_cast<size_t>(width), 0);
  for (int r : on) bits[static_cast<size_t>(r)] = 1;
  return bits;
}

Ranking MakeRanking(std::initializer_list<int> ids) {
  Ranking ranking;
  double score = 0.0;
  for (int id : ids) {
    ranking.push_back({id, score});
    score += 0.125;
  }
  return ranking;
}

/// Bytes one cached entry costs (learned from a probe cache, so the tests
/// do not hard-code the overhead constant).
size_t OneEntryBytes(const std::string& key, const Ranking& ranking) {
  ResultCache probe(1 << 20);
  probe.Insert(key, 0, ranking);
  return probe.Stats().bytes;
}

TEST(ResultCacheTest, HitReturnsTheStoredRankingAtTheSameEpoch) {
  ResultCache cache(1 << 20);
  const std::string key = ResultCache::MakeKey(Bits({1, 5}), 10, 0);
  const Ranking stored = MakeRanking({4, 9, 2});

  EXPECT_FALSE(cache.Lookup(key, 7).has_value());
  cache.Insert(key, 7, stored);
  std::optional<Ranking> hit = cache.Lookup(key, 7);
  ASSERT_TRUE(hit.has_value());
  ASSERT_EQ(hit->size(), stored.size());
  for (size_t i = 0; i < stored.size(); ++i) {
    EXPECT_EQ((*hit)[i].id, stored[i].id);
    EXPECT_EQ((*hit)[i].score, stored[i].score);
  }
  const ResultCacheStats stats = cache.Stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.insertions, 1u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_GT(stats.bytes, 0u);
}

TEST(ResultCacheTest, EpochMismatchMissesAndPurgesTheStaleEntry) {
  ResultCache cache(1 << 20);
  const std::string key = ResultCache::MakeKey(Bits({0}), 5, 0);
  cache.Insert(key, 3, MakeRanking({1}));

  // A mutation bumped the epoch: the entry must never be served again.
  EXPECT_FALSE(cache.Lookup(key, 4).has_value());
  ResultCacheStats stats = cache.Stats();
  EXPECT_EQ(stats.entries, 0u) << "stale entry must be purged on touch";
  EXPECT_EQ(stats.bytes, 0u);
  EXPECT_EQ(stats.evictions, 1u);

  // And the old epoch is gone for good too (epochs are monotonic).
  EXPECT_FALSE(cache.Lookup(key, 3).has_value());

  // Re-populating at the new epoch serves again.
  cache.Insert(key, 4, MakeRanking({2}));
  ASSERT_TRUE(cache.Lookup(key, 4).has_value());
  EXPECT_EQ((*cache.Lookup(key, 4))[0].id, 2);
}

TEST(ResultCacheTest, InsertUnderTheSameKeyReplaces) {
  ResultCache cache(1 << 20);
  const std::string key = ResultCache::MakeKey(Bits({2, 3}), 4, 0);
  cache.Insert(key, 1, MakeRanking({10}));
  cache.Insert(key, 2, MakeRanking({20}));
  EXPECT_EQ(cache.Stats().entries, 1u);
  std::optional<Ranking> hit = cache.Lookup(key, 2);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ((*hit)[0].id, 20);
  // Any epoch mismatch purges (epochs only move forward in production, so
  // a mismatch in either direction means the entry is unservable).
  EXPECT_FALSE(cache.Lookup(key, 1).has_value());
  EXPECT_EQ(cache.Stats().entries, 0u);
}

TEST(ResultCacheTest, LruEvictsTheColdestEntryUnderTheByteBudget) {
  const Ranking ranking = MakeRanking({1, 2});
  std::vector<std::string> keys;
  for (int i = 0; i < 4; ++i) {
    keys.push_back(ResultCache::MakeKey(Bits({i}), 3, 0));
  }
  const size_t entry = OneEntryBytes(keys[0], ranking);

  ResultCache cache(3 * entry);  // room for exactly three entries
  cache.Insert(keys[0], 0, ranking);
  cache.Insert(keys[1], 0, ranking);
  cache.Insert(keys[2], 0, ranking);
  EXPECT_EQ(cache.Stats().entries, 3u);
  // Touch key 0 so key 1 is now the coldest.
  EXPECT_TRUE(cache.Lookup(keys[0], 0).has_value());
  cache.Insert(keys[3], 0, ranking);
  const ResultCacheStats stats = cache.Stats();
  EXPECT_EQ(stats.entries, 3u);
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_LE(stats.bytes, stats.max_bytes);
  EXPECT_TRUE(cache.Lookup(keys[0], 0).has_value());
  EXPECT_FALSE(cache.Lookup(keys[1], 0).has_value()) << "coldest must go";
  EXPECT_TRUE(cache.Lookup(keys[2], 0).has_value());
  EXPECT_TRUE(cache.Lookup(keys[3], 0).has_value());
}

TEST(ResultCacheTest, EntryLargerThanTheWholeBudgetIsNotStored) {
  ResultCache cache(16);
  const std::string key = ResultCache::MakeKey(Bits({0}), 1, 0);
  cache.Insert(key, 0, MakeRanking({1}));
  EXPECT_EQ(cache.Stats().entries, 0u);
  EXPECT_EQ(cache.Stats().insertions, 0u);
  EXPECT_FALSE(cache.Lookup(key, 0).has_value());
}

TEST(ResultCacheTest, KeysSeparateFingerprintKModeAndWidth) {
  const std::string base = ResultCache::MakeKey(Bits({1, 3}), 10, 0);
  EXPECT_NE(ResultCache::MakeKey(Bits({1, 4}), 10, 0), base);
  EXPECT_NE(ResultCache::MakeKey(Bits({1, 3}), 11, 0), base);
  EXPECT_NE(ResultCache::MakeKey(Bits({1, 3}), 10, 1), base);
  // Same set bits, wider fingerprint: the packed words can coincide, the
  // width field must still separate the keys.
  EXPECT_NE(ResultCache::MakeKey(Bits({1, 3}, 63), 10, 0), base);
  EXPECT_EQ(ResultCache::MakeKey(Bits({1, 3}), 10, 0), base);
}

TEST(ResultCacheTest, CountersAddUp) {
  ResultCache cache(1 << 20);
  const std::string a = ResultCache::MakeKey(Bits({0}), 1, 0);
  const std::string b = ResultCache::MakeKey(Bits({1}), 1, 0);
  cache.Lookup(a, 0);             // miss
  cache.Insert(a, 0, MakeRanking({1}));
  cache.Lookup(a, 0);             // hit
  cache.Lookup(b, 0);             // miss
  cache.Lookup(a, 1);             // stale -> miss + eviction
  const ResultCacheStats stats = cache.Stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 3u);
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.insertions, 1u);
  EXPECT_EQ(stats.entries, 0u);
}

}  // namespace
}  // namespace gdim
