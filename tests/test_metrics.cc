#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "common/histogram.h"
#include "obs/metric_registry.h"

namespace gdim {
namespace {

TEST(MetricRegistryTest, GetReturnsOneCellPerName) {
  MetricRegistry registry;
  MetricCounter* a = registry.GetCounter("gdim_test_total", "a counter");
  MetricCounter* b = registry.GetCounter("gdim_test_total", "ignored help");
  EXPECT_EQ(a, b);
  a->Increment();
  b->Increment(2);
  EXPECT_EQ(a->value(), 3u);

  MetricGauge* g = registry.GetGauge("gdim_test_gauge", "a gauge");
  g->Set(-7);
  EXPECT_EQ(registry.GetGauge("gdim_test_gauge", "")->value(), -7);

  LatencyHistogram* h = registry.GetHistogram("gdim_test_usec", "a histogram");
  EXPECT_EQ(h, registry.GetHistogram("gdim_test_usec", ""));
  // Distinct label bodies are distinct series in the same family.
  EXPECT_NE(h, registry.GetHistogram("gdim_test_usec", "", "kernel=\"x\""));
}

TEST(MetricRegistryTest, StageHistogramNamesFollowTheContract) {
  MetricRegistry registry;
  LatencyHistogram* h =
      registry.GetStageHistogram(kStageMapAll, "stage-1 mapping");
  h->Record(3.0);
  const std::string text = registry.ExpositionText();
  EXPECT_NE(text.find("# TYPE gdim_stage_map_all_usec histogram"),
            std::string::npos);
  EXPECT_NE(text.find("gdim_stage_map_all_usec_count 1"), std::string::npos);
}

TEST(MetricRegistryTest, HistogramBucketMath) {
  MetricRegistry registry;
  LatencyHistogram* h = registry.GetHistogram("gdim_test_usec", "buckets");
  // The shared stage bounds start 1, 2, 5, 10, ...
  h->Record(0.5);   // -> le="1"
  h->Record(1.0);   // on the bound -> still le="1"
  h->Record(3.0);   // -> le="5"
  h->Record(4e6);   // past the largest bound -> +Inf only
  const BucketHistogram snapshot = h->Snapshot();
  EXPECT_EQ(snapshot.count(), 4u);
  EXPECT_NEAR(snapshot.sum(), 0.5 + 1.0 + 3.0 + 4e6, 1e-6);
  const std::vector<uint64_t> cumulative = snapshot.CumulativeCounts();
  EXPECT_EQ(cumulative[0], 2u);  // le="1"
  EXPECT_EQ(cumulative[1], 2u);  // le="2"
  EXPECT_EQ(cumulative[2], 3u);  // le="5"
  EXPECT_EQ(cumulative.back(), 4u);  // +Inf == count
}

TEST(MetricRegistryTest, MergeFoldsPreBinnedSamples) {
  MetricRegistry registry;
  LatencyHistogram* h = registry.GetHistogram("gdim_test_usec", "merge");
  h->Record(3.0);
  // A per-shard histogram binned with the shared bounds, folded in bulk —
  // the registry's aggregation path for scan samples.
  BucketHistogram shard(StageLatencyBucketBoundsUsec());
  shard.Record(7.0);
  shard.Record(40.0);
  h->Merge(shard);
  const BucketHistogram snapshot = h->Snapshot();
  EXPECT_EQ(snapshot.count(), 3u);
  EXPECT_NEAR(snapshot.sum(), 3.0 + 7.0 + 40.0, 1e-6);
  // Mismatched bounds never corrupt the series.
  BucketHistogram alien({1.0, 2.0});
  alien.Record(1.5);
  h->Merge(alien);
  EXPECT_EQ(h->Snapshot().count(), 3u);
}

TEST(MetricRegistryTest, ExpositionGolden) {
  MetricRegistry registry;
  registry.GetCounter("gdim_b_total", "second family")->Increment(5);
  registry.GetGauge("gdim_c_gauge", "third family")->Set(9);
  LatencyHistogram* h =
      registry.GetHistogram("gdim_a_usec", "first family", "kernel=\"x\"");
  h->Record(1.0);
  h->Record(3.0);
  // Families in sorted name order regardless of kind; histograms carry
  // cumulative buckets, sum, and count; the +Inf cumulative equals count.
  const std::string text = registry.ExpositionText();
  const std::string expected_head =
      "# HELP gdim_a_usec first family\n"
      "# TYPE gdim_a_usec histogram\n"
      "gdim_a_usec_bucket{kernel=\"x\",le=\"1\"} 1\n"
      "gdim_a_usec_bucket{kernel=\"x\",le=\"2\"} 1\n"
      "gdim_a_usec_bucket{kernel=\"x\",le=\"5\"} 2\n";
  EXPECT_EQ(text.substr(0, expected_head.size()), expected_head);
  const std::string expected_tail =
      "gdim_a_usec_bucket{kernel=\"x\",le=\"+Inf\"} 2\n"
      "gdim_a_usec_sum{kernel=\"x\"} 4.000\n"
      "gdim_a_usec_count{kernel=\"x\"} 2\n"
      "# HELP gdim_b_total second family\n"
      "# TYPE gdim_b_total counter\n"
      "gdim_b_total 5\n"
      "# HELP gdim_c_gauge third family\n"
      "# TYPE gdim_c_gauge gauge\n"
      "gdim_c_gauge 9\n";
  ASSERT_GE(text.size(), expected_tail.size());
  EXPECT_EQ(text.substr(text.size() - expected_tail.size()), expected_tail);
}

TEST(MetricRegistryTest, ConcurrentRecordingIsExact) {
  MetricRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, t] {
      // Every thread both registers (exercising the mutex) and records
      // (exercising the lock-free cells).
      MetricCounter* counter =
          registry.GetCounter("gdim_concurrent_total", "shared");
      LatencyHistogram* histogram =
          registry.GetHistogram("gdim_concurrent_usec", "shared");
      for (int i = 0; i < kPerThread; ++i) {
        counter->Increment();
        histogram->Record(static_cast<double>(t + 1));
        registry.GetGauge("gdim_concurrent_gauge", "shared")->Set(i);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(registry.GetCounter("gdim_concurrent_total", "")->value(),
            static_cast<uint64_t>(kThreads) * kPerThread);
  const BucketHistogram snapshot =
      registry.GetHistogram("gdim_concurrent_usec", "")->Snapshot();
  EXPECT_EQ(snapshot.count(), static_cast<uint64_t>(kThreads) * kPerThread);
  // sum of t+1 for t in 0..7 = 36 per round.
  EXPECT_NEAR(snapshot.sum(), 36.0 * kPerThread, 1e-3);
  // count printed in the exposition equals the +Inf cumulative bucket.
  const std::string text = registry.ExpositionText();
  const std::string count_line =
      "gdim_concurrent_usec_count " + std::to_string(snapshot.count());
  EXPECT_NE(text.find(count_line), std::string::npos);
}

}  // namespace
}  // namespace gdim
