#include <atomic>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "common/parallel.h"
#include "common/random.h"
#include "common/status.h"
#include "common/timer.h"

namespace gdim {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad p");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad p");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad p");
}

TEST(StatusTest, FactoriesMapToCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::ParseError("x").code(), StatusCode::kParseError);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nothing");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::vector<int>> r = std::vector<int>{1, 2, 3};
  std::vector<int> v = std::move(r).value();
  EXPECT_EQ(v.size(), 3u);
}

TEST(RngTest, DeterministicStream) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.Next() == b.Next()) ? 1 : 0;
  EXPECT_LT(same, 4);
}

TEST(RngTest, UniformIntInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    int v = rng.UniformInt(-3, 9);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 9);
  }
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.UniformDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, UniformCoversAllResidues) {
  Rng rng(11);
  std::set<uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.UniformU64(10));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(RngTest, SampleWithoutReplacementIsDistinct) {
  Rng rng(5);
  std::vector<int> s = rng.SampleWithoutReplacement(50, 20);
  std::set<int> uniq(s.begin(), s.end());
  EXPECT_EQ(uniq.size(), 20u);
  for (int v : s) {
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 50);
  }
}

TEST(RngTest, WeightedIndexRespectsZeroWeights) {
  Rng rng(9);
  std::vector<double> w = {0.0, 1.0, 0.0};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.WeightedIndex(w), 1);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(13);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7};
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(RngTest, NormalHasRoughlyZeroMean) {
  Rng rng(17);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.Normal();
  EXPECT_NEAR(sum / n, 0.0, 0.05);
}

TEST(ParallelForTest, VisitsEveryIndexOnce) {
  std::vector<std::atomic<int>> counts(1000);
  ParallelFor(0, 1000, [&](int i) { counts[static_cast<size_t>(i)]++; });
  for (auto& c : counts) EXPECT_EQ(c.load(), 1);
}

TEST(ParallelForTest, EmptyAndSingleRanges) {
  std::atomic<int> count{0};
  ParallelFor(5, 5, [&](int) { count++; });
  EXPECT_EQ(count.load(), 0);
  ParallelFor(5, 6, [&](int) { count++; });
  EXPECT_EQ(count.load(), 1);
}

TEST(ParallelForTest, SerialFallbackMatches) {
  std::vector<int> out(100, 0);
  ParallelFor(0, 100, [&](int i) { out[static_cast<size_t>(i)] = i * i; },
              /*threads=*/1);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(out[static_cast<size_t>(i)], i * i);
}

TEST(TimerTest, MeasuresElapsed) {
  WallTimer t;
  double first = t.Seconds();
  EXPECT_GE(first, 0.0);
  volatile double sink = 0;
  for (int i = 0; i < 100000; ++i) sink = sink + i;
  EXPECT_GE(t.Seconds(), first);
  t.Reset();
  EXPECT_LT(t.Seconds(), 1.0);
}

}  // namespace
}  // namespace gdim
