#include <cmath>

#include <gtest/gtest.h>

#include "common/random.h"
#include "la/eigen.h"
#include "la/matrix.h"
#include "la/solvers.h"

namespace gdim {
namespace {

TEST(MatrixTest, MatVec) {
  Matrix m(2, 3);
  m.at(0, 0) = 1;
  m.at(0, 1) = 2;
  m.at(0, 2) = 3;
  m.at(1, 0) = 4;
  m.at(1, 1) = 5;
  m.at(1, 2) = 6;
  std::vector<double> v = {1, 0, -1};
  std::vector<double> out = m.MatVec(v);
  EXPECT_DOUBLE_EQ(out[0], -2);
  EXPECT_DOUBLE_EQ(out[1], -2);
  std::vector<double> u = {1, 1};
  std::vector<double> tout = m.TransposeMatVec(u);
  EXPECT_DOUBLE_EQ(tout[0], 5);
  EXPECT_DOUBLE_EQ(tout[1], 7);
  EXPECT_DOUBLE_EQ(tout[2], 9);
}

TEST(MatrixTest, VectorHelpers) {
  std::vector<double> a = {3, 4};
  EXPECT_DOUBLE_EQ(Norm2(a), 5.0);
  std::vector<double> b = {1, 2};
  EXPECT_DOUBLE_EQ(Dot(a, b), 11.0);
  Axpy(2.0, b, &a);
  EXPECT_DOUBLE_EQ(a[0], 5.0);
  EXPECT_DOUBLE_EQ(a[1], 8.0);
  Normalize(&a);
  EXPECT_NEAR(Norm2(a), 1.0, 1e-12);
  std::vector<double> zero = {0, 0};
  Normalize(&zero);  // no-op, no NaN
  EXPECT_DOUBLE_EQ(zero[0], 0.0);
}

TEST(JacobiEigenTest, DiagonalMatrix) {
  Matrix m(3, 3);
  m.at(0, 0) = 3;
  m.at(1, 1) = 1;
  m.at(2, 2) = 2;
  EigenResult r = JacobiEigen(m);
  ASSERT_EQ(r.values.size(), 3u);
  EXPECT_NEAR(r.values[0], 1, 1e-10);
  EXPECT_NEAR(r.values[1], 2, 1e-10);
  EXPECT_NEAR(r.values[2], 3, 1e-10);
}

TEST(JacobiEigenTest, SymmetricTwoByTwo) {
  Matrix m(2, 2);
  m.at(0, 0) = 2;
  m.at(0, 1) = 1;
  m.at(1, 0) = 1;
  m.at(1, 1) = 2;
  EigenResult r = JacobiEigen(m);
  EXPECT_NEAR(r.values[0], 1.0, 1e-10);
  EXPECT_NEAR(r.values[1], 3.0, 1e-10);
  // Eigenvector for λ=3 is (1,1)/√2 up to sign.
  EXPECT_NEAR(std::abs(r.vectors[1][0]), std::sqrt(0.5), 1e-8);
}

TEST(PowerIterationTest, TopEigenpairsOfKnownMatrix) {
  // A = diag(5, 2, 1) as an operator.
  SymmetricOperator op = [](const std::vector<double>& v) {
    return std::vector<double>{5 * v[0], 2 * v[1], 1 * v[2]};
  };
  EigenResult r = TopEigenpairs(op, 3, 2);
  ASSERT_EQ(r.values.size(), 2u);
  EXPECT_NEAR(r.values[0], 5.0, 1e-6);
  EXPECT_NEAR(r.values[1], 2.0, 1e-5);
  EXPECT_NEAR(std::abs(r.vectors[0][0]), 1.0, 1e-5);
}

TEST(PowerIterationTest, BottomEigenpairs) {
  SymmetricOperator op = [](const std::vector<double>& v) {
    return std::vector<double>{5 * v[0], 2 * v[1], 1 * v[2]};
  };
  EigenResult r = BottomEigenpairs(op, 3, 2, /*upper=*/6.0);
  EXPECT_NEAR(r.values[0], 1.0, 1e-5);
  EXPECT_NEAR(r.values[1], 2.0, 1e-5);
}

TEST(PowerIterationTest, SpectralUpperBoundIsUpper) {
  SymmetricOperator op = [](const std::vector<double>& v) {
    return std::vector<double>{5 * v[0], 2 * v[1], 1 * v[2]};
  };
  double ub = EstimateSpectralUpperBound(op, 3);
  EXPECT_GE(ub, 5.0);
}

TEST(ConjugateGradientTest, SolvesSpdSystem) {
  // A = [[4,1],[1,3]], b = [1,2] -> x = [1/11, 7/11].
  SymmetricOperator op = [](const std::vector<double>& v) {
    return std::vector<double>{4 * v[0] + v[1], v[0] + 3 * v[1]};
  };
  std::vector<double> x = ConjugateGradient(op, {1, 2});
  EXPECT_NEAR(x[0], 1.0 / 11, 1e-8);
  EXPECT_NEAR(x[1], 7.0 / 11, 1e-8);
}

TEST(LassoTest, ZeroPenaltyRecoversLeastSquares) {
  // y = 2*x with x = (1,2,3): w -> 2.
  std::vector<std::vector<double>> cols = {{1, 2, 3}};
  std::vector<double> y = {2, 4, 6};
  std::vector<double> w = LassoCoordinateDescent(cols, y, 0.0);
  EXPECT_NEAR(w[0], 2.0, 1e-8);
}

TEST(LassoTest, LargePenaltyZeroesOut) {
  std::vector<std::vector<double>> cols = {{1, 2, 3}};
  std::vector<double> y = {2, 4, 6};
  std::vector<double> w = LassoCoordinateDescent(cols, y, 1e6);
  EXPECT_DOUBLE_EQ(w[0], 0.0);
}

TEST(LassoTest, SelectsInformativeColumn) {
  // Column 0 explains y; column 1 is junk.
  std::vector<std::vector<double>> cols = {{1, 2, 3, 4}, {1, -1, 1, -1}};
  std::vector<double> y = {1, 2, 3, 4};
  std::vector<double> w = LassoCoordinateDescent(cols, y, 0.5);
  EXPECT_GT(std::abs(w[0]), std::abs(w[1]));
}

TEST(KMeansTest, SeparatesObviousClusters) {
  std::vector<std::vector<double>> pts = {
      {0, 0}, {0.1, 0}, {0, 0.1}, {5, 5}, {5.1, 5}, {5, 5.1}};
  std::vector<int> assign = KMeans(pts, 2, 7);
  EXPECT_EQ(assign[0], assign[1]);
  EXPECT_EQ(assign[1], assign[2]);
  EXPECT_EQ(assign[3], assign[4]);
  EXPECT_EQ(assign[4], assign[5]);
  EXPECT_NE(assign[0], assign[3]);
}

TEST(KMeansTest, MoreClustersThanPointsClamps) {
  std::vector<std::vector<double>> pts = {{0, 0}, {1, 1}};
  std::vector<int> assign = KMeans(pts, 5, 3);
  EXPECT_EQ(assign.size(), 2u);
}

TEST(KMeansTest, Deterministic) {
  std::vector<std::vector<double>> pts;
  Rng rng(5);
  for (int i = 0; i < 30; ++i) {
    pts.push_back({rng.UniformDouble(), rng.UniformDouble()});
  }
  EXPECT_EQ(KMeans(pts, 3, 11), KMeans(pts, 3, 11));
}

}  // namespace
}  // namespace gdim
