// Mutable-engine churn: interleaved insert / remove / query throughput on a
// QueryEngine under continuous modification, the workload an *online* graph
// search service actually faces (cf. segment-based mutable vector indexes).
//
//   bench_churn_workload [--n=10000 --p=256 --rounds=20 --inserts=50
//                         --removes=50 --queries=10 --k=10 --density=0.3
//                         --compact-every=10 --prefilter --seed=7]
//
// Each round performs `inserts` InsertMapped calls, `removes` Remove calls
// on random live ids, and `queries` top-k queries; every `compact-every`
// rounds the engine compacts. Reports per-op-class throughput and compaction
// cost. Before exiting, the mutated engine's rankings are checked
// bit-for-bit against a fresh engine built from the equivalent database.
//
// Features are single-vertex patterns (label r = feature r), so a query
// graph whose vertex labels are exactly the set bits of a fingerprint maps
// back onto that fingerprint — stage 1 stays cheap and the bench measures
// the mutation + scan machinery, not VF2.

#include <cstdio>
#include <utility>
#include <vector>

#include "common/flags.h"
#include "common/logging.h"
#include "common/random.h"
#include "common/sync.h"
#include "common/timer.h"
#include "core/index_io.h"
#include "serve/query_engine.h"

namespace gdim {
namespace {

Graph GraphFromFingerprint(const std::vector<uint8_t>& bits) {
  Graph g;
  for (size_t r = 0; r < bits.size(); ++r) {
    if (bits[r] != 0) g.AddVertex(static_cast<LabelId>(r));
  }
  if (g.NumVertices() == 0) g.AddVertex(0);  // keep queries non-degenerate
  return g;
}

int Main(int argc, char** argv) {
  Flags flags(argc, argv);
  const int n = std::max(1, flags.GetInt("n", 10000));
  const int p = std::max(1, flags.GetInt("p", 256));
  const int rounds = std::max(1, flags.GetInt("rounds", 20));
  const int inserts = std::max(0, flags.GetInt("inserts", 50));
  const int removes = std::max(0, flags.GetInt("removes", 50));
  const int queries = std::max(1, flags.GetInt("queries", 10));
  const int k = std::max(1, flags.GetInt("k", 10));
  const int compact_every = std::max(1, flags.GetInt("compact-every", 10));
  const double density = flags.GetDouble("density", 0.3);
  Rng rng(static_cast<uint64_t>(flags.GetInt("seed", 7)));

  ServeOptions options;
  options.threads = 1;  // per-op cost, not batch parallelism
  options.containment_prefilter = flags.GetBool("prefilter", false);

  std::printf(
      "churn_workload: n=%d p=%d rounds=%d (+%d/-%d/?%d per round) k=%d "
      "density=%.2f compact-every=%d prefilter=%d\n",
      n, p, rounds, inserts, removes, queries, k, density, compact_every,
      options.containment_prefilter ? 1 : 0);

  PersistedIndex seed_index;
  for (int r = 0; r < p; ++r) {
    Graph f;
    f.AddVertex(static_cast<LabelId>(r));
    seed_index.features.push_back(f);
  }
  seed_index.db_bits = RandomBitRows(n, p, density, &rng);

  // Shadow copy of the live database (id -> bits), the ground truth the
  // final equivalence gate rebuilds a fresh engine from.
  std::vector<std::pair<int, std::vector<uint8_t>>> shadow;
  shadow.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    shadow.emplace_back(i, seed_index.db_bits[static_cast<size_t>(i)]);
  }

  Result<QueryEngine> built = QueryEngine::FromIndex(seed_index, options);
  GDIM_CHECK(built.ok()) << built.status().ToString();
  QueryEngine engine = std::move(built).value();
  // This single-threaded bench is the engine's writer.
  ScopedRole writer(&engine.writer_role());

  int next_id = n;  // mirrors the engine's id assignment
  double insert_s = 0.0, remove_s = 0.0, query_s = 0.0, compact_s = 0.0;
  long long num_inserts = 0, num_removes = 0, num_queries = 0;
  int num_compactions = 0;
  double sink = 0.0;  // defeat dead-code elimination
  WallTimer total_timer;
  for (int round = 0; round < rounds; ++round) {
    const auto new_rows = RandomBitRows(inserts, p, density, &rng);
    WallTimer timer;
    for (const auto& row : new_rows) {
      Result<int> id = engine.InsertMapped(row);
      GDIM_CHECK(id.ok()) << id.status().ToString();
    }
    insert_s += timer.Seconds();
    num_inserts += inserts;
    for (const auto& row : new_rows) {
      shadow.emplace_back(next_id++, row);
    }

    std::vector<int> doomed;
    for (int j = 0; j < removes && shadow.size() > 1; ++j) {
      const size_t victim = rng.UniformU64(shadow.size());
      doomed.push_back(shadow[victim].first);
      shadow.erase(shadow.begin() + static_cast<std::ptrdiff_t>(victim));
    }
    timer.Reset();
    for (int id : doomed) {
      Status s = engine.Remove(id);
      GDIM_CHECK(s.ok()) << s.ToString();
    }
    remove_s += timer.Seconds();
    num_removes += static_cast<long long>(doomed.size());

    std::vector<Graph> round_queries;
    for (int q = 0; q < queries; ++q) {
      round_queries.push_back(
          GraphFromFingerprint(RandomBitRows(1, p, density, &rng)[0]));
    }
    timer.Reset();
    for (const Graph& q : round_queries) {
      const Ranking top = engine.Query(q, {.k = k});
      if (!top.empty()) sink += top[0].score;
    }
    query_s += timer.Seconds();
    num_queries += queries;

    if ((round + 1) % compact_every == 0) {
      timer.Reset();
      engine.Compact();
      compact_s += timer.Seconds();
      ++num_compactions;
    }
  }
  const double total_s = total_timer.Seconds();

  // Correctness gate: the churned engine must answer exactly like a fresh
  // engine over the equivalent database (shadow rows in id order).
  PersistedIndex equivalent;
  equivalent.features = seed_index.features;
  std::vector<int> expected_ids;
  for (const auto& [id, bits] : shadow) {
    expected_ids.push_back(id);
    equivalent.db_bits.push_back(bits);
  }
  Result<QueryEngine> fresh = QueryEngine::FromIndex(equivalent, options);
  GDIM_CHECK(fresh.ok()) << fresh.status().ToString();
  GDIM_CHECK(engine.alive_ids() == expected_ids) << "live id set diverged";
  for (int q = 0; q < 20; ++q) {
    const Graph query =
        GraphFromFingerprint(RandomBitRows(1, p, density, &rng)[0]);
    Ranking expected = fresh->Query(query, {.k = k});
    for (RankedResult& r : expected) {
      r.id = expected_ids[static_cast<size_t>(r.id)];
    }
    GDIM_CHECK(engine.Query(query, {.k = k}) == expected)
        << "churned engine diverged from fresh build on probe " << q;
  }

  if (num_inserts > 0) {
    std::printf("inserts:     %8.0f ops/s  (%lld total)\n",
                static_cast<double>(num_inserts) / insert_s, num_inserts);
  }
  if (num_removes > 0) {
    std::printf("removes:     %8.0f ops/s  (%lld total)\n",
                static_cast<double>(num_removes) / remove_s, num_removes);
  }
  std::printf("queries:     %8.0f qps    (%lld total, k=%d)\n",
              static_cast<double>(num_queries) / query_s, num_queries, k);
  if (num_compactions > 0) {
    std::printf("compactions: %8.1f ms avg  (%d total)\n",
                compact_s / num_compactions * 1e3, num_compactions);
  }
  std::printf(
      "# end state: %d live (base %d + delta %d rows, %d tombstoned) "
      "in %.2fs wall; churn gate passed (20 probes)\n",
      engine.num_graphs(), engine.base_rows(), engine.delta_rows(),
      engine.tombstoned_rows(), total_s);
  std::printf("# sink=%g\n", sink);
  return 0;
}

}  // namespace
}  // namespace gdim

int main(int argc, char** argv) { return gdim::Main(argc, argv); }
