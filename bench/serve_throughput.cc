// Serving hot-path throughput: packed word-popcount scans vs the seed's
// byte-vector scans, plus the multi-query SIMD kernels against each other,
// on a synthetic mapped database.
//
//   bench_serve_throughput [--n=10000 --p=300 --queries=50 --k=10
//                           --density=0.3 --repeat=3 --seed=7
//                           --json-out=FILE]
//
// Reports scan-kernel time (score every row, no ranking), full-ranking time
// (scan + sort), the serving stage-3 path (scan + partial top-k), and a
// per-kernel section: every kernel this host supports runs the same
// block-tiled multi-query batch scan, checked bit-for-bit against scalar
// before timing, with speedups relative to scalar. --json-out writes the
// machine-readable form (per-kernel qps and latency percentiles, plus the
// process's active kernel) for CI trend tracking, and additionally drives
// the same corpus through a ShardedEngine in MODE=full vs MODE=approx
// (default probe width), writing the QPS/recall point to
// BENCH_approx_recall.json next to it.

#include <algorithm>
#include <cstdio>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/flags.h"
#include "common/histogram.h"
#include "common/logging.h"
#include "common/random.h"
#include "common/timer.h"
#include "core/index_io.h"
#include "core/kernels/scan_kernel.h"
#include "core/objective.h"
#include "core/packed_bits.h"
#include "core/topk.h"
#include "graph/graph.h"
#include "server/sharded_engine.h"

namespace gdim {
namespace {

/// The seed's scan: one BinaryMappedDistance per byte row.
void ByteScoreAll(const std::vector<uint8_t>& query,
                  const std::vector<std::vector<uint8_t>>& rows,
                  std::vector<double>* scores) {
  scores->resize(rows.size());
  for (size_t i = 0; i < rows.size(); ++i) {
    (*scores)[i] = BinaryMappedDistance(query, rows[i]);
  }
}

/// One kernel's batch-scan measurement over the whole query set.
struct KernelTiming {
  std::string name;
  double best_s = 1e30;  ///< best-of-repeats wall time for the full batch
  LatencySummary latency_ms;  ///< per-query latency (tile wall time)
  double qps = 0.0;
};

/// Runs the block-tiled multi-query Hamming scan exactly the way the batch
/// engines tile it — kernel.tile_width() queries per pass, kScanBlockRows
/// rows per kernel call — writing raw diffs into *diffs (resized to
/// num_queries * num_rows, diffs[q * num_rows + r]).
void TiledBatchScan(const ScanKernel& kernel, const PackedBitMatrix& packed,
                    const std::vector<std::vector<uint64_t>>& queries,
                    std::vector<uint32_t>* diffs,
                    std::vector<double>* per_query_ms) {
  constexpr int kBlockRows = 256;
  const int num_rows = packed.num_rows();
  const size_t words = packed.words_per_row();
  const int tile = kernel.tile_width();
  const int num_queries = static_cast<int>(queries.size());
  diffs->resize(static_cast<size_t>(num_queries) * num_rows);
  per_query_ms->clear();
  std::vector<const uint64_t*> query_ptrs(static_cast<size_t>(tile));
  std::vector<uint32_t> block(static_cast<size_t>(tile) * kBlockRows);
  for (int q0 = 0; q0 < num_queries; q0 += tile) {
    WallTimer timer;
    const int nq = std::min(tile, num_queries - q0);
    for (int q = 0; q < nq; ++q) {
      query_ptrs[static_cast<size_t>(q)] = queries[q0 + q].data();
    }
    for (int r0 = 0; r0 < num_rows; r0 += kBlockRows) {
      const int nr = std::min(kBlockRows, num_rows - r0);
      kernel.HammingBlockMulti(query_ptrs.data(), nq, packed.row(r0), words,
                               nr, block.data());
      for (int q = 0; q < nq; ++q) {
        std::copy(block.begin() + q * nr, block.begin() + (q + 1) * nr,
                  diffs->begin() +
                      static_cast<size_t>(q0 + q) * num_rows + r0);
      }
    }
    const double tile_ms = timer.Millis();
    for (int q = 0; q < nq; ++q) per_query_ms->push_back(tile_ms);
  }
}

int Main(int argc, char** argv) {
  Flags flags(argc, argv);
  // Clamp to non-degenerate shapes: the timing loops index [0]/back().
  const int n = std::max(1, flags.GetInt("n", 10000));
  const int p = std::max(1, flags.GetInt("p", 300));
  const int num_queries = std::max(1, flags.GetInt("queries", 50));
  const int k = std::max(1, flags.GetInt("k", 10));
  const int repeat = std::max(1, flags.GetInt("repeat", 3));
  const double density = flags.GetDouble("density", 0.3);
  Rng rng(static_cast<uint64_t>(flags.GetInt("seed", 7)));

  std::printf("serve_throughput: n=%d p=%d queries=%d k=%d density=%.2f\n", n,
              p, num_queries, k, density);
  const std::vector<std::vector<uint8_t>> rows =
      RandomBitRows(n, p, density, &rng);
  const std::vector<std::vector<uint8_t>> queries =
      RandomBitRows(num_queries, p, density, &rng);
  const PackedBitMatrix packed = PackedBitMatrix::FromRows(rows);

  // Correctness gate: packed ranking must equal the byte reference exactly.
  for (const auto& q : queries) {
    GDIM_CHECK(MappedRanking(q, rows) == MappedRanking(q, packed))
        << "packed scan diverged from byte scan";
  }

  std::vector<std::vector<uint64_t>> packed_queries;
  packed_queries.reserve(queries.size());
  for (const auto& q : queries) {
    packed_queries.push_back(packed.PackQuery(q));
  }

  double byte_scan_s = 1e30, packed_scan_s = 1e30;
  double byte_rank_s = 1e30, packed_rank_s = 1e30, packed_topk_s = 1e30;
  std::vector<double> scores;
  double sink = 0.0;  // defeat dead-code elimination
  for (int rep = 0; rep < repeat; ++rep) {
    WallTimer timer;
    for (const auto& q : queries) {
      ByteScoreAll(q, rows, &scores);
      sink += scores.back();
    }
    byte_scan_s = std::min(byte_scan_s, timer.Seconds());

    timer.Reset();
    for (const auto& q : packed_queries) {
      packed.ScoreAll(q, &scores);
      sink += scores.back();
    }
    packed_scan_s = std::min(packed_scan_s, timer.Seconds());

    timer.Reset();
    for (const auto& q : queries) sink += MappedRanking(q, rows)[0].score;
    byte_rank_s = std::min(byte_rank_s, timer.Seconds());

    timer.Reset();
    for (const auto& q : queries) sink += MappedRanking(q, packed)[0].score;
    packed_rank_s = std::min(packed_rank_s, timer.Seconds());

    timer.Reset();
    for (const auto& q : packed_queries) {
      packed.ScoreAll(q, &scores);
      sink += TopKByScores(scores, k)[0].score;
    }
    packed_topk_s = std::min(packed_topk_s, timer.Seconds());
  }

  const double qn = static_cast<double>(num_queries);
  std::printf("byte scan kernel:    %8.1f us/query\n", byte_scan_s / qn * 1e6);
  std::printf("packed scan kernel:  %8.1f us/query  (speedup %.1fx)\n",
              packed_scan_s / qn * 1e6, byte_scan_s / packed_scan_s);
  std::printf("byte full ranking:   %8.1f us/query\n", byte_rank_s / qn * 1e6);
  std::printf("packed full ranking: %8.1f us/query  (speedup %.1fx)\n",
              packed_rank_s / qn * 1e6, byte_rank_s / packed_rank_s);
  std::printf("packed scan + topk:  %8.1f us/query  (%.0f qps, "
              "%.1fx vs byte ranking)\n",
              packed_topk_s / qn * 1e6, qn / packed_topk_s,
              byte_rank_s / packed_topk_s);

  // Multi-query kernel shoot-out: every kernel this host supports runs the
  // same block-tiled batch scan. Bit-identity against scalar is asserted on
  // the raw diff outputs before any timing — a fast wrong kernel must fail
  // here, not ship a number.
  const std::vector<const ScanKernel*> kernels = SupportedScanKernels();
  std::vector<uint32_t> scalar_diffs, kernel_diffs;
  std::vector<double> per_query_ms;
  TiledBatchScan(ScalarScanKernel(), packed, packed_queries, &scalar_diffs,
                 &per_query_ms);
  std::vector<KernelTiming> timings;
  for (const ScanKernel* kernel : kernels) {
    TiledBatchScan(*kernel, packed, packed_queries, &kernel_diffs,
                   &per_query_ms);
    GDIM_CHECK(kernel_diffs == scalar_diffs)
        << "kernel '" << kernel->name() << "' diverged from scalar";
    KernelTiming t;
    t.name = kernel->name();
    std::vector<double> best_latencies;
    for (int rep = 0; rep < repeat; ++rep) {
      WallTimer timer;
      TiledBatchScan(*kernel, packed, packed_queries, &kernel_diffs,
                     &per_query_ms);
      const double s = timer.Seconds();
      sink += kernel_diffs.back();
      if (s < t.best_s) {
        t.best_s = s;
        best_latencies = per_query_ms;
      }
    }
    t.latency_ms = SummarizeLatencies(std::move(best_latencies));
    t.qps = qn / t.best_s;
    timings.push_back(std::move(t));
  }
  const double scalar_s = timings.front().best_s;
  std::printf("active kernel: %s\n", ActiveScanKernel().name());
  for (const KernelTiming& t : timings) {
    std::printf("%-6s multi-scan:   %8.1f us/query  (%.0f qps, "
                "speedup %.1fx vs scalar)\n",
                t.name.c_str(), t.best_s / qn * 1e6, t.qps,
                scalar_s / t.best_s);
  }
  std::printf("# sink=%g\n", sink);

  const std::string json_out = flags.GetString("json-out", "");
  if (!json_out.empty()) {
    std::FILE* f = std::fopen(json_out.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "error: cannot open %s for writing\n",
                   json_out.c_str());
      return 1;
    }
    std::fprintf(f,
                 "{\n  \"bench\": \"serve_throughput\",\n"
                 "  \"n\": %d, \"p\": %d, \"queries\": %d, \"k\": %d,\n"
                 "  \"active_kernel\": \"%s\",\n  \"kernels\": [",
                 n, p, num_queries, k, ActiveScanKernel().name());
    for (size_t i = 0; i < timings.size(); ++i) {
      const KernelTiming& t = timings[i];
      std::fprintf(f,
                   "%s\n    {\"kernel\": \"%s\", \"qps\": %.1f, "
                   "\"us_per_query\": %.2f, \"p50_ms\": %.4f, "
                   "\"p99_ms\": %.4f, \"speedup_vs_scalar\": %.2f}",
                   i == 0 ? "" : ",", t.name.c_str(), t.qps,
                   t.best_s / qn * 1e6, t.latency_ms.p50, t.latency_ms.p99,
                   scalar_s / t.best_s);
    }
    std::fprintf(f, "\n  ]\n}\n");
    std::fclose(f);
    std::printf("# wrote %s\n", json_out.c_str());

    // The approx-vs-full serving point: the same corpus behind a
    // ShardedEngine, MODE=full against MODE=approx at the engine's default
    // probe width. On this *uniform* corpus the IVF partition has little
    // structure to exploit, so the recorded recall is a conservative floor
    // (bench_approx_workload gates the clustered case); the point tracks
    // the QPS ratio and recall over time.
    PersistedIndex index;
    for (LabelId r = 0; r < p; ++r) {
      Graph feature;
      feature.AddVertex(r);
      index.features.push_back(feature);
    }
    index.db_bits = rows;
    Result<ShardedEngine> engine =
        ShardedEngine::FromIndex(std::move(index), ShardedOptions{});
    GDIM_CHECK(engine.ok()) << engine.status().ToString();
    double full_s = 1e30, approx_s = 1e30;
    std::vector<Ranking> full_answers(queries.size());
    std::vector<Ranking> approx_answers(queries.size());
    long long scanned = 0;
    for (int rep = 0; rep < repeat; ++rep) {
      WallTimer timer;
      for (size_t q = 0; q < queries.size(); ++q) {
        full_answers[q] = engine->QueryMapped(
            queries[q], {.k = k, .scan_mode = ScanMode::kFull});
      }
      full_s = std::min(full_s, timer.Seconds());
      timer.Reset();
      long long rep_scanned = 0;
      for (size_t q = 0; q < queries.size(); ++q) {
        ServeQueryStats stats;
        approx_answers[q] = engine->QueryMapped(
            queries[q], {.k = k, .scan_mode = ScanMode::kApprox}, &stats);
        rep_scanned += stats.scanned;
      }
      approx_s = std::min(approx_s, timer.Seconds());
      scanned = rep_scanned;
    }
    double recall_sum = 0.0;
    for (size_t q = 0; q < queries.size(); ++q) {
      std::set<int> full_ids;
      for (const RankedResult& r : full_answers[q]) full_ids.insert(r.id);
      int hits = 0;
      for (const RankedResult& r : approx_answers[q]) {
        hits += full_ids.count(r.id) != 0 ? 1 : 0;
      }
      recall_sum += full_answers[q].empty()
                        ? 1.0
                        : static_cast<double>(hits) /
                              static_cast<double>(full_answers[q].size());
    }
    const double recall = recall_sum / qn;
    const double scan_frac =
        static_cast<double>(scanned) / (qn * static_cast<double>(n));
    const size_t slash = json_out.find_last_of('/');
    const std::string approx_out =
        (slash == std::string::npos ? std::string()
                                    : json_out.substr(0, slash + 1)) +
        "BENCH_approx_recall.json";
    std::FILE* af = std::fopen(approx_out.c_str(), "w");
    if (af == nullptr) {
      std::fprintf(stderr, "error: cannot open %s for writing\n",
                   approx_out.c_str());
      return 1;
    }
    std::fprintf(af,
                 "{\n  \"bench\": \"approx_recall\",\n"
                 "  \"n\": %d, \"p\": %d, \"queries\": %d, \"k\": %d,\n"
                 "  \"ivf_buckets\": %d,\n"
                 "  \"full_qps\": %.1f, \"approx_qps\": %.1f,\n"
                 "  \"speedup\": %.2f, \"recall_at_k\": %.4f,\n"
                 "  \"scan_frac\": %.4f\n}\n",
                 n, p, num_queries, k, engine->ivf_buckets(), qn / full_s,
                 qn / approx_s, full_s / approx_s, recall, scan_frac);
    std::fclose(af);
    std::printf("# wrote %s (approx %.0f qps vs full %.0f qps, "
                "recall@%d %.3f)\n",
                approx_out.c_str(), qn / approx_s, qn / full_s, k, recall);
  }
  return 0;
}

}  // namespace
}  // namespace gdim

int main(int argc, char** argv) { return gdim::Main(argc, argv); }
