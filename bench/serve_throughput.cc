// Serving hot-path throughput: packed word-popcount scans vs the seed's
// byte-vector scans, on a synthetic mapped database.
//
//   bench_serve_throughput [--n=10000 --p=300 --queries=50 --k=10
//                           --density=0.3 --repeat=3 --seed=7]
//
// Reports scan-kernel time (score every row, no ranking), full-ranking time
// (scan + sort), and the serving stage-3 path (scan + partial top-k), with
// byte/packed speedups. The packed results are checked bit-for-bit against
// the byte reference before timing.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "common/flags.h"
#include "common/logging.h"
#include "common/random.h"
#include "common/timer.h"
#include "core/objective.h"
#include "core/packed_bits.h"
#include "core/topk.h"

namespace gdim {
namespace {

/// The seed's scan: one BinaryMappedDistance per byte row.
void ByteScoreAll(const std::vector<uint8_t>& query,
                  const std::vector<std::vector<uint8_t>>& rows,
                  std::vector<double>* scores) {
  scores->resize(rows.size());
  for (size_t i = 0; i < rows.size(); ++i) {
    (*scores)[i] = BinaryMappedDistance(query, rows[i]);
  }
}

int Main(int argc, char** argv) {
  Flags flags(argc, argv);
  // Clamp to non-degenerate shapes: the timing loops index [0]/back().
  const int n = std::max(1, flags.GetInt("n", 10000));
  const int p = std::max(1, flags.GetInt("p", 300));
  const int num_queries = std::max(1, flags.GetInt("queries", 50));
  const int k = std::max(1, flags.GetInt("k", 10));
  const int repeat = std::max(1, flags.GetInt("repeat", 3));
  const double density = flags.GetDouble("density", 0.3);
  Rng rng(static_cast<uint64_t>(flags.GetInt("seed", 7)));

  std::printf("serve_throughput: n=%d p=%d queries=%d k=%d density=%.2f\n", n,
              p, num_queries, k, density);
  const std::vector<std::vector<uint8_t>> rows =
      RandomBitRows(n, p, density, &rng);
  const std::vector<std::vector<uint8_t>> queries =
      RandomBitRows(num_queries, p, density, &rng);
  const PackedBitMatrix packed = PackedBitMatrix::FromRows(rows);

  // Correctness gate: packed ranking must equal the byte reference exactly.
  for (const auto& q : queries) {
    GDIM_CHECK(MappedRanking(q, rows) == MappedRanking(q, packed))
        << "packed scan diverged from byte scan";
  }

  std::vector<std::vector<uint64_t>> packed_queries;
  packed_queries.reserve(queries.size());
  for (const auto& q : queries) {
    packed_queries.push_back(packed.PackQuery(q));
  }

  double byte_scan_s = 1e30, packed_scan_s = 1e30;
  double byte_rank_s = 1e30, packed_rank_s = 1e30, packed_topk_s = 1e30;
  std::vector<double> scores;
  double sink = 0.0;  // defeat dead-code elimination
  for (int rep = 0; rep < repeat; ++rep) {
    WallTimer timer;
    for (const auto& q : queries) {
      ByteScoreAll(q, rows, &scores);
      sink += scores.back();
    }
    byte_scan_s = std::min(byte_scan_s, timer.Seconds());

    timer.Reset();
    for (const auto& q : packed_queries) {
      packed.ScoreAll(q, &scores);
      sink += scores.back();
    }
    packed_scan_s = std::min(packed_scan_s, timer.Seconds());

    timer.Reset();
    for (const auto& q : queries) sink += MappedRanking(q, rows)[0].score;
    byte_rank_s = std::min(byte_rank_s, timer.Seconds());

    timer.Reset();
    for (const auto& q : queries) sink += MappedRanking(q, packed)[0].score;
    packed_rank_s = std::min(packed_rank_s, timer.Seconds());

    timer.Reset();
    for (const auto& q : packed_queries) {
      packed.ScoreAll(q, &scores);
      sink += TopKByScores(scores, k)[0].score;
    }
    packed_topk_s = std::min(packed_topk_s, timer.Seconds());
  }

  const double qn = static_cast<double>(num_queries);
  std::printf("byte scan kernel:    %8.1f us/query\n", byte_scan_s / qn * 1e6);
  std::printf("packed scan kernel:  %8.1f us/query  (speedup %.1fx)\n",
              packed_scan_s / qn * 1e6, byte_scan_s / packed_scan_s);
  std::printf("byte full ranking:   %8.1f us/query\n", byte_rank_s / qn * 1e6);
  std::printf("packed full ranking: %8.1f us/query  (speedup %.1fx)\n",
              packed_rank_s / qn * 1e6, byte_rank_s / packed_rank_s);
  std::printf("packed scan + topk:  %8.1f us/query  (%.0f qps, "
              "%.1fx vs byte ranking)\n",
              packed_topk_s / qn * 1e6, qn / packed_topk_s,
              byte_rank_s / packed_topk_s);
  std::printf("# sink=%g\n", sink);
  return 0;
}

}  // namespace
}  // namespace gdim

int main(int argc, char** argv) { return gdim::Main(argc, argv); }
