#include "bench/harness.h"

#include <cstdio>
#include <cstdlib>

#include "common/logging.h"
#include "common/parallel.h"
#include "common/timer.h"
#include "core/mapper.h"
#include "core/measures.h"
#include "datasets/fingerprint.h"

namespace gdim {
namespace bench {

namespace {

PreparedData Finish(GraphDatabase db, GraphDatabase queries,
                    const DataScale& scale) {
  PreparedData data;
  data.db = std::move(db);
  data.queries = std::move(queries);

  WallTimer timer;
  MiningOptions mining;
  mining.min_support = scale.min_support;
  mining.max_edges = scale.max_pattern_edges;
  Result<std::vector<FrequentPattern>> mined =
      MineFrequentSubgraphs(data.db, mining);
  GDIM_CHECK(mined.ok()) << mined.status().ToString();
  data.features = BinaryFeatureDb::FromPatterns(
      static_cast<int>(data.db.size()), *mined);
  data.mining_seconds = timer.Seconds();

  timer.Reset();
  data.delta = DissimilarityMatrix::Compute(data.db);
  data.delta_seconds = timer.Seconds();

  if (!scale.skip_exact) {
    timer.Reset();
    data.exact.resize(data.queries.size());
    ParallelFor(0, static_cast<int>(data.queries.size()), [&](int qi) {
      data.exact[static_cast<size_t>(qi)] =
          ExactRanking(data.queries[static_cast<size_t>(qi)], data.db,
                       DissimilarityKind::kDelta2, /*threads=*/1);
    });
    data.exact_seconds = timer.Seconds();
  }
  return data;
}

}  // namespace

PreparedData PrepareChem(const DataScale& scale) {
  ChemGenOptions opts;
  opts.num_graphs = scale.db_size;
  // Family diversity scales with sample size: drawing a larger subset of a
  // huge corpus (PubChem) yields proportionally more scaffold families, not
  // denser ones.
  opts.num_families = std::max(10, scale.db_size / 8);
  opts.seed = scale.seed;
  GraphDatabase db = GenerateChemDatabase(opts);
  GraphDatabase queries = GenerateChemQueries(opts, scale.num_queries);
  return Finish(std::move(db), std::move(queries), scale);
}

PreparedData PrepareSynthetic(const DataScale& scale,
                              const GraphGenOptions& gen) {
  GraphGenOptions opts = gen;
  opts.num_graphs = scale.db_size;
  opts.seed = scale.seed;
  GraphDatabase db = GenerateSyntheticDatabase(opts);
  opts.seed = scale.seed ^ 0x9E3779B9ULL;  // independent query stream
  opts.num_graphs = scale.num_queries;
  GraphDatabase queries = GenerateSyntheticDatabase(opts);
  return Finish(std::move(db), std::move(queries), scale);
}

Result<SelectionOutput> RunSelector(const std::string& name,
                                    const PreparedData& data, int p,
                                    uint64_t seed, double* seconds) {
  std::unique_ptr<FeatureSelector> selector = MakeSelector(name);
  if (selector == nullptr) {
    return Status::InvalidArgument("unknown selector " + name);
  }
  SelectionInput input;
  input.db = &data.features;
  input.delta = &data.delta;
  input.p = p;
  input.seed = seed;
  // Benches run DSPM to tight convergence (the paper reports its best
  // configuration per dataset).
  input.dspm.max_iters = 100;
  input.dspm.epsilon = 1e-6;
  input.dspmap.dspm = input.dspm;
  input.dspmap.partition_size =
      std::max(20, data.features.num_graphs() / 10);
  WallTimer timer;
  Result<SelectionOutput> out = selector->Select(input);
  if (seconds != nullptr) *seconds = timer.Seconds();
  return out;
}

std::vector<std::vector<uint8_t>> ProjectDatabase(
    const PreparedData& data, const std::vector<int>& selected) {
  std::vector<std::vector<uint8_t>> bits(data.db.size());
  for (size_t i = 0; i < data.db.size(); ++i) {
    std::vector<uint8_t> row(selected.size(), 0);
    for (size_t r = 0; r < selected.size(); ++r) {
      row[r] = data.features.Contains(static_cast<int>(i), selected[r]) ? 1 : 0;
    }
    bits[i] = std::move(row);
  }
  return bits;
}

std::vector<std::vector<uint8_t>> ProjectQueries(
    const PreparedData& data, const std::vector<int>& selected,
    double* seconds) {
  GraphDatabase dimension;
  dimension.reserve(selected.size());
  for (int r : selected) {
    dimension.push_back(
        data.features.feature_graphs()[static_cast<size_t>(r)]);
  }
  FeatureMapper mapper(std::move(dimension));
  WallTimer timer;
  std::vector<std::vector<uint8_t>> bits = mapper.MapAll(data.queries);
  if (seconds != nullptr) *seconds = timer.Seconds();
  return bits;
}

Quality EvaluateMapped(const PreparedData& data,
                       const std::vector<std::vector<uint8_t>>& query_bits,
                       const std::vector<std::vector<uint8_t>>& db_bits,
                       int k) {
  std::vector<Ranking> approx(query_bits.size());
  for (size_t qi = 0; qi < query_bits.size(); ++qi) {
    approx[qi] = MappedRanking(query_bits[qi], db_bits);
  }
  return EvaluateRankings(data, approx, k);
}

Quality EvaluateRankings(const PreparedData& data,
                         const std::vector<Ranking>& approx, int k) {
  GDIM_CHECK(approx.size() == data.exact.size())
      << "query count mismatch (was skip_exact set?)";
  Quality q;
  for (size_t qi = 0; qi < approx.size(); ++qi) {
    q.precision += PrecisionAtK(data.exact[qi], approx[qi], k);
    q.kendall_tau += KendallTauAtK(data.exact[qi], approx[qi], k);
    q.rank_distance += InverseRankDistanceAtK(data.exact[qi], approx[qi], k);
  }
  const double n = static_cast<double>(approx.size());
  q.precision /= n;
  q.kendall_tau /= n;
  q.rank_distance /= n;
  return q;
}

std::vector<Ranking> FingerprintRankings(const PreparedData& data,
                                         uint64_t seed, int bits) {
  // The expert dictionary comes from an independent sample: different seed,
  // same generator family (the paper's dictionary predates any query set).
  ChemGenOptions sample_opts;
  sample_opts.num_graphs = std::max(100, static_cast<int>(data.db.size()) / 2);
  sample_opts.seed = seed ^ 0xF1A9ULL;
  GraphDatabase sample = GenerateChemDatabase(sample_opts);
  Result<FingerprintDictionary> dict =
      FingerprintDictionary::Build(sample, bits, 0.05, 5);
  GDIM_CHECK(dict.ok()) << dict.status().ToString();

  std::vector<std::vector<uint8_t>> db_fp(data.db.size());
  ParallelFor(0, static_cast<int>(data.db.size()), [&](int i) {
    db_fp[static_cast<size_t>(i)] =
        dict->Fingerprint(data.db[static_cast<size_t>(i)]);
  });
  std::vector<Ranking> rankings(data.queries.size());
  ParallelFor(0, static_cast<int>(data.queries.size()), [&](int qi) {
    std::vector<uint8_t> qfp =
        dict->Fingerprint(data.queries[static_cast<size_t>(qi)]);
    std::vector<double> scores(data.db.size());
    for (size_t i = 0; i < data.db.size(); ++i) {
      scores[i] = 1.0 - TanimotoSimilarity(qfp, db_fp[i]);
    }
    rankings[static_cast<size_t>(qi)] = RankByScores(scores);
  });
  return rankings;
}

void PrintRow(const std::string& label, const std::vector<double>& values) {
  std::printf("%-10s", label.c_str());
  for (double v : values) std::printf(" %10.4f", v);
  std::printf("\n");
  std::fflush(stdout);
}

void PrintHeader(const std::string& label,
                 const std::vector<std::string>& columns) {
  std::printf("%-10s", label.c_str());
  for (const std::string& c : columns) std::printf(" %10s", c.c_str());
  std::printf("\n");
  std::fflush(stdout);
}

}  // namespace bench
}  // namespace gdim
