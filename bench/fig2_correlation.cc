// Figure 2: sum of pairwise correlation (Jaccard) scores between selected
// features, DSPM vs Sample, as the number of selected dimensions p grows.
// A good DS-preserved mapping picks less-correlated (less redundant)
// features.

#include <cstdio>

#include "bench/harness.h"
#include "core/measures.h"

namespace gdim {
namespace bench {
namespace {

int Main(int argc, char** argv) {
  Flags flags(argc, argv);
  DataScale scale;
  scale.db_size = flags.GetInt("n", 200);
  scale.num_queries = 1;  // unused here
  scale.skip_exact = true;
  // The paper mines its pool without a pattern-size bound (τ=5%), which
  // leaves many large, heavily-overlapping scaffold patterns in F — that
  // pool shape is what Fig 2 contrasts against.
  scale.min_support = flags.GetDouble("minsup", 0.05);
  scale.max_pattern_edges = flags.GetInt("maxedges", 12);

  std::printf("=== Fig 2: correlation score between selected features ===\n");
  PreparedData data = PrepareChem(scale);
  const int m = data.features.num_features();
  std::printf("n=%d m=%d\n", scale.db_size, m);

  // Paper sweeps p = 100..500 with m in the thousands (p/m ≲ 25%); scale
  // the sweep to the same fraction of our pool.
  std::vector<int> ps;
  for (int frac = 1; frac <= 5; ++frac) {
    int p = m * frac / 20;
    if (p >= 5) ps.push_back(p);
  }
  PrintHeader("p", {"DSPM", "Sample"});
  for (int p : ps) {
    Result<SelectionOutput> dspm = RunSelector("DSPM", data, p, 1, nullptr);
    Result<SelectionOutput> sample =
        RunSelector("Sample", data, p, 1, nullptr);
    GDIM_CHECK(dspm.ok() && sample.ok());
    char label[32];
    std::snprintf(label, sizeof(label), "%d", p);
    PrintRow(label, {CorrelationScore(data.features, dspm->selected),
                     CorrelationScore(data.features, sample->selected)});
  }
  std::printf("\nExpected shape: DSPM row-wise below Sample (less redundant "
              "features), gap growing with p.\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace gdim

int main(int argc, char** argv) { return gdim::bench::Main(argc, argv); }
