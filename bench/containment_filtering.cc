// Extension bench: subgraph-containment filtering power of the selected
// dimension (the gIndex-style application from the paper's related work).
// Compares candidate-set sizes after filtering with DSPM-selected features
// vs randomly sampled features vs all mined features, for subgraph queries
// drawn from database graphs.

#include <cstdio>
#include <numeric>

#include "bench/harness.h"
#include "common/random.h"
#include "core/containment.h"
#include "graph/graph_utils.h"

namespace gdim {
namespace bench {
namespace {

std::unique_ptr<ContainmentIndex> BuildIndex(const PreparedData& data,
                                             const std::vector<int>& selected) {
  GraphDatabase features;
  for (int r : selected) {
    features.push_back(data.features.feature_graphs()[static_cast<size_t>(r)]);
  }
  auto rows = ProjectDatabase(data, selected);
  return std::make_unique<ContainmentIndex>(data.db, std::move(features),
                                            rows);
}

int Main(int argc, char** argv) {
  Flags flags(argc, argv);
  DataScale scale;
  scale.db_size = flags.GetInt("n", 150);
  scale.num_queries = 1;
  scale.skip_exact = true;
  const int p = flags.GetInt("p", 100);
  const int num_queries = flags.GetInt("queries", 60);

  std::printf("=== Extension: containment filtering power ===\n");
  PreparedData data = PrepareChem(scale);
  const int m = data.features.num_features();
  std::printf("n=%d m=%d p=%d queries=%d\n", scale.db_size, m, p,
              num_queries);

  Result<SelectionOutput> dspm = RunSelector("DSPM", data, p, 1, nullptr);
  Result<SelectionOutput> sample = RunSelector("Sample", data, p, 1, nullptr);
  GDIM_CHECK(dspm.ok() && sample.ok());
  std::vector<int> all(static_cast<size_t>(m));
  std::iota(all.begin(), all.end(), 0);

  auto idx_dspm = BuildIndex(data, dspm->selected);
  auto idx_sample = BuildIndex(data, sample->selected);
  auto idx_all = BuildIndex(data, all);

  // Queries: random connected subgraphs of database graphs (so each has at
  // least one answer).
  Rng rng(99);
  double cand_dspm = 0, cand_sample = 0, cand_all = 0, answers = 0;
  for (int qi = 0; qi < num_queries; ++qi) {
    const Graph& host = data.db[static_cast<size_t>(
        rng.UniformU64(data.db.size()))];
    // Connected subgraph: take a random edge and grow.
    std::vector<EdgeId> chosen;
    std::vector<bool> in(static_cast<size_t>(host.NumEdges()), false);
    EdgeId seed = static_cast<EdgeId>(rng.UniformU64(
        static_cast<uint64_t>(host.NumEdges())));
    chosen.push_back(seed);
    in[static_cast<size_t>(seed)] = true;
    int want = rng.UniformInt(2, 5);
    while (static_cast<int>(chosen.size()) < want) {
      // Any edge adjacent to the chosen set.
      std::vector<EdgeId> frontier;
      for (EdgeId e = 0; e < host.NumEdges(); ++e) {
        if (in[static_cast<size_t>(e)]) continue;
        for (EdgeId c : chosen) {
          const Edge& ce = host.GetEdge(c);
          const Edge& ee = host.GetEdge(e);
          if (ce.u == ee.u || ce.u == ee.v || ce.v == ee.u || ce.v == ee.v) {
            frontier.push_back(e);
            break;
          }
        }
      }
      if (frontier.empty()) break;
      EdgeId pick = frontier[static_cast<size_t>(
          rng.UniformU64(frontier.size()))];
      chosen.push_back(pick);
      in[static_cast<size_t>(pick)] = true;
    }
    Graph query = EdgeSubgraph(host, chosen);

    ContainmentIndex::QueryStats s1, s2, s3;
    std::vector<int> a1 = idx_dspm->Query(query, &s1);
    idx_sample->Query(query, &s2);
    idx_all->Query(query, &s3);
    cand_dspm += s1.candidates;
    cand_sample += s2.candidates;
    cand_all += s3.candidates;
    answers += static_cast<double>(a1.size());
  }
  const double nq = num_queries;
  std::printf("\naverage candidate-set size after filtering (smaller = "
              "stronger filter; %d graphs total)\n",
              scale.db_size);
  PrintHeader("", {"candidates", "answers"});
  PrintRow("DSPM-p", {cand_dspm / nq, answers / nq});
  PrintRow("Sample-p", {cand_sample / nq, answers / nq});
  PrintRow("all-m", {cand_all / nq, answers / nq});
  std::printf("\nExpected shape: all-m filters best (more features), DSPM's "
              "p features filter nearly as well, Sample-p clearly worse — "
              "the DS-preserving dimensions double as high-quality "
              "containment filters.\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace gdim

int main(int argc, char** argv) { return gdim::bench::Main(argc, argv); }
