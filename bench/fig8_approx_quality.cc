// Figure 8 (Exp-5): approximation quality of DSPMap vs partition size b.
// (a) precision of DSPMap approaches DSPM as b grows; (b) indexing time of
// DSPMap grows linearly in b (and stays well below DSPM's).

#include <cstdio>

#include "bench/harness.h"
#include "common/timer.h"
#include "core/dspmap.h"

namespace gdim {
namespace bench {
namespace {

int Main(int argc, char** argv) {
  Flags flags(argc, argv);
  DataScale scale;
  scale.db_size = flags.GetInt("n", 200);
  scale.num_queries = flags.GetInt("queries", 40);
  const int p = flags.GetInt("p", 100);
  const int k = flags.GetInt("k", 20);

  std::printf("=== Fig 8 (Exp-5): DSPMap approximation quality ===\n");
  std::printf("n=%d queries=%d p=%d k=%d\n", scale.db_size,
              scale.num_queries, p, k);
  PreparedData data = PrepareChem(scale);
  std::printf("m=%d\n", data.features.num_features());

  // Reference: full DSPM.
  double dspm_secs = 0.0;
  Result<SelectionOutput> dspm = RunSelector("DSPM", data, p, 1, &dspm_secs);
  GDIM_CHECK(dspm.ok());
  auto db_bits = ProjectDatabase(data, dspm->selected);
  auto q_bits = ProjectQueries(data, dspm->selected, nullptr);
  double dspm_precision = EvaluateMapped(data, q_bits, db_bits, k).precision;

  std::printf("\nprecision and selection time vs partition size b\n");
  PrintHeader("b", {"DSPMap", "DSPM", "map_time", "dspm_time", "delta_eval"});
  // Paper sweeps b = 20..100.
  for (int b : {20, 40, 60, 80, 100}) {
    DspmapOptions opts;
    opts.p = p;
    opts.partition_size = b;
    opts.seed = 1;
    const DissimilarityMatrix* delta = &data.delta;
    WallTimer t;
    DspmapResult r = RunDspmap(
        data.features, [delta](int i, int j) { return delta->at(i, j); },
        opts);
    double secs = t.Seconds();
    auto mdb = ProjectDatabase(data, r.selected);
    auto mq = ProjectQueries(data, r.selected, nullptr);
    double precision = EvaluateMapped(data, mq, mdb, k).precision;
    char label[32];
    std::snprintf(label, sizeof(label), "%d", b);
    PrintRow(label, {precision, dspm_precision, secs, dspm_secs,
                     static_cast<double>(r.delta_evaluations)});
  }
  std::printf(
      "\nExpected shape (paper): DSPMap precision within 1-2%% of DSPM, gap "
      "shrinking as b grows; DSPMap selection time grows ~linearly in b and "
      "is far below DSPM at small b (delta_eval counts the pairwise-MCS "
      "oracle calls DSPMap would make: O(n*b) vs n^2/2 for DSPM).\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace gdim

int main(int argc, char** argv) { return gdim::bench::Main(argc, argv); }
