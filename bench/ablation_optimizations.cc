// Ablation bench for the design choices called out in DESIGN.md:
//  1. DSPM's optimized updates (Theorem 5.1 / Algorithms 2-4, inverted
//     lists) vs the direct Eq.(6)/(7) implementation — identical output,
//     large constant-factor difference (the paper's Section 5.1 claim).
//  2. Algorithm 4's inverted-list stress vs the naive all-features scan.
//  3. MCS algorithm choice: hybrid auto vs clique vs budgeted McGregor.
//  4. Final mapped space: unweighted binary vectors (Sec. 4, used by the
//     theory) vs keeping the optimization weights.

#include <cmath>
#include <cstdio>

#include "bench/harness.h"
#include "common/timer.h"
#include "core/dspm.h"
#include "core/objective.h"
#include "core/topk.h"

namespace gdim {
namespace bench {
namespace {

// Weighted-space ranking: scan by sqrt(sum of c_r^2 over differing bits).
Ranking WeightedRanking(const std::vector<uint8_t>& q,
                        const std::vector<std::vector<uint8_t>>& db,
                        const std::vector<double>& w) {
  std::vector<double> scores(db.size(), 0.0);
  for (size_t i = 0; i < db.size(); ++i) {
    double acc = 0.0;
    for (size_t r = 0; r < q.size(); ++r) {
      if (q[r] != db[i][r]) acc += w[r] * w[r];
    }
    scores[i] = std::sqrt(acc);
  }
  return RankByScores(scores);
}

int Main(int argc, char** argv) {
  Flags flags(argc, argv);
  DataScale scale;
  scale.db_size = flags.GetInt("n", 120);
  scale.num_queries = flags.GetInt("queries", 30);
  const int p = flags.GetInt("p", 80);
  const int k = flags.GetInt("k", 20);

  std::printf("=== Ablation: optimization techniques ===\n");
  PreparedData data = PrepareChem(scale);
  const int m = data.features.num_features();
  std::printf("n=%d m=%d p=%d k=%d\n", scale.db_size, m, p, k);

  // 1. DSPM update paths: closed form vs the paper's Algorithms 2-3 vs the
  // literal O(m·n²) Eq. (6)/(7).
  DspmOptions fast;
  fast.p = p;
  fast.max_iters = 10;
  fast.epsilon = 0.0;
  DspmOptions inv = fast;
  inv.update_path = DspmUpdatePath::kInvertedLists;
  DspmOptions naive_opts = fast;
  naive_opts.update_path = DspmUpdatePath::kNaive;
  WallTimer t;
  DspmResult rf = RunDspm(data.features, data.delta, fast);
  double fast_secs = t.Seconds();
  t.Reset();
  DspmResult ri = RunDspm(data.features, data.delta, inv);
  double inv_secs = t.Seconds();
  t.Reset();
  DspmResult rn = RunDspm(data.features, data.delta, naive_opts);
  double naive_secs = t.Seconds();
  double max_weight_diff = 0.0;
  for (size_t r = 0; r < rf.weights.size(); ++r) {
    max_weight_diff = std::max(
        {max_weight_diff, std::abs(rf.weights[r] - ri.weights[r]),
         std::abs(rf.weights[r] - rn.weights[r])});
  }
  std::printf("\n1. DSPM update rule (10 iterations; identical weights)\n");
  PrintHeader("", {"seconds", "slowdown", "wdiff"});
  PrintRow("closed", {fast_secs, 1.0, 0.0});
  PrintRow("Alg.2+3", {inv_secs, inv_secs / std::max(fast_secs, 1e-9), 0.0});
  PrintRow("Eq.6/7", {naive_secs, naive_secs / std::max(fast_secs, 1e-9),
                      max_weight_diff});

  // 2. Stress objective: Algorithm 4 vs naive scan.
  std::vector<double> c(static_cast<size_t>(m), 1.0 / std::sqrt(m));
  t.Reset();
  double e_fast = StressObjective(data.features, c, data.delta, 1);
  double obj_fast = t.Seconds();
  t.Reset();
  double e_naive = StressObjectiveNaive(data.features, c, data.delta);
  double obj_naive = t.Seconds();
  std::printf("\n2. stress objective evaluation (single-threaded)\n");
  PrintHeader("", {"seconds", "speedup", "valdiff"});
  PrintRow("Alg.4", {obj_fast, 1.0, 0.0});
  PrintRow("naive", {obj_naive, obj_naive / std::max(obj_fast, 1e-9),
                     std::abs(e_fast - e_naive)});

  // 3. MCS algorithms on a fixed sample of pairs.
  const int pairs = std::min<int>(300, scale.db_size * 2);
  auto time_mcs = [&](McsAlgorithm algo, uint64_t budget) {
    McsOptions opts;
    opts.algorithm = algo;
    opts.max_nodes = budget;
    WallTimer timer;
    int nonopt = 0;
    for (int s = 0; s < pairs; ++s) {
      int i = (s * 37) % scale.db_size;
      int j = (s * 53 + 11) % scale.db_size;
      if (i == j) j = (j + 1) % scale.db_size;
      McsResult r = MaxCommonEdgeSubgraph(data.db[static_cast<size_t>(i)],
                                          data.db[static_cast<size_t>(j)],
                                          opts);
      nonopt += r.optimal ? 0 : 1;
    }
    return std::pair<double, int>(timer.Seconds() / pairs * 1e3, nonopt);
  };
  auto [auto_ms, auto_bad] = time_mcs(McsAlgorithm::kAuto, 0);
  auto [clique_ms, clique_bad] = time_mcs(McsAlgorithm::kClique, 0);
  auto [mg_ms, mg_bad] = time_mcs(McsAlgorithm::kMcGregor, 300000);
  std::printf("\n3. exact MCS algorithm (per-pair ms over %d pairs)\n",
              pairs);
  PrintHeader("", {"ms/pair", "nonoptimal"});
  PrintRow("auto", {auto_ms, static_cast<double>(auto_bad)});
  PrintRow("clique", {clique_ms, static_cast<double>(clique_bad)});
  PrintRow("mcgregor", {mg_ms, static_cast<double>(mg_bad)});

  // 4. Binary vs weighted final space.
  auto db_bits = ProjectDatabase(data, rf.selected);
  auto q_bits = ProjectQueries(data, rf.selected, nullptr);
  double binary_precision = EvaluateMapped(data, q_bits, db_bits, k).precision;
  std::vector<double> sel_weights;
  for (int r : rf.selected) {
    sel_weights.push_back(rf.weights[static_cast<size_t>(r)]);
  }
  std::vector<Ranking> weighted(q_bits.size());
  for (size_t qi = 0; qi < q_bits.size(); ++qi) {
    weighted[qi] = WeightedRanking(q_bits[qi], db_bits, sel_weights);
  }
  double weighted_precision = EvaluateRankings(data, weighted, k).precision;
  std::printf("\n4. final mapped space (precision@%d)\n", k);
  PrintHeader("", {"precision"});
  PrintRow("binary", {binary_precision});
  PrintRow("weighted", {weighted_precision});
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace gdim

int main(int argc, char** argv) { return gdim::bench::Main(argc, argv); }
