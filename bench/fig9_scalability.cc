// Figure 9 (Exp-6): scalability with database size. (a) precision for all
// algorithms (DSPMap tracking DSPM), (b) query time DSPMap vs Exact,
// (c) indexing time — DSPMap orders of magnitude faster and the only method
// whose cost grows linearly with |DG|.
//
// The paper runs 2k..10k and reports that the quadratic-memory methods die
// beyond 6k on a 3.4GB PC; we scale sizes down (default 100..500, --full
// for 200..1000) and reproduce the asymmetry via the measured cost curves
// and a memory-estimate column (n·(n+m) doubles for DSPM-like methods vs
// b·(b+m) for DSPMap).

#include <cstdio>

#include "bench/harness.h"
#include "common/timer.h"
#include "core/dspmap.h"
#include "core/mapper.h"

namespace gdim {
namespace bench {
namespace {

int Main(int argc, char** argv) {
  Flags flags(argc, argv);
  const bool full = flags.GetBool("full", false);
  const int queries = flags.GetInt("queries", 30);
  const int p = flags.GetInt("p", 100);
  const int k = flags.GetInt("k", 20);
  std::vector<int> sizes =
      full ? std::vector<int>{200, 400, 600, 800, 1000}
           : std::vector<int>{100, 200, 300, 400, 500};
  // Quadratic-cost baselines are only run up to this size (the paper's
  // memory-limit story, scaled).
  const int baseline_cutoff = sizes[sizes.size() / 2];

  std::printf("=== Fig 9 (Exp-6): scalability with |DG| ===\n");
  std::printf("queries=%d p=%d k=%d sizes=", queries, p, k);
  for (int s : sizes) std::printf("%d ", s);
  std::printf("(baselines to %d)\n", baseline_cutoff);

  std::vector<std::string> algos = {"DSPM",  "Original", "Sample",
                                    "DSPMap", "MICI",     "MCFS"};
  std::map<std::string, std::vector<double>> precision, itime;
  std::vector<double> query_dspmap, query_exact, mem_full, mem_dspmap;

  for (int n : sizes) {
    DataScale scale;
    scale.db_size = n;
    scale.num_queries = queries;
    PreparedData data = PrepareChem(scale);
    const int m = data.features.num_features();
    const int b = std::max(20, n / 20);
    std::printf("  n=%d m=%d delta=%.2fs exact=%.2fs\n", n, m,
                data.delta_seconds, data.exact_seconds);
    mem_full.push_back(static_cast<double>(n) * (n + m) * 8 / 1e6);
    mem_dspmap.push_back(static_cast<double>(b) * (b + m) * 8 / 1e6);

    for (const std::string& name : algos) {
      const bool quadratic = name != "DSPMap" && name != "Sample" &&
                             name != "Original";
      if (quadratic && n > baseline_cutoff) {
        precision[name].push_back(0.0);  // "did not finish" marker
        itime[name].push_back(0.0);
        continue;
      }
      double secs = 0.0;
      Result<SelectionOutput> out = Status::Internal("unset");
      if (name == "DSPMap") {
        DspmapOptions opts;
        opts.p = p;
        opts.partition_size = b;
        opts.seed = 1;
        WallTimer t;
        // The real DSPMap path: lazy δ via MCS on demand (not the matrix).
        DspmapResult r = RunDspmap(data.features, data.db,
                                   DissimilarityKind::kDelta2, opts);
        secs = t.Seconds();
        out = SelectionOutput{std::move(r.selected), std::move(r.weights)};
      } else {
        out = RunSelector(name, data, p, 1, &secs);
      }
      GDIM_CHECK(out.ok()) << name;
      auto db_bits = ProjectDatabase(data, out->selected);
      auto q_bits = ProjectQueries(data, out->selected, nullptr);
      precision[name].push_back(
          EvaluateMapped(data, q_bits, db_bits, k).precision);
      itime[name].push_back(secs);
    }

    // (b) per-query time, DSPMap dimension vs exact.
    Result<SelectionOutput> dmap = RunSelector("DSPMap", data, p, 1, nullptr);
    GDIM_CHECK(dmap.ok());
    GraphDatabase dim;
    for (int r : dmap->selected) {
      dim.push_back(data.features.feature_graphs()[static_cast<size_t>(r)]);
    }
    FeatureMapper mapper(std::move(dim));
    auto db_bits = ProjectDatabase(data, dmap->selected);
    WallTimer t;
    for (const Graph& q : data.queries) {
      TopK(MappedRanking(mapper.Map(q), db_bits), k);
    }
    query_dspmap.push_back(t.Seconds() / queries * 1e3);
    t.Reset();
    for (const Graph& q : data.queries) {
      TopK(ExactRanking(q, data.db, DissimilarityKind::kDelta2, 1), k);
    }
    query_exact.push_back(t.Seconds() / queries * 1e3);
  }

  std::vector<std::string> cols;
  for (int s : sizes) cols.push_back(std::to_string(s));
  std::printf("\n(a) precision vs |DG|  (0 = not run: memory/time limit)\n");
  PrintHeader("algo", cols);
  for (const std::string& name : algos) PrintRow(name, precision[name]);

  std::printf("\n(b) query time (ms) vs |DG|\n");
  PrintHeader("", cols);
  PrintRow("DSPMap", query_dspmap);
  PrintRow("Exact", query_exact);

  std::printf("\n(c) indexing time (s) vs |DG|  (0 = not run)\n");
  PrintHeader("algo", cols);
  for (const std::string& name : algos) {
    if (name == "Original" || name == "Sample") continue;
    PrintRow(name, itime[name]);
  }

  std::printf("\nworking-set estimate (MB): full-matrix methods vs DSPMap\n");
  PrintHeader("", cols);
  PrintRow("full", mem_full);
  PrintRow("DSPMap", mem_dspmap);
  std::printf(
      "\nExpected shape (paper): DSPMap tracks DSPM's precision and beats "
      "the other baselines; DSPMap query time is orders of magnitude below "
      "Exact; DSPMap indexing grows ~linearly in |DG| while the others grow "
      "quadratically (and exceed memory at the paper's 6k+).\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace gdim

int main(int argc, char** argv) { return gdim::bench::Main(argc, argv); }
