// Figure 5 (Exp-2): effectiveness on the synthetic (GraphGen) dataset by
// varying top-k. No fingerprint exists for synthetic data, so measures are
// relative to the best value among all algorithms, as in the paper.

#include <cstdio>

#include "bench/effectiveness_common.h"

namespace gdim {
namespace bench {
namespace {

int Main(int argc, char** argv) {
  Flags flags(argc, argv);
  DataScale scale;
  scale.db_size = flags.GetInt("n", 200);
  scale.num_queries = flags.GetInt("queries", 40);
  const int p = flags.GetInt("p", 100);

  GraphGenOptions gen;
  gen.avg_edges = flags.GetDouble("edges", 20.0);
  gen.num_vertex_labels = 20;
  gen.density = flags.GetDouble("density", 0.2);

  std::printf("=== Fig 5 (Exp-2): effectiveness on synthetic dataset ===\n");
  std::printf("n=%d queries=%d p=%d avg_edges=%.0f density=%.2f\n",
              scale.db_size, scale.num_queries, p, gen.avg_edges,
              gen.density);
  PreparedData data = PrepareSynthetic(scale, gen);
  std::printf("m=%d mining=%.2fs delta=%.2fs exact=%.2fs\n",
              data.features.num_features(), data.mining_seconds,
              data.delta_seconds, data.exact_seconds);

  std::vector<int> ks = {20, 40, 60, 80, 100};
  for (int& k : ks) k = std::min(k, scale.db_size);

  EffectivenessResult result = RunEffectiveness(data, p, /*seed=*/1, ks);
  auto benchmark = BenchmarkFromBest(result, ks);
  PrintEffectiveness(result, ks, benchmark);
  std::printf(
      "\nExpected shape (paper): DSPM best; MCFS above NDFS on synthetic "
      "data (no natural clusters); Original nearly as bad as Sample; SFS "
      "worst and slowest.\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace gdim

int main(int argc, char** argv) { return gdim::bench::Main(argc, argv); }
