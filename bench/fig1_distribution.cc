// Figure 1: dissimilarity/distance distribution. (a) all graph pairs within
// DG; (b) pairs between query graphs and DG. Shows that the Euclidean
// distance in DSPM's selected space tracks the δ2 graph dissimilarity while
// the "Original" all-frequent-subgraphs space does not.

#include <cstdio>
#include <numeric>

#include "bench/harness.h"
#include "core/measures.h"
#include "core/objective.h"

namespace gdim {
namespace bench {
namespace {

constexpr int kBins = 20;

// Histogram over [0,1] of the three series: δ, DSPM distance, Original
// distance, for the given pair source.
void PrintDistributions(const char* title, const std::vector<double>& delta,
                        const std::vector<double>& dspm,
                        const std::vector<double>& original) {
  std::printf("\n%s (bin -> fraction of pairs)\n", title);
  PrintHeader("bin", {"delta2", "DSPM", "Original"});
  std::vector<double> hd = HistogramFractions(delta, kBins);
  std::vector<double> hm = HistogramFractions(dspm, kBins);
  std::vector<double> ho = HistogramFractions(original, kBins);
  for (int b = 0; b < kBins; ++b) {
    char label[32];
    std::snprintf(label, sizeof(label), "%.2f", (b + 0.5) / kBins);
    PrintRow(label, {hd[static_cast<size_t>(b)], hm[static_cast<size_t>(b)],
                     ho[static_cast<size_t>(b)]});
  }
}

int Main(int argc, char** argv) {
  Flags flags(argc, argv);
  DataScale scale;
  scale.db_size = flags.GetInt("n", 200);
  scale.num_queries = flags.GetInt("queries", 40);
  const int p = flags.GetInt("p", 100);

  std::printf("=== Fig 1: dissimilarity/distance distribution ===\n");
  std::printf("n=%d queries=%d p=%d\n", scale.db_size, scale.num_queries, p);
  PreparedData data = PrepareChem(scale);
  std::printf("mined features m=%d (mining %.2fs, delta %.2fs)\n",
              data.features.num_features(), data.mining_seconds,
              data.delta_seconds);

  double secs = 0.0;
  Result<SelectionOutput> dspm = RunSelector("DSPM", data, p, 1, &secs);
  GDIM_CHECK(dspm.ok()) << dspm.status().ToString();
  std::vector<int> all(static_cast<size_t>(data.features.num_features()));
  std::iota(all.begin(), all.end(), 0);

  auto db_dspm = ProjectDatabase(data, dspm->selected);
  auto db_orig = ProjectDatabase(data, all);

  // (a) all pairs within DG.
  std::vector<double> va, vm, vo;
  const int n = static_cast<int>(data.db.size());
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      va.push_back(data.delta.at(i, j));
      vm.push_back(BinaryMappedDistance(db_dspm[static_cast<size_t>(i)],
                                        db_dspm[static_cast<size_t>(j)]));
      vo.push_back(BinaryMappedDistance(db_orig[static_cast<size_t>(i)],
                                        db_orig[static_cast<size_t>(j)]));
    }
  }
  PrintDistributions("(a) distribution within DG", va, vm, vo);

  // (b) pairs between queries and DG (structure-preserving view).
  auto q_dspm = ProjectQueries(data, dspm->selected, nullptr);
  auto q_orig = ProjectQueries(data, all, nullptr);
  std::vector<double> qa, qm, qo;
  auto qdelta = QueryDissimilarities(data.queries, data.db);
  for (size_t qi = 0; qi < data.queries.size(); ++qi) {
    for (size_t gi = 0; gi < data.db.size(); ++gi) {
      qa.push_back(qdelta[qi][gi]);
      qm.push_back(BinaryMappedDistance(q_dspm[qi], db_dspm[gi]));
      qo.push_back(BinaryMappedDistance(q_orig[qi], db_orig[gi]));
    }
  }
  PrintDistributions("(b) distribution between queries and DG", qa, qm, qo);

  // Shape check the paper claims: DSPM's histogram should be far closer to
  // δ's than Original's (L1 histogram distance).
  auto l1 = [](const std::vector<double>& x, const std::vector<double>& y) {
    std::vector<double> hx = HistogramFractions(x, kBins);
    std::vector<double> hy = HistogramFractions(y, kBins);
    double acc = 0;
    for (int b = 0; b < kBins; ++b) {
      acc += std::abs(hx[static_cast<size_t>(b)] - hy[static_cast<size_t>(b)]);
    }
    return acc;
  };
  std::printf("\nhistogram L1 distance to delta2 (smaller = better)\n");
  PrintHeader("", {"DSPM", "Original"});
  PrintRow("within-DG", {l1(va, vm), l1(va, vo)});
  PrintRow("query-DG", {l1(qa, qm), l1(qa, qo)});
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace gdim

int main(int argc, char** argv) { return gdim::bench::Main(argc, argv); }
