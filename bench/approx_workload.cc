// Approximate-serving recall gate: the accuracy/latency contract behind
// MODE=approx, proven on a 50k-row corpus and wired into CI. The corpus is
// clustered (prototype fingerprints plus per-bit noise — the structure an
// inverted-file index exploits; uniform random bits have none), and every
// query is answered three ways: exact full scan, approx at the engine's
// default probe width, and approx at NPROBE=all.
//
//   bench_approx_workload [--n=50000 --p=96 --clusters=64 --queries=100
//                          --k=10 --shards=4 --threads=4 --seed=7
//                          --recall-gate=0.9 --scan-gate=0.25]
//
// Everything is seeded, so a given flag set is fully deterministic. Exit
// gates (nonzero on violation):
//   1. NPROBE=all must be bit-identical to MODE=full for every query.
//   2. mean recall@k at the default probe width must be >= --recall-gate.
//   3. the default probe width must scan < --scan-gate of the live rows.

#include <algorithm>
#include <cstdio>
#include <set>
#include <utility>
#include <vector>

#include "common/flags.h"
#include "common/logging.h"
#include "common/random.h"
#include "common/timer.h"
#include "core/index_io.h"
#include "core/topk.h"
#include "graph/graph.h"
#include "server/sharded_engine.h"

namespace gdim {
namespace {

/// Single-vertex features (labels 0..p-1): a fingerprint IS a row's bit
/// vector, so the corpus can be synthesized directly at any scale without
/// mining.
GraphDatabase LabelFeatures(int p) {
  GraphDatabase features;
  for (LabelId r = 0; r < p; ++r) {
    Graph f;
    f.AddVertex(r);
    features.push_back(f);
  }
  return features;
}

std::vector<uint8_t> RandomBits(int p, Rng* rng) {
  std::vector<uint8_t> bits(static_cast<size_t>(p));
  for (auto& bit : bits) bit = rng->UniformU64(2) != 0 ? 1 : 0;
  return bits;
}

/// `base` with each bit flipped with probability 1/denominator.
std::vector<uint8_t> Perturb(const std::vector<uint8_t>& base,
                             uint64_t denominator, Rng* rng) {
  std::vector<uint8_t> bits = base;
  for (auto& bit : bits) {
    if (rng->UniformU64(denominator) == 0) bit = bit != 0 ? 0 : 1;
  }
  return bits;
}

int Main(int argc, char** argv) {
  Flags flags(argc, argv);
  const int n = std::max(100, flags.GetInt("n", 50000));
  const int p = std::max(8, flags.GetInt("p", 96));
  const int clusters = std::max(2, flags.GetInt("clusters", 64));
  const int num_queries = std::max(1, flags.GetInt("queries", 100));
  const int k = std::max(1, flags.GetInt("k", 10));
  const int shards = std::max(1, flags.GetInt("shards", 4));
  const int threads = std::max(1, flags.GetInt("threads", 4));
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 7));
  const double recall_gate = flags.GetDouble("recall-gate", 0.9);
  const double scan_gate = flags.GetDouble("scan-gate", 0.25);

  std::printf(
      "approx_workload: n=%d p=%d clusters=%d queries=%d k=%d shards=%d "
      "threads=%d seed=%llu\n",
      n, p, clusters, num_queries, k, shards, threads,
      static_cast<unsigned long long>(seed));

  // Clustered corpus + queries near the prototypes.
  Rng rng(seed);
  std::vector<std::vector<uint8_t>> prototypes;
  prototypes.reserve(static_cast<size_t>(clusters));
  for (int c = 0; c < clusters; ++c) prototypes.push_back(RandomBits(p, &rng));
  PersistedIndex index;
  index.features = LabelFeatures(p);
  index.db_bits.reserve(static_cast<size_t>(n));
  WallTimer timer;
  for (int i = 0; i < n; ++i) {
    const auto& proto =
        prototypes[rng.UniformU64(static_cast<uint64_t>(clusters))];
    index.db_bits.push_back(Perturb(proto, /*denominator=*/16, &rng));
  }
  std::vector<std::vector<uint8_t>> queries;
  queries.reserve(static_cast<size_t>(num_queries));
  for (int q = 0; q < num_queries; ++q) {
    const auto& proto = prototypes[static_cast<size_t>(q % clusters)];
    queries.push_back(Perturb(proto, /*denominator=*/12, &rng));
  }

  ShardedOptions opts;
  opts.num_shards = shards;
  opts.serve.threads = threads;
  Result<ShardedEngine> engine =
      ShardedEngine::FromIndex(std::move(index), opts);
  GDIM_CHECK(engine.ok()) << engine.status().ToString();
  std::printf("built engine (+IVF, %d buckets) over %d rows in %.2fs\n",
              engine->ivf_buckets(), n, timer.Seconds());

  // Exact reference + full-scan wall time.
  timer.Reset();
  std::vector<Ranking> exact(queries.size());
  for (size_t q = 0; q < queries.size(); ++q) {
    exact[q] =
        engine->QueryMapped(queries[q], {.k = k, .scan_mode = ScanMode::kFull});
  }
  const double full_s = timer.Seconds();

  // Gate 1: NPROBE=all must reproduce the full scan bit for bit.
  for (size_t q = 0; q < queries.size(); ++q) {
    const Ranking all = engine->QueryMapped(
        queries[q],
        {.k = k, .scan_mode = ScanMode::kApprox, .nprobe = kNprobeAll});
    if (all != exact[q]) {
      std::fprintf(stderr,
                   "FAIL: NPROBE=all diverges from MODE=full on query %zu\n",
                   q);
      return 1;
    }
  }

  // Default probe width: recall + scanned fraction + wall time.
  timer.Reset();
  std::vector<Ranking> approx(queries.size());
  long long scanned = 0;
  for (size_t q = 0; q < queries.size(); ++q) {
    ServeQueryStats stats;
    approx[q] = engine->QueryMapped(
        queries[q], {.k = k, .scan_mode = ScanMode::kApprox}, &stats);
    scanned += stats.scanned;
  }
  const double approx_s = timer.Seconds();
  double recall_sum = 0.0;
  for (size_t q = 0; q < queries.size(); ++q) {
    std::set<int> exact_ids;
    for (const RankedResult& r : exact[q]) exact_ids.insert(r.id);
    int hits = 0;
    for (const RankedResult& r : approx[q]) {
      hits += exact_ids.count(r.id) != 0 ? 1 : 0;
    }
    recall_sum += exact[q].empty() ? 1.0
                                   : static_cast<double>(hits) /
                                         static_cast<double>(exact[q].size());
  }
  const double recall = recall_sum / static_cast<double>(queries.size());
  const double scan_frac =
      static_cast<double>(scanned) /
      (static_cast<double>(num_queries) * static_cast<double>(n));
  const double full_qps = static_cast<double>(num_queries) / full_s;
  const double approx_qps = static_cast<double>(num_queries) / approx_s;
  std::printf(
      "full scan:   %7.0f q/s (%.3fs for %d queries)\n"
      "approx scan: %7.0f q/s (%.3fs, %.1f%% of rows scanned, "
      "recall@%d %.3f)\n",
      full_qps, full_s, num_queries, approx_qps, approx_s, scan_frac * 100.0,
      k, recall);
  std::printf("# approx gate: recall=%.3f (>= %.2f) scan_frac=%.3f (< %.2f) "
              "speedup=%.2fx\n",
              recall, recall_gate, scan_frac, scan_gate,
              approx_qps / full_qps);

  if (recall + 1e-9 < recall_gate) {
    std::fprintf(stderr, "FAIL: recall@%d %.3f below the %.2f gate\n", k,
                 recall, recall_gate);
    return 1;
  }
  if (scan_frac >= scan_gate) {
    std::fprintf(stderr,
                 "FAIL: default NPROBE scanned %.1f%% of rows "
                 "(gate < %.0f%%)\n",
                 scan_frac * 100.0, scan_gate * 100.0);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace gdim

int main(int argc, char** argv) { return gdim::Main(argc, argv); }
