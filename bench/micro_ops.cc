// Micro-benchmarks (google-benchmark) for the primitive operations behind
// every experiment: subgraph isomorphism (VF2), exact MCS (both algorithms),
// query mapping, the DSPM iteration kernels, and gSpan mining.

#include <cmath>

#include <benchmark/benchmark.h>

#include "core/dspm.h"
#include "core/mapper.h"
#include "core/objective.h"
#include "datasets/chemgen.h"
#include "isomorphism/vf2.h"
#include "mcs/dissimilarity.h"
#include "mcs/mcs.h"
#include "mining/gspan.h"

namespace gdim {
namespace {

ChemGenOptions DefaultChem(int n) {
  ChemGenOptions opts;
  opts.num_graphs = n;
  return opts;
}

const GraphDatabase& SharedDb() {
  static const GraphDatabase* db =
      new GraphDatabase(GenerateChemDatabase(DefaultChem(80)));
  return *db;
}

const std::vector<FrequentPattern>& SharedPatterns() {
  static const std::vector<FrequentPattern>* patterns = [] {
    MiningOptions opts;
    opts.min_support = 0.1;
    opts.max_edges = 4;
    auto mined = MineFrequentSubgraphs(SharedDb(), opts);
    return new std::vector<FrequentPattern>(std::move(mined.value()));
  }();
  return *patterns;
}

void BM_Vf2SubgraphIso(benchmark::State& state) {
  const GraphDatabase& db = SharedDb();
  const auto& patterns = SharedPatterns();
  size_t pi = 0, gi = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        IsSubgraphIsomorphic(patterns[pi].graph, db[gi]));
    pi = (pi + 1) % patterns.size();
    gi = (gi + 3) % db.size();
  }
}
BENCHMARK(BM_Vf2SubgraphIso);

void BM_McsAuto(benchmark::State& state) {
  const GraphDatabase& db = SharedDb();
  size_t i = 0;
  McsOptions opts;
  opts.algorithm = McsAlgorithm::kAuto;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        MaxCommonEdgeSubgraph(db[i % db.size()], db[(i + 7) % db.size()],
                              opts));
    ++i;
  }
}
BENCHMARK(BM_McsAuto);

void BM_McsClique(benchmark::State& state) {
  const GraphDatabase& db = SharedDb();
  size_t i = 0;
  McsOptions opts;
  opts.algorithm = McsAlgorithm::kClique;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        MaxCommonEdgeSubgraph(db[i % db.size()], db[(i + 7) % db.size()],
                              opts));
    ++i;
  }
}
BENCHMARK(BM_McsClique);

void BM_McsMcGregorBudget(benchmark::State& state) {
  const GraphDatabase& db = SharedDb();
  size_t i = 0;
  McsOptions opts;
  opts.algorithm = McsAlgorithm::kMcGregor;
  opts.max_nodes = 100000;  // budgeted: the unbudgeted tail is unbounded
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        MaxCommonEdgeSubgraph(db[i % db.size()], db[(i + 7) % db.size()],
                              opts));
    ++i;
  }
}
BENCHMARK(BM_McsMcGregorBudget);

void BM_QueryMapping(benchmark::State& state) {
  const auto& patterns = SharedPatterns();
  const int p = static_cast<int>(std::min<size_t>(patterns.size(), 100));
  GraphDatabase dim;
  for (int r = 0; r < p; ++r) dim.push_back(patterns[static_cast<size_t>(r)].graph);
  FeatureMapper mapper(std::move(dim));
  GraphDatabase queries = GenerateChemQueries(DefaultChem(80), 16);
  size_t qi = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(mapper.Map(queries[qi]));
    qi = (qi + 1) % queries.size();
  }
  state.SetLabel("p=" + std::to_string(p));
}
BENCHMARK(BM_QueryMapping);

void BM_StressObjective(benchmark::State& state) {
  const GraphDatabase& db = SharedDb();
  BinaryFeatureDb features = BinaryFeatureDb::FromPatterns(
      static_cast<int>(db.size()), SharedPatterns());
  DissimilarityMatrix delta = DissimilarityMatrix::Compute(db);
  std::vector<double> c(static_cast<size_t>(features.num_features()),
                        1.0 / std::sqrt(features.num_features()));
  for (auto _ : state) {
    benchmark::DoNotOptimize(StressObjective(features, c, delta, 1));
  }
}
BENCHMARK(BM_StressObjective);

void BM_DspmFullRun(benchmark::State& state) {
  const GraphDatabase& db = SharedDb();
  BinaryFeatureDb features = BinaryFeatureDb::FromPatterns(
      static_cast<int>(db.size()), SharedPatterns());
  DissimilarityMatrix delta = DissimilarityMatrix::Compute(db);
  DspmOptions opts;
  opts.p = 50;
  opts.max_iters = static_cast<int>(state.range(0));
  opts.epsilon = 0.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunDspm(features, delta, opts));
  }
}
BENCHMARK(BM_DspmFullRun)->Arg(5)->Arg(15);

void BM_GSpanMining(benchmark::State& state) {
  const GraphDatabase& db = SharedDb();
  MiningOptions opts;
  opts.min_support = 0.1;
  opts.max_edges = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(MineFrequentSubgraphs(db, opts));
  }
}
BENCHMARK(BM_GSpanMining)->Arg(3)->Arg(4)->Arg(5);

void BM_Delta2Pair(benchmark::State& state) {
  const GraphDatabase& db = SharedDb();
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(GraphDissimilarity(
        db[i % db.size()], db[(i + 11) % db.size()]));
    ++i;
  }
}
BENCHMARK(BM_Delta2Pair);

}  // namespace
}  // namespace gdim

BENCHMARK_MAIN();
