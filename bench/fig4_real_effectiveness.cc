// Figure 4 (Exp-1): effectiveness on the real (chemical) dataset. Panels:
// (a) precision, (b) Kendall's tau, (c) rank distance — each vs top-k,
// relative to the dictionary-fingerprint benchmark — and (d) indexing time.

#include <cstdio>

#include "bench/effectiveness_common.h"

namespace gdim {
namespace bench {
namespace {

int Main(int argc, char** argv) {
  Flags flags(argc, argv);
  DataScale scale;
  scale.db_size = flags.GetInt("n", 200);
  scale.num_queries = flags.GetInt("queries", 40);
  const int p = flags.GetInt("p", 100);

  std::printf("=== Fig 4 (Exp-1): effectiveness on real dataset ===\n");
  std::printf("n=%d queries=%d p=%d\n", scale.db_size, scale.num_queries, p);
  PreparedData data = PrepareChem(scale);
  std::printf("m=%d mining=%.2fs delta=%.2fs exact=%.2fs\n",
              data.features.num_features(), data.mining_seconds,
              data.delta_seconds, data.exact_seconds);

  std::vector<int> ks = {20, 40, 60, 80, 100};
  for (int& k : ks) k = std::min(k, scale.db_size);

  EffectivenessResult result = RunEffectiveness(data, p, /*seed=*/1, ks);
  std::vector<Ranking> fingerprint =
      FingerprintRankings(data, /*seed=*/scale.seed, /*bits=*/881);
  auto benchmark = BenchmarkFromRankings(data, fingerprint, ks);
  PrintEffectiveness(result, ks, benchmark);
  std::printf(
      "\nExpected shape (paper): DSPM highest on all three quality panels "
      "and stable in k; MICI/MCFS/UDFS/NDFS above Original; Sample low; "
      "SFS worst; DSPM and MICI fastest to index, SFS slowest.\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace gdim

int main(int argc, char** argv) { return gdim::bench::Main(argc, argv); }
