// Figure 6 (Exp-3): effectiveness and indexing time on synthetic datasets
// when varying (a,c) the average graph size (edges 12..20) and (b,d) the
// average density (0.1..0.3). Quality relative to the per-configuration
// best algorithm, as in Fig 5.

#include <cstdio>

#include "bench/effectiveness_common.h"

namespace gdim {
namespace bench {
namespace {

void RunSweep(const char* title, const std::vector<double>& xs,
              bool vary_size, const DataScale& scale, int p) {
  std::printf("\n%s\n", title);
  std::vector<std::string> algos = EffectivenessAlgorithms();
  std::vector<std::string> x_cols;
  for (double x : xs) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), vary_size ? "%.0f" : "%.2f", x);
    x_cols.push_back(buf);
  }
  // precision[algo][xi], time[algo][xi]
  std::map<std::string, std::vector<double>> precision, itime;
  const int k = 20;
  for (double x : xs) {
    GraphGenOptions gen;
    gen.num_vertex_labels = 20;
    gen.avg_edges = vary_size ? x : 20.0;
    gen.density = vary_size ? 0.2 : x;
    PreparedData data = PrepareSynthetic(scale, gen);
    std::printf("  config %s: m=%d (mining %.2fs delta %.2fs)\n",
                vary_size ? "size" : "density", data.features.num_features(),
                data.mining_seconds, data.delta_seconds);
    EffectivenessResult r = RunEffectiveness(data, p, /*seed=*/1, {k});
    auto benchmark = BenchmarkFromBest(r, {k});
    for (const std::string& name : algos) {
      double rel = r.absolute.at("precision").at(name)[0] /
                   std::max(benchmark.at("precision")[0], 1e-12);
      precision[name].push_back(rel);
      itime[name].push_back(r.indexing_seconds.at(name));
    }
  }
  std::printf("\nprecision (relative) vs %s\n", vary_size ? "size" : "density");
  PrintHeader("algo", x_cols);
  for (const std::string& name : algos) PrintRow(name, precision[name]);
  std::printf("\nindexing time (s) vs %s\n", vary_size ? "size" : "density");
  PrintHeader("algo", x_cols);
  for (const std::string& name : algos) {
    if (name == "Original" || name == "Sample") continue;
    PrintRow(name, itime[name]);
  }
}

int Main(int argc, char** argv) {
  Flags flags(argc, argv);
  DataScale scale;
  scale.db_size = flags.GetInt("n", 100);
  scale.num_queries = flags.GetInt("queries", 30);
  const int p = flags.GetInt("p", 80);

  std::printf("=== Fig 6 (Exp-3): vary graph size and density ===\n");
  std::printf("n=%d queries=%d p=%d k=20\n", scale.db_size,
              scale.num_queries, p);

  RunSweep("(a,c) vary average graph size (edges)", {12, 14, 16, 18, 20},
           /*vary_size=*/true, scale, p);
  RunSweep("(b,d) vary average graph density", {0.1, 0.15, 0.2, 0.25, 0.3},
           /*vary_size=*/false, scale, p);

  std::printf(
      "\nExpected shape (paper): DSPM stays best across both sweeps; other "
      "algorithms' precision decays as graphs grow/densify (more frequent "
      "subgraphs to pick from); indexing time rises with size and density, "
      "DSPM/MCFS scaling linearly in m, MICI/UDFS/NDFS at least "
      "quadratically, SFS slowest.\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace gdim

int main(int argc, char** argv) { return gdim::bench::Main(argc, argv); }
