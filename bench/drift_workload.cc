// Distribution-drift workload: the quality story behind the online
// dimension refresh. A dimension selected over corpus A keeps describing A
// even after churn has replaced most of the database with graphs from a
// shifted distribution B — fingerprints of a world that no longer exists —
// and top-k quality against the exact MCS ranking silently drifts. This
// bench measures exactly that: build over A, churn toward B through the
// serving executor, report recall-vs-brute-force before the refresh, run
// REINDEX (background selection + hot swap, the production path), and
// report recall again on the re-selected dimension.
//
//   bench_drift_workload [--n=80 --churn-frac=0.85 --queries=8 --k=10
//                         --p=16 --minsup=0.2 --maxedges=3 --shards=2
//                         --selector=DSPMap --seed=7]
//
// Everything is seeded (generators, mining order, selection), so a given
// flag set is fully deterministic; the exit gate requires the refreshed
// recall to be no worse than the stale one (the refresh must never hurt on
// a drifted corpus) and the REINDEX itself to succeed.

#include <algorithm>
#include <cstdio>
#include <optional>
#include <utility>
#include <vector>

#include "common/flags.h"
#include "common/logging.h"
#include "common/sync.h"
#include "common/timer.h"
#include "core/index_io.h"
#include "core/topk.h"
#include "datasets/chemgen.h"
#include "reindex/dimension_refresher.h"
#include "server/batch_executor.h"
#include "server/sharded_engine.h"
#include "store/graph_store.h"

namespace gdim {
namespace {

/// Mean top-k recall of the executor's answers against the exact MCS
/// ranking over the live set (frozen in id order, so exact positions map
/// back to external ids).
double MeanRecall(BatchExecutor* executor, const GraphStore& store,
                  const GraphDatabase& queries, int k) {
  FrozenGraphSet live;
  {
    // Callers invoke this between synchronous executor calls, when the
    // dispatcher is idle and every mutation has drained, so this thread
    // may act as the store's writer for the capture.
    ScopedRole store_writer(&store.writer_role());
    live = store.Freeze();
  }
  double total = 0.0;
  for (const Graph& q : queries) {
    Ranking exact = TopK(ExactRanking(q, live.graphs), k);
    for (RankedResult& r : exact) {
      r.id = live.ids[static_cast<size_t>(r.id)];
    }
    Result<Ranking> approx = executor->Query(q, {.k = k});
    GDIM_CHECK(approx.ok()) << approx.status().ToString();
    int overlap = 0;
    for (const RankedResult& a : *approx) {
      for (const RankedResult& e : exact) {
        if (a.id == e.id) {
          ++overlap;
          break;
        }
      }
    }
    total += exact.empty()
                 ? 1.0
                 : static_cast<double>(overlap) /
                       static_cast<double>(exact.size());
  }
  return queries.empty() ? 0.0 : total / static_cast<double>(queries.size());
}

int Main(int argc, char** argv) {
  Flags flags(argc, argv);
  const int n = std::max(8, flags.GetInt("n", 80));
  const double churn_frac =
      std::clamp(flags.GetDouble("churn-frac", 0.85), 0.0, 1.0);
  const int num_queries = std::max(1, flags.GetInt("queries", 8));
  const int k = std::max(1, flags.GetInt("k", 10));
  const int p = std::max(2, flags.GetInt("p", 16));
  const int shards = std::max(1, flags.GetInt("shards", 2));
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 7));

  RefreshOptions refresh;
  refresh.selector = flags.GetString("selector", "DSPMap");
  refresh.p = p;
  refresh.mining.min_support = flags.GetDouble("minsup", 0.2);
  refresh.mining.max_edges = flags.GetInt("maxedges", 3);
  refresh.seed = seed;
  refresh.dspmap.partition_size = 24;
  refresh.dspmap.sample_size = 6;

  // Corpus A and the drifted world B: different scaffold family pools and
  // size ranges, so B's discriminative substructures genuinely differ.
  ChemGenOptions gen_a;
  gen_a.num_graphs = n;
  gen_a.num_families = 4;
  gen_a.min_vertices = 6;
  gen_a.max_vertices = 9;
  gen_a.seed = seed;
  ChemGenOptions gen_b = gen_a;
  gen_b.num_families = 3;
  gen_b.min_vertices = 8;
  gen_b.max_vertices = 12;
  gen_b.seed = seed ^ 0xD81F70ULL;

  const GraphDatabase corpus_a = GenerateChemDatabase(gen_a);
  const GraphDatabase corpus_b = GenerateChemDatabase(gen_b);
  const GraphDatabase queries = GenerateChemQueries(gen_b, num_queries);

  std::printf(
      "drift_workload: n=%d churn=%.0f%% queries=%d k=%d p=%d shards=%d "
      "selector=%s minsup=%.2f maxedges=%d seed=%llu\n",
      n, churn_frac * 100.0, num_queries, k, p, shards,
      refresh.selector.c_str(), refresh.mining.min_support,
      refresh.mining.max_edges, static_cast<unsigned long long>(seed));

  // Build the initial generation over A — the same pipeline REINDEX runs.
  GraphStore store;
  WallTimer timer;
  PersistedIndex index;
  int mined_features = 0;
  {
    // No executor exists yet: Main is the store's writer while it seeds
    // corpus A and freezes the generation-0 build input.
    ScopedRole store_writer(&store.writer_role());
    for (int i = 0; i < n; ++i) {
      GDIM_CHECK(store.Put(i, corpus_a[static_cast<size_t>(i)]).ok());
    }
    Result<RefreshedGeneration> initial =
        BuildGeneration(store.Freeze(), refresh);
    GDIM_CHECK(initial.ok()) << initial.status().ToString();
    index.features = std::move(initial->features);
    index.db_bits = std::move(initial->fingerprints);
    index.ids = std::move(initial->ids);
    mined_features = initial->mined_features;
  }
  ShardedOptions engine_opts;
  engine_opts.num_shards = shards;
  Result<ShardedEngine> engine =
      ShardedEngine::FromIndex(std::move(index), engine_opts);
  GDIM_CHECK(engine.ok()) << engine.status().ToString();
  std::printf("built generation 0 over corpus A in %.2fs (%d mined -> %d dims)\n",
              timer.Seconds(), mined_features, engine->num_features());

  BatchExecutorOptions executor_opts;
  executor_opts.cache_bytes = 1 << 20;
  executor_opts.store = &store;
  executor_opts.refresh = refresh;
  BatchExecutor executor(&*engine, executor_opts);

  // Churn toward B: remove churn_frac of A, insert the same number from B.
  const int moved = static_cast<int>(churn_frac * n);
  timer.Reset();
  for (int i = 0; i < moved; ++i) {
    GDIM_CHECK(executor.Remove(i).ok());
    Result<int> id = executor.Insert(corpus_b[static_cast<size_t>(i)]);
    GDIM_CHECK(id.ok()) << id.status().ToString();
  }
  GDIM_CHECK(executor.Compact().ok());
  std::printf("churned %d/%d graphs toward distribution B in %.2fs\n", moved,
              n, timer.Seconds());

  // Quality on the stale dimension: the fingerprints describe a database
  // that mostly no longer exists.
  timer.Reset();
  const double recall_before = MeanRecall(&executor, store, queries, k);
  const double exact_s = timer.Seconds();
  std::printf("recall@%d vs exact MCS before refresh: %.3f (stale dimension; "
              "exact reference took %.2fs)\n",
              k, recall_before, exact_s);

  // The refresh: background re-selection over the live (B-dominated) set,
  // hot-swapped in.
  timer.Reset();
  Result<ReindexReport> report = executor.Reindex();
  GDIM_CHECK(report.ok()) << report.status().ToString();
  const double reindex_s = timer.Seconds();
  std::printf(
      "REINDEX completed in %.2fs -> generation %llu, %d dims (remapped %d)\n",
      reindex_s, static_cast<unsigned long long>(report->generation),
      report->features, report->remapped);

  const double recall_after = MeanRecall(&executor, store, queries, k);
  std::printf("recall@%d vs exact MCS after refresh:  %.3f (refreshed "
              "dimension)\n",
              k, recall_after);
  std::printf("# drift gate: before=%.3f after=%.3f delta=%+.3f\n",
              recall_before, recall_after, recall_after - recall_before);

  // Deterministic gate (everything above is seeded): the refresh must
  // succeed and must not make a drifted corpus rank worse.
  if (recall_after + 1e-9 < recall_before) {
    std::fprintf(stderr,
                 "FAIL: refreshed dimension ranks worse than the stale one\n");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace gdim

int main(int argc, char** argv) { return gdim::Main(argc, argv); }
