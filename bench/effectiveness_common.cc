#include "bench/effectiveness_common.h"

#include <algorithm>
#include <cstdio>

#include "common/logging.h"

namespace gdim {
namespace bench {

std::vector<std::string> EffectivenessAlgorithms() {
  return {"DSPM", "Original", "Sample", "SFS", "MICI", "MCFS", "UDFS",
          "NDFS"};
}

EffectivenessResult RunEffectiveness(const PreparedData& data, int p,
                                     uint64_t seed,
                                     const std::vector<int>& ks) {
  EffectivenessResult result;
  for (const std::string& name : EffectivenessAlgorithms()) {
    double secs = 0.0;
    Result<SelectionOutput> out = RunSelector(name, data, p, seed, &secs);
    GDIM_CHECK(out.ok()) << name << ": " << out.status().ToString();
    result.indexing_seconds[name] = secs;
    auto db_bits = ProjectDatabase(data, out->selected);
    auto q_bits = ProjectQueries(data, out->selected, nullptr);
    for (int k : ks) {
      Quality q = EvaluateMapped(data, q_bits, db_bits, k);
      result.absolute["precision"][name].push_back(q.precision);
      result.absolute["kendall"][name].push_back(q.kendall_tau);
      result.absolute["rankdist"][name].push_back(q.rank_distance);
    }
    std::printf("  [%s] indexing %.2fs\n", name.c_str(), secs);
  }
  return result;
}

std::map<std::string, std::vector<double>> BenchmarkFromRankings(
    const PreparedData& data, const std::vector<Ranking>& rankings,
    const std::vector<int>& ks) {
  std::map<std::string, std::vector<double>> bench;
  for (int k : ks) {
    Quality q = EvaluateRankings(data, rankings, k);
    bench["precision"].push_back(q.precision);
    bench["kendall"].push_back(q.kendall_tau);
    bench["rankdist"].push_back(q.rank_distance);
  }
  return bench;
}

std::map<std::string, std::vector<double>> BenchmarkFromBest(
    const EffectivenessResult& result, const std::vector<int>& ks) {
  std::map<std::string, std::vector<double>> bench;
  for (const auto& [measure, per_algo] : result.absolute) {
    std::vector<double> best(ks.size(), 1e-12);
    for (const auto& [algo, values] : per_algo) {
      for (size_t i = 0; i < values.size(); ++i) {
        best[i] = std::max(best[i], values[i]);
      }
    }
    bench[measure] = std::move(best);
  }
  return bench;
}

void PrintEffectiveness(
    const EffectivenessResult& result, const std::vector<int>& ks,
    const std::map<std::string, std::vector<double>>& benchmark) {
  const char* panels[] = {"precision", "kendall", "rankdist"};
  const char* titles[] = {"(a) precision", "(b) Kendall's tau",
                          "(c) rank distance"};
  std::vector<std::string> k_cols;
  for (int k : ks) k_cols.push_back("k=" + std::to_string(k));
  for (int panel = 0; panel < 3; ++panel) {
    std::printf("\n%s (relative to benchmark)\n", titles[panel]);
    PrintHeader("algo", k_cols);
    const auto& per_algo = result.absolute.at(panels[panel]);
    const auto& bench = benchmark.at(panels[panel]);
    for (const std::string& name : EffectivenessAlgorithms()) {
      std::vector<double> rel;
      const auto& values = per_algo.at(name);
      for (size_t i = 0; i < values.size(); ++i) {
        rel.push_back(bench[i] > 0 ? values[i] / bench[i] : 0.0);
      }
      PrintRow(name, rel);
    }
  }
  std::printf("\n(d) indexing time (seconds)\n");
  PrintHeader("algo", {"seconds"});
  for (const std::string& name : EffectivenessAlgorithms()) {
    if (name == "Original" || name == "Sample") continue;  // no selection
    PrintRow(name, {result.indexing_seconds.at(name)});
  }
}

}  // namespace bench
}  // namespace gdim
