// Closed-loop load generator for the gdim network serving layer
// (`gdim_tool serve-net`): C connections each send QUERY requests
// back-to-back and wait for the response, which is exactly the traffic
// shape that feeds the server's batch coalescing. Reports end-to-end
// throughput and per-request latency percentiles, and exits nonzero on any
// protocol error — the CI smoke gate.
//
//   bench_net_load --port=P [--host=127.0.0.1] --queries=q.gdb
//                  [--k=10 --connections=4 --requests=400 --allow-reject]
//                  [--repeat-frac=0.0 --zipf-s=1.0 --seed=1]
//                  [--mutate-frac=0.0 --snapshot-path=FILE --reindex]
//                  [--mode=auto|full|approx --nprobe=N|all]
//                  [--trace --json-out=FILE]
//
// The run scrapes the server's METRICS exposition before and after and
// prints the per-stage latency deltas (count/p50/p99 of admission wait,
// MapAll, cache probe, scan, gather, ...) next to the client-side
// percentiles; --json-out embeds them as "server_stages". --trace sends
// every QUERY with TRACE=1 so the per-query breakdown path is exercised
// under full load (each response then carries a TRACE line the workers
// parse and discard).
//
// --repeat-frac turns on the repeated-query mode that exercises the
// server's result cache: each request is, with that probability, drawn
// from a Zipfian distribution (exponent --zipf-s) over the query set —
// hot queries repeat, exactly the locality a cache feeds on — and
// otherwise walks the query set round-robin. The run ends by diffing the
// server's STATS counters so the cache hit rate of *this run* is printed
// next to the latency percentiles, a measured number rather than a claim.
//
// --mutate-frac mixes INSERT/REMOVE churn into the stream: each request
// is, with that probability, a mutation — an INSERT of a query-set graph,
// or a REMOVE of an id this worker inserted earlier (never someone else's,
// so a REMOVE can never legitimately answer NotFound). This is the load
// shape that exercises epoch-based cache invalidation and the reindex
// auto-trigger under concurrency.
//
// --snapshot-path issues one SNAPSHOT on its own connection once half the
// requests are done, while every worker keeps hammering: its duration and
// the workers' uninterrupted completion are the load-test evidence that
// snapshots no longer stall the dispatcher. --reindex does the same with a
// REINDEX: the run fails unless the dimension refresh completes OK while
// the workers churn — the smoke-level proof that a reindex neither stalls
// nor corrupts live traffic.
//
// --mode injects `MODE=<value>` into every pre-encoded QUERY line (and
// --nprobe, approx-only, injects `NPROBE=<n|all>`), so the load shape can
// exercise the approximate serving path end to end over the wire. The run
// prints the server's approx counter deltas (queries / candidates scanned /
// rows pruned) next to the latency numbers — the CI net smoke greps them to
// prove MODE=approx requests actually took the pruned path.
//
// An ERR ResourceExhausted response is backpressure, not a protocol error;
// it fails the run only without --allow-reject (a correctly provisioned
// smoke run must see zero of either).

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/flags.h"
#include "common/histogram.h"
#include "common/random.h"
#include "common/timer.h"
#include "graph/graph_io.h"
#include "server/net_socket.h"
#include "server/wire.h"

namespace gdim {
namespace {

/// One request/response exchange on a fresh connection (STATS probes, the
/// mid-run SNAPSHOT). Empty string on any failure.
std::string OneShotRpc(const std::string& host, int port,
                       const std::string& request) {
  Result<ScopedFd> conn = ConnectTcp(host, port);
  if (!conn.ok()) return "";
  if (!SendAll(conn->get(), request + "\n").ok()) return "";
  LineReader reader(conn->get());
  Result<std::optional<std::string>> response = reader.ReadLine();
  if (!response.ok() || !response->has_value()) return "";
  return **response;
}

/// One METRICS scrape on a fresh connection: the multi-line Prometheus
/// exposition up to (excluding) its '# EOF' terminator. Empty on failure,
/// including a scrape truncated before the terminator.
std::string ScrapeMetrics(const std::string& host, int port) {
  Result<ScopedFd> conn = ConnectTcp(host, port);
  if (!conn.ok()) return "";
  if (!SendAll(conn->get(), "METRICS\n").ok()) return "";
  LineReader reader(conn->get());
  std::string text;
  for (;;) {
    Result<std::optional<std::string>> line = reader.ReadLine();
    if (!line.ok() || !line->has_value()) return "";
    if (**line == "# EOF") return text;
    text += **line;
    text += '\n';
  }
}

/// A histogram family parsed out of exposition text, with all label series
/// (the per-kernel scan histograms) merged into one distribution.
struct ScrapedHistogram {
  std::vector<double> bounds;    ///< finite upper bounds, ascending
  std::vector<uint64_t> counts;  ///< per-bucket, bounds.size()+1 (overflow)
  double sum = 0.0;
};

/// Parses one histogram family by name from Prometheus exposition text.
/// Cumulative bucket lines are de-cumulated per label series and summed
/// across series. nullopt when the family is absent or malformed.
std::optional<ScrapedHistogram> ParseScrapedHistogram(
    const std::string& text, const std::string& name) {
  const std::string bucket_prefix = name + "_bucket{";
  const std::string sum_prefix = name + "_sum";
  ScrapedHistogram out;
  // Per-series (le, cumulative) pairs in exposition (ascending le) order;
  // the key is the label body with the trailing le pair stripped.
  std::map<std::string, std::vector<std::pair<double, uint64_t>>> series;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind(bucket_prefix, 0) == 0) {
      const size_t le = line.find("le=\"");
      const size_t close = line.find('}');
      if (le == std::string::npos || close == std::string::npos) continue;
      const size_t le_end = line.find('"', le + 4);
      const std::string le_str = line.substr(le + 4, le_end - (le + 4));
      const std::string key =
          line.substr(bucket_prefix.size(), le - bucket_prefix.size());
      const double bound = le_str == "+Inf"
                               ? std::numeric_limits<double>::infinity()
                               : std::strtod(le_str.c_str(), nullptr);
      series[key].emplace_back(
          bound, std::strtoull(line.c_str() + close + 2, nullptr, 10));
    } else if (line.rfind(sum_prefix, 0) == 0) {
      out.sum += std::strtod(line.c_str() + line.rfind(' ') + 1, nullptr);
    }
  }
  if (series.empty()) return std::nullopt;
  for (const auto& [key, cums] : series) {
    if (out.bounds.empty()) {
      for (size_t i = 0; i + 1 < cums.size(); ++i) {
        out.bounds.push_back(cums[i].first);
      }
      out.counts.assign(cums.size(), 0);
    }
    if (cums.size() != out.counts.size()) return std::nullopt;
    uint64_t prev = 0;
    for (size_t i = 0; i < cums.size(); ++i) {
      if (cums[i].second < prev) return std::nullopt;  // non-monotone
      out.counts[i] += cums[i].second - prev;
      prev = cums[i].second;
    }
  }
  return out;
}

/// Every `gdim_stage_*_usec` histogram family declared in the exposition,
/// in its (sorted) emission order.
std::vector<std::string> StageHistogramNames(const std::string& text) {
  std::vector<std::string> names;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("# TYPE gdim_stage_", 0) == 0 &&
        line.size() > 17 &&
        line.compare(line.size() - 10, 10, " histogram") == 0) {
      names.push_back(line.substr(7, line.size() - 17));
    }
  }
  return names;
}

struct WorkerResult {
  std::vector<double> latencies_ms;
  long long ok = 0;
  long long mutations = 0;  ///< of the ok count, INSERT/REMOVE requests
  long long rejected = 0;
  long long errors = 0;
  std::string first_error;
};

/// Zipfian sampler over ranks 0..n-1: P(rank) ∝ 1/(rank+1)^s. Hot, skewed
/// repetition — the canonical repeated-query shape for cache measurement.
class ZipfSampler {
 public:
  ZipfSampler(size_t n, double s) {
    cumulative_.reserve(n);
    double total = 0.0;
    for (size_t rank = 0; rank < n; ++rank) {
      total += std::pow(static_cast<double>(rank + 1), -s);
      cumulative_.push_back(total);
    }
  }

  size_t Sample(Rng* rng) const {
    const double u = rng->UniformDouble() * cumulative_.back();
    size_t lo = 0, hi = cumulative_.size() - 1;
    while (lo < hi) {
      const size_t mid = (lo + hi) / 2;
      if (cumulative_[mid] < u) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

 private:
  std::vector<double> cumulative_;
};

void RunWorker(const std::string& host, int port,
               const std::vector<std::string>& request_lines,
               const std::vector<std::string>& insert_lines,
               std::atomic<long long>* next_request, long long total_requests,
               double repeat_frac, double mutate_frac, bool trace,
               const ZipfSampler* zipf, uint64_t seed, WorkerResult* result) {
  auto fail = [result](const std::string& message) {
    ++result->errors;
    if (result->first_error.empty()) result->first_error = message;
  };
  Result<ScopedFd> conn = ConnectTcp(host, port);
  if (!conn.ok()) {
    fail(conn.status().ToString());
    return;
  }
  Rng rng(seed);
  LineReader reader(conn->get());
  // Ids this worker inserted and has not yet removed. Workers only remove
  // their own inserts, so a REMOVE can never race another worker into a
  // legitimate NotFound.
  std::vector<int> owned_ids;
  for (;;) {
    const long long i = next_request->fetch_add(1);
    if (i >= total_requests) return;
    const bool mutate = mutate_frac > 0.0 && rng.Bernoulli(mutate_frac);
    const bool remove = mutate && !owned_ids.empty() && rng.Bernoulli(0.5);
    // Pre-encoded lines are sent by pointer — the closed-loop hot path
    // stays pure socket I/O; only a REMOVE builds its line (the id is
    // dynamic).
    std::string remove_line;
    const std::string* line;
    if (remove) {
      remove_line = "REMOVE " + std::to_string(owned_ids.back()) + "\n";
      line = &remove_line;
    } else if (mutate) {
      line = &insert_lines[rng.UniformU64(insert_lines.size())];
    } else {
      const size_t which =
          repeat_frac > 0.0 && rng.Bernoulli(repeat_frac)
              ? zipf->Sample(&rng)
              : static_cast<size_t>(i) % request_lines.size();
      line = &request_lines[which];
    }
    WallTimer timer;
    if (Status sent = SendAll(conn->get(), *line); !sent.ok()) {
      fail(sent.ToString());
      return;
    }
    Result<std::optional<std::string>> response = reader.ReadLine();
    if (!response.ok()) {
      fail(response.status().ToString());
      return;
    }
    if (!response->has_value()) {
      fail("server closed the connection mid-run");
      return;
    }
    // A traced query answers two lines: 'TRACE ...' then the OK line. A
    // failed traced query answers only its ERR line, so the extra read is
    // conditional on actually seeing the TRACE prefix.
    if (trace && !mutate && (*response)->rfind("TRACE ", 0) == 0) {
      if (StatsField(**response, "total") < 0) {
        fail("malformed trace line '" + **response + "'");
        return;
      }
      response = reader.ReadLine();
      if (!response.ok() || !response->has_value()) {
        fail("traced query lost its result line");
        return;
      }
    }
    if (mutate) {
      // INSERT answers "OK <id>", REMOVE answers "OK removed <id>"; both
      // reject with a typed ERR line under backpressure.
      const std::string& r = **response;
      if (r.rfind("OK ", 0) == 0) {
        if (remove) {
          owned_ids.pop_back();
        } else {
          owned_ids.push_back(
              static_cast<int>(std::strtol(r.c_str() + 3, nullptr, 10)));
        }
        result->latencies_ms.push_back(timer.Millis());
        ++result->ok;
        ++result->mutations;
      } else if (r.find("ResourceExhausted") != std::string::npos) {
        ++result->rejected;
      } else {
        fail("mutation answered '" + r + "'");
      }
      continue;
    }
    Result<Ranking> ranking = ParseRankingResponse(**response);
    if (ranking.ok()) {
      result->latencies_ms.push_back(timer.Millis());
      ++result->ok;
    } else if (ranking.status().code() == StatusCode::kResourceExhausted) {
      ++result->rejected;
    } else {
      fail(ranking.status().ToString());
    }
  }
}

int Main(int argc, char** argv) {
  Flags flags(argc, argv);
  const std::string host = flags.GetString("host", "127.0.0.1");
  const int port = flags.GetInt("port", 0);
  const std::string queries_path = flags.GetString("queries", "");
  const int k = flags.GetInt("k", 10);
  const int connections = flags.GetInt("connections", 4);
  const long long requests = flags.GetInt("requests", 400);
  const bool allow_reject = flags.GetBool("allow-reject", false);
  const double repeat_frac = flags.GetDouble("repeat-frac", 0.0);
  const double mutate_frac = flags.GetDouble("mutate-frac", 0.0);
  const double zipf_s = flags.GetDouble("zipf-s", 1.0);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
  const std::string snapshot_path = flags.GetString("snapshot-path", "");
  const bool reindex = flags.GetBool("reindex", false);
  const std::string json_out = flags.GetString("json-out", "");
  const bool trace = flags.GetBool("trace", false);
  const std::string mode = flags.GetString("mode", "");
  const std::string nprobe = flags.GetString("nprobe", "");
  const bool mode_valid =
      mode.empty() || mode == "auto" || mode == "full" || mode == "approx";
  // NPROBE is approx-only on the wire; reject the flag combination here
  // instead of shipping 400 requests the server will all reject.
  const bool nprobe_valid =
      nprobe.empty() ||
      (mode == "approx" &&
       (nprobe == "all" || std::strtol(nprobe.c_str(), nullptr, 10) >= 1));
  if (port <= 0 || port > 65535 || queries_path.empty() || k < 0 ||
      connections < 1 || requests < 1 || repeat_frac < 0.0 ||
      repeat_frac > 1.0 || mutate_frac < 0.0 || mutate_frac > 1.0 ||
      zipf_s < 0.0 || !mode_valid || !nprobe_valid) {
    std::fprintf(stderr,
                 "usage: bench_net_load --port=P --queries=FILE "
                 "[--host=127.0.0.1 --k=10 --connections=4 --requests=400 "
                 "--repeat-frac=0.0 --mutate-frac=0.0 --zipf-s=1.0 --seed=1 "
                 "--snapshot-path=FILE --reindex --allow-reject "
                 "--mode=auto|full|approx --nprobe=N|all (approx only) "
                 "--trace --json-out=FILE]\n");
    return 2;
  }
  Result<GraphDatabase> queries = ReadGraphFile(queries_path);
  if (!queries.ok() || queries->empty()) {
    std::fprintf(stderr, "error: cannot load queries from %s: %s\n",
                 queries_path.c_str(),
                 queries.ok() ? "file holds no graphs"
                              : queries.status().ToString().c_str());
    return 1;
  }
  // Pre-encode every request line once; workers then only do socket I/O.
  // --mode / --nprobe become KEY=VALUE tokens between the k and the graph.
  std::string query_opts;
  if (!mode.empty()) query_opts += " MODE=" + mode;
  if (!nprobe.empty()) query_opts += " NPROBE=" + nprobe;
  if (trace) query_opts += " TRACE=1";
  std::vector<std::string> request_lines;
  std::vector<std::string> insert_lines;
  request_lines.reserve(queries->size());
  insert_lines.reserve(queries->size());
  for (const Graph& q : *queries) {
    request_lines.push_back("QUERY " + std::to_string(k) + query_opts + " " +
                            EncodeGraphInline(q) + "\n");
    insert_lines.push_back("INSERT " + EncodeGraphInline(q) + "\n");
  }

  const ZipfSampler zipf(request_lines.size(), zipf_s);
  const std::string stats_before = OneShotRpc(host, port, "STATS");
  const std::string metrics_before = ScrapeMetrics(host, port);

  std::atomic<long long> next_request{0};
  std::atomic<int> workers_alive{connections};
  std::vector<WorkerResult> results(static_cast<size_t>(connections));
  std::vector<std::thread> workers;
  workers.reserve(static_cast<size_t>(connections));
  WallTimer wall;
  for (int c = 0; c < connections; ++c) {
    workers.emplace_back([&, c] {
      RunWorker(host, port, request_lines, insert_lines, &next_request,
                requests, repeat_frac, mutate_frac, trace, &zipf,
                seed * 1000003 + static_cast<uint64_t>(c),
                &results[static_cast<size_t>(c)]);
      --workers_alive;
    });
  }
  // The snapshot probe: once half the requests are done — sustained load on
  // both sides of the freeze — issue one SNAPSHOT on its own connection and
  // time it. The workers never pause; their clean completion alongside this
  // is the smoke-level proof that snapshots do not stall the dispatcher.
  // Workers that die early (server gone) stop consuming tickets, so the
  // wait also exits when none are left — a broken run fails, never hangs.
  double snapshot_ms = -1.0;
  std::string snapshot_response;
  std::thread snapshotter;
  if (!snapshot_path.empty()) {
    snapshotter = std::thread([&] {
      while (next_request.load() < requests / 2 &&
             workers_alive.load() > 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      WallTimer timer;
      snapshot_response = OneShotRpc(host, port, "SNAPSHOT " + snapshot_path);
      snapshot_ms = timer.Millis();
    });
  }
  // The reindex probe mirrors the snapshot probe: once half the requests
  // are done, ask the server to re-select its dimension over the live
  // (now churned) corpus on its own connection. Workers never pause; their
  // clean completion — queries answered before, during, and after the
  // generation swap — is the load-level proof that a reindex does not
  // stall or corrupt serving.
  double reindex_ms = -1.0;
  std::string reindex_response;
  std::thread reindexer;
  if (reindex) {
    reindexer = std::thread([&] {
      while (next_request.load() < requests / 2 && workers_alive.load() > 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      WallTimer timer;
      reindex_response = OneShotRpc(host, port, "REINDEX");
      reindex_ms = timer.Millis();
    });
  }
  for (std::thread& w : workers) w.join();
  // Sample the wall clock before waiting on the probes: a snapshot or
  // reindex tail that outlasts the workers must not deflate the reported
  // qps.
  const double seconds = wall.Seconds();
  if (snapshotter.joinable()) snapshotter.join();
  if (reindexer.joinable()) reindexer.join();
  const std::string stats_after = OneShotRpc(host, port, "STATS");
  const std::string metrics_after = ScrapeMetrics(host, port);

  long long ok = 0, mutations = 0, rejected = 0, errors = 0;
  std::vector<double> latencies;
  std::string first_error;
  for (const WorkerResult& r : results) {
    ok += r.ok;
    mutations += r.mutations;
    rejected += r.rejected;
    errors += r.errors;
    latencies.insert(latencies.end(), r.latencies_ms.begin(),
                     r.latencies_ms.end());
    if (first_error.empty()) first_error = r.first_error;
  }
  const LatencySummary summary = SummarizeLatencies(std::move(latencies));
  std::printf(
      "# net_load %s:%d: %lld requests over %d connections in %.2fs "
      "(%.0f req/s), %s\n",
      host.c_str(), port, ok + rejected + errors, connections, seconds,
      seconds > 0 ? static_cast<double>(ok) / seconds : 0.0,
      FormatLatencySummaryMs(summary).c_str());
  std::printf("# ok=%lld (mutations=%lld) rejected=%lld errors=%lld\n", ok,
              mutations, rejected, errors);

  // Cache hit rate of THIS run, from the server's own counters (STATS
  // before/after delta) — the measured speedup evidence for the
  // repeated-query mode. Old servers without the fields just skip the line.
  if (!stats_before.empty() && !stats_after.empty()) {
    const long long hits = StatsField(stats_after, "cache_hits") -
                           StatsField(stats_before, "cache_hits");
    const long long misses = StatsField(stats_after, "cache_misses") -
                             StatsField(stats_before, "cache_misses");
    if (StatsField(stats_after, "cache_hits") >= 0 && hits + misses > 0) {
      std::printf("# cache: hits=%lld misses=%lld hit_rate=%.1f%%\n", hits,
                  misses,
                  100.0 * static_cast<double>(hits) /
                      static_cast<double>(hits + misses));
    }
  }
  // Approx serving counter deltas: the CI net smoke greps this line to
  // prove MODE=approx traffic actually took the pruned path (queries
  // counted, rows pruned) rather than silently falling back to full scans.
  if (mode == "approx" && !stats_before.empty() && !stats_after.empty() &&
      StatsField(stats_after, "approx_queries") >= 0) {
    std::printf(
        "# approx: queries=%lld candidates_scanned=%lld rows_pruned=%lld "
        "ivf_buckets=%lld\n",
        StatsField(stats_after, "approx_queries") -
            StatsField(stats_before, "approx_queries"),
        StatsField(stats_after, "approx_candidates_scanned") -
            StatsField(stats_before, "approx_candidates_scanned"),
        StatsField(stats_after, "approx_rows_pruned") -
            StatsField(stats_before, "approx_rows_pruned"),
        StatsField(stats_after, "ivf_buckets"));
  }
  // Server-side per-stage latency deltas: where THIS run's server time went,
  // from the METRICS scrape before/after. Printed next to the client-side
  // percentiles and embedded in --json-out as "server_stages" so the CI
  // trend file records where server time goes across PRs.
  std::string stage_json;
  if (!metrics_before.empty() && !metrics_after.empty()) {
    for (const std::string& name : StageHistogramNames(metrics_after)) {
      std::optional<ScrapedHistogram> after =
          ParseScrapedHistogram(metrics_after, name);
      if (!after.has_value()) continue;
      std::vector<uint64_t> counts = after->counts;
      double sum = after->sum;
      // A stage family absent from the pre-run scrape deltas from zero
      // (families appear lazily with their first sample).
      if (std::optional<ScrapedHistogram> before =
              ParseScrapedHistogram(metrics_before, name);
          before.has_value() && before->counts.size() == counts.size()) {
        for (size_t i = 0; i < counts.size(); ++i) {
          counts[i] -= before->counts[i];
        }
        sum -= before->sum;
      }
      BucketHistogram delta(after->bounds, std::move(counts), sum);
      if (delta.count() == 0) continue;
      // gdim_stage_<stage>_usec -> <stage>
      const std::string stage = name.substr(11, name.size() - 16);
      std::printf("# stage %s: count=%llu p50=%.0fus p99=%.0fus\n",
                  stage.c_str(),
                  static_cast<unsigned long long>(delta.count()),
                  delta.Quantile(0.5), delta.Quantile(0.99));
      char entry[192];
      std::snprintf(entry, sizeof(entry),
                    "%s    \"%s\": {\"count\": %llu, \"p50_usec\": %.1f, "
                    "\"p99_usec\": %.1f}",
                    stage_json.empty() ? "" : ",\n", stage.c_str(),
                    static_cast<unsigned long long>(delta.count()),
                    delta.Quantile(0.5), delta.Quantile(0.99));
      stage_json += entry;
    }
  }
  if (!snapshot_path.empty()) {
    const bool snapshot_ok = snapshot_response == "OK snapshot";
    std::printf("# snapshot: %s in %.1fms under load (response '%s')\n",
                snapshot_ok ? "completed" : "FAILED", snapshot_ms,
                snapshot_response.c_str());
    if (!snapshot_ok) return 1;
  }
  if (reindex) {
    const bool reindex_ok =
        reindex_response.rfind("OK reindexed ", 0) == 0;
    std::printf("# reindex: %s in %.1fms under load (response '%s')\n",
                reindex_ok ? "completed" : "FAILED", reindex_ms,
                reindex_response.c_str());
    if (!reindex_ok) return 1;
  }

  // Machine-readable results for CI trend tracking. The kernel is the
  // server's, not this process's, so it comes out of the STATS line.
  if (!json_out.empty()) {
    std::string kernel = "unknown";
    const size_t pos = stats_after.find(" kernel=");
    if (pos != std::string::npos) {
      const size_t begin = pos + 8;
      const size_t end = stats_after.find(' ', begin);
      kernel = stats_after.substr(begin, end == std::string::npos
                                             ? std::string::npos
                                             : end - begin);
    }
    std::FILE* f = std::fopen(json_out.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "error: cannot open %s for writing\n",
                   json_out.c_str());
      return 1;
    }
    std::fprintf(f,
                 "{\n  \"bench\": \"net_load\",\n"
                 "  \"connections\": %d, \"requests\": %lld, \"k\": %d,\n"
                 "  \"kernel\": \"%s\",\n  \"qps\": %.1f,\n"
                 "  \"p50_ms\": %.4f, \"p99_ms\": %.4f,\n"
                 "  \"ok\": %lld, \"rejected\": %lld, \"errors\": %lld,\n"
                 "  \"server_stages\": {%s%s%s}\n}\n",
                 connections, requests, k, kernel.c_str(),
                 seconds > 0 ? static_cast<double>(ok) / seconds : 0.0,
                 summary.p50, summary.p99, ok, rejected, errors,
                 stage_json.empty() ? "" : "\n", stage_json.c_str(),
                 stage_json.empty() ? "" : "\n  ");
    std::fclose(f);
    std::printf("# wrote %s\n", json_out.c_str());
  }

  if (!first_error.empty()) {
    std::fprintf(stderr, "first error: %s\n", first_error.c_str());
  }
  if (errors > 0) return 1;
  if (rejected > 0 && !allow_reject) return 1;
  return 0;
}

}  // namespace
}  // namespace gdim

int main(int argc, char** argv) { return gdim::Main(argc, argv); }
