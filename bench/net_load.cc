// Closed-loop load generator for the gdim network serving layer
// (`gdim_tool serve-net`): C connections each send QUERY requests
// back-to-back and wait for the response, which is exactly the traffic
// shape that feeds the server's batch coalescing. Reports end-to-end
// throughput and per-request latency percentiles, and exits nonzero on any
// protocol error — the CI smoke gate.
//
//   bench_net_load --port=P [--host=127.0.0.1] --queries=q.gdb
//                  [--k=10 --connections=4 --requests=400 --allow-reject]
//
// An ERR ResourceExhausted response is backpressure, not a protocol error;
// it fails the run only without --allow-reject (a correctly provisioned
// smoke run must see zero of either).

#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "common/flags.h"
#include "common/histogram.h"
#include "common/timer.h"
#include "graph/graph_io.h"
#include "server/net_socket.h"
#include "server/wire.h"

namespace gdim {
namespace {

struct WorkerResult {
  std::vector<double> latencies_ms;
  long long ok = 0;
  long long rejected = 0;
  long long errors = 0;
  std::string first_error;
};

void RunWorker(const std::string& host, int port,
               const std::vector<std::string>& request_lines,
               std::atomic<long long>* next_request, long long total_requests,
               WorkerResult* result) {
  auto fail = [result](const std::string& message) {
    ++result->errors;
    if (result->first_error.empty()) result->first_error = message;
  };
  Result<ScopedFd> conn = ConnectTcp(host, port);
  if (!conn.ok()) {
    fail(conn.status().ToString());
    return;
  }
  LineReader reader(conn->get());
  for (;;) {
    const long long i = next_request->fetch_add(1);
    if (i >= total_requests) return;
    const std::string& line =
        request_lines[static_cast<size_t>(i) % request_lines.size()];
    WallTimer timer;
    if (Status sent = SendAll(conn->get(), line); !sent.ok()) {
      fail(sent.ToString());
      return;
    }
    Result<std::optional<std::string>> response = reader.ReadLine();
    if (!response.ok()) {
      fail(response.status().ToString());
      return;
    }
    if (!response->has_value()) {
      fail("server closed the connection mid-run");
      return;
    }
    Result<Ranking> ranking = ParseRankingResponse(**response);
    if (ranking.ok()) {
      result->latencies_ms.push_back(timer.Millis());
      ++result->ok;
    } else if (ranking.status().code() == StatusCode::kResourceExhausted) {
      ++result->rejected;
    } else {
      fail(ranking.status().ToString());
    }
  }
}

int Main(int argc, char** argv) {
  Flags flags(argc, argv);
  const std::string host = flags.GetString("host", "127.0.0.1");
  const int port = flags.GetInt("port", 0);
  const std::string queries_path = flags.GetString("queries", "");
  const int k = flags.GetInt("k", 10);
  const int connections = flags.GetInt("connections", 4);
  const long long requests = flags.GetInt("requests", 400);
  const bool allow_reject = flags.GetBool("allow-reject", false);
  if (port <= 0 || port > 65535 || queries_path.empty() || k < 0 ||
      connections < 1 || requests < 1) {
    std::fprintf(stderr,
                 "usage: bench_net_load --port=P --queries=FILE "
                 "[--host=127.0.0.1 --k=10 --connections=4 --requests=400 "
                 "--allow-reject]\n");
    return 2;
  }
  Result<GraphDatabase> queries = ReadGraphFile(queries_path);
  if (!queries.ok() || queries->empty()) {
    std::fprintf(stderr, "error: cannot load queries from %s: %s\n",
                 queries_path.c_str(),
                 queries.ok() ? "file holds no graphs"
                              : queries.status().ToString().c_str());
    return 1;
  }
  // Pre-encode every request line once; workers then only do socket I/O.
  std::vector<std::string> request_lines;
  request_lines.reserve(queries->size());
  for (const Graph& q : *queries) {
    request_lines.push_back("QUERY " + std::to_string(k) + " " +
                            EncodeGraphInline(q) + "\n");
  }

  std::atomic<long long> next_request{0};
  std::vector<WorkerResult> results(static_cast<size_t>(connections));
  std::vector<std::thread> workers;
  workers.reserve(static_cast<size_t>(connections));
  WallTimer wall;
  for (int c = 0; c < connections; ++c) {
    workers.emplace_back(RunWorker, host, port, std::cref(request_lines),
                         &next_request, requests,
                         &results[static_cast<size_t>(c)]);
  }
  for (std::thread& w : workers) w.join();
  const double seconds = wall.Seconds();

  long long ok = 0, rejected = 0, errors = 0;
  std::vector<double> latencies;
  std::string first_error;
  for (const WorkerResult& r : results) {
    ok += r.ok;
    rejected += r.rejected;
    errors += r.errors;
    latencies.insert(latencies.end(), r.latencies_ms.begin(),
                     r.latencies_ms.end());
    if (first_error.empty()) first_error = r.first_error;
  }
  const LatencySummary summary = SummarizeLatencies(std::move(latencies));
  std::printf(
      "# net_load %s:%d: %lld requests over %d connections in %.2fs "
      "(%.0f req/s), %s\n",
      host.c_str(), port, ok + rejected + errors, connections, seconds,
      seconds > 0 ? static_cast<double>(ok) / seconds : 0.0,
      FormatLatencySummaryMs(summary).c_str());
  std::printf("# ok=%lld rejected=%lld errors=%lld\n", ok, rejected, errors);
  if (!first_error.empty()) {
    std::fprintf(stderr, "first error: %s\n", first_error.c_str());
  }
  if (errors > 0) return 1;
  if (rejected > 0 && !allow_reject) return 1;
  return 0;
}

}  // namespace
}  // namespace gdim

int main(int argc, char** argv) { return gdim::Main(argc, argv); }
