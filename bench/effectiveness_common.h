#ifndef GDIM_BENCH_EFFECTIVENESS_COMMON_H_
#define GDIM_BENCH_EFFECTIVENESS_COMMON_H_

#include <map>
#include <string>
#include <vector>

#include "bench/harness.h"

namespace gdim {
namespace bench {

/// Shared driver for the Exp-1/Exp-2 effectiveness figures (Fig 4 and 5):
/// runs every selection algorithm once, evaluates precision / Kendall tau /
/// rank distance across the top-k sweep, and reports values relative to a
/// benchmark (fingerprint rankings on the real dataset; per-measure best on
/// synthetic). Also prints the per-algorithm indexing time panel (d).
struct EffectivenessResult {
  // measure -> algorithm -> value per k.
  std::map<std::string, std::map<std::string, std::vector<double>>> absolute;
  std::map<std::string, double> indexing_seconds;
};

/// Algorithms in the paper's Fig 4/5 legend order.
std::vector<std::string> EffectivenessAlgorithms();

/// Runs all algorithms over the k sweep.
EffectivenessResult RunEffectiveness(const PreparedData& data, int p,
                                     uint64_t seed,
                                     const std::vector<int>& ks);

/// Prints the three quality panels relative to `benchmark` (measure ->
/// per-k values) and the indexing-time panel.
void PrintEffectiveness(
    const EffectivenessResult& result, const std::vector<int>& ks,
    const std::map<std::string, std::vector<double>>& benchmark);

/// Benchmark series from explicit rankings (fingerprint).
std::map<std::string, std::vector<double>> BenchmarkFromRankings(
    const PreparedData& data, const std::vector<Ranking>& rankings,
    const std::vector<int>& ks);

/// Benchmark series = per-measure, per-k max over all algorithms.
std::map<std::string, std::vector<double>> BenchmarkFromBest(
    const EffectivenessResult& result, const std::vector<int>& ks);

}  // namespace bench
}  // namespace gdim

#endif  // GDIM_BENCH_EFFECTIVENESS_COMMON_H_
