// Figure 7 (Exp-4): query efficiency by query size |V(q)|. (a) DSPM vs
// Original (query time = VF2 feature matching + multidimensional scan;
// Original pays for all m features), (b) DSPM vs the exact MCS-based
// algorithm (orders of magnitude slower).

#include <cstdio>
#include <numeric>

#include "bench/harness.h"
#include "common/timer.h"
#include "core/mapper.h"

namespace gdim {
namespace bench {
namespace {

int Main(int argc, char** argv) {
  Flags flags(argc, argv);
  DataScale scale;
  scale.db_size = flags.GetInt("n", 200);
  scale.num_queries = flags.GetInt("queries", 60);
  scale.skip_exact = true;  // timed below instead
  const int p = flags.GetInt("p", 100);
  const int k = flags.GetInt("k", 20);

  std::printf("=== Fig 7 (Exp-4): query efficiency ===\n");
  std::printf("n=%d queries=%d p=%d k=%d\n", scale.db_size,
              scale.num_queries, p, k);
  PreparedData data = PrepareChem(scale);
  const int m = data.features.num_features();
  std::printf("m=%d\n", m);

  Result<SelectionOutput> dspm = RunSelector("DSPM", data, p, 1, nullptr);
  GDIM_CHECK(dspm.ok());
  std::vector<int> all(static_cast<size_t>(m));
  std::iota(all.begin(), all.end(), 0);

  GraphDatabase dspm_dim, orig_dim;
  for (int r : dspm->selected) {
    dspm_dim.push_back(data.features.feature_graphs()[static_cast<size_t>(r)]);
  }
  for (int r : all) {
    orig_dim.push_back(data.features.feature_graphs()[static_cast<size_t>(r)]);
  }
  FeatureMapper dspm_mapper(std::move(dspm_dim));
  FeatureMapper orig_mapper(std::move(orig_dim));
  auto db_dspm = ProjectDatabase(data, dspm->selected);
  auto db_orig = ProjectDatabase(data, all);

  // Bucket queries by |V(q)|, as in the paper (5 buckets over 10..20).
  struct Bucket {
    std::vector<int> queries;
    double dspm_time = 0, orig_time = 0, exact_time = 0;
  };
  std::map<int, Bucket> buckets;  // lower bound of the 2-vertex bucket
  for (size_t qi = 0; qi < data.queries.size(); ++qi) {
    int nv = data.queries[qi].NumVertices();
    int b = std::min(18, std::max(10, (nv / 2) * 2));
    buckets[b].queries.push_back(static_cast<int>(qi));
  }

  for (auto& [lo, bucket] : buckets) {
    for (int qi : bucket.queries) {
      const Graph& q = data.queries[static_cast<size_t>(qi)];
      WallTimer t;
      auto bits = dspm_mapper.Map(q);
      TopK(MappedRanking(bits, db_dspm), k);
      bucket.dspm_time += t.Seconds();
      t.Reset();
      auto obits = orig_mapper.Map(q);
      TopK(MappedRanking(obits, db_orig), k);
      bucket.orig_time += t.Seconds();
      t.Reset();
      TopK(ExactRanking(q, data.db, DissimilarityKind::kDelta2,
                        /*threads=*/1),
           k);
      bucket.exact_time += t.Seconds();
    }
  }

  std::printf("\n(a) query time (ms) — DSPM vs Original\n");
  PrintHeader("|V(q)|", {"DSPM", "Original", "ratio"});
  for (auto& [lo, bucket] : buckets) {
    if (bucket.queries.empty()) continue;
    double nq = static_cast<double>(bucket.queries.size());
    double dm = bucket.dspm_time / nq * 1e3;
    double om = bucket.orig_time / nq * 1e3;
    char label[32];
    std::snprintf(label, sizeof(label), "%d-%d", lo, lo + 2);
    PrintRow(label, {dm, om, om / std::max(dm, 1e-9)});
  }

  std::printf("\n(b) query time (ms) — DSPM vs Exact\n");
  PrintHeader("|V(q)|", {"DSPM", "Exact", "speedup"});
  for (auto& [lo, bucket] : buckets) {
    if (bucket.queries.empty()) continue;
    double nq = static_cast<double>(bucket.queries.size());
    double dm = bucket.dspm_time / nq * 1e3;
    double em = bucket.exact_time / nq * 1e3;
    char label[32];
    std::snprintf(label, sizeof(label), "%d-%d", lo, lo + 2);
    PrintRow(label, {dm, em, em / std::max(dm, 1e-9)});
  }
  std::printf(
      "\nExpected shape (paper): Original 3-5x slower than DSPM (more "
      "features to match); Exact orders of magnitude slower than DSPM; all "
      "times grow mildly with |V(q)|.\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace gdim

int main(int argc, char** argv) { return gdim::bench::Main(argc, argv); }
