#ifndef GDIM_BENCH_HARNESS_H_
#define GDIM_BENCH_HARNESS_H_

#include <map>
#include <string>
#include <vector>

#include "common/flags.h"
#include "core/binary_db.h"
#include "core/selector.h"
#include "core/topk.h"
#include "datasets/chemgen.h"
#include "datasets/graphgen.h"
#include "graph/graph.h"
#include "mcs/dissimilarity.h"
#include "mining/gspan.h"

namespace gdim {
namespace bench {

/// The figure harnesses use the shared --key=value parser.
using gdim::Flags;

/// A dataset prepared for the paper's experiments: database graphs, query
/// graphs, mined candidate features, the pairwise dissimilarity matrix, and
/// exact full rankings for every query.
struct PreparedData {
  GraphDatabase db;
  GraphDatabase queries;
  BinaryFeatureDb features;
  DissimilarityMatrix delta;
  /// exact[qi] = full exact ranking of db for queries[qi] (by δ2).
  std::vector<Ranking> exact;

  double mining_seconds = 0.0;
  double delta_seconds = 0.0;
  double exact_seconds = 0.0;
};

/// Default bench scale. The paper uses |DG| = 1k (10k for scalability) with
/// 1k queries; defaults here are scaled down so every figure regenerates in
/// tens of seconds on a laptop — pass --n / --queries to scale up.
struct DataScale {
  int db_size = 200;
  int num_queries = 40;
  uint64_t seed = 7;
  /// Mining threshold τ. The paper uses 5% on 1k–10k PubChem graphs; at our
  /// scaled-down database sizes 3% with a 7-edge bound yields a candidate
  /// pool (m ≈ 1.5k) whose m/p ratio matches the paper's regime.
  double min_support = 0.03;
  int max_pattern_edges = 7;
  bool skip_exact = false;  ///< skip exact rankings (figures that don't rank)
};

/// Chemical-compound workload (the paper's "real" dataset substitute).
PreparedData PrepareChem(const DataScale& scale);

/// GraphGen-style synthetic workload with explicit generator parameters.
PreparedData PrepareSynthetic(const DataScale& scale,
                              const GraphGenOptions& gen);

/// Runs a named selector on prepared data; returns selected features and
/// fills *seconds with the selection wall time (the paper's indexing time).
/// DSPMap gets its dissimilarities from the precomputed matrix (lazily per
/// block, but the same values).
Result<SelectionOutput> RunSelector(const std::string& name,
                                    const PreparedData& data, int p,
                                    uint64_t seed, double* seconds);

/// Binary db-graph vectors projected onto the selected dimensions.
std::vector<std::vector<uint8_t>> ProjectDatabase(
    const PreparedData& data, const std::vector<int>& selected);

/// Maps every query onto the selected dimensions with VF2 (the online
/// feature-matching step); *seconds gets the total mapping time.
std::vector<std::vector<uint8_t>> ProjectQueries(
    const PreparedData& data, const std::vector<int>& selected,
    double* seconds);

/// Average top-k quality of the approximate rankings against data.exact.
struct Quality {
  double precision = 0.0;
  double kendall_tau = 0.0;
  double rank_distance = 0.0;
};
Quality EvaluateMapped(const PreparedData& data,
                       const std::vector<std::vector<uint8_t>>& query_bits,
                       const std::vector<std::vector<uint8_t>>& db_bits,
                       int k);

/// Quality of rankings given directly (used for the fingerprint benchmark).
Quality EvaluateRankings(const PreparedData& data,
                         const std::vector<Ranking>& approx, int k);

/// Fingerprint-benchmark rankings: builds an expert dictionary from an
/// independent sample, fingerprints everything, ranks by Tanimoto.
std::vector<Ranking> FingerprintRankings(const PreparedData& data,
                                         uint64_t seed, int bits);

/// Prints a row of "label v1 v2 ..." with fixed formatting.
void PrintRow(const std::string& label, const std::vector<double>& values);
void PrintHeader(const std::string& label,
                 const std::vector<std::string>& columns);

}  // namespace bench
}  // namespace gdim

#endif  // GDIM_BENCH_HARNESS_H_
