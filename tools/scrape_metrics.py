#!/usr/bin/env python3
"""Scrape a live server's METRICS verb and assert histogram sanity.

Stdlib-only; used by the CI net smoke to check the exposition mid-churn:

    python3 tools/scrape_metrics.py --port=7411 \
        --require-stage=map_all --require-stage=mutation_apply

Connects, sends `METRICS`, reads until the `# EOF` terminator, then
exits non-zero if any of these hold:

  - no `gdim_stage_<stage>_usec` histogram family carries samples,
  - any histogram series' cumulative buckets are non-monotone,
  - any histogram series' `+Inf` cumulative bucket != its `_count`,
  - a `--require-stage=<stage>` family is missing or empty.

On success prints one `stage <name>: count=<n>` line per non-empty
stage family, so the CI log records where server time went.
"""

import argparse
import re
import socket
import sys

BUCKET = re.compile(
    r'^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)_bucket\{(?P<labels>[^}]*)\} '
    r'(?P<value>\d+)$')
COUNT = re.compile(
    r'^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)_count(?:\{(?P<labels>[^}]*)\})? '
    r'(?P<value>\d+)$')
LE = re.compile(r'(?:^|,)le="([^"]+)"')


def scrape(host, port, timeout):
    with socket.create_connection((host, port), timeout=timeout) as sock:
        sock.sendall(b"METRICS\n")
        chunks = []
        while True:
            chunk = sock.recv(65536)
            if not chunk:
                break
            chunks.append(chunk)
            if b"# EOF\n" in b"".join(chunks[-2:]):
                break
    text = b"".join(chunks).decode("utf-8", errors="replace")
    if "# EOF" not in text:
        raise RuntimeError("METRICS response truncated (no # EOF terminator)")
    return text


def series_key(name, labels):
    """One key per histogram series: family name + labels minus `le`."""
    return (name, LE.sub("", labels or "").strip(","))


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, required=True)
    parser.add_argument("--timeout", type=float, default=10.0)
    parser.add_argument(
        "--require-stage", action="append", default=[], metavar="STAGE",
        help="a gdim_stage_<STAGE>_usec family that must be non-empty "
             "(repeatable)")
    args = parser.parse_args()

    try:
        text = scrape(args.host, args.port, args.timeout)
    except (OSError, RuntimeError) as err:
        print(f"scrape_metrics: {err}", file=sys.stderr)
        return 1

    # series -> ordered (le, cumulative) pairs, and series -> _count value.
    buckets = {}
    counts = {}
    for line in text.splitlines():
        m = BUCKET.match(line)
        if m:
            le = LE.search(m.group("labels"))
            if le:
                buckets.setdefault(
                    series_key(m.group("name"), m.group("labels")),
                    []).append((le.group(1), int(m.group("value"))))
            continue
        m = COUNT.match(line)
        if m:
            counts[series_key(m.group("name"), m.group("labels"))] = int(
                m.group("value"))

    errors = []
    stage_totals = {}
    for (name, labels), pairs in sorted(buckets.items()):
        series = f'{name}{{{labels}}}' if labels else name
        prev = -1
        for le, cumulative in pairs:
            if cumulative < prev:
                errors.append(f"{series}: cumulative buckets are "
                              f'non-monotone at le="{le}"')
                break
            prev = cumulative
        if not pairs or pairs[-1][0] != "+Inf":
            errors.append(f'{series}: missing the le="+Inf" bucket')
            continue
        inf = pairs[-1][1]
        count = counts.get((name, labels))
        if count is None:
            errors.append(f"{series}: no matching _count sample")
        elif count != inf:
            errors.append(f"{series}: _count {count} != +Inf cumulative {inf}")
        stage = re.fullmatch(r"gdim_stage_(\w+)_usec", name)
        if stage:
            stage_totals[stage.group(1)] = (
                stage_totals.get(stage.group(1), 0) + inf)

    if not any(stage_totals.values()):
        errors.append("no gdim_stage_*_usec histogram carries any samples")
    for stage in args.require_stage:
        if stage_totals.get(stage, 0) == 0:
            errors.append(
                f"required stage histogram gdim_stage_{stage}_usec is "
                "missing or empty")

    for stage, total in sorted(stage_totals.items()):
        if total:
            print(f"stage {stage}: count={total}")
    if errors:
        print(f"scrape_metrics: {len(errors)} violation(s)", file=sys.stderr)
        for err in errors:
            print(err, file=sys.stderr)
        return 1
    print("scrape_metrics: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
