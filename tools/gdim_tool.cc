// gdim_tool — command-line front end for the graphdim library.
//
//   gdim_tool generate --kind=chem --n=500 --out=db.gdb [--queries=...]
//   gdim_tool mine     --db=db.gdb --minsup=0.05 --maxedges=7 --out=patterns.gdb
//   gdim_tool build    --db=db.gdb --selector=DSPM --p=100 --out=index.idx
//   gdim_tool query    --index=index.idx --db=db.gdb --queries=q.gdb --k=10
//   gdim_tool serve    --index=index.idx --queries=q.gdb --k=10 [--threads=N]
//   gdim_tool serve-net --index=index.idx --port=7411 --shards=4
//                       [--queue=256 --cache-mb=64]
//                       [--db=db.gdb --reindex-every=5000]
//   gdim_tool bench-query --index=index.idx --queries=q.gdb [--repeat=R]
//   gdim_tool update   --index=index.idx --out=index2.idx
//                      [--insert=new.gdb --remove=3,17 --compact]
//   gdim_tool convert  --in=index.idx --out=index.idx2 [--format=v2]
//   gdim_tool stats    --db=db.gdb
//
// All subcommands read/write the gSpan text format (`t # id / v / e` lines)
// and the gdim-index formats (v1 text / v2 binary / v3 sectioned, see
// core/index_io.h; readers auto-detect the version). serve-net restarted
// from a v3 snapshot alone resumes the graph store, dimension generation,
// epoch, and IVF layout — no --db needed.

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <optional>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "common/flags.h"
#include "common/parallel.h"
#include "common/sync.h"
#include "common/timer.h"
#include "core/index.h"
#include "core/index_io.h"
#include "core/topk.h"
#include "datasets/chemgen.h"
#include "datasets/graphgen.h"
#include "graph/graph_io.h"
#include "graph/graph_utils.h"
#include "mining/gspan.h"
#include "serve/query_engine.h"
#include "server/batch_executor.h"
#include "server/net_server.h"
#include "server/sharded_engine.h"
#include "store/graph_store.h"

namespace gdim {
namespace {

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

int Usage() {
  std::fprintf(
      stderr,
      "usage: gdim_tool <generate|mine|build|query|serve|serve-net|"
      "bench-query|update|convert|stats> [--flags]\n"
      "  generate --kind=chem|synthetic --n=N --out=FILE "
      "[--queries=M --queries-out=FILE --seed=S]\n"
      "  mine     --db=FILE --out=FILE [--minsup=0.05 --maxedges=7]\n"
      "  build    --db=FILE --out=FILE [--selector=DSPM --p=100 "
      "--minsup=0.05 --maxedges=7 --seed=S --format=v1|v2|v3]\n"
      "  query    --index=FILE --db=FILE --queries=FILE [--k=10]\n"
      "  serve    --index=FILE --queries=FILE [--k=10 --threads=N "
      "--shards=N --prefilter --ivf-buckets=N --quiet]\n"
      "  serve-net --index=FILE [--host=127.0.0.1 --port=0 --shards=1 "
      "--queue=256 --batch=64 --threads=N --max-conns=256 --cache-mb=64 "
      "--prefilter --ivf-buckets=N --db=GRAPHS --reindex-every=N "
      "--reindex-selector=DSPMap --reindex-p=0 --reindex-minsup=0.05 "
      "--reindex-maxedges=7 --slow-query-usec=0]\n"
      "  bench-query --index=FILE --queries=FILE [--k=10 --threads=N "
      "--shards=N --prefilter --ivf-buckets=N --repeat=5]\n"
      "  update   --index=FILE --out=FILE [--insert=GRAPHS --remove=I,J,... "
      "--compact --format=v1|v2|v3]\n"
      "  convert  --in=FILE --out=FILE [--format=v1|v2|v3]\n"
      "  stats    --db=FILE\n");
  return 2;
}

/// Rejects a malformed --k at the tool boundary so one bad request cannot
/// reach (and previously abort) the serving hot path.
Result<int> ValidatedK(const Flags& flags) {
  const int k = flags.GetInt("k", 10);
  if (k < 0) {
    return Status::InvalidArgument("--k must be >= 0, got " +
                                   std::to_string(k));
  }
  return k;
}

/// Bounds an integer flag to [min_value, max_value] at the tool boundary —
/// nonsense like --shards=0 or --port=99999 is a usage error, never a
/// silently applied default.
Result<int> ValidatedRange(const Flags& flags, const std::string& key,
                           int def, int min_value, int max_value) {
  const int value = flags.GetInt(key, def);
  if (value < min_value || value > max_value) {
    return Status::InvalidArgument(
        "--" + key + " must be in [" + std::to_string(min_value) + ", " +
        std::to_string(max_value) + "], got " + std::to_string(value));
  }
  return value;
}

int RunGenerate(const Flags& flags) {
  const std::string kind = flags.GetString("kind", "chem");
  const std::string out = flags.GetString("out", "");
  if (out.empty()) return Usage();
  const int n = flags.GetInt("n", 500);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
  GraphDatabase db, queries;
  const int num_queries = flags.GetInt("queries", 0);
  if (kind == "chem") {
    ChemGenOptions opts;
    opts.num_graphs = n;
    opts.num_families = flags.GetInt("families", std::max(10, n / 8));
    opts.seed = seed;
    db = GenerateChemDatabase(opts);
    if (num_queries > 0) queries = GenerateChemQueries(opts, num_queries);
  } else if (kind == "synthetic") {
    GraphGenOptions opts;
    opts.num_graphs = n;
    opts.avg_edges = flags.GetDouble("edges", 20.0);
    opts.density = flags.GetDouble("density", 0.2);
    opts.num_vertex_labels = flags.GetInt("labels", 20);
    opts.seed = seed;
    db = GenerateSyntheticDatabase(opts);
    if (num_queries > 0) {
      opts.seed = seed ^ 0x9E3779B9ULL;
      opts.num_graphs = num_queries;
      queries = GenerateSyntheticDatabase(opts);
    }
  } else {
    return Usage();
  }
  Status s = WriteGraphFile(db, out);
  if (!s.ok()) return Fail(s);
  std::printf("wrote %zu graphs to %s\n", db.size(), out.c_str());
  if (num_queries > 0) {
    const std::string qout = flags.GetString("queries-out", out + ".queries");
    s = WriteGraphFile(queries, qout);
    if (!s.ok()) return Fail(s);
    std::printf("wrote %zu queries to %s\n", queries.size(), qout.c_str());
  }
  return 0;
}

int RunMine(const Flags& flags) {
  const std::string db_path = flags.GetString("db", "");
  const std::string out = flags.GetString("out", "");
  if (db_path.empty() || out.empty()) return Usage();
  Result<GraphDatabase> db = ReadGraphFile(db_path);
  if (!db.ok()) return Fail(db.status());
  MiningOptions opts;
  opts.min_support = flags.GetDouble("minsup", 0.05);
  opts.max_edges = flags.GetInt("maxedges", 7);
  opts.max_patterns = flags.GetInt("maxpatterns", 0);
  WallTimer timer;
  Result<std::vector<FrequentPattern>> mined =
      MineFrequentSubgraphs(*db, opts);
  if (!mined.ok()) return Fail(mined.status());
  GraphDatabase patterns;
  for (const FrequentPattern& p : *mined) patterns.push_back(p.graph);
  Status s = WriteGraphFile(patterns, out);
  if (!s.ok()) return Fail(s);
  std::printf("mined %zu frequent subgraphs from %zu graphs in %.2fs -> %s\n",
              patterns.size(), db->size(), timer.Seconds(), out.c_str());
  return 0;
}

int RunBuild(const Flags& flags) {
  const std::string db_path = flags.GetString("db", "");
  const std::string out = flags.GetString("out", "");
  if (db_path.empty() || out.empty()) return Usage();
  Result<GraphDatabase> db = ReadGraphFile(db_path);
  if (!db.ok()) return Fail(db.status());
  IndexOptions opts;
  opts.selector = flags.GetString("selector", "DSPM");
  opts.p = flags.GetInt("p", 100);
  opts.mining.min_support = flags.GetDouble("minsup", 0.05);
  opts.mining.max_edges = flags.GetInt("maxedges", 7);
  opts.seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
  WallTimer timer;
  Result<GraphSearchIndex> index = GraphSearchIndex::Build(*db, opts);
  if (!index.ok()) return Fail(index.status());
  Result<IndexFormat> format =
      ParseIndexFormat(flags.GetString("format", "v1"));
  if (!format.ok()) return Fail(format.status());
  PersistedIndex persisted;
  persisted.features = index->dimension();
  persisted.db_bits = index->mapped_database();
  Status s = WriteIndexFile(persisted, out, *format);
  if (!s.ok()) return Fail(s);
  const IndexBuildStats& st = index->build_stats();
  std::printf("built %s index over %zu graphs in %.2fs "
              "(mine %.2fs + delta %.2fs + select %.2fs): %d of %d features "
              "-> %s\n",
              opts.selector.c_str(), db->size(), timer.Seconds(),
              st.mining_seconds, st.dissimilarity_seconds,
              st.selection_seconds, st.selected_features, st.mined_features,
              out.c_str());
  return 0;
}

int RunQuery(const Flags& flags) {
  const std::string index_path = flags.GetString("index", "");
  const std::string db_path = flags.GetString("db", "");
  const std::string queries_path = flags.GetString("queries", "");
  if (index_path.empty() || db_path.empty() || queries_path.empty()) {
    return Usage();
  }
  Result<int> k_flag = ValidatedK(flags);
  if (!k_flag.ok()) return Fail(k_flag.status());
  const int k = *k_flag;
  Result<PersistedIndex> index = ReadIndexFile(index_path);
  if (!index.ok()) return Fail(index.status());
  Result<GraphDatabase> db = ReadGraphFile(db_path);
  if (!db.ok()) return Fail(db.status());
  Result<GraphDatabase> queries = ReadGraphFile(queries_path);
  if (!queries.ok()) return Fail(queries.status());
  if (index->db_bits.size() != db->size()) {
    return Fail(Status::InvalidArgument(
        "index vector count does not match database size"));
  }
  FeatureMapper mapper(index->features);
  WallTimer timer;
  for (size_t qi = 0; qi < queries->size(); ++qi) {
    Ranking top =
        TopK(MappedRanking(mapper.Map((*queries)[qi]), index->db_bits), k);
    std::printf("query %zu:", qi);
    for (const RankedResult& r : top) {
      std::printf(" %d:%.4f", r.id, r.score);
    }
    std::printf("\n");
  }
  double secs = timer.Seconds();
  std::printf("# %zu queries in %.3fs (%.2f ms/query, p=%d, k=%d)\n",
              queries->size(), secs,
              secs / static_cast<double>(queries->size()) * 1e3,
              static_cast<int>(index->features.size()), k);
  return 0;
}

/// Serving flags shared by serve / serve-net / bench-query, validated.
Result<ShardedOptions> ShardedOptionsFromFlags(const Flags& flags) {
  ShardedOptions opts;
  Result<int> threads = ValidatedRange(flags, "threads", 0, 0, 256);
  if (!threads.ok()) return threads.status();
  Result<int> shards = ValidatedRange(flags, "shards", 1, 1, 4096);
  if (!shards.ok()) return shards.status();
  opts.num_shards = *shards;
  opts.serve.threads = *threads;
  opts.serve.containment_prefilter = flags.GetBool("prefilter", false);
  // 0 keeps the per-shard default of ceil(sqrt(rows)) IVF buckets.
  Result<int> ivf = ValidatedRange(flags, "ivf-buckets", 0, 0, 1 << 20);
  if (!ivf.ok()) return ivf.status();
  opts.serve.ivf_buckets = *ivf;
  return opts;
}

/// Shared serve/bench-query setup: flag validation, engine load, query load.
/// Returns 0 to proceed, otherwise the exit code to return.
int LoadServeInputs(const Flags& flags, std::optional<ShardedEngine>* engine,
                    GraphDatabase* queries) {
  const std::string index_path = flags.GetString("index", "");
  const std::string queries_path = flags.GetString("queries", "");
  if (index_path.empty() || queries_path.empty()) return Usage();
  Result<ShardedOptions> opts = ShardedOptionsFromFlags(flags);
  if (!opts.ok()) return Fail(opts.status());
  Result<ShardedEngine> opened = ShardedEngine::Open(index_path, *opts);
  if (!opened.ok()) return Fail(opened.status());
  Result<GraphDatabase> loaded = ReadGraphFile(queries_path);
  if (!loaded.ok()) return Fail(loaded.status());
  engine->emplace(std::move(opened).value());
  *queries = std::move(loaded).value();
  return 0;
}

int RunServe(const Flags& flags) {
  std::optional<ShardedEngine> engine;
  GraphDatabase queries;
  if (int rc = LoadServeInputs(flags, &engine, &queries); rc != 0) return rc;
  Result<int> k_flag = ValidatedK(flags);
  if (!k_flag.ok()) return Fail(k_flag.status());
  const int k = *k_flag;
  const bool quiet = flags.GetBool("quiet", false);

  ServeBatchReport report;
  std::vector<ServeQueryStats> per_query;
  std::vector<Ranking> results =
      engine->QueryBatch(queries, {.k = k}, &report, &per_query);
  if (!quiet) {
    for (size_t qi = 0; qi < results.size(); ++qi) {
      std::printf("query %zu:", qi);
      for (const RankedResult& r : results[qi]) {
        std::printf(" %d:%.4f", r.id, r.score);
      }
      std::printf("  [%.3fms, scanned %d/%d%s]\n", per_query[qi].latency_ms,
                  per_query[qi].scanned, engine->num_graphs(),
                  per_query[qi].prefiltered ? ", prefiltered" : "");
    }
  }
  std::printf(
      "# served %zu queries over %d graphs x %d dims in %.1fms "
      "(%.0f qps, %s)\n",
      results.size(), engine->num_graphs(), engine->num_features(),
      report.wall_ms, report.qps,
      FormatLatencySummaryMs(report.latency_ms).c_str());
  if (report.prefiltered_queries > 0) {
    std::printf("# prefilter narrowed %zu/%zu queries (%.1f%% rows scanned)\n",
                report.prefiltered_queries, results.size(),
                100.0 * static_cast<double>(report.scanned_rows) /
                    (static_cast<double>(engine->num_graphs()) *
                     static_cast<double>(results.size())));
  }
  return 0;
}

int RunBenchQuery(const Flags& flags) {
  std::optional<ShardedEngine> engine;
  GraphDatabase queries;
  if (int rc = LoadServeInputs(flags, &engine, &queries); rc != 0) return rc;
  Result<int> k_flag = ValidatedK(flags);
  if (!k_flag.ok()) return Fail(k_flag.status());
  const int k = *k_flag;
  Result<int> repeat_flag = ValidatedRange(flags, "repeat", 5, 1, 1000000);
  if (!repeat_flag.ok()) return Fail(repeat_flag.status());
  const int repeat = *repeat_flag;

  // Warm-up pass, then timed repeats; report the aggregate distribution.
  engine->QueryBatch(queries, {.k = k});
  std::vector<double> batch_ms;
  double best_qps = 0.0;
  for (int rep = 0; rep < repeat; ++rep) {
    ServeBatchReport report;
    engine->QueryBatch(queries, {.k = k}, &report);
    batch_ms.push_back(report.wall_ms);
    best_qps = std::max(best_qps, report.qps);
    std::printf("batch %d: %.1fms (%.0f qps, %s)\n", rep, report.wall_ms,
                report.qps, FormatLatencySummaryMs(report.latency_ms).c_str());
  }
  LatencySummary batches = SummarizeLatencies(std::move(batch_ms));
  std::printf(
      "# %d x %zu queries, %d graphs x %d dims, %d shard(s), k=%d, "
      "threads=%d: best %.0f qps, batch %s\n",
      repeat, queries.size(), engine->num_graphs(), engine->num_features(),
      engine->num_shards(), k,
      engine->options().serve.threads > 0 ? engine->options().serve.threads
                                          : DefaultThreadCount(),
      best_qps, FormatLatencySummaryMs(batches).c_str());
  return 0;
}

/// Positive identity check for serve-net's --db: the supplied graphs must
/// BE the index's live graphs, in ascending-id order. A count match alone
/// would let a same-sized but mismatched file silently mis-key every entry
/// of the graph store — queries would stay correct (they never read the
/// store) until the first REINDEX built a generation whose fingerprints
/// describe graphs the ids don't own. VF2-maps a spread sample of the db
/// graphs onto the engine's current dimension and compares bit-for-bit
/// against the engine's stored rows: any positional shift misaligns nearly
/// every row, so a small sample catches it with near-certainty at a cost
/// independent of database size.
Status ValidateDbAgainstEngine(const ShardedEngine& engine,
                               const GraphDatabase& db) {
  const int p = engine.num_features();
  if (p == 0 || db.empty()) return Status::OK();
  std::vector<std::pair<int, const uint64_t*>> live;
  live.reserve(db.size());
  for (int s = 0; s < engine.num_shards(); ++s) {
    const auto rows = engine.shard(s).LiveRowWords();
    live.insert(live.end(), rows.begin(), rows.end());
  }
  std::sort(live.begin(), live.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  const size_t sample =
      std::min<size_t>(live.size(), 25);
  for (size_t j = 0; j < sample; ++j) {
    const size_t i =
        sample <= 1 ? 0 : j * (live.size() - 1) / (sample - 1);
    const std::vector<uint8_t> bits = engine.mapper().Map(db[i]);
    for (int r = 0; r < p; ++r) {
      const uint64_t word = live[i].second[static_cast<size_t>(r) / 64];
      const uint8_t stored = (word >> (static_cast<size_t>(r) % 64)) & 1;
      if (stored != bits[static_cast<size_t>(r)]) {
        return Status::InvalidArgument(
            "--db graph " + std::to_string(i) +
            " does not match the index row with id " +
            std::to_string(live[i].first) +
            " (fingerprints differ at feature " + std::to_string(r) +
            "); the db file must list the index's live graphs in "
            "ascending-id order");
      }
    }
  }
  return Status::OK();
}

int RunServeNet(const Flags& flags) {
  const std::string index_path = flags.GetString("index", "");
  if (index_path.empty()) return Usage();
  Result<ShardedOptions> engine_opts = ShardedOptionsFromFlags(flags);
  if (!engine_opts.ok()) return Fail(engine_opts.status());
  Result<int> port = ValidatedRange(flags, "port", 0, 0, 65535);
  if (!port.ok()) return Fail(port.status());
  Result<int> queue = ValidatedRange(flags, "queue", 256, 1, 1 << 20);
  if (!queue.ok()) return Fail(queue.status());
  Result<int> batch = ValidatedRange(flags, "batch", 64, 1, 1 << 16);
  if (!batch.ok()) return Fail(batch.status());
  Result<int> max_conns = ValidatedRange(flags, "max-conns", 256, 1, 1 << 16);
  if (!max_conns.ok()) return Fail(max_conns.status());
  // Result-cache budget in MiB; 0 disables caching (hits are bit-identical
  // to cold queries, so the cache is on by default).
  Result<int> cache_mb = ValidatedRange(flags, "cache-mb", 64, 0, 65536);
  if (!cache_mb.ok()) return Fail(cache_mb.status());
  // Reindex subsystem: the live graphs come from --db or from a v3
  // snapshot's STOR section (the index's fingerprints alone cannot be
  // re-selected from); --reindex-every=N auto-triggers a refresh after N
  // mutations.
  const std::string db_path = flags.GetString("db", "");
  Result<int> reindex_every =
      ValidatedRange(flags, "reindex-every", 0, 0, 1 << 30);
  if (!reindex_every.ok()) return Fail(reindex_every.status());
  Result<int> reindex_p = ValidatedRange(flags, "reindex-p", 0, 0, 1 << 20);
  if (!reindex_p.ok()) return Fail(reindex_p.status());
  // Refresh mining knobs are validated at the tool boundary like every
  // other serve-net flag — a typo here would otherwise surface only at the
  // first background refresh (silently, under --reindex-every).
  const double reindex_minsup = flags.GetDouble("reindex-minsup", 0.05);
  if (reindex_minsup <= 0.0 || reindex_minsup > 1.0) {
    return Fail(Status::InvalidArgument(
        "--reindex-minsup must be in (0, 1], got " +
        std::to_string(reindex_minsup)));
  }
  Result<int> reindex_maxedges =
      ValidatedRange(flags, "reindex-maxedges", 7, 1, 64);
  if (!reindex_maxedges.ok()) return Fail(reindex_maxedges.status());
  // Queries slower than this (dispatcher wall clock) are logged to stderr;
  // 0 (the default) disables the slow-query log entirely.
  Result<int> slow_query_usec =
      ValidatedRange(flags, "slow-query-usec", 0, 0, 1 << 30);
  if (!slow_query_usec.ok()) return Fail(slow_query_usec.status());

  WallTimer load_timer;
  // Read the file once in packed form so v3 sections can be split between
  // their consumers: the graph store (STOR) belongs to the tool, everything
  // else (DIMS/META/IVFX) to the engine.
  Result<PackedIndex> packed = ReadIndexFilePacked(index_path);
  if (!packed.ok()) return Fail(packed.status());
  const bool has_meta = packed->meta.has_value();
  std::optional<PersistedStore> snapshot_store = std::move(packed->store);
  packed->store.reset();
  Result<ShardedEngine> engine =
      ShardedEngine::FromPacked(std::move(*packed), *engine_opts);
  if (!engine.ok()) return Fail(engine.status());

  if (*reindex_every > 0 && db_path.empty() && !snapshot_store.has_value()) {
    return Fail(Status::InvalidArgument(
        "--reindex-every needs the live graphs to re-select from: pass "
        "--db, or restart from a v3 snapshot (its store section carries "
        "them)"));
  }
  if (!has_meta && (*reindex_every > 0 || !db_path.empty())) {
    // A v2 snapshot taken after a REINDEX has no META section: the swapped
    // generations are silently forgotten and this process reports
    // dimension_generation=0 — clients comparing the gauge across the
    // restart would read that as "no reindex ever happened".
    std::fprintf(
        stderr,
        "WARN: %s has no generation/epoch metadata (pre-v3 snapshot); "
        "dimension_generation restarts at 0 and any pre-restart REINDEX "
        "history is lost. Take the next SNAPSHOT from this server to "
        "upgrade to the v3 format.\n",
        index_path.c_str());
  }

  // The live-graph store: one entry per engine row, keyed by the engine's
  // external ids. --db must list the graphs in the index's row (ascending
  // id) order — true for any `build` output and for v2/v3 snapshots'
  // merged live sets written next to a matching graph dump. A v3
  // snapshot's own store section already satisfies that by construction;
  // an explicit --db takes precedence over it.
  std::optional<GraphStore> store;
  if (!db_path.empty()) {
    Result<GraphDatabase> db = ReadGraphFile(db_path);
    if (!db.ok()) return Fail(db.status());
    if (static_cast<int>(db->size()) != engine->num_graphs()) {
      return Fail(Status::InvalidArgument(
          "--db holds " + std::to_string(db->size()) + " graphs, index has " +
          std::to_string(engine->num_graphs()) +
          " live rows; they must describe the same database"));
    }
    if (Status matches = ValidateDbAgainstEngine(*engine, *db);
        !matches.ok()) {
      return Fail(matches);
    }
    store.emplace();
    // The executor doesn't exist yet, so this thread is the store's writer
    // while it seeds the live graphs.
    ScopedRole store_writer(&store->writer_role());
    const std::vector<int> ids = engine->alive_ids();
    for (size_t i = 0; i < ids.size(); ++i) {
      Status put = store->Put(ids[i], std::move((*db)[i]));
      if (!put.ok()) return Fail(put);
    }
  } else if (snapshot_store.has_value()) {
    // Resume the store from the snapshot's own STOR section: the reader
    // already validated its ids against the index row ids, so the store is
    // in lockstep with the engine by construction — no --db, no VF2
    // cross-check needed.
    store.emplace();
    // The executor doesn't exist yet; this thread seeds the live graphs.
    ScopedRole store_writer(&store->writer_role());
    for (size_t i = 0; i < snapshot_store->ids.size(); ++i) {
      Status put = store->Put(snapshot_store->ids[i],
                              std::move(snapshot_store->graphs[i]));
      if (!put.ok()) return Fail(put);
    }
  }

  BatchExecutorOptions executor_opts;
  executor_opts.queue_capacity = *queue;
  executor_opts.max_batch = *batch;
  executor_opts.cache_bytes = static_cast<size_t>(*cache_mb) << 20;
  executor_opts.store = store.has_value() ? &*store : nullptr;
  executor_opts.reindex_every = *reindex_every;
  executor_opts.refresh.selector =
      flags.GetString("reindex-selector", "DSPMap");
  executor_opts.refresh.p = *reindex_p;
  executor_opts.refresh.mining.min_support = reindex_minsup;
  executor_opts.refresh.mining.max_edges = *reindex_maxedges;
  executor_opts.refresh.seed =
      static_cast<uint64_t>(flags.GetInt("seed", 1));
  executor_opts.slow_query_usec = static_cast<uint64_t>(*slow_query_usec);
  BatchExecutor executor(&*engine, executor_opts);

  NetServerOptions server_opts;
  server_opts.host = flags.GetString("host", "127.0.0.1");
  server_opts.port = *port;
  server_opts.max_connections = *max_conns;
  NetServer server(&executor, server_opts);
  // Snapshot the engine counters before Start(): once the server accepts
  // connections the dispatcher may mutate the engine concurrently with
  // this thread, and these getters are dispatcher-owned state.
  const int listening_graphs = engine->num_graphs();
  const int listening_features = engine->num_features();
  const int listening_shards = engine->num_shards();
  Status started = server.Start();
  if (!started.ok()) return Fail(started);

  // One greppable line for scripts (the CI smoke test parses port=N), then
  // serve until killed.
  std::printf(
      "listening on %s port=%d (%d graphs x %d dims, shards=%d, queue=%d, "
      "batch=%d, max-conns=%d, cache-mb=%d, reindex=%s every=%d, "
      "loaded in %.2fs)\n",
      server_opts.host.c_str(), server.port(), listening_graphs,
      listening_features, listening_shards, *queue, *batch,
      *max_conns, *cache_mb, store.has_value() ? "on" : "off",
      *reindex_every, load_timer.Seconds());
  std::fflush(stdout);
  for (;;) std::this_thread::sleep_for(std::chrono::seconds(3600));
}

/// Parses "--remove=3,17,42" into ids. Every comma-separated token must be
/// a bare non-negative integer — empty tokens (including a trailing comma),
/// whitespace, and signs are rejected at the tool boundary.
Result<std::vector<int>> ParseRemoveIds(const std::string& spec) {
  std::vector<int> ids;
  size_t pos = 0;
  for (;;) {
    const size_t comma = spec.find(',', pos);
    const std::string token = spec.substr(
        pos, (comma == std::string::npos ? spec.size() : comma) - pos);
    const bool all_digits =
        !token.empty() &&
        std::all_of(token.begin(), token.end(),
                    [](unsigned char c) { return std::isdigit(c); });
    if (!all_digits) {
      return Status::InvalidArgument("bad graph id '" + token +
                                     "' in --remove list");
    }
    try {
      ids.push_back(std::stoi(token));
    } catch (const std::out_of_range&) {
      return Status::InvalidArgument("graph id '" + token +
                                     "' out of range in --remove list");
    }
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return ids;
}

int RunUpdate(const Flags& flags) {
  const std::string index_path = flags.GetString("index", "");
  const std::string out = flags.GetString("out", "");
  if (index_path.empty() || out.empty()) return Usage();
  Result<IndexFormat> format =
      ParseIndexFormat(flags.GetString("format", "v2"));
  if (!format.ok()) return Fail(format.status());
  Result<QueryEngine> engine = QueryEngine::Open(index_path);
  if (!engine.ok()) return Fail(engine.status());
  // This single-threaded command is the engine's writer.
  ScopedRole writer(&engine->writer_role());

  // Removes first, then inserts, so a freshly inserted graph can never be
  // swept up by the same command's --remove list.
  size_t removed = 0;
  if (flags.Has("remove")) {
    Result<std::vector<int>> ids = ParseRemoveIds(flags.GetString("remove", ""));
    if (!ids.ok()) return Fail(ids.status());
    for (int id : *ids) {
      Status s = engine->Remove(id);
      if (!s.ok()) return Fail(s);
      ++removed;
    }
  }
  int first_id = -1, last_id = -1;
  size_t inserted = 0;
  if (flags.Has("insert")) {
    Result<GraphDatabase> graphs =
        ReadGraphFile(flags.GetString("insert", ""));
    if (!graphs.ok()) return Fail(graphs.status());
    WallTimer timer;
    for (const Graph& g : *graphs) {
      Result<int> id = engine->Insert(g);
      if (!id.ok()) return Fail(id.status());
      if (first_id < 0) first_id = *id;
      last_id = *id;
      ++inserted;
    }
    if (inserted > 0) {
      std::printf("inserted %zu graphs (ids %d..%d) in %.2fs\n", inserted,
                  first_id, last_id, timer.Seconds());
    } else {
      std::printf("inserted 0 graphs (--insert file was empty)\n");
    }
  }
  if (flags.GetBool("compact", false)) {
    const int reclaimed = engine->tombstoned_rows();
    engine->Compact();
    std::printf("compacted: reclaimed %d rows, %d live rows sealed\n",
                reclaimed, engine->base_rows());
  }
  Status s = engine->Snapshot(out, *format);
  if (!s.ok()) return Fail(s);
  std::printf(
      "updated %s: +%zu -%zu -> %d live graphs x %d dims "
      "(base %d + delta %d rows, %d tombstoned) -> %s\n",
      index_path.c_str(), inserted, removed, engine->num_graphs(),
      engine->num_features(), engine->base_rows(), engine->delta_rows(),
      engine->tombstoned_rows(), out.c_str());
  return 0;
}

int RunConvert(const Flags& flags) {
  const std::string in = flags.GetString("in", "");
  const std::string out = flags.GetString("out", "");
  if (in.empty() || out.empty()) return Usage();
  Result<IndexFormat> format =
      ParseIndexFormat(flags.GetString("format", "v2"));
  if (!format.ok()) return Fail(format.status());
  WallTimer timer;
  Result<PersistedIndex> index = ReadIndexFile(in);
  if (!index.ok()) return Fail(index.status());
  Status s = WriteIndexFile(*index, out, *format);
  if (!s.ok()) return Fail(s);
  std::printf("converted %s -> %s (%s, %zu graphs x %zu dims) in %.2fs\n",
              in.c_str(), out.c_str(),
              *format == IndexFormat::kV3Sectioned ? "v3 sectioned"
              : *format == IndexFormat::kV2Binary  ? "v2 binary"
                                                   : "v1 text",
              index->db_bits.size(), index->features.size(),
              timer.Seconds());
  return 0;
}

int RunStats(const Flags& flags) {
  const std::string db_path = flags.GetString("db", "");
  if (db_path.empty()) return Usage();
  Result<GraphDatabase> db = ReadGraphFile(db_path);
  if (!db.ok()) return Fail(db.status());
  long long vertices = 0, edges = 0;
  int min_v = 1 << 30, max_v = 0, disconnected = 0;
  double density = 0;
  for (const Graph& g : *db) {
    vertices += g.NumVertices();
    edges += g.NumEdges();
    min_v = std::min(min_v, g.NumVertices());
    max_v = std::max(max_v, g.NumVertices());
    density += GraphDensity(g);
    disconnected += IsConnected(g) ? 0 : 1;
  }
  const double n = std::max<size_t>(db->size(), 1);
  std::printf("graphs:        %zu\n", db->size());
  std::printf("avg vertices:  %.2f (min %d, max %d)\n", vertices / n, min_v,
              max_v);
  std::printf("avg edges:     %.2f\n", edges / n);
  std::printf("avg density:   %.3f\n", density / n);
  std::printf("disconnected:  %d\n", disconnected);
  return 0;
}

int Main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  Flags flags(argc, argv);
  if (command == "generate") return RunGenerate(flags);
  if (command == "mine") return RunMine(flags);
  if (command == "build") return RunBuild(flags);
  if (command == "query") return RunQuery(flags);
  if (command == "serve") return RunServe(flags);
  if (command == "serve-net") return RunServeNet(flags);
  if (command == "bench-query") return RunBenchQuery(flags);
  if (command == "update") return RunUpdate(flags);
  if (command == "convert") return RunConvert(flags);
  if (command == "stats") return RunStats(flags);
  return Usage();
}

}  // namespace
}  // namespace gdim

int main(int argc, char** argv) { return gdim::Main(argc, argv); }
