#!/usr/bin/env bash
# Kill-and-restart smoke test for durable v3 snapshots, over the wire.
#
# Drives a live serve-net process through churn (INSERT/REMOVE) and two
# REINDEX generation swaps, snapshots mid-churn, kills the server hard
# (SIGKILL — a crash, not a shutdown), restarts it from the snapshot file
# ALONE (no --db), and asserts the restarted process is indistinguishable:
#
#   - STATS dimension_generation and epoch match the pre-kill values
#     (a v2-era restart would report 0 for both),
#   - QUERY answers — MODE=full and MODE=approx NPROBE=all — are
#     byte-identical to the pre-kill responses,
#   - REINDEX still works, fed by the snapshot's own store section,
#   - the restart log carries no degraded-format WARN (the v1 cold start
#     in step 1 does WARN — the loud/quiet pair is asserted both ways).
#
# Usage: tools/restart_smoke.sh [build-dir]   (default: build)

set -euo pipefail

BUILD_DIR=${1:-build}
TOOL="$BUILD_DIR/gdim_tool"
[ -x "$TOOL" ] || { echo "restart_smoke: $TOOL not found" >&2; exit 1; }

TMP=$(mktemp -d)
PIDS=()
cleanup() {
  for p in ${PIDS[@]+"${PIDS[@]}"}; do kill "$p" 2>/dev/null || true; done
  rm -rf "$TMP"
}
trap cleanup EXIT

# Starts serve-net with the given extra flags and waits for the listen
# line. Sets SERVER_PID / SERVER_PORT (no subshell — the pid must survive
# for the later SIGKILL). Usage: start_server <logfile> <flags...>
start_server() {
  local log=$1
  shift
  "$TOOL" serve-net --host=127.0.0.1 --port=0 "$@" >"$log" 2>&1 &
  SERVER_PID=$!
  PIDS+=("$SERVER_PID")
  for _ in $(seq 1 100); do
    grep -q 'listening on' "$log" && break
    sleep 0.1
  done
  grep -q 'listening on' "$log" || {
    echo "restart_smoke: server failed to start" >&2
    cat "$log" >&2
    exit 1
  }
  SERVER_PORT=$(sed -n 's/.*port=\([0-9]*\).*/\1/p' "$log" | head -1)
}

# One protocol client for both phases. `pre` churns, reindexes twice,
# snapshots, and records STATS + probe answers; `post` replays the probes
# against the restarted server and diffs everything.
CLIENT='
import socket, sys

def graphs(path):
    out, cur = [], []
    for line in open(path):
        line = line.strip()
        if not line:
            continue
        if line.startswith("t #") and cur:
            out.append(";".join(cur))
            cur = []
        cur.append(line)
    if cur:
        out.append(";".join(cur))
    return out

mode, port, qpath, state = sys.argv[1], int(sys.argv[2]), sys.argv[3], sys.argv[4]
sock = socket.create_connection(("127.0.0.1", port), timeout=60)
f = sock.makefile("rw", newline="\n")

def req(line):
    f.write(line + "\n")
    f.flush()
    resp = f.readline().strip()
    if not resp.startswith("OK"):
        sys.exit(f"restart_smoke: {line.split()[0]} failed: {resp!r}")
    return resp

def stats():
    return dict(tok.split("=", 1) for tok in req("STATS").split()[1:] if "=" in tok)

qs = graphs(qpath)
probes = []
for g in qs[:3]:
    probes.append(f"QUERY 5 MODE=full {g}")
    probes.append(f"QUERY 5 MODE=approx NPROBE=all {g}")

if mode == "pre":
    snap = sys.argv[5]
    # Churn + swap, twice: the snapshot must carry history no cold build
    # has (two generations selected over two different live sets).
    for g in qs:
        req("INSERT " + g)
    for rid in (1, 4, 9):
        req(f"REMOVE {rid}")
    r = req("REINDEX")
    assert "generation=1" in r, r
    for rid in (12, 15):
        req(f"REMOVE {rid}")
    for g in qs[:2]:
        req("INSERT " + g)
    r = req("REINDEX")
    assert "generation=2" in r, r
    # Mid-churn snapshot: an uncompacted tombstone and a fresh delta row.
    req("REMOVE 20")
    req("INSERT " + qs[0])
    req(f"SNAPSHOT {snap}")
    # Ground truth sampled after the snapshot with no further mutations:
    # the file and these answers describe the same state.
    kv = stats()
    assert kv["dimension_generation"] == "2", kv
    with open(state, "w") as out:
        out.write(kv["dimension_generation"] + "\n" + kv["epoch"] + "\n")
        for q in probes:
            out.write(req(q) + "\n")
else:
    want = open(state).read().splitlines()
    kv = stats()
    assert kv["dimension_generation"] == want[0], (
        f"generation lost across restart: {kv['"'"'dimension_generation'"'"']} != {want[0]}")
    assert kv["epoch"] == want[1], (
        f"epoch lost across restart: {kv['"'"'epoch'"'"']} != {want[1]}")
    for q, exp in zip(probes, want[2:]):
        got = req(q)
        assert got == exp, f"answer drifted across restart:\n  pre:  {exp}\n  post: {got}"
    # The snapshot store section feeds further refreshes — no --db anywhere.
    r = req("REINDEX")
    assert "generation=3" in r, r
req("QUIT")
print(f"restart_smoke: {mode} phase OK")
'

echo "restart_smoke: generating corpus and initial index"
"$TOOL" generate --kind=chem --n=60 --queries=6 \
  --out="$TMP/db.gdb" --queries-out="$TMP/q.gdb"
"$TOOL" build --db="$TMP/db.gdb" --out="$TMP/index.idx" \
  --selector=DSPM --p=30 --minsup=0.15 --maxedges=4

echo "restart_smoke: starting server 1 (cold build + --db)"
start_server "$TMP/serve1.log" --index="$TMP/index.idx" \
  --shards=3 --cache-mb=16 --db="$TMP/db.gdb" \
  --reindex-minsup=0.15 --reindex-maxedges=4
KILL_PID=$SERVER_PID
# A meta-less index plus reindex-capable flags is the degraded shape: the
# server must say so out loud.
grep -q 'WARN: .*no generation/epoch metadata' "$TMP/serve1.log"

python3 -c "$CLIENT" pre "$SERVER_PORT" "$TMP/q.gdb" "$TMP/pre.txt" \
  "$TMP/snap.idx2"
[ -s "$TMP/snap.idx2" ]

echo "restart_smoke: killing server 1 (SIGKILL)"
kill -9 "$KILL_PID"
wait "$KILL_PID" 2>/dev/null || true

echo "restart_smoke: restarting from the snapshot alone (no --db)"
start_server "$TMP/serve2.log" --index="$TMP/snap.idx2" \
  --shards=3 --cache-mb=16
# The v3 restart restores everything; any WARN here is a regression.
if grep -q 'WARN' "$TMP/serve2.log"; then
  echo "restart_smoke: unexpected WARN on v3 restart" >&2
  cat "$TMP/serve2.log" >&2
  exit 1
fi

python3 -c "$CLIENT" post "$SERVER_PORT" "$TMP/q.gdb" "$TMP/pre.txt"

echo "restart_smoke: OK"
