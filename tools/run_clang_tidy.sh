#!/usr/bin/env bash
# Runs clang-tidy (config: .clang-tidy at the repo root) over every
# first-party translation unit in the compilation database. Requires a
# configured build directory with CMAKE_EXPORT_COMPILE_COMMANDS=ON (the
# root CMakeLists sets it unconditionally):
#
#   cmake -B build -S .
#   tools/run_clang_tidy.sh [build-dir] [-- extra clang-tidy args]
#
# Exits non-zero on any finding (WarningsAsErrors: '*'), which is the CI
# gate. NOLINT suppressions must carry an inline justification —
# tools/check_invariants.py enforces that separately.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
shift || true
if [[ "${1:-}" == "--" ]]; then shift; fi

db="$build_dir/compile_commands.json"
if [[ ! -f "$db" ]]; then
  echo "error: $db not found; configure first: cmake -B $build_dir -S $repo_root" >&2
  exit 2
fi

tidy="${CLANG_TIDY:-clang-tidy}"
if ! command -v "$tidy" >/dev/null 2>&1; then
  echo "error: $tidy not found (set CLANG_TIDY to your binary)" >&2
  exit 2
fi

# First-party TUs only: sources under src/, bench/, tools/, and tests/.
# Fetched third-party code (e.g. a FetchContent googletest) also lands in
# the database and is not ours to lint.
mapfile -t files < <(python3 - "$db" "$repo_root" <<'EOF'
import json, sys
db, root = sys.argv[1], sys.argv[2]
keep = tuple(f"{root}/{d}/" for d in ("src", "bench", "tools", "tests"))
seen = set()
for entry in json.load(open(db)):
    f = entry["file"]
    if f.startswith(keep) and f not in seen:
        seen.add(f)
        print(f)
EOF
)

if [[ ${#files[@]} -eq 0 ]]; then
  echo "error: no first-party files in $db" >&2
  exit 2
fi

echo "clang-tidy over ${#files[@]} translation units ($("$tidy" --version | head -1))"
jobs="$(nproc 2>/dev/null || echo 4)"
status=0
# xargs fans the files out; clang-tidy is single-threaded per TU.
printf '%s\0' "${files[@]}" |
  xargs -0 -n 1 -P "$jobs" "$tidy" -p "$build_dir" --quiet "$@" || status=$?

if [[ $status -ne 0 ]]; then
  echo "clang-tidy: findings above must be fixed (or NOLINT'ed with an inline justification)" >&2
fi
exit $status
