#!/usr/bin/env python3
"""Repo-invariant linter: cheap greps for contracts a compiler can't see.

Run from anywhere: `python3 tools/check_invariants.py`. Exits non-zero
with one line per violation. Checks:

  1. Raw synchronization primitives (std::mutex, std::condition_variable,
     std::lock_guard, std::unique_lock, std::scoped_lock and their
     headers) are banned outside src/common/sync.{h,cc}. Unannotated
     locking is invisible to clang's thread-safety analysis, which would
     quietly rot the checked contracts back into prose.
  2. rand() / argless srand() are banned everywhere: the repo's benches
     and tests are seeded-deterministic through common/random.h (Rng).
  3. The wire verbs parsed by src/server/wire.cc and the verb table in
     docs/protocol.md must agree exactly; every STATS key the server
     emits (src/server/net_server.cc) must be documented in protocol.md;
     and the QUERY option keys (MODE=..., NPROBE=..., any future
     KEY=VALUE) parsed by wire.cc and documented in protocol.md must
     agree exactly in both directions.
  4. Every NOLINT marker and every GDIM_NO_THREAD_SAFETY_ANALYSIS /
     GDIM_ASSERT_CAPABILITY use site must carry an inline justification
     (same line or the line above) — suppressions without a recorded
     reason are just deleted evidence.
  5. The v3 snapshot section tags defined in src/core/index_io.cc
     (kSectionXxxx constants) and the tag table in protocol.md's
     "Snapshot format" section must agree exactly in both directions —
     an undocumented section is invisible to operators, a documented but
     unparsed one is fiction.
  6. The pipeline stage names defined in src/obs/ (kStageXxxx constants,
     each the <stage> of a `gdim_stage_<stage>_usec` histogram) and the
     stage table in protocol.md's "Query tracing" section must agree
     exactly in both directions — dashboards are built from the docs, and
     a renamed stage silently orphans every panel watching it.
"""

import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
CODE_DIRS = ("src", "bench", "tools", "tests", "examples")
SYNC_FILES = {"src/common/sync.h", "src/common/sync.cc"}

errors = []


def report(path, lineno, message):
    errors.append(f"{path}:{lineno}: {message}")


def code_files():
    for d in CODE_DIRS:
        base = ROOT / d
        if not base.is_dir():
            continue
        for ext in ("*.cc", "*.h", "*.cpp", "*.hpp"):
            yield from sorted(base.rglob(ext))


def strip_line_comment(line):
    """Drop // comments so banned names in prose don't trip the linter."""
    pos = line.find("//")
    return line if pos < 0 else line[:pos]


# ---------------------------------------------------------------- check 1 --
RAW_SYNC = re.compile(
    r"std::(mutex|condition_variable(_any)?|lock_guard|unique_lock"
    r"|scoped_lock|shared_mutex|shared_lock)\b"
    r"|#\s*include\s*<(mutex|condition_variable|shared_mutex)>"
)

# ---------------------------------------------------------------- check 2 --
# Bare rand()/srand() calls; std::rand too. Word boundary keeps Rng methods
# and identifiers like `operand(` out.
RAW_RAND = re.compile(r"(?<![\w.])(?:std::)?s?rand\s*\(")

# ---------------------------------------------------------------- check 4 --
NOLINT = re.compile(r"NOLINT(NEXTLINE|BEGIN|END)?\b")
TSA_ESCAPE = re.compile(
    r"GDIM_NO_THREAD_SAFETY_ANALYSIS\b|\.\s*Assert\s*\(\s*\)"
)


def has_justification(lines, idx):
    """A justification is comment prose on the marker line or the 2 above."""
    for back in range(0, 3):
        if idx - back < 0:
            break
        line = lines[idx - back]
        m = (re.search(r"//+\s*(.*)", line)
             or re.search(r"/\*\s*(.*?)\s*\*/", line))
        if m:
            prose = NOLINT.sub("", m.group(1))
            prose = re.sub(r"\([-a-z0-9*,._ ]*\)", "", prose)  # check list
            if len(prose.strip()) >= 8:
                return True
    return False


def lint_file(path):
    rel = path.relative_to(ROOT).as_posix()
    text = path.read_text(encoding="utf-8", errors="replace")
    lines = text.splitlines()
    in_sync = rel in SYNC_FILES
    for i, raw in enumerate(lines):
        line = strip_line_comment(raw)
        if not in_sync and RAW_SYNC.search(line):
            report(rel, i + 1,
                   "raw std synchronization primitive; use the annotated "
                   "wrappers in common/sync.h")
        if RAW_RAND.search(line):
            report(rel, i + 1,
                   "rand()/srand() is banned; use common/random.h (Rng) "
                   "so runs stay seeded-deterministic")
        if NOLINT.search(raw) and not has_justification(lines, i):
            report(rel, i + 1,
                   "NOLINT without an inline justification comment")
        if (not in_sync and TSA_ESCAPE.search(line)
                and not has_justification(lines, i)):
            report(rel, i + 1,
                   "thread-safety-analysis escape hatch "
                   "(GDIM_NO_THREAD_SAFETY_ANALYSIS / role Assert()) "
                   "without an inline justification comment")


# ---------------------------------------------------------------- check 3 --
def check_wire_docs():
    wire = ROOT / "src" / "server" / "wire.cc"
    server = ROOT / "src" / "server" / "net_server.cc"
    doc = ROOT / "docs" / "protocol.md"
    for p in (wire, server, doc):
        if not p.is_file():
            report(p.relative_to(ROOT).as_posix(), 1, "file missing")
            return
    wire_text = wire.read_text(encoding="utf-8")
    doc_text = doc.read_text(encoding="utf-8")

    code_verbs = set(re.findall(r'verb == "([A-Z]+)"', wire_text))
    # Scope the verb scan to the request table: the snapshot-format section
    # documents section tags in the same `| `TAG` |` table shape.
    requests = re.search(r"^## Requests$(.*?)^## ", doc_text, re.M | re.S)
    requests_text = requests.group(1) if requests else doc_text
    doc_verbs = set(re.findall(r"^\|\s*`([A-Z]+)\b", requests_text, re.M))
    for verb in sorted(code_verbs - doc_verbs):
        report("docs/protocol.md", 1,
               f"wire verb {verb} is parsed by src/server/wire.cc but "
               "missing from the request table")
    for verb in sorted(doc_verbs - code_verbs):
        report("src/server/wire.cc", 1,
               f"documented verb {verb} is not parsed (docs/protocol.md "
               "request table)")

    # Every key in the STATS response format string must be documented.
    server_text = server.read_text(encoding="utf-8")
    stats_fmt = re.search(r'"OK graphs=.*?"\s*,', server_text, re.S)
    if not stats_fmt:
        report("src/server/net_server.cc", 1,
               "could not locate the STATS response format string")
        return
    emitted = set(re.findall(r"(\w+)=%", stats_fmt.group(0)))
    documented = set(re.findall(r"`(\w+)`", doc_text))
    for key in sorted(emitted - documented):
        report("docs/protocol.md", 1,
               f"STATS key `{key}` is emitted by net_server.cc but "
               "undocumented")

    # QUERY option keys: wire.cc's parser branches (key == "MODE" etc.)
    # and protocol.md's `KEY=` spellings must agree in both directions.
    # `KEY` itself is the docs' generic placeholder (`KEY=VALUE`), not an
    # option.
    code_keys = set(re.findall(r'key == "([A-Z]+)"', wire_text))
    doc_keys = set(re.findall(r"`([A-Z]+)=", doc_text)) - {"KEY"}
    for key in sorted(code_keys - doc_keys):
        report("docs/protocol.md", 1,
               f"QUERY option {key} is parsed by src/server/wire.cc but "
               "undocumented (spell it as `" + key + "=...`)")
    for key in sorted(doc_keys - code_keys):
        report("src/server/wire.cc", 1,
               f"documented QUERY option {key} is not parsed "
               "(docs/protocol.md)")


# ---------------------------------------------------------------- check 5 --
def check_snapshot_section_tags():
    index_io = ROOT / "src" / "core" / "index_io.cc"
    doc = ROOT / "docs" / "protocol.md"
    for p in (index_io, doc):
        if not p.is_file():
            report(p.relative_to(ROOT).as_posix(), 1, "file missing")
            return
    code_text = index_io.read_text(encoding="utf-8")
    doc_text = doc.read_text(encoding="utf-8")

    code_tags = set(
        re.findall(r'constexpr char kSection\w+\[5\] = "(\w{4})";',
                   code_text))
    if not code_tags:
        report("src/core/index_io.cc", 1,
               "no kSectionXxxx tag constants found (the greppable "
               '`constexpr char kSectionXxxx[5] = "XXXX";` shape is a '
               "linter contract)")
        return
    section = re.search(r"^## Snapshot format.*?$(.*?)^## ", doc_text,
                        re.M | re.S)
    if not section:
        report("docs/protocol.md", 1,
               'no "## Snapshot format" section to hold the v3 tag table')
        return
    doc_tags = set(
        re.findall(r"^\|\s*`([A-Z0-9]{4})`\s*\|", section.group(1), re.M))
    for tag in sorted(code_tags - doc_tags):
        report("docs/protocol.md", 1,
               f"v3 section tag {tag} is defined in src/core/index_io.cc "
               "but missing from the snapshot-format tag table")
    for tag in sorted(doc_tags - code_tags):
        report("src/core/index_io.cc", 1,
               f"documented v3 section tag {tag} has no kSection constant "
               "(docs/protocol.md snapshot-format table)")


# ---------------------------------------------------------------- check 6 --
def check_stage_names():
    obs_dir = ROOT / "src" / "obs"
    doc = ROOT / "docs" / "protocol.md"
    if not obs_dir.is_dir() or not doc.is_file():
        report("src/obs", 1, "src/obs/ or docs/protocol.md missing")
        return
    code_stages = set()
    for path in sorted(obs_dir.rglob("*.h")) + sorted(obs_dir.rglob("*.cc")):
        code_stages |= set(
            re.findall(r'constexpr char kStage\w+\[\] = "(\w+)";',
                       path.read_text(encoding="utf-8")))
    if not code_stages:
        report("src/obs", 1,
               "no kStageXxxx constants found (the greppable "
               '`constexpr char kStageXxxx[] = "xxx";` shape is a '
               "linter contract)")
        return
    doc_text = doc.read_text(encoding="utf-8")
    section = re.search(r"^## Query tracing.*?$(.*?)^## ", doc_text,
                        re.M | re.S)
    if not section:
        report("docs/protocol.md", 1,
               'no "## Query tracing" section to hold the stage table')
        return
    doc_stages = set(
        re.findall(r"^\|\s*`([a-z_]+)`\s*\|", section.group(1), re.M))
    for stage in sorted(code_stages - doc_stages):
        report("docs/protocol.md", 1,
               f"pipeline stage {stage} is defined in src/obs/ but missing "
               "from the query-tracing stage table")
    for stage in sorted(doc_stages - code_stages):
        report("src/obs", 1,
               f"documented pipeline stage {stage} has no kStage constant "
               "(docs/protocol.md query-tracing stage table)")


def main():
    for path in code_files():
        lint_file(path)
    check_wire_docs()
    check_snapshot_section_tags()
    check_stage_names()
    if errors:
        print(f"check_invariants: {len(errors)} violation(s)",
              file=sys.stderr)
        for e in errors:
            print(e, file=sys.stderr)
        return 1
    print("check_invariants: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
