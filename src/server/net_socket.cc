#include "server/net_socket.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace gdim {

namespace {

std::string ErrnoMessage(const std::string& what) {
  return what + ": " + std::strerror(errno);
}

Result<sockaddr_in> MakeAddr(const std::string& host, int port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("not a numeric IPv4 address: " + host);
  }
  return addr;
}

}  // namespace

void ScopedFd::reset() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
}

Result<ScopedFd> ListenTcp(const std::string& host, int port,
                           int backlog, int* bound_port) {
  Result<sockaddr_in> addr = MakeAddr(host, port);
  if (!addr.ok()) return addr.status();
  ScopedFd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) return Status::IoError(ErrnoMessage("socket"));
  const int one = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&*addr),
             sizeof(*addr)) != 0) {
    return Status::IoError(
        ErrnoMessage("bind " + host + ":" + std::to_string(port)));
  }
  if (::listen(fd.get(), backlog) != 0) {
    return Status::IoError(ErrnoMessage("listen"));
  }
  if (bound_port != nullptr) {
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&bound), &len) !=
        0) {
      return Status::IoError(ErrnoMessage("getsockname"));
    }
    *bound_port = ntohs(bound.sin_port);
  }
  return fd;
}

Result<ScopedFd> ConnectTcp(const std::string& host, int port) {
  Result<sockaddr_in> addr = MakeAddr(host, port);
  if (!addr.ok()) return addr.status();
  ScopedFd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) return Status::IoError(ErrnoMessage("socket"));
  if (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&*addr),
                sizeof(*addr)) != 0) {
    return Status::IoError(
        ErrnoMessage("connect " + host + ":" + std::to_string(port)));
  }
  // Request/response lines are tiny; Nagle would add 40ms stalls to the
  // closed-loop latency measurement.
  const int one = 1;
  ::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

Status SendAll(int fd, const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(ErrnoMessage("send"));
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

Result<std::optional<std::string>> LineReader::ReadLine() {
  for (;;) {
    const size_t newline = buffer_.find('\n');
    if (newline != std::string::npos) {
      if (discarding_) {
        // End of the over-long line: drop through its terminator, report
        // it once, and leave the reader synchronized on the next line.
        buffer_.erase(0, newline + 1);
        discarding_ = false;
        return Status::InvalidArgument(
            "line exceeds " + std::to_string(max_line_bytes_) + " bytes");
      }
      std::string line = buffer_.substr(0, newline);
      buffer_.erase(0, newline + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      return std::optional<std::string>(std::move(line));
    }
    // No newline buffered. Over the cap, switch to discard mode: the
    // buffer is dropped (bounded memory no matter how long the peer
    // streams) and bytes are swallowed until the line's '\n' arrives.
    if (discarding_) {
      buffer_.clear();
    } else if (buffer_.size() > max_line_bytes_) {
      discarding_ = true;
      buffer_.clear();
    }
    if (eof_) {
      if (discarding_) {
        // Over-long unterminated tail; after reporting it, clean EOF.
        discarding_ = false;
        return Status::InvalidArgument(
            "line exceeds " + std::to_string(max_line_bytes_) + " bytes");
      }
      // A final unterminated fragment counts as a line; after that, EOF.
      if (buffer_.empty()) return std::optional<std::string>();
      std::string line = std::move(buffer_);
      buffer_.clear();
      if (!line.empty() && line.back() == '\r') line.pop_back();
      return std::optional<std::string>(std::move(line));
    }
    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(ErrnoMessage("recv"));
    }
    if (n == 0) {
      eof_ = true;
      continue;
    }
    buffer_.append(chunk, static_cast<size_t>(n));
  }
}

}  // namespace gdim
