#include "server/result_cache.h"

#include <cstring>
#include <utility>

#include "core/packed_bits.h"

namespace gdim {

namespace {

/// Fixed per-entry charge covering the list node, the map slot, and the key
/// copy the map holds — so a budget of N bytes bounds real memory at
/// roughly N, not N plus unbounded bookkeeping.
constexpr size_t kEntryOverheadBytes = 128;

size_t EntryBytes(const std::string& key, const Ranking& ranking) {
  return kEntryOverheadBytes + 2 * key.size() +
         ranking.size() * sizeof(RankedResult);
}

}  // namespace

ResultCache::ResultCache(size_t max_bytes) : max_bytes_(max_bytes) {}

std::string ResultCache::MakeKey(const std::vector<uint8_t>& fingerprint,
                                 int k, uint8_t scan_mode, int nprobe) {
  const std::vector<uint64_t> words = PackedBitMatrix::PackBits(fingerprint);
  const uint32_t width = static_cast<uint32_t>(fingerprint.size());
  const int32_t k32 = k;
  const int32_t nprobe32 = nprobe;
  std::string key;
  key.resize(words.size() * sizeof(uint64_t) + sizeof(width) + sizeof(k32) +
             1 + sizeof(nprobe32));
  char* out = key.data();
  std::memcpy(out, words.data(), words.size() * sizeof(uint64_t));
  out += words.size() * sizeof(uint64_t);
  // The width disambiguates fingerprints whose packed words collide (a set
  // bit count is not enough: trailing zero bits pack away).
  std::memcpy(out, &width, sizeof(width));
  out += sizeof(width);
  std::memcpy(out, &k32, sizeof(k32));
  out += sizeof(k32);
  *out = static_cast<char>(scan_mode);
  ++out;
  std::memcpy(out, &nprobe32, sizeof(nprobe32));
  return key;
}

std::optional<Ranking> ResultCache::Lookup(const std::string& key,
                                           uint64_t epoch) {
  MutexLock lock(&mu_);
  const auto found = index_.find(key);
  if (found == index_.end()) {
    ++misses_;
    return std::nullopt;
  }
  if (found->second->epoch != epoch) {
    // Stale: a mutation bumped the epoch since this was stored. The entry
    // can never be served again (epochs are monotonic), so purge it now.
    EvictLocked(found->second);
    ++evictions_;
    ++misses_;
    return std::nullopt;
  }
  lru_.splice(lru_.begin(), lru_, found->second);
  ++hits_;
  return found->second->ranking;
}

void ResultCache::Insert(const std::string& key, uint64_t epoch,
                         const Ranking& ranking) {
  const size_t bytes = EntryBytes(key, ranking);
  MutexLock lock(&mu_);
  if (bytes > max_bytes_) return;  // larger than the whole budget
  const auto found = index_.find(key);
  if (found != index_.end()) {
    // Same query re-executed (typically at a newer epoch): replace.
    EvictLocked(found->second);
    ++evictions_;
  }
  lru_.push_front(Entry{key, epoch, ranking, bytes});
  index_.emplace(key, lru_.begin());
  bytes_ += bytes;
  ++insertions_;
  while (bytes_ > max_bytes_) {
    EvictLocked(std::prev(lru_.end()));
    ++evictions_;
  }
}

void ResultCache::EvictLocked(Lru::iterator it) {
  bytes_ -= it->bytes;
  index_.erase(it->key);
  lru_.erase(it);
}

ResultCacheStats ResultCache::Stats() const {
  MutexLock lock(&mu_);
  ResultCacheStats stats;
  stats.hits = hits_;
  stats.misses = misses_;
  stats.evictions = evictions_;
  stats.insertions = insertions_;
  stats.entries = lru_.size();
  stats.bytes = bytes_;
  stats.max_bytes = max_bytes_;
  return stats;
}

}  // namespace gdim
