#include "server/batch_executor.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <ctime>
#include <iterator>
#include <memory>
#include <system_error>
#include <utility>

#include "common/logging.h"
#include "core/kernels/scan_kernel.h"

namespace gdim {

namespace {

const char* ScanModeName(ScanMode mode) {
  switch (mode) {
    case ScanMode::kAuto:
      return "auto";
    case ScanMode::kFull:
      return "full";
    case ScanMode::kApprox:
      return "approx";
  }
  return "?";
}

}  // namespace

BatchExecutor::BatchExecutor(ShardedEngine* engine,
                             BatchExecutorOptions options)
    : engine_(engine), options_(options) {
  GDIM_CHECK(engine_ != nullptr);
  GDIM_CHECK(options_.queue_capacity >= 1)
      << "queue_capacity must be >= 1, got " << options_.queue_capacity;
  GDIM_CHECK(options_.max_batch >= 1)
      << "max_batch must be >= 1, got " << options_.max_batch;
  GDIM_CHECK(options_.latency_window >= 1);
  GDIM_CHECK(options_.reindex_every >= 0);
  GDIM_CHECK(options_.reindex_every == 0 || options_.store != nullptr)
      << "reindex_every needs a live graph store";
  store_ = options_.store;
  latency_window_.resize(static_cast<size_t>(options_.latency_window), 0.0);
  if (options_.cache_bytes > 0) {
    cache_ = std::make_unique<ResultCache>(options_.cache_bytes);
  }
  // Resolve every metric cell before the dispatcher (or any client) can
  // record: the hot paths then touch only lock-free atomics.
  c_accepted_ = registry_.GetCounter(
      "gdim_requests_accepted_total",
      "Requests admitted past the admission queue bound");
  c_rejected_ = registry_.GetCounter(
      "gdim_requests_rejected_total",
      "Submits refused with ResourceExhausted (queue full or stopping)");
  c_completed_ = registry_.GetCounter("gdim_requests_completed_total",
                                      "Requests finished, any outcome");
  c_batches_ = registry_.GetCounter("gdim_query_batches_total",
                                    "Coalesced query batches executed");
  c_mutations_ = registry_.GetCounter(
      "gdim_mutations_total", "Insert/Remove/Compact/Snapshot ops executed");
  c_approx_queries_ = registry_.GetCounter(
      "gdim_approx_queries_total", "MODE=approx queries that reached a scan");
  c_approx_candidates_scanned_ =
      registry_.GetCounter("gdim_approx_candidates_scanned_total",
                           "Rows the IVF probes admitted to exact scoring");
  c_approx_rows_pruned_ = registry_.GetCounter(
      "gdim_approx_rows_pruned_total", "Live rows the IVF probes skipped");
  c_snapshots_completed_ = registry_.GetCounter(
      "gdim_snapshots_completed_total",
      "Background snapshot writes finished");
  c_reindexes_completed_ = registry_.GetCounter(
      "gdim_reindexes_completed_total",
      "Dimension generations successfully swapped in");
  c_slow_queries_ = registry_.GetCounter(
      "gdim_slow_queries_total",
      "Queries at or over the --slow-query-usec threshold");
  g_queue_depth_ = registry_.GetGauge(
      "gdim_queue_depth", "Admitted-but-unfinished requests right now");
  g_queue_high_watermark_ = registry_.GetGauge(
      "gdim_queue_high_watermark",
      "Largest admission-queue depth ever observed");
  g_uptime_seconds_ = registry_.GetGauge(
      "gdim_uptime_seconds", "Seconds since the executor started");
  g_start_epoch_ = registry_.GetGauge(
      "gdim_start_epoch_seconds",
      "Executor start time as a Unix epoch, seconds");
  const std::string kernel_label =
      std::string("kernel=\"") + ActiveScanKernel().name() + "\"";
  h_admission_wait_ = registry_.GetStageHistogram(
      kStageAdmissionWait, "Admission-queue wait, submit to dispatch (usec)");
  h_cache_probe_ = registry_.GetStageHistogram(
      kStageCacheProbe,
      "Result-cache key computation + lookup per coalesced run (usec)");
  h_map_all_ = registry_.GetStageHistogram(
      kStageMapAll,
      "Stage-1 VF2 mapping of one coalesced query run (usec)");
  h_scan_exact_ = registry_.GetStageHistogram(
      kStageScanExact, "Per-shard exact scan pass (usec)", kernel_label);
  h_scan_approx_ = registry_.GetStageHistogram(
      kStageScanApprox, "Per-shard MODE=approx scan pass (usec)",
      kernel_label);
  h_ivf_probe_ = registry_.GetStageHistogram(
      kStageIvfProbe, "IVF bucket probe per approx query (usec)");
  h_gather_merge_ = registry_.GetStageHistogram(
      kStageGatherMerge, "K-way merge of per-shard top-k lists (usec)");
  h_mutation_apply_ = registry_.GetStageHistogram(
      kStageMutationApply, "One Insert/Remove/Compact applied (usec)");
  h_snapshot_freeze_ = registry_.GetStageHistogram(
      kStageSnapshotFreeze, "SNAPSHOT dispatcher-side freeze pause (usec)");
  h_snapshot_write_ = registry_.GetStageHistogram(
      kStageSnapshotWrite, "SNAPSHOT background file write (usec)");
  h_reindex_build_ = registry_.GetStageHistogram(
      kStageReindexBuild, "REINDEX background selection, freeze "
                          "handoff to finished generation (usec)");
  h_reindex_swap_ = registry_.GetStageHistogram(
      kStageReindexSwap, "REINDEX reconcile + generation swap (usec)");
  start_epoch_ = static_cast<long long>(std::time(nullptr));
  g_start_epoch_->Set(start_epoch_);
  dispatcher_ = std::thread([this] { DispatcherLoop(); });
}

BatchExecutor::~BatchExecutor() {
  {
    MutexLock lock(&mu_);
    stop_ = true;
    paused_ = false;  // a paused executor must still drain on shutdown
  }
  cv_.NotifyAll();
  dispatcher_.join();
  // Background snapshot writers only read their own frozen captures, but
  // they signal completion through this object — wait them out.
  MutexLock lock(&mu_);
  while (snapshots_in_progress_ != 0) snapshot_cv_.Wait(&mu_);
}

Status BatchExecutor::Admit(Request r) {
  MutexLock lock(&mu_);
  if (stop_) {
    c_rejected_->Increment();
    return Status::Internal("executor is shutting down");
  }
  if (in_flight_ >= static_cast<size_t>(options_.queue_capacity)) {
    c_rejected_->Increment();
    return Status::ResourceExhausted(
        "admission queue full (" +
        std::to_string(options_.queue_capacity) + " in flight)");
  }
  c_accepted_->Increment();
  ++in_flight_;
  if (in_flight_ > queue_high_watermark_) queue_high_watermark_ = in_flight_;
  queue_.push_back(std::move(r));
  // Notify while still holding mu_: once this submitter releases the lock
  // it may never run again, and the executor may be destroyed the moment
  // the queue drains — an unlocked notify could then signal a destroyed
  // condition variable. Holding the lock orders the notify strictly before
  // any destruction (the destructor's first step takes mu_).
  cv_.NotifyOne();
  return Status::OK();
}

Result<Ranking> BatchExecutor::Query(Graph query,
                                     const QueryOptions& options) {
  return Query(std::move(query), options, nullptr);
}

Result<Ranking> BatchExecutor::Query(Graph query, const QueryOptions& options,
                                     QueryTrace* trace) {
  Request r;
  r.kind = Request::Kind::kQuery;
  r.graph = std::move(query);
  r.query_options = options;
  r.trace = trace;
  std::future<Result<Ranking>> done = r.ranking.get_future();
  Status admitted = Admit(std::move(r));
  if (!admitted.ok()) return admitted;
  return done.get();
}

Result<int> BatchExecutor::Insert(Graph graph) {
  Request r;
  r.kind = Request::Kind::kInsert;
  r.graph = std::move(graph);
  std::future<Result<int>> done = r.inserted.get_future();
  Status admitted = Admit(std::move(r));
  if (!admitted.ok()) return admitted;
  return done.get();
}

Status BatchExecutor::Remove(int id) {
  Request r;
  r.kind = Request::Kind::kRemove;
  r.id = id;
  std::future<Status> done = r.status.get_future();
  Status admitted = Admit(std::move(r));
  if (!admitted.ok()) return admitted;
  return done.get();
}

Result<int> BatchExecutor::Compact() {
  Request r;
  r.kind = Request::Kind::kCompact;
  std::future<Result<int>> done = r.compacted.get_future();
  Status admitted = Admit(std::move(r));
  if (!admitted.ok()) return admitted;
  return done.get();
}

Result<ReindexReport> BatchExecutor::Reindex(int p) {
  Request r;
  r.kind = Request::Kind::kReindex;
  r.p = p;
  std::future<Result<ReindexReport>> done = r.reindexed.get_future();
  Status admitted = Admit(std::move(r));
  if (!admitted.ok()) return admitted;
  return done.get();
}

Status BatchExecutor::Snapshot(std::string path) {
  Request r;
  r.kind = Request::Kind::kSnapshot;
  r.path = std::move(path);
  std::future<Status> done = r.status.get_future();
  Status admitted = Admit(std::move(r));
  if (!admitted.ok()) return admitted;
  return done.get();
}

Result<EngineGauges> BatchExecutor::Gauges() {
  Request r;
  r.kind = Request::Kind::kGauges;
  std::future<Result<EngineGauges>> done = r.gauges.get_future();
  Status admitted = Admit(std::move(r));
  if (!admitted.ok()) return admitted;
  return done.get();
}

BatchExecutorStats BatchExecutor::Stats() const {
  MutexLock lock(&mu_);
  BatchExecutorStats stats;
  // The cells are atomics, but every writer updates them while holding mu_
  // (see the member comment), so this snapshot under mu_ is as mutually
  // consistent as the old plain-field one.
  stats.accepted = c_accepted_->value();
  stats.rejected = c_rejected_->value();
  stats.completed = c_completed_->value();
  stats.batches = c_batches_->value();
  stats.mutations = c_mutations_->value();
  stats.queued = in_flight_;
  stats.queue_high_watermark = queue_high_watermark_;
  stats.uptime_seconds = uptime_.Seconds();
  stats.start_epoch = start_epoch_;
  stats.approx_queries = c_approx_queries_->value();
  stats.approx_candidates_scanned = c_approx_candidates_scanned_->value();
  stats.approx_rows_pruned = c_approx_rows_pruned_->value();
  stats.snapshots_in_progress = snapshots_in_progress_;
  stats.snapshots_completed = c_snapshots_completed_->value();
  stats.reindexes_in_progress = reindex_in_flight_ ? 1 : 0;
  stats.reindexes_completed = c_reindexes_completed_->value();
  if (cache_ != nullptr) stats.cache = cache_->Stats();
  std::vector<double> window(
      latency_window_.begin(),
      latency_full_ ? latency_window_.end()
                    : latency_window_.begin() +
                          static_cast<std::ptrdiff_t>(latency_next_));
  stats.latency_ms = SummarizeLatencies(std::move(window));
  return stats;
}

std::string BatchExecutor::MetricsText() {
  {
    MutexLock lock(&mu_);
    g_queue_depth_->Set(static_cast<int64_t>(in_flight_));
    g_queue_high_watermark_->Set(
        static_cast<int64_t>(queue_high_watermark_));
  }
  g_uptime_seconds_->Set(
      static_cast<int64_t>(std::llround(uptime_.Seconds())));
  return registry_.ExpositionText();
}

void BatchExecutor::Pause() {
  MutexLock lock(&mu_);
  paused_ = true;
}

void BatchExecutor::Resume() {
  {
    MutexLock lock(&mu_);
    paused_ = false;
  }
  cv_.NotifyAll();
}

void BatchExecutor::DispatcherLoop() {
  // The dispatcher IS the engine's (and the store's) single writer: it
  // claims the writer role for its whole lifetime, which is what lets
  // Execute and the reindex helpers carry checked REQUIRES clauses instead
  // of the old prose contract. A no-op at runtime.
  engine_->writer_role().Acquire();
  for (;;) {
    std::vector<Request> batch;
    {
      MutexLock lock(&mu_);
      while (!((!queue_.empty() && !paused_) || stop_)) cv_.Wait(&mu_);
      if (queue_.empty() || paused_) {
        if (stop_) break;  // paused && stop: ~BatchExecutor cleared paused_
        continue;
      }
      // Pop the leading run: either a coalescible run of queries (up to
      // max_batch) or exactly one mutation. FIFO order across kinds is what
      // gives submit-then-query read-your-write semantics per producer.
      if (queue_.front().kind == Request::Kind::kQuery) {
        while (!queue_.empty() &&
               queue_.front().kind == Request::Kind::kQuery &&
               batch.size() < static_cast<size_t>(options_.max_batch)) {
          batch.push_back(std::move(queue_.front()));
          queue_.pop_front();
        }
      } else {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
    }
    const std::vector<std::function<void()>> fulfill = Execute(&batch);
    {
      MutexLock lock(&mu_);
      // Counters are published BEFORE the submitters are released, so a
      // client that just got its answer always sees itself completed in
      // Stats() (and the STATS verb never under-reports). The internal
      // generation-adoption step is invisible to the client-facing
      // accepted/completed/latency numbers (its admission skipped accepted_
      // too) — a reindex must not fabricate a phantom request in the STATS
      // arithmetic clients do.
      const bool internal =
          batch.front().kind == Request::Kind::kAdoptGeneration;
      if (!internal) {
        for (const Request& r : batch) {
          latency_window_[latency_next_] = r.queued_at.Millis();
          latency_next_ = (latency_next_ + 1) % latency_window_.size();
          if (latency_next_ == 0) latency_full_ = true;
        }
        c_completed_->Increment(batch.size());
      }
      in_flight_ -= batch.size();
      if (batch.front().kind == Request::Kind::kQuery) {
        c_batches_->Increment();
      } else if (batch.front().kind != Request::Kind::kGauges &&
                 batch.front().kind != Request::Kind::kReindex &&
                 batch.front().kind != Request::Kind::kAdoptGeneration) {
        // Reindex traffic has its own gauges (reindex_in_progress /
        // reindex_completed); counting it as a mutation would skew the
        // auto-trigger arithmetic clients do from STATS deltas.
        c_mutations_->Increment();
      }
    }
    for (const std::function<void()>& f : fulfill) f();
  }
  engine_->writer_role().Release();
}

std::vector<std::function<void()>> BatchExecutor::Execute(
    std::vector<Request>* batch) {
  // Engine work happens here; the returned closures only fulfill promises,
  // and the dispatcher runs them after publishing the counters (pointers
  // into *batch stay valid until then).
  std::vector<std::function<void()>> fulfill;
  fulfill.reserve(batch->size());
  // Stamp every request's admission wait at dispatch. The internal adopt
  // step skips the histogram like it skips accepted/completed — it is
  // bookkeeping, not a client request.
  for (Request& r : *batch) {
    r.queue_wait_usec = r.queued_at.Micros();
    if (r.kind != Request::Kind::kAdoptGeneration) {
      h_admission_wait_->Record(r.queue_wait_usec);
    }
  }
  if (batch->front().kind != Request::Kind::kQuery) {
    Request& r = batch->front();
    switch (r.kind) {
      case Request::Kind::kInsert: {
        WallTimer apply_timer;
        Result<int> id = engine_->Insert(r.graph);
        if (id.ok() && store_ != nullptr) {
          // Keep the store in lockstep with the engine: same id, same
          // graph, same thread. A divergence here would hand a future
          // reindex the wrong corpus. The store shares the engine's single
          // writer (this thread), so holding the engine's role — Execute's
          // REQUIRES — is holding the store's; the analysis cannot derive
          // that, hence the Assert.
          store_->writer_role().Assert();
          Status put = store_->Put(*id, std::move(r.graph));
          GDIM_CHECK(put.ok()) << put.ToString();
        }
        h_mutation_apply_->Record(apply_timer.Micros());
        if (id.ok()) {
          ++mutations_since_reindex_;
          MaybeAutoReindex();
        }
        fulfill.push_back(
            [&r, id = std::move(id)] { r.inserted.set_value(id); });
        break;
      }
      case Request::Kind::kRemove: {
        WallTimer apply_timer;
        Status status = engine_->Remove(r.id);
        if (status.ok() && store_ != nullptr) {
          // The store shares the engine's single writer; see kInsert.
          store_->writer_role().Assert();
          Status removed = store_->Remove(r.id);
          GDIM_CHECK(removed.ok()) << removed.ToString();
        }
        h_mutation_apply_->Record(apply_timer.Micros());
        if (status.ok()) {
          ++mutations_since_reindex_;
          MaybeAutoReindex();
        }
        fulfill.push_back(
            [&r, status = std::move(status)] { r.status.set_value(status); });
        break;
      }
      case Request::Kind::kCompact: {
        WallTimer apply_timer;
        const int reclaimed = engine_->tombstoned_rows();
        engine_->Compact();
        if (store_ != nullptr) {
          // The store shares the engine's single writer; see kInsert.
          store_->writer_role().Assert();
          store_->Compact();
        }
        h_mutation_apply_->Record(apply_timer.Micros());
        fulfill.push_back(
            [&r, reclaimed] { r.compacted.set_value(reclaimed); });
        break;
      }
      case Request::Kind::kReindex: {
        // Freeze + launch only; the promise travels to the background
        // selection and comes home with the kAdoptGeneration request. The
        // dispatcher (and this request, for counting purposes) is done the
        // moment the handoff happens — exactly the SNAPSHOT shape.
        StartReindex(r.p, std::move(r.reindexed));
        break;
      }
      case Request::Kind::kAdoptGeneration: {
        WallTimer swap_timer;
        Result<ReindexReport> outcome = InstallGeneration(r.built.get());
        h_reindex_swap_->Record(swap_timer.Micros());
        {
          MutexLock lock(&mu_);
          reindex_in_flight_ = false;
          if (outcome.ok()) c_reindexes_completed_->Increment();
        }
        fulfill.push_back([&r, outcome = std::move(outcome)] {
          r.reindexed.set_value(outcome);
        });
        break;
      }
      case Request::Kind::kSnapshot: {
        // Freeze on the dispatcher (the only thread allowed to touch the
        // engine) — a bounded pause, no file I/O. The write itself moves to
        // a background thread spawned from the fulfill closure, so the
        // handoff happens after the dispatcher publishes this request's
        // completion counters; the submitter's promise travels with it and
        // resolves only once the file is durable.
        WallTimer freeze_timer;
        auto frozen =
            std::make_shared<FrozenShardedState>(engine_->Freeze());
        if (store_ != nullptr) {
          // The snapshot carries the live graph set (v3 STOR section) so a
          // restart can serve REINDEX without the source database. The
          // store shares the engine's single writer; see kInsert.
          store_->writer_role().Assert();
          frozen->store = store_->Freeze();
        }
        h_snapshot_freeze_->Record(freeze_timer.Micros());
        fulfill.push_back([this, &r, frozen] {
          StartAsyncSnapshot(std::move(*frozen), std::move(r.path),
                             std::move(r.status));
        });
        break;
      }
      case Request::Kind::kGauges: {
        EngineGauges gauges;
        gauges.graphs = engine_->num_graphs();
        gauges.shards = engine_->num_shards();
        gauges.features = engine_->num_features();
        gauges.epoch = engine_->epoch();
        gauges.physical_rows = engine_->physical_rows();
        gauges.tombstones = engine_->tombstoned_rows();
        gauges.generation = engine_->generation();
        gauges.ivf_buckets = engine_->ivf_buckets();
        fulfill.push_back([&r, gauges] { r.gauges.set_value(gauges); });
        break;
      }
      case Request::Kind::kQuery:
        break;  // unreachable
    }
    return fulfill;
  }
  // Coalesced query run: one stage-1 mapping pass over the whole run
  // (MapAll parallelizes the VF2 work), then the result cache, then packed
  // multi-query scans for the misses only.
  GraphDatabase queries;
  queries.reserve(batch->size());
  for (Request& r : *batch) queries.push_back(std::move(r.graph));
  WallTimer map_timer;
  std::vector<std::vector<uint8_t>> fingerprints =
      engine_->mapper().MapAll(queries, engine_->options().serve.threads);
  const double map_usec = map_timer.Micros();
  h_map_all_->Record(map_usec);

  // The epoch is sampled here, on the dispatcher: mutations are FIFO with
  // query batches, so it is exact for every query in this run, and a hit at
  // this epoch replays a result the engine produced at this exact state.
  const uint64_t epoch = engine_->epoch();
  // Normalize saturated probe depths: once nprobe reaches the largest
  // shard's bucket count, every shard probes all of its buckets and the
  // answer is exactly NPROBE=all's. Rewriting the option (before keys are
  // computed) makes NPROBE=<huge> and NPROBE=all share one cache entry and
  // one scan span instead of answering identically under distinct keys.
  // Epoch-safe: any change to a bucket count is a mutation, which bumps the
  // epoch and invalidates every cached entry anyway.
  const int nprobe_all_threshold = engine_->max_shard_ivf_buckets();
  if (nprobe_all_threshold > 0) {
    for (Request& r : *batch) {
      QueryOptions& options = r.query_options;
      if (options.scan_mode == ScanMode::kApprox && options.nprobe > 0 &&
          options.nprobe >= nprobe_all_threshold) {
        options.nprobe = kNprobeAll;
      }
    }
  }
  // Results depend on every per-query knob, so the cache key carries the
  // scan mode alongside the engine-level prefilter flag in its tag byte.
  const uint8_t prefilter_tag =
      engine_->options().serve.containment_prefilter ? 1 : 0;
  std::vector<Ranking> results(batch->size());
  std::vector<std::string> keys(batch->size());
  std::vector<size_t> misses;
  misses.reserve(batch->size());
  std::vector<uint8_t> was_hit(batch->size(), 0);
  WallTimer cache_timer;
  for (size_t i = 0; i < batch->size(); ++i) {
    if (cache_ != nullptr) {
      const QueryOptions& options = (*batch)[i].query_options;
      const bool approx = options.scan_mode == ScanMode::kApprox;
      const uint8_t mode_tag = static_cast<uint8_t>(
          prefilter_tag | (options.scan_mode == ScanMode::kFull ? 2 : 0) |
          (approx ? 4 : 0));
      // nprobe is part of the key only for approx queries: different probe
      // depths legitimately rank differently, while exact modes ignore it.
      keys[i] = ResultCache::MakeKey(fingerprints[i], options.k, mode_tag,
                                     approx ? options.nprobe : 0);
      if (std::optional<Ranking> hit = cache_->Lookup(keys[i], epoch)) {
        results[i] = std::move(*hit);
        was_hit[i] = 1;
        continue;
      }
    }
    misses.push_back(i);
  }
  const double cache_usec = cache_ != nullptr ? cache_timer.Micros() : 0.0;
  if (cache_ != nullptr) h_cache_probe_->Record(cache_usec);

  // Scatter the misses. Requests may carry different options, so scans go
  // per equal-options span of the miss list; one closed-loop workload
  // almost always lands in a single span.
  std::vector<double> span_usec(batch->size(), 0.0);
  size_t begin = 0;
  while (begin < misses.size()) {
    const QueryOptions options = (*batch)[misses[begin]].query_options;
    size_t end = begin + 1;
    while (end < misses.size() &&
           (*batch)[misses[end]].query_options == options) {
      ++end;
    }
    std::vector<std::vector<uint8_t>> span;
    span.reserve(end - begin);
    for (size_t j = begin; j < end; ++j) {
      span.push_back(std::move(fingerprints[misses[j]]));
    }
    ServeBatchReport span_report;
    WallTimer span_timer;
    std::vector<Ranking> scanned =
        engine_->QueryMappedBatch(span, options, &span_report);
    const double scan_usec = span_timer.Micros();
    // Fold the engine's per-stage samples into the registry. The per-shard
    // scan passes arrive pre-binnable, so one Merge replaces a cell
    // round-trip per sample; the scan family is split exact/approx by the
    // span's mode (an approx span's passes are probe-narrowed scans).
    {
      BucketHistogram shard_scans(StageLatencyBucketBoundsUsec());
      for (double v : span_report.stage_scan_usec) shard_scans.Record(v);
      (options.scan_mode == ScanMode::kApprox ? h_scan_approx_
                                              : h_scan_exact_)
          ->Merge(shard_scans);
    }
    for (double v : span_report.stage_ivf_probe_usec) h_ivf_probe_->Record(v);
    for (double v : span_report.stage_gather_usec) h_gather_merge_->Record(v);
    if (span_report.approx_queries > 0) {
      // Publish the approx scan-work counters as this span lands. Execute
      // EXCLUDES mu_, so take it briefly — same shape as kAdoptGeneration's
      // in-Execute accounting.
      MutexLock lock(&mu_);
      c_approx_queries_->Increment(span_report.approx_queries);
      c_approx_candidates_scanned_->Increment(
          static_cast<uint64_t>(span_report.approx_candidates_scanned));
      c_approx_rows_pruned_->Increment(
          static_cast<uint64_t>(span_report.approx_rows_pruned));
    }
    for (size_t j = begin; j < end; ++j) {
      const size_t i = misses[j];
      span_usec[i] = scan_usec;
      results[i] = std::move(scanned[j - begin]);
      if (cache_ != nullptr) cache_->Insert(keys[i], epoch, results[i]);
    }
    begin = end;
  }

  const bool slow_log = options_.slow_query_usec > 0;
  for (size_t i = 0; i < batch->size(); ++i) {
    Request& r = (*batch)[i];
    if (r.trace != nullptr || slow_log) {
      // Non-overlapping dispatcher segments of this query's life: their sum
      // is <= total, and total (taken here, before the promise resolves) is
      // <= whatever latency the client measures around its submit.
      const double total_usec = r.queued_at.Micros();
      const bool hit = was_hit[i] != 0;
      if (r.trace != nullptr) {
        r.trace->queue_usec = r.queue_wait_usec;
        r.trace->map_usec = map_usec;
        r.trace->cache_usec = cache_usec;
        r.trace->scan_usec = span_usec[i];
        r.trace->total_usec = total_usec;
        r.trace->cache_hit = hit;
      }
      if (slow_log &&
          total_usec >= static_cast<double>(options_.slow_query_usec)) {
        c_slow_queries_->Increment();
        char line[256];
        std::snprintf(
            line, sizeof(line),
            "slow-query total_usec=%lld queue=%lld map=%lld cache=%lld "
            "scan=%lld k=%d mode=%s cache_hit=%d",
            static_cast<long long>(std::llround(total_usec)),
            static_cast<long long>(std::llround(r.queue_wait_usec)),
            static_cast<long long>(std::llround(map_usec)),
            static_cast<long long>(std::llround(cache_usec)),
            static_cast<long long>(std::llround(span_usec[i])),
            r.query_options.k, ScanModeName(r.query_options.scan_mode),
            hit ? 1 : 0);
        if (options_.slow_query_sink) {
          options_.slow_query_sink(line);
        } else {
          std::fprintf(stderr, "%s\n", line);
        }
      }
    }
    fulfill.push_back([&r, result = std::move(results[i])]() mutable {
      r.ranking.set_value(std::move(result));
    });
  }
  return fulfill;
}

void BatchExecutor::AdmitInternal(Request r) {
  {
    MutexLock lock(&mu_);
    if (!stop_) {
      // in_flight_ must balance the dispatcher's decrement, but accepted
      // stays client-only — the adopt step is bookkeeping, not a request.
      ++in_flight_;
      if (in_flight_ > queue_high_watermark_) {
        queue_high_watermark_ = in_flight_;
      }
      queue_.push_back(std::move(r));
      cv_.NotifyOne();  // under mu_, same lifetime reasoning as Admit
      return;
    }
    // The dispatcher is gone; nobody will ever install this generation.
    reindex_in_flight_ = false;
  }
  r.reindexed.set_value(Status::Internal("executor is shutting down"));
}

void BatchExecutor::StartReindex(int p,
                                 std::promise<Result<ReindexReport>> done) {
  if (store_ == nullptr) {
    done.set_value(Status::InvalidArgument(
        "reindex unavailable: the server has no live graph store "
        "(serve-net needs --db)"));
    return;
  }
  {
    MutexLock lock(&mu_);
    if (reindex_in_flight_) {
      done.set_value(
          Status::ResourceExhausted("a reindex is already in progress"));
      return;
    }
    reindex_in_flight_ = true;
  }
  // The freeze: the dispatcher's only synchronous contribution. Everything
  // the background selection reads is copied out here, so churn that
  // follows can never race it. The store shares the engine's single writer
  // (this method's REQUIRES), hence the Assert.
  store_->writer_role().Assert();
  FrozenGraphSet frozen = store_->Freeze();
  if (frozen.empty()) {
    MutexLock lock(&mu_);
    reindex_in_flight_ = false;
    done.set_value(Status::InvalidArgument("cannot reindex an empty database"));
    return;
  }
  RefreshOptions refresh = options_.refresh;
  refresh.p = p > 0 ? p
              : refresh.p > 0 ? refresh.p
                              : engine_->num_features();
  mutations_since_reindex_ = 0;
  // Shared so the promise survives the trip through the refresh thread's
  // closure and back into a Request.
  auto promise =
      std::make_shared<std::promise<Result<ReindexReport>>>(std::move(done));
  Status started = refresher_.Start(
      std::move(frozen), std::move(refresh),
      [this, promise, build_timer = WallTimer()](
          Result<RefreshedGeneration> built) {
        // Freeze handoff → finished generation, measured on the refresher
        // thread; the histogram cells are lock-free, so recording off the
        // dispatcher is safe.
        h_reindex_build_->Record(build_timer.Micros());
        Request adopt;
        adopt.kind = Request::Kind::kAdoptGeneration;
        adopt.built =
            std::make_shared<Result<RefreshedGeneration>>(std::move(built));
        adopt.reindexed = std::move(*promise);
        AdmitInternal(std::move(adopt));
      });
  if (!started.ok()) {
    // Unreachable while reindex_in_flight_ gates Start, but a refresher
    // refusal must not leave the gauge stuck or the submitter hanging.
    MutexLock lock(&mu_);
    reindex_in_flight_ = false;
    promise->set_value(started);
  }
}

void BatchExecutor::MaybeAutoReindex() {
  if (options_.reindex_every <= 0 || store_ == nullptr) return;
  if (mutations_since_reindex_ < options_.reindex_every) return;
  {
    MutexLock lock(&mu_);
    if (reindex_in_flight_) return;
  }
  // Fire-and-forget: the report is discarded (no future attached); success
  // shows up as a dimension_generation bump, failure as reindex_in_progress
  // falling with no bump.
  StartReindex(0, std::promise<Result<ReindexReport>>());
}

Result<ReindexReport> BatchExecutor::InstallGeneration(
    Result<RefreshedGeneration>* built) {
  if (!built->ok()) return built->status();
  RefreshedGeneration& generation = **built;
  // Reconcile the generation (built over the freeze-time live set) with
  // the churn that happened during selection: ids still live keep their
  // frozen fingerprints, ids inserted since are VF2-mapped with the NEW
  // mapper, ids removed since are dropped. The cost is proportional to the
  // churn during the refresh, not the database.
  const FeatureMapper mapper(generation.features);
  PersistedIndex index;
  index.features = generation.features;
  const std::vector<int> live = store_->live_ids();
  index.ids.reserve(live.size());
  index.db_bits.reserve(live.size());
  int remapped = 0;
  for (int id : live) {
    const auto it = std::lower_bound(generation.ids.begin(),
                                     generation.ids.end(), id);
    if (it != generation.ids.end() && *it == id) {
      index.db_bits.push_back(std::move(
          generation.fingerprints[static_cast<size_t>(
              it - generation.ids.begin())]));
    } else {
      const Graph* graph = store_->FindLive(id);
      GDIM_CHECK(graph != nullptr);
      index.db_bits.push_back(mapper.Map(*graph));
      ++remapped;
    }
    index.ids.push_back(id);
  }
  index.next_id = engine_->next_id();
  Result<ShardedEngine> next =
      ShardedEngine::FromIndex(std::move(index), engine_->options());
  if (!next.ok()) return next.status();
  engine_->SwapGeneration(std::move(next).value());
  ReindexReport report;
  report.generation = engine_->generation();
  report.features = engine_->num_features();
  report.remapped = remapped;
  return report;
}

void BatchExecutor::StartAsyncSnapshot(FrozenShardedState frozen,
                                       std::string path,
                                       std::promise<Status> done) {
  // Shared so the promise survives a failed thread spawn (a lambda capture
  // would be destroyed with the lambda, breaking the submitter's future).
  auto promise = std::make_shared<std::promise<Status>>(std::move(done));
  {
    MutexLock lock(&mu_);
    ++snapshots_in_progress_;
  }
  // Detached: the thread reads only its own frozen capture, then signals
  // through mu_/snapshot_cv_ (which the destructor waits on) before
  // releasing the submitter — so neither the executor nor the engine can
  // disappear under it, and a client that got its OK is guaranteed the
  // gauge already ticked over.
  try {
    std::thread([this, frozen = std::move(frozen), path = std::move(path),
                 promise]() mutable {
      WallTimer write_timer;
      Status status = ShardedEngine::WriteSnapshot(frozen, path);
      h_snapshot_write_->Record(write_timer.Micros());
      {
        MutexLock lock(&mu_);
        --snapshots_in_progress_;
        c_snapshots_completed_->Increment();
        snapshot_cv_.NotifyAll();
      }
      promise->set_value(std::move(status));
    }).detach();
  } catch (const std::system_error& e) {
    // Thread/resource exhaustion must fail the one SNAPSHOT request, not
    // kill the dispatcher or wedge the destructor on a leaked gauge.
    {
      MutexLock lock(&mu_);
      --snapshots_in_progress_;
      snapshot_cv_.NotifyAll();
    }
    promise->set_value(Status::Internal(
        std::string("cannot spawn snapshot writer: ") + e.what()));
  }
}

}  // namespace gdim
