#include "server/batch_executor.h"

#include <algorithm>
#include <iterator>
#include <utility>

#include "common/logging.h"

namespace gdim {

BatchExecutor::BatchExecutor(ShardedEngine* engine,
                             BatchExecutorOptions options)
    : engine_(engine), options_(options) {
  GDIM_CHECK(engine_ != nullptr);
  GDIM_CHECK(options_.queue_capacity >= 1)
      << "queue_capacity must be >= 1, got " << options_.queue_capacity;
  GDIM_CHECK(options_.max_batch >= 1)
      << "max_batch must be >= 1, got " << options_.max_batch;
  GDIM_CHECK(options_.latency_window >= 1);
  latency_window_.resize(static_cast<size_t>(options_.latency_window), 0.0);
  dispatcher_ = std::thread([this] { DispatcherLoop(); });
}

BatchExecutor::~BatchExecutor() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
    paused_ = false;  // a paused executor must still drain on shutdown
  }
  cv_.notify_all();
  dispatcher_.join();
}

Status BatchExecutor::Admit(Request r) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) {
      ++rejected_;
      return Status::Internal("executor is shutting down");
    }
    if (in_flight_ >= static_cast<size_t>(options_.queue_capacity)) {
      ++rejected_;
      return Status::ResourceExhausted(
          "admission queue full (" +
          std::to_string(options_.queue_capacity) + " in flight)");
    }
    ++accepted_;
    ++in_flight_;
    queue_.push_back(std::move(r));
  }
  cv_.notify_one();
  return Status::OK();
}

Result<Ranking> BatchExecutor::Query(Graph query, int k) {
  Request r;
  r.kind = Request::Kind::kQuery;
  r.graph = std::move(query);
  r.k = k;
  std::future<Result<Ranking>> done = r.ranking.get_future();
  Status admitted = Admit(std::move(r));
  if (!admitted.ok()) return admitted;
  return done.get();
}

Result<int> BatchExecutor::Insert(Graph graph) {
  Request r;
  r.kind = Request::Kind::kInsert;
  r.graph = std::move(graph);
  std::future<Result<int>> done = r.inserted.get_future();
  Status admitted = Admit(std::move(r));
  if (!admitted.ok()) return admitted;
  return done.get();
}

Status BatchExecutor::Remove(int id) {
  Request r;
  r.kind = Request::Kind::kRemove;
  r.id = id;
  std::future<Status> done = r.status.get_future();
  Status admitted = Admit(std::move(r));
  if (!admitted.ok()) return admitted;
  return done.get();
}

Status BatchExecutor::Snapshot(std::string path) {
  Request r;
  r.kind = Request::Kind::kSnapshot;
  r.path = std::move(path);
  std::future<Status> done = r.status.get_future();
  Status admitted = Admit(std::move(r));
  if (!admitted.ok()) return admitted;
  return done.get();
}

Result<EngineGauges> BatchExecutor::Gauges() {
  Request r;
  r.kind = Request::Kind::kGauges;
  std::future<Result<EngineGauges>> done = r.gauges.get_future();
  Status admitted = Admit(std::move(r));
  if (!admitted.ok()) return admitted;
  return done.get();
}

BatchExecutorStats BatchExecutor::Stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  BatchExecutorStats stats;
  stats.accepted = accepted_;
  stats.rejected = rejected_;
  stats.completed = completed_;
  stats.batches = batches_;
  stats.mutations = mutations_;
  stats.queued = in_flight_;
  std::vector<double> window(
      latency_window_.begin(),
      latency_full_ ? latency_window_.end()
                    : latency_window_.begin() +
                          static_cast<std::ptrdiff_t>(latency_next_));
  stats.latency_ms = SummarizeLatencies(std::move(window));
  return stats;
}

void BatchExecutor::Pause() {
  std::lock_guard<std::mutex> lock(mu_);
  paused_ = true;
}

void BatchExecutor::Resume() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    paused_ = false;
  }
  cv_.notify_all();
}

void BatchExecutor::DispatcherLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    cv_.wait(lock, [this] { return (!queue_.empty() && !paused_) || stop_; });
    if (queue_.empty() || paused_) {
      if (stop_) return;  // paused && stop: ~BatchExecutor cleared paused_
      continue;
    }
    // Pop the leading run: either a coalescible run of queries (up to
    // max_batch) or exactly one mutation. FIFO order across kinds is what
    // gives submit-then-query read-your-write semantics per producer.
    std::vector<Request> batch;
    if (queue_.front().kind == Request::Kind::kQuery) {
      while (!queue_.empty() &&
             queue_.front().kind == Request::Kind::kQuery &&
             batch.size() < static_cast<size_t>(options_.max_batch)) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
    } else {
      batch.push_back(std::move(queue_.front()));
      queue_.pop_front();
    }
    lock.unlock();
    const std::vector<std::function<void()>> fulfill = Execute(&batch);
    lock.lock();
    // Counters are published BEFORE the submitters are released, so a
    // client that just got its answer always sees itself completed in
    // Stats() (and the STATS verb never under-reports).
    for (const Request& r : batch) {
      latency_window_[latency_next_] = r.queued_at.Millis();
      latency_next_ = (latency_next_ + 1) % latency_window_.size();
      if (latency_next_ == 0) latency_full_ = true;
    }
    in_flight_ -= batch.size();
    completed_ += batch.size();
    if (batch.front().kind == Request::Kind::kQuery) {
      ++batches_;
    } else if (batch.front().kind != Request::Kind::kGauges) {
      ++mutations_;
    }
    lock.unlock();
    for (const std::function<void()>& f : fulfill) f();
    lock.lock();
  }
}

std::vector<std::function<void()>> BatchExecutor::Execute(
    std::vector<Request>* batch) {
  // Engine work happens here; the returned closures only fulfill promises,
  // and the dispatcher runs them after publishing the counters (pointers
  // into *batch stay valid until then).
  std::vector<std::function<void()>> fulfill;
  fulfill.reserve(batch->size());
  if (batch->front().kind != Request::Kind::kQuery) {
    Request& r = batch->front();
    switch (r.kind) {
      case Request::Kind::kInsert: {
        Result<int> id = engine_->Insert(r.graph);
        fulfill.push_back(
            [&r, id = std::move(id)] { r.inserted.set_value(id); });
        break;
      }
      case Request::Kind::kRemove: {
        Status status = engine_->Remove(r.id);
        fulfill.push_back(
            [&r, status = std::move(status)] { r.status.set_value(status); });
        break;
      }
      case Request::Kind::kSnapshot: {
        Status status = engine_->Snapshot(r.path);
        fulfill.push_back(
            [&r, status = std::move(status)] { r.status.set_value(status); });
        break;
      }
      case Request::Kind::kGauges: {
        EngineGauges gauges;
        gauges.graphs = engine_->num_graphs();
        gauges.shards = engine_->num_shards();
        gauges.features = engine_->num_features();
        fulfill.push_back([&r, gauges] { r.gauges.set_value(gauges); });
        break;
      }
      case Request::Kind::kQuery:
        break;  // unreachable
    }
    return fulfill;
  }
  // Coalesced query run: one stage-1 mapping pass over the whole run
  // (MapAll parallelizes the VF2 work), then packed multi-query scans.
  // Requests may carry different k, so scans go per same-k span; one
  // closed-loop workload almost always lands in a single span.
  GraphDatabase queries;
  queries.reserve(batch->size());
  for (Request& r : *batch) queries.push_back(std::move(r.graph));
  std::vector<std::vector<uint8_t>> fingerprints =
      engine_->mapper().MapAll(queries, engine_->options().serve.threads);
  size_t begin = 0;
  while (begin < batch->size()) {
    size_t end = begin + 1;
    while (end < batch->size() && (*batch)[end].k == (*batch)[begin].k) {
      ++end;
    }
    std::vector<std::vector<uint8_t>> span(
        std::make_move_iterator(fingerprints.begin() +
                                static_cast<std::ptrdiff_t>(begin)),
        std::make_move_iterator(fingerprints.begin() +
                                static_cast<std::ptrdiff_t>(end)));
    std::vector<Ranking> results =
        engine_->QueryMappedBatch(span, (*batch)[begin].k);
    for (size_t i = begin; i < end; ++i) {
      Request& r = (*batch)[i];
      fulfill.push_back(
          [&r, result = std::move(results[i - begin])]() mutable {
            r.ranking.set_value(std::move(result));
          });
    }
    begin = end;
  }
  return fulfill;
}

}  // namespace gdim
