#ifndef GDIM_SERVER_NET_SOCKET_H_
#define GDIM_SERVER_NET_SOCKET_H_

#include <optional>
#include <string>

#include "common/status.h"

namespace gdim {

/// RAII owner of a POSIX file descriptor (socket). Move-only; closes on
/// destruction. The minimal plumbing shared by the TCP server, the
/// load-generator client, and the network tests — no external networking
/// dependency, just <sys/socket.h>.
class ScopedFd {
 public:
  ScopedFd() = default;
  explicit ScopedFd(int fd) : fd_(fd) {}
  ~ScopedFd() { reset(); }

  ScopedFd(ScopedFd&& other) noexcept : fd_(other.release()) {}
  ScopedFd& operator=(ScopedFd&& other) noexcept {
    if (this != &other) {
      reset();
      fd_ = other.release();
    }
    return *this;
  }
  ScopedFd(const ScopedFd&) = delete;
  ScopedFd& operator=(const ScopedFd&) = delete;

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }

  /// Gives up ownership without closing.
  int release() {
    int fd = fd_;
    fd_ = -1;
    return fd;
  }

  /// Closes the descriptor (no-op if invalid).
  void reset();

 private:
  int fd_ = -1;
};

/// Opens a TCP listening socket bound to host:port (numeric IPv4 only;
/// port 0 asks the kernel for an ephemeral port). On success *bound_port
/// holds the actual port. SO_REUSEADDR is set so restarts do not trip over
/// TIME_WAIT.
Result<ScopedFd> ListenTcp(const std::string& host, int port, int backlog,
                           int* bound_port);

/// Connects to host:port (numeric IPv4 only).
Result<ScopedFd> ConnectTcp(const std::string& host, int port);

/// Writes all of data (handles short writes; suppresses SIGPIPE so a peer
/// hangup surfaces as a Status, not a process kill).
Status SendAll(int fd, const std::string& data);

/// Buffered line reader over a socket: splits the byte stream on '\n',
/// strips a trailing '\r'. Lines are capped (a peer streaming an unbounded
/// line cannot exhaust server memory): an over-long line is discarded in
/// bounded memory through its terminating '\n', reported once as a typed
/// InvalidArgument, and the reader stays usable — the server can answer
/// with an ERR line instead of dropping the connection without a reply.
class LineReader {
 public:
  /// fd is borrowed, not owned. max_line_bytes bounds one line.
  explicit LineReader(int fd, size_t max_line_bytes = 1 << 20)
      : fd_(fd), max_line_bytes_(max_line_bytes) {}

  /// Next line without its terminator; std::nullopt on clean EOF.
  /// InvalidArgument for an over-long line (the reader has resynchronized
  /// past it; keep calling). IoError on socket errors — those end the
  /// stream.
  Result<std::optional<std::string>> ReadLine();

 private:
  int fd_;
  size_t max_line_bytes_;
  std::string buffer_;
  bool eof_ = false;
  /// Swallowing an over-long line until its '\n' (buffer kept empty).
  bool discarding_ = false;
};

}  // namespace gdim

#endif  // GDIM_SERVER_NET_SOCKET_H_
