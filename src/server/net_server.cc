#include "server/net_server.h"

#include <sys/socket.h>

#include <cstdio>
#include <utility>

#include "common/logging.h"
#include "core/kernels/scan_kernel.h"
#include "server/wire.h"

namespace gdim {

NetServer::NetServer(BatchExecutor* executor, NetServerOptions options)
    : executor_(executor), options_(std::move(options)) {
  GDIM_CHECK(executor_ != nullptr);
}

NetServer::~NetServer() { Stop(); }

Status NetServer::Start() {
  GDIM_CHECK(!started_) << "NetServer::Start called twice";
  Result<ScopedFd> listening =
      ListenTcp(options_.host, options_.port, options_.backlog, &port_);
  if (!listening.ok()) return listening.status();
  listen_fd_ = std::move(listening).value();
  started_ = true;
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

uint64_t NetServer::connections_accepted() const {
  MutexLock lock(&mu_);
  return connections_accepted_;
}

void NetServer::Stop() {
  if (!started_) return;
  {
    MutexLock lock(&mu_);
    if (stopping_) return;
    stopping_ = true;
    // Severing the sockets pops every handler out of its blocking recv.
    for (int fd : live_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  ::shutdown(listen_fd_.get(), SHUT_RDWR);
  accept_thread_.join();
  listen_fd_.reset();
  MutexLock lock(&mu_);
  while (active_connections_ != 0) drained_cv_.Wait(&mu_);
}

void NetServer::AcceptLoop() {
  for (;;) {
    const int fd = ::accept(listen_fd_.get(), nullptr, nullptr);
    if (fd < 0) {
      MutexLock lock(&mu_);
      if (stopping_) return;
      continue;  // transient accept failure (EINTR, aborted handshake)
    }
    bool reject = false;
    {
      MutexLock lock(&mu_);
      if (stopping_) {
        ::close(fd);
        return;
      }
      if (active_connections_ >= options_.max_connections) {
        reject = true;
      } else {
        ++connections_accepted_;
        ++active_connections_;
        live_fds_.insert(fd);
      }
    }
    if (reject) {
      SendAll(fd, FormatErrorResponse(Status::ResourceExhausted(
                      "connection limit reached")) +
                      "\n");
      ::close(fd);
      continue;
    }
    // Detached: HandleConnection deregisters itself and signals drained_cv_,
    // and Stop() waits for that, so the thread never outlives the server.
    std::thread([this, fd] { HandleConnection(fd); }).detach();
  }
}

void NetServer::HandleConnection(int fd) {
  LineReader reader(fd);
  for (;;) {
    Result<std::optional<std::string>> line = reader.ReadLine();
    if (!line.ok()) {
      // An over-long line is a protocol error, not a transport error: the
      // reader has already resynchronized past the offending newline, so
      // answer with a typed ERR and keep serving the connection. Real
      // socket failures (IoError) still end it.
      if (line.status().code() == StatusCode::kInvalidArgument) {
        if (!SendAll(fd, FormatErrorResponse(line.status()) + "\n").ok()) {
          break;
        }
        continue;
      }
      break;
    }
    if (!line->has_value()) break;  // EOF
    if ((*line)->empty()) continue;  // tolerate blank lines
    bool quit = false;
    const std::string response = HandleLine(**line, &quit);
    if (!SendAll(fd, response + "\n").ok()) break;
    if (quit) break;
  }
  // Deregister, close, and signal under one lock: erasing before close (a
  // closed fd number can be reused by a concurrent accept, which would
  // clobber the new connection's registration) and notifying while locked
  // (Stop() may destroy the server the moment the drain predicate holds).
  {
    MutexLock lock(&mu_);
    live_fds_.erase(fd);
    ::close(fd);
    --active_connections_;
    drained_cv_.NotifyAll();
  }
}

std::string NetServer::HandleLine(const std::string& line, bool* quit) {
  Result<WireRequest> parsed = ParseWireRequest(line);
  if (!parsed.ok()) return FormatErrorResponse(parsed.status());
  WireRequest& request = *parsed;
  switch (request.verb) {
    case WireVerb::kQuery: {
      if (request.trace) {
        QueryTrace trace;
        Result<Ranking> ranking = executor_->Query(std::move(request.graph),
                                                   request.options, &trace);
        if (!ranking.ok()) return FormatErrorResponse(ranking.status());
        return FormatTraceLine(trace) + "\n" + FormatRankingResponse(*ranking);
      }
      Result<Ranking> ranking =
          executor_->Query(std::move(request.graph), request.options);
      if (!ranking.ok()) return FormatErrorResponse(ranking.status());
      return FormatRankingResponse(*ranking);
    }
    case WireVerb::kInsert: {
      Result<int> id = executor_->Insert(std::move(request.graph));
      if (!id.ok()) return FormatErrorResponse(id.status());
      return "OK " + std::to_string(*id);
    }
    case WireVerb::kRemove: {
      Status status = executor_->Remove(request.id);
      if (!status.ok()) return FormatErrorResponse(status);
      return "OK removed " + std::to_string(request.id);
    }
    case WireVerb::kCompact: {
      Result<int> reclaimed = executor_->Compact();
      if (!reclaimed.ok()) return FormatErrorResponse(reclaimed.status());
      return "OK compacted " + std::to_string(*reclaimed);
    }
    case WireVerb::kReindex: {
      Result<ReindexReport> report = executor_->Reindex(request.p);
      if (!report.ok()) return FormatErrorResponse(report.status());
      return "OK reindexed generation=" + std::to_string(report->generation) +
             " features=" + std::to_string(report->features);
    }
    case WireVerb::kSnapshot: {
      Status status = executor_->Snapshot(std::move(request.path));
      if (!status.ok()) return FormatErrorResponse(status);
      return "OK snapshot";
    }
    case WireVerb::kStats: {
      Result<EngineGauges> gauges = executor_->Gauges();
      if (!gauges.ok()) return FormatErrorResponse(gauges.status());
      const BatchExecutorStats stats = executor_->Stats();
      char out[2048];
      std::snprintf(
          out, sizeof(out),
          "OK graphs=%d shards=%d features=%d physical_rows=%d "
          "tombstones=%d accepted=%llu rejected=%llu "
          "completed=%llu batches=%llu mutations=%llu queued=%zu "
          "queue_depth=%zu queue_high_watermark=%zu "
          "p50_ms=%.3f p99_ms=%.3f epoch=%llu cache_hits=%llu "
          "cache_misses=%llu cache_evictions=%llu cache_entries=%zu "
          "cache_bytes=%zu snapshots_in_progress=%llu "
          "snapshots_completed=%llu dimension_generation=%llu "
          "reindex_in_progress=%llu reindex_completed=%llu "
          "approx_queries=%llu approx_candidates_scanned=%llu "
          "approx_rows_pruned=%llu ivf_buckets=%d kernel=%s "
          "uptime_seconds=%lld start_epoch=%lld",
          gauges->graphs, gauges->shards, gauges->features,
          gauges->physical_rows, gauges->tombstones,
          static_cast<unsigned long long>(stats.accepted),
          static_cast<unsigned long long>(stats.rejected),
          static_cast<unsigned long long>(stats.completed),
          static_cast<unsigned long long>(stats.batches),
          static_cast<unsigned long long>(stats.mutations), stats.queued,
          stats.queued, stats.queue_high_watermark,
          stats.latency_ms.p50, stats.latency_ms.p99,
          static_cast<unsigned long long>(gauges->epoch),
          static_cast<unsigned long long>(stats.cache.hits),
          static_cast<unsigned long long>(stats.cache.misses),
          static_cast<unsigned long long>(stats.cache.evictions),
          stats.cache.entries, stats.cache.bytes,
          static_cast<unsigned long long>(stats.snapshots_in_progress),
          static_cast<unsigned long long>(stats.snapshots_completed),
          static_cast<unsigned long long>(gauges->generation),
          static_cast<unsigned long long>(stats.reindexes_in_progress),
          static_cast<unsigned long long>(stats.reindexes_completed),
          static_cast<unsigned long long>(stats.approx_queries),
          static_cast<unsigned long long>(stats.approx_candidates_scanned),
          static_cast<unsigned long long>(stats.approx_rows_pruned),
          gauges->ivf_buckets, ActiveScanKernel().name(),
          static_cast<long long>(stats.uptime_seconds),
          stats.start_epoch);
      return out;
    }
    case WireVerb::kMetrics:
      // Multi-line Prometheus exposition; the terminating '# EOF' line lets
      // a line-oriented client know where the scrape ends.
      return executor_->MetricsText() + "# EOF";
    case WireVerb::kPing:
      return "OK pong";
    case WireVerb::kQuit:
      *quit = true;
      return "OK bye";
  }
  return FormatErrorResponse(Status::Internal("unhandled verb"));
}

}  // namespace gdim
