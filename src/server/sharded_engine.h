#ifndef GDIM_SERVER_SHARDED_ENGINE_H_
#define GDIM_SERVER_SHARDED_ENGINE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/sync.h"
#include "core/index_io.h"
#include "core/mapper.h"
#include "core/topk.h"
#include "graph/graph.h"
#include "serve/query_engine.h"
#include "store/graph_store.h"

namespace gdim {

/// Knobs for the sharded serving layer.
struct ShardedOptions {
  /// Number of QueryEngine shards; must be >= 1. Results are bit-identical
  /// for every shard count (the gather merge reproduces the single-engine
  /// score-then-id total order exactly).
  int num_shards = 1;

  /// Per-shard serving options. `serve.threads` also sizes the scatter pool
  /// of Query()/QueryBatch(); the prefilter flag is passed through to every
  /// shard.
  ServeOptions serve;
};

/// An immutable capture of every shard's live state plus the global
/// metadata a snapshot file needs, taken by ShardedEngine::Freeze() on the
/// engine's (single) writer thread and then streamed to disk by
/// WriteSnapshot on any thread — the engine is free to mutate in the
/// meantime. See FrozenEngineState for what the per-shard capture costs.
struct FrozenShardedState {
  GraphDatabase features;  ///< copied (small: p feature graphs)
  std::vector<FrozenEngineState> shards;
  int next_id = 0;
  size_t words_per_row = 0;
  uint64_t epoch = 0;  ///< the engine's mutation epoch at freeze time
  /// Dimension generation at freeze time; restored by a v3 reload so a
  /// restarted server reports the same `dimension_generation` gauge.
  uint64_t generation = 0;
  /// The live graph set behind the engine, when the snapshotting layer has
  /// one (the executor attaches its GraphStore's Freeze()). Persisted as the
  /// v3 STOR section so a restart can resume REINDEX without the source
  /// database. Absent (e.g. engine-only Snapshot), the section is omitted.
  std::optional<FrozenGraphSet> store;
};

/// A horizontally partitioned QueryEngine: the database is hash-partitioned
/// across N shards by stable external id (shard of id = id % N), and a top-k
/// query is answered by scattering the mapped fingerprint to every shard in
/// parallel and gather-merging the per-shard top-k lists with the same
/// ascending score-then-id total order the single engine uses.
///
/// Invariants:
///  - External ids are global and stable: the sharded engine owns one id
///    sequence, routes inserts/removes by id, and a snapshot/reload cycle —
///    including reloading with a *different* shard count — preserves every
///    id (the partition function is a pure function of id and N).
///  - Bit-identical answers: for any shard count and any thread count,
///    Query/QueryBatch return exactly the ids and scores a single
///    QueryEngine over the same live database returns, before and after any
///    interleaved insert/remove/compact sequence. Each shard's top-k is a
///    superset of the global top-k restricted to that shard, and the k-way
///    merge breaks ties by id just like the single-engine ranking.
///
/// Like QueryEngine, mutations are not thread-safe: callers must not run
/// Insert/Remove/Compact concurrently with each other or with queries. The
/// contract is compiler-checked: every mutating method (and Freeze)
/// REQUIRES writer_role(), acquired once by the single writer — the
/// BatchExecutor's dispatcher thread in production, a ScopedRole in
/// single-threaded tests/tools. The per-shard QueryEngine roles are
/// subsumed: shards are private and reachable only through this engine, so
/// the implementation asserts each shard's role under its own.
class ShardedEngine {
 public:
  /// Partitions the persisted index across options.num_shards shards.
  /// Row ids (explicit, or positional when the index has no id block)
  /// determine placement; validation mirrors QueryEngine::FromIndex.
  static Result<ShardedEngine> FromIndex(PersistedIndex index,
                                         ShardedOptions options = {});

  /// FromIndex over an index already in the packed scan layout: shard rows
  /// are split with word-level copies, never through byte vectors. v3
  /// sections are adopted when present: every shard projects the persisted
  /// IVF layout onto its own partition (skipping the rebuild), and META
  /// restores the dimension generation and raises the mutation epoch to at
  /// least its pre-snapshot value, so epoch-keyed consumers (the result
  /// cache) can never confuse pre- and post-restart answers. A persisted
  /// graph store (STOR) is not engine state — the serving tool extracts it
  /// before calling this.
  static Result<ShardedEngine> FromPacked(PackedIndex index,
                                          ShardedOptions options = {});

  /// Loads the index file at path (v2 through the direct packed-words
  /// path) and partitions it.
  static Result<ShardedEngine> Open(const std::string& index_path,
                                    ShardedOptions options = {});

  int num_shards() const { return static_cast<int>(shards_.size()); }
  int num_features() const { return mapper_.num_features(); }
  const ShardedOptions& options() const { return options_; }
  /// The shared stage-1 mapper: the batch executor maps a coalesced run
  /// once (MapAll) and feeds the fingerprints to QueryMappedBatch.
  const FeatureMapper& mapper() const { return mapper_; }
  /// Live graphs across all shards.
  int num_graphs() const;
  /// Physical rows (sealed base + append-only delta) across all shards —
  /// what a full scan actually touches, tombstoned rows included.
  int physical_rows() const;
  /// Rows removed but not yet reclaimed by Compact(), across all shards.
  int tombstoned_rows() const;
  /// IVF candidate-pruning buckets across all shards (the `ivf_buckets`
  /// STATS gauge). Every shard rebuilds its index on construction (or
  /// adopts a persisted v3 layout), so a generation swap re-clusters over
  /// the new generation's fingerprints.
  int ivf_buckets() const;
  /// The largest single shard's IVF bucket count: any NPROBE at or above it
  /// makes every shard probe all of its buckets, i.e. behaves exactly like
  /// NPROBE=all. The executor normalizes cache keys on this threshold.
  int max_shard_ivf_buckets() const;
  /// The next external id this engine would assign (the global sequence).
  int next_id() const { return next_id_; }
  /// Shard observability (tests, STATS reporting).
  const QueryEngine& shard(int s) const;

  /// How many dimension generations this engine has adopted: 0 for the
  /// load-time generation, +1 per SwapGeneration. Exposed as the
  /// `dimension_generation` STATS gauge.
  uint64_t generation() const { return generation_; }

  /// Monotonic mutation epoch: the sum of the shard epochs, so every
  /// successful Insert/Remove and every working Compact bumps it (each
  /// mutation lands in exactly one shard; Compact may bump several).
  /// Queries never bump it, and two queries at the same epoch answer
  /// bit-identically — the invariant the executor's result cache keys on.
  uint64_t epoch() const;

  /// The single-writer capability; see the class comment.
  ThreadRole& writer_role() const GDIM_RETURN_CAPABILITY(writer_role_) {
    return writer_role_;
  }

  /// Inserts a graph: assigns the next global id, fingerprints once, and
  /// appends to the owning shard. Returns the stable external id — the same
  /// id a single QueryEngine would have assigned.
  Result<int> Insert(const Graph& graph) GDIM_REQUIRES(writer_role_);

  /// Insert for callers that already hold the mapped fingerprint.
  Result<int> InsertMapped(const std::vector<uint8_t>& fingerprint)
      GDIM_REQUIRES(writer_role_);

  /// Tombstones the graph with the given external id in its owning shard;
  /// NotFound if no live graph has that id.
  Status Remove(int id) GDIM_REQUIRES(writer_role_);

  /// Compacts every shard (reclaims tombstones, seals deltas). Ids are
  /// unchanged.
  void Compact() GDIM_REQUIRES(writer_role_);

  /// Installs a freshly built engine — a new dimension *generation*, the
  /// product of a background reindex over the live graph set — into *this*
  /// atomically from the caller's (single writer) point of view: mapper,
  /// shards, and id sequence are replaced wholesale, the generation counter
  /// increments, and the mutation epoch is guaranteed to come out strictly
  /// greater than it was before the swap. The epoch guarantee is what makes
  /// the swap safe under the epoch-keyed result cache: an answer computed
  /// against the old generation can never be replayed against the new one,
  /// even though the two generations may rank differently (different
  /// dimensions) for the same live set. `next` would normally be built with
  /// the same options/shard count, but any valid engine is installable.
  /// Same single-writer contract as every mutation.
  void SwapGeneration(ShardedEngine next) GDIM_REQUIRES(writer_role_);

  /// External ids of the live graphs across all shards, ascending.
  std::vector<int> alive_ids() const;

  /// The equivalent single-engine database: live fingerprints and ids in
  /// ascending-id order plus the global id counter. A QueryEngine (or a
  /// ShardedEngine of any shard count) built from this answers queries
  /// bit-identically.
  PersistedIndex ToPersistedIndex() const;

  /// Writes the merged live state to one index file, shard-count
  /// independent. v2/v3 stream each shard's packed rows in global id order
  /// (word-level, no byte materialization); a reload with any shard count
  /// keeps serving the same ids. The v3 default additionally persists the
  /// dimension generation, mutation epoch, and every shard's IVF layout
  /// (external-id postings), so a reload resumes serving without the
  /// O(n·sqrt(n)) IVF rebuild. Synchronous Freeze+write, so it carries
  /// Freeze's ordering contract. The engine has no graph store, so the STOR
  /// section is never written here — the executor's snapshot path is the
  /// one that attaches it.
  Status Snapshot(const std::string& path,
                  IndexFormat format = IndexFormat::kV3Sectioned) const
      GDIM_REQUIRES(writer_role_);

  /// Captures all shards for asynchronous snapshotting: sealed bases are
  /// cloned by refcount, deltas/tombstones/ids copied — a bounded pause
  /// independent of sealed-base size, on the engine's writer thread (the
  /// capture must be ordered against writers, hence REQUIRES). The capture
  /// answers for exactly this epoch's live set forever.
  FrozenShardedState Freeze() const GDIM_REQUIRES(writer_role_);

  /// Streams a frozen capture to one v3 index file, shard-count
  /// independent, word-level (no byte materialization) — safe on any
  /// thread, concurrent with live mutations, because the capture owns or
  /// shares everything it reads. The file carries DIMS (the merged live
  /// rows in global id order), META (generation + epoch), the shards' live
  /// IVF postings lifted to external ids (IVFX, in shard order), and —
  /// when the capture has one — the frozen graph store (STOR).
  /// Snapshot(path, kV3Sectioned) is WriteSnapshot(Freeze(), path).
  static Status WriteSnapshot(const FrozenShardedState& frozen,
                              const std::string& path);

  /// Top-k for one query: VF2-fingerprint once, scatter the mapped vector
  /// across all shards on the scatter pool, gather-merge. stats aggregates
  /// over shards (scanned rows are summed; prefiltered means every shard
  /// with live rows served from a narrowed scan). Per-query knobs travel in
  /// `options`: engine.Query(q, {.k = 10}).
  Ranking Query(const Graph& query, const QueryOptions& options,
                ServeQueryStats* stats = nullptr) const;

  /// Query for a pre-mapped fingerprint (width must be num_features()).
  Ranking QueryMapped(const std::vector<uint8_t>& fingerprint,
                      const QueryOptions& options,
                      ServeQueryStats* stats = nullptr) const;

  /// Answers a whole batch: one MapAll fingerprinting pass, then the same
  /// scan path as QueryMappedBatch. Deterministic for any thread count and
  /// bit-identical for every scan kernel.
  std::vector<Ranking> QueryBatch(
      const GraphDatabase& queries, const QueryOptions& options,
      ServeBatchReport* report = nullptr,
      std::vector<ServeQueryStats>* per_query = nullptr) const;

  /// QueryBatch over pre-mapped fingerprints — the multi-query entry point
  /// the batch executor coalesces concurrent network queries into. Unless
  /// the containment prefilter takes the per-query scatter path, the batch
  /// is cut into tiles of ActiveScanKernel()::tile_width() queries and each
  /// shard scores a whole tile per row-block pass (QueryEngine::
  /// QueryMappedTile) instead of looping queries outermost; the per-query
  /// gather merge is unchanged, so answers are bit-identical to the
  /// one-query-at-a-time path.
  std::vector<Ranking> QueryMappedBatch(
      const std::vector<std::vector<uint8_t>>& fingerprints,
      const QueryOptions& options, ServeBatchReport* report = nullptr,
      std::vector<ServeQueryStats>* per_query = nullptr) const;

 private:
  ShardedEngine() = default;

  int ShardOf(int id) const {
    return id % static_cast<int>(shards_.size());
  }

  /// Scatter + gather for one mapped fingerprint with an explicit scatter
  /// pool size (1 inside batch loops, options_.serve.threads for single
  /// queries).
  Ranking ScatterGather(const std::vector<uint8_t>& fingerprint,
                        const QueryOptions& options, ServeQueryStats* stats,
                        int scatter_threads) const;

  /// The shared scan body of QueryBatch/QueryMappedBatch: fills results and
  /// stats (both pre-sized to the batch) tile by tile, or per query when
  /// the prefilter decides scans.
  void ScanMappedBatch(const std::vector<std::vector<uint8_t>>& fingerprints,
                       const QueryOptions& options,
                       std::vector<Ranking>* results,
                       std::vector<ServeQueryStats>* stats) const;

  ShardedOptions options_;
  FeatureMapper mapper_{GraphDatabase{}};
  std::vector<QueryEngine> shards_;
  /// The global id sequence; mirrors what a single engine's counter would
  /// be after the same build + mutation history.
  int next_id_ = 0;
  /// Dimension generations adopted; see generation().
  uint64_t generation_ = 0;
  /// See writer_role(). mutable: acquiring a role is not a state change.
  mutable ThreadRole writer_role_;
};

}  // namespace gdim

#endif  // GDIM_SERVER_SHARDED_ENGINE_H_
