#ifndef GDIM_SERVER_BATCH_EXECUTOR_H_
#define GDIM_SERVER_BATCH_EXECUTOR_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/histogram.h"
#include "common/status.h"
#include "common/timer.h"
#include "core/index_io.h"
#include "core/topk.h"
#include "graph/graph.h"
#include "server/sharded_engine.h"

namespace gdim {

/// Admission and coalescing knobs for the batch executor.
struct BatchExecutorOptions {
  /// Bound on admitted-but-unfinished requests (queued + executing). A
  /// submit beyond this is rejected immediately with ResourceExhausted —
  /// backpressure is a typed status, never an unbounded queue and never a
  /// blocked producer. Must be >= 1.
  int queue_capacity = 256;

  /// Max queries coalesced into one packed multi-query scan. Must be >= 1.
  int max_batch = 64;

  /// Size of the sliding window of completed-request latencies kept for
  /// Stats(); bounds executor memory regardless of uptime.
  int latency_window = 4096;
};

/// Engine gauges sampled on the dispatcher thread — the only thread that
/// mutates the engine — so a snapshot of a mutating engine is race-free.
struct EngineGauges {
  int graphs = 0;    ///< live graphs across all shards
  int shards = 0;
  int features = 0;  ///< feature dimension p
};

/// Counters snapshot for observability (the STATS wire verb).
struct BatchExecutorStats {
  uint64_t accepted = 0;    ///< requests admitted past the queue bound
  uint64_t rejected = 0;    ///< submits refused with ResourceExhausted
  uint64_t completed = 0;   ///< requests finished (any outcome)
  uint64_t batches = 0;     ///< coalesced query batches executed
  uint64_t mutations = 0;   ///< insert/remove/snapshot ops executed
  size_t queued = 0;        ///< admitted requests not yet finished
  /// Distribution over the latency window (submit → completion, ms).
  LatencySummary latency_ms;
};

/// Funnels every engine access — concurrent top-k queries from many
/// connections plus mutations — through one dispatcher thread:
///
///   submit (any thread) → bounded FIFO admission queue → dispatcher pops a
///   run of up to max_batch queries → one coalesced QueryBatch over the
///   sharded engine's thread pool → promises fulfilled.
///
/// Coalescing is what turns N closed-loop connections into packed
/// multi-query scans (the engine amortizes thread-pool wakeups and keeps
/// every core on scan work); the single dispatcher is also the mutation
/// story: Insert/Remove/Snapshot run inline between batches in FIFO order,
/// so the engine's "mutations are not thread-safe with queries" contract
/// holds without a lock on the hot path.
///
/// All public methods are thread-safe. The blocking Query/Insert/... calls
/// block only on their own result; admission never blocks — a full queue
/// rejects with StatusCode::kResourceExhausted.
class BatchExecutor {
 public:
  /// The executor serves `engine` (not owned; must outlive the executor).
  /// Spawns the dispatcher thread.
  BatchExecutor(ShardedEngine* engine, BatchExecutorOptions options = {});

  /// Drains already-admitted requests, then stops the dispatcher. Submits
  /// racing with destruction are rejected.
  ~BatchExecutor();

  BatchExecutor(const BatchExecutor&) = delete;
  BatchExecutor& operator=(const BatchExecutor&) = delete;

  /// Top-k for one query graph; blocks until the coalesced batch holding it
  /// completes. ResourceExhausted immediately when the queue is full.
  Result<Ranking> Query(Graph query, int k);

  /// Inserts a graph; returns its stable external id.
  Result<int> Insert(Graph graph);

  /// Tombstones the graph with the given external id.
  Status Remove(int id);

  /// Snapshots the engine's merged live state to a server-side path.
  Status Snapshot(std::string path);

  /// Counter + latency snapshot.
  BatchExecutorStats Stats() const;

  /// Samples engine gauges through the request queue (FIFO with mutations);
  /// subject to the same admission bound as every other request.
  Result<EngineGauges> Gauges();

  /// Test/drain hook: Pause() makes the dispatcher hold admitted requests
  /// unexecuted (admission and rejection still work — this is how the
  /// backpressure path is exercised deterministically); Resume() lets it
  /// drain.
  void Pause();
  void Resume();

  const BatchExecutorOptions& options() const { return options_; }

 private:
  struct Request {
    enum class Kind { kQuery, kInsert, kRemove, kSnapshot, kGauges };
    Kind kind = Kind::kQuery;
    Graph graph;        // kQuery, kInsert
    int k = 0;          // kQuery
    int id = 0;         // kRemove
    std::string path;   // kSnapshot
    WallTimer queued_at;
    std::promise<Result<Ranking>> ranking;      // kQuery
    std::promise<Result<int>> inserted;         // kInsert
    std::promise<Status> status;                // kRemove, kSnapshot
    std::promise<Result<EngineGauges>> gauges;  // kGauges
  };

  /// Admits r or rejects with ResourceExhausted (queue at capacity or
  /// executor stopping).
  Status Admit(Request r);

  void DispatcherLoop();
  /// Runs one popped run of requests outside the lock; returns the
  /// promise-fulfilling closures, which the dispatcher invokes only after
  /// publishing the completion counters.
  std::vector<std::function<void()>> Execute(std::vector<Request>* batch);

  ShardedEngine* engine_;
  BatchExecutorOptions options_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Request> queue_;
  size_t in_flight_ = 0;  ///< admitted and not yet completed
  bool stop_ = false;
  bool paused_ = false;
  uint64_t accepted_ = 0;
  uint64_t rejected_ = 0;
  uint64_t completed_ = 0;
  uint64_t batches_ = 0;
  uint64_t mutations_ = 0;
  /// Ring buffer of recent request latencies (submit → completion).
  std::vector<double> latency_window_;
  size_t latency_next_ = 0;
  bool latency_full_ = false;

  std::thread dispatcher_;
};

}  // namespace gdim

#endif  // GDIM_SERVER_BATCH_EXECUTOR_H_
