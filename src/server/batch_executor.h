#ifndef GDIM_SERVER_BATCH_EXECUTOR_H_
#define GDIM_SERVER_BATCH_EXECUTOR_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/histogram.h"
#include "common/status.h"
#include "common/sync.h"
#include "common/timer.h"
#include "core/index_io.h"
#include "core/topk.h"
#include "graph/graph.h"
#include "obs/metric_registry.h"
#include "obs/query_trace.h"
#include "reindex/dimension_refresher.h"
#include "server/result_cache.h"
#include "server/sharded_engine.h"
#include "store/graph_store.h"

namespace gdim {

/// Admission and coalescing knobs for the batch executor.
struct BatchExecutorOptions {
  /// Bound on admitted-but-unfinished requests (queued + executing). A
  /// submit beyond this is rejected immediately with ResourceExhausted —
  /// backpressure is a typed status, never an unbounded queue and never a
  /// blocked producer. Must be >= 1.
  int queue_capacity = 256;

  /// Max queries coalesced into one packed multi-query scan. Must be >= 1.
  int max_batch = 64;

  /// Size of the sliding window of completed-request latencies kept for
  /// Stats(); bounds executor memory regardless of uptime.
  int latency_window = 4096;

  /// Byte budget of the epoch-versioned query result cache consulted before
  /// every scatter (see server/result_cache.h). 0 disables caching. Hits
  /// are bit-identical to cold queries at the same epoch; any mutation
  /// invalidates by epoch bump, so the cache never changes an answer.
  size_t cache_bytes = 0;

  /// The live-graph store behind the engine (not owned; must outlive the
  /// executor). Null means REINDEX is unavailable — the engine's
  /// fingerprints cannot be re-derived without the graphs. When set, the
  /// executor keeps it in lockstep with the engine: populated by every
  /// successful Insert, marked by Remove, pruned by Compact. Mutated only
  /// on the dispatcher thread, like the engine.
  GraphStore* store = nullptr;

  /// Defaults for dimension refreshes (REINDEX and the auto-trigger).
  /// refresh.p == 0 keeps the engine's current dimension count.
  RefreshOptions refresh;

  /// Auto-trigger: start a background refresh after this many successful
  /// Insert/Remove mutations since the last refresh began. 0 = never.
  /// Requires `store`.
  int reindex_every = 0;

  /// Slow-query log: log a per-stage breakdown (the QueryTrace fields) for
  /// every query whose end-to-end time reaches this many microseconds.
  /// 0 disables — the default; tracing costs nothing when off beyond the
  /// timestamps the executor already takes.
  uint64_t slow_query_usec = 0;

  /// Receives one line per slow query (no trailing newline); null logs to
  /// stderr. Injected by tests to assert the log fires exactly once per
  /// slow query. Called on the dispatcher thread, outside the executor
  /// lock — keep it cheap.
  std::function<void(const std::string&)> slow_query_sink;
};

/// What a completed REINDEX reports back (the wire layer prints it).
struct ReindexReport {
  uint64_t generation = 0;  ///< the engine's generation after the swap
  int features = 0;         ///< dimension count of the new generation
  /// Live graphs that churned in *during* the background selection and were
  /// therefore VF2-mapped onto the new dimension at swap time (the frozen
  /// majority is re-fingerprinted from mined supports, VF2-free).
  int remapped = 0;
};

/// Engine gauges sampled on the dispatcher thread — the only thread that
/// mutates the engine — so a snapshot of a mutating engine is race-free.
struct EngineGauges {
  int graphs = 0;    ///< live graphs across all shards
  int shards = 0;
  int features = 0;   ///< feature dimension p
  uint64_t epoch = 0;  ///< engine mutation epoch (see ShardedEngine::epoch)
  /// Physical rows (base + delta, all shards): what a full scan scores.
  /// physical_rows - tombstones == graphs; Compact() closes the gap.
  int physical_rows = 0;
  int tombstones = 0;  ///< removed-but-uncompacted rows across all shards
  /// Dimension generation: 0 at load, +1 per adopted reindex.
  uint64_t generation = 0;
  /// IVF candidate-pruning buckets across all shards (MODE=approx probes
  /// these); rebuilt by every generation swap.
  int ivf_buckets = 0;
};

/// Counters snapshot for observability (the STATS wire verb).
struct BatchExecutorStats {
  uint64_t accepted = 0;    ///< requests admitted past the queue bound
  uint64_t rejected = 0;    ///< submits refused with ResourceExhausted
  uint64_t completed = 0;   ///< requests finished (any outcome)
  uint64_t batches = 0;     ///< coalesced query batches executed
  uint64_t mutations = 0;   ///< insert/remove/snapshot ops executed
  size_t queued = 0;        ///< admitted requests not yet finished
  /// Snapshots frozen but not yet fully written by a background thread.
  uint64_t snapshots_in_progress = 0;
  uint64_t snapshots_completed = 0;  ///< background snapshot writes finished
  /// 1 while a dimension refresh is running (freeze → selection →
  /// swap), else 0; at most one runs at a time.
  uint64_t reindexes_in_progress = 0;
  uint64_t reindexes_completed = 0;  ///< generations successfully swapped in
  /// MODE=approx counters, accumulated from the per-span batch reports the
  /// engine fills (exactly like a shard sums per-query stats). Cache hits
  /// for approx queries do not re-count: the counters measure scan work
  /// actually done, matching how `batches` counts executed scans.
  uint64_t approx_queries = 0;  ///< approx queries that reached a scan
  uint64_t approx_candidates_scanned = 0;  ///< rows the probes admitted
  uint64_t approx_rows_pruned = 0;  ///< live rows the probes skipped
  /// Result-cache counters (all zero when the cache is disabled); see
  /// ResultCacheStats for field semantics.
  ResultCacheStats cache;
  /// Process-health gauges: executor uptime, its start time as a Unix
  /// epoch (seconds), and the admission queue's high watermark (the
  /// largest in_flight ever observed — `queued` is the current depth).
  double uptime_seconds = 0.0;
  long long start_epoch = 0;
  size_t queue_high_watermark = 0;
  /// Distribution over the latency window (submit → completion, ms). A
  /// snapshot request's latency covers admission through freeze + handoff —
  /// the background write is excluded by design (it no longer occupies the
  /// executor).
  LatencySummary latency_ms;
};

/// Funnels every engine access — concurrent top-k queries from many
/// connections plus mutations — through one dispatcher thread:
///
///   submit (any thread) → bounded FIFO admission queue → dispatcher pops a
///   run of up to max_batch queries → one coalesced QueryBatch over the
///   sharded engine's thread pool → promises fulfilled.
///
/// Coalescing is what turns N closed-loop connections into packed
/// multi-query scans (the engine amortizes thread-pool wakeups and keeps
/// every core on scan work); the single dispatcher is also the mutation
/// story: Insert/Remove run inline between batches in FIFO order, so the
/// engine's "mutations are not thread-safe with queries" contract holds
/// without a lock on the hot path. Snapshot only *freezes* on the
/// dispatcher (a bounded pause) — the file write happens on a background
/// thread so queries keep flowing (see Snapshot()).
///
/// With cache_bytes > 0 the dispatcher consults an epoch-versioned result
/// cache after the stage-1 mapping and before the scatter: repeated
/// fingerprints at an unchanged epoch skip the scan entirely, and every
/// miss populates the cache after the gather. Epoch keying makes hits
/// bit-identical to cold queries — the FIFO order means a mutation has
/// fully executed (and bumped the epoch) before any later query is looked
/// up.
///
/// All public methods are thread-safe. The blocking Query/Insert/... calls
/// block only on their own result; admission never blocks — a full queue
/// rejects with StatusCode::kResourceExhausted.
class BatchExecutor {
 public:
  /// The executor serves `engine` (not owned; must outlive the executor).
  /// Spawns the dispatcher thread.
  BatchExecutor(ShardedEngine* engine, BatchExecutorOptions options = {});

  /// Drains already-admitted requests, stops the dispatcher, then waits for
  /// any in-flight background snapshot writes. Submits racing with
  /// destruction are rejected.
  ~BatchExecutor();

  BatchExecutor(const BatchExecutor&) = delete;
  BatchExecutor& operator=(const BatchExecutor&) = delete;

  /// Top-k for one query graph; blocks until the coalesced batch holding it
  /// completes. ResourceExhausted immediately when the queue is full.
  /// Per-query knobs (k, scan mode) travel in `options`; requests with
  /// equal options coalesce into shared multi-query scans.
  Result<Ranking> Query(Graph query, const QueryOptions& options);

  /// Query with a per-stage trace: `*trace` is filled before the result is
  /// released (the promise handoff orders the writes), covering admission
  /// wait, the shared map/cache passes, the scan span, and the end-to-end
  /// total. `trace` must outlive the call. Tracing changes nothing about
  /// coalescing or caching — the traced query shares scans and cache
  /// entries with untraced ones.
  Result<Ranking> Query(Graph query, const QueryOptions& options,
                        QueryTrace* trace);

  /// Inserts a graph; returns its stable external id.
  Result<int> Insert(Graph graph);

  /// Tombstones the graph with the given external id.
  Status Remove(int id);

  /// Compacts every shard (reclaims tombstones, seals deltas) and prunes
  /// the graph store — FIFO with the other mutations, so it bumps the
  /// epoch in order and cached results from before it can never be
  /// replayed after it. Returns the number of tombstoned rows reclaimed.
  Result<int> Compact();

  /// Re-selects the serving dimension over the live database and hot-swaps
  /// the new generation in, without stopping queries. The dispatcher only
  /// *freezes* the live graph set (a bounded pause — graphs are small);
  /// mining + selection + re-fingerprinting run on a background thread, and
  /// the finished generation comes back through the request queue as an
  /// internal adopt step that reconciles churn-during-selection (graphs
  /// inserted since the freeze are VF2-mapped onto the new dimension,
  /// removed ones dropped) and installs it with ShardedEngine::
  /// SwapGeneration — an epoch bump, so the result cache can never serve an
  /// answer across the generation boundary. Like Snapshot, the call blocks
  /// only its own submitter (until the swap lands); queries and mutations
  /// flow throughout. p == 0 keeps the current dimension count.
  ///
  /// Fails with InvalidArgument when the executor has no graph store, and
  /// with ResourceExhausted when a refresh is already in progress.
  Result<ReindexReport> Reindex(int p = 0);

  /// Snapshots the engine's merged live state to a server-side path —
  /// without stalling the dispatcher for the write. The dispatcher freezes
  /// the engine in a bounded pause (sealed bases cloned by refcount, only
  /// the small delta/tombstone/id state copied) and a background thread
  /// streams the v2 file; queries and mutations keep flowing meanwhile. The
  /// call still blocks *its own* submitter until the file is durable, and
  /// the file holds exactly the live set at the epoch the request was
  /// dispatched (mutations admitted after it are excluded — FIFO order).
  Status Snapshot(std::string path);

  /// Counter + latency snapshot. The executor counters are read under the
  /// same lock that publishes them — one mutually consistent snapshot in
  /// which accepted == completed + rejected-free in-flight, and a request
  /// whose submitter has been released is always counted completed (the
  /// dispatcher publishes completion before fulfilling promises). The
  /// nested cache counters are snapshotted under the cache's own lock:
  /// internally consistent, but taken at a slightly different instant.
  BatchExecutorStats Stats() const GDIM_EXCLUDES(mu_);

  /// Samples engine gauges through the request queue (FIFO with mutations);
  /// subject to the same admission bound as every other request.
  Result<EngineGauges> Gauges();

  /// The metric registry behind METRICS: per-stage latency histograms plus
  /// the request counters, all written at the same program points the old
  /// mu_-guarded counters were. Safe from any thread.
  MetricRegistry& metrics() { return registry_; }

  /// Refreshes the process gauges (queue depth / high watermark / uptime)
  /// and renders the Prometheus text exposition — the METRICS verb's body.
  /// No terminator line; the wire layer appends `# EOF`.
  std::string MetricsText() GDIM_EXCLUDES(mu_);

  /// Test/drain hook: Pause() makes the dispatcher hold admitted requests
  /// unexecuted (admission and rejection still work — this is how the
  /// backpressure path is exercised deterministically); Resume() lets it
  /// drain.
  void Pause() GDIM_EXCLUDES(mu_);
  void Resume() GDIM_EXCLUDES(mu_);

  const BatchExecutorOptions& options() const { return options_; }

 private:
  struct Request {
    enum class Kind {
      kQuery,
      kInsert,
      kRemove,
      kCompact,
      kSnapshot,
      kGauges,
      kReindex,
      /// Internal: a finished background refresh coming home for
      /// installation on the dispatcher. Never submitted by clients;
      /// admitted past the capacity bound (dropping it would strand the
      /// refresh and its submitter).
      kAdoptGeneration,
    };
    Kind kind = Kind::kQuery;
    Graph graph;        // kQuery, kInsert
    QueryOptions query_options;  // kQuery
    int id = 0;         // kRemove
    int p = 0;          // kReindex (0 = keep dimension count)
    std::string path;   // kSnapshot
    /// kAdoptGeneration: the background refresh's output.
    std::shared_ptr<Result<RefreshedGeneration>> built;
    /// kQuery with TRACE=1: filled by Execute before the promise resolves
    /// (the future's happens-before publishes it); must outlive the call.
    QueryTrace* trace = nullptr;
    WallTimer queued_at;
    /// Admission wait, stamped when the dispatcher pops the request; kept
    /// so the trace/slow-log segments and the histogram agree exactly.
    double queue_wait_usec = 0.0;
    std::promise<Result<Ranking>> ranking;      // kQuery
    std::promise<Result<int>> inserted;         // kInsert
    std::promise<Status> status;                // kRemove, kSnapshot
    std::promise<Result<int>> compacted;        // kCompact
    /// kReindex / kAdoptGeneration; travels from the REINDEX request into
    /// the refresh thread and back with the adopt request, resolving only
    /// when the swap lands (or the refresh fails).
    std::promise<Result<ReindexReport>> reindexed;  // kReindex, kAdopt...
    std::promise<Result<EngineGauges>> gauges;  // kGauges
  };

  /// Admits r or rejects with ResourceExhausted (queue at capacity or
  /// executor stopping).
  Status Admit(Request r) GDIM_EXCLUDES(mu_);

  /// Admission for internal requests (generation adoption): exempt from the
  /// capacity bound — rejecting would strand the refresh — but still
  /// refused when the executor is stopping, in which case the traveling
  /// promise is failed here.
  void AdmitInternal(Request r) GDIM_EXCLUDES(mu_);

  /// Dispatcher-side start of a refresh: freezes the store, launches the
  /// background selection, and arranges for the result to come back as a
  /// kAdoptGeneration request carrying `done`. Fails `done` immediately
  /// when no store exists, the live set is empty, or a refresh is already
  /// in flight.
  void StartReindex(int p, std::promise<Result<ReindexReport>> done)
      GDIM_REQUIRES(engine_->writer_role()) GDIM_EXCLUDES(mu_);

  /// Fires StartReindex when the mutation count since the last refresh
  /// reaches options_.reindex_every (fire-and-forget promise).
  void MaybeAutoReindex() GDIM_REQUIRES(engine_->writer_role())
      GDIM_EXCLUDES(mu_);

  /// Dispatcher-side installation of a finished refresh: reconciles the
  /// generation with churn since the freeze and swaps it into the engine.
  Result<ReindexReport> InstallGeneration(Result<RefreshedGeneration>* built)
      GDIM_REQUIRES(engine_->writer_role());

  void DispatcherLoop() GDIM_EXCLUDES(mu_);
  /// Runs one popped run of requests outside the lock; returns the
  /// promise-fulfilling closures, which the dispatcher invokes only after
  /// publishing the completion counters. All engine/store access funnels
  /// through here, on the dispatcher thread — which holds the engine's
  /// writer role for its whole lifetime, hence the REQUIRES.
  std::vector<std::function<void()>> Execute(std::vector<Request>* batch)
      GDIM_REQUIRES(engine_->writer_role()) GDIM_EXCLUDES(mu_);

  /// Spawns the background writer for a frozen snapshot; `done` is
  /// fulfilled (and snapshots_in_progress decremented) when the file is
  /// fully written. Called from a fulfill closure, after the dispatcher has
  /// published this request's completion counters. Touches only the frozen
  /// capture and mu_-guarded accounting — never the live engine, so no
  /// writer role.
  void StartAsyncSnapshot(FrozenShardedState frozen, std::string path,
                          std::promise<Status> done) GDIM_EXCLUDES(mu_);

  ShardedEngine* engine_;
  BatchExecutorOptions options_;
  /// Epoch-versioned result cache; null when options_.cache_bytes == 0.
  /// Only the dispatcher inserts/looks up (the cache locks internally for
  /// Stats() readers).
  std::unique_ptr<ResultCache> cache_;

  /// The registry owns every counter and per-stage histogram; the raw
  /// pointers below are its cells, resolved once at construction (stable
  /// for the registry's lifetime). The cells are lock-free atomics, but the
  /// executor still writes the request counters at the same program points
  /// the old mu_-guarded fields were written — inside mu_ critical sections
  /// — so a Stats() snapshot under mu_ remains mutually consistent
  /// (accepted == completed + in-flight, etc.). Declared before
  /// dispatcher_ so the cells exist before any thread records into them.
  MetricRegistry registry_;
  MetricCounter* c_accepted_;
  MetricCounter* c_rejected_;
  MetricCounter* c_completed_;
  MetricCounter* c_batches_;
  MetricCounter* c_mutations_;
  MetricCounter* c_approx_queries_;
  MetricCounter* c_approx_candidates_scanned_;
  MetricCounter* c_approx_rows_pruned_;
  MetricCounter* c_snapshots_completed_;
  MetricCounter* c_reindexes_completed_;
  MetricCounter* c_slow_queries_;
  MetricGauge* g_queue_depth_;
  MetricGauge* g_queue_high_watermark_;
  MetricGauge* g_uptime_seconds_;
  MetricGauge* g_start_epoch_;
  LatencyHistogram* h_admission_wait_;
  LatencyHistogram* h_cache_probe_;
  LatencyHistogram* h_map_all_;
  LatencyHistogram* h_scan_exact_;
  LatencyHistogram* h_scan_approx_;
  LatencyHistogram* h_ivf_probe_;
  LatencyHistogram* h_gather_merge_;
  LatencyHistogram* h_mutation_apply_;
  LatencyHistogram* h_snapshot_freeze_;
  LatencyHistogram* h_snapshot_write_;
  LatencyHistogram* h_reindex_build_;
  LatencyHistogram* h_reindex_swap_;
  /// Uptime stopwatch + the Unix time it started, for the STATS gauges.
  WallTimer uptime_;
  long long start_epoch_ = 0;

  mutable Mutex mu_;
  CondVar cv_;
  std::deque<Request> queue_ GDIM_GUARDED_BY(mu_);
  /// Admitted and not yet completed.
  size_t in_flight_ GDIM_GUARDED_BY(mu_) = 0;
  /// Largest in_flight_ ever observed (admission queue high watermark).
  size_t queue_high_watermark_ GDIM_GUARDED_BY(mu_) = 0;
  bool stop_ GDIM_GUARDED_BY(mu_) = false;
  bool paused_ GDIM_GUARDED_BY(mu_) = false;
  /// Ring buffer of recent request latencies (submit → completion).
  std::vector<double> latency_window_ GDIM_GUARDED_BY(mu_);
  size_t latency_next_ GDIM_GUARDED_BY(mu_) = 0;
  bool latency_full_ GDIM_GUARDED_BY(mu_) = false;
  /// Background snapshot accounting. The writer threads are detached; the
  /// destructor waits on snapshot_cv_ until none remain. The completion
  /// counter lives in the registry (c_snapshots_completed_).
  uint64_t snapshots_in_progress_ GDIM_GUARDED_BY(mu_) = 0;
  CondVar snapshot_cv_;

  /// Reindex accounting (Stats() reads it; the dispatcher and the
  /// refresh-done callback write it). Completions count in the registry.
  bool reindex_in_flight_ GDIM_GUARDED_BY(mu_) = false;
  /// Successful Insert/Remove count since the last refresh started; feeds
  /// the auto-trigger. Dispatcher-only — every function touching it
  /// REQUIRES the engine's writer role, which only the dispatcher holds.
  int mutations_since_reindex_ = 0;

  /// The live-graph store (options_.store); dispatcher-only after
  /// construction, checked through its own writer_role() (asserted under
  /// the engine's — both belong to the dispatcher).
  GraphStore* store_ = nullptr;

  std::thread dispatcher_;
  /// Declared last so it is destroyed FIRST: its destructor joins an
  /// in-flight refresh, whose done-callback touches mu_/queue_ — which must
  /// still be alive at that point.
  DimensionRefresher refresher_;
};

}  // namespace gdim

#endif  // GDIM_SERVER_BATCH_EXECUTOR_H_
