#ifndef GDIM_SERVER_RESULT_CACHE_H_
#define GDIM_SERVER_RESULT_CACHE_H_

#include <cstdint>
#include <list>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/sync.h"
#include "core/topk.h"

namespace gdim {

/// Counter + occupancy snapshot of one ResultCache (the cache_* fields of
/// the STATS wire verb). Taken under the cache lock, so the counters are
/// mutually consistent: hits + misses equals the number of Lookup calls at
/// the instant of the snapshot.
struct ResultCacheStats {
  uint64_t hits = 0;        ///< lookups answered from the cache
  uint64_t misses = 0;      ///< lookups not answered (absent or stale)
  uint64_t evictions = 0;   ///< entries dropped (LRU pressure or staleness)
  uint64_t insertions = 0;  ///< entries stored
  size_t entries = 0;       ///< live entries right now
  size_t bytes = 0;         ///< estimated bytes charged right now
  size_t max_bytes = 0;     ///< configured budget
};

/// An epoch-versioned LRU cache of query results for the serving layer:
/// maps (packed fingerprint words, k, scan-mode) → the exact Ranking the
/// engine returned, valid for one mutation epoch.
///
/// Correctness under churn comes from the epoch, not from enumeration: a
/// mutation bumps the engine's epoch, and a Lookup presents the *current*
/// epoch — an entry stored at an older epoch can never be returned. Stale
/// entries are purged lazily (on the touch that discovers them, or by LRU
/// pressure); no mutation ever walks the cache. A hit is therefore
/// guaranteed bit-identical to a cold query at the same epoch: the entry
/// was produced by the engine at that exact epoch and queries don't change
/// engine state.
///
/// Eviction is LRU under a byte budget: every entry is charged its key +
/// ranking payload plus a fixed bookkeeping overhead, and inserts evict
/// from the cold end until the budget holds. An entry larger than the whole
/// budget is not cached.
///
/// Thread-safe: every method takes an internal lock. The intended caller —
/// the BatchExecutor's dispatcher — is single-threaded anyway; the lock is
/// for Stats() readers (the STATS verb) on other threads.
class ResultCache {
 public:
  /// Budget of 0 disables storage: every lookup misses, nothing is kept.
  explicit ResultCache(size_t max_bytes);

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  /// Builds the lookup key for a query: the fingerprint packed into 64-bit
  /// words (8x smaller than the byte form and exactly what the scan kernels
  /// hash on) plus k, the scan-mode tag, the width, and nprobe (0 for exact
  /// modes; approximate answers at different probe depths differ, so they
  /// must never share an entry). The epoch is NOT part of the key — it is
  /// checked against the stored entry, so a stale entry is found (and
  /// purged) rather than leaked until LRU pressure.
  static std::string MakeKey(const std::vector<uint8_t>& fingerprint, int k,
                             uint8_t scan_mode, int nprobe = 0);

  /// The cached ranking for key at exactly this epoch, or nullopt. A hit
  /// refreshes the entry's LRU position; finding an entry from an older
  /// epoch purges it and counts a miss (plus an eviction).
  std::optional<Ranking> Lookup(const std::string& key, uint64_t epoch)
      GDIM_EXCLUDES(mu_);

  /// Stores ranking for key at epoch, replacing any entry under the same
  /// key, then evicts LRU entries until the byte budget holds.
  void Insert(const std::string& key, uint64_t epoch, const Ranking& ranking)
      GDIM_EXCLUDES(mu_);

  ResultCacheStats Stats() const GDIM_EXCLUDES(mu_);

 private:
  struct Entry {
    std::string key;
    uint64_t epoch = 0;
    Ranking ranking;
    size_t bytes = 0;
  };
  using Lru = std::list<Entry>;

  /// Unlinks *it from the map, the LRU list, and the byte accounting.
  void EvictLocked(Lru::iterator it) GDIM_REQUIRES(mu_);

  const size_t max_bytes_;
  mutable Mutex mu_;
  size_t bytes_ GDIM_GUARDED_BY(mu_) = 0;
  uint64_t hits_ GDIM_GUARDED_BY(mu_) = 0;
  uint64_t misses_ GDIM_GUARDED_BY(mu_) = 0;
  uint64_t evictions_ GDIM_GUARDED_BY(mu_) = 0;
  uint64_t insertions_ GDIM_GUARDED_BY(mu_) = 0;
  Lru lru_ GDIM_GUARDED_BY(mu_);  ///< front = most recently used
  std::unordered_map<std::string, Lru::iterator> index_ GDIM_GUARDED_BY(mu_);
};

}  // namespace gdim

#endif  // GDIM_SERVER_RESULT_CACHE_H_
