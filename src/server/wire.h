#ifndef GDIM_SERVER_WIRE_H_
#define GDIM_SERVER_WIRE_H_

#include <string>

#include "common/status.h"
#include "core/topk.h"
#include "graph/graph.h"
#include "obs/query_trace.h"
#include "serve/query_options.h"

namespace gdim {

/// The line-delimited text protocol of the network serving layer (see
/// docs/protocol.md for the full spec). One '\n'-terminated request line
/// maps to exactly one '\n'-terminated response line:
///
///   QUERY <k> [KEY=VALUE ...] <graph>
///                         ->  OK <m> <id>:<score> ...
///   INSERT <graph>        ->  OK <id>
///   REMOVE <id>           ->  OK removed <id>
///   COMPACT               ->  OK compacted <reclaimed>
///   REINDEX [p]           ->  OK reindexed generation=<g> features=<p>
///   SNAPSHOT <path>       ->  OK snapshot <path>
///   STATS                 ->  OK key=value ...
///   METRICS               ->  Prometheus text exposition, many lines,
///                             terminated by a '# EOF' line
///   PING                  ->  OK pong
///   QUIT                  ->  (server closes the connection)
///   any failure           ->  ERR <StatusCodeName> <message>
///
/// <graph> is a whole gSpan transaction ('t # id' / 'v id label' /
/// 'e u v label' lines) with ';' standing in for the newlines, so a graph
/// travels on one line. Scores print with 6 fractional digits.
///
/// QUERY accepts optional KEY=VALUE option tokens between <k> and the
/// graph (a gSpan token never contains '=', so the first '='-free token
/// starts the graph). Known keys: MODE=auto|full|approx
/// (QueryOptions::scan_mode), NPROBE=<n>|all (QueryOptions::nprobe;
/// how many IVF buckets a MODE=approx query probes per shard — rejected
/// without MODE=approx), and TRACE=0|1 (1 prepends a 'TRACE key=value ...'
/// per-stage breakdown line to the OK response). An unknown key or a bad
/// value is a typed ERR InvalidArgument.

/// Request verbs.
enum class WireVerb {
  kQuery,
  kInsert,
  kRemove,
  kCompact,
  kReindex,
  kSnapshot,
  kStats,
  kMetrics,
  kPing,
  kQuit,
};

/// A parsed request line.
struct WireRequest {
  WireVerb verb = WireVerb::kPing;
  QueryOptions options;  ///< kQuery: k + option tokens, engine-ready
  /// kQuery TRACE=1: the client asked for the per-stage breakdown line.
  /// Deliberately NOT part of QueryOptions — tracing must not fragment
  /// query coalescing or the result-cache key space.
  bool trace = false;
  int id = 0;        ///< kRemove
  int p = 0;         ///< kReindex dimension count; 0 = keep the current one
  std::string path;  ///< kSnapshot
  Graph graph;       ///< kQuery, kInsert
};

/// One graph as a single-line wire token (gSpan with ';' separators).
std::string EncodeGraphInline(const Graph& graph);

/// Inverse of EncodeGraphInline; the spec must contain exactly one graph.
Result<Graph> DecodeGraphInline(const std::string& spec);

/// Parses one request line. Unknown verbs, malformed integers, and broken
/// graph specs come back as InvalidArgument/ParseError for the server to
/// format as an ERR response.
Result<WireRequest> ParseWireRequest(const std::string& line);

/// "OK <m> <id>:<score> ..." for a ranking (no trailing newline).
std::string FormatRankingResponse(const Ranking& ranking);

/// "ERR <CodeName> <message>" with the message flattened to one line.
std::string FormatErrorResponse(const Status& status);

/// "TRACE queue=<usec> map=<usec> cache=<usec> scan=<usec> total=<usec>
/// cache_hit=0|1" — the per-stage breakdown line a TRACE=1 query receives
/// before its OK line. Values are integer microseconds, parseable with
/// StatsField().
std::string FormatTraceLine(const QueryTrace& trace);

/// Client side: parses a QUERY response line into the ranking, or the
/// transported Status for an ERR line (code name mapped back to the enum).
Result<Ranking> ParseRankingResponse(const std::string& line);

/// Client side: integer value of `key=` in a STATS response line, or -1
/// when the key is absent — the one parser of the STATS key=value format,
/// shared by the load generator and the tests.
long long StatsField(const std::string& stats_line, const std::string& key);

}  // namespace gdim

#endif  // GDIM_SERVER_WIRE_H_
