#include "server/sharded_engine.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "common/logging.h"
#include "common/parallel.h"
#include "common/timer.h"
#include "core/kernels/scan_kernel.h"
#include "core/packed_bits.h"

namespace gdim {

namespace {

/// Deterministic k-way gather: every partial is sorted ascending by
/// (score, id), ids are globally unique, so repeatedly taking the smallest
/// head reproduces the single-engine total order exactly.
Ranking MergeTopK(const std::vector<Ranking>& partials, int k) {
  Ranking out;
  if (k <= 0) return out;
  size_t total = 0;
  for (const Ranking& p : partials) total += p.size();
  out.reserve(std::min(static_cast<size_t>(k), total));
  std::vector<size_t> cursor(partials.size(), 0);
  while (static_cast<int>(out.size()) < k) {
    size_t best = partials.size();
    for (size_t s = 0; s < partials.size(); ++s) {
      if (cursor[s] >= partials[s].size()) continue;
      if (best == partials.size()) {
        best = s;
        continue;
      }
      const RankedResult& c = partials[s][cursor[s]];
      const RankedResult& b = partials[best][cursor[best]];
      if (c.score < b.score || (c.score == b.score && c.id < b.id)) best = s;
    }
    if (best == partials.size()) break;  // every partial exhausted
    out.push_back(partials[best][cursor[best]++]);
  }
  return out;
}

}  // namespace

Result<ShardedEngine> ShardedEngine::FromIndex(PersistedIndex index,
                                               ShardedOptions options) {
  const size_t p = index.features.size();
  for (size_t i = 0; i < index.db_bits.size(); ++i) {
    if (index.db_bits[i].size() != p) {
      return Status::InvalidArgument(
          "index row " + std::to_string(i) + " has " +
          std::to_string(index.db_bits[i].size()) + " bits, expected " +
          std::to_string(p));
    }
  }
  PackedIndex packed;
  packed.rows = PackedBitMatrix::FromRows(index.db_bits, static_cast<int>(p));
  packed.features = std::move(index.features);
  packed.ids = std::move(index.ids);
  packed.next_id = index.next_id;
  return FromPacked(std::move(packed), options);
}

Result<ShardedEngine> ShardedEngine::FromPacked(PackedIndex index,
                                                ShardedOptions options) {
  if (options.num_shards < 1) {
    return Status::InvalidArgument(
        "num_shards must be >= 1, got " + std::to_string(options.num_shards));
  }
  const int p = static_cast<int>(index.features.size());
  if (index.rows.num_bits() != p) {
    return Status::InvalidArgument(
        "packed rows are " + std::to_string(index.rows.num_bits()) +
        " bits wide, feature dimension is " + std::to_string(p));
  }
  const int n = index.rows.num_rows();
  // Global id validation up front: per-shard validation only sees ascending
  // subsequences, so e.g. a globally unsorted id list could split into
  // shards that each look fine.
  if (!index.ids.empty()) {
    if (index.ids.size() != static_cast<size_t>(n)) {
      return Status::InvalidArgument("index id count does not match rows");
    }
    for (size_t i = 0; i < index.ids.size(); ++i) {
      if (index.ids[i] < 0 || (i > 0 && index.ids[i] <= index.ids[i - 1])) {
        return Status::InvalidArgument("index ids must be strictly ascending");
      }
    }
    if (index.ids.back() == std::numeric_limits<int>::max()) {
      return Status::InvalidArgument("index id out of range");
    }
  }
  const int64_t min_next_id = index.ids.empty()
                                  ? static_cast<int64_t>(n)
                                  : int64_t{index.ids.back()} + 1;
  if (index.next_id >= 0 && index.next_id < min_next_id) {
    return Status::InvalidArgument("index next_id must exceed every id");
  }
  const int next_id =
      index.next_id >= 0 ? index.next_id : static_cast<int>(min_next_id);

  ShardedEngine engine;
  engine.options_ = options;
  engine.next_id_ = next_id;

  // Partition rows by id % N with word-level copies (no byte detour).
  const int num_shards = options.num_shards;
  std::vector<PackedBitMatrix> shard_rows;
  shard_rows.reserve(static_cast<size_t>(num_shards));
  for (int s = 0; s < num_shards; ++s) {
    shard_rows.push_back(PackedBitMatrix::WithWidth(p));
  }
  std::vector<std::vector<int>> shard_ids(static_cast<size_t>(num_shards));
  for (int row = 0; row < n; ++row) {
    const int id =
        index.ids.empty() ? row : index.ids[static_cast<size_t>(row)];
    const int s = id % num_shards;
    shard_rows[static_cast<size_t>(s)].AppendRowFrom(index.rows, row);
    shard_ids[static_cast<size_t>(s)].push_back(id);
  }
  engine.shards_.reserve(static_cast<size_t>(num_shards));
  for (int s = 0; s < num_shards; ++s) {
    PackedIndex shard;
    shard.features = index.features;  // each shard owns its mapper copy
    shard.rows = std::move(shard_rows[static_cast<size_t>(s)]);
    shard.ids = std::move(shard_ids[static_cast<size_t>(s)]);
    // The global counter exceeds every id, so it is a valid per-shard
    // counter too; it keeps reload-then-insert from re-issuing any id.
    shard.next_id = next_id;
    // A persisted v3 IVF layout is handed to every shard; each keeps
    // exactly the buckets holding ids of its partition (the postings are
    // external-id, so this works at any shard count).
    shard.ivf = index.ivf;
    Result<QueryEngine> built =
        QueryEngine::FromPacked(std::move(shard), options.serve);
    if (!built.ok()) return built.status();
    engine.shards_.push_back(std::move(built).value());
  }
  if (index.meta.has_value()) {
    // Restore the persisted generation and raise the epoch sum to at least
    // its pre-snapshot value. Fresh shards each start at epoch 0, so
    // raising shard 0 alone sets the sum — which shard is immaterial, the
    // sum is the contract (see SwapGeneration).
    engine.generation_ = index.meta->generation;
    // Engine under construction: its shards are reachable only by this
    // thread, so the single-writer contract trivially holds here.
    engine.shards_[0].writer_role().Assert();
    engine.shards_[0].RaiseEpochToAtLeast(index.meta->epoch);
  }
  engine.mapper_ = FeatureMapper(std::move(index.features));
  return engine;
}

Result<ShardedEngine> ShardedEngine::Open(const std::string& index_path,
                                          ShardedOptions options) {
  Result<PackedIndex> index = ReadIndexFilePacked(index_path);
  if (!index.ok()) return index.status();
  return FromPacked(std::move(index).value(), options);
}

int ShardedEngine::num_graphs() const {
  int alive = 0;
  for (const QueryEngine& shard : shards_) alive += shard.num_graphs();
  return alive;
}

int ShardedEngine::physical_rows() const {
  int rows = 0;
  for (const QueryEngine& shard : shards_) {
    rows += shard.base_rows() + shard.delta_rows();
  }
  return rows;
}

int ShardedEngine::tombstoned_rows() const {
  int tombstones = 0;
  for (const QueryEngine& shard : shards_) {
    tombstones += shard.tombstoned_rows();
  }
  return tombstones;
}

int ShardedEngine::ivf_buckets() const {
  int buckets = 0;
  for (const QueryEngine& shard : shards_) buckets += shard.ivf_buckets();
  return buckets;
}

int ShardedEngine::max_shard_ivf_buckets() const {
  int buckets = 0;
  for (const QueryEngine& shard : shards_) {
    buckets = std::max(buckets, shard.ivf_buckets());
  }
  return buckets;
}

const QueryEngine& ShardedEngine::shard(int s) const {
  GDIM_CHECK(s >= 0 && s < num_shards());
  return shards_[static_cast<size_t>(s)];
}

uint64_t ShardedEngine::epoch() const {
  uint64_t sum = 0;
  for (const QueryEngine& shard : shards_) sum += shard.epoch();
  return sum;
}

Result<int> ShardedEngine::Insert(const Graph& graph) {
  return InsertMapped(mapper_.Map(graph));
}

Result<int> ShardedEngine::InsertMapped(
    const std::vector<uint8_t>& fingerprint) {
  const int id = next_id_;
  QueryEngine& shard = shards_[static_cast<size_t>(ShardOf(id))];
  // Shards are private to this engine and reachable only through it, so
  // holding writer_role_ (this method's REQUIRES) is holding every shard's
  // role; the analysis cannot derive that ownership, hence the Assert.
  shard.writer_role().Assert();
  Result<int> inserted = shard.InsertMappedWithId(fingerprint, id);
  // Advance the global sequence only on success, so a rejected insert (bad
  // width, exhausted id space) does not burn an id.
  if (inserted.ok()) ++next_id_;
  return inserted;
}

Status ShardedEngine::Remove(int id) {
  if (id < 0) {
    return Status::NotFound("no live graph with id " + std::to_string(id));
  }
  QueryEngine& shard = shards_[static_cast<size_t>(ShardOf(id))];
  // Private shard under the engine's writer_role_; see InsertMapped.
  shard.writer_role().Assert();
  return shard.Remove(id);
}

void ShardedEngine::Compact() {
  for (QueryEngine& shard : shards_) {
    // Private shard under the engine's writer_role_; see InsertMapped.
    shard.writer_role().Assert();
    shard.Compact();
  }
}

void ShardedEngine::SwapGeneration(ShardedEngine next) {
  // The new generation's shards start at epoch 0 (they are fresh builds);
  // the installed epoch must exceed the pre-swap one so epoch-keyed
  // consumers treat the swap as a mutation. Raising one shard's epoch
  // raises the sum — which shard is immaterial, the sum is the contract.
  const uint64_t floor = epoch() + 1;
  options_ = std::move(next.options_);
  mapper_ = std::move(next.mapper_);
  shards_ = std::move(next.shards_);
  next_id_ = next.next_id_;
  ++generation_;
  const uint64_t now = epoch();
  if (now < floor) {
    // Private shard under the engine's writer_role_; see InsertMapped.
    shards_[0].writer_role().Assert();
    shards_[0].RaiseEpochToAtLeast(shards_[0].epoch() + (floor - now));
  }
}

std::vector<int> ShardedEngine::alive_ids() const {
  std::vector<int> ids;
  ids.reserve(static_cast<size_t>(num_graphs()));
  for (const QueryEngine& shard : shards_) {
    const std::vector<int> shard_ids = shard.alive_ids();
    ids.insert(ids.end(), shard_ids.begin(), shard_ids.end());
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

PersistedIndex ShardedEngine::ToPersistedIndex() const {
  // Merge the shards' live rows back into ascending-id order.
  std::vector<std::pair<int, std::vector<uint8_t>>> rows;
  rows.reserve(static_cast<size_t>(num_graphs()));
  for (const QueryEngine& shard : shards_) {
    PersistedIndex part = shard.ToPersistedIndex();
    for (size_t i = 0; i < part.db_bits.size(); ++i) {
      rows.emplace_back(part.ids[i], std::move(part.db_bits[i]));
    }
  }
  std::sort(rows.begin(), rows.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  PersistedIndex index;
  index.features = mapper_.features();
  index.db_bits.reserve(rows.size());
  index.ids.reserve(rows.size());
  for (auto& [id, bits] : rows) {
    index.ids.push_back(id);
    index.db_bits.push_back(std::move(bits));
  }
  index.next_id = next_id_;
  return index;
}

Status ShardedEngine::Snapshot(const std::string& path,
                               IndexFormat format) const {
  if (format == IndexFormat::kV3Sectioned) {
    // The synchronous v3 path is the asynchronous one run inline, so both
    // are one code path: freeze (cheap), then stream the capture.
    return WriteSnapshot(Freeze(), path);
  }
  if (format == IndexFormat::kV2Binary) {
    // Compatibility escape hatch: the merged live rows in global id order,
    // word-level, without the v3 sections.
    const FrozenShardedState frozen = Freeze();
    std::vector<std::pair<int, const uint64_t*>> live;
    for (const FrozenEngineState& shard : frozen.shards) {
      const auto shard_live = shard.LiveRowWords();
      live.insert(live.end(), shard_live.begin(), shard_live.end());
    }
    std::sort(live.begin(), live.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    std::vector<int> ids;
    ids.reserve(live.size());
    for (const auto& row : live) ids.push_back(row.first);
    return WriteIndexFileV2Words(
        frozen.features, static_cast<uint64_t>(live.size()),
        static_cast<uint64_t>(frozen.words_per_row),
        [&](uint64_t i) { return live[i].second; }, ids, frozen.next_id,
        path);
  }
  return WriteIndexFile(ToPersistedIndex(), path, format);
}

FrozenShardedState ShardedEngine::Freeze() const {
  FrozenShardedState frozen;
  frozen.features = mapper_.features();
  frozen.shards.reserve(shards_.size());
  for (const QueryEngine& shard : shards_) {
    // Private shard under the engine's writer_role_; see InsertMapped.
    shard.writer_role().Assert();
    frozen.shards.push_back(shard.Freeze());
  }
  frozen.next_id = next_id_;
  frozen.words_per_row = shards_.empty() ? 0 : shards_[0].words_per_row();
  frozen.epoch = epoch();
  frozen.generation = generation_;
  return frozen;
}

Status ShardedEngine::WriteSnapshot(const FrozenShardedState& frozen,
                                    const std::string& path) {
  // Stream every frozen shard's packed rows in global id order — word-level
  // pointers into the capture's segments, no byte materialization, exactly
  // like the single-engine snapshot path.
  std::vector<std::pair<int, const uint64_t*>> live;
  for (const FrozenEngineState& shard : frozen.shards) {
    const auto shard_live = shard.LiveRowWords();
    live.insert(live.end(), shard_live.begin(), shard_live.end());
  }
  std::sort(live.begin(), live.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<int> ids;
  ids.reserve(live.size());
  for (const auto& row : live) ids.push_back(row.first);

  PersistedMeta meta;
  meta.generation = frozen.generation;
  meta.epoch = frozen.epoch;

  // The IVFX section concatenates every shard's live buckets in shard
  // order, postings lifted to external ids. Restore at any shard count
  // re-partitions by keeping the buckets owning each shard's ids; at an
  // unchanged count the relative bucket order (and so the probe tiebreak)
  // is reproduced exactly.
  PersistedIvf ivf;
  ivf.num_bits = frozen.features.empty()
                     ? 0
                     : static_cast<int>(frozen.features.size());
  for (const FrozenEngineState& shard : frozen.shards) {
    PersistedIvf part = PersistIvf(shard.ivf, shard.tombstones,
                                   shard.row_ids);
    ivf.num_bits = part.num_bits;
    for (PersistedIvfBucket& bucket : part.buckets) {
      ivf.buckets.push_back(std::move(bucket));
    }
  }

  V3Sections sections;
  sections.meta = &meta;
  sections.ivf = &ivf;
  if (frozen.store.has_value()) {
    sections.store_ids = &frozen.store->ids;
    sections.store_graphs = &frozen.store->graphs;
  }
  return WriteIndexFileV3Words(
      frozen.features, static_cast<uint64_t>(live.size()),
      static_cast<uint64_t>(frozen.words_per_row),
      [&](uint64_t i) { return live[i].second; }, ids, frozen.next_id,
      sections, path);
}

Ranking ShardedEngine::ScatterGather(const std::vector<uint8_t>& fingerprint,
                                     const QueryOptions& options,
                                     ServeQueryStats* stats,
                                     int scatter_threads) const {
  const int k = options.k;
  WallTimer timer;
  const int n_shards = num_shards();

  // Stage-2 policy is decided ONCE, over global counts, then forced onto
  // every shard. Left to their per-shard fallback heuristics the shards
  // diverge from the single engine: a shard locally holding fewer than k
  // candidates would widen to a full scan the single engine never runs.
  // The global rule is exactly the single engine's (some candidate
  // survived, enough to fill k, strictly narrower than a full scan), and
  // the candidate rows collected here feed straight into the narrowed
  // scans — one intersection pass per shard total.
  bool narrowed = false;
  int features_on = 0;
  for (uint8_t b : fingerprint) features_on += b != 0 ? 1 : 0;
  std::vector<std::vector<int>> candidates;
  if (options_.serve.containment_prefilter &&
      options.scan_mode == ScanMode::kAuto && features_on > 0) {
    candidates.resize(static_cast<size_t>(n_shards));
    long long total = 0;
    for (size_t s = 0; s < shards_.size(); ++s) {
      candidates[s] = shards_[s].PrefilterCandidateRows(fingerprint);
      total += static_cast<long long>(candidates[s].size());
    }
    narrowed = total > 0 && total >= std::max(k, 0) && total < num_graphs();
  }

  std::vector<Ranking> partials(static_cast<size_t>(n_shards));
  std::vector<ServeQueryStats> shard_stats(static_cast<size_t>(n_shards));
  // kApprox travels to every shard as-is: each shard probes its own IVF
  // index with the same nprobe, so the gather merges per-shard approximate
  // top-k lists. At kNprobeAll every shard's candidate set is its full live
  // set and the merge is bit-identical to the forced-full path.
  const bool approx = options.scan_mode == ScanMode::kApprox;
  const QueryOptions forced =
      approx ? options
             : QueryOptions{.k = options.k, .scan_mode = ScanMode::kFull};
  ParallelScatter(
      n_shards,
      [&](int s) {
        const size_t i = static_cast<size_t>(s);
        partials[i] =
            narrowed
                ? shards_[i].QueryMappedCandidates(fingerprint, options,
                                                   candidates[i],
                                                   &shard_stats[i])
                : shards_[i].QueryMapped(fingerprint, forced,
                                         &shard_stats[i]);
      },
      scatter_threads);
  WallTimer gather_timer;
  Ranking merged = MergeTopK(partials, k);
  const double gather_usec = gather_timer.Micros();
  if (stats != nullptr) {
    stats->latency_ms = timer.Millis();
    stats->features_on = features_on;
    stats->scanned = 0;
    stats->rows_pruned = 0;
    stats->ivf_probe_usec = 0.0;
    // Per-shard stage samples, collected in this serial tail (after the
    // scatter join) so no shard writes a shared slot concurrently.
    stats->shard_scan_usec.clear();
    stats->shard_scan_usec.reserve(static_cast<size_t>(n_shards));
    for (int s = 0; s < n_shards; ++s) {
      stats->scanned += shard_stats[static_cast<size_t>(s)].scanned;
      stats->rows_pruned += shard_stats[static_cast<size_t>(s)].rows_pruned;
      stats->ivf_probe_usec +=
          shard_stats[static_cast<size_t>(s)].ivf_probe_usec;
      stats->shard_scan_usec.push_back(
          shard_stats[static_cast<size_t>(s)].latency_ms * 1e3);
    }
    stats->prefiltered = narrowed;
    stats->approx = approx;
    stats->gather_usec = gather_usec;
  }
  return merged;
}

Ranking ShardedEngine::Query(const Graph& query, const QueryOptions& options,
                             ServeQueryStats* stats) const {
  WallTimer timer;
  Ranking top = ScatterGather(mapper_.Map(query), options, stats,
                              options_.serve.threads);
  if (stats != nullptr) stats->latency_ms = timer.Millis();  // include VF2
  return top;
}

Ranking ShardedEngine::QueryMapped(const std::vector<uint8_t>& fingerprint,
                                   const QueryOptions& options,
                                   ServeQueryStats* stats) const {
  return ScatterGather(fingerprint, options, stats, options_.serve.threads);
}

void ShardedEngine::ScanMappedBatch(
    const std::vector<std::vector<uint8_t>>& fingerprints,
    const QueryOptions& options, std::vector<Ranking>* results,
    std::vector<ServeQueryStats>* stats) const {
  const int n = static_cast<int>(fingerprints.size());
  if (options.scan_mode == ScanMode::kApprox ||
      (options_.serve.containment_prefilter &&
       options.scan_mode == ScanMode::kAuto)) {
    // The stage-2 narrowed-vs-full decision is global and per query, so
    // queries cannot share row passes: one pool over queries, each
    // scattering over shards serially (no nested pools). kApprox takes the
    // same per-query path — the tiled path below forces full scans, which
    // would silently ignore the probe.
    ParallelFor(
        0, n,
        [&](int i) {
          WallTimer query_timer;
          (*results)[static_cast<size_t>(i)] =
              ScatterGather(fingerprints[static_cast<size_t>(i)], options,
                            &(*stats)[static_cast<size_t>(i)], 1);
          (*stats)[static_cast<size_t>(i)].latency_ms = query_timer.Millis();
        },
        options_.serve.threads);
    return;
  }
  // Block-tiled multi-query path: cut the batch into tiles of the active
  // kernel's width and let every shard score a whole tile per row-block
  // pass (QueryEngine::QueryMappedTile), then gather-merge per query. The
  // merge is the same deterministic k-way MergeTopK as the scatter path, so
  // answers are bit-identical to one-query-at-a-time scattering for every
  // tile split, shard count, and kernel.
  const QueryOptions full{.k = options.k, .scan_mode = ScanMode::kFull};
  const int tile = ActiveScanKernel().tile_width();
  const int num_tiles = tile > 0 ? (n + tile - 1) / tile : 0;
  ParallelFor(
      0, num_tiles,
      [&](int t) {
        const int begin = t * tile;
        const int count = std::min(tile, n - begin);
        WallTimer tile_timer;
        std::vector<std::vector<Ranking>> partials(shards_.size());
        std::vector<std::vector<ServeQueryStats>> shard_stats(
            shards_.size());
        for (size_t s = 0; s < shards_.size(); ++s) {
          partials[s] = shards_[s].QueryMappedTile(
              fingerprints.data() + begin, count, full, &shard_stats[s]);
        }
        for (int q = 0; q < count; ++q) {
          std::vector<Ranking> per_shard;
          per_shard.reserve(shards_.size());
          for (size_t s = 0; s < shards_.size(); ++s) {
            per_shard.push_back(
                std::move(partials[s][static_cast<size_t>(q)]));
          }
          WallTimer gather_timer;
          (*results)[static_cast<size_t>(begin + q)] =
              MergeTopK(per_shard, options.k);
          (*stats)[static_cast<size_t>(begin + q)].gather_usec =
              gather_timer.Micros();
        }
        const double tile_ms = tile_timer.Millis();
        for (int q = 0; q < count; ++q) {
          ServeQueryStats& s = (*stats)[static_cast<size_t>(begin + q)];
          s.latency_ms = tile_ms;
          s.features_on = shard_stats[0][static_cast<size_t>(q)].features_on;
          s.scanned = 0;
          for (size_t sh = 0; sh < shards_.size(); ++sh) {
            s.scanned += shard_stats[sh][static_cast<size_t>(q)].scanned;
          }
          s.prefiltered = false;
        }
        // One scan sample per per-shard tile pass, attributed to the tile's
        // first query (QueryMappedTile reports the pass's wall time in every
        // query's latency slot) — each ParallelFor iteration owns its tile's
        // stats slots, so no cross-thread writes.
        ServeQueryStats& first = (*stats)[static_cast<size_t>(begin)];
        first.shard_scan_usec.clear();
        first.shard_scan_usec.reserve(shards_.size());
        for (size_t sh = 0; sh < shards_.size(); ++sh) {
          first.shard_scan_usec.push_back(shard_stats[sh][0].latency_ms *
                                          1e3);
        }
      },
      options_.serve.threads);
}

std::vector<Ranking> ShardedEngine::QueryBatch(
    const GraphDatabase& queries, const QueryOptions& options,
    ServeBatchReport* report,
    std::vector<ServeQueryStats>* per_query) const {
  WallTimer batch_timer;
  std::vector<Ranking> results(queries.size());
  std::vector<ServeQueryStats> stats(queries.size());
  // One stage-1 pass over the whole batch, then packed scans only.
  const std::vector<std::vector<uint8_t>> fingerprints =
      mapper_.MapAll(queries, options_.serve.threads);
  ScanMappedBatch(fingerprints, options, &results, &stats);
  const double wall_ms = batch_timer.Millis();
  if (report != nullptr) FillServeBatchReport(wall_ms, stats, report);
  if (per_query != nullptr) *per_query = std::move(stats);
  return results;
}

std::vector<Ranking> ShardedEngine::QueryMappedBatch(
    const std::vector<std::vector<uint8_t>>& fingerprints,
    const QueryOptions& options, ServeBatchReport* report,
    std::vector<ServeQueryStats>* per_query) const {
  WallTimer batch_timer;
  std::vector<Ranking> results(fingerprints.size());
  std::vector<ServeQueryStats> stats(fingerprints.size());
  ScanMappedBatch(fingerprints, options, &results, &stats);
  const double wall_ms = batch_timer.Millis();
  if (report != nullptr) FillServeBatchReport(wall_ms, stats, report);
  if (per_query != nullptr) *per_query = std::move(stats);
  return results;
}

}  // namespace gdim
