#ifndef GDIM_SERVER_NET_SERVER_H_
#define GDIM_SERVER_NET_SERVER_H_

#include <cstdint>
#include <set>
#include <string>
#include <thread>

#include "common/status.h"
#include "common/sync.h"
#include "server/batch_executor.h"
#include "server/net_socket.h"

namespace gdim {

/// Network front-end knobs.
struct NetServerOptions {
  /// Numeric IPv4 listen address.
  std::string host = "127.0.0.1";
  /// Listen port; 0 asks the kernel for an ephemeral port (read it back
  /// from port() after Start()).
  int port = 0;
  /// listen(2) backlog.
  int backlog = 64;
  /// Concurrent connections beyond this are turned away with an ERR
  /// ResourceExhausted line (connection-level backpressure, distinct from
  /// the executor's per-request admission bound).
  int max_connections = 256;
};

/// The TCP front end: speaks the line-delimited wire protocol (server/wire)
/// and funnels every request into the BatchExecutor, which owns all engine
/// access. One thread per connection (threads block on the executor future,
/// so concurrent connections are what feeds query coalescing); a malformed
/// line answers ERR and keeps the connection; QUIT or EOF ends it.
///
/// Start() binds and spawns the accept loop; Stop() (or the destructor)
/// shuts the listener and every live connection down and waits for the
/// handlers to drain.
class NetServer {
 public:
  /// executor is not owned and must outlive the server.
  NetServer(BatchExecutor* executor, NetServerOptions options = {});
  ~NetServer();

  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  /// Binds host:port and starts accepting. Fails with IoError if the
  /// address is unusable.
  Status Start();

  /// The bound port (valid after a successful Start()).
  int port() const { return port_; }

  /// Total connections accepted so far.
  uint64_t connections_accepted() const GDIM_EXCLUDES(mu_);

  /// Stops accepting, severs live connections, waits for handler exit.
  /// Idempotent.
  void Stop() GDIM_EXCLUDES(mu_);

 private:
  void AcceptLoop() GDIM_EXCLUDES(mu_);
  /// Serves one connection; owns the fd.
  void HandleConnection(int fd) GDIM_EXCLUDES(mu_);
  /// One request line → one response line.
  std::string HandleLine(const std::string& line, bool* quit);

  BatchExecutor* executor_;
  NetServerOptions options_;
  ScopedFd listen_fd_;
  int port_ = 0;
  std::thread accept_thread_;

  mutable Mutex mu_;
  CondVar drained_cv_;
  /// Open connection fds, for Stop() severing.
  std::set<int> live_fds_ GDIM_GUARDED_BY(mu_);
  /// Includes handlers past their fd close.
  int active_connections_ GDIM_GUARDED_BY(mu_) = 0;
  uint64_t connections_accepted_ GDIM_GUARDED_BY(mu_) = 0;
  bool stopping_ GDIM_GUARDED_BY(mu_) = false;
  /// Touched only by the Start()/Stop() caller's thread, never by handlers
  /// — deliberately outside mu_.
  bool started_ = false;
};

}  // namespace gdim

#endif  // GDIM_SERVER_NET_SERVER_H_
