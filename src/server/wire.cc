#include "server/wire.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>

#include "graph/graph_io.h"

namespace gdim {

namespace {

/// Strict non-negative integer token: digits only, no signs, no whitespace.
Result<int> ParseNonNegInt(const std::string& token,
                           const std::string& what) {
  const bool all_digits =
      !token.empty() &&
      std::all_of(token.begin(), token.end(),
                  [](unsigned char c) { return std::isdigit(c); });
  if (!all_digits) {
    return Status::InvalidArgument("bad " + what + " '" + token + "'");
  }
  try {
    return std::stoi(token);
  } catch (const std::out_of_range&) {
    return Status::InvalidArgument(what + " '" + token + "' out of range");
  }
}

StatusCode StatusCodeFromName(const std::string& name) {
  static constexpr StatusCode kCodes[] = {
      StatusCode::kOk,           StatusCode::kInvalidArgument,
      StatusCode::kNotFound,     StatusCode::kOutOfRange,
      StatusCode::kIoError,      StatusCode::kParseError,
      StatusCode::kResourceExhausted, StatusCode::kInternal,
  };
  for (StatusCode code : kCodes) {
    if (name == StatusCodeToString(code)) return code;
  }
  // An unknown name still transports the error; kInternal is the catch-all.
  return StatusCode::kInternal;
}

}  // namespace

std::string EncodeGraphInline(const Graph& graph) {
  std::ostringstream text;
  WriteGraphStream({graph}, text);
  std::string spec = text.str();
  while (!spec.empty() && spec.back() == '\n') spec.pop_back();
  std::replace(spec.begin(), spec.end(), '\n', ';');
  return spec;
}

Result<Graph> DecodeGraphInline(const std::string& spec) {
  std::string text = spec;
  std::replace(text.begin(), text.end(), ';', '\n');
  text.push_back('\n');
  std::istringstream stream(text);
  Result<GraphDatabase> db = ReadGraphStream(stream);
  if (!db.ok()) return db.status();
  if (db->size() != 1) {
    return Status::InvalidArgument("expected exactly one graph, got " +
                                   std::to_string(db->size()));
  }
  return std::move((*db)[0]);
}

Result<WireRequest> ParseWireRequest(const std::string& line) {
  const size_t space = line.find(' ');
  const std::string verb = line.substr(0, space);
  const std::string rest =
      space == std::string::npos ? "" : line.substr(space + 1);
  WireRequest request;
  if (verb == "QUERY") {
    const size_t k_end = rest.find(' ');
    if (k_end == std::string::npos) {
      return Status::InvalidArgument(
          "QUERY wants '<k> [KEY=VALUE ...] <graph>'");
    }
    Result<int> k = ParseNonNegInt(rest.substr(0, k_end), "k");
    if (!k.ok()) return k.status();
    request.options.k = *k;
    // Option tokens sit between k and the graph; a gSpan token never
    // contains '=', so the first '='-free token starts the graph.
    size_t pos = k_end + 1;
    for (;;) {
      const size_t token_end = rest.find(' ', pos);
      const std::string token = rest.substr(
          pos, token_end == std::string::npos ? std::string::npos
                                              : token_end - pos);
      const size_t eq = token.find('=');
      if (eq == std::string::npos) break;  // the graph starts here
      const std::string key = token.substr(0, eq);
      const std::string value = token.substr(eq + 1);
      if (key == "MODE") {
        if (value == "auto") {
          request.options.scan_mode = ScanMode::kAuto;
        } else if (value == "full") {
          request.options.scan_mode = ScanMode::kFull;
        } else if (value == "approx") {
          request.options.scan_mode = ScanMode::kApprox;
        } else {
          return Status::InvalidArgument("bad QUERY MODE '" + value +
                                         "' (want auto|full|approx)");
        }
      } else if (key == "NPROBE") {
        if (value == "all") {
          request.options.nprobe = kNprobeAll;
        } else {
          Result<int> nprobe = ParseNonNegInt(value, "QUERY NPROBE");
          if (!nprobe.ok()) return nprobe.status();
          if (*nprobe < 1) {
            return Status::InvalidArgument(
                "QUERY NPROBE must be >= 1 (or 'all')");
          }
          request.options.nprobe = *nprobe;
        }
      } else if (key == "TRACE") {
        if (value == "1") {
          request.trace = true;
        } else if (value == "0") {
          request.trace = false;
        } else {
          return Status::InvalidArgument("bad QUERY TRACE '" + value +
                                         "' (want 0|1)");
        }
      } else {
        return Status::InvalidArgument("unknown QUERY option '" + key + "'");
      }
      if (token_end == std::string::npos) {
        return Status::InvalidArgument("QUERY wants a graph after its "
                                       "options");
      }
      pos = token_end + 1;
    }
    // NPROBE tunes the approximate probe; on an exact mode it would be
    // silently ignored — reject so a client cannot believe it narrowed an
    // exact scan.
    if (request.options.nprobe != 0 &&
        request.options.scan_mode != ScanMode::kApprox) {
      return Status::InvalidArgument("QUERY NPROBE requires MODE=approx");
    }
    Result<Graph> graph = DecodeGraphInline(rest.substr(pos));
    if (!graph.ok()) return graph.status();
    request.verb = WireVerb::kQuery;
    request.graph = std::move(graph).value();
    return request;
  }
  if (verb == "INSERT") {
    if (rest.empty()) {
      return Status::InvalidArgument("INSERT wants '<graph>'");
    }
    Result<Graph> graph = DecodeGraphInline(rest);
    if (!graph.ok()) return graph.status();
    request.verb = WireVerb::kInsert;
    request.graph = std::move(graph).value();
    return request;
  }
  if (verb == "REMOVE") {
    Result<int> id = ParseNonNegInt(rest, "graph id");
    if (!id.ok()) return id.status();
    request.verb = WireVerb::kRemove;
    request.id = *id;
    return request;
  }
  if (verb == "COMPACT") {
    if (!rest.empty()) {
      return Status::InvalidArgument("COMPACT takes no arguments");
    }
    request.verb = WireVerb::kCompact;
    return request;
  }
  if (verb == "REINDEX") {
    if (!rest.empty()) {
      Result<int> p = ParseNonNegInt(rest, "dimension count");
      if (!p.ok()) return p.status();
      if (*p < 1) {
        return Status::InvalidArgument(
            "REINDEX dimension count must be >= 1 (omit it to keep the "
            "current one)");
      }
      request.p = *p;
    }
    request.verb = WireVerb::kReindex;
    return request;
  }
  if (verb == "SNAPSHOT") {
    if (rest.empty()) {
      return Status::InvalidArgument("SNAPSHOT wants '<path>'");
    }
    request.verb = WireVerb::kSnapshot;
    request.path = rest;
    return request;
  }
  if (verb == "STATS" || verb == "METRICS" || verb == "PING" ||
      verb == "QUIT") {
    if (!rest.empty()) {
      return Status::InvalidArgument(verb + " takes no arguments");
    }
    request.verb = verb == "STATS"     ? WireVerb::kStats
                   : verb == "METRICS" ? WireVerb::kMetrics
                   : verb == "PING"    ? WireVerb::kPing
                                       : WireVerb::kQuit;
    return request;
  }
  return Status::InvalidArgument("unknown verb '" + verb + "'");
}

std::string FormatRankingResponse(const Ranking& ranking) {
  std::string out = "OK " + std::to_string(ranking.size());
  char pair[64];
  for (const RankedResult& r : ranking) {
    std::snprintf(pair, sizeof(pair), " %d:%.6f", r.id, r.score);
    out += pair;
  }
  return out;
}

std::string FormatTraceLine(const QueryTrace& trace) {
  char out[192];
  std::snprintf(out, sizeof(out),
                "TRACE queue=%lld map=%lld cache=%lld scan=%lld total=%lld "
                "cache_hit=%d",
                std::llround(trace.queue_usec), std::llround(trace.map_usec),
                std::llround(trace.cache_usec), std::llround(trace.scan_usec),
                std::llround(trace.total_usec), trace.cache_hit ? 1 : 0);
  return out;
}

std::string FormatErrorResponse(const Status& status) {
  std::string message = status.message();
  std::replace(message.begin(), message.end(), '\n', ' ');
  std::replace(message.begin(), message.end(), '\r', ' ');
  return std::string("ERR ") + StatusCodeToString(status.code()) + " " +
         message;
}

long long StatsField(const std::string& stats_line, const std::string& key) {
  const std::string needle = " " + key + "=";
  const size_t pos = stats_line.find(needle);
  if (pos == std::string::npos) return -1;
  return std::strtoll(stats_line.c_str() + pos + needle.size(), nullptr, 10);
}

Result<Ranking> ParseRankingResponse(const std::string& line) {
  if (line.rfind("ERR ", 0) == 0) {
    const std::string rest = line.substr(4);
    const size_t space = rest.find(' ');
    const std::string name = rest.substr(0, space);
    const std::string message =
        space == std::string::npos ? "" : rest.substr(space + 1);
    return Status(StatusCodeFromName(name), message);
  }
  if (line.rfind("OK ", 0) != 0) {
    return Status::ParseError("malformed response line '" + line + "'");
  }
  std::istringstream in(line.substr(3));
  size_t count = 0;
  if (!(in >> count)) {
    return Status::ParseError("malformed result count in '" + line + "'");
  }
  Ranking ranking;
  ranking.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    std::string token;
    if (!(in >> token)) {
      return Status::ParseError("response promises " + std::to_string(count) +
                                " results, carries " + std::to_string(i));
    }
    const size_t colon = token.find(':');
    if (colon == std::string::npos) {
      return Status::ParseError("malformed result '" + token + "'");
    }
    RankedResult r;
    try {
      r.id = std::stoi(token.substr(0, colon));
      r.score = std::stod(token.substr(colon + 1));
    } catch (const std::exception&) {
      return Status::ParseError("malformed result '" + token + "'");
    }
    ranking.push_back(r);
  }
  std::string extra;
  if (in >> extra) {
    return Status::ParseError("trailing garbage '" + extra + "'");
  }
  return ranking;
}

}  // namespace gdim
