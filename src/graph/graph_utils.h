#ifndef GDIM_GRAPH_GRAPH_UTILS_H_
#define GDIM_GRAPH_GRAPH_UTILS_H_

#include <map>
#include <utility>
#include <vector>

#include "graph/graph.h"

namespace gdim {

/// True iff g is connected (the empty graph counts as connected).
bool IsConnected(const Graph& g);

/// Number of connected components.
int NumConnectedComponents(const Graph& g);

/// Subgraph induced by the given vertex set (kept in the given order; edges
/// with both endpoints inside are retained). Duplicate ids are not allowed.
Graph InducedSubgraph(const Graph& g, const std::vector<VertexId>& vertices);

/// Subgraph formed by the given edges and their endpoints. Vertex ids are
/// compacted; relative vertex order is preserved.
Graph EdgeSubgraph(const Graph& g, const std::vector<EdgeId>& edge_ids);

/// Multiset of vertex labels, as label -> count.
std::map<LabelId, int> VertexLabelHistogram(const Graph& g);

/// Multiset of (edge label, endpoint labels) triples, as canonical triple ->
/// count. Used for cheap upper bounds on common subgraph size: an edge can
/// only be matched to an edge with identical triple.
std::map<std::tuple<LabelId, LabelId, LabelId>, int> EdgeTripleHistogram(
    const Graph& g);

/// Upper bound on |E(mcs(a, b))| from label triple multiset intersection.
int EdgeLabelIntersectionBound(const Graph& a, const Graph& b);

/// Non-increasing degree sequence.
std::vector<int> DegreeSequence(const Graph& g);

/// Total degree-weighted density 2|E| / (|V| (|V|-1)); 0 for |V| < 2.
double GraphDensity(const Graph& g);

}  // namespace gdim

#endif  // GDIM_GRAPH_GRAPH_UTILS_H_
