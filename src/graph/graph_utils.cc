#include "graph/graph_utils.h"

#include <algorithm>
#include <tuple>

namespace gdim {

namespace {

// Iterative DFS marking component ids; returns component count.
int LabelComponents(const Graph& g, std::vector<int>* comp) {
  comp->assign(static_cast<size_t>(g.NumVertices()), -1);
  int count = 0;
  std::vector<VertexId> stack;
  for (VertexId s = 0; s < g.NumVertices(); ++s) {
    if ((*comp)[static_cast<size_t>(s)] >= 0) continue;
    stack.push_back(s);
    (*comp)[static_cast<size_t>(s)] = count;
    while (!stack.empty()) {
      VertexId v = stack.back();
      stack.pop_back();
      for (const AdjEntry& e : g.Neighbors(v)) {
        if ((*comp)[static_cast<size_t>(e.neighbor)] < 0) {
          (*comp)[static_cast<size_t>(e.neighbor)] = count;
          stack.push_back(e.neighbor);
        }
      }
    }
    ++count;
  }
  return count;
}

}  // namespace

bool IsConnected(const Graph& g) {
  return NumConnectedComponents(g) <= 1;
}

int NumConnectedComponents(const Graph& g) {
  std::vector<int> comp;
  return LabelComponents(g, &comp);
}

Graph InducedSubgraph(const Graph& g, const std::vector<VertexId>& vertices) {
  std::vector<int> remap(static_cast<size_t>(g.NumVertices()), -1);
  Graph out;
  for (VertexId v : vertices) {
    GDIM_CHECK(v >= 0 && v < g.NumVertices()) << "bad vertex " << v;
    GDIM_CHECK(remap[static_cast<size_t>(v)] < 0) << "duplicate vertex " << v;
    remap[static_cast<size_t>(v)] = out.AddVertex(g.VertexLabel(v));
  }
  for (const Edge& e : g.edges()) {
    int nu = remap[static_cast<size_t>(e.u)];
    int nv = remap[static_cast<size_t>(e.v)];
    if (nu >= 0 && nv >= 0) out.AddEdge(nu, nv, e.label);
  }
  return out;
}

Graph EdgeSubgraph(const Graph& g, const std::vector<EdgeId>& edge_ids) {
  std::vector<bool> keep_vertex(static_cast<size_t>(g.NumVertices()), false);
  for (EdgeId e : edge_ids) {
    const Edge& edge = g.GetEdge(e);
    keep_vertex[static_cast<size_t>(edge.u)] = true;
    keep_vertex[static_cast<size_t>(edge.v)] = true;
  }
  std::vector<int> remap(static_cast<size_t>(g.NumVertices()), -1);
  Graph out;
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    if (keep_vertex[static_cast<size_t>(v)]) {
      remap[static_cast<size_t>(v)] = out.AddVertex(g.VertexLabel(v));
    }
  }
  for (EdgeId e : edge_ids) {
    const Edge& edge = g.GetEdge(e);
    out.AddEdge(remap[static_cast<size_t>(edge.u)],
                remap[static_cast<size_t>(edge.v)], edge.label);
  }
  return out;
}

std::map<LabelId, int> VertexLabelHistogram(const Graph& g) {
  std::map<LabelId, int> hist;
  for (VertexId v = 0; v < g.NumVertices(); ++v) ++hist[g.VertexLabel(v)];
  return hist;
}

std::map<std::tuple<LabelId, LabelId, LabelId>, int> EdgeTripleHistogram(
    const Graph& g) {
  std::map<std::tuple<LabelId, LabelId, LabelId>, int> hist;
  for (const Edge& e : g.edges()) {
    LabelId lu = g.VertexLabel(e.u);
    LabelId lv = g.VertexLabel(e.v);
    if (lu > lv) std::swap(lu, lv);
    ++hist[{lu, e.label, lv}];
  }
  return hist;
}

int EdgeLabelIntersectionBound(const Graph& a, const Graph& b) {
  auto ha = EdgeTripleHistogram(a);
  auto hb = EdgeTripleHistogram(b);
  int bound = 0;
  for (const auto& [triple, count] : ha) {
    auto it = hb.find(triple);
    if (it != hb.end()) bound += std::min(count, it->second);
  }
  return bound;
}

std::vector<int> DegreeSequence(const Graph& g) {
  std::vector<int> deg;
  deg.reserve(static_cast<size_t>(g.NumVertices()));
  for (VertexId v = 0; v < g.NumVertices(); ++v) deg.push_back(g.Degree(v));
  std::sort(deg.rbegin(), deg.rend());
  return deg;
}

double GraphDensity(const Graph& g) {
  int n = g.NumVertices();
  if (n < 2) return 0.0;
  return 2.0 * g.NumEdges() / (static_cast<double>(n) * (n - 1));
}

}  // namespace gdim
