#include "graph/label_map.h"

#include "common/logging.h"

namespace gdim {

LabelId LabelMap::Intern(const std::string& name) {
  auto it = ids_.find(name);
  if (it != ids_.end()) return it->second;
  LabelId id = static_cast<LabelId>(names_.size());
  ids_.emplace(name, id);
  names_.push_back(name);
  return id;
}

bool LabelMap::Find(const std::string& name, LabelId* id) const {
  auto it = ids_.find(name);
  if (it == ids_.end()) return false;
  *id = it->second;
  return true;
}

const std::string& LabelMap::Name(LabelId id) const {
  GDIM_CHECK(id < names_.size()) << "unknown label id " << id;
  return names_[id];
}

}  // namespace gdim
