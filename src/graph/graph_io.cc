#include "graph/graph_io.h"

#include <fstream>
#include <sstream>
#include <string>

namespace gdim {

namespace {

Status MakeParseError(int line_no, const std::string& what) {
  std::ostringstream os;
  os << "line " << line_no << ": " << what;
  return Status::ParseError(os.str());
}

}  // namespace

Result<GraphDatabase> ReadGraphStream(std::istream& in) {
  GraphDatabase db;
  Graph current;
  bool in_graph = false;
  int line_no = 0;
  std::string line;
  auto flush = [&] {
    if (in_graph) db.push_back(std::move(current));
    current = Graph();
  };
  while (std::getline(in, line)) {
    ++line_no;
    // Tolerate CRLF inputs: a trailing '\r' would otherwise ride along on
    // the last token of every line.
    StripTrailingCarriageReturn(&line);
    std::istringstream ls(line);
    std::string tag;
    if (!(ls >> tag)) continue;  // blank line
    if (tag == "t") {
      std::string hash;
      int id = 0;
      if (!(ls >> hash >> id) || hash != "#") {
        return MakeParseError(line_no, "malformed graph header, want 't # N'");
      }
      flush();
      in_graph = true;
      current.set_id(id);
    } else if (tag == "v") {
      if (!in_graph) return MakeParseError(line_no, "'v' before 't' header");
      int vid = 0;
      long long label = 0;
      if (!(ls >> vid >> label) || label < 0) {
        return MakeParseError(line_no, "malformed vertex line");
      }
      if (vid != current.NumVertices()) {
        return MakeParseError(line_no, "vertex ids must be consecutive");
      }
      current.AddVertex(static_cast<LabelId>(label));
    } else if (tag == "e") {
      if (!in_graph) return MakeParseError(line_no, "'e' before 't' header");
      int u = 0, v = 0;
      long long label = 0;
      if (!(ls >> u >> v >> label) || label < 0) {
        return MakeParseError(line_no, "malformed edge line");
      }
      if (u < 0 || v < 0 || u >= current.NumVertices() ||
          v >= current.NumVertices() || u == v) {
        return MakeParseError(line_no, "edge endpoint out of range");
      }
      if (current.HasEdge(u, v)) {
        return MakeParseError(line_no, "duplicate edge");
      }
      current.AddEdge(u, v, static_cast<LabelId>(label));
    } else if (tag[0] == '#') {
      continue;  // comment
    } else {
      return MakeParseError(line_no, "unknown record tag '" + tag + "'");
    }
  }
  flush();
  return db;
}

Result<GraphDatabase> ReadGraphFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open for reading: " + path);
  return ReadGraphStream(in);
}

void WriteGraphStream(const GraphDatabase& db, std::ostream& out) {
  for (size_t i = 0; i < db.size(); ++i) {
    const Graph& g = db[i];
    int id = g.id() >= 0 ? g.id() : static_cast<int>(i);
    out << "t # " << id << "\n";
    for (VertexId v = 0; v < g.NumVertices(); ++v) {
      out << "v " << v << " " << g.VertexLabel(v) << "\n";
    }
    for (const Edge& e : g.edges()) {
      out << "e " << e.u << " " << e.v << " " << e.label << "\n";
    }
  }
}

Status WriteGraphFile(const GraphDatabase& db, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open for writing: " + path);
  WriteGraphStream(db, out);
  out.flush();
  if (!out) return Status::IoError("write failed: " + path);
  return Status::OK();
}

}  // namespace gdim
