#ifndef GDIM_GRAPH_LABEL_MAP_H_
#define GDIM_GRAPH_LABEL_MAP_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "graph/graph.h"

namespace gdim {

/// Bidirectional map between human-readable label strings ("C", "N",
/// "single", "aromatic") and the dense LabelId integers stored in graphs.
/// One instance per alphabet (vertex labels, edge labels).
class LabelMap {
 public:
  LabelMap() = default;

  /// Returns the id of name, interning it if new.
  LabelId Intern(const std::string& name);

  /// Returns true and sets *id if name is known; false otherwise.
  bool Find(const std::string& name, LabelId* id) const;

  /// Requires id < size().
  const std::string& Name(LabelId id) const;

  int size() const { return static_cast<int>(names_.size()); }

 private:
  std::unordered_map<std::string, LabelId> ids_;
  std::vector<std::string> names_;
};

}  // namespace gdim

#endif  // GDIM_GRAPH_LABEL_MAP_H_
