#ifndef GDIM_GRAPH_GRAPH_IO_H_
#define GDIM_GRAPH_GRAPH_IO_H_

#include <iosfwd>
#include <string>

#include "common/status.h"
#include "graph/graph.h"

namespace gdim {

/// Text serialization in the de-facto standard gSpan transaction format:
///
///   t # <graph-id>
///   v <vertex-id> <vertex-label>
///   e <u> <v> <edge-label>
///
/// Vertices must be declared 0..n-1 in order; '#'-prefixed lines outside a
/// `t` header and blank lines are ignored.

/// Strips one trailing '\r' from a getline'd line — CRLF tolerance for
/// every text parser (graph streams, v1 index files), so exact-match
/// compares and width checks hold on Windows-translated inputs.
inline void StripTrailingCarriageReturn(std::string* line) {
  if (!line->empty() && line->back() == '\r') line->pop_back();
}

/// Parses a whole database from a stream.
Result<GraphDatabase> ReadGraphStream(std::istream& in);

/// Parses a whole database from a file path.
Result<GraphDatabase> ReadGraphFile(const std::string& path);

/// Writes db to a stream in the same format.
void WriteGraphStream(const GraphDatabase& db, std::ostream& out);

/// Writes db to a file; fails with IoError if the file cannot be opened.
Status WriteGraphFile(const GraphDatabase& db, const std::string& path);

}  // namespace gdim

#endif  // GDIM_GRAPH_GRAPH_IO_H_
