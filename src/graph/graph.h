#ifndef GDIM_GRAPH_GRAPH_H_
#define GDIM_GRAPH_GRAPH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/logging.h"

namespace gdim {

/// Integer label identifier. Vertex labels and edge labels live in separate
/// alphabets (see LabelMap); a Graph only stores the integer ids.
using LabelId = uint32_t;

/// Vertex index within one Graph: 0..NumVertices()-1.
using VertexId = int;

/// Edge index within one Graph: 0..NumEdges()-1.
using EdgeId = int;

/// An undirected labeled edge. Stored with source() <= target() normalized
/// order so edge identity is canonical.
struct Edge {
  VertexId u = 0;
  VertexId v = 0;
  LabelId label = 0;

  friend bool operator==(const Edge& a, const Edge& b) = default;
};

/// One entry of a vertex adjacency list.
struct AdjEntry {
  VertexId neighbor = 0;
  LabelId edge_label = 0;
  EdgeId edge = 0;
};

/// A small undirected graph with labels on vertices and edges — the data
/// model of the paper (chemical compounds, 10–20 vertices).
///
/// Invariants: no self-loops, no parallel edges; adjacency lists are kept in
/// sync with the edge list. Mutation is append-only (AddVertex/AddEdge),
/// which is all graph construction in this codebase needs.
class Graph {
 public:
  Graph() = default;

  /// Optional external identifier (e.g. position in the source file).
  int id() const { return id_; }
  void set_id(int id) { id_ = id; }

  int NumVertices() const { return static_cast<int>(vertex_labels_.size()); }
  int NumEdges() const { return static_cast<int>(edges_.size()); }
  bool Empty() const { return vertex_labels_.empty(); }

  /// Appends a vertex with the given label; returns its VertexId.
  VertexId AddVertex(LabelId label);

  /// Appends an undirected edge {u,v} with the given label; returns its
  /// EdgeId. Requires valid distinct endpoints and no existing {u,v} edge.
  EdgeId AddEdge(VertexId u, VertexId v, LabelId label);

  LabelId VertexLabel(VertexId v) const {
    GDIM_DCHECK(v >= 0 && v < NumVertices());
    return vertex_labels_[static_cast<size_t>(v)];
  }

  const Edge& GetEdge(EdgeId e) const {
    GDIM_DCHECK(e >= 0 && e < NumEdges());
    return edges_[static_cast<size_t>(e)];
  }

  const std::vector<Edge>& edges() const { return edges_; }

  /// Neighbors of v with edge labels, in insertion order.
  const std::vector<AdjEntry>& Neighbors(VertexId v) const {
    GDIM_DCHECK(v >= 0 && v < NumVertices());
    return adjacency_[static_cast<size_t>(v)];
  }

  int Degree(VertexId v) const {
    return static_cast<int>(Neighbors(v).size());
  }

  /// Returns the edge id of {u,v}, or -1 if absent.
  EdgeId FindEdge(VertexId u, VertexId v) const;

  bool HasEdge(VertexId u, VertexId v) const { return FindEdge(u, v) >= 0; }

  /// Structural + label equality under the identity vertex mapping (i.e.
  /// same construction, not isomorphism).
  friend bool operator==(const Graph& a, const Graph& b);

  /// Debug rendering: "G(id=3, |V|=5, |E|=4)".
  std::string ToString() const;

 private:
  int id_ = -1;
  std::vector<LabelId> vertex_labels_;
  std::vector<Edge> edges_;
  std::vector<std::vector<AdjEntry>> adjacency_;
};

/// A graph database DG = {g1..gn}.
using GraphDatabase = std::vector<Graph>;

}  // namespace gdim

#endif  // GDIM_GRAPH_GRAPH_H_
