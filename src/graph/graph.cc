#include "graph/graph.h"

#include <algorithm>
#include <sstream>

namespace gdim {

VertexId Graph::AddVertex(LabelId label) {
  vertex_labels_.push_back(label);
  adjacency_.emplace_back();
  return NumVertices() - 1;
}

EdgeId Graph::AddEdge(VertexId u, VertexId v, LabelId label) {
  GDIM_CHECK(u >= 0 && u < NumVertices()) << "bad endpoint u=" << u;
  GDIM_CHECK(v >= 0 && v < NumVertices()) << "bad endpoint v=" << v;
  GDIM_CHECK(u != v) << "self-loop at vertex " << u;
  GDIM_CHECK(FindEdge(u, v) < 0) << "parallel edge {" << u << "," << v << "}";
  if (u > v) std::swap(u, v);
  EdgeId e = NumEdges();
  edges_.push_back(Edge{u, v, label});
  adjacency_[static_cast<size_t>(u)].push_back(AdjEntry{v, label, e});
  adjacency_[static_cast<size_t>(v)].push_back(AdjEntry{u, label, e});
  return e;
}

EdgeId Graph::FindEdge(VertexId u, VertexId v) const {
  if (u < 0 || v < 0 || u >= NumVertices() || v >= NumVertices()) return -1;
  // Scan the shorter adjacency list; graphs here are tiny so a linear scan
  // beats any hash structure.
  const auto& a = adjacency_[static_cast<size_t>(u)];
  const auto& b = adjacency_[static_cast<size_t>(v)];
  const auto& scan = a.size() <= b.size() ? a : b;
  VertexId want = a.size() <= b.size() ? v : u;
  for (const AdjEntry& entry : scan) {
    if (entry.neighbor == want) return entry.edge;
  }
  return -1;
}

bool operator==(const Graph& a, const Graph& b) {
  return a.vertex_labels_ == b.vertex_labels_ && a.edges_ == b.edges_;
}

std::string Graph::ToString() const {
  std::ostringstream os;
  os << "G(id=" << id_ << ", |V|=" << NumVertices() << ", |E|=" << NumEdges()
     << ")";
  return os.str();
}

}  // namespace gdim
