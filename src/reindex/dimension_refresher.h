#ifndef GDIM_REINDEX_DIMENSION_REFRESHER_H_
#define GDIM_REINDEX_DIMENSION_REFRESHER_H_

#include <cstdint>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "common/sync.h"
#include "core/dspm.h"
#include "core/dspmap.h"
#include "core/selector.h"
#include "mcs/dissimilarity.h"
#include "mining/gspan.h"
#include "store/graph_store.h"

namespace gdim {

/// Knobs for one dimension refresh. Defaults follow the serving story:
/// DSPMap (the paper's scalable selector — it evaluates dissimilarities
/// lazily per partition block, so a refresh never computes the O(n²) δ
/// matrix) over a freshly mined candidate set, keeping the current
/// dimension count.
struct RefreshOptions {
  /// Selector by paper name ("DSPMap", "DSPM", "Sample", ...); resolved
  /// through the core/selector.h registry, so every selector the offline
  /// build supports is available online.
  std::string selector = "DSPMap";

  /// Number of dimensions to select; 0 = keep the serving engine's current
  /// dimension count. (BuildGeneration itself requires a resolved p > 0 —
  /// the 0 sentinel is resolved by the caller, who knows the engine.)
  int p = 0;

  /// Candidate mining over the frozen live set.
  MiningOptions mining;

  /// Dissimilarity for the selectors that need one (DSPMap blocks, DSPM /
  /// SFS full matrix).
  DissimilarityKind dissimilarity = DissimilarityKind::kDelta2;

  /// Selector-specific knobs, mirroring IndexOptions.
  SelectorParams params;
  DspmOptions dspm;
  DspmapOptions dspmap;

  uint64_t seed = 1;
  int threads = 0;

  /// Test hook: invoked on the refresh thread after the freeze has been
  /// taken and before mining/selection begins. Tests park a refresh here
  /// deterministically (e.g. blocking on a FIFO open) to prove queries and
  /// mutations keep flowing while a refresh is mid-selection. Never set in
  /// production paths.
  std::function<void()> selection_gate;
};

/// The product of one refresh: a freshly selected dimension over the frozen
/// live set, plus every frozen graph's fingerprint on it. fingerprints[i]
/// belongs to external id ids[i] (ascending) — exactly the shape a
/// PersistedIndex wants, so installing a generation is a FromIndex away.
/// Fingerprints come from the mined support sets (no VF2 needed for the
/// frozen graphs), which agree bit-for-bit with FeatureMapper::Map — both
/// answer "is feature f subgraph-isomorphic to g" exactly.
struct RefreshedGeneration {
  GraphDatabase features;
  std::vector<int> ids;
  std::vector<std::vector<uint8_t>> fingerprints;
  int mined_features = 0;       ///< candidate set size before selection
  double mining_seconds = 0.0;
  double selection_seconds = 0.0;
};

/// The synchronous refresh pipeline: mine frequent subgraphs over the
/// frozen live set, run the configured selector, and materialize the new
/// dimension + fingerprints. Deterministic in (frozen set, options):
/// mining order is DFS-lexicographic and every selector is seeded, so two
/// runs over the same live set produce bit-identical generations — the
/// property the swap-equivalence tests (online swap vs offline rebuild)
/// lean on. Runs wherever called; the refresher below runs it on a
/// background thread.
Result<RefreshedGeneration> BuildGeneration(const FrozenGraphSet& frozen,
                                            const RefreshOptions& options);

/// Runs dimension refreshes on a background thread, one at a time.
///
/// The division of labor with the serving dispatcher: the dispatcher (the
/// engine's single writer) freezes the live graph set — a bounded pause —
/// and calls Start(); the refresher mines + selects + re-fingerprints off
/// the hot path; when done it hands the built generation to the `done`
/// callback ON THE REFRESH THREAD. The callback must route the result back
/// to the writer thread for installation (the BatchExecutor enqueues an
/// internal adopt request) — the refresher itself never touches an engine.
///
/// Start/running/completed are thread-safe. The destructor joins any
/// in-flight refresh (its `done` callback still runs; callers' callbacks
/// must tolerate being invoked during executor shutdown).
class DimensionRefresher {
 public:
  using DoneFn = std::function<void(Result<RefreshedGeneration>)>;

  DimensionRefresher() = default;
  ~DimensionRefresher();

  DimensionRefresher(const DimensionRefresher&) = delete;
  DimensionRefresher& operator=(const DimensionRefresher&) = delete;

  /// Starts a background refresh over the frozen set. ResourceExhausted if
  /// one is already running (the caller surfaces this as a typed wire
  /// error; a second concurrent selection would only burn the same cores).
  /// Refresh lifecycle observability lives with the caller (the executor's
  /// reindex_in_progress/reindex_completed stats span freeze → swap, a
  /// wider window than the selection alone).
  Status Start(FrozenGraphSet frozen, RefreshOptions options, DoneFn done)
      GDIM_EXCLUDES(mu_);

 private:
  mutable Mutex mu_;
  /// Joined under mu_ by Start (reaping a finished run) and lock-free by the
  /// destructor, which the analysis does not check — by then no other thread
  /// may call Start anyway.
  std::thread worker_ GDIM_GUARDED_BY(mu_);
  bool running_ GDIM_GUARDED_BY(mu_) = false;
};

}  // namespace gdim

#endif  // GDIM_REINDEX_DIMENSION_REFRESHER_H_
