#include "reindex/dimension_refresher.h"

#include <memory>
#include <system_error>
#include <utility>

#include "common/timer.h"
#include "core/binary_db.h"

namespace gdim {

Result<RefreshedGeneration> BuildGeneration(const FrozenGraphSet& frozen,
                                            const RefreshOptions& options) {
  if (frozen.empty()) {
    return Status::InvalidArgument("cannot refresh an empty live set");
  }
  if (options.p <= 0) {
    return Status::InvalidArgument(
        "refresh p must be resolved to a positive dimension count, got " +
        std::to_string(options.p));
  }

  // Phase 1: mine the candidate feature set over the live graphs. Pattern
  // support sets double as the fingerprints later — no VF2 for the frozen
  // set.
  WallTimer timer;
  Result<std::vector<FrequentPattern>> mined =
      MineFrequentSubgraphs(frozen.graphs, options.mining);
  if (!mined.ok()) return mined.status();
  if (mined->empty()) {
    return Status::NotFound(
        "no frequent subgraphs in the live set at this support");
  }
  RefreshedGeneration generation;
  generation.mining_seconds = timer.Seconds();
  generation.mined_features = static_cast<int>(mined->size());
  BinaryFeatureDb features = BinaryFeatureDb::FromPatterns(
      static_cast<int>(frozen.graphs.size()), *mined);

  // Phase 2+3: selection. DSPMap goes through its lazy-dissimilarity path
  // (it evaluates δ only inside partition and overlap blocks); every other
  // selector runs through the registry, with the full δ matrix computed
  // only when it asks for one.
  timer.Reset();
  std::vector<int> selected;
  if (options.selector == "DSPMap") {
    DspmapOptions dopt = options.dspmap;
    dopt.p = options.p;
    dopt.seed = options.seed;
    dopt.dspm.threads = options.threads;
    DspmapResult r =
        RunDspmap(features, frozen.graphs, options.dissimilarity, dopt);
    selected = std::move(r.selected);
  } else {
    std::unique_ptr<FeatureSelector> selector =
        MakeSelector(options.selector);
    if (selector == nullptr) {
      return Status::InvalidArgument("unknown selector: " + options.selector);
    }
    DissimilarityMatrix delta;
    if (selector->NeedsDissimilarity()) {
      delta = DissimilarityMatrix::Compute(
          frozen.graphs, options.dissimilarity, {}, options.threads);
    }
    SelectionInput input;
    input.db = &features;
    input.delta = delta.size() > 0 ? &delta : nullptr;
    input.p = options.p;
    input.seed = options.seed;
    input.threads = options.threads;
    input.params = options.params;
    input.dspm = options.dspm;
    input.dspmap = options.dspmap;
    Result<SelectionOutput> out = selector->Select(input);
    if (!out.ok()) return out.status();
    selected = std::move(out->selected);
  }
  if (static_cast<int>(selected.size()) > options.p) {
    selected.resize(static_cast<size_t>(options.p));
  }
  if (selected.empty()) {
    return Status::NotFound("selector '" + options.selector +
                            "' selected no features");
  }
  generation.selection_seconds = timer.Seconds();

  // Phase 4: materialize the dimension and the frozen set's fingerprints
  // from the mined supports (exact, VF2-free, and bit-identical to what
  // FeatureMapper::Map would produce for the same graphs).
  generation.features.reserve(selected.size());
  for (int r : selected) {
    generation.features.push_back(
        features.feature_graphs()[static_cast<size_t>(r)]);
  }
  generation.ids = frozen.ids;
  generation.fingerprints.resize(frozen.graphs.size());
  for (size_t i = 0; i < frozen.graphs.size(); ++i) {
    std::vector<uint8_t> bits(selected.size(), 0);
    for (size_t r = 0; r < selected.size(); ++r) {
      bits[r] =
          features.Contains(static_cast<int>(i), selected[r]) ? 1 : 0;
    }
    generation.fingerprints[i] = std::move(bits);
  }
  return generation;
}

DimensionRefresher::~DimensionRefresher() {
  // Joining outside the lock: the worker takes mu_ to flip running_ before
  // its done callback.
  if (worker_.joinable()) worker_.join();
}

Status DimensionRefresher::Start(FrozenGraphSet frozen,
                                 RefreshOptions options, DoneFn done) {
  MutexLock lock(&mu_);
  if (running_) {
    return Status::ResourceExhausted("a dimension refresh is already running");
  }
  if (worker_.joinable()) worker_.join();  // reap the previous, finished run
  running_ = true;
  // Thread exhaustion must fail this one refresh, not escape into the
  // caller's dispatcher loop and terminate the process (same guard as the
  // executor's snapshot writer spawn).
  try {
    worker_ = std::thread([this, frozen = std::move(frozen),
                           options = std::move(options),
                           done = std::move(done)]() mutable {
      if (options.selection_gate) options.selection_gate();
      Result<RefreshedGeneration> built = BuildGeneration(frozen, options);
      {
        MutexLock inner(&mu_);
        running_ = false;
      }
      done(std::move(built));
    });
  } catch (const std::system_error& e) {
    running_ = false;
    return Status::Internal(std::string("cannot spawn refresh thread: ") +
                            e.what());
  }
  return Status::OK();
}

}  // namespace gdim
