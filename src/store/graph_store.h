#ifndef GDIM_STORE_GRAPH_STORE_H_
#define GDIM_STORE_GRAPH_STORE_H_

#include <vector>

#include "common/status.h"
#include "common/sync.h"
#include "graph/graph.h"

namespace gdim {

/// An immutable capture of the store's live graphs, taken by
/// GraphStore::Freeze() on the engine's writer thread and then read by a
/// background dimension refresh on any thread. graphs[i] is the graph with
/// external id ids[i]; ids are strictly ascending — the same order the
/// serving engines keep their physical rows in, so a generation built from
/// this capture lines up with the engines' id-ordered world row for row.
struct FrozenGraphSet {
  std::vector<int> ids;
  GraphDatabase graphs;

  bool empty() const { return ids.empty(); }
  size_t size() const { return ids.size(); }
};

/// The in-memory store of the *live graphs* behind a serving engine, keyed
/// by stable external id. The engines only keep fingerprints — a graph's
/// projection onto the currently selected dimension — which is exactly the
/// right thing for scanning and exactly the wrong thing for re-selecting
/// the dimension: once the corpus has churned, re-fingerprinting requires
/// the graphs themselves. The store is that missing ingredient.
///
/// It mirrors the engine's lifecycle verbatim: populated from the source
/// database at load and by every successful INSERT, marked by REMOVE, and
/// pruned by Compact (entries are append-only in between, so a remove is
/// O(log n) and never shifts memory a frozen capture was taken from).
/// Ids must be strictly ascending across the store's lifetime — the same
/// contract the engines enforce — which keeps entries sorted by id for
/// free.
///
/// Not thread-safe: the store belongs to the engine's single writer (the
/// BatchExecutor dispatcher), like the engines themselves — a contract
/// checked the same way: mutators and Freeze() REQUIRE writer_role().
/// Freeze() hands an independent copy to background readers.
class GraphStore {
 public:
  GraphStore() = default;

  /// The single-writer capability; see the class comment.
  ThreadRole& writer_role() const GDIM_RETURN_CAPABILITY(writer_role_) {
    return writer_role_;
  }

  /// Registers a live graph under id. Ids must be strictly ascending over
  /// the store's lifetime (InvalidArgument otherwise) — callers feed the
  /// engine-assigned external ids, which already are.
  Status Put(int id, Graph graph) GDIM_REQUIRES(writer_role_);

  /// Marks the graph with this id dead; NotFound if no live entry has it.
  /// Memory is reclaimed by the next Compact(), not here.
  Status Remove(int id) GDIM_REQUIRES(writer_role_);

  /// Prunes dead entries; returns how many were reclaimed.
  int Compact() GDIM_REQUIRES(writer_role_);

  /// Live graphs currently in the store.
  int live_count() const { return live_; }
  /// Physical entries, including dead ones awaiting Compact().
  int total_entries() const { return static_cast<int>(entries_.size()); }

  /// The live graph with this id, or nullptr. The pointer is valid until
  /// the next Compact().
  const Graph* FindLive(int id) const;

  /// External ids of the live graphs, ascending.
  std::vector<int> live_ids() const;

  /// Copies the live set out for a background reader. Graphs are small
  /// (the corpus this system serves is many small graphs, not one big
  /// one), so the pause is O(live graphs) with a tiny constant. The copy
  /// must be ordered against writers, hence REQUIRES.
  FrozenGraphSet Freeze() const GDIM_REQUIRES(writer_role_);

 private:
  struct Entry {
    int id = 0;
    Graph graph;
    bool dead = false;
  };

  /// Index into entries_ of the entry with this id (dead or live), or -1.
  int FindEntry(int id) const;

  std::vector<Entry> entries_;  ///< ascending id
  int live_ = 0;
  int last_id_ = -1;  ///< largest id ever Put; enforces ascending ids
  /// See writer_role(). mutable: acquiring a role is not a state change.
  mutable ThreadRole writer_role_;
};

}  // namespace gdim

#endif  // GDIM_STORE_GRAPH_STORE_H_
