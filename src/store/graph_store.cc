#include "store/graph_store.h"

#include <algorithm>
#include <string>
#include <utility>

namespace gdim {

Status GraphStore::Put(int id, Graph graph) {
  if (id <= last_id_) {
    return Status::InvalidArgument(
        "store ids must be strictly ascending: got " + std::to_string(id) +
        " after " + std::to_string(last_id_));
  }
  entries_.push_back(Entry{id, std::move(graph), false});
  last_id_ = id;
  ++live_;
  return Status::OK();
}

int GraphStore::FindEntry(int id) const {
  const auto it = std::lower_bound(
      entries_.begin(), entries_.end(), id,
      [](const Entry& e, int target) { return e.id < target; });
  if (it == entries_.end() || it->id != id) return -1;
  return static_cast<int>(it - entries_.begin());
}

Status GraphStore::Remove(int id) {
  const int at = FindEntry(id);
  if (at < 0 || entries_[static_cast<size_t>(at)].dead) {
    return Status::NotFound("no live graph with id " + std::to_string(id));
  }
  entries_[static_cast<size_t>(at)].dead = true;
  --live_;
  return Status::OK();
}

int GraphStore::Compact() {
  const int reclaimed = total_entries() - live_;
  if (reclaimed == 0) return 0;
  std::vector<Entry> survivors;
  survivors.reserve(static_cast<size_t>(live_));
  for (Entry& e : entries_) {
    if (!e.dead) survivors.push_back(std::move(e));
  }
  entries_ = std::move(survivors);
  return reclaimed;
}

const Graph* GraphStore::FindLive(int id) const {
  const int at = FindEntry(id);
  if (at < 0 || entries_[static_cast<size_t>(at)].dead) return nullptr;
  return &entries_[static_cast<size_t>(at)].graph;
}

std::vector<int> GraphStore::live_ids() const {
  std::vector<int> ids;
  ids.reserve(static_cast<size_t>(live_));
  for (const Entry& e : entries_) {
    if (!e.dead) ids.push_back(e.id);
  }
  return ids;
}

FrozenGraphSet GraphStore::Freeze() const {
  FrozenGraphSet frozen;
  frozen.ids.reserve(static_cast<size_t>(live_));
  frozen.graphs.reserve(static_cast<size_t>(live_));
  for (const Entry& e : entries_) {
    if (e.dead) continue;
    frozen.ids.push_back(e.id);
    frozen.graphs.push_back(e.graph);
  }
  return frozen;
}

}  // namespace gdim
