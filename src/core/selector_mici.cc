#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <numeric>
#include <vector>

#include "core/measures.h"
#include "core/selector.h"

namespace gdim {

namespace {

// Unsupervised feature selection by feature similarity (Mitra, Murthy, Pal,
// TPAMI 2002). Pairwise feature similarity is the Maximal Information
// Compression Index: the smallest eigenvalue of the 2×2 covariance matrix of
// the two features,
//   λ2 = (vx + vy − sqrt((vx + vy)² − 4·vx·vy·(1 − ρ²))) / 2,
// zero iff the features are linearly dependent. The algorithm repeatedly
// keeps the feature whose k-th nearest neighbour is closest and discards
// those k neighbours (redundancy removal). We pick k ≈ m/p so the clustering
// yields about p representatives, then trim/pad to exactly p.
class MiciSelector : public FeatureSelector {
 public:
  std::string name() const override { return "MICI"; }

  Result<SelectionOutput> Select(const SelectionInput& input) const override {
    if (input.db == nullptr) {
      return Status::InvalidArgument("MICI: db is required");
    }
    const BinaryFeatureDb& db = *input.db;
    const int n = db.num_graphs();
    const int m = db.num_features();
    const int p = std::min(input.p, m);
    if (n == 0 || m == 0) return Status::InvalidArgument("MICI: empty input");

    // Binary feature moments: mean s/n, var mean(1-mean); covariance from
    // co-support sizes via the sorted inverted lists.
    std::vector<double> mean(static_cast<size_t>(m)), var(static_cast<size_t>(m));
    for (int r = 0; r < m; ++r) {
      double mu = static_cast<double>(db.SupportSize(r)) / n;
      mean[static_cast<size_t>(r)] = mu;
      var[static_cast<size_t>(r)] = mu * (1.0 - mu);
    }
    auto mici_pair = [&](int a, int b) {
      double vx = var[static_cast<size_t>(a)];
      double vy = var[static_cast<size_t>(b)];
      if (vx <= 0.0 || vy <= 0.0) return 0.0;  // constant => dependent
      // E[xy] from co-support size via the sorted inverted lists.
      const std::vector<int>& sa = db.FeatureSupport(a);
      const std::vector<int>& sb = db.FeatureSupport(b);
      size_t ia = 0, ib = 0;
      int inter = 0;
      while (ia < sa.size() && ib < sb.size()) {
        if (sa[ia] == sb[ib]) {
          ++inter;
          ++ia;
          ++ib;
        } else if (sa[ia] < sb[ib]) {
          ++ia;
        } else {
          ++ib;
        }
      }
      double cov = static_cast<double>(inter) / n -
                   mean[static_cast<size_t>(a)] * mean[static_cast<size_t>(b)];
      double rho2 = cov * cov / (vx * vy);
      rho2 = std::min(rho2, 1.0);
      double tr = vx + vy;
      double disc = tr * tr - 4.0 * vx * vy * (1.0 - rho2);
      disc = std::max(disc, 0.0);
      return (tr - std::sqrt(disc)) / 2.0;
    };
    // Precompute the pairwise MICI matrix once (float, m² entries): the
    // representative-selection rounds below would otherwise recompute each
    // similarity O(p) times.
    std::vector<float> sim(static_cast<size_t>(m) * static_cast<size_t>(m),
                           0.0f);
    for (int a = 0; a < m; ++a) {
      for (int b = a + 1; b < m; ++b) {
        float v = static_cast<float>(mici_pair(a, b));
        sim[static_cast<size_t>(a) * static_cast<size_t>(m) +
            static_cast<size_t>(b)] = v;
        sim[static_cast<size_t>(b) * static_cast<size_t>(m) +
            static_cast<size_t>(a)] = v;
      }
    }
    auto mici = [&sim, m](int a, int b) {
      return static_cast<double>(
          sim[static_cast<size_t>(a) * static_cast<size_t>(m) +
              static_cast<size_t>(b)]);
    };

    // Cluster-and-discard with k ≈ m/p − 1 neighbours per representative.
    int k = std::max(1, m / std::max(1, p) - 1);
    std::vector<bool> alive(static_cast<size_t>(m), true);
    std::vector<int> representatives;
    int alive_count = m;
    while (alive_count > 0) {
      k = std::min(k, alive_count - 1);
      if (k == 0) {
        // Every remaining feature becomes its own representative.
        for (int r = 0; r < m; ++r) {
          if (alive[static_cast<size_t>(r)]) representatives.push_back(r);
        }
        break;
      }
      // Feature with the most compact k-neighbourhood.
      int best = -1;
      double best_radius = std::numeric_limits<double>::max();
      std::vector<int> best_neighbors;
      for (int r = 0; r < m; ++r) {
        if (!alive[static_cast<size_t>(r)]) continue;
        std::vector<std::pair<double, int>> dist;
        for (int s = 0; s < m; ++s) {
          if (s == r || !alive[static_cast<size_t>(s)]) continue;
          dist.emplace_back(mici(r, s), s);
        }
        std::nth_element(dist.begin(), dist.begin() + (k - 1), dist.end());
        double radius = dist[static_cast<size_t>(k - 1)].first;
        if (radius < best_radius) {
          best_radius = radius;
          best = r;
          std::sort(dist.begin(), dist.end());
          best_neighbors.clear();
          for (int t = 0; t < k; ++t) {
            best_neighbors.push_back(dist[static_cast<size_t>(t)].second);
          }
        }
      }
      representatives.push_back(best);
      alive[static_cast<size_t>(best)] = false;
      --alive_count;
      for (int nb : best_neighbors) {
        if (alive[static_cast<size_t>(nb)]) {
          alive[static_cast<size_t>(nb)] = false;
          --alive_count;
        }
      }
      if (static_cast<int>(representatives.size()) >= p && alive_count > 0) {
        // Enough representatives; stop early (keeps runtime bounded).
        break;
      }
    }
    // Trim or pad to exactly p (pad with highest-variance leftovers —
    // informative under MICI's framework).
    SelectionOutput out;
    if (static_cast<int>(representatives.size()) >= p) {
      out.selected.assign(representatives.begin(),
                          representatives.begin() + p);
    } else {
      out.selected = representatives;
      std::vector<int> rest;
      for (int r = 0; r < m; ++r) {
        if (std::find(out.selected.begin(), out.selected.end(), r) ==
            out.selected.end()) {
          rest.push_back(r);
        }
      }
      std::stable_sort(rest.begin(), rest.end(), [&](int a, int b) {
        return var[static_cast<size_t>(a)] > var[static_cast<size_t>(b)];
      });
      for (int r : rest) {
        if (static_cast<int>(out.selected.size()) >= p) break;
        out.selected.push_back(r);
      }
    }
    return out;
  }
};

}  // namespace

std::unique_ptr<FeatureSelector> MakeMiciSelector() {
  return std::make_unique<MiciSelector>();
}

}  // namespace gdim
