#ifndef GDIM_CORE_DSPMAP_H_
#define GDIM_CORE_DSPMAP_H_

#include <functional>
#include <vector>

#include "core/binary_db.h"
#include "core/dspm.h"
#include "graph/graph.h"
#include "mcs/dissimilarity.h"

namespace gdim {

/// Pairwise graph dissimilarity oracle over database indices. DSPMap only
/// evaluates it for pairs inside partitions and overlap blocks — O(n·b)
/// pairs instead of O(n²) — which is where its indexing-time win comes from.
using DissimilarityFn = std::function<double(int, int)>;

/// Parameters of the approximate DSPMap algorithm (Algorithm 5).
struct DspmapOptions {
  /// Number of feature dimensions p to select at the end.
  int p = 300;

  /// Partition size b (Algorithm 7 stops splitting at |DG| ≤ b).
  int partition_size = 100;

  /// Number of graphs sampled to build the two center sets O_l / O_r.
  int sample_size = 8;

  /// Settings of the inner DSPM runs on partitions and overlap blocks.
  DspmOptions dspm;

  /// Seed for sampling (centers, overlap blocks).
  uint64_t seed = 42;
};

/// Output of DSPMap.
struct DspmapResult {
  /// Selected feature ids, by decreasing accumulated weight magnitude.
  std::vector<int> selected;

  /// Accumulated weight vector c = Σ (c_l + c_r + c_o) over the recursion.
  std::vector<double> weights;

  /// Leaf partitions produced by Algorithm 7 (database indices).
  std::vector<std::vector<int>> partitions;

  /// Number of inner DSPM invocations (leaves + overlap blocks).
  int dspm_calls = 0;

  /// Number of dissimilarity-oracle evaluations (≈ pairs touched).
  long long delta_evaluations = 0;
};

/// Runs DSPMap over the binary feature database, evaluating graph
/// dissimilarities lazily through `delta`.
DspmapResult RunDspmap(const BinaryFeatureDb& db, const DissimilarityFn& delta,
                       const DspmapOptions& options = {});

/// Convenience overload: dissimilarities computed from the graphs by MCS.
DspmapResult RunDspmap(const BinaryFeatureDb& db, const GraphDatabase& graphs,
                       DissimilarityKind kind = DissimilarityKind::kDelta2,
                       const DspmapOptions& options = {});

/// Algorithm 7 alone (exposed for tests): recursively partitions the graph
/// ids of db into blocks of at most partition_size, clustering by binary-
/// vector distance and balancing block sizes.
std::vector<std::vector<int>> PartitionDatabase(const BinaryFeatureDb& db,
                                                const DspmapOptions& options);

}  // namespace gdim

#endif  // GDIM_CORE_DSPMAP_H_
