// AVX2 scan kernel. This translation unit is compiled with -mavx2 (see
// CMakeLists.txt); nothing in it is referenced unless runtime CPUID says the
// host can execute it, so the rest of the binary stays runnable on older
// machines. When the compiler cannot target AVX2 at all, the factory
// degrades to nullptr and dispatch never offers the kernel.
//
// Rows are processed in groups of four so the per-row horizontal reduction
// collapses into one unpack/permute tree — four lane-sum vectors in, one
// vector of four row totals out — instead of four sequential extract+add
// chains, which at serving widths cost as much as the scans themselves.
#include "core/kernels/scan_kernel.h"

#if defined(__AVX2__)

#include <immintrin.h>

#include <bit>

namespace gdim {

namespace {

/// Positional popcount of the four 64-bit lanes (Muła's nibble-lookup
/// scheme): per-byte counts via two PSHUFB table lookups, then horizontal
/// sums into the 64-bit lanes with PSADBW.
inline __m256i PopcountEpi64(__m256i v) {
  const __m256i lookup = _mm256_setr_epi8(
      0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,  //
      0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i low_mask = _mm256_set1_epi8(0x0f);
  const __m256i lo = _mm256_and_si256(v, low_mask);
  const __m256i hi = _mm256_and_si256(_mm256_srli_epi16(v, 4), low_mask);
  const __m256i counts =
      _mm256_add_epi8(_mm256_shuffle_epi8(lookup, lo),
                      _mm256_shuffle_epi8(lookup, hi));
  return _mm256_sad_epu8(counts, _mm256_setzero_si256());
}

inline uint32_t HorizontalSumEpi64(__m256i v) {
  const __m128i lo = _mm256_castsi256_si128(v);
  const __m128i hi = _mm256_extracti128_si256(v, 1);
  const __m128i sum = _mm_add_epi64(lo, hi);
  return static_cast<uint32_t>(
      _mm_cvtsi128_si64(sum) + _mm_cvtsi128_si64(_mm_unpackhi_epi64(sum, sum)));
}

/// Reduces four per-row lane-sum vectors to the four row totals, as u32 in
/// the low lanes. Stage 1 pairs rows within 128-bit lanes (unpack + add),
/// stage 2 pairs the lanes across vectors (permute + add); dword i of the
/// result is the full lane sum of s[i].
inline __m128i RowSums4(const __m256i s[4]) {
  const __m256i a = _mm256_add_epi64(_mm256_unpacklo_epi64(s[0], s[1]),
                                     _mm256_unpackhi_epi64(s[0], s[1]));
  const __m256i b = _mm256_add_epi64(_mm256_unpacklo_epi64(s[2], s[3]),
                                     _mm256_unpackhi_epi64(s[2], s[3]));
  const __m256i sums =
      _mm256_add_epi64(_mm256_permute2x128_si256(a, b, 0x20),
                       _mm256_permute2x128_si256(a, b, 0x31));
  const __m256i narrow = _mm256_permutevar8x32_epi32(
      sums, _mm256_setr_epi32(0, 2, 4, 6, 0, 0, 0, 0));
  return _mm256_castsi256_si128(narrow);
}

class Avx2Kernel final : public ScanKernel {
 public:
  const char* name() const override { return "avx2"; }

  int tile_width() const override { return 8; }

  void HammingBlock(const uint64_t* query, const uint64_t* rows,
                    size_t words_per_row, int num_rows,
                    uint32_t* diffs) const override {
    const size_t vec_words = words_per_row & ~size_t{3};
    int r = 0;
    for (; r + 4 <= num_rows; r += 4) {
      const uint64_t* row = rows + static_cast<size_t>(r) * words_per_row;
      __m256i acc[4];
      for (int j = 0; j < 4; ++j) acc[j] = _mm256_setzero_si256();
      size_t w = 0;
      for (; w < vec_words; w += 4) {
        const __m256i q =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(query + w));
        for (int j = 0; j < 4; ++j) {
          const __m256i d = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(
              row + static_cast<size_t>(j) * words_per_row + w));
          acc[j] = _mm256_add_epi64(acc[j],
                                    PopcountEpi64(_mm256_xor_si256(q, d)));
        }
      }
      _mm_storeu_si128(reinterpret_cast<__m128i*>(diffs + r), RowSums4(acc));
      for (; w < words_per_row; ++w) {
        for (int j = 0; j < 4; ++j) {
          diffs[r + j] += static_cast<uint32_t>(std::popcount(
              query[w] ^ row[static_cast<size_t>(j) * words_per_row + w]));
        }
      }
    }
    // Row remainder (< 4 rows): per-row horizontal reduce.
    const uint64_t* row = rows + static_cast<size_t>(r) * words_per_row;
    for (; r < num_rows; ++r, row += words_per_row) {
      __m256i acc = _mm256_setzero_si256();
      size_t w = 0;
      for (; w < vec_words; w += 4) {
        const __m256i q =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(query + w));
        const __m256i d =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(row + w));
        acc = _mm256_add_epi64(acc, PopcountEpi64(_mm256_xor_si256(q, d)));
      }
      uint32_t diff = HorizontalSumEpi64(acc);
      for (; w < words_per_row; ++w) {
        diff += static_cast<uint32_t>(std::popcount(query[w] ^ row[w]));
      }
      diffs[r] = diff;
    }
  }

  void HammingBlockMulti(const uint64_t* const* queries, int num_queries,
                         const uint64_t* rows, size_t words_per_row,
                         int num_rows, uint32_t* diffs) const override {
    const size_t vec_words = words_per_row & ~size_t{3};
    int q = 0;
    // Two queries by four rows per pass: eight accumulators plus the
    // popcount constants and the shared row vector stay within the sixteen
    // ymm registers, every row load is amortized over two XORs, and both
    // queries' reductions use the unpack/permute tree.
    for (; q + 2 <= num_queries; q += 2) {
      const uint64_t* q0 = queries[q];
      const uint64_t* q1 = queries[q + 1];
      uint32_t* out0 = diffs + static_cast<size_t>(q) * num_rows;
      uint32_t* out1 = diffs + static_cast<size_t>(q + 1) * num_rows;
      int r = 0;
      for (; r + 4 <= num_rows; r += 4) {
        const uint64_t* row = rows + static_cast<size_t>(r) * words_per_row;
        __m256i a0[4], a1[4];
        for (int j = 0; j < 4; ++j) {
          a0[j] = _mm256_setzero_si256();
          a1[j] = _mm256_setzero_si256();
        }
        size_t w = 0;
        for (; w < vec_words; w += 4) {
          const __m256i v0 =
              _mm256_loadu_si256(reinterpret_cast<const __m256i*>(q0 + w));
          const __m256i v1 =
              _mm256_loadu_si256(reinterpret_cast<const __m256i*>(q1 + w));
          for (int j = 0; j < 4; ++j) {
            const __m256i d =
                _mm256_loadu_si256(reinterpret_cast<const __m256i*>(
                    row + static_cast<size_t>(j) * words_per_row + w));
            a0[j] = _mm256_add_epi64(a0[j],
                                     PopcountEpi64(_mm256_xor_si256(d, v0)));
            a1[j] = _mm256_add_epi64(a1[j],
                                     PopcountEpi64(_mm256_xor_si256(d, v1)));
          }
        }
        _mm_storeu_si128(reinterpret_cast<__m128i*>(out0 + r), RowSums4(a0));
        _mm_storeu_si128(reinterpret_cast<__m128i*>(out1 + r), RowSums4(a1));
        for (; w < words_per_row; ++w) {
          for (int j = 0; j < 4; ++j) {
            const uint64_t word =
                row[static_cast<size_t>(j) * words_per_row + w];
            out0[r + j] +=
                static_cast<uint32_t>(std::popcount(q0[w] ^ word));
            out1[r + j] +=
                static_cast<uint32_t>(std::popcount(q1[w] ^ word));
          }
        }
      }
      if (r < num_rows) {
        const uint64_t* rest = rows + static_cast<size_t>(r) * words_per_row;
        HammingBlock(q0, rest, words_per_row, num_rows - r, out0 + r);
        HammingBlock(q1, rest, words_per_row, num_rows - r, out1 + r);
      }
    }
    for (; q < num_queries; ++q) {
      HammingBlock(queries[q], rows, words_per_row, num_rows,
                   diffs + static_cast<size_t>(q) * num_rows);
    }
  }
};

}  // namespace

const ScanKernel* Avx2ScanKernelOrNull() {
  static const Avx2Kernel kernel;
  return &kernel;
}

}  // namespace gdim

#else  // !defined(__AVX2__)

namespace gdim {

const ScanKernel* Avx2ScanKernelOrNull() { return nullptr; }

}  // namespace gdim

#endif
