#include "core/kernels/scan_kernel.h"

#include <bit>
#include <cstdio>
#include <cstdlib>

namespace gdim {

namespace {

class ScalarKernel final : public ScanKernel {
 public:
  const char* name() const override { return "scalar"; }

  int tile_width() const override { return 4; }

  void HammingBlock(const uint64_t* query, const uint64_t* rows,
                    size_t words_per_row, int num_rows,
                    uint32_t* diffs) const override {
    const uint64_t* row = rows;
    for (int r = 0; r < num_rows; ++r, row += words_per_row) {
      uint32_t diff = 0;
      for (size_t w = 0; w < words_per_row; ++w) {
        diff += static_cast<uint32_t>(std::popcount(query[w] ^ row[w]));
      }
      diffs[r] = diff;
    }
  }

  void HammingBlockMulti(const uint64_t* const* queries, int num_queries,
                         const uint64_t* rows, size_t words_per_row,
                         int num_rows, uint32_t* diffs) const override {
    // Register-tile the queries in fours: each row word is loaded once per
    // four queries instead of once per query, which is the whole point of
    // the multi-query entry even without SIMD.
    int q = 0;
    for (; q + 4 <= num_queries; q += 4) {
      const uint64_t* q0 = queries[q];
      const uint64_t* q1 = queries[q + 1];
      const uint64_t* q2 = queries[q + 2];
      const uint64_t* q3 = queries[q + 3];
      const uint64_t* row = rows;
      for (int r = 0; r < num_rows; ++r, row += words_per_row) {
        uint32_t d0 = 0, d1 = 0, d2 = 0, d3 = 0;
        for (size_t w = 0; w < words_per_row; ++w) {
          const uint64_t word = row[w];
          d0 += static_cast<uint32_t>(std::popcount(q0[w] ^ word));
          d1 += static_cast<uint32_t>(std::popcount(q1[w] ^ word));
          d2 += static_cast<uint32_t>(std::popcount(q2[w] ^ word));
          d3 += static_cast<uint32_t>(std::popcount(q3[w] ^ word));
        }
        diffs[static_cast<size_t>(q) * num_rows + r] = d0;
        diffs[static_cast<size_t>(q + 1) * num_rows + r] = d1;
        diffs[static_cast<size_t>(q + 2) * num_rows + r] = d2;
        diffs[static_cast<size_t>(q + 3) * num_rows + r] = d3;
      }
    }
    for (; q < num_queries; ++q) {
      HammingBlock(queries[q], rows, words_per_row, num_rows,
                   diffs + static_cast<size_t>(q) * num_rows);
    }
  }
};

bool CpuHasAvx2() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx2");
#else
  return false;
#endif
}

bool CpuHasAvx512() {
#if defined(__x86_64__) || defined(__i386__)
  // The AVX-512 kernel popcounts with VPOPCNTDQ; plain avx512f hosts
  // (Skylake-SP era) fall back to avx2 rather than carrying a second
  // AVX-512 popcount implementation.
  return __builtin_cpu_supports("avx512f") &&
         __builtin_cpu_supports("avx512bw") &&
         __builtin_cpu_supports("avx512vpopcntdq");
#else
  return false;
#endif
}

const ScanKernel* PickActiveKernel() {
  if (const char* forced = std::getenv("GDIM_FORCE_KERNEL");
      forced != nullptr && forced[0] != '\0') {
    if (const ScanKernel* kernel = FindScanKernel(forced)) return kernel;
    std::fprintf(stderr,
                 "gdim: GDIM_FORCE_KERNEL=%s is not runnable on this host; "
                 "falling back to automatic kernel selection\n",
                 forced);
  }
  if (const ScanKernel* kernel = FindScanKernel("avx512")) return kernel;
  if (const ScanKernel* kernel = FindScanKernel("avx2")) return kernel;
  return &ScalarScanKernel();
}

}  // namespace

const ScanKernel& ScalarScanKernel() {
  static const ScalarKernel kernel;
  return kernel;
}

const ScanKernel* FindScanKernel(const std::string& name) {
  if (name == "scalar") return &ScalarScanKernel();
  if (name == "avx2") return CpuHasAvx2() ? Avx2ScanKernelOrNull() : nullptr;
  if (name == "avx512") {
    return CpuHasAvx512() ? Avx512ScanKernelOrNull() : nullptr;
  }
  return nullptr;
}

std::vector<const ScanKernel*> SupportedScanKernels() {
  std::vector<const ScanKernel*> kernels = {&ScalarScanKernel()};
  for (const char* name : {"avx2", "avx512"}) {
    if (const ScanKernel* kernel = FindScanKernel(name)) {
      kernels.push_back(kernel);
    }
  }
  return kernels;
}

const ScanKernel& ActiveScanKernel() {
  static const ScanKernel* active = PickActiveKernel();
  return *active;
}

}  // namespace gdim
