#ifndef GDIM_CORE_KERNELS_SCAN_KERNEL_H_
#define GDIM_CORE_KERNELS_SCAN_KERNEL_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace gdim {

/// A Hamming-scan kernel: XOR-popcount of packed fingerprint words against a
/// contiguous block of packed database rows — the innermost loop of the
/// serving hot path, and the one place ISA-specific code is allowed to live.
///
/// Contract: every kernel is bit-identical to the scalar one. Hamming
/// distances are exact integers and the (shared) score conversion runs
/// outside the kernel, so "identical" means byte-for-byte equal diff
/// outputs for any width, any padding content (callers guarantee padding
/// bits are zero in both query and rows; PackedBitMatrix enforces that at
/// load), and any row count — which in turn makes scores and top-k tie
/// order identical for every kernel.
class ScanKernel {
 public:
  virtual ~ScanKernel() = default;

  /// Stable lowercase identifier ("scalar", "avx2", "avx512"); what
  /// GDIM_FORCE_KERNEL matches and what STATS reports as kernel=.
  virtual const char* name() const = 0;

  /// Preferred number of concurrent queries per row-block pass — how wide
  /// the engines tile QueryMappedBatch. Sized so the per-query accumulators
  /// plus one row vector stay in registers.
  virtual int tile_width() const = 0;

  /// diffs[r] = popcount(query ^ rows[r]) for num_rows consecutive rows of
  /// words_per_row words each, rows row-major starting at `rows`. The query
  /// also spans words_per_row words.
  virtual void HammingBlock(const uint64_t* query, const uint64_t* rows,
                            size_t words_per_row, int num_rows,
                            uint32_t* diffs) const = 0;

  /// Multi-query form: diffs[q * num_rows + r] = popcount(queries[q] ^
  /// rows[r]). One pass over the row block serves all num_queries queries —
  /// each row's words are loaded once and XORed against every query while
  /// still cache-resident (register-tiled inside the kernel).
  virtual void HammingBlockMulti(const uint64_t* const* queries,
                                 int num_queries, const uint64_t* rows,
                                 size_t words_per_row, int num_rows,
                                 uint32_t* diffs) const = 0;
};

/// The portable baseline kernel; always available.
const ScanKernel& ScalarScanKernel();

/// Kernel by name ("scalar" | "avx2" | "avx512"), or nullptr when the name
/// is unknown, the kernel was not compiled in, or this host's CPU lacks the
/// ISA. The differential tests iterate FindScanKernel over all names and
/// skip the nullptrs.
const ScanKernel* FindScanKernel(const std::string& name);

/// Every kernel this binary can run on this host, scalar first.
std::vector<const ScanKernel*> SupportedScanKernels();

/// The kernel every scan in the process uses: the widest supported ISA
/// (avx512 > avx2 > scalar), overridable with GDIM_FORCE_KERNEL=
/// scalar|avx2|avx512 for CI determinism. A forced kernel this host cannot
/// run falls back to the auto pick with a warning on stderr — a test matrix
/// entry must degrade, not crash. Resolved once, on first use.
const ScanKernel& ActiveScanKernel();

/// Per-ISA factory hooks, defined in translation units compiled with the
/// matching -m flags (scan_kernel_avx2.cc / scan_kernel_avx512.cc); each
/// returns nullptr when the compiler could not target the ISA at all.
/// Callers must still gate on CPUID — FindScanKernel does.
const ScanKernel* Avx2ScanKernelOrNull();
const ScanKernel* Avx512ScanKernelOrNull();

}  // namespace gdim

#endif  // GDIM_CORE_KERNELS_SCAN_KERNEL_H_
