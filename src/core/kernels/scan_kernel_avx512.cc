// AVX-512 scan kernel (VPOPCNTDQ: hardware per-lane popcount, Ice Lake+).
// Compiled with -mavx512f -mavx512bw -mavx512vpopcntdq (see CMakeLists.txt)
// and only ever dispatched to after runtime CPUID confirms all three, so the
// binary keeps running on hosts without them. Tail words use masked loads —
// AVX-512's masking covers the non-multiple-of-8 word remainder without a
// scalar epilogue.
//
// Rows are processed in groups of eight so the per-row horizontal reduction
// — the dominant cost at serving widths, where a whole row is one or two
// vectors — collapses into a single shuffle tree: eight lane-sum vectors in,
// one vector of eight row totals out, narrowed and stored with one
// instruction. A lone _mm512_reduce_add_epi64 per row costs more than the
// row's own XOR+POPCNT at p <= 512.
#include "core/kernels/scan_kernel.h"

#if defined(__AVX512F__) && defined(__AVX512BW__) && \
    defined(__AVX512VPOPCNTDQ__)

#include <immintrin.h>

namespace gdim {

namespace {

/// Reduces eight per-row lane-sum vectors to the eight row totals, as u32.
/// Stage 1 pairs rows within 128-bit lanes (unpack + add), stages 2-3 pair
/// 128-bit lanes across vectors (shuffle + add); qword i of the result is
/// the full lane sum of s[i].
inline __m256i RowSums8(const __m512i s[8]) {
  const __m512i a = _mm512_add_epi64(_mm512_unpacklo_epi64(s[0], s[1]),
                                     _mm512_unpackhi_epi64(s[0], s[1]));
  const __m512i b = _mm512_add_epi64(_mm512_unpacklo_epi64(s[2], s[3]),
                                     _mm512_unpackhi_epi64(s[2], s[3]));
  const __m512i c = _mm512_add_epi64(_mm512_unpacklo_epi64(s[4], s[5]),
                                     _mm512_unpackhi_epi64(s[4], s[5]));
  const __m512i d = _mm512_add_epi64(_mm512_unpacklo_epi64(s[6], s[7]),
                                     _mm512_unpackhi_epi64(s[6], s[7]));
  const __m512i ab = _mm512_add_epi64(_mm512_shuffle_i64x2(a, b, 0x44),
                                      _mm512_shuffle_i64x2(a, b, 0xEE));
  const __m512i cd = _mm512_add_epi64(_mm512_shuffle_i64x2(c, d, 0x44),
                                      _mm512_shuffle_i64x2(c, d, 0xEE));
  const __m512i sums = _mm512_add_epi64(_mm512_shuffle_i64x2(ab, cd, 0x88),
                                        _mm512_shuffle_i64x2(ab, cd, 0xDD));
  return _mm512_cvtepi64_epi32(sums);
}

class Avx512Kernel final : public ScanKernel {
 public:
  const char* name() const override { return "avx512"; }

  int tile_width() const override { return 8; }

  void HammingBlock(const uint64_t* query, const uint64_t* rows,
                    size_t words_per_row, int num_rows,
                    uint32_t* diffs) const override {
    const size_t vec_words = words_per_row & ~size_t{7};
    const size_t tail = words_per_row - vec_words;
    const __mmask8 tail_mask =
        static_cast<__mmask8>((uint32_t{1} << tail) - 1);
    int r = 0;
    for (; r + 8 <= num_rows; r += 8) {
      const uint64_t* row = rows + static_cast<size_t>(r) * words_per_row;
      __m512i acc[8];
      for (int j = 0; j < 8; ++j) acc[j] = _mm512_setzero_si512();
      size_t w = 0;
      for (; w < vec_words; w += 8) {
        const __m512i q = _mm512_loadu_si512(query + w);
        for (int j = 0; j < 8; ++j) {
          const __m512i d = _mm512_loadu_si512(
              row + static_cast<size_t>(j) * words_per_row + w);
          acc[j] = _mm512_add_epi64(
              acc[j], _mm512_popcnt_epi64(_mm512_xor_si512(q, d)));
        }
      }
      if (tail != 0) {
        const __m512i q = _mm512_maskz_loadu_epi64(tail_mask, query + w);
        for (int j = 0; j < 8; ++j) {
          const __m512i d = _mm512_maskz_loadu_epi64(
              tail_mask, row + static_cast<size_t>(j) * words_per_row + w);
          acc[j] = _mm512_add_epi64(
              acc[j], _mm512_popcnt_epi64(_mm512_xor_si512(q, d)));
        }
      }
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(diffs + r),
                          RowSums8(acc));
    }
    // Row remainder (< 8 rows): per-row horizontal reduce.
    const uint64_t* row = rows + static_cast<size_t>(r) * words_per_row;
    for (; r < num_rows; ++r, row += words_per_row) {
      __m512i acc = _mm512_setzero_si512();
      size_t w = 0;
      for (; w < vec_words; w += 8) {
        const __m512i q = _mm512_loadu_si512(query + w);
        const __m512i d = _mm512_loadu_si512(row + w);
        acc = _mm512_add_epi64(acc,
                               _mm512_popcnt_epi64(_mm512_xor_si512(q, d)));
      }
      if (tail != 0) {
        const __m512i q = _mm512_maskz_loadu_epi64(tail_mask, query + w);
        const __m512i d = _mm512_maskz_loadu_epi64(tail_mask, row + w);
        acc = _mm512_add_epi64(acc,
                               _mm512_popcnt_epi64(_mm512_xor_si512(q, d)));
      }
      diffs[r] = static_cast<uint32_t>(_mm512_reduce_add_epi64(acc));
    }
  }

  void HammingBlockMulti(const uint64_t* const* queries, int num_queries,
                         const uint64_t* rows, size_t words_per_row,
                         int num_rows, uint32_t* diffs) const override {
    const size_t vec_words = words_per_row & ~size_t{7};
    const size_t tail = words_per_row - vec_words;
    const __mmask8 tail_mask =
        static_cast<__mmask8>((uint32_t{1} << tail) - 1);
    int q = 0;
    // Two queries by eight rows per pass: sixteen accumulators plus the
    // shared row vector stay within the thirty-two zmm registers, every row
    // load is amortized over two XORs, and both queries' reductions use the
    // shuffle tree.
    for (; q + 2 <= num_queries; q += 2) {
      const uint64_t* q0 = queries[q];
      const uint64_t* q1 = queries[q + 1];
      uint32_t* out0 = diffs + static_cast<size_t>(q) * num_rows;
      uint32_t* out1 = diffs + static_cast<size_t>(q + 1) * num_rows;
      int r = 0;
      for (; r + 8 <= num_rows; r += 8) {
        const uint64_t* row = rows + static_cast<size_t>(r) * words_per_row;
        __m512i a0[8], a1[8];
        for (int j = 0; j < 8; ++j) {
          a0[j] = _mm512_setzero_si512();
          a1[j] = _mm512_setzero_si512();
        }
        size_t w = 0;
        for (; w < vec_words; w += 8) {
          const __m512i v0 = _mm512_loadu_si512(q0 + w);
          const __m512i v1 = _mm512_loadu_si512(q1 + w);
          for (int j = 0; j < 8; ++j) {
            const __m512i d = _mm512_loadu_si512(
                row + static_cast<size_t>(j) * words_per_row + w);
            a0[j] = _mm512_add_epi64(
                a0[j], _mm512_popcnt_epi64(_mm512_xor_si512(d, v0)));
            a1[j] = _mm512_add_epi64(
                a1[j], _mm512_popcnt_epi64(_mm512_xor_si512(d, v1)));
          }
        }
        if (tail != 0) {
          const __m512i v0 = _mm512_maskz_loadu_epi64(tail_mask, q0 + w);
          const __m512i v1 = _mm512_maskz_loadu_epi64(tail_mask, q1 + w);
          for (int j = 0; j < 8; ++j) {
            const __m512i d = _mm512_maskz_loadu_epi64(
                tail_mask, row + static_cast<size_t>(j) * words_per_row + w);
            a0[j] = _mm512_add_epi64(
                a0[j], _mm512_popcnt_epi64(_mm512_xor_si512(d, v0)));
            a1[j] = _mm512_add_epi64(
                a1[j], _mm512_popcnt_epi64(_mm512_xor_si512(d, v1)));
          }
        }
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(out0 + r),
                            RowSums8(a0));
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(out1 + r),
                            RowSums8(a1));
      }
      if (r < num_rows) {
        const uint64_t* rest = rows + static_cast<size_t>(r) * words_per_row;
        HammingBlock(q0, rest, words_per_row, num_rows - r, out0 + r);
        HammingBlock(q1, rest, words_per_row, num_rows - r, out1 + r);
      }
    }
    for (; q < num_queries; ++q) {
      HammingBlock(queries[q], rows, words_per_row, num_rows,
                   diffs + static_cast<size_t>(q) * num_rows);
    }
  }
};

}  // namespace

const ScanKernel* Avx512ScanKernelOrNull() {
  static const Avx512Kernel kernel;
  return &kernel;
}

}  // namespace gdim

#else  // compiler cannot target the AVX-512 subset the kernel needs

namespace gdim {

const ScanKernel* Avx512ScanKernelOrNull() { return nullptr; }

}  // namespace gdim

#endif
