#ifndef GDIM_CORE_OBJECTIVE_H_
#define GDIM_CORE_OBJECTIVE_H_

#include <vector>

#include "core/binary_db.h"
#include "mcs/dissimilarity.h"

namespace gdim {

/// Weighted mapped distance d(z_i, z_j) = sqrt(Σ_r c_r²·(y_ir − y_jr)²)
/// computed per Algorithm 4: only features in the symmetric difference of
/// the two inverted lists IG_i, IG_j contribute.
double WeightedDistance(const BinaryFeatureDb& db,
                        const std::vector<double>& c, int i, int j);

/// The full n×n weighted distance matrix (row-major upper+lower filled).
/// Parallelized over pairs.
std::vector<double> WeightedDistanceMatrix(const BinaryFeatureDb& db,
                                           const std::vector<double>& c,
                                           int threads = 0);

/// Stress E(z1..zn) = Σ_{1≤i,j≤n} (d(z_i,z_j) − δ_ij)², Eq. (4): ordered
/// pairs, i.e. twice the sum over unordered pairs. Uses Algorithm 4's
/// inverted-list distances.
double StressObjective(const BinaryFeatureDb& db, const std::vector<double>& c,
                       const DissimilarityMatrix& delta, int threads = 0);

/// Reference implementation of the stress that scans all m features per pair
/// (no inverted lists). For tests and the optimization-ablation bench.
double StressObjectiveNaive(const BinaryFeatureDb& db,
                            const std::vector<double>& c,
                            const DissimilarityMatrix& delta);

/// Unweighted binary-space distance of the *final* mapping (Sec. 4):
/// d(y_i,y_j) = sqrt(Σ_{r∈F}(y_ir−y_jr)² / p) over the selected features.
/// `selected` must be sorted ascending.
double BinaryMappedDistance(const std::vector<uint8_t>& a,
                            const std::vector<uint8_t>& b);

}  // namespace gdim

#endif  // GDIM_CORE_OBJECTIVE_H_
