#ifndef GDIM_CORE_BINARY_DB_H_
#define GDIM_CORE_BINARY_DB_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "mining/gspan.h"

namespace gdim {

/// The binary feature representation of a graph database: y_ir = 1 iff
/// frequent feature f_r is a subgraph of g_i, together with the two inverted
/// indexes the paper's optimizations rely on:
///  - IF_r (FeatureSupport): the graphs containing feature r,
///  - IG_i (GraphFeatures): the features contained in graph i.
class BinaryFeatureDb {
 public:
  BinaryFeatureDb() = default;

  /// Builds from gSpan output: pattern support sets become IF directly (no
  /// subgraph-isomorphism tests needed for database graphs).
  static BinaryFeatureDb FromPatterns(
      int num_graphs, const std::vector<FrequentPattern>& patterns);

  /// Builds from an explicit 0/1 matrix (rows = graphs); for tests and
  /// baselines. Feature graphs are left empty.
  static BinaryFeatureDb FromBitMatrix(
      const std::vector<std::vector<uint8_t>>& rows);

  int num_graphs() const { return num_graphs_; }
  int num_features() const { return static_cast<int>(supports_.size()); }

  /// y_ir.
  bool Contains(int graph, int feature) const {
    GDIM_DCHECK(graph >= 0 && graph < num_graphs_);
    GDIM_DCHECK(feature >= 0 && feature < num_features());
    return bits_[static_cast<size_t>(graph) *
                     static_cast<size_t>(num_features()) +
                 static_cast<size_t>(feature)] != 0;
  }

  /// IF_r: sorted ids of graphs containing feature r.
  const std::vector<int>& FeatureSupport(int feature) const {
    GDIM_DCHECK(feature >= 0 && feature < num_features());
    return supports_[static_cast<size_t>(feature)];
  }

  /// IG_i: sorted ids of features contained in graph i.
  const std::vector<int>& GraphFeatures(int graph) const {
    GDIM_DCHECK(graph >= 0 && graph < num_graphs_);
    return graph_features_[static_cast<size_t>(graph)];
  }

  /// |sup(f_r)|.
  int SupportSize(int feature) const {
    return static_cast<int>(FeatureSupport(feature).size());
  }

  /// The pattern graph of feature r (empty database if built FromBitMatrix).
  const GraphDatabase& feature_graphs() const { return feature_graphs_; }

  /// Restriction of this database to a subset of graphs (ids into this db,
  /// sorted ascending). Feature set is preserved (features with empty
  /// support in the subset simply have empty IF). Used by DSPMap partitions.
  BinaryFeatureDb Subset(const std::vector<int>& graph_ids) const;

 private:
  void RebuildIndexes();

  int num_graphs_ = 0;
  std::vector<uint8_t> bits_;  // dense n×m row-major
  std::vector<std::vector<int>> supports_;
  std::vector<std::vector<int>> graph_features_;
  GraphDatabase feature_graphs_;
};

/// supports[r] = sorted ids of rows with bit r set — the IF inverted lists
/// of an explicit 0/1 matrix (rows must all have the same width). Shared by
/// ContainmentIndex and the serving prefilter.
std::vector<std::vector<int>> SupportsFromBitRows(
    const std::vector<std::vector<uint8_t>>& rows);

/// Intersection of the given sorted id lists, intersecting rarest-first so
/// the running set shrinks as fast as possible. Empty `lists` → empty
/// result (callers decide whether no constraints means "all" or "none").
std::vector<int> IntersectSupports(
    std::vector<const std::vector<int>*> lists);

}  // namespace gdim

#endif  // GDIM_CORE_BINARY_DB_H_
