#ifndef GDIM_CORE_MEASURES_H_
#define GDIM_CORE_MEASURES_H_

#include <vector>

#include "core/binary_db.h"
#include "core/topk.h"

namespace gdim {

/// Quality measures for approximate top-k answers (Sec. 6 "Measures").
/// `exact_full` is the full exact ranking of all n database graphs (so every
/// approximate answer has a true rank), `approx_full` the full approximate
/// ranking; k is the result size.

/// Precision p(k) = |A ∩ T| / k where A/T are the approximate/exact top-k.
double PrecisionAtK(const Ranking& exact_full, const Ranking& approx_full,
                    int k);

/// Top-k Kendall's tau, the Fagin-style variant the paper uses:
///   τ(k) = Σ_{r_i ∈ A} |A_{i+1} ∩ T_{t(r_i)+1}| / (k(2n − k − 1)),
/// counting, for each approximate answer, the later approximate answers that
/// the exact ranking also places after it.
double KendallTauAtK(const Ranking& exact_full, const Ranking& approx_full,
                     int k);

/// Inverse rank distance γ(k)_inv = k / Σ_{r_i ∈ A} |i − t(r_i)| (larger is
/// better). A perfect ranking has zero footrule; the denominator is clamped
/// to 1 so the measure stays finite (documented deviation; relative values
/// are unaffected because the benchmark is clamped the same way).
double InverseRankDistanceAtK(const Ranking& exact_full,
                              const Ranking& approx_full, int k);

/// Jaccard correlation between two features: |sup_i ∩ sup_j|/|sup_i ∪ sup_j|
/// (the redundancy measure behind Fig. 2; Cheng et al. ICDE'07).
double FeatureJaccard(const BinaryFeatureDb& db, int feature_a, int feature_b);

/// Sum of pairwise Jaccard correlation scores over a selected feature set —
/// the y-axis of Fig. 2. O(p²·|sup|) — fine for p ≤ a few hundred.
double CorrelationScore(const BinaryFeatureDb& db,
                        const std::vector<int>& selected);

/// Histogram of values in [0,1] with the given number of equal-width bins;
/// returns per-bin fractions (used by the Fig. 1 distribution bench).
std::vector<double> HistogramFractions(const std::vector<double>& values,
                                       int bins);

}  // namespace gdim

#endif  // GDIM_CORE_MEASURES_H_
