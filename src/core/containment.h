#ifndef GDIM_CORE_CONTAINMENT_H_
#define GDIM_CORE_CONTAINMENT_H_

#include <vector>

#include "core/binary_db.h"
#include "core/mapper.h"
#include "graph/graph.h"

namespace gdim {

/// Filter+verify subgraph containment search over a graph database, in the
/// style the paper's related work (gIndex / FG-Index) builds from the same
/// frequent-subgraph features: for a query q, any database graph g with
/// q ⊆ g must contain every indexed feature contained in q, so candidates =
/// ∩_{f ∈ F(q)} sup(f); candidates are then verified with VF2.
///
/// This engine shares the feature dimension with the similarity index, which
/// lets the benches quantify how feature selection affects filtering power.
class ContainmentIndex {
 public:
  /// Builds from the database and an already-selected feature dimension.
  /// bit_rows[i][r] must be the containment bit of feature r in db[i]
  /// (e.g. from BinaryFeatureDb / GraphSearchIndex::mapped_database()).
  ContainmentIndex(GraphDatabase db, GraphDatabase features,
                   const std::vector<std::vector<uint8_t>>& bit_rows);

  /// Statistics of one query, for the filter-power experiments.
  struct QueryStats {
    int candidates = 0;   ///< graphs surviving the feature filter
    int answers = 0;      ///< verified supergraphs
    int features_used = 0;  ///< indexed features contained in the query
  };

  /// All database graph ids g with query ⊆ g (ascending). stats optional.
  std::vector<int> Query(const Graph& query, QueryStats* stats = nullptr) const;

  /// Candidate ids after filtering only (no verification); superset of
  /// Query(). Exposed for tests and the filter-ratio bench.
  std::vector<int> FilterCandidates(const Graph& query,
                                    QueryStats* stats = nullptr) const;

  int num_graphs() const { return static_cast<int>(db_.size()); }
  int num_features() const { return mapper_.num_features(); }

 private:
  GraphDatabase db_;
  FeatureMapper mapper_;
  /// supports_[r] = sorted ids of graphs containing feature r.
  std::vector<std::vector<int>> supports_;
};

}  // namespace gdim

#endif  // GDIM_CORE_CONTAINMENT_H_
