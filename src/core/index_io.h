#ifndef GDIM_CORE_INDEX_IO_H_
#define GDIM_CORE_INDEX_IO_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/packed_bits.h"
#include "graph/graph.h"

namespace gdim {

/// On-disk form of a built graph dimension: the selected feature graphs plus
/// the mapped binary database vectors. Lets an application build once
/// (mining + MCS + selection are the expensive part) and serve queries from
/// a cold start. Three versioned formats share one reader (ReadIndexFile
/// sniffs the magic):
///
/// v1 — human-readable text, parsed digit by digit:
///
///   gdim-index v1
///   features <p>
///   <p feature graphs in gSpan format>
///   vectors <n> <p>
///   <n lines of 0/1 digits>
///
/// v2 — binary snapshot, loaded in O(read) (no per-bit text parsing):
///
///   bytes 0..7   magic "GDIMIDX2"
///   u32          header version (2)
///   u32          endianness tag 0x01020304 (readers reject foreign order)
///   u64          p  (feature count)
///   u64          feature text length in bytes
///   ...          feature graphs in gSpan text (p graphs; small)
///   u64          n  (vector count)
///   u64          words_per_row = ceil(p / 64)
///   u64          next_id (> every persisted id; the id counter survives
///                reloads so removed graphs' ids are never re-issued)
///   ...          n * words_per_row u64 packed bit words in host byte order
///                (the endianness tag rejects foreign files), row-major,
///                bit r of a row at word r/64, bit r%64
///   ...          n u64 external graph ids, strictly ascending
///
/// v3 — sectioned (TLV) snapshot that persists the FULL serving state, so a
/// reindexed server restarts durably from the snapshot alone (no --db) and
/// reload skips the O(n·sqrt(n)) IVF rebuild:
///
///   bytes 0..7   magic "GDIMIDX3"
///   u32          header version (3)
///   u32          endianness tag 0x01020304
///   ...          sections until EOF, each:
///                  4 bytes   section tag (ASCII, e.g. "DIMS")
///                  u64       payload length in bytes
///                  ...       payload (exactly that many bytes)
///
/// Section payloads (DIMS is required and must come first — later sections
/// validate against its ids; the rest are optional, each at most once):
///
///   DIMS   the v2 body verbatim: p, feature text length, feature text, n,
///          words_per_row, next_id, the packed word block, the id block.
///   META   u64 dimension generation, u64 epoch — restored on load so the
///          result cache can never replay a pre-restart answer.
///   STOR   the live GraphStore: u64 count, count u64 ids (must equal the
///          DIMS ids exactly), u64 text length, the graphs in gSpan text in
///          id order. Lets serve-net restart (and REINDEX) without --db.
///   IVFX   the IVF candidate-pruning layout in EXTERNAL id space: u64
///          bucket count, u64 num_bits (= p), u64 words_per_centroid, then
///          per bucket the centroid words, u64 posting count (> 0), and the
///          ascending posting ids. Only live postings of non-empty buckets
///          are written (source shards' buckets concatenated in shard
///          order); together they must cover the DIMS ids exactly once, so
///          any shard count can re-partition them on load without a
///          rebuild.
///
/// Unknown, duplicated, truncated, or oversized sections are rejected with
/// typed errors — never a crash or a partial adopt. v2 files still load;
/// their absent sections mean generation/epoch reset to 0, no embedded
/// store, and a from-scratch IVF build (the pre-v3 degraded behavior).
///
/// The vectors — the part that scales with database size — are the raw
/// packed words of the serving scan layout, so a snapshot load is a block
/// read instead of an O(n·p) character parse. The id block is what keeps
/// external ids stable across a snapshot/reload cycle of a mutated engine
/// (v1 cannot carry ids and renumbers rows positionally on save).
struct PersistedIndex {
  GraphDatabase features;
  std::vector<std::vector<uint8_t>> db_bits;
  /// External graph id per row, strictly ascending. Empty means positional
  /// (row i has id i): the v1 reader and fresh builds leave it empty; the
  /// v2/v3 readers always fill it.
  std::vector<int> ids;
  /// The id the next inserted graph gets. -1 (v1 files, fresh builds) means
  /// "derive": one past the largest persisted id. v2/v3 persist the counter
  /// so a snapshot/reload cycle never re-issues a removed graph's id.
  int next_id = -1;
};

/// v3 META section: the serving counters a durable restart must carry over.
struct PersistedMeta {
  uint64_t generation = 0;
  uint64_t epoch = 0;
};

/// v3 STOR section: the live GraphStore in id order. ids always equals the
/// index's id list (the reader enforces it), so a restarted server can seed
/// its store without the original --db file.
struct PersistedStore {
  std::vector<int> ids;
  GraphDatabase graphs;
};

/// One v3 IVFX bucket: the medoid centroid (packed words, same stride as
/// the rows) plus its live posting ids, ascending, in EXTERNAL id space.
struct PersistedIvfBucket {
  std::vector<uint64_t> centroid_words;
  std::vector<int> ids;
};

/// v3 IVFX section: the persisted IVF layout. Buckets appear in source
/// shard order; their postings partition the index ids exactly.
struct PersistedIvf {
  int num_bits = 0;
  std::vector<PersistedIvfBucket> buckets;
};

/// A persisted index loaded directly into the serving scan layout: the rows
/// live in a PackedBitMatrix instead of per-row byte vectors. For v2/v3
/// files the word block is adopted wholesale — one block read, no
/// unpack-to-bytes detour — which is what makes a cold engine start O(read)
/// on large databases. v1 text files are packed row by row on load. Id
/// semantics match PersistedIndex. The optional fields carry the v3
/// sections when the file has them (v1/v2 loads leave them empty); the
/// byte-view ReadIndexFile drops them.
struct PackedIndex {
  GraphDatabase features;
  PackedBitMatrix rows;
  std::vector<int> ids;
  int next_id = -1;
  std::optional<PersistedMeta> meta;
  std::optional<PersistedStore> store;
  std::optional<PersistedIvf> ivf;
};

/// On-disk format selector for WriteIndexFile.
enum class IndexFormat {
  kV1Text,
  kV2Binary,
  kV3Sectioned,
};

/// Parses "v1"/"v2"/"v3" (case-sensitive) into an IndexFormat.
Result<IndexFormat> ParseIndexFormat(const std::string& name);

/// Writes the dimension + mapped vectors to path in the given format.
/// kV3Sectioned writes a DIMS-only v3 file; the streaming
/// WriteIndexFileV3Words is the way to persist the optional sections.
Status WriteIndexFile(const PersistedIndex& index, const std::string& path,
                      IndexFormat format = IndexFormat::kV1Text);

/// Streaming v2 writer: emits n rows of words_per_row packed words obtained
/// from row_words(i) — already in the scan layout — without materializing
/// byte vectors. words_per_row must equal ceil(features.size() / 64); ids
/// must be strictly ascending with n entries, or empty for positional
/// (0..n-1); next_id must exceed every id (-1 = derive). Used by
/// QueryEngine::Snapshot to dump packed segments directly.
Status WriteIndexFileV2Words(
    const GraphDatabase& features, uint64_t n, uint64_t words_per_row,
    const std::function<const uint64_t*(uint64_t)>& row_words,
    const std::vector<int>& ids, int next_id, const std::string& path);

/// The optional v3 sections, borrowed for the duration of a
/// WriteIndexFileV3Words call. store_ids/store_graphs come as a pair (the
/// frozen-store shape) so a background snapshot never copies the graph set;
/// both or neither must be set.
struct V3Sections {
  const PersistedMeta* meta = nullptr;
  const std::vector<int>* store_ids = nullptr;
  const GraphDatabase* store_graphs = nullptr;
  const PersistedIvf* ivf = nullptr;
};

/// Streaming v3 writer: the v2 row/id contract plus the optional sections.
/// The writer mirrors every reader-side check (store ids must equal the
/// index ids; IVF buckets must be non-empty, ascending, and cover the ids
/// exactly once) so it can never emit a file its own reader refuses.
Status WriteIndexFileV3Words(
    const GraphDatabase& features, uint64_t n, uint64_t words_per_row,
    const std::function<const uint64_t*(uint64_t)>& row_words,
    const std::vector<int>& ids, int next_id, const V3Sections& sections,
    const std::string& path);

/// Reads a persisted index of any format (sniffed from the magic);
/// validates shape and bit values. v3 section payloads beyond the
/// dimension itself are validated but dropped — use ReadIndexFilePacked to
/// consume them.
Result<PersistedIndex> ReadIndexFile(const std::string& path);

/// Reads a persisted index of any format straight into the packed scan
/// layout. For v2/v3 files the vector block is a single block read into the
/// matrix storage (padding bits are masked); v1 falls back to the text
/// parser plus a pack. The load path of QueryEngine::Open; v3 section
/// payloads come back in PackedIndex::meta/store/ivf.
Result<PackedIndex> ReadIndexFilePacked(const std::string& path);

}  // namespace gdim

#endif  // GDIM_CORE_INDEX_IO_H_
