#ifndef GDIM_CORE_INDEX_IO_H_
#define GDIM_CORE_INDEX_IO_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "graph/graph.h"

namespace gdim {

/// On-disk form of a built graph dimension: the selected feature graphs plus
/// the mapped binary database vectors. Lets an application build once
/// (mining + MCS + selection are the expensive part) and serve queries from
/// a cold start. Text format, versioned:
///
///   gdim-index v1
///   features <p>
///   <p feature graphs in gSpan format>
///   vectors <n> <p>
///   <n lines of 0/1 digits>
struct PersistedIndex {
  GraphDatabase features;
  std::vector<std::vector<uint8_t>> db_bits;
};

/// Writes the dimension + mapped vectors to path.
Status WriteIndexFile(const PersistedIndex& index, const std::string& path);

/// Reads a persisted index; validates shape and bit values.
Result<PersistedIndex> ReadIndexFile(const std::string& path);

}  // namespace gdim

#endif  // GDIM_CORE_INDEX_IO_H_
