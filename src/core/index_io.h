#ifndef GDIM_CORE_INDEX_IO_H_
#define GDIM_CORE_INDEX_IO_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/packed_bits.h"
#include "graph/graph.h"

namespace gdim {

/// On-disk form of a built graph dimension: the selected feature graphs plus
/// the mapped binary database vectors. Lets an application build once
/// (mining + MCS + selection are the expensive part) and serve queries from
/// a cold start. Two versioned formats share one reader (ReadIndexFile
/// sniffs the magic):
///
/// v1 — human-readable text, parsed digit by digit:
///
///   gdim-index v1
///   features <p>
///   <p feature graphs in gSpan format>
///   vectors <n> <p>
///   <n lines of 0/1 digits>
///
/// v2 — binary snapshot, loaded in O(read) (no per-bit text parsing):
///
///   bytes 0..7   magic "GDIMIDX2"
///   u32          header version (2)
///   u32          endianness tag 0x01020304 (readers reject foreign order)
///   u64          p  (feature count)
///   u64          feature text length in bytes
///   ...          feature graphs in gSpan text (p graphs; small)
///   u64          n  (vector count)
///   u64          words_per_row = ceil(p / 64)
///   u64          next_id (> every persisted id; the id counter survives
///                reloads so removed graphs' ids are never re-issued)
///   ...          n * words_per_row u64 packed bit words in host byte order
///                (the endianness tag rejects foreign files), row-major,
///                bit r of a row at word r/64, bit r%64
///   ...          n u64 external graph ids, strictly ascending
///
/// The vectors — the part that scales with database size — are the raw
/// packed words of the serving scan layout, so a snapshot load is a block
/// read instead of an O(n·p) character parse. The id block is what keeps
/// external ids stable across a snapshot/reload cycle of a mutated engine
/// (v1 cannot carry ids and renumbers rows positionally on save).
struct PersistedIndex {
  GraphDatabase features;
  std::vector<std::vector<uint8_t>> db_bits;
  /// External graph id per row, strictly ascending. Empty means positional
  /// (row i has id i): the v1 reader and fresh builds leave it empty; the
  /// v2 reader always fills it.
  std::vector<int> ids;
  /// The id the next inserted graph gets. -1 (v1 files, fresh builds) means
  /// "derive": one past the largest persisted id. v2 persists the counter
  /// so a snapshot/reload cycle never re-issues a removed graph's id.
  int next_id = -1;
};

/// A persisted index loaded directly into the serving scan layout: the rows
/// live in a PackedBitMatrix instead of per-row byte vectors. For v2 files
/// the word block is adopted wholesale — one block read, no unpack-to-bytes
/// detour — which is what makes a cold engine start O(read) on large
/// databases. v1 text files are packed row by row on load. Id semantics
/// match PersistedIndex.
struct PackedIndex {
  GraphDatabase features;
  PackedBitMatrix rows;
  std::vector<int> ids;
  int next_id = -1;
};

/// On-disk format selector for WriteIndexFile.
enum class IndexFormat {
  kV1Text,
  kV2Binary,
};

/// Parses "v1"/"v2" (case-sensitive) into an IndexFormat.
Result<IndexFormat> ParseIndexFormat(const std::string& name);

/// Writes the dimension + mapped vectors to path in the given format.
Status WriteIndexFile(const PersistedIndex& index, const std::string& path,
                      IndexFormat format = IndexFormat::kV1Text);

/// Streaming v2 writer: emits n rows of words_per_row packed words obtained
/// from row_words(i) — already in the scan layout — without materializing
/// byte vectors. words_per_row must equal ceil(features.size() / 64); ids
/// must be strictly ascending with n entries, or empty for positional
/// (0..n-1); next_id must exceed every id (-1 = derive). Used by
/// QueryEngine::Snapshot to dump packed segments directly.
Status WriteIndexFileV2Words(
    const GraphDatabase& features, uint64_t n, uint64_t words_per_row,
    const std::function<const uint64_t*(uint64_t)>& row_words,
    const std::vector<int>& ids, int next_id, const std::string& path);

/// Reads a persisted index of either format (sniffed from the magic);
/// validates shape and bit values.
Result<PersistedIndex> ReadIndexFile(const std::string& path);

/// Reads a persisted index of either format straight into the packed scan
/// layout. For v2 files the vector block is a single block read into the
/// matrix storage (padding bits are masked); v1 falls back to the text
/// parser plus a pack. The load path of QueryEngine::Open.
Result<PackedIndex> ReadIndexFilePacked(const std::string& path);

}  // namespace gdim

#endif  // GDIM_CORE_INDEX_IO_H_
