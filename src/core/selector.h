#ifndef GDIM_CORE_SELECTOR_H_
#define GDIM_CORE_SELECTOR_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/binary_db.h"
#include "core/dspm.h"
#include "core/dspmap.h"
#include "mcs/dissimilarity.h"

namespace gdim {

/// Knobs shared by the baseline selectors (defaults follow the papers /
/// the experimental setup in Sec. 6).
struct SelectorParams {
  /// Neighborhood size for the spectral methods (MCFS/UDFS/NDFS); the
  /// paper's "default common parameter, 5".
  int knn = 5;

  /// Number of eigenvectors / latent cluster indicators.
  int num_eigen = 5;

  /// Regularization strength for the sparse regressions (MCFS λ, UDFS/NDFS γ).
  double regularization = 0.1;

  /// Pair-sample budget for SFS's objective evaluation (the full objective
  /// is O(n²) per candidate; the paper's SFS could not finish 2k graphs in
  /// 5 hours — we keep it runnable by sampling pairs).
  int sfs_pair_sample = 20000;

  /// Power-iteration / inner-solver budgets for the spectral baselines.
  int eigen_iters = 120;
  int outer_iters = 4;
};

/// Input to feature selection.
struct SelectionInput {
  const BinaryFeatureDb* db = nullptr;        ///< required
  const DissimilarityMatrix* delta = nullptr;  ///< required by SFS/DSPM only
  int p = 300;                                 ///< number of features to pick
  uint64_t seed = 1;
  int threads = 0;
  SelectorParams params;
  DspmOptions dspm;      ///< used by the DSPM selector
  DspmapOptions dspmap;  ///< used by the DSPMap selector (needs delta too)
};

/// Output of feature selection.
struct SelectionOutput {
  /// Selected feature ids (ranked, best first). Original returns all ids.
  std::vector<int> selected;
  /// Optional per-feature scores (size m) for diagnostics; may be empty.
  std::vector<double> scores;
};

/// Interface implemented by DSPM, DSPMap and the seven baselines of Sec. 6.
class FeatureSelector {
 public:
  virtual ~FeatureSelector() = default;

  /// Display name matching the paper's legends ("DSPM", "Original", ...).
  virtual std::string name() const = 0;

  /// Whether Select requires input.delta.
  virtual bool NeedsDissimilarity() const { return false; }

  virtual Result<SelectionOutput> Select(const SelectionInput& input) const = 0;
};

/// Factory by paper name: "DSPM", "DSPMap", "Original", "Sample", "SFS",
/// "MICI", "MCFS", "UDFS", "NDFS". Returns nullptr for unknown names.
std::unique_ptr<FeatureSelector> MakeSelector(const std::string& name);

/// All selector names in the paper's presentation order.
std::vector<std::string> AllSelectorNames();

}  // namespace gdim

#endif  // GDIM_CORE_SELECTOR_H_
