#ifndef GDIM_CORE_TOPK_H_
#define GDIM_CORE_TOPK_H_

#include <cstdint>
#include <vector>

#include "core/packed_bits.h"
#include "graph/graph.h"
#include "mcs/dissimilarity.h"

namespace gdim {

/// One ranked answer: a database graph id and its score (dissimilarity or
/// mapped distance — smaller is better; for Tanimoto rankings the score is
/// 1 − similarity so that smaller stays better).
struct RankedResult {
  int id = 0;
  double score = 0.0;

  friend bool operator==(const RankedResult& a, const RankedResult& b) =
      default;
};

/// Full ranking (ascending score, ties broken by id — a deterministic total
/// order, applied identically to exact and approximate rankings so that ties
/// do not bias the quality measures).
using Ranking = std::vector<RankedResult>;

/// Ranks all database graphs by a precomputed score vector; ascending.
Ranking RankByScores(const std::vector<double>& scores);

/// Ranks an explicit candidate id set by its score vector (scores[j] scores
/// ids[j]); same ascending score-then-id total order as RankByScores. Used
/// after a prefilter has narrowed the scan set.
Ranking RankCandidates(const std::vector<int>& ids,
                       const std::vector<double>& scores);

/// First k of RankByScores(scores) without sorting the whole database:
/// nth_element partial selection plus a sort of the k survivors, with the
/// identical score-then-id tie-break, so the output equals
/// TopK(RankByScores(scores), k) entry for entry.
Ranking TopKByScores(const std::vector<double>& scores, int k);

/// Partial-selection counterpart for explicit candidate sets: equals
/// TopK(RankCandidates(ids, scores), k) without sorting all candidates.
Ranking TopKCandidates(const std::vector<int>& ids,
                       const std::vector<double>& scores, int k);

/// Exact ranking of db against query by MCS-based dissimilarity. This is the
/// costly reference path (the "Exact" algorithm of Exp-4/Exp-6).
Ranking ExactRanking(const Graph& query, const GraphDatabase& db,
                     DissimilarityKind kind = DissimilarityKind::kDelta2,
                     int threads = 0);

/// Approximate ranking by normalized Euclidean distance between binary
/// mapped vectors (sequential scan, as in the paper's query processing).
Ranking MappedRanking(const std::vector<uint8_t>& query_bits,
                      const std::vector<std::vector<uint8_t>>& db_bits);

/// Same ranking over the packed word layout: popcount Hamming scan instead
/// of a byte-compare loop. Bit-identical results to the byte overload.
Ranking MappedRanking(const std::vector<uint8_t>& query_bits,
                      const PackedBitMatrix& db_bits);

/// First k entries of a ranking (whole ranking if k >= size).
Ranking TopK(const Ranking& ranking, int k);

}  // namespace gdim

#endif  // GDIM_CORE_TOPK_H_
