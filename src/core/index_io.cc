#include "core/index_io.h"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <limits>
#include <new>
#include <sstream>
#include <stdexcept>

#include "core/packed_bits.h"
#include "graph/graph_io.h"

namespace gdim {

namespace {

constexpr char kV1Magic[] = "gdim-index v1";
constexpr char kV2Magic[8] = {'G', 'D', 'I', 'M', 'I', 'D', 'X', '2'};
constexpr uint32_t kV2HeaderVersion = 2;
constexpr uint32_t kV2EndianTag = 0x01020304;

template <typename T>
void WritePod(std::ostream& out, T value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(value));
}

template <typename T>
bool ReadPod(std::istream& in, T* value) {
  return static_cast<bool>(
      in.read(reinterpret_cast<char*>(value), sizeof(*value)));
}

Status WriteIndexFileV1(const PersistedIndex& index, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open for writing: " + path);
  out << kV1Magic << "\n";
  out << "features " << index.features.size() << "\n";
  WriteGraphStream(index.features, out);
  const size_t p = index.features.size();
  out << "vectors " << index.db_bits.size() << " " << p << "\n";
  for (const auto& row : index.db_bits) {
    if (row.size() != p) {
      return Status::InvalidArgument("bit row width mismatch");
    }
    for (uint8_t b : row) out << (b ? '1' : '0');
    out << "\n";
  }
  out.flush();
  if (!out) return Status::IoError("write failed: " + path);
  return Status::OK();
}

Status WriteIndexFileV2(const PersistedIndex& index, const std::string& path) {
  const size_t p = index.features.size();
  for (const auto& row : index.db_bits) {
    if (row.size() != p) {
      return Status::InvalidArgument("bit row width mismatch");
    }
  }
  // Pack once through the canonical layout code and stream the row words.
  const PackedBitMatrix packed =
      PackedBitMatrix::FromRows(index.db_bits, static_cast<int>(p));
  return WriteIndexFileV2Words(
      index.features, index.db_bits.size(),
      static_cast<uint64_t>(packed.words_per_row()),
      [&](uint64_t i) { return packed.row(static_cast<int>(i)); }, index.ids,
      index.next_id, path);
}

Result<PersistedIndex> ReadIndexFileV1(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open for reading: " + path);
  std::string line;
  if (!std::getline(in, line)) {
    return Status::ParseError("bad magic: expected 'gdim-index v1'");
  }
  StripTrailingCarriageReturn(&line);
  if (line != kV1Magic) {
    return Status::ParseError("bad magic: expected 'gdim-index v1'");
  }
  std::string tag;
  size_t p = 0;
  in >> tag >> p;
  if (!in || tag != "features") {
    return Status::ParseError("expected 'features <p>'");
  }
  std::getline(in, line);  // consume EOL
  // Read exactly p graphs: collect the lines until the 'vectors' header.
  std::ostringstream graph_text;
  while (std::getline(in, line)) {
    StripTrailingCarriageReturn(&line);
    if (line.rfind("vectors ", 0) == 0) break;
    graph_text << line << "\n";
  }
  std::istringstream graph_stream(graph_text.str());
  Result<GraphDatabase> features = ReadGraphStream(graph_stream);
  if (!features.ok()) return features.status();
  if (features->size() != p) {
    return Status::ParseError("feature count mismatch");
  }
  size_t n = 0, width = 0;
  {
    std::istringstream header(line);
    header >> tag >> n >> width;
    if (!header || tag != "vectors") {
      return Status::ParseError("expected 'vectors <n> <p>'");
    }
  }
  if (width != p) {
    return Status::ParseError("vector width does not match feature count");
  }
  PersistedIndex out;
  out.features = std::move(features).value();
  out.db_bits.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (!std::getline(in, line)) {
      return Status::ParseError("bad vector row " + std::to_string(i));
    }
    StripTrailingCarriageReturn(&line);
    if (line.size() != p) {
      return Status::ParseError("bad vector row " + std::to_string(i));
    }
    std::vector<uint8_t> row(p);
    for (size_t r = 0; r < p; ++r) {
      if (line[r] != '0' && line[r] != '1') {
        return Status::ParseError("vector bits must be 0/1");
      }
      row[r] = line[r] == '1' ? 1 : 0;
    }
    out.db_bits.push_back(std::move(row));
  }
  return out;
}

Result<PackedIndex> ReadIndexFileV2Packed(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open for reading: " + path);
  char magic[sizeof(kV2Magic)];
  if (!in.read(magic, sizeof(magic)) ||
      std::memcmp(magic, kV2Magic, sizeof(magic)) != 0) {
    return Status::ParseError("bad v2 magic");
  }
  uint32_t header_version = 0, endian_tag = 0;
  if (!ReadPod(in, &header_version) || header_version != kV2HeaderVersion) {
    return Status::ParseError("unsupported v2 header version");
  }
  if (!ReadPod(in, &endian_tag) || endian_tag != kV2EndianTag) {
    return Status::ParseError("index written with foreign byte order");
  }
  uint64_t p = 0, feature_bytes = 0;
  if (!ReadPod(in, &p) || !ReadPod(in, &feature_bytes)) {
    return Status::ParseError("truncated v2 header");
  }
  // Bound every untrusted header field before allocating from it: a corrupt
  // file must come back as a Status, never as std::terminate.
  const std::streampos features_begin = in.tellg();
  in.seekg(0, std::ios::end);
  const uint64_t bytes_after_header =
      static_cast<uint64_t>(in.tellg() - features_begin);
  in.seekg(features_begin);
  if (p > static_cast<uint64_t>(std::numeric_limits<int>::max())) {
    return Status::ParseError("feature count out of range");
  }
  if (feature_bytes > bytes_after_header) {
    return Status::ParseError("feature section larger than file");
  }
  std::string feature_text(feature_bytes, '\0');
  if (feature_bytes > 0 &&
      !in.read(feature_text.data(),
               static_cast<std::streamsize>(feature_bytes))) {
    return Status::ParseError("truncated feature section");
  }
  std::istringstream feature_stream(feature_text);
  Result<GraphDatabase> features = ReadGraphStream(feature_stream);
  if (!features.ok()) return features.status();
  if (features->size() != p) {
    return Status::ParseError("feature count mismatch");
  }

  uint64_t n = 0, words_per_row = 0, next_id = 0;
  if (!ReadPod(in, &n) || !ReadPod(in, &words_per_row) ||
      !ReadPod(in, &next_id)) {
    return Status::ParseError("truncated vector header");
  }
  if (n > static_cast<uint64_t>(std::numeric_limits<int>::max())) {
    return Status::ParseError("vector count out of range");
  }
  if (next_id > static_cast<uint64_t>(std::numeric_limits<int>::max()) ||
      next_id < n) {
    return Status::ParseError("next_id out of range");
  }
  if (words_per_row != (p + 63) / 64) {
    return Status::ParseError("vector word stride does not match width");
  }
  // The word block plus the id block must be exactly the rest of the file:
  // rejects truncation, trailing garbage, and adversarial row counts before
  // any allocation (every row costs 8 id bytes even at p == 0).
  const std::streampos words_begin = in.tellg();
  in.seekg(0, std::ios::end);
  const uint64_t avail =
      static_cast<uint64_t>(in.tellg() - words_begin);
  if (words_per_row != 0 &&
      n > std::numeric_limits<uint64_t>::max() / words_per_row / 8) {
    return Status::ParseError("vector count overflows");
  }
  const uint64_t need = n * words_per_row * 8 + n * 8;
  if (need != avail) {
    return Status::ParseError("vector block size mismatch: expected " +
                              std::to_string(need) + " bytes, got " +
                              std::to_string(avail));
  }
  in.seekg(words_begin);

  PackedIndex out;
  out.features = std::move(features).value();
  // The whole vector block in one read, straight into the word storage the
  // scan kernels use — no per-bit unpack, no per-row byte materialization.
  std::vector<uint64_t> words(n * words_per_row);
  if (!words.empty() &&
      !in.read(reinterpret_cast<char*>(words.data()),
               static_cast<std::streamsize>(words.size() *
                                            sizeof(uint64_t)))) {
    return Status::ParseError("truncated vector block");
  }
  out.rows = PackedBitMatrix::FromWords(static_cast<int>(n),
                                        static_cast<int>(p),
                                        std::move(words));
  out.ids.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    uint64_t id = 0;
    if (!ReadPod(in, &id)) {
      return Status::ParseError("truncated id block");
    }
    // Cap at INT_MAX - 1 so the engine's next_id = last id + 1 cannot
    // overflow int.
    if (id >= static_cast<uint64_t>(std::numeric_limits<int>::max()) ||
        (i > 0 && static_cast<int>(id) <= out.ids.back())) {
      return Status::ParseError("ids must be strictly ascending and in range");
    }
    out.ids.push_back(static_cast<int>(id));
  }
  if (!out.ids.empty() &&
      static_cast<int64_t>(next_id) <= int64_t{out.ids.back()}) {
    return Status::ParseError("next_id out of range");
  }
  out.next_id = static_cast<int>(next_id);
  return out;
}

/// Legacy byte-row view of a v2 file: parse packed, then unpack. Only the
/// tool paths that manipulate rows as bytes (convert, tests) pay for this;
/// the serving load path stays on ReadIndexFileV2Packed.
Result<PersistedIndex> ReadIndexFileV2(const std::string& path) {
  Result<PackedIndex> packed = ReadIndexFileV2Packed(path);
  if (!packed.ok()) return packed.status();
  PersistedIndex out;
  out.features = std::move(packed->features);
  out.db_bits.reserve(static_cast<size_t>(packed->rows.num_rows()));
  for (int i = 0; i < packed->rows.num_rows(); ++i) {
    out.db_bits.push_back(packed->rows.UnpackRow(i));
  }
  out.ids = std::move(packed->ids);
  out.next_id = packed->next_id;
  return out;
}

}  // namespace

Status WriteIndexFileV2Words(
    const GraphDatabase& features, uint64_t n, uint64_t words_per_row,
    const std::function<const uint64_t*(uint64_t)>& row_words,
    const std::vector<int>& ids, int next_id, const std::string& path) {
  const size_t p = features.size();
  if (words_per_row != (p + 63) / 64) {
    return Status::InvalidArgument("word stride does not match width");
  }
  if (!ids.empty()) {
    if (ids.size() != n) {
      return Status::InvalidArgument("id count does not match row count");
    }
    for (size_t i = 0; i < ids.size(); ++i) {
      // Mirror the reader's cap (INT_MAX is reserved so next_id can't
      // overflow): never emit a file our own reader refuses.
      if (ids[i] < 0 || ids[i] == std::numeric_limits<int>::max() ||
          (i > 0 && ids[i] <= ids[i - 1])) {
        return Status::InvalidArgument(
            "ids must be strictly ascending and in range");
      }
    }
  }
  const int64_t min_next_id =
      ids.empty() ? static_cast<int64_t>(n) : int64_t{ids.back()} + 1;
  if (next_id < 0) {
    next_id = static_cast<int>(min_next_id);
  } else if (next_id < min_next_id) {
    return Status::InvalidArgument("next_id must exceed every persisted id");
  }
  std::ostringstream feature_text;
  WriteGraphStream(features, feature_text);
  const std::string feature_str = feature_text.str();

  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IoError("cannot open for writing: " + path);
  out.write(kV2Magic, sizeof(kV2Magic));
  WritePod(out, kV2HeaderVersion);
  WritePod(out, kV2EndianTag);
  WritePod(out, static_cast<uint64_t>(p));
  WritePod(out, static_cast<uint64_t>(feature_str.size()));
  out.write(feature_str.data(),
            static_cast<std::streamsize>(feature_str.size()));
  WritePod(out, n);
  WritePod(out, words_per_row);
  WritePod(out, static_cast<uint64_t>(next_id));
  if (words_per_row > 0) {  // zero-width rows occupy no bytes
    for (uint64_t i = 0; i < n; ++i) {
      out.write(
          reinterpret_cast<const char*>(row_words(i)),
          static_cast<std::streamsize>(words_per_row * sizeof(uint64_t)));
    }
  }
  for (uint64_t i = 0; i < n; ++i) {
    WritePod(out, ids.empty() ? i : static_cast<uint64_t>(ids[i]));
  }
  out.flush();
  if (!out) return Status::IoError("write failed: " + path);
  return Status::OK();
}

Result<IndexFormat> ParseIndexFormat(const std::string& name) {
  if (name == "v1") return IndexFormat::kV1Text;
  if (name == "v2") return IndexFormat::kV2Binary;
  return Status::InvalidArgument("unknown index format '" + name +
                                 "' (want v1 or v2)");
}

Status WriteIndexFile(const PersistedIndex& index, const std::string& path,
                      IndexFormat format) {
  switch (format) {
    case IndexFormat::kV1Text:
      return WriteIndexFileV1(index, path);
    case IndexFormat::kV2Binary:
      return WriteIndexFileV2(index, path);
  }
  return Status::InvalidArgument("unknown index format");
}

namespace {

/// Sniffs the v2 magic; short files simply fail the memcmp and fall through
/// to the v1 parser.
Result<bool> SniffV2Magic(const std::string& path) {
  char magic[sizeof(kV2Magic)] = {};
  std::ifstream sniff(path, std::ios::binary);
  if (!sniff) return Status::IoError("cannot open for reading: " + path);
  sniff.read(magic, sizeof(magic));
  return std::memcmp(magic, kV2Magic, sizeof(kV2Magic)) == 0;
}

}  // namespace

Result<PersistedIndex> ReadIndexFile(const std::string& path) {
  Result<bool> is_v2 = SniffV2Magic(path);
  if (!is_v2.ok()) return is_v2.status();
  // Backstop for header fields the size checks cannot bound (e.g. a v1
  // 'vectors <n>' count or a v2 row count at p == 0, where rows occupy no
  // file bytes): a hostile count must surface as a Status, not terminate
  // the process through an uncaught allocation failure.
  try {
    return *is_v2 ? ReadIndexFileV2(path) : ReadIndexFileV1(path);
  } catch (const std::bad_alloc&) {
    return Status::ResourceExhausted("index too large to load: " + path);
  } catch (const std::length_error&) {
    return Status::ResourceExhausted("index too large to load: " + path);
  }
}

Result<PackedIndex> ReadIndexFilePacked(const std::string& path) {
  Result<bool> is_v2 = SniffV2Magic(path);
  if (!is_v2.ok()) return is_v2.status();
  try {
    if (*is_v2) return ReadIndexFileV2Packed(path);
    Result<PersistedIndex> v1 = ReadIndexFileV1(path);
    if (!v1.ok()) return v1.status();
    PackedIndex out;
    out.rows = PackedBitMatrix::FromRows(
        v1->db_bits, static_cast<int>(v1->features.size()));
    out.features = std::move(v1->features);
    out.ids = std::move(v1->ids);
    out.next_id = v1->next_id;
    return out;
  } catch (const std::bad_alloc&) {
    return Status::ResourceExhausted("index too large to load: " + path);
  } catch (const std::length_error&) {
    return Status::ResourceExhausted("index too large to load: " + path);
  }
}

}  // namespace gdim
