#include "core/index_io.h"

#include <fstream>
#include <sstream>

#include "graph/graph_io.h"

namespace gdim {

Status WriteIndexFile(const PersistedIndex& index, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open for writing: " + path);
  out << "gdim-index v1\n";
  out << "features " << index.features.size() << "\n";
  WriteGraphStream(index.features, out);
  const size_t p = index.features.size();
  out << "vectors " << index.db_bits.size() << " " << p << "\n";
  for (const auto& row : index.db_bits) {
    if (row.size() != p) {
      return Status::InvalidArgument("bit row width mismatch");
    }
    for (uint8_t b : row) out << (b ? '1' : '0');
    out << "\n";
  }
  out.flush();
  if (!out) return Status::IoError("write failed: " + path);
  return Status::OK();
}

Result<PersistedIndex> ReadIndexFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open for reading: " + path);
  std::string line;
  if (!std::getline(in, line) || line != "gdim-index v1") {
    return Status::ParseError("bad magic: expected 'gdim-index v1'");
  }
  std::string tag;
  size_t p = 0;
  in >> tag >> p;
  if (!in || tag != "features") {
    return Status::ParseError("expected 'features <p>'");
  }
  std::getline(in, line);  // consume EOL
  // Read exactly p graphs: collect the lines until the 'vectors' header.
  std::ostringstream graph_text;
  std::streampos vectors_pos;
  while (std::getline(in, line)) {
    if (line.rfind("vectors ", 0) == 0) break;
    graph_text << line << "\n";
  }
  std::istringstream graph_stream(graph_text.str());
  Result<GraphDatabase> features = ReadGraphStream(graph_stream);
  if (!features.ok()) return features.status();
  if (features->size() != p) {
    return Status::ParseError("feature count mismatch");
  }
  size_t n = 0, width = 0;
  {
    std::istringstream header(line);
    header >> tag >> n >> width;
    if (!header || tag != "vectors") {
      return Status::ParseError("expected 'vectors <n> <p>'");
    }
  }
  if (width != p) {
    return Status::ParseError("vector width does not match feature count");
  }
  PersistedIndex out;
  out.features = std::move(features).value();
  out.db_bits.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (!std::getline(in, line) || line.size() != p) {
      return Status::ParseError("bad vector row " + std::to_string(i));
    }
    std::vector<uint8_t> row(p);
    for (size_t r = 0; r < p; ++r) {
      if (line[r] != '0' && line[r] != '1') {
        return Status::ParseError("vector bits must be 0/1");
      }
      row[r] = line[r] == '1' ? 1 : 0;
    }
    out.db_bits.push_back(std::move(row));
  }
  return out;
}

}  // namespace gdim
