#include "core/index_io.h"

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <limits>
#include <new>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "core/packed_bits.h"
#include "graph/graph_io.h"

namespace gdim {

namespace {

constexpr char kV1Magic[] = "gdim-index v1";
constexpr char kV2Magic[8] = {'G', 'D', 'I', 'M', 'I', 'D', 'X', '2'};
constexpr uint32_t kV2HeaderVersion = 2;
constexpr uint32_t kV2EndianTag = 0x01020304;
constexpr char kV3Magic[8] = {'G', 'D', 'I', 'M', 'I', 'D', 'X', '3'};
constexpr uint32_t kV3HeaderVersion = 3;

// The v3 section tags, exactly as they appear on disk. Keep the
// `constexpr char kSection...[5] = "...."` shape: tools/check_invariants.py
// greps it to cross-check the tag table in docs/protocol.md.
constexpr char kSectionDims[5] = "DIMS";
constexpr char kSectionMeta[5] = "META";
constexpr char kSectionStor[5] = "STOR";
constexpr char kSectionIvfx[5] = "IVFX";

template <typename T>
void WritePod(std::ostream& out, T value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(value));
}

template <typename T>
bool ReadPod(std::istream& in, T* value) {
  return static_cast<bool>(
      in.read(reinterpret_cast<char*>(value), sizeof(*value)));
}

/// A section tag rendered printably for error messages (hostile bytes
/// become '?').
std::string TagName(const char tag[4]) {
  std::string name;
  for (int i = 0; i < 4; ++i) {
    const char c = tag[i];
    name += (c >= 0x20 && c < 0x7F) ? c : '?';
  }
  return name;
}

bool TagIs(const char tag[4], const char (&want)[5]) {
  return std::memcmp(tag, want, 4) == 0;
}

/// Row index of external id `id` in the strictly ascending id list, or -1.
int FindRow(const std::vector<int>& ids, int id) {
  auto it = std::lower_bound(ids.begin(), ids.end(), id);
  if (it == ids.end() || *it != id) return -1;
  return static_cast<int>(it - ids.begin());
}

Status WriteIndexFileV1(const PersistedIndex& index, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open for writing: " + path);
  out << kV1Magic << "\n";
  out << "features " << index.features.size() << "\n";
  WriteGraphStream(index.features, out);
  const size_t p = index.features.size();
  out << "vectors " << index.db_bits.size() << " " << p << "\n";
  for (const auto& row : index.db_bits) {
    if (row.size() != p) {
      return Status::InvalidArgument("bit row width mismatch");
    }
    for (uint8_t b : row) out << (b ? '1' : '0');
    out << "\n";
  }
  out.flush();
  if (!out) return Status::IoError("write failed: " + path);
  return Status::OK();
}

Result<PersistedIndex> ReadIndexFileV1(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open for reading: " + path);
  std::string line;
  if (!std::getline(in, line)) {
    return Status::ParseError("bad magic: expected 'gdim-index v1'");
  }
  StripTrailingCarriageReturn(&line);
  if (line != kV1Magic) {
    return Status::ParseError("bad magic: expected 'gdim-index v1'");
  }
  std::string tag;
  size_t p = 0;
  in >> tag >> p;
  if (!in || tag != "features") {
    return Status::ParseError("expected 'features <p>'");
  }
  std::getline(in, line);  // consume EOL
  // Read exactly p graphs: collect the lines until the 'vectors' header.
  std::ostringstream graph_text;
  while (std::getline(in, line)) {
    StripTrailingCarriageReturn(&line);
    if (line.rfind("vectors ", 0) == 0) break;
    graph_text << line << "\n";
  }
  std::istringstream graph_stream(graph_text.str());
  Result<GraphDatabase> features = ReadGraphStream(graph_stream);
  if (!features.ok()) return features.status();
  if (features->size() != p) {
    return Status::ParseError("feature count mismatch");
  }
  size_t n = 0, width = 0;
  {
    std::istringstream header(line);
    header >> tag >> n >> width;
    if (!header || tag != "vectors") {
      return Status::ParseError("expected 'vectors <n> <p>'");
    }
  }
  if (width != p) {
    return Status::ParseError("vector width does not match feature count");
  }
  PersistedIndex out;
  out.features = std::move(features).value();
  out.db_bits.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (!std::getline(in, line)) {
      return Status::ParseError("bad vector row " + std::to_string(i));
    }
    StripTrailingCarriageReturn(&line);
    if (line.size() != p) {
      return Status::ParseError("bad vector row " + std::to_string(i));
    }
    std::vector<uint8_t> row(p);
    for (size_t r = 0; r < p; ++r) {
      if (line[r] != '0' && line[r] != '1') {
        return Status::ParseError("vector bits must be 0/1");
      }
      row[r] = line[r] == '1' ? 1 : 0;
    }
    out.db_bits.push_back(std::move(row));
  }
  return out;
}

/// Parses the dimension body — p, feature text, n, words_per_row, next_id,
/// the packed word block, the id block — consuming exactly region_bytes
/// from the stream. Shared by the v2 reader (the region is the whole file
/// after the fixed header) and the v3 DIMS section (the region is the
/// section payload). Every untrusted field is bounded before any
/// allocation: a corrupt region must come back as a Status, never as
/// std::terminate or an over-read into a sibling section.
Result<PackedIndex> ReadDimsRegion(std::istream& in, uint64_t region_bytes) {
  uint64_t left = region_bytes;
  uint64_t p = 0, feature_bytes = 0;
  if (left < 16 || !ReadPod(in, &p) || !ReadPod(in, &feature_bytes)) {
    return Status::ParseError("truncated dimension header");
  }
  left -= 16;
  if (p > static_cast<uint64_t>(std::numeric_limits<int>::max())) {
    return Status::ParseError("feature count out of range");
  }
  if (feature_bytes > left) {
    return Status::ParseError("feature section larger than file");
  }
  std::string feature_text(feature_bytes, '\0');
  if (feature_bytes > 0 &&
      !in.read(feature_text.data(),
               static_cast<std::streamsize>(feature_bytes))) {
    return Status::ParseError("truncated feature section");
  }
  left -= feature_bytes;
  std::istringstream feature_stream(feature_text);
  Result<GraphDatabase> features = ReadGraphStream(feature_stream);
  if (!features.ok()) return features.status();
  if (features->size() != p) {
    return Status::ParseError("feature count mismatch");
  }

  uint64_t n = 0, words_per_row = 0, next_id = 0;
  if (left < 24 || !ReadPod(in, &n) || !ReadPod(in, &words_per_row) ||
      !ReadPod(in, &next_id)) {
    return Status::ParseError("truncated vector header");
  }
  left -= 24;
  if (n > static_cast<uint64_t>(std::numeric_limits<int>::max())) {
    return Status::ParseError("vector count out of range");
  }
  if (next_id > static_cast<uint64_t>(std::numeric_limits<int>::max()) ||
      next_id < n) {
    return Status::ParseError("next_id out of range");
  }
  if (words_per_row != (p + 63) / 64) {
    return Status::ParseError("vector word stride does not match width");
  }
  // The word block plus the id block must be exactly the rest of the
  // region: rejects truncation, trailing garbage, and adversarial row
  // counts before any allocation (every row costs 8 id bytes even at
  // p == 0).
  if (words_per_row != 0 &&
      n > std::numeric_limits<uint64_t>::max() / words_per_row / 8) {
    return Status::ParseError("vector count overflows");
  }
  const uint64_t need = n * words_per_row * 8 + n * 8;
  if (need != left) {
    return Status::ParseError("vector block size mismatch: expected " +
                              std::to_string(need) + " bytes, got " +
                              std::to_string(left));
  }

  PackedIndex out;
  out.features = std::move(features).value();
  // The whole vector block in one read, straight into the word storage the
  // scan kernels use — no per-bit unpack, no per-row byte materialization.
  std::vector<uint64_t> words(n * words_per_row);
  if (!words.empty() &&
      !in.read(reinterpret_cast<char*>(words.data()),
               static_cast<std::streamsize>(words.size() *
                                            sizeof(uint64_t)))) {
    return Status::ParseError("truncated vector block");
  }
  out.rows = PackedBitMatrix::FromWords(static_cast<int>(n),
                                        static_cast<int>(p),
                                        std::move(words));
  out.ids.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    uint64_t id = 0;
    if (!ReadPod(in, &id)) {
      return Status::ParseError("truncated id block");
    }
    // Cap at INT_MAX - 1 so the engine's next_id = last id + 1 cannot
    // overflow int.
    if (id >= static_cast<uint64_t>(std::numeric_limits<int>::max()) ||
        (i > 0 && static_cast<int>(id) <= out.ids.back())) {
      return Status::ParseError("ids must be strictly ascending and in range");
    }
    out.ids.push_back(static_cast<int>(id));
  }
  if (!out.ids.empty() &&
      static_cast<int64_t>(next_id) <= int64_t{out.ids.back()}) {
    return Status::ParseError("next_id out of range");
  }
  out.next_id = static_cast<int>(next_id);
  return out;
}

Result<PackedIndex> ReadIndexFileV2Packed(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open for reading: " + path);
  char magic[sizeof(kV2Magic)];
  if (!in.read(magic, sizeof(magic)) ||
      std::memcmp(magic, kV2Magic, sizeof(magic)) != 0) {
    return Status::ParseError("bad v2 magic");
  }
  uint32_t header_version = 0, endian_tag = 0;
  if (!ReadPod(in, &header_version) || header_version != kV2HeaderVersion) {
    return Status::ParseError("unsupported v2 header version");
  }
  if (!ReadPod(in, &endian_tag) || endian_tag != kV2EndianTag) {
    return Status::ParseError("index written with foreign byte order");
  }
  const std::streampos body_begin = in.tellg();
  in.seekg(0, std::ios::end);
  const uint64_t region = static_cast<uint64_t>(in.tellg() - body_begin);
  in.seekg(body_begin);
  return ReadDimsRegion(in, region);
}

Result<PersistedMeta> ReadMetaSection(std::istream& in, uint64_t len) {
  PersistedMeta meta;
  if (len != 16) {
    return Status::ParseError("META section size mismatch");
  }
  if (!ReadPod(in, &meta.generation) || !ReadPod(in, &meta.epoch)) {
    return Status::ParseError("truncated META section");
  }
  return meta;
}

Result<PersistedStore> ReadStoreSection(std::istream& in, uint64_t len,
                                        const std::vector<int>& index_ids) {
  uint64_t left = len;
  uint64_t count = 0;
  if (left < 8 || !ReadPod(in, &count)) {
    return Status::ParseError("truncated store section");
  }
  left -= 8;
  // The store is the graphs behind the index rows, nothing more or less:
  // its ids must reproduce the DIMS ids exactly, so a restart seeds a
  // store that agrees with the engine row for row.
  if (count != index_ids.size()) {
    return Status::ParseError("store section row count does not match the index");
  }
  if (count > left / 8) {
    return Status::ParseError("store id block larger than section");
  }
  PersistedStore store;
  store.ids.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t id = 0;
    if (!ReadPod(in, &id)) {
      return Status::ParseError("truncated store section");
    }
    if (id != static_cast<uint64_t>(index_ids[i])) {
      return Status::ParseError("store section ids do not match the index ids");
    }
    store.ids.push_back(index_ids[i]);
  }
  left -= count * 8;
  uint64_t text_bytes = 0;
  if (left < 8 || !ReadPod(in, &text_bytes)) {
    return Status::ParseError("truncated store section");
  }
  left -= 8;
  if (text_bytes != left) {
    return Status::ParseError("store section size mismatch");
  }
  std::string text(text_bytes, '\0');
  if (text_bytes > 0 &&
      !in.read(text.data(), static_cast<std::streamsize>(text_bytes))) {
    return Status::ParseError("truncated store section");
  }
  std::istringstream stream(text);
  Result<GraphDatabase> graphs = ReadGraphStream(stream);
  if (!graphs.ok()) return graphs.status();
  if (graphs->size() != count) {
    return Status::ParseError("store graph count does not match the index");
  }
  store.graphs = std::move(graphs).value();
  return store;
}

Result<PersistedIvf> ReadIvfSection(std::istream& in, uint64_t len,
                                    const PackedIndex& dims) {
  uint64_t left = len;
  uint64_t num_buckets = 0, num_bits = 0, wpc = 0;
  if (left < 24 || !ReadPod(in, &num_buckets) || !ReadPod(in, &num_bits) ||
      !ReadPod(in, &wpc)) {
    return Status::ParseError("truncated IVF section");
  }
  left -= 24;
  if (num_bits != static_cast<uint64_t>(dims.rows.num_bits())) {
    return Status::ParseError("IVF width does not match the index");
  }
  if (wpc != (num_bits + 63) / 64) {
    return Status::ParseError("IVF centroid stride does not match width");
  }
  // Every bucket costs at least a centroid, a posting count, and one
  // posting id — bounding the bucket count before the reserve.
  const uint64_t min_bucket_bytes = wpc * 8 + 16;
  if (num_buckets > left / min_bucket_bytes) {
    return Status::ParseError("IVF bucket count larger than section");
  }
  const uint64_t n = static_cast<uint64_t>(dims.rows.num_rows());
  std::vector<uint8_t> seen(n, 0);
  uint64_t covered = 0;
  PersistedIvf ivf;
  ivf.num_bits = static_cast<int>(num_bits);
  ivf.buckets.reserve(num_buckets);
  for (uint64_t b = 0; b < num_buckets; ++b) {
    if (left < wpc * 8 + 8) {
      return Status::ParseError("truncated IVF bucket");
    }
    PersistedIvfBucket bucket;
    bucket.centroid_words.resize(wpc);
    if (wpc > 0 &&
        !in.read(reinterpret_cast<char*>(bucket.centroid_words.data()),
                 static_cast<std::streamsize>(wpc * sizeof(uint64_t)))) {
      return Status::ParseError("truncated IVF bucket");
    }
    uint64_t posting_count = 0;
    if (!ReadPod(in, &posting_count)) {
      return Status::ParseError("truncated IVF bucket");
    }
    left -= wpc * 8 + 8;
    if (posting_count == 0) {
      return Status::ParseError("empty IVF bucket");
    }
    if (posting_count > left / 8) {
      return Status::ParseError("IVF posting block larger than section");
    }
    bucket.ids.reserve(posting_count);
    for (uint64_t j = 0; j < posting_count; ++j) {
      uint64_t id = 0;
      if (!ReadPod(in, &id)) {
        return Status::ParseError("truncated IVF bucket");
      }
      if (id >= static_cast<uint64_t>(std::numeric_limits<int>::max()) ||
          (j > 0 && static_cast<int>(id) <= bucket.ids.back())) {
        return Status::ParseError(
            "IVF postings must be strictly ascending and in range");
      }
      const int row = FindRow(dims.ids, static_cast<int>(id));
      if (row < 0) {
        return Status::ParseError("IVF posting id is not a live row");
      }
      if (seen[static_cast<size_t>(row)] != 0) {
        return Status::ParseError("duplicate IVF posting id");
      }
      seen[static_cast<size_t>(row)] = 1;
      ++covered;
      bucket.ids.push_back(static_cast<int>(id));
    }
    left -= posting_count * 8;
    ivf.buckets.push_back(std::move(bucket));
  }
  if (left != 0) {
    return Status::ParseError("IVF section size mismatch");
  }
  // NPROBE=all ≡ MODE=full depends on the postings being exactly the live
  // rows: nothing missing (a row no probe could find), nothing extra.
  if (covered != n) {
    return Status::ParseError("IVF postings do not cover the live rows");
  }
  return ivf;
}

Result<PackedIndex> ReadIndexFileV3Packed(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open for reading: " + path);
  char magic[sizeof(kV3Magic)];
  if (!in.read(magic, sizeof(magic)) ||
      std::memcmp(magic, kV3Magic, sizeof(magic)) != 0) {
    return Status::ParseError("bad v3 magic");
  }
  uint32_t header_version = 0, endian_tag = 0;
  if (!ReadPod(in, &header_version) || header_version != kV3HeaderVersion) {
    return Status::ParseError("unsupported v3 header version");
  }
  if (!ReadPod(in, &endian_tag) || endian_tag != kV2EndianTag) {
    return Status::ParseError("index written with foreign byte order");
  }
  const std::streampos sections_begin = in.tellg();
  in.seekg(0, std::ios::end);
  uint64_t left = static_cast<uint64_t>(in.tellg() - sections_begin);
  in.seekg(sections_begin);

  PackedIndex out;
  bool have_dims = false;
  while (left > 0) {
    if (left < 12) {
      return Status::ParseError("truncated section header");
    }
    char tag[4];
    uint64_t len = 0;
    if (!in.read(tag, sizeof(tag)) || !ReadPod(in, &len)) {
      return Status::ParseError("truncated section header");
    }
    left -= 12;
    // Bounding the payload by the actual bytes on disk (not the claimed
    // length) is what keeps every per-section allocation file-size-bounded.
    if (len > left) {
      return Status::ParseError("section '" + TagName(tag) +
                                "' larger than file");
    }
    if (TagIs(tag, kSectionDims)) {
      if (have_dims) {
        return Status::ParseError("duplicate DIMS section");
      }
      Result<PackedIndex> dims = ReadDimsRegion(in, len);
      if (!dims.ok()) return dims.status();
      out = std::move(dims).value();
      have_dims = true;
    } else if (!have_dims) {
      // Later sections validate against the DIMS ids, so DIMS leads.
      return Status::ParseError("first section must be DIMS");
    } else if (TagIs(tag, kSectionMeta)) {
      if (out.meta.has_value()) {
        return Status::ParseError("duplicate META section");
      }
      Result<PersistedMeta> meta = ReadMetaSection(in, len);
      if (!meta.ok()) return meta.status();
      out.meta = std::move(meta).value();
    } else if (TagIs(tag, kSectionStor)) {
      if (out.store.has_value()) {
        return Status::ParseError("duplicate STOR section");
      }
      Result<PersistedStore> store = ReadStoreSection(in, len, out.ids);
      if (!store.ok()) return store.status();
      out.store = std::move(store).value();
    } else if (TagIs(tag, kSectionIvfx)) {
      if (out.ivf.has_value()) {
        return Status::ParseError("duplicate IVFX section");
      }
      Result<PersistedIvf> ivf = ReadIvfSection(in, len, out);
      if (!ivf.ok()) return ivf.status();
      out.ivf = std::move(ivf).value();
    } else {
      return Status::ParseError("unknown section tag '" + TagName(tag) + "'");
    }
    left -= len;
  }
  if (!have_dims) {
    return Status::ParseError("missing DIMS section");
  }
  return out;
}

/// Legacy byte-row view of a packed load: unpack the rows, drop the
/// sections. Only the tool paths that manipulate rows as bytes (convert,
/// tests) pay for this; the serving load path stays packed.
Result<PersistedIndex> UnpackToBytes(Result<PackedIndex> packed) {
  if (!packed.ok()) return packed.status();
  PersistedIndex out;
  out.features = std::move(packed->features);
  out.db_bits.reserve(static_cast<size_t>(packed->rows.num_rows()));
  for (int i = 0; i < packed->rows.num_rows(); ++i) {
    out.db_bits.push_back(packed->rows.UnpackRow(i));
  }
  out.ids = std::move(packed->ids);
  out.next_id = packed->next_id;
  return out;
}

/// Shared v2/v3 writer-side validation of the row/id arguments. Returns the
/// normalized next_id (-1 = derive resolved to one past the largest id).
Result<int> ValidateRowIds(size_t p, uint64_t n, uint64_t words_per_row,
                           const std::vector<int>& ids, int next_id) {
  if (words_per_row != (p + 63) / 64) {
    return Status::InvalidArgument("word stride does not match width");
  }
  if (!ids.empty()) {
    if (ids.size() != n) {
      return Status::InvalidArgument("id count does not match row count");
    }
    for (size_t i = 0; i < ids.size(); ++i) {
      // Mirror the reader's cap (INT_MAX is reserved so next_id can't
      // overflow): never emit a file our own reader refuses.
      if (ids[i] < 0 || ids[i] == std::numeric_limits<int>::max() ||
          (i > 0 && ids[i] <= ids[i - 1])) {
        return Status::InvalidArgument(
            "ids must be strictly ascending and in range");
      }
    }
  }
  const int64_t min_next_id =
      ids.empty() ? static_cast<int64_t>(n) : int64_t{ids.back()} + 1;
  if (next_id < 0) {
    next_id = static_cast<int>(min_next_id);
  } else if (next_id < min_next_id) {
    return Status::InvalidArgument("next_id must exceed every persisted id");
  }
  return next_id;
}

/// Streams the dimension body (the v2 layout after its fixed header; the v3
/// DIMS payload).
void WriteDimsBody(std::ostream& out, size_t p, const std::string& feature_str,
                   uint64_t n, uint64_t words_per_row,
                   const std::function<const uint64_t*(uint64_t)>& row_words,
                   const std::vector<int>& ids, int next_id) {
  WritePod(out, static_cast<uint64_t>(p));
  WritePod(out, static_cast<uint64_t>(feature_str.size()));
  out.write(feature_str.data(),
            static_cast<std::streamsize>(feature_str.size()));
  WritePod(out, n);
  WritePod(out, words_per_row);
  WritePod(out, static_cast<uint64_t>(next_id));
  if (words_per_row > 0) {  // zero-width rows occupy no bytes
    for (uint64_t i = 0; i < n; ++i) {
      out.write(
          reinterpret_cast<const char*>(row_words(i)),
          static_cast<std::streamsize>(words_per_row * sizeof(uint64_t)));
    }
  }
  for (uint64_t i = 0; i < n; ++i) {
    WritePod(out, ids.empty() ? i : static_cast<uint64_t>(ids[i]));
  }
}

Status WriteIndexFileV2(const PersistedIndex& index, const std::string& path) {
  const size_t p = index.features.size();
  for (const auto& row : index.db_bits) {
    if (row.size() != p) {
      return Status::InvalidArgument("bit row width mismatch");
    }
  }
  // Pack once through the canonical layout code and stream the row words.
  const PackedBitMatrix packed =
      PackedBitMatrix::FromRows(index.db_bits, static_cast<int>(p));
  return WriteIndexFileV2Words(
      index.features, index.db_bits.size(),
      static_cast<uint64_t>(packed.words_per_row()),
      [&](uint64_t i) { return packed.row(static_cast<int>(i)); }, index.ids,
      index.next_id, path);
}

Status WriteIndexFileV3(const PersistedIndex& index, const std::string& path) {
  const size_t p = index.features.size();
  for (const auto& row : index.db_bits) {
    if (row.size() != p) {
      return Status::InvalidArgument("bit row width mismatch");
    }
  }
  const PackedBitMatrix packed =
      PackedBitMatrix::FromRows(index.db_bits, static_cast<int>(p));
  return WriteIndexFileV3Words(
      index.features, index.db_bits.size(),
      static_cast<uint64_t>(packed.words_per_row()),
      [&](uint64_t i) { return packed.row(static_cast<int>(i)); }, index.ids,
      index.next_id, V3Sections{}, path);
}

}  // namespace

Status WriteIndexFileV2Words(
    const GraphDatabase& features, uint64_t n, uint64_t words_per_row,
    const std::function<const uint64_t*(uint64_t)>& row_words,
    const std::vector<int>& ids, int next_id, const std::string& path) {
  const size_t p = features.size();
  Result<int> normalized = ValidateRowIds(p, n, words_per_row, ids, next_id);
  if (!normalized.ok()) return normalized.status();
  std::ostringstream feature_text;
  WriteGraphStream(features, feature_text);
  const std::string feature_str = feature_text.str();

  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IoError("cannot open for writing: " + path);
  out.write(kV2Magic, sizeof(kV2Magic));
  WritePod(out, kV2HeaderVersion);
  WritePod(out, kV2EndianTag);
  WriteDimsBody(out, p, feature_str, n, words_per_row, row_words, ids,
                *normalized);
  out.flush();
  if (!out) return Status::IoError("write failed: " + path);
  return Status::OK();
}

Status WriteIndexFileV3Words(
    const GraphDatabase& features, uint64_t n, uint64_t words_per_row,
    const std::function<const uint64_t*(uint64_t)>& row_words,
    const std::vector<int>& ids, int next_id, const V3Sections& sections,
    const std::string& path) {
  const size_t p = features.size();
  Result<int> normalized = ValidateRowIds(p, n, words_per_row, ids, next_id);
  if (!normalized.ok()) return normalized.status();

  // Mirror every reader-side section check, so a snapshot can never emit a
  // file its own reader refuses (and a restart can never half-adopt).
  if ((sections.store_ids == nullptr) != (sections.store_graphs == nullptr)) {
    return Status::InvalidArgument("store ids and graphs must come together");
  }
  if (sections.store_ids != nullptr) {
    if (sections.store_ids->size() != n ||
        sections.store_graphs->size() != n) {
      return Status::InvalidArgument(
          "store section row count does not match the index");
    }
    for (uint64_t i = 0; i < n; ++i) {
      const int expect = ids.empty() ? static_cast<int>(i)
                                     : ids[static_cast<size_t>(i)];
      if ((*sections.store_ids)[static_cast<size_t>(i)] != expect) {
        return Status::InvalidArgument(
            "store section ids do not match the index ids");
      }
    }
  }
  if (sections.ivf != nullptr) {
    if (sections.ivf->num_bits != static_cast<int>(p)) {
      return Status::InvalidArgument("IVF width does not match the index");
    }
    std::vector<uint8_t> seen(n, 0);
    uint64_t covered = 0;
    for (const PersistedIvfBucket& bucket : sections.ivf->buckets) {
      if (bucket.centroid_words.size() != words_per_row) {
        return Status::InvalidArgument(
            "IVF centroid stride does not match width");
      }
      if (bucket.ids.empty()) {
        return Status::InvalidArgument("empty IVF bucket");
      }
      int prev = -1;
      for (const int id : bucket.ids) {
        if (id <= prev) {
          return Status::InvalidArgument(
              "IVF postings must be strictly ascending and in range");
        }
        prev = id;
        int row;
        if (ids.empty()) {
          row = (id >= 0 && static_cast<uint64_t>(id) < n) ? id : -1;
        } else {
          row = FindRow(ids, id);
        }
        if (row < 0) {
          return Status::InvalidArgument("IVF posting id is not a live row");
        }
        if (seen[static_cast<size_t>(row)] != 0) {
          return Status::InvalidArgument("duplicate IVF posting id");
        }
        seen[static_cast<size_t>(row)] = 1;
        ++covered;
      }
    }
    if (covered != n) {
      return Status::InvalidArgument(
          "IVF postings must cover every row exactly once");
    }
  }

  std::ostringstream feature_text;
  WriteGraphStream(features, feature_text);
  const std::string feature_str = feature_text.str();

  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IoError("cannot open for writing: " + path);
  out.write(kV3Magic, sizeof(kV3Magic));
  WritePod(out, kV3HeaderVersion);
  WritePod(out, kV2EndianTag);

  // DIMS — always present, always first (readers validate later sections
  // against its id block).
  const uint64_t dims_len =
      16 + feature_str.size() + 24 + n * words_per_row * 8 + n * 8;
  out.write(kSectionDims, 4);
  WritePod(out, dims_len);
  WriteDimsBody(out, p, feature_str, n, words_per_row, row_words, ids,
                *normalized);

  if (sections.meta != nullptr) {
    out.write(kSectionMeta, 4);
    WritePod(out, static_cast<uint64_t>(16));
    WritePod(out, sections.meta->generation);
    WritePod(out, sections.meta->epoch);
  }

  if (sections.store_ids != nullptr) {
    std::ostringstream store_text;
    WriteGraphStream(*sections.store_graphs, store_text);
    const std::string store_str = store_text.str();
    const uint64_t store_len = 8 + n * 8 + 8 + store_str.size();
    out.write(kSectionStor, 4);
    WritePod(out, store_len);
    WritePod(out, n);
    for (uint64_t i = 0; i < n; ++i) {
      WritePod(out,
               static_cast<uint64_t>((*sections.store_ids)[
                   static_cast<size_t>(i)]));
    }
    WritePod(out, static_cast<uint64_t>(store_str.size()));
    out.write(store_str.data(),
              static_cast<std::streamsize>(store_str.size()));
  }

  if (sections.ivf != nullptr) {
    uint64_t ivf_len = 24;
    for (const PersistedIvfBucket& bucket : sections.ivf->buckets) {
      ivf_len += words_per_row * 8 + 8 + bucket.ids.size() * 8;
    }
    out.write(kSectionIvfx, 4);
    WritePod(out, ivf_len);
    WritePod(out, static_cast<uint64_t>(sections.ivf->buckets.size()));
    WritePod(out, static_cast<uint64_t>(p));
    WritePod(out, words_per_row);
    for (const PersistedIvfBucket& bucket : sections.ivf->buckets) {
      if (words_per_row > 0) {
        out.write(
            reinterpret_cast<const char*>(bucket.centroid_words.data()),
            static_cast<std::streamsize>(words_per_row * sizeof(uint64_t)));
      }
      WritePod(out, static_cast<uint64_t>(bucket.ids.size()));
      for (const int id : bucket.ids) {
        WritePod(out, static_cast<uint64_t>(id));
      }
    }
  }

  out.flush();
  if (!out) return Status::IoError("write failed: " + path);
  return Status::OK();
}

Result<IndexFormat> ParseIndexFormat(const std::string& name) {
  if (name == "v1") return IndexFormat::kV1Text;
  if (name == "v2") return IndexFormat::kV2Binary;
  if (name == "v3") return IndexFormat::kV3Sectioned;
  return Status::InvalidArgument("unknown index format '" + name +
                                 "' (want v1, v2, or v3)");
}

Status WriteIndexFile(const PersistedIndex& index, const std::string& path,
                      IndexFormat format) {
  switch (format) {
    case IndexFormat::kV1Text:
      return WriteIndexFileV1(index, path);
    case IndexFormat::kV2Binary:
      return WriteIndexFileV2(index, path);
    case IndexFormat::kV3Sectioned:
      return WriteIndexFileV3(index, path);
  }
  return Status::InvalidArgument("unknown index format");
}

namespace {

enum class SniffedFormat { kV1, kV2, kV3 };

/// Sniffs the binary magics; short files simply fail the memcmp and fall
/// through to the v1 text parser.
Result<SniffedFormat> SniffFormat(const std::string& path) {
  char magic[sizeof(kV2Magic)] = {};
  std::ifstream sniff(path, std::ios::binary);
  if (!sniff) return Status::IoError("cannot open for reading: " + path);
  sniff.read(magic, sizeof(magic));
  if (std::memcmp(magic, kV2Magic, sizeof(kV2Magic)) == 0) {
    return SniffedFormat::kV2;
  }
  if (std::memcmp(magic, kV3Magic, sizeof(kV3Magic)) == 0) {
    return SniffedFormat::kV3;
  }
  return SniffedFormat::kV1;
}

}  // namespace

Result<PersistedIndex> ReadIndexFile(const std::string& path) {
  Result<SniffedFormat> format = SniffFormat(path);
  if (!format.ok()) return format.status();
  // Backstop for header fields the size checks cannot bound (e.g. a v1
  // 'vectors <n>' count or a v2 row count at p == 0, where rows occupy no
  // file bytes): a hostile count must surface as a Status, not terminate
  // the process through an uncaught allocation failure.
  try {
    switch (*format) {
      case SniffedFormat::kV2:
        return UnpackToBytes(ReadIndexFileV2Packed(path));
      case SniffedFormat::kV3:
        return UnpackToBytes(ReadIndexFileV3Packed(path));
      case SniffedFormat::kV1:
        break;
    }
    return ReadIndexFileV1(path);
  } catch (const std::bad_alloc&) {
    return Status::ResourceExhausted("index too large to load: " + path);
  } catch (const std::length_error&) {
    return Status::ResourceExhausted("index too large to load: " + path);
  }
}

Result<PackedIndex> ReadIndexFilePacked(const std::string& path) {
  Result<SniffedFormat> format = SniffFormat(path);
  if (!format.ok()) return format.status();
  try {
    switch (*format) {
      case SniffedFormat::kV2:
        return ReadIndexFileV2Packed(path);
      case SniffedFormat::kV3:
        return ReadIndexFileV3Packed(path);
      case SniffedFormat::kV1:
        break;
    }
    Result<PersistedIndex> v1 = ReadIndexFileV1(path);
    if (!v1.ok()) return v1.status();
    PackedIndex out;
    out.rows = PackedBitMatrix::FromRows(
        v1->db_bits, static_cast<int>(v1->features.size()));
    out.features = std::move(v1->features);
    out.ids = std::move(v1->ids);
    out.next_id = v1->next_id;
    return out;
  } catch (const std::bad_alloc&) {
    return Status::ResourceExhausted("index too large to load: " + path);
  } catch (const std::length_error&) {
    return Status::ResourceExhausted("index too large to load: " + path);
  }
}

}  // namespace gdim
