#ifndef GDIM_CORE_MAPPER_H_
#define GDIM_CORE_MAPPER_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace gdim {

/// Maps arbitrary (unseen) graphs onto a fixed feature dimension: bit r of
/// φ(g) is 1 iff feature pattern r is subgraph-isomorphic to g. This is the
/// query-time "feature matching" step of the paper (done with VF2), and the
/// only graph-algorithmic work a query needs.
class FeatureMapper {
 public:
  /// The mapper keeps a copy of the feature pattern graphs.
  explicit FeatureMapper(GraphDatabase features);

  int num_features() const { return static_cast<int>(features_.size()); }
  const GraphDatabase& features() const { return features_; }

  /// φ(g): binary vector of length num_features().
  std::vector<uint8_t> Map(const Graph& g) const;

  /// Maps a whole workload, parallelized over graphs.
  std::vector<std::vector<uint8_t>> MapAll(const GraphDatabase& graphs,
                                           int threads = 0) const;

 private:
  GraphDatabase features_;
};

}  // namespace gdim

#endif  // GDIM_CORE_MAPPER_H_
