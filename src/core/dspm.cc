#include "core/dspm.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/logging.h"
#include "common/parallel.h"
#include "core/objective.h"

namespace gdim {

namespace {

// The majorization matrix B(Z) of Eq. (8): b_ij = −δ_ij/d_ij for i≠j with
// d_ij ≠ 0 (0 otherwise), b_ii = −Σ_{j≠i} b_ij. Row/column sums are zero.
std::vector<double> ComputeB(const std::vector<double>& d,
                             const DissimilarityMatrix& delta, int n,
                             int threads) {
  std::vector<double> b(static_cast<size_t>(n) * static_cast<size_t>(n), 0.0);
  ParallelFor(
      0, n,
      [&](int i) {
        double diag = 0.0;
        for (int j = 0; j < n; ++j) {
          if (j == i) continue;
          double dij = d[static_cast<size_t>(i) * static_cast<size_t>(n) +
                         static_cast<size_t>(j)];
          double v = dij != 0.0 ? -delta.at(i, j) / dij : 0.0;
          b[static_cast<size_t>(i) * static_cast<size_t>(n) +
            static_cast<size_t>(j)] = v;
          diag -= v;
        }
        b[static_cast<size_t>(i) * static_cast<size_t>(n) +
          static_cast<size_t>(i)] = diag;
      },
      threads);
  return b;
}

// Optimized weight update. Combining the Guttman transform (Eq. 6, Alg. 3)
// with the simplified Eq. (9) update (Alg. 2) and the zero-column-sum
// property of B gives the closed form
//   c_r ← c_r · A_r / (s_r (n − s_r)),   A_r = Σ_{i,k ∈ IF_r} b_ik,
// which avoids materializing the n×m configuration x̄. Features supported by
// none or all graphs carry no distance information and get weight 0.
std::vector<double> UpdateWeightsOptimized(const BinaryFeatureDb& db,
                                           const std::vector<double>& b,
                                           const std::vector<double>& c,
                                           int threads) {
  const int n = db.num_graphs();
  const int m = db.num_features();
  std::vector<double> out(static_cast<size_t>(m), 0.0);
  ParallelFor(
      0, m,
      [&](int r) {
        const std::vector<int>& support = db.FeatureSupport(r);
        const int s = static_cast<int>(support.size());
        if (s == 0 || s == n) return;
        double a_r = 0.0;
        for (int i : support) {
          const double* row =
              &b[static_cast<size_t>(i) * static_cast<size_t>(n)];
          for (int k : support) a_r += row[static_cast<size_t>(k)];
        }
        out[static_cast<size_t>(r)] =
            c[static_cast<size_t>(r)] * a_r /
            (static_cast<double>(s) * (n - s));
      },
      threads);
  return out;
}

// Literal Eq. (6) + Eq. (7): dense B·Z Guttman transform and the direct
// O(n²)-per-feature regression — the unoptimized baseline of Section 5.1.
std::vector<double> UpdateWeightsNaive(const BinaryFeatureDb& db,
                                       const std::vector<double>& b,
                                       const std::vector<double>& c) {
  const int n = db.num_graphs();
  const int m = db.num_features();
  // Eq. (6): x̄_ir = (1/n) Σ_k b_ik z_kr over *all* k.
  std::vector<double> xbar(static_cast<size_t>(n) * static_cast<size_t>(m),
                           0.0);
  for (int i = 0; i < n; ++i) {
    const double* row = &b[static_cast<size_t>(i) * static_cast<size_t>(n)];
    for (int k = 0; k < n; ++k) {
      double bik = row[static_cast<size_t>(k)];
      if (bik == 0.0) continue;
      for (int r = 0; r < m; ++r) {
        double zkr = db.Contains(k, r) ? c[static_cast<size_t>(r)] : 0.0;
        xbar[static_cast<size_t>(i) * static_cast<size_t>(m) +
             static_cast<size_t>(r)] += bik * zkr;
      }
    }
  }
  for (double& v : xbar) v /= static_cast<double>(n);
  // Eq. (7): both sums taken literally over all ordered pairs (i, j).
  std::vector<double> out(static_cast<size_t>(m), 0.0);
  for (int r = 0; r < m; ++r) {
    double numer = 0.0, denom = 0.0;
    for (int i = 0; i < n; ++i) {
      double xi = xbar[static_cast<size_t>(i) * static_cast<size_t>(m) +
                       static_cast<size_t>(r)];
      double yi = db.Contains(i, r) ? 1.0 : 0.0;
      for (int j = 0; j < n; ++j) {
        double xj = xbar[static_cast<size_t>(j) * static_cast<size_t>(m) +
                         static_cast<size_t>(r)];
        double yj = db.Contains(j, r) ? 1.0 : 0.0;
        numer += (xi - xj) * (yi - yj);
        denom += (yi - yj) * (yi - yj);
      }
    }
    out[static_cast<size_t>(r)] = denom > 0.0 ? numer / denom : 0.0;
  }
  return out;
}

// The paper's optimized path: materializes x̄ via Eq. (6) restricted to IF
// lists (Algorithm 3), then applies Eq. (9) via Algorithm 2's two-case loop.
std::vector<double> UpdateWeightsReference(const BinaryFeatureDb& db,
                                           const std::vector<double>& b,
                                           const std::vector<double>& c) {
  const int n = db.num_graphs();
  const int m = db.num_features();
  // Algorithm 3: x̄_ir = (1/n) Σ_{k ∈ IF_r} b_ik z_kr with z_kr = c_r.
  std::vector<double> xbar(static_cast<size_t>(n) * static_cast<size_t>(m),
                           0.0);
  for (int i = 0; i < n; ++i) {
    const double* row = &b[static_cast<size_t>(i) * static_cast<size_t>(n)];
    for (int r = 0; r < m; ++r) {
      double acc = 0.0;
      for (int k : db.FeatureSupport(r)) acc += row[static_cast<size_t>(k)];
      xbar[static_cast<size_t>(i) * static_cast<size_t>(m) +
           static_cast<size_t>(r)] =
          acc * c[static_cast<size_t>(r)] / static_cast<double>(n);
    }
  }
  // Algorithm 2.
  std::vector<double> out(static_cast<size_t>(m), 0.0);
  for (int r = 0; r < m; ++r) {
    const int s = db.SupportSize(r);
    if (s == 0 || s == n) continue;
    double cr = 0.0;
    const double denom = static_cast<double>(s) * (n - s);
    for (int i = 0; i < n; ++i) {
      double x = xbar[static_cast<size_t>(i) * static_cast<size_t>(m) +
                      static_cast<size_t>(r)];
      if (db.Contains(i, r)) {
        cr += x * (n - s) / denom;
      } else {
        cr += x * (0 - s) / denom;
      }
    }
    out[static_cast<size_t>(r)] = cr;
  }
  return out;
}

}  // namespace

DspmResult RunDspm(const BinaryFeatureDb& db, const DissimilarityMatrix& delta,
                   const DspmOptions& options) {
  const int n = db.num_graphs();
  const int m = db.num_features();
  GDIM_CHECK(delta.size() == n) << "dissimilarity matrix size mismatch";
  GDIM_CHECK(options.p >= 1);

  DspmResult result;
  if (m == 0 || n == 0) {
    result.weights.assign(static_cast<size_t>(m), 0.0);
    return result;
  }

  // Algorithm 1 lines 2–8: initialize c_r = 1/√m, z = y·c, E_1.
  std::vector<double> c(static_cast<size_t>(m),
                        1.0 / std::sqrt(static_cast<double>(m)));
  std::vector<double> d = WeightedDistanceMatrix(db, c, options.threads);
  double energy = StressObjective(db, c, delta, options.threads);
  result.objective_history.push_back(energy);
  const double e1 = std::max(energy, 1e-30);

  for (int iter = 0; iter < options.max_iters; ++iter) {
    std::vector<double> b = ComputeB(d, delta, n, options.threads);
    switch (options.update_path) {
      case DspmUpdatePath::kClosedForm:
        c = UpdateWeightsOptimized(db, b, c, options.threads);
        break;
      case DspmUpdatePath::kInvertedLists:
        c = UpdateWeightsReference(db, b, c);
        break;
      case DspmUpdatePath::kNaive:
        c = UpdateWeightsNaive(db, b, c);
        break;
    }
    d = WeightedDistanceMatrix(db, c, options.threads);
    double next = StressObjective(db, c, delta, options.threads);
    result.objective_history.push_back(next);
    ++result.iterations;
    double drop = energy - next;
    energy = next;
    if (drop < options.epsilon * e1) break;
  }

  // Post-processing (Sec. 4.2): normalize so Σ c_r² = 1.
  double norm2 = 0.0;
  for (double v : c) norm2 += v * v;
  if (norm2 > 0.0) {
    double inv = 1.0 / std::sqrt(norm2);
    for (double& v : c) v *= inv;
  }
  result.weights = c;

  // Algorithm 1 line 15: the p features with largest weight. Distances only
  // depend on |c_r|, so magnitude is the selection criterion; stable
  // tie-break by feature id keeps the output deterministic.
  std::vector<int> idx(static_cast<size_t>(m));
  std::iota(idx.begin(), idx.end(), 0);
  std::stable_sort(idx.begin(), idx.end(), [&c](int a, int bb) {
    return std::abs(c[static_cast<size_t>(a)]) >
           std::abs(c[static_cast<size_t>(bb)]);
  });
  const int p = std::min(options.p, m);
  result.selected.assign(idx.begin(), idx.begin() + p);
  return result;
}

}  // namespace gdim
