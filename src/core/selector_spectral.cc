// Spectral unsupervised feature-selection baselines: MCFS (Cai, Zhang, He,
// KDD'10), UDFS (Yang et al., IJCAI'11), NDFS (Li et al., AAAI'12).
//
// All three build a k-nearest-neighbour graph over the database graphs'
// binary feature vectors and analyze its (normalized) Laplacian; none of
// them looks at the MCS graph dissimilarity — which is exactly the paper's
// argument for why they underperform DSPM on distance preservation.
//
// Numerical substitutions vs the authors' Matlab (documented in DESIGN.md):
// LARS -> coordinate-descent LASSO (MCFS); dense eigensolvers -> matrix-free
// power iteration with deflation (UDFS) and conjugate-gradient ridge solves
// (NDFS). Objectives and update rules follow the papers.

#include <algorithm>
#include <cmath>
#include <memory>
#include <numeric>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "core/selector.h"
#include "la/eigen.h"
#include "la/solvers.h"

namespace gdim {

namespace {

// Symmetrized kNN graph with normalized adjacency Wn = D^-1/2 W D^-1/2;
// L v = v − Wn v is the normalized Laplacian action.
struct KnnLaplacian {
  int n = 0;
  std::vector<std::vector<std::pair<int, double>>> wnorm;

  std::vector<double> ApplyL(const std::vector<double>& v) const {
    std::vector<double> out(v.size());
    for (int i = 0; i < n; ++i) {
      double acc = 0.0;
      for (const auto& [j, w] : wnorm[static_cast<size_t>(i)]) {
        acc += w * v[static_cast<size_t>(j)];
      }
      out[static_cast<size_t>(i)] = v[static_cast<size_t>(i)] - acc;
    }
    return out;
  }
};

int HammingIG(const std::vector<int>& a, const std::vector<int>& b) {
  size_t ia = 0, ib = 0;
  int diff = 0;
  while (ia < a.size() && ib < b.size()) {
    if (a[ia] == b[ib]) {
      ++ia;
      ++ib;
    } else if (a[ia] < b[ib]) {
      ++diff;
      ++ia;
    } else {
      ++diff;
      ++ib;
    }
  }
  return diff + static_cast<int>((a.size() - ia) + (b.size() - ib));
}

KnnLaplacian BuildKnnLaplacian(const BinaryFeatureDb& db, int k) {
  const int n = db.num_graphs();
  k = std::min(k, std::max(1, n - 1));
  std::vector<std::vector<int>> adj(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    std::vector<std::pair<int, int>> dist;  // (hamming, j)
    dist.reserve(static_cast<size_t>(n - 1));
    for (int j = 0; j < n; ++j) {
      if (j == i) continue;
      dist.emplace_back(HammingIG(db.GraphFeatures(i), db.GraphFeatures(j)),
                        j);
    }
    std::nth_element(dist.begin(), dist.begin() + (k - 1), dist.end());
    for (int t = 0; t < k; ++t) {
      adj[static_cast<size_t>(i)].push_back(dist[static_cast<size_t>(t)].second);
    }
  }
  // Symmetrize (union of directed kNN edges), binary weights.
  std::vector<std::vector<int>> sym(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    for (int j : adj[static_cast<size_t>(i)]) {
      sym[static_cast<size_t>(i)].push_back(j);
      sym[static_cast<size_t>(j)].push_back(i);
    }
  }
  KnnLaplacian lap;
  lap.n = n;
  lap.wnorm.resize(static_cast<size_t>(n));
  std::vector<double> degree(static_cast<size_t>(n), 0.0);
  for (int i = 0; i < n; ++i) {
    auto& row = sym[static_cast<size_t>(i)];
    std::sort(row.begin(), row.end());
    row.erase(std::unique(row.begin(), row.end()), row.end());
    degree[static_cast<size_t>(i)] = std::max<double>(1.0, row.size());
  }
  for (int i = 0; i < n; ++i) {
    for (int j : sym[static_cast<size_t>(i)]) {
      double w = 1.0 / std::sqrt(degree[static_cast<size_t>(i)] *
                                 degree[static_cast<size_t>(j)]);
      lap.wnorm[static_cast<size_t>(i)].emplace_back(j, w);
    }
  }
  return lap;
}

// X v (graphs × features times feature vector) through the inverted lists.
std::vector<double> XTimes(const BinaryFeatureDb& db,
                           const std::vector<double>& v) {
  std::vector<double> out(static_cast<size_t>(db.num_graphs()), 0.0);
  for (int i = 0; i < db.num_graphs(); ++i) {
    double acc = 0.0;
    for (int r : db.GraphFeatures(i)) acc += v[static_cast<size_t>(r)];
    out[static_cast<size_t>(i)] = acc;
  }
  return out;
}

// Xᵀ u.
std::vector<double> XTransposeTimes(const BinaryFeatureDb& db,
                                    const std::vector<double>& u) {
  std::vector<double> out(static_cast<size_t>(db.num_features()), 0.0);
  for (int i = 0; i < db.num_graphs(); ++i) {
    double s = u[static_cast<size_t>(i)];
    if (s == 0.0) continue;
    for (int r : db.GraphFeatures(i)) out[static_cast<size_t>(r)] += s;
  }
  return out;
}

std::vector<int> TopByScore(const std::vector<double>& score, int p) {
  std::vector<int> idx(score.size());
  std::iota(idx.begin(), idx.end(), 0);
  std::stable_sort(idx.begin(), idx.end(), [&score](int a, int b) {
    return score[static_cast<size_t>(a)] > score[static_cast<size_t>(b)];
  });
  idx.resize(static_cast<size_t>(std::min<int>(p, static_cast<int>(
                                                      score.size()))));
  return idx;
}

// ---------------------------------------------------------------------------
// MCFS: spectral embedding + per-eigenvector L1 regression, score =
// max_k |w_kr|.
class McfsSelector : public FeatureSelector {
 public:
  std::string name() const override { return "MCFS"; }

  Result<SelectionOutput> Select(const SelectionInput& input) const override {
    if (input.db == nullptr) {
      return Status::InvalidArgument("MCFS: db is required");
    }
    const BinaryFeatureDb& db = *input.db;
    const int n = db.num_graphs();
    const int m = db.num_features();
    if (n < 3 || m == 0) {
      return Status::InvalidArgument("MCFS: input too small");
    }
    KnnLaplacian lap = BuildKnnLaplacian(db, input.params.knn);
    SymmetricOperator op = [&lap](const std::vector<double>& v) {
      return lap.ApplyL(v);
    };
    // Normalized Laplacian spectrum lies in [0, 2]; drop the trivial bottom
    // eigenvector.
    const int k = std::min(input.params.num_eigen, n - 2);
    EigenResult eig = BottomEigenpairs(op, n, k + 1, /*upper=*/2.1,
                                       input.params.eigen_iters, 1e-7,
                                       input.seed);
    // Feature columns for the LASSO (dense; m columns of length n).
    std::vector<std::vector<double>> columns(
        static_cast<size_t>(m), std::vector<double>(static_cast<size_t>(n)));
    for (int r = 0; r < m; ++r) {
      for (int gid : db.FeatureSupport(r)) {
        columns[static_cast<size_t>(r)][static_cast<size_t>(gid)] = 1.0;
      }
    }
    std::vector<double> score(static_cast<size_t>(m), 0.0);
    for (int e = 1; e <= k && e < static_cast<int>(eig.vectors.size()); ++e) {
      const std::vector<double>& y = eig.vectors[static_cast<size_t>(e)];
      // λ scaled to the strongest raw correlation.
      double max_corr = 0.0;
      std::vector<double> xty = XTransposeTimes(db, y);
      for (double v : xty) max_corr = std::max(max_corr, std::abs(v));
      double lambda = input.params.regularization * max_corr;
      std::vector<double> w = LassoCoordinateDescent(columns, y, lambda, 60);
      for (int r = 0; r < m; ++r) {
        score[static_cast<size_t>(r)] =
            std::max(score[static_cast<size_t>(r)],
                     std::abs(w[static_cast<size_t>(r)]));
      }
    }
    SelectionOutput out;
    out.selected = TopByScore(score, input.p);
    out.scores = std::move(score);
    return out;
  }
};

// ---------------------------------------------------------------------------
// UDFS: joint l2,1-regularized discriminative projection. W = bottom-K
// eigenvectors of M + γD, M = Xᵀ L X (matrix-free), D reweighted from W's
// row norms; score = ||W_r·||₂.
class UdfsSelector : public FeatureSelector {
 public:
  std::string name() const override { return "UDFS"; }

  Result<SelectionOutput> Select(const SelectionInput& input) const override {
    if (input.db == nullptr) {
      return Status::InvalidArgument("UDFS: db is required");
    }
    const BinaryFeatureDb& db = *input.db;
    const int n = db.num_graphs();
    const int m = db.num_features();
    if (n < 3 || m == 0) {
      return Status::InvalidArgument("UDFS: input too small");
    }
    KnnLaplacian lap = BuildKnnLaplacian(db, input.params.knn);
    const double gamma = input.params.regularization;
    std::vector<double> d_diag(static_cast<size_t>(m), 1.0);
    const int k = std::min(input.params.num_eigen, m);
    std::vector<std::vector<double>> w_rows;  // last iterate's eigenvectors

    SymmetricOperator base = [&db, &lap](const std::vector<double>& v) {
      std::vector<double> xv = XTimes(db, v);
      std::vector<double> lxv = lap.ApplyL(xv);
      return XTransposeTimes(db, lxv);
    };
    double upper = EstimateSpectralUpperBound(base, m, 20, input.seed) +
                   gamma * 10.0;

    std::vector<double> score(static_cast<size_t>(m), 0.0);
    for (int outer = 0; outer < input.params.outer_iters; ++outer) {
      SymmetricOperator op = [&base, &d_diag,
                              gamma](const std::vector<double>& v) {
        std::vector<double> out = base(v);
        for (size_t r = 0; r < v.size(); ++r) {
          out[r] += gamma * d_diag[r] * v[r];
        }
        return out;
      };
      EigenResult eig = BottomEigenpairs(op, m, k, upper,
                                         input.params.eigen_iters, 1e-6,
                                         input.seed + static_cast<uint64_t>(outer));
      // Row norms of W (m×k with columns = eigenvectors).
      for (int r = 0; r < m; ++r) {
        double acc = 0.0;
        for (const auto& vec : eig.vectors) {
          acc += vec[static_cast<size_t>(r)] * vec[static_cast<size_t>(r)];
        }
        score[static_cast<size_t>(r)] = std::sqrt(acc);
        d_diag[static_cast<size_t>(r)] =
            1.0 / (2.0 * score[static_cast<size_t>(r)] + 1e-8);
      }
    }
    SelectionOutput out;
    out.selected = TopByScore(score, input.p);
    out.scores = std::move(score);
    return out;
  }
};

// ---------------------------------------------------------------------------
// NDFS: nonnegative spectral analysis with joint feature selection.
// Alternates: W = argmin ||XW − F||² + γ||W||₂,₁ (ridge-reweighted, CG) and
// a clamped multiplicative update of the nonnegative cluster indicator F.
class NdfsSelector : public FeatureSelector {
 public:
  std::string name() const override { return "NDFS"; }

  Result<SelectionOutput> Select(const SelectionInput& input) const override {
    if (input.db == nullptr) {
      return Status::InvalidArgument("NDFS: db is required");
    }
    const BinaryFeatureDb& db = *input.db;
    const int n = db.num_graphs();
    const int m = db.num_features();
    if (n < 3 || m == 0) {
      return Status::InvalidArgument("NDFS: input too small");
    }
    KnnLaplacian lap = BuildKnnLaplacian(db, input.params.knn);
    const int k = std::min(input.params.num_eigen, std::max(2, n / 4));
    const double gamma = input.params.regularization;
    const double beta = 1.0;
    const double lambda = 1000.0;  // orthogonality penalty weight

    // F init: k-means cluster indicators (+0.2 smoothing, as in the paper).
    std::vector<std::vector<double>> points(
        static_cast<size_t>(n), std::vector<double>(static_cast<size_t>(m)));
    for (int i = 0; i < n; ++i) {
      for (int r : db.GraphFeatures(i)) {
        points[static_cast<size_t>(i)][static_cast<size_t>(r)] = 1.0;
      }
    }
    std::vector<int> assign = KMeans(points, k, input.seed);
    std::vector<std::vector<double>> f(
        static_cast<size_t>(n), std::vector<double>(static_cast<size_t>(k),
                                                    0.2));
    for (int i = 0; i < n; ++i) {
      f[static_cast<size_t>(i)][static_cast<size_t>(
          assign[static_cast<size_t>(i)])] = 1.0;
    }

    std::vector<double> d_diag(static_cast<size_t>(m), 1.0);
    std::vector<std::vector<double>> w(
        static_cast<size_t>(m), std::vector<double>(static_cast<size_t>(k),
                                                    0.0));
    for (int outer = 0; outer < input.params.outer_iters; ++outer) {
      // W update: per column solve (XᵀX + γD + εI) w_c = Xᵀ f_c by CG.
      SymmetricOperator ridge = [&db, &d_diag,
                                 gamma](const std::vector<double>& v) {
        std::vector<double> xv = XTimes(db, v);
        std::vector<double> out = XTransposeTimes(db, xv);
        for (size_t r = 0; r < v.size(); ++r) {
          out[r] += (gamma * d_diag[r] + 1e-6) * v[r];
        }
        return out;
      };
      for (int c = 0; c < k; ++c) {
        std::vector<double> fc(static_cast<size_t>(n));
        for (int i = 0; i < n; ++i) {
          fc[static_cast<size_t>(i)] = f[static_cast<size_t>(i)][static_cast<size_t>(c)];
        }
        std::vector<double> rhs = XTransposeTimes(db, fc);
        std::vector<double> wc = ConjugateGradient(ridge, rhs, 80, 1e-6);
        for (int r = 0; r < m; ++r) {
          w[static_cast<size_t>(r)][static_cast<size_t>(c)] =
              wc[static_cast<size_t>(r)];
        }
      }
      // D update from W row norms.
      for (int r = 0; r < m; ++r) {
        double norm = Norm2(w[static_cast<size_t>(r)]);
        d_diag[static_cast<size_t>(r)] = 1.0 / (2.0 * norm + 1e-8);
      }
      // F multiplicative update (clamped to stay positive):
      // F ← F ∘ (βXW + λF) / (LF + βF + λF(FᵀF)).
      // Precompute XW (n×k), LF (n×k), FᵀF (k×k).
      std::vector<std::vector<double>> xw(
          static_cast<size_t>(n), std::vector<double>(static_cast<size_t>(k)));
      for (int c = 0; c < k; ++c) {
        std::vector<double> wc(static_cast<size_t>(m));
        for (int r = 0; r < m; ++r) {
          wc[static_cast<size_t>(r)] = w[static_cast<size_t>(r)][static_cast<size_t>(c)];
        }
        std::vector<double> col = XTimes(db, wc);
        for (int i = 0; i < n; ++i) {
          xw[static_cast<size_t>(i)][static_cast<size_t>(c)] =
              col[static_cast<size_t>(i)];
        }
      }
      std::vector<std::vector<double>> lf(
          static_cast<size_t>(n), std::vector<double>(static_cast<size_t>(k)));
      for (int c = 0; c < k; ++c) {
        std::vector<double> fc(static_cast<size_t>(n));
        for (int i = 0; i < n; ++i) {
          fc[static_cast<size_t>(i)] = f[static_cast<size_t>(i)][static_cast<size_t>(c)];
        }
        std::vector<double> col = lap.ApplyL(fc);
        for (int i = 0; i < n; ++i) {
          lf[static_cast<size_t>(i)][static_cast<size_t>(c)] =
              col[static_cast<size_t>(i)];
        }
      }
      std::vector<std::vector<double>> ftf(
          static_cast<size_t>(k), std::vector<double>(static_cast<size_t>(k),
                                                      0.0));
      for (int a = 0; a < k; ++a) {
        for (int b = 0; b < k; ++b) {
          double acc = 0.0;
          for (int i = 0; i < n; ++i) {
            acc += f[static_cast<size_t>(i)][static_cast<size_t>(a)] *
                   f[static_cast<size_t>(i)][static_cast<size_t>(b)];
          }
          ftf[static_cast<size_t>(a)][static_cast<size_t>(b)] = acc;
        }
      }
      for (int i = 0; i < n; ++i) {
        for (int c = 0; c < k; ++c) {
          double fic = f[static_cast<size_t>(i)][static_cast<size_t>(c)];
          double fftf = 0.0;
          for (int b = 0; b < k; ++b) {
            fftf += f[static_cast<size_t>(i)][static_cast<size_t>(b)] *
                    ftf[static_cast<size_t>(b)][static_cast<size_t>(c)];
          }
          double num = beta * xw[static_cast<size_t>(i)][static_cast<size_t>(c)] +
                       lambda * fic;
          double den = lf[static_cast<size_t>(i)][static_cast<size_t>(c)] +
                       beta * fic + lambda * fftf;
          num = std::max(num, 1e-12);
          den = std::max(den, 1e-12);
          f[static_cast<size_t>(i)][static_cast<size_t>(c)] =
              std::max(1e-12, fic * num / den);
        }
      }
    }
    std::vector<double> score(static_cast<size_t>(m), 0.0);
    for (int r = 0; r < m; ++r) {
      score[static_cast<size_t>(r)] = Norm2(w[static_cast<size_t>(r)]);
    }
    SelectionOutput out;
    out.selected = TopByScore(score, input.p);
    out.scores = std::move(score);
    return out;
  }
};

}  // namespace

std::unique_ptr<FeatureSelector> MakeMcfsSelector() {
  return std::make_unique<McfsSelector>();
}
std::unique_ptr<FeatureSelector> MakeUdfsSelector() {
  return std::make_unique<UdfsSelector>();
}
std::unique_ptr<FeatureSelector> MakeNdfsSelector() {
  return std::make_unique<NdfsSelector>();
}

}  // namespace gdim
