#include "core/selector.h"

#include <algorithm>
#include <numeric>

#include "common/random.h"

namespace gdim {

namespace {

// "Original": every frequent subgraph is a dimension (no selection).
class OriginalSelector : public FeatureSelector {
 public:
  std::string name() const override { return "Original"; }
  Result<SelectionOutput> Select(const SelectionInput& input) const override {
    if (input.db == nullptr) {
      return Status::InvalidArgument("Original: db is required");
    }
    SelectionOutput out;
    out.selected.resize(static_cast<size_t>(input.db->num_features()));
    std::iota(out.selected.begin(), out.selected.end(), 0);
    return out;
  }
};

// "Sample": p frequent subgraphs drawn uniformly at random.
class SampleSelector : public FeatureSelector {
 public:
  std::string name() const override { return "Sample"; }
  Result<SelectionOutput> Select(const SelectionInput& input) const override {
    if (input.db == nullptr) {
      return Status::InvalidArgument("Sample: db is required");
    }
    const int m = input.db->num_features();
    const int p = std::min(input.p, m);
    Rng rng(input.seed);
    SelectionOutput out;
    out.selected = rng.SampleWithoutReplacement(m, p);
    std::sort(out.selected.begin(), out.selected.end());
    return out;
  }
};

// DSPM wrapper.
class DspmSelector : public FeatureSelector {
 public:
  std::string name() const override { return "DSPM"; }
  bool NeedsDissimilarity() const override { return true; }
  Result<SelectionOutput> Select(const SelectionInput& input) const override {
    if (input.db == nullptr || input.delta == nullptr) {
      return Status::InvalidArgument("DSPM: db and delta are required");
    }
    DspmOptions options = input.dspm;
    options.p = input.p;
    options.threads = input.threads;
    DspmResult r = RunDspm(*input.db, *input.delta, options);
    SelectionOutput out;
    out.selected = std::move(r.selected);
    out.scores = std::move(r.weights);
    return out;
  }
};

// DSPMap wrapper; reads block dissimilarities from the precomputed matrix
// when available (bench convenience), which still exercises the partition +
// recursive-merge algorithm.
class DspmapSelector : public FeatureSelector {
 public:
  std::string name() const override { return "DSPMap"; }
  bool NeedsDissimilarity() const override { return true; }
  Result<SelectionOutput> Select(const SelectionInput& input) const override {
    if (input.db == nullptr || input.delta == nullptr) {
      return Status::InvalidArgument("DSPMap: db and delta are required");
    }
    DspmapOptions options = input.dspmap;
    options.p = input.p;
    options.seed = input.seed;
    options.dspm.threads = input.threads;
    const DissimilarityMatrix* delta = input.delta;
    DissimilarityFn fn = [delta](int i, int j) { return delta->at(i, j); };
    DspmapResult r = RunDspmap(*input.db, fn, options);
    SelectionOutput out;
    out.selected = std::move(r.selected);
    out.scores = std::move(r.weights);
    return out;
  }
};

}  // namespace

// Implemented in selector_sfs.cc / selector_mici.cc / selector_spectral.cc.
std::unique_ptr<FeatureSelector> MakeSfsSelector();
std::unique_ptr<FeatureSelector> MakeMiciSelector();
std::unique_ptr<FeatureSelector> MakeMcfsSelector();
std::unique_ptr<FeatureSelector> MakeUdfsSelector();
std::unique_ptr<FeatureSelector> MakeNdfsSelector();

std::unique_ptr<FeatureSelector> MakeSelector(const std::string& name) {
  if (name == "Original") return std::make_unique<OriginalSelector>();
  if (name == "Sample") return std::make_unique<SampleSelector>();
  if (name == "DSPM") return std::make_unique<DspmSelector>();
  if (name == "DSPMap") return std::make_unique<DspmapSelector>();
  if (name == "SFS") return MakeSfsSelector();
  if (name == "MICI") return MakeMiciSelector();
  if (name == "MCFS") return MakeMcfsSelector();
  if (name == "UDFS") return MakeUdfsSelector();
  if (name == "NDFS") return MakeNdfsSelector();
  return nullptr;
}

std::vector<std::string> AllSelectorNames() {
  return {"DSPM", "Original", "Sample", "SFS", "MICI",
          "MCFS", "UDFS",     "NDFS",   "DSPMap"};
}

}  // namespace gdim
