#include "core/containment.h"

#include <algorithm>
#include <numeric>
#include <utility>

#include "common/logging.h"
#include "isomorphism/vf2.h"

namespace gdim {

ContainmentIndex::ContainmentIndex(
    GraphDatabase db, GraphDatabase features,
    const std::vector<std::vector<uint8_t>>& bit_rows)
    : db_(std::move(db)), mapper_(std::move(features)) {
  GDIM_CHECK(bit_rows.size() == db_.size())
      << "one bit row per database graph required";
  const int m = mapper_.num_features();
  if (!bit_rows.empty()) {
    GDIM_CHECK(static_cast<int>(bit_rows[0].size()) == m)
        << "bit row width mismatch";
  }
  supports_ = SupportsFromBitRows(bit_rows);
  supports_.resize(static_cast<size_t>(m));
}

std::vector<int> ContainmentIndex::FilterCandidates(const Graph& query,
                                                    QueryStats* stats) const {
  // Features contained in the query; every answer must contain them all.
  std::vector<uint8_t> qbits = mapper_.Map(query);
  std::vector<const std::vector<int>*> lists;
  for (size_t r = 0; r < qbits.size(); ++r) {
    if (qbits[r] != 0) lists.push_back(&supports_[r]);
  }
  const int features_used = static_cast<int>(lists.size());
  std::vector<int> candidates;
  if (lists.empty()) {
    candidates.resize(db_.size());
    std::iota(candidates.begin(), candidates.end(), 0);
  } else {
    candidates = IntersectSupports(std::move(lists));
  }
  if (stats != nullptr) {
    stats->features_used = features_used;
    stats->candidates = static_cast<int>(candidates.size());
  }
  return candidates;
}

std::vector<int> ContainmentIndex::Query(const Graph& query,
                                         QueryStats* stats) const {
  std::vector<int> candidates = FilterCandidates(query, stats);
  std::vector<int> answers;
  for (int id : candidates) {
    if (IsSubgraphIsomorphic(query, db_[static_cast<size_t>(id)])) {
      answers.push_back(id);
    }
  }
  if (stats != nullptr) stats->answers = static_cast<int>(answers.size());
  return answers;
}

}  // namespace gdim
