#include "core/measures.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <unordered_set>

#include "common/logging.h"

namespace gdim {

namespace {

// id -> 1-based true rank in the exact full ranking.
std::unordered_map<int, int> TrueRanks(const Ranking& exact_full) {
  std::unordered_map<int, int> rank;
  rank.reserve(exact_full.size() * 2);
  for (size_t i = 0; i < exact_full.size(); ++i) {
    rank[exact_full[i].id] = static_cast<int>(i) + 1;
  }
  return rank;
}

}  // namespace

double PrecisionAtK(const Ranking& exact_full, const Ranking& approx_full,
                    int k) {
  GDIM_CHECK(k > 0);
  const int kk = std::min<int>(k, static_cast<int>(exact_full.size()));
  std::unordered_set<int> exact_ids;
  for (int i = 0; i < kk; ++i) {
    exact_ids.insert(exact_full[static_cast<size_t>(i)].id);
  }
  int hits = 0;
  for (int i = 0; i < kk && i < static_cast<int>(approx_full.size()); ++i) {
    hits += exact_ids.count(approx_full[static_cast<size_t>(i)].id) ? 1 : 0;
  }
  return static_cast<double>(hits) / k;
}

double KendallTauAtK(const Ranking& exact_full, const Ranking& approx_full,
                     int k) {
  GDIM_CHECK(k > 0);
  const int n = static_cast<int>(exact_full.size());
  const int kk = std::min(k, n);
  std::unordered_map<int, int> true_rank = TrueRanks(exact_full);
  double concordant = 0.0;
  for (int i = 0; i < kk && i < static_cast<int>(approx_full.size()); ++i) {
    int ti = true_rank.at(approx_full[static_cast<size_t>(i)].id);
    // |A_{i+1} ∩ T_{t(r_i)+1}|: later approximate answers whose true rank is
    // also after t(r_i).
    for (int j = i + 1; j < kk && j < static_cast<int>(approx_full.size());
         ++j) {
      int tj = true_rank.at(approx_full[static_cast<size_t>(j)].id);
      if (tj > ti) concordant += 1.0;
    }
  }
  double denom = static_cast<double>(k) * (2.0 * n - k - 1.0);
  return denom > 0.0 ? concordant / denom : 0.0;
}

double InverseRankDistanceAtK(const Ranking& exact_full,
                              const Ranking& approx_full, int k) {
  GDIM_CHECK(k > 0);
  const int kk = std::min<int>(k, static_cast<int>(approx_full.size()));
  std::unordered_map<int, int> true_rank = TrueRanks(exact_full);
  long long footrule = 0;
  for (int i = 0; i < kk; ++i) {
    int ti = true_rank.at(approx_full[static_cast<size_t>(i)].id);
    footrule += std::llabs(static_cast<long long>(i + 1) - ti);
  }
  return static_cast<double>(k) /
         static_cast<double>(std::max<long long>(footrule, 1));
}

double FeatureJaccard(const BinaryFeatureDb& db, int feature_a,
                      int feature_b) {
  const std::vector<int>& a = db.FeatureSupport(feature_a);
  const std::vector<int>& b = db.FeatureSupport(feature_b);
  if (a.empty() && b.empty()) return 0.0;
  size_t ia = 0, ib = 0;
  int inter = 0;
  while (ia < a.size() && ib < b.size()) {
    if (a[ia] == b[ib]) {
      ++inter;
      ++ia;
      ++ib;
    } else if (a[ia] < b[ib]) {
      ++ia;
    } else {
      ++ib;
    }
  }
  int uni = static_cast<int>(a.size() + b.size()) - inter;
  return uni > 0 ? static_cast<double>(inter) / uni : 0.0;
}

double CorrelationScore(const BinaryFeatureDb& db,
                        const std::vector<int>& selected) {
  double total = 0.0;
  for (size_t i = 0; i < selected.size(); ++i) {
    for (size_t j = i + 1; j < selected.size(); ++j) {
      total += FeatureJaccard(db, selected[i], selected[j]);
    }
  }
  return total;
}

std::vector<double> HistogramFractions(const std::vector<double>& values,
                                       int bins) {
  GDIM_CHECK(bins > 0);
  std::vector<double> fractions(static_cast<size_t>(bins), 0.0);
  if (values.empty()) return fractions;
  for (double v : values) {
    int b = static_cast<int>(v * bins);
    b = std::clamp(b, 0, bins - 1);
    fractions[static_cast<size_t>(b)] += 1.0;
  }
  for (double& f : fractions) f /= static_cast<double>(values.size());
  return fractions;
}

}  // namespace gdim
