#include <algorithm>
#include <cmath>
#include <memory>
#include <vector>

#include "common/random.h"
#include "core/selector.h"

namespace gdim {

namespace {

// Sequential Forward Selection (Fukunaga 1990): greedily add the feature
// that minimizes the stress objective Eq. (4) of the unit-weight binary
// mapping, E(S) = Σ_pairs (sqrt(|S ∩ (IG_i △ IG_j)|) − δ_ij)². Selected
// features carry weight c_r = 1 (the Σ sgn(c_r) = p constraint with no
// rescaling — SFS has no weight-fitting step), so mapped distances grow
// with |S| while δ stays in [0,1]. This is the non-monotonicity the paper
// blames for SFS's poor results: the greedy minimizes E by splitting as few
// pairs as possible, collapsing onto rare/redundant features.
//
// A full evaluation is O(n²) per candidate and O(m·n²) per step — the paper
// reports SFS as by far the slowest method (it cannot finish 2k graphs in
// five hours). To keep the baseline runnable we evaluate the objective on a
// fixed random sample of graph pairs; the greedy trajectory is unchanged.
class SfsSelector : public FeatureSelector {
 public:
  std::string name() const override { return "SFS"; }
  bool NeedsDissimilarity() const override { return true; }

  Result<SelectionOutput> Select(const SelectionInput& input) const override {
    if (input.db == nullptr || input.delta == nullptr) {
      return Status::InvalidArgument("SFS: db and delta are required");
    }
    const BinaryFeatureDb& db = *input.db;
    const int n = db.num_graphs();
    const int m = db.num_features();
    const int p = std::min(input.p, m);
    if (n < 2) return Status::InvalidArgument("SFS: need at least 2 graphs");

    // Sample the evaluation pairs (all pairs if the budget covers them).
    Rng rng(input.seed);
    std::vector<std::pair<int, int>> pairs;
    const long long all_pairs = static_cast<long long>(n) * (n - 1) / 2;
    if (all_pairs <= input.params.sfs_pair_sample) {
      for (int i = 0; i < n; ++i) {
        for (int j = i + 1; j < n; ++j) pairs.emplace_back(i, j);
      }
    } else {
      pairs.reserve(static_cast<size_t>(input.params.sfs_pair_sample));
      for (int s = 0; s < input.params.sfs_pair_sample; ++s) {
        int i = static_cast<int>(rng.UniformU64(static_cast<uint64_t>(n)));
        int j = static_cast<int>(rng.UniformU64(static_cast<uint64_t>(n)));
        if (i == j) {
          --s;
          continue;
        }
        pairs.emplace_back(std::min(i, j), std::max(i, j));
      }
    }
    const int np = static_cast<int>(pairs.size());
    std::vector<double> deltas(static_cast<size_t>(np));
    for (int t = 0; t < np; ++t) {
      deltas[static_cast<size_t>(t)] =
          input.delta->at(pairs[static_cast<size_t>(t)].first,
                          pairs[static_cast<size_t>(t)].second);
    }

    // hamming[t] = |S ∩ (IG_i △ IG_j)| for the t-th pair, updated
    // incrementally as features join S.
    std::vector<int> hamming(static_cast<size_t>(np), 0);
    std::vector<bool> chosen(static_cast<size_t>(m), false);
    SelectionOutput out;
    out.selected.reserve(static_cast<size_t>(p));

    for (int step = 0; step < p; ++step) {
      int best_r = -1;
      double best_e = 0.0;
      for (int r = 0; r < m; ++r) {
        if (chosen[static_cast<size_t>(r)]) continue;
        double e = 0.0;
        for (int t = 0; t < np; ++t) {
          const auto& [i, j] = pairs[static_cast<size_t>(t)];
          int h = hamming[static_cast<size_t>(t)] +
                  ((db.Contains(i, r) != db.Contains(j, r)) ? 1 : 0);
          double diff = std::sqrt(static_cast<double>(h)) -
                        deltas[static_cast<size_t>(t)];
          e += diff * diff;
        }
        if (best_r < 0 || e < best_e) {
          best_r = r;
          best_e = e;
        }
      }
      chosen[static_cast<size_t>(best_r)] = true;
      out.selected.push_back(best_r);
      for (int t = 0; t < np; ++t) {
        const auto& [i, j] = pairs[static_cast<size_t>(t)];
        if (db.Contains(i, best_r) != db.Contains(j, best_r)) {
          ++hamming[static_cast<size_t>(t)];
        }
      }
    }
    return out;
  }
};

}  // namespace

std::unique_ptr<FeatureSelector> MakeSfsSelector() {
  return std::make_unique<SfsSelector>();
}

}  // namespace gdim
