#include "core/dspmap.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/logging.h"
#include "common/random.h"
#include "la/solvers.h"

namespace gdim {

namespace {

// Hamming-based binary vector distance between two graphs of db (the
// normalization constant is irrelevant for comparisons).
double BitDistance(const BinaryFeatureDb& db, int i, int j) {
  const std::vector<int>& a = db.GraphFeatures(i);
  const std::vector<int>& b = db.GraphFeatures(j);
  size_t ia = 0, ib = 0;
  int diff = 0;
  while (ia < a.size() && ib < b.size()) {
    if (a[ia] == b[ib]) {
      ++ia;
      ++ib;
    } else if (a[ia] < b[ib]) {
      ++diff;
      ++ia;
    } else {
      ++diff;
      ++ib;
    }
  }
  diff += static_cast<int>((a.size() - ia) + (b.size() - ib));
  return std::sqrt(static_cast<double>(diff));
}

// Average distance from graph g to a center set (Algorithm 7's d(g_i, O)).
double CenterDistance(const BinaryFeatureDb& db, int g,
                      const std::vector<int>& centers) {
  if (centers.empty()) return 0.0;
  double acc = 0.0;
  for (int c : centers) acc += BitDistance(db, g, c);
  return acc / static_cast<double>(centers.size());
}

class Partitioner {
 public:
  Partitioner(const BinaryFeatureDb& db, const DspmapOptions& options)
      : db_(db), options_(options), rng_(options.seed) {}

  std::vector<std::vector<int>> Run() {
    std::vector<int> all(static_cast<size_t>(db_.num_graphs()));
    std::iota(all.begin(), all.end(), 0);
    Split(std::move(all));
    return std::move(parts_);
  }

 private:
  // Algorithm 7.
  void Split(std::vector<int> ids) {
    const int b = options_.partition_size;
    if (static_cast<int>(ids.size()) <= b) {
      if (!ids.empty()) parts_.push_back(std::move(ids));
      return;
    }
    // Sample n_o graphs and 2-cluster them into center sets O_l, O_r.
    int no = std::min<int>(std::max(2, options_.sample_size),
                           static_cast<int>(ids.size()));
    std::vector<int> sample_pos =
        rng_.SampleWithoutReplacement(static_cast<int>(ids.size()), no);
    std::vector<std::vector<double>> points;
    points.reserve(static_cast<size_t>(no));
    for (int pos : sample_pos) {
      int gid = ids[static_cast<size_t>(pos)];
      std::vector<double> v(static_cast<size_t>(db_.num_features()), 0.0);
      for (int r : db_.GraphFeatures(gid)) v[static_cast<size_t>(r)] = 1.0;
      points.push_back(std::move(v));
    }
    std::vector<int> assign = KMeans(points, 2, rng_.Next());
    std::vector<int> ol, orr;
    std::vector<bool> is_center(ids.size(), false);
    for (int s = 0; s < no; ++s) {
      int gid = ids[static_cast<size_t>(sample_pos[static_cast<size_t>(s)])];
      is_center[static_cast<size_t>(sample_pos[static_cast<size_t>(s)])] =
          true;
      (assign[static_cast<size_t>(s)] == 0 ? ol : orr).push_back(gid);
    }
    // Degenerate clustering (all points identical): fall back to halves.
    if (ol.empty() || orr.empty()) {
      std::vector<int> left(ids.begin(),
                            ids.begin() + static_cast<long>(ids.size() / 2));
      std::vector<int> right(ids.begin() + static_cast<long>(ids.size() / 2),
                             ids.end());
      Split(std::move(left));
      Split(std::move(right));
      return;
    }
    // Assign the rest to the closer center set; centers join their own side.
    std::vector<std::pair<double, int>> left, right;  // (margin, gid)
    for (int gid : ol) left.push_back({-1e9, gid});
    for (int gid : orr) right.push_back({-1e9, gid});
    for (size_t k = 0; k < ids.size(); ++k) {
      if (is_center[k]) continue;
      int gid = ids[k];
      double dl = CenterDistance(db_, gid, ol);
      double dr = CenterDistance(db_, gid, orr);
      if (dl <= dr) {
        left.push_back({dl, gid});
      } else {
        right.push_back({dr, gid});
      }
    }
    // Balance (line 10): left must hold n_l = floor(n_p/2)·b graphs. Move
    // graphs farthest from their center set across.
    const int np = static_cast<int>(
        (ids.size() + static_cast<size_t>(b) - 1) / static_cast<size_t>(b));
    const size_t nl = static_cast<size_t>(np / 2) * static_cast<size_t>(b);
    auto farthest_first = [](const std::pair<double, int>& a,
                             const std::pair<double, int>& b2) {
      return a.first > b2.first;
    };
    if (left.size() > nl) {
      std::sort(left.begin(), left.end(), farthest_first);
      while (left.size() > nl) {
        right.push_back(left.front());
        left.erase(left.begin());
      }
    } else if (left.size() < nl) {
      std::sort(right.begin(), right.end(), farthest_first);
      while (left.size() < nl && !right.empty()) {
        left.push_back(right.front());
        right.erase(right.begin());
      }
    }
    std::vector<int> left_ids, right_ids;
    for (auto& [d, gid] : left) left_ids.push_back(gid);
    for (auto& [d, gid] : right) right_ids.push_back(gid);
    std::sort(left_ids.begin(), left_ids.end());
    std::sort(right_ids.begin(), right_ids.end());
    Split(std::move(left_ids));
    Split(std::move(right_ids));
  }

  const BinaryFeatureDb& db_;
  DspmapOptions options_;
  Rng rng_;
  std::vector<std::vector<int>> parts_;
};

// Runs DSPM on the given subset of graph ids; returns the m-dim weight
// vector (zeros for features absent from the subset, which DSPM assigns no
// weight — the paper's F' restriction).
std::vector<double> DspmOnSubset(const BinaryFeatureDb& db,
                                 const DissimilarityFn& delta,
                                 const std::vector<int>& ids,
                                 const DspmOptions& dspm_options,
                                 DspmapResult* stats) {
  BinaryFeatureDb sub = db.Subset(ids);
  const int n = static_cast<int>(ids.size());
  DspmOptions block_options = dspm_options;
  // Blocks are tiny (≤ b graphs): thread-pool spin-up would dwarf the
  // per-iteration work, so inner DSPM runs are serial.
  block_options.threads = 1;
  // Materialize the block's dissimilarity matrix through the oracle.
  std::vector<double> dense(static_cast<size_t>(n) * static_cast<size_t>(n),
                            0.0);
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      double v =
          delta(ids[static_cast<size_t>(i)], ids[static_cast<size_t>(j)]);
      ++stats->delta_evaluations;
      dense[static_cast<size_t>(i) * static_cast<size_t>(n) +
            static_cast<size_t>(j)] = v;
      dense[static_cast<size_t>(j) * static_cast<size_t>(n) +
            static_cast<size_t>(i)] = v;
    }
  }
  DissimilarityMatrix dm = DissimilarityMatrix::FromDense(n, std::move(dense));
  DspmResult r = RunDspm(sub, dm, block_options);
  ++stats->dspm_calls;
  return r.weights;
}

}  // namespace

DspmapResult RunDspmap(const BinaryFeatureDb& db, const DissimilarityFn& delta,
                       const DspmapOptions& options) {
  DspmapResult result;
  const int m = db.num_features();
  result.weights.assign(static_cast<size_t>(m), 0.0);
  if (db.num_graphs() == 0 || m == 0) return result;

  Partitioner partitioner(db, options);
  result.partitions = partitioner.Run();

  DspmOptions inner = options.dspm;
  Rng rng(options.seed ^ 0x5EEDFULL);

  // Algorithm 6, iterative over the recursion tree: process the partition
  // list [lo, hi) recursively.
  std::function<std::vector<double>(int, int)> computec =
      [&](int lo, int hi) -> std::vector<double> {
    if (hi - lo == 1) {
      return DspmOnSubset(db, delta, result.partitions[static_cast<size_t>(lo)],
                          inner, &result);
    }
    int mid = lo + (hi - lo + 1) / 2;  // ceil half goes left, as in the paper
    std::vector<double> cl = computec(lo, mid);
    std::vector<double> cr = computec(mid, hi);
    // Overlap block: b random graphs from one random left part ∪ one random
    // right part.
    int li = lo + static_cast<int>(rng.UniformU64(
                      static_cast<uint64_t>(mid - lo)));
    int ri = mid + static_cast<int>(rng.UniformU64(
                       static_cast<uint64_t>(hi - mid)));
    std::vector<int> pool = result.partitions[static_cast<size_t>(li)];
    pool.insert(pool.end(),
                result.partitions[static_cast<size_t>(ri)].begin(),
                result.partitions[static_cast<size_t>(ri)].end());
    int take = std::min<int>(options.partition_size,
                             static_cast<int>(pool.size()));
    std::vector<int> chosen_pos = rng.SampleWithoutReplacement(
        static_cast<int>(pool.size()), take);
    std::vector<int> overlap;
    overlap.reserve(static_cast<size_t>(take));
    for (int pos : chosen_pos) overlap.push_back(pool[static_cast<size_t>(pos)]);
    std::sort(overlap.begin(), overlap.end());
    std::vector<double> co = DspmOnSubset(db, delta, overlap, inner, &result);
    for (int r = 0; r < m; ++r) {
      cl[static_cast<size_t>(r)] += cr[static_cast<size_t>(r)] +
                                    co[static_cast<size_t>(r)];
    }
    return cl;
  };
  result.weights = computec(0, static_cast<int>(result.partitions.size()));

  std::vector<int> idx(static_cast<size_t>(m));
  std::iota(idx.begin(), idx.end(), 0);
  const std::vector<double>& w = result.weights;
  std::stable_sort(idx.begin(), idx.end(), [&w](int a, int b) {
    return std::abs(w[static_cast<size_t>(a)]) >
           std::abs(w[static_cast<size_t>(b)]);
  });
  const int p = std::min(options.p, m);
  result.selected.assign(idx.begin(), idx.begin() + p);
  return result;
}

DspmapResult RunDspmap(const BinaryFeatureDb& db, const GraphDatabase& graphs,
                       DissimilarityKind kind, const DspmapOptions& options) {
  GDIM_CHECK(static_cast<int>(graphs.size()) == db.num_graphs());
  DissimilarityFn fn = [&graphs, kind](int i, int j) {
    return GraphDissimilarity(graphs[static_cast<size_t>(i)],
                              graphs[static_cast<size_t>(j)], kind);
  };
  return RunDspmap(db, fn, options);
}

std::vector<std::vector<int>> PartitionDatabase(const BinaryFeatureDb& db,
                                                const DspmapOptions& options) {
  Partitioner partitioner(db, options);
  return partitioner.Run();
}

}  // namespace gdim
