#include "core/binary_db.h"

#include <algorithm>
#include <iterator>

#include "common/logging.h"

namespace gdim {

BinaryFeatureDb BinaryFeatureDb::FromPatterns(
    int num_graphs, const std::vector<FrequentPattern>& patterns) {
  BinaryFeatureDb db;
  db.num_graphs_ = num_graphs;
  const int m = static_cast<int>(patterns.size());
  db.bits_.assign(static_cast<size_t>(num_graphs) * static_cast<size_t>(m),
                  0);
  db.supports_.resize(static_cast<size_t>(m));
  db.feature_graphs_.reserve(static_cast<size_t>(m));
  for (int r = 0; r < m; ++r) {
    const FrequentPattern& p = patterns[static_cast<size_t>(r)];
    db.feature_graphs_.push_back(p.graph);
    db.supports_[static_cast<size_t>(r)] = p.support;
    for (int gid : p.support) {
      GDIM_CHECK(gid >= 0 && gid < num_graphs) << "support id out of range";
      db.bits_[static_cast<size_t>(gid) * static_cast<size_t>(m) +
               static_cast<size_t>(r)] = 1;
    }
  }
  db.RebuildIndexes();
  return db;
}

BinaryFeatureDb BinaryFeatureDb::FromBitMatrix(
    const std::vector<std::vector<uint8_t>>& rows) {
  BinaryFeatureDb db;
  db.num_graphs_ = static_cast<int>(rows.size());
  const int m = rows.empty() ? 0 : static_cast<int>(rows[0].size());
  db.bits_.assign(
      static_cast<size_t>(db.num_graphs_) * static_cast<size_t>(m), 0);
  db.supports_.resize(static_cast<size_t>(m));
  for (int i = 0; i < db.num_graphs_; ++i) {
    GDIM_CHECK(static_cast<int>(rows[static_cast<size_t>(i)].size()) == m)
        << "ragged bit matrix";
    for (int r = 0; r < m; ++r) {
      if (rows[static_cast<size_t>(i)][static_cast<size_t>(r)] != 0) {
        db.bits_[static_cast<size_t>(i) * static_cast<size_t>(m) +
                 static_cast<size_t>(r)] = 1;
        db.supports_[static_cast<size_t>(r)].push_back(i);
      }
    }
  }
  db.RebuildIndexes();
  return db;
}

BinaryFeatureDb BinaryFeatureDb::Subset(
    const std::vector<int>& graph_ids) const {
  const int m = num_features();
  BinaryFeatureDb out;
  out.num_graphs_ = static_cast<int>(graph_ids.size());
  out.bits_.assign(
      static_cast<size_t>(out.num_graphs_) * static_cast<size_t>(m), 0);
  out.supports_.resize(static_cast<size_t>(m));
  out.feature_graphs_ = feature_graphs_;
  for (int new_id = 0; new_id < out.num_graphs_; ++new_id) {
    int old_id = graph_ids[static_cast<size_t>(new_id)];
    GDIM_CHECK(old_id >= 0 && old_id < num_graphs_) << "bad subset id";
    for (int r : GraphFeatures(old_id)) {
      out.bits_[static_cast<size_t>(new_id) * static_cast<size_t>(m) +
                static_cast<size_t>(r)] = 1;
      out.supports_[static_cast<size_t>(r)].push_back(new_id);
    }
  }
  out.RebuildIndexes();
  return out;
}

void BinaryFeatureDb::RebuildIndexes() {
  graph_features_.assign(static_cast<size_t>(num_graphs_), {});
  const int m = num_features();
  for (int r = 0; r < m; ++r) {
    GDIM_DCHECK(std::is_sorted(supports_[static_cast<size_t>(r)].begin(),
                               supports_[static_cast<size_t>(r)].end()));
    for (int gid : supports_[static_cast<size_t>(r)]) {
      graph_features_[static_cast<size_t>(gid)].push_back(r);
    }
  }
  // Feature ids are appended in increasing r, so each IG list is sorted.
}

std::vector<std::vector<int>> SupportsFromBitRows(
    const std::vector<std::vector<uint8_t>>& rows) {
  std::vector<std::vector<int>> supports(rows.empty() ? 0 : rows[0].size());
  for (size_t i = 0; i < rows.size(); ++i) {
    GDIM_CHECK(rows[i].size() == supports.size())
        << "ragged bit rows: row " << i;
    for (size_t r = 0; r < rows[i].size(); ++r) {
      if (rows[i][r] != 0) supports[r].push_back(static_cast<int>(i));
    }
  }
  return supports;
}

std::vector<int> IntersectSupports(
    std::vector<const std::vector<int>*> lists) {
  if (lists.empty()) return {};
  // Intersect starting from the rarest list.
  std::sort(lists.begin(), lists.end(),
            [](const std::vector<int>* a, const std::vector<int>* b) {
              return a->size() < b->size();
            });
  std::vector<int> candidates = *lists[0];
  std::vector<int> next;
  for (size_t l = 1; l < lists.size() && !candidates.empty(); ++l) {
    next.clear();
    std::set_intersection(candidates.begin(), candidates.end(),
                          lists[l]->begin(), lists[l]->end(),
                          std::back_inserter(next));
    candidates.swap(next);
  }
  return candidates;
}

}  // namespace gdim
