#include "core/packed_bits.h"

#include <bit>
#include <cmath>

namespace gdim {

namespace {

inline int PopcountXor(const uint64_t* a, const uint64_t* b, size_t words) {
  int diff = 0;
  for (size_t w = 0; w < words; ++w) {
    diff += std::popcount(a[w] ^ b[w]);
  }
  return diff;
}

}  // namespace

PackedBitMatrix PackedBitMatrix::FromRows(
    const std::vector<std::vector<uint8_t>>& rows) {
  PackedBitMatrix m;
  m.num_rows_ = static_cast<int>(rows.size());
  if (rows.empty()) return m;
  m.num_bits_ = static_cast<int>(rows[0].size());
  m.words_per_row_ = (static_cast<size_t>(m.num_bits_) + 63) / 64;
  m.words_.assign(static_cast<size_t>(m.num_rows_) * m.words_per_row_, 0);
  for (size_t i = 0; i < rows.size(); ++i) {
    GDIM_CHECK(rows[i].size() == static_cast<size_t>(m.num_bits_))
        << "ragged bit rows: row " << i << " has " << rows[i].size()
        << " bits, expected " << m.num_bits_;
    uint64_t* out = m.words_.data() + i * m.words_per_row_;
    for (size_t r = 0; r < rows[i].size(); ++r) {
      if (rows[i][r] != 0) out[r >> 6] |= uint64_t{1} << (r & 63);
    }
  }
  return m;
}

std::vector<uint64_t> PackedBitMatrix::PackBits(
    const std::vector<uint8_t>& bits) {
  std::vector<uint64_t> words((bits.size() + 63) / 64, 0);
  for (size_t r = 0; r < bits.size(); ++r) {
    if (bits[r] != 0) words[r >> 6] |= uint64_t{1} << (r & 63);
  }
  return words;
}

bool PackedBitMatrix::GetBit(int row_id, int bit) const {
  GDIM_DCHECK(bit >= 0 && bit < num_bits_);
  return (row(row_id)[bit >> 6] >> (bit & 63)) & 1;
}

int PackedBitMatrix::HammingDistance(const std::vector<uint64_t>& query,
                                     int row_id) const {
  GDIM_CHECK(query.size() == words_per_row_) << "query width mismatch";
  return PopcountXor(query.data(), row(row_id), words_per_row_);
}

double PackedBitMatrix::NormalizedDistance(const std::vector<uint64_t>& query,
                                           int row_id) const {
  if (num_bits_ == 0) return 0.0;
  return std::sqrt(static_cast<double>(HammingDistance(query, row_id)) /
                   static_cast<double>(num_bits_));
}

void PackedBitMatrix::ScoreAll(const std::vector<uint64_t>& query,
                               std::vector<double>* scores) const {
  GDIM_CHECK(query.size() == words_per_row_) << "query width mismatch";
  scores->resize(static_cast<size_t>(num_rows_));
  if (num_bits_ == 0) {
    for (double& s : *scores) s = 0.0;
    return;
  }
  const double p = static_cast<double>(num_bits_);
  const uint64_t* q = query.data();
  const uint64_t* db_row = words_.data();
  for (int i = 0; i < num_rows_; ++i, db_row += words_per_row_) {
    const int diff = PopcountXor(q, db_row, words_per_row_);
    (*scores)[static_cast<size_t>(i)] =
        std::sqrt(static_cast<double>(diff) / p);
  }
}

void PackedBitMatrix::ScoreSubset(const std::vector<uint64_t>& query,
                                  const std::vector<int>& candidates,
                                  std::vector<double>* scores) const {
  GDIM_CHECK(query.size() == words_per_row_) << "query width mismatch";
  scores->resize(candidates.size());
  if (num_bits_ == 0) {
    for (double& s : *scores) s = 0.0;
    return;
  }
  const double p = static_cast<double>(num_bits_);
  for (size_t j = 0; j < candidates.size(); ++j) {
    const int diff = PopcountXor(query.data(), row(candidates[j]),
                                 words_per_row_);
    (*scores)[j] = std::sqrt(static_cast<double>(diff) / p);
  }
}

}  // namespace gdim
