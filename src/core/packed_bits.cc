#include "core/packed_bits.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <vector>

#include "core/kernels/scan_kernel.h"

namespace gdim {

namespace {

inline int PopcountXor(const uint64_t* a, const uint64_t* b, size_t words) {
  int diff = 0;
  for (size_t w = 0; w < words; ++w) {
    diff += std::popcount(a[w] ^ b[w]);
  }
  return diff;
}

/// Rows per kernel call: 256 rows of up to a few hundred words keeps the
/// block plus the diff scratch comfortably inside L2 while amortizing the
/// virtual dispatch to nothing.
constexpr int kScanBlockRows = 256;

}  // namespace

PackedBitMatrix PackedBitMatrix::WithWidth(int num_bits) {
  GDIM_CHECK(num_bits >= 0);
  PackedBitMatrix m;
  m.num_bits_ = num_bits;
  m.words_per_row_ = (static_cast<size_t>(num_bits) + 63) / 64;
  return m;
}

PackedBitMatrix PackedBitMatrix::FromRows(
    const std::vector<std::vector<uint8_t>>& rows) {
  return FromRows(rows, rows.empty() ? 0 : static_cast<int>(rows[0].size()));
}

PackedBitMatrix PackedBitMatrix::FromRows(
    const std::vector<std::vector<uint8_t>>& rows, int num_bits) {
  PackedBitMatrix m = WithWidth(num_bits);
  m.num_rows_ = static_cast<int>(rows.size());
  m.words_.assign(static_cast<size_t>(m.num_rows_) * m.words_per_row_, 0);
  for (size_t i = 0; i < rows.size(); ++i) {
    GDIM_CHECK(rows[i].size() == static_cast<size_t>(m.num_bits_))
        << "ragged bit rows: row " << i << " has " << rows[i].size()
        << " bits, expected " << m.num_bits_;
    uint64_t* out = m.words_.data() + i * m.words_per_row_;
    for (size_t r = 0; r < rows[i].size(); ++r) {
      if (rows[i][r] != 0) out[r >> 6] |= uint64_t{1} << (r & 63);
    }
  }
  return m;
}

PackedBitMatrix PackedBitMatrix::FromWords(int num_rows, int num_bits,
                                           std::vector<uint64_t> words) {
  PackedBitMatrix m = WithWidth(num_bits);
  GDIM_CHECK(num_rows >= 0);
  GDIM_CHECK(words.size() ==
             static_cast<size_t>(num_rows) * m.words_per_row_)
      << "word block has " << words.size() << " words, expected "
      << static_cast<size_t>(num_rows) * m.words_per_row_;
  m.num_rows_ = num_rows;
  m.words_ = std::move(words);
  // Scan kernels popcount whole words, so stray padding bits would corrupt
  // every distance; clear them rather than trusting the producer.
  const int tail_bits = num_bits & 63;
  if (tail_bits != 0 && m.words_per_row_ > 0) {
    const uint64_t mask = (uint64_t{1} << tail_bits) - 1;
    for (size_t i = m.words_per_row_ - 1; i < m.words_.size();
         i += m.words_per_row_) {
      m.words_[i] &= mask;
    }
  }
  return m;
}

std::vector<uint64_t> PackedBitMatrix::PackBits(
    const std::vector<uint8_t>& bits) {
  std::vector<uint64_t> words((bits.size() + 63) / 64, 0);
  for (size_t r = 0; r < bits.size(); ++r) {
    if (bits[r] != 0) words[r >> 6] |= uint64_t{1} << (r & 63);
  }
  return words;
}

void PackedBitMatrix::Reserve(int rows) {
  GDIM_CHECK(rows >= 0);
  words_.reserve(static_cast<size_t>(rows) * words_per_row_);
}

int PackedBitMatrix::AppendRow(const std::vector<uint8_t>& bits) {
  GDIM_CHECK(bits.size() == static_cast<size_t>(num_bits_))
      << "appended row has " << bits.size() << " bits, expected " << num_bits_;
  words_.resize(words_.size() + words_per_row_, 0);
  uint64_t* out =
      words_.data() + static_cast<size_t>(num_rows_) * words_per_row_;
  for (size_t r = 0; r < bits.size(); ++r) {
    if (bits[r] != 0) out[r >> 6] |= uint64_t{1} << (r & 63);
  }
  return num_rows_++;
}

int PackedBitMatrix::AppendRowFrom(const PackedBitMatrix& src, int src_row) {
  GDIM_CHECK(src.num_bits_ == num_bits_)
      << "cannot append a " << src.num_bits_ << "-bit row to a " << num_bits_
      << "-bit matrix";
  GDIM_DCHECK(src_row >= 0 && src_row < src.num_rows_);
  // Resize before taking the source pointer so self-appends survive the
  // reallocation.
  words_.resize(words_.size() + words_per_row_);
  const uint64_t* from =
      src.words_.data() + static_cast<size_t>(src_row) * src.words_per_row_;
  std::copy(from, from + words_per_row_,
            words_.end() - static_cast<std::ptrdiff_t>(words_per_row_));
  return num_rows_++;
}

bool PackedBitMatrix::GetBit(int row_id, int bit) const {
  GDIM_DCHECK(bit >= 0 && bit < num_bits_);
  return (row(row_id)[bit >> 6] >> (bit & 63)) & 1;
}

std::vector<uint8_t> PackedBitMatrix::UnpackRow(int row_id) const {
  const uint64_t* words = row(row_id);
  std::vector<uint8_t> bits(static_cast<size_t>(num_bits_), 0);
  for (int r = 0; r < num_bits_; ++r) {
    bits[static_cast<size_t>(r)] =
        static_cast<uint8_t>((words[r >> 6] >> (r & 63)) & 1);
  }
  return bits;
}

int PackedBitMatrix::HammingDistance(const std::vector<uint64_t>& query,
                                     int row_id) const {
  GDIM_CHECK(query.size() == words_per_row_) << "query width mismatch";
  return PopcountXor(query.data(), row(row_id), words_per_row_);
}

double PackedBitMatrix::NormalizedDistance(const std::vector<uint64_t>& query,
                                           int row_id) const {
  if (num_bits_ == 0) return 0.0;
  return std::sqrt(static_cast<double>(HammingDistance(query, row_id)) /
                   static_cast<double>(num_bits_));
}

void PackedBitMatrix::ScoreAll(const std::vector<uint64_t>& query,
                               std::vector<double>* scores) const {
  scores->resize(static_cast<size_t>(num_rows_));
  ScoreAllInto(query, scores->data());
}

void PackedBitMatrix::ScoreAllInto(const std::vector<uint64_t>& query,
                                   double* out) const {
  GDIM_CHECK(query.size() == words_per_row_) << "query width mismatch";
  if (num_bits_ == 0) {
    for (int i = 0; i < num_rows_; ++i) out[i] = 0.0;
    return;
  }
  const ScanKernel& kernel = ActiveScanKernel();
  const double p = static_cast<double>(num_bits_);
  uint32_t diffs[kScanBlockRows];
  for (int begin = 0; begin < num_rows_; begin += kScanBlockRows) {
    const int block = std::min(kScanBlockRows, num_rows_ - begin);
    kernel.HammingBlock(query.data(),
                        words_.data() +
                            static_cast<size_t>(begin) * words_per_row_,
                        words_per_row_, block, diffs);
    for (int i = 0; i < block; ++i) {
      out[begin + i] = std::sqrt(static_cast<double>(diffs[i]) / p);
    }
  }
}

void PackedBitMatrix::ScoreAllMultiInto(const uint64_t* const* queries,
                                        int num_queries,
                                        double* const* outs) const {
  if (num_queries <= 0) return;
  if (num_bits_ == 0) {
    for (int q = 0; q < num_queries; ++q) {
      for (int i = 0; i < num_rows_; ++i) outs[q][i] = 0.0;
    }
    return;
  }
  const ScanKernel& kernel = ActiveScanKernel();
  const double p = static_cast<double>(num_bits_);
  std::vector<uint32_t> diffs(static_cast<size_t>(num_queries) *
                              kScanBlockRows);
  for (int begin = 0; begin < num_rows_; begin += kScanBlockRows) {
    const int block = std::min(kScanBlockRows, num_rows_ - begin);
    kernel.HammingBlockMulti(queries, num_queries,
                             words_.data() +
                                 static_cast<size_t>(begin) * words_per_row_,
                             words_per_row_, block, diffs.data());
    for (int q = 0; q < num_queries; ++q) {
      const uint32_t* row_diffs =
          diffs.data() + static_cast<size_t>(q) * block;
      for (int i = 0; i < block; ++i) {
        outs[q][begin + i] =
            std::sqrt(static_cast<double>(row_diffs[i]) / p);
      }
    }
  }
}

void PackedBitMatrix::ScoreSubset(const std::vector<uint64_t>& query,
                                  const std::vector<int>& candidates,
                                  std::vector<double>* scores) const {
  GDIM_CHECK(query.size() == words_per_row_) << "query width mismatch";
  scores->resize(candidates.size());
  if (num_bits_ == 0) {
    for (double& s : *scores) s = 0.0;
    return;
  }
  const double p = static_cast<double>(num_bits_);
  for (size_t j = 0; j < candidates.size(); ++j) {
    const int diff = PopcountXor(query.data(), row(candidates[j]),
                                 words_per_row_);
    (*scores)[j] = std::sqrt(static_cast<double>(diff) / p);
  }
}

}  // namespace gdim
