#include "core/mapper.h"

#include <utility>

#include "common/parallel.h"
#include "isomorphism/vf2.h"

namespace gdim {

FeatureMapper::FeatureMapper(GraphDatabase features)
    : features_(std::move(features)) {}

std::vector<uint8_t> FeatureMapper::Map(const Graph& g) const {
  std::vector<uint8_t> bits(features_.size(), 0);
  for (size_t r = 0; r < features_.size(); ++r) {
    bits[r] = IsSubgraphIsomorphic(features_[r], g) ? 1 : 0;
  }
  return bits;
}

std::vector<std::vector<uint8_t>> FeatureMapper::MapAll(
    const GraphDatabase& graphs, int threads) const {
  std::vector<std::vector<uint8_t>> out(graphs.size());
  ParallelFor(
      0, static_cast<int>(graphs.size()),
      [&](int i) { out[static_cast<size_t>(i)] = Map(graphs[static_cast<size_t>(i)]); },
      threads);
  return out;
}

}  // namespace gdim
