#ifndef GDIM_CORE_INDEX_H_
#define GDIM_CORE_INDEX_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/binary_db.h"
#include "core/mapper.h"
#include "core/packed_bits.h"
#include "core/selector.h"
#include "core/topk.h"
#include "graph/graph.h"
#include "mcs/dissimilarity.h"
#include "mining/gspan.h"

namespace gdim {

/// End-to-end configuration for building a graph-dimension search index.
struct IndexOptions {
  /// Frequent subgraph mining (candidate features F).
  MiningOptions mining;

  /// Graph dissimilarity used for ground truth and DSPM fitting.
  DissimilarityKind dissimilarity = DissimilarityKind::kDelta2;

  /// Feature selection algorithm ("DSPM", "DSPMap", or a baseline name).
  std::string selector = "DSPM";

  /// Number of dimensions p.
  int p = 300;

  /// Selector-specific knobs.
  SelectorParams params;
  DspmOptions dspm;
  DspmapOptions dspmap;

  uint64_t seed = 1;
  int threads = 0;
};

/// Phase timings of index construction, for the efficiency experiments.
struct IndexBuildStats {
  double mining_seconds = 0.0;
  double dissimilarity_seconds = 0.0;  ///< pairwise δ matrix (0 for DSPMap)
  double selection_seconds = 0.0;      ///< the paper's "indexing time"
  int mined_features = 0;
  int selected_features = 0;
};

/// The paper's end product: a graph database mapped onto a small structural
/// dimension, answering top-k similarity queries by feature matching (VF2)
/// plus a multidimensional scan — no MCS computation at query time.
class GraphSearchIndex {
 public:
  /// Builds the index over db. db is copied into the index (graphs are tiny).
  static Result<GraphSearchIndex> Build(const GraphDatabase& db,
                                        const IndexOptions& options = {});

  /// Top-k similar graphs for q: maps q onto the dimension, then scans the
  /// mapped database vectors by normalized Euclidean distance.
  Ranking Query(const Graph& q, int k) const;

  /// Exact top-k by MCS dissimilarity (reference answers; slow).
  Ranking QueryExact(const Graph& q, int k) const;

  /// φ(q) over the selected dimension — exposed for experiments.
  std::vector<uint8_t> MapQuery(const Graph& q) const;

  const GraphDatabase& database() const { return db_; }
  const GraphDatabase& dimension() const { return mapper_->features(); }
  const std::vector<std::vector<uint8_t>>& mapped_database() const {
    return db_bits_;
  }
  /// Word-packed form of mapped_database(); the scan layout Query() uses.
  const PackedBitMatrix& packed_database() const { return packed_bits_; }
  const IndexBuildStats& build_stats() const { return stats_; }
  const IndexOptions& options() const { return options_; }

 private:
  GraphSearchIndex() = default;

  GraphDatabase db_;
  IndexOptions options_;
  std::shared_ptr<const FeatureMapper> mapper_;
  std::vector<std::vector<uint8_t>> db_bits_;
  PackedBitMatrix packed_bits_;
  IndexBuildStats stats_;
};

}  // namespace gdim

#endif  // GDIM_CORE_INDEX_H_
