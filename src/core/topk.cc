#include "core/topk.h"

#include <algorithm>

#include "common/logging.h"
#include "common/parallel.h"
#include "core/objective.h"

namespace gdim {

Ranking RankByScores(const std::vector<double>& scores) {
  Ranking r;
  r.reserve(scores.size());
  for (size_t i = 0; i < scores.size(); ++i) {
    r.push_back(RankedResult{static_cast<int>(i), scores[i]});
  }
  std::sort(r.begin(), r.end(), [](const RankedResult& a,
                                   const RankedResult& b) {
    if (a.score != b.score) return a.score < b.score;
    return a.id < b.id;
  });
  return r;
}

Ranking ExactRanking(const Graph& query, const GraphDatabase& db,
                     DissimilarityKind kind, int threads) {
  std::vector<double> scores(db.size(), 0.0);
  ParallelFor(
      0, static_cast<int>(db.size()),
      [&](int i) {
        scores[static_cast<size_t>(i)] =
            GraphDissimilarity(query, db[static_cast<size_t>(i)], kind);
      },
      threads);
  return RankByScores(scores);
}

Ranking MappedRanking(const std::vector<uint8_t>& query_bits,
                      const std::vector<std::vector<uint8_t>>& db_bits) {
  std::vector<double> scores(db_bits.size(), 0.0);
  for (size_t i = 0; i < db_bits.size(); ++i) {
    scores[i] = BinaryMappedDistance(query_bits, db_bits[i]);
  }
  return RankByScores(scores);
}

Ranking TopK(const Ranking& ranking, int k) {
  GDIM_CHECK(k >= 0);
  if (k >= static_cast<int>(ranking.size())) return ranking;
  return Ranking(ranking.begin(), ranking.begin() + k);
}

}  // namespace gdim
