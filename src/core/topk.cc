#include "core/topk.h"

#include <algorithm>

#include "common/logging.h"
#include "common/parallel.h"
#include "core/objective.h"

namespace gdim {

namespace {

/// The one total order every ranking path uses: ascending score, id
/// tie-break. Shared so exact, byte-scan, packed-scan, and partial top-k
/// outputs stay mutually consistent.
inline bool RankedBefore(const RankedResult& a, const RankedResult& b) {
  if (a.score != b.score) return a.score < b.score;
  return a.id < b.id;
}

/// Unsorted ranking over ids 0..n-1.
Ranking MakeRanking(const std::vector<double>& scores) {
  Ranking r;
  r.reserve(scores.size());
  for (size_t i = 0; i < scores.size(); ++i) {
    r.push_back(RankedResult{static_cast<int>(i), scores[i]});
  }
  return r;
}

/// Unsorted ranking over an explicit candidate id set.
Ranking MakeRanking(const std::vector<int>& ids,
                    const std::vector<double>& scores) {
  GDIM_CHECK(ids.size() == scores.size()) << "candidate/score size mismatch";
  Ranking r;
  r.reserve(ids.size());
  for (size_t j = 0; j < ids.size(); ++j) {
    r.push_back(RankedResult{ids[j], scores[j]});
  }
  return r;
}

}  // namespace

Ranking RankByScores(const std::vector<double>& scores) {
  Ranking r = MakeRanking(scores);
  std::sort(r.begin(), r.end(), RankedBefore);
  return r;
}

Ranking RankCandidates(const std::vector<int>& ids,
                       const std::vector<double>& scores) {
  Ranking r = MakeRanking(ids, scores);
  std::sort(r.begin(), r.end(), RankedBefore);
  return r;
}

namespace {

/// nth_element partial selection + sort of the k survivors; consumes r.
Ranking SelectTopK(Ranking r, int k) {
  GDIM_CHECK(k >= 0);
  if (k < static_cast<int>(r.size())) {
    std::nth_element(r.begin(), r.begin() + k, r.end(), RankedBefore);
    r.resize(static_cast<size_t>(k));
  }
  std::sort(r.begin(), r.end(), RankedBefore);
  return r;
}

}  // namespace

Ranking TopKByScores(const std::vector<double>& scores, int k) {
  return SelectTopK(MakeRanking(scores), k);
}

Ranking TopKCandidates(const std::vector<int>& ids,
                       const std::vector<double>& scores, int k) {
  return SelectTopK(MakeRanking(ids, scores), k);
}

Ranking ExactRanking(const Graph& query, const GraphDatabase& db,
                     DissimilarityKind kind, int threads) {
  std::vector<double> scores(db.size(), 0.0);
  ParallelFor(
      0, static_cast<int>(db.size()),
      [&](int i) {
        scores[static_cast<size_t>(i)] =
            GraphDissimilarity(query, db[static_cast<size_t>(i)], kind);
      },
      threads);
  return RankByScores(scores);
}

Ranking MappedRanking(const std::vector<uint8_t>& query_bits,
                      const std::vector<std::vector<uint8_t>>& db_bits) {
  std::vector<double> scores(db_bits.size(), 0.0);
  for (size_t i = 0; i < db_bits.size(); ++i) {
    scores[i] = BinaryMappedDistance(query_bits, db_bits[i]);
  }
  return RankByScores(scores);
}

Ranking MappedRanking(const std::vector<uint8_t>& query_bits,
                      const PackedBitMatrix& db_bits) {
  std::vector<double> scores;
  db_bits.ScoreAll(db_bits.PackQuery(query_bits), &scores);
  return RankByScores(scores);
}

Ranking TopK(const Ranking& ranking, int k) {
  GDIM_CHECK(k >= 0);
  if (k >= static_cast<int>(ranking.size())) return ranking;
  return Ranking(ranking.begin(), ranking.begin() + k);
}

}  // namespace gdim
