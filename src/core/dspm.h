#ifndef GDIM_CORE_DSPM_H_
#define GDIM_CORE_DSPM_H_

#include <vector>

#include "core/binary_db.h"
#include "mcs/dissimilarity.h"

namespace gdim {

/// Which implementation computes the per-iteration weight update. All three
/// produce the same weights (property-tested); they differ only in cost.
enum class DspmUpdatePath {
  /// Closed form fused from Eq. (6) + Eq. (9) using the zero-column-sum
  /// property of B: c_r ← c_r·A_r/(s_r(n−s_r)), A_r = Σ_{i,k∈IF_r} b_ik.
  kClosedForm,
  /// The paper's optimized Algorithms 2–3: materialize x̄ via the IF
  /// inverted lists, then the two-case Eq. (9) update.
  kInvertedLists,
  /// Literal Eq. (6)/Eq. (7): full B·Z product and the O(n²) per-feature
  /// regression. O(k·m·n²) overall — the cost the paper's Section 5.1
  /// optimizations remove; for tests and the ablation bench only.
  kNaive,
};

/// Parameters of the DSPM iterative majorization algorithm (Algorithm 1).
struct DspmOptions {
  /// Number of feature dimensions p to select.
  int p = 300;

  /// Convergence: stop when (E_{k-1} − E_k) < epsilon · E_1 (relative form
  /// of Algorithm 1's threshold ε).
  double epsilon = 1e-4;

  /// Maximum majorization iterations.
  int max_iters = 50;

  /// Weight-update implementation.
  DspmUpdatePath update_path = DspmUpdatePath::kClosedForm;

  /// Threads for the per-iteration distance/objective computation.
  int threads = 0;
};

/// Output of DSPM.
struct DspmResult {
  /// Selected feature ids (|selected| = min(p, m)), sorted by decreasing
  /// weight magnitude.
  std::vector<int> selected;

  /// Final weight vector over all m features, normalized to Σ c_r² = 1.
  std::vector<double> weights;

  /// Objective value per iteration (E_1 ... E_k); non-increasing.
  std::vector<double> objective_history;

  int iterations = 0;
};

/// Runs DSPM on the binary feature database with the given pairwise graph
/// dissimilarities. Deterministic. The majorization step never increases
/// the stress (property-tested).
DspmResult RunDspm(const BinaryFeatureDb& db, const DissimilarityMatrix& delta,
                   const DspmOptions& options = {});

}  // namespace gdim

#endif  // GDIM_CORE_DSPM_H_
