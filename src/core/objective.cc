#include "core/objective.h"

#include <cmath>

#include "common/logging.h"
#include "common/parallel.h"

namespace gdim {

namespace {

// Sum of c_r² over the symmetric difference of the two sorted lists.
double SymmetricDiffWeight(const std::vector<int>& a,
                           const std::vector<int>& b,
                           const std::vector<double>& c) {
  double acc = 0.0;
  size_t ia = 0, ib = 0;
  while (ia < a.size() && ib < b.size()) {
    if (a[ia] == b[ib]) {
      ++ia;
      ++ib;
    } else if (a[ia] < b[ib]) {
      acc += c[static_cast<size_t>(a[ia])] * c[static_cast<size_t>(a[ia])];
      ++ia;
    } else {
      acc += c[static_cast<size_t>(b[ib])] * c[static_cast<size_t>(b[ib])];
      ++ib;
    }
  }
  for (; ia < a.size(); ++ia) {
    acc += c[static_cast<size_t>(a[ia])] * c[static_cast<size_t>(a[ia])];
  }
  for (; ib < b.size(); ++ib) {
    acc += c[static_cast<size_t>(b[ib])] * c[static_cast<size_t>(b[ib])];
  }
  return acc;
}

}  // namespace

double WeightedDistance(const BinaryFeatureDb& db,
                        const std::vector<double>& c, int i, int j) {
  return std::sqrt(
      SymmetricDiffWeight(db.GraphFeatures(i), db.GraphFeatures(j), c));
}

std::vector<double> WeightedDistanceMatrix(const BinaryFeatureDb& db,
                                           const std::vector<double>& c,
                                           int threads) {
  const int n = db.num_graphs();
  std::vector<double> d(static_cast<size_t>(n) * static_cast<size_t>(n), 0.0);
  ParallelFor(
      0, n,
      [&](int i) {
        for (int j = i + 1; j < n; ++j) {
          double v = WeightedDistance(db, c, i, j);
          d[static_cast<size_t>(i) * static_cast<size_t>(n) +
            static_cast<size_t>(j)] = v;
          d[static_cast<size_t>(j) * static_cast<size_t>(n) +
            static_cast<size_t>(i)] = v;
        }
      },
      threads);
  return d;
}

double StressObjective(const BinaryFeatureDb& db, const std::vector<double>& c,
                       const DissimilarityMatrix& delta, int threads) {
  const int n = db.num_graphs();
  GDIM_CHECK(delta.size() == n) << "dissimilarity matrix size mismatch";
  std::vector<double> partial(static_cast<size_t>(n), 0.0);
  ParallelFor(
      0, n,
      [&](int i) {
        double acc = 0.0;
        for (int j = i + 1; j < n; ++j) {
          double diff = WeightedDistance(db, c, i, j) - delta.at(i, j);
          acc += diff * diff;
        }
        partial[static_cast<size_t>(i)] = acc;
      },
      threads);
  double total = 0.0;
  for (double v : partial) total += v;
  return 2.0 * total;  // Eq. (4) sums over ordered pairs
}

double StressObjectiveNaive(const BinaryFeatureDb& db,
                            const std::vector<double>& c,
                            const DissimilarityMatrix& delta) {
  const int n = db.num_graphs();
  const int m = db.num_features();
  GDIM_CHECK(delta.size() == n);
  GDIM_CHECK(static_cast<int>(c.size()) == m);
  double total = 0.0;
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      double d2 = 0.0;
      for (int r = 0; r < m; ++r) {
        double yi = db.Contains(i, r) ? 1.0 : 0.0;
        double yj = db.Contains(j, r) ? 1.0 : 0.0;
        double diff = (yi - yj) * c[static_cast<size_t>(r)];
        d2 += diff * diff;
      }
      double e = std::sqrt(d2) - delta.at(i, j);
      total += e * e;
    }
  }
  return total;
}

double BinaryMappedDistance(const std::vector<uint8_t>& a,
                            const std::vector<uint8_t>& b) {
  GDIM_CHECK(a.size() == b.size()) << "vector width mismatch";
  if (a.empty()) return 0.0;
  int diff = 0;
  for (size_t r = 0; r < a.size(); ++r) {
    diff += (a[r] != b[r]) ? 1 : 0;
  }
  return std::sqrt(static_cast<double>(diff) / static_cast<double>(a.size()));
}

}  // namespace gdim
