#include "core/index.h"

#include <utility>

#include "common/timer.h"
#include "core/dspmap.h"

namespace gdim {

Result<GraphSearchIndex> GraphSearchIndex::Build(const GraphDatabase& db,
                                                 const IndexOptions& options) {
  GraphSearchIndex index;
  index.db_ = db;
  index.options_ = options;

  // Phase 1: mine the candidate feature set F.
  WallTimer timer;
  Result<std::vector<FrequentPattern>> mined =
      MineFrequentSubgraphs(db, options.mining);
  if (!mined.ok()) return mined.status();
  index.stats_.mining_seconds = timer.Seconds();
  index.stats_.mined_features = static_cast<int>(mined.value().size());
  if (mined.value().empty()) {
    return Status::NotFound("no frequent subgraphs at this support");
  }
  BinaryFeatureDb features = BinaryFeatureDb::FromPatterns(
      static_cast<int>(db.size()), mined.value());

  std::unique_ptr<FeatureSelector> selector = MakeSelector(options.selector);
  if (selector == nullptr) {
    return Status::InvalidArgument("unknown selector: " + options.selector);
  }

  // Phase 2: pairwise dissimilarities, only if the selector needs them.
  // DSPMap evaluates δ lazily per partition block instead of the full
  // matrix, so it goes through its own path below.
  DissimilarityMatrix delta;
  const bool is_dspmap = options.selector == "DSPMap";
  if (selector->NeedsDissimilarity() && !is_dspmap) {
    timer.Reset();
    delta = DissimilarityMatrix::Compute(db, options.dissimilarity, {},
                                         options.threads);
    index.stats_.dissimilarity_seconds = timer.Seconds();
  }

  // Phase 3: feature selection (the paper's "indexing time").
  timer.Reset();
  std::vector<int> selected;
  if (is_dspmap) {
    DspmapOptions dopt = options.dspmap;
    dopt.p = options.p;
    dopt.seed = options.seed;
    dopt.dspm.threads = options.threads;
    DspmapResult r = RunDspmap(features, db, options.dissimilarity, dopt);
    selected = std::move(r.selected);
  } else {
    SelectionInput input;
    input.db = &features;
    input.delta = delta.size() > 0 ? &delta : nullptr;
    input.p = options.p;
    input.seed = options.seed;
    input.threads = options.threads;
    input.params = options.params;
    input.dspm = options.dspm;
    input.dspmap = options.dspmap;
    Result<SelectionOutput> out = selector->Select(input);
    if (!out.ok()) return out.status();
    selected = std::move(out->selected);
  }
  index.stats_.selection_seconds = timer.Seconds();
  index.stats_.selected_features = static_cast<int>(selected.size());

  // Phase 4: materialize the dimension and the mapped database. Database
  // vectors come from the mined support sets (no VF2 needed).
  GraphDatabase dimension;
  dimension.reserve(selected.size());
  for (int r : selected) {
    dimension.push_back(features.feature_graphs()[static_cast<size_t>(r)]);
  }
  index.mapper_ = std::make_shared<FeatureMapper>(std::move(dimension));
  index.db_bits_.resize(db.size());
  for (size_t i = 0; i < db.size(); ++i) {
    std::vector<uint8_t> bits(selected.size(), 0);
    for (size_t r = 0; r < selected.size(); ++r) {
      bits[r] = features.Contains(static_cast<int>(i), selected[r]) ? 1 : 0;
    }
    index.db_bits_[i] = std::move(bits);
  }
  index.packed_bits_ = PackedBitMatrix::FromRows(
      index.db_bits_, index.mapper_->num_features());
  return index;
}

Ranking GraphSearchIndex::Query(const Graph& q, int k) const {
  // Packed scan + partial top-k selection; identical output order to
  // TopK(MappedRanking(...), k) without the full n·log n sort.
  std::vector<double> scores;
  packed_bits_.ScoreAll(packed_bits_.PackQuery(MapQuery(q)), &scores);
  return TopKByScores(scores, k);
}

Ranking GraphSearchIndex::QueryExact(const Graph& q, int k) const {
  return TopK(ExactRanking(q, db_, options_.dissimilarity, options_.threads),
              k);
}

std::vector<uint8_t> GraphSearchIndex::MapQuery(const Graph& q) const {
  return mapper_->Map(q);
}

}  // namespace gdim
