#ifndef GDIM_CORE_PACKED_BITS_H_
#define GDIM_CORE_PACKED_BITS_H_

#include <cstdint>
#include <vector>

#include "common/logging.h"

namespace gdim {

/// A binary n×p matrix packed row-major into 64-bit words, the scan layout of
/// the online query path: one database graph's mapped vector per row, rows
/// padded to a whole number of words so every row scan is an aligned
/// word-popcount loop instead of a byte-at-a-time compare.
///
/// The matrix carries its bit width even when it holds no rows, so query
/// validation works for empty databases, and it supports append-only growth
/// (the delta segment of a mutable QueryEngine).
///
/// Distances computed here are bit-identical to the byte-vector reference
/// (BinaryMappedDistance): the Hamming count is exact and the normalized form
/// evaluates the same sqrt(diff / p) expression.
class PackedBitMatrix {
 public:
  PackedBitMatrix() = default;

  /// An empty matrix of known width: AppendRow and PackQuery validate
  /// against num_bits from the start. The delta-segment constructor.
  static PackedBitMatrix WithWidth(int num_bits);

  /// Packs 0/1 byte rows (all the same length) into the word layout. The
  /// width is taken from the first row; an empty `rows` yields width 0 —
  /// pass the width explicitly via the two-argument overload when the
  /// matrix may be empty.
  static PackedBitMatrix FromRows(const std::vector<std::vector<uint8_t>>& rows);

  /// FromRows with an explicit width; every row must have exactly num_bits
  /// bits, and an empty `rows` still produces a width-num_bits matrix.
  static PackedBitMatrix FromRows(const std::vector<std::vector<uint8_t>>& rows,
                                  int num_bits);

  /// Adopts raw packed words already in the scan layout (num_rows rows of
  /// ceil(num_bits / 64) words each, bit r of a row at word r/64, bit r%64).
  /// words.size() must equal num_rows * words_per_row. Padding bits beyond
  /// num_bits in each row's last word are masked to zero, so a matrix built
  /// from untrusted words (a v2 snapshot block read) still computes exact
  /// Hamming distances. The zero-copy load path of QueryEngine::Open.
  static PackedBitMatrix FromWords(int num_rows, int num_bits,
                                   std::vector<uint64_t> words);

  /// Packs one 0/1 byte vector into words (query-side fingerprint packing).
  static std::vector<uint64_t> PackBits(const std::vector<uint8_t>& bits);

  /// PackBits padded to words_per_row() — the query-side form every scan
  /// kernel expects. The width must match the matrix width exactly; an
  /// empty database no longer accepts queries of arbitrary width (build
  /// the matrix with an explicit width for that check to bite).
  std::vector<uint64_t> PackQuery(const std::vector<uint8_t>& bits) const {
    GDIM_CHECK(bits.size() == static_cast<size_t>(num_bits_))
        << "query width " << bits.size()
        << " does not match packed database width " << num_bits_;
    std::vector<uint64_t> words = PackBits(bits);
    words.resize(words_per_row_, 0);
    return words;
  }

  int num_rows() const { return num_rows_; }
  int num_bits() const { return num_bits_; }
  size_t words_per_row() const { return words_per_row_; }

  /// Reserves storage for `rows` total rows (no-op if already larger).
  void Reserve(int rows);

  /// Appends one 0/1 byte row (width must equal num_bits()); returns the
  /// new row's index. Amortized O(p/64) via vector growth.
  int AppendRow(const std::vector<uint8_t>& bits);

  /// Appends a copy of src's row src_row as a word-level copy — no
  /// unpack/repack round trip. Widths must match. The compaction kernel.
  int AppendRowFrom(const PackedBitMatrix& src, int src_row);

  /// Word pointer of row i (words_per_row() words).
  const uint64_t* row(int i) const {
    GDIM_DCHECK(i >= 0 && i < num_rows_);
    return words_.data() + static_cast<size_t>(i) * words_per_row_;
  }

  /// Bit (row, bit) as stored; for tests and bit-exact comparisons.
  bool GetBit(int row_id, int bit) const;

  /// Row i back as a 0/1 byte vector of num_bits() entries (snapshots,
  /// compaction, and round-trip tests).
  std::vector<uint8_t> UnpackRow(int row_id) const;

  /// Hamming distance between a packed query (from PackBits, same width) and
  /// row i.
  int HammingDistance(const std::vector<uint64_t>& query, int row_id) const;

  /// Normalized Euclidean distance sqrt(hamming / p) to row i; equals
  /// BinaryMappedDistance on the unpacked vectors bit for bit.
  double NormalizedDistance(const std::vector<uint64_t>& query,
                            int row_id) const;

  /// Scores every row against the packed query into *scores (resized to
  /// num_rows()). The full-scan kernel of the serving hot path.
  void ScoreAll(const std::vector<uint64_t>& query,
                std::vector<double>* scores) const;

  /// ScoreAll into a caller-owned buffer of num_rows() doubles, so a
  /// multi-segment engine can scan base + delta into one score vector
  /// without a concatenating copy. Runs on the process's ActiveScanKernel()
  /// in cache-resident row blocks; every kernel is bit-identical to scalar
  /// (exact integer Hamming counts, one shared sqrt(diff/p) conversion).
  void ScoreAllInto(const std::vector<uint64_t>& query, double* out) const;

  /// Multi-query ScoreAllInto: scores num_queries packed queries (each
  /// words_per_row() words, from PackQuery) in one pass over the rows —
  /// outs[q][i] gets row i's score against queries[q]. The block-tiled
  /// batch-scan kernel: a row block is loaded once and XORed against every
  /// query while cache-resident, instead of once per query.
  void ScoreAllMultiInto(const uint64_t* const* queries, int num_queries,
                         double* const* outs) const;

  /// Scores only the given rows, writing scores[j] for candidates[j]
  /// (*scores resized to candidates.size()). The post-prefilter kernel.
  void ScoreSubset(const std::vector<uint64_t>& query,
                   const std::vector<int>& candidates,
                   std::vector<double>* scores) const;

 private:
  int num_rows_ = 0;
  int num_bits_ = 0;
  size_t words_per_row_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace gdim

#endif  // GDIM_CORE_PACKED_BITS_H_
