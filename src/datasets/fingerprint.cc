#include "datasets/fingerprint.h"

#include <algorithm>

#include "common/logging.h"
#include "isomorphism/vf2.h"
#include "mining/gspan.h"

namespace gdim {

Result<FingerprintDictionary> FingerprintDictionary::Build(
    const GraphDatabase& sample, int max_bits, double min_support,
    int max_pattern_edges) {
  if (max_bits <= 0) {
    return Status::InvalidArgument("max_bits must be positive");
  }
  MiningOptions mining;
  mining.min_support = min_support;
  mining.max_edges = max_pattern_edges;
  Result<std::vector<FrequentPattern>> mined =
      MineFrequentSubgraphs(sample, mining);
  if (!mined.ok()) return mined.status();

  std::vector<FrequentPattern> patterns = std::move(mined).value();
  if (patterns.empty()) {
    return Status::NotFound("expert sample yields no dictionary patterns");
  }
  // Larger patterns are the informative ones (the tiny ones are contained in
  // nearly everything); prefer them, break ties by rarity then DFS code.
  std::stable_sort(patterns.begin(), patterns.end(),
                   [](const FrequentPattern& a, const FrequentPattern& b) {
                     if (a.graph.NumEdges() != b.graph.NumEdges()) {
                       return a.graph.NumEdges() > b.graph.NumEdges();
                     }
                     return a.support.size() < b.support.size();
                   });
  if (static_cast<int>(patterns.size()) > max_bits) {
    patterns.resize(static_cast<size_t>(max_bits));
  }
  FingerprintDictionary dict;
  dict.patterns_.reserve(patterns.size());
  for (FrequentPattern& p : patterns) {
    dict.patterns_.push_back(std::move(p.graph));
  }
  return dict;
}

std::vector<uint8_t> FingerprintDictionary::Fingerprint(
    const Graph& g) const {
  std::vector<uint8_t> fp(patterns_.size(), 0);
  for (size_t r = 0; r < patterns_.size(); ++r) {
    fp[r] = IsSubgraphIsomorphic(patterns_[r], g) ? 1 : 0;
  }
  return fp;
}

double TanimotoSimilarity(const std::vector<uint8_t>& a,
                          const std::vector<uint8_t>& b) {
  GDIM_CHECK(a.size() == b.size()) << "fingerprint width mismatch";
  int inter = 0, uni = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    bool ba = a[i] != 0, bb = b[i] != 0;
    inter += (ba && bb) ? 1 : 0;
    uni += (ba || bb) ? 1 : 0;
  }
  if (uni == 0) return 1.0;
  return static_cast<double>(inter) / uni;
}

}  // namespace gdim
