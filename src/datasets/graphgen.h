#ifndef GDIM_DATASETS_GRAPHGEN_H_
#define GDIM_DATASETS_GRAPHGEN_H_

#include <cstdint>

#include "graph/graph.h"

namespace gdim {

/// Parameters of the synthetic generator, mirroring GraphGen (Cheng, Ke, Ng)
/// as parameterized in the paper's Section 6: average edge count, number of
/// distinct vertex labels, and average density 2|E|/(|V|(|V|−1)).
struct GraphGenOptions {
  int num_graphs = 1000;
  double avg_edges = 20.0;
  int num_vertex_labels = 20;
  int num_edge_labels = 3;
  double density = 0.2;

  /// Zipf exponent of the label distribution. 0 = uniform. Real transaction
  /// generators draw labels from a skewed distribution; with 20 uniform
  /// labels virtually no subgraph is frequent at τ=5%, while a mild skew
  /// reproduces the paper's observation that the synthetic dataset mines
  /// *more* frequent subgraphs than the chemical one.
  double label_zipf = 1.0;

  uint64_t seed = 1;
};

/// Generates num_graphs random connected undirected labeled graphs. Each
/// graph draws its edge count near avg_edges (±20%), derives its vertex
/// count from the density target, builds a random spanning tree, then adds
/// random non-duplicate edges. Deterministic in the seed.
GraphDatabase GenerateSyntheticDatabase(const GraphGenOptions& options);

}  // namespace gdim

#endif  // GDIM_DATASETS_GRAPHGEN_H_
