#include "datasets/chemgen.h"

#include <algorithm>

#include "common/logging.h"
#include "common/random.h"

namespace gdim {

namespace {

// Atom distribution for substituent positions (scaffold cores are carbon).
LabelId DrawHeteroAtom(Rng* rng) {
  double r = rng->UniformDouble();
  if (r < 0.55) return kCarbon;
  if (r < 0.72) return kNitrogen;
  if (r < 0.89) return kOxygen;
  if (r < 0.93) return kSulfur;
  if (r < 0.95) return kPhosphorus;
  if (r < 0.98) return kFluorine;
  return kChlorine;
}

// A scaffold family: a fixed ring system plus style parameters that shape
// its members.
struct Family {
  Graph scaffold;
  double chain_prob = 0.6;     // probability of growing a chain per site
  double hetero_bias = 0.3;    // how often substituents are heteroatoms
  double double_bond_prob = 0.2;
  int preferred_chain_len = 2;
};

// Builds a ring of `size` carbons; aromatic for 6-rings (benzene-like),
// single/double alternating flavor for 5-rings.
Graph MakeRing(int size, bool aromatic, Rng* rng) {
  Graph g;
  for (int i = 0; i < size; ++i) {
    // Occasionally a ring heteroatom (pyridine/furan-like).
    LabelId label = rng->Bernoulli(0.15)
                        ? (rng->Bernoulli(0.5) ? kNitrogen : kOxygen)
                        : kCarbon;
    g.AddVertex(label);
  }
  for (int i = 0; i < size; ++i) {
    LabelId bond = aromatic ? kAromatic
                            : (i % 2 == 0 && rng->Bernoulli(0.5) ? kDouble
                                                                 : kSingle);
    g.AddEdge(i, (i + 1) % size, bond);
  }
  return g;
}

Family MakeFamily(uint64_t family_seed) {
  Rng rng(family_seed);
  Family fam;
  int ring_size = rng.Bernoulli(0.7) ? 6 : 5;
  bool aromatic = ring_size == 6 && rng.Bernoulli(0.8);
  fam.scaffold = MakeRing(ring_size, aromatic, &rng);
  // Optionally fuse a second ring sharing one edge (naphthalene-like).
  if (rng.Bernoulli(0.4)) {
    int extra = rng.Bernoulli(0.7) ? 4 : 3;  // completes a 6- or 5-ring
    int a = 0, b = 1;                        // fuse across edge {0,1}
    int prev = a;
    for (int i = 0; i < extra; ++i) {
      int v = fam.scaffold.AddVertex(kCarbon);
      fam.scaffold.AddEdge(prev, v, aromatic ? kAromatic : kSingle);
      prev = v;
    }
    fam.scaffold.AddEdge(prev, b, aromatic ? kAromatic : kSingle);
  }
  fam.chain_prob = 0.3 + 0.5 * rng.UniformDouble();
  fam.hetero_bias = 0.15 + 0.4 * rng.UniformDouble();
  fam.double_bond_prob = 0.1 + 0.25 * rng.UniformDouble();
  fam.preferred_chain_len = rng.UniformInt(1, 3);
  return fam;
}

// Grows one molecule from its family scaffold up to the vertex budget.
Graph MakeMolecule(const Family& fam, int min_vertices, int max_vertices,
                   Rng* rng) {
  Graph g = fam.scaffold;
  int budget = rng->UniformInt(min_vertices, max_vertices);
  // Attachment sites: scaffold vertices in random order.
  std::vector<VertexId> sites;
  for (VertexId v = 0; v < g.NumVertices(); ++v) sites.push_back(v);
  rng->Shuffle(&sites);

  for (VertexId site : sites) {
    if (g.NumVertices() >= budget) break;
    if (!rng->Bernoulli(fam.chain_prob)) continue;
    // Grow a chain from this site.
    int len = std::max(1, fam.preferred_chain_len + rng->UniformInt(-1, 1));
    VertexId prev = site;
    for (int i = 0; i < len && g.NumVertices() < budget; ++i) {
      LabelId atom = rng->Bernoulli(fam.hetero_bias) ? DrawHeteroAtom(rng)
                                                     : kCarbon;
      LabelId bond = rng->Bernoulli(fam.double_bond_prob) ? kDouble : kSingle;
      VertexId v = g.AddVertex(atom);
      g.AddEdge(prev, v, bond);
      prev = v;
    }
    // Occasional branch at the chain end.
    if (g.NumVertices() < budget && rng->Bernoulli(0.3)) {
      VertexId v = g.AddVertex(DrawHeteroAtom(rng));
      g.AddEdge(prev, v, kSingle);
    }
  }
  // Top up with single pendant atoms if below the minimum.
  while (g.NumVertices() < min_vertices) {
    VertexId anchor = static_cast<VertexId>(
        rng->UniformU64(static_cast<uint64_t>(g.NumVertices())));
    VertexId v = g.AddVertex(DrawHeteroAtom(rng));
    g.AddEdge(anchor, v, kSingle);
  }
  return g;
}

GraphDatabase Generate(const ChemGenOptions& options, uint64_t stream,
                       int count) {
  GDIM_CHECK(options.num_families >= 1);
  GDIM_CHECK(options.min_vertices >= 3);
  GDIM_CHECK(options.max_vertices >= options.min_vertices);
  // Families are derived from the base seed only, so database and query
  // streams share the same family pool.
  std::vector<Family> families;
  families.reserve(static_cast<size_t>(options.num_families));
  for (int f = 0; f < options.num_families; ++f) {
    families.push_back(
        MakeFamily(options.seed * 1000003ULL + static_cast<uint64_t>(f)));
  }
  Rng rng(options.seed ^ (0xABCDEF1234567ULL + stream));
  GraphDatabase db;
  db.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    const Family& fam = families[static_cast<size_t>(
        rng.UniformU64(static_cast<uint64_t>(families.size())))];
    Graph g = MakeMolecule(fam, options.min_vertices, options.max_vertices,
                           &rng);
    g.set_id(i);
    db.push_back(std::move(g));
  }
  return db;
}

}  // namespace

LabelMap ChemAtomNames() {
  LabelMap m;
  m.Intern("C");
  m.Intern("N");
  m.Intern("O");
  m.Intern("S");
  m.Intern("P");
  m.Intern("F");
  m.Intern("Cl");
  return m;
}

LabelMap ChemBondNames() {
  LabelMap m;
  m.Intern("single");
  m.Intern("double");
  m.Intern("aromatic");
  return m;
}

GraphDatabase GenerateChemDatabase(const ChemGenOptions& options) {
  return Generate(options, /*stream=*/0, options.num_graphs);
}

GraphDatabase GenerateChemQueries(const ChemGenOptions& options,
                                  int num_queries) {
  return Generate(options, /*stream=*/1, num_queries);
}

}  // namespace gdim
