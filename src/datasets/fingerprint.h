#ifndef GDIM_DATASETS_FINGERPRINT_H_
#define GDIM_DATASETS_FINGERPRINT_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "graph/graph.h"

namespace gdim {

/// A dictionary-based binary fingerprint in the spirit of the PubChem 881-bit
/// fingerprint the paper uses as its effectiveness benchmark: a fixed
/// dictionary of substructures; bit r of a graph's fingerprint is set iff
/// dictionary pattern r is a subgraph of it. Similarity between fingerprints
/// is the Tanimoto score.
///
/// The real dictionary was hand-curated by chemists over years; we substitute
/// a data-driven dictionary mined (gSpan, size-bounded) from an "expert
/// sample" of graphs, which plays the same role in the evaluation.
class FingerprintDictionary {
 public:
  /// Builds a dictionary of at most max_bits patterns from a sample.
  /// min_support is the mining threshold inside the sample; patterns are
  /// ordered canonically (DFS-lexicographic) and truncated to max_bits,
  /// preferring larger (more informative) patterns first.
  static Result<FingerprintDictionary> Build(const GraphDatabase& sample,
                                             int max_bits = 881,
                                             double min_support = 0.05,
                                             int max_pattern_edges = 6);

  /// Number of bits (patterns) in the dictionary.
  int bits() const { return static_cast<int>(patterns_.size()); }

  const GraphDatabase& patterns() const { return patterns_; }

  /// Computes the binary fingerprint of g (one byte per bit, value 0/1).
  std::vector<uint8_t> Fingerprint(const Graph& g) const;

 private:
  GraphDatabase patterns_;
};

/// Tanimoto similarity |a ∧ b| / |a ∨ b| ∈ [0,1]; two all-zero fingerprints
/// are defined to have similarity 1 (indistinguishable by the dictionary).
double TanimotoSimilarity(const std::vector<uint8_t>& a,
                          const std::vector<uint8_t>& b);

}  // namespace gdim

#endif  // GDIM_DATASETS_FINGERPRINT_H_
