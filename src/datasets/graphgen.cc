#include "datasets/graphgen.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/random.h"

namespace gdim {

namespace {

// Vertex count matching the density target for the given edge count:
// density = 2E / (V(V−1))  =>  V² − V − 2E/density = 0.
int VertexCountFor(double edges, double density) {
  double v = (1.0 + std::sqrt(1.0 + 8.0 * edges / density)) / 2.0;
  return std::max(2, static_cast<int>(std::lround(v)));
}

// Cumulative Zipf(s) weights over k labels (uniform when s == 0).
std::vector<double> ZipfWeights(int k, double s) {
  std::vector<double> w(static_cast<size_t>(k));
  for (int i = 0; i < k; ++i) {
    w[static_cast<size_t>(i)] = 1.0 / std::pow(i + 1.0, s);
  }
  return w;
}

}  // namespace

GraphDatabase GenerateSyntheticDatabase(const GraphGenOptions& options) {
  GDIM_CHECK(options.num_graphs >= 0);
  GDIM_CHECK(options.avg_edges >= 1.0);
  GDIM_CHECK(options.num_vertex_labels >= 1);
  GDIM_CHECK(options.num_edge_labels >= 1);
  GDIM_CHECK(options.density > 0.0 && options.density <= 1.0);

  Rng rng(options.seed);
  std::vector<double> vlabel_weights =
      ZipfWeights(options.num_vertex_labels, options.label_zipf);
  std::vector<double> elabel_weights =
      ZipfWeights(options.num_edge_labels, options.label_zipf);
  auto draw_vlabel = [&]() {
    return static_cast<LabelId>(rng.WeightedIndex(vlabel_weights));
  };
  auto draw_elabel = [&]() {
    return static_cast<LabelId>(rng.WeightedIndex(elabel_weights));
  };
  GraphDatabase db;
  db.reserve(static_cast<size_t>(options.num_graphs));
  for (int gi = 0; gi < options.num_graphs; ++gi) {
    // Edge count jitter of ±20% around the average, at least a tree.
    double jitter = 0.8 + 0.4 * rng.UniformDouble();
    int target_edges =
        std::max(1, static_cast<int>(std::lround(options.avg_edges * jitter)));
    int n = VertexCountFor(target_edges, options.density);
    int max_edges = n * (n - 1) / 2;
    target_edges = std::clamp(target_edges, n - 1, max_edges);

    Graph g;
    g.set_id(gi);
    for (int v = 0; v < n; ++v) g.AddVertex(draw_vlabel());
    // Random spanning tree: connect each new vertex to a random earlier one.
    for (int v = 1; v < n; ++v) {
      int u = static_cast<int>(rng.UniformU64(static_cast<uint64_t>(v)));
      g.AddEdge(u, v, draw_elabel());
    }
    // Extra random edges up to the target.
    int guard = 0;
    while (g.NumEdges() < target_edges && guard < 50 * target_edges) {
      ++guard;
      int u = static_cast<int>(rng.UniformU64(static_cast<uint64_t>(n)));
      int v = static_cast<int>(rng.UniformU64(static_cast<uint64_t>(n)));
      if (u == v || g.HasEdge(u, v)) continue;
      g.AddEdge(u, v, draw_elabel());
    }
    db.push_back(std::move(g));
  }
  return db;
}

}  // namespace gdim
