#ifndef GDIM_DATASETS_CHEMGEN_H_
#define GDIM_DATASETS_CHEMGEN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "graph/label_map.h"

namespace gdim {

/// Atom label ids used by the chemical generator (index = LabelId).
/// Distribution roughly follows small-molecule statistics; carbon dominates.
enum ChemAtom : LabelId {
  kCarbon = 0,
  kNitrogen = 1,
  kOxygen = 2,
  kSulfur = 3,
  kPhosphorus = 4,
  kFluorine = 5,
  kChlorine = 6,
};

/// Bond label ids used by the chemical generator.
enum ChemBond : LabelId {
  kSingle = 0,
  kDouble = 1,
  kAromatic = 2,
};

/// Human-readable names for the chemical label alphabets, for examples and
/// debug output.
LabelMap ChemAtomNames();
LabelMap ChemBondNames();

/// Parameters of the PubChem-substitute molecule generator.
///
/// Molecules are drawn from `num_families` scaffold families: each family
/// fixes a ring scaffold (5/6-ring, optionally fused) plus characteristic
/// substituent style; members mutate chains and substitutions. Families give
/// the database the natural cluster structure of real compound data, which
/// the paper leans on when explaining NDFS vs MCFS behaviour.
struct ChemGenOptions {
  int num_graphs = 1000;
  int num_families = 25;
  int min_vertices = 10;
  int max_vertices = 20;
  uint64_t seed = 1;
};

/// Generates a molecule-like graph database (undirected, atom vertex labels,
/// bond edge labels, connected, 10–20 vertices by default). Deterministic in
/// the seed.
GraphDatabase GenerateChemDatabase(const ChemGenOptions& options);

/// Convenience: generates a query workload from the same family pool (same
/// options but a different stream), so queries are unseen graphs that still
/// resemble the database — the paper's query-set construction.
GraphDatabase GenerateChemQueries(const ChemGenOptions& options,
                                  int num_queries);

}  // namespace gdim

#endif  // GDIM_DATASETS_CHEMGEN_H_
