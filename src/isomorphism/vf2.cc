#include "isomorphism/vf2.h"

#include <algorithm>
#include <functional>
#include <map>

#include "graph/graph_utils.h"

namespace gdim {

namespace {

// Backtracking engine shared by the exists/find/count entry points.
class Vf2Engine {
 public:
  Vf2Engine(const Graph& pattern, const Graph& target,
            const SubgraphIsoOptions& options)
      : pattern_(pattern), target_(target), options_(options) {}

  // Runs the search. visit is called with the complete mapping for every
  // embedding found; return true from visit to stop early.
  void Run(const std::function<bool(const std::vector<VertexId>&)>& visit) {
    visit_ = &visit;
    if (!CheapReject()) {
      order_ = BuildOrder();
      mapping_.assign(static_cast<size_t>(pattern_.NumVertices()), -1);
      used_.assign(static_cast<size_t>(target_.NumVertices()), false);
      Extend(0);
    }
  }

  uint64_t nodes() const { return nodes_; }
  bool aborted() const { return aborted_; }

 private:
  // Histogram-based pre-filters: every pattern vertex label and edge triple
  // must be available in the target with sufficient multiplicity.
  bool CheapReject() const {
    if (pattern_.NumVertices() > target_.NumVertices()) return true;
    if (pattern_.NumEdges() > target_.NumEdges()) return true;
    auto pv = VertexLabelHistogram(pattern_);
    auto tv = VertexLabelHistogram(target_);
    for (const auto& [label, count] : pv) {
      auto it = tv.find(label);
      if (it == tv.end() || it->second < count) return true;
    }
    auto pe = EdgeTripleHistogram(pattern_);
    auto te = EdgeTripleHistogram(target_);
    for (const auto& [triple, count] : pe) {
      auto it = te.find(triple);
      if (it == te.end() || it->second < count) return true;
    }
    return false;
  }

  // Connectivity-aware static variable order: start from the highest-degree
  // vertex, repeatedly pick the unordered vertex with the most already-
  // ordered neighbors (ties: higher degree). Handles disconnected patterns.
  std::vector<VertexId> BuildOrder() const {
    int n = pattern_.NumVertices();
    std::vector<VertexId> order;
    order.reserve(static_cast<size_t>(n));
    std::vector<bool> placed(static_cast<size_t>(n), false);
    std::vector<int> linked(static_cast<size_t>(n), 0);
    for (int step = 0; step < n; ++step) {
      int best = -1;
      for (VertexId v = 0; v < n; ++v) {
        if (placed[static_cast<size_t>(v)]) continue;
        if (best < 0 ||
            linked[static_cast<size_t>(v)] > linked[static_cast<size_t>(best)] ||
            (linked[static_cast<size_t>(v)] ==
                 linked[static_cast<size_t>(best)] &&
             pattern_.Degree(v) > pattern_.Degree(best))) {
          best = v;
        }
      }
      placed[static_cast<size_t>(best)] = true;
      order.push_back(best);
      for (const AdjEntry& e : pattern_.Neighbors(best)) {
        ++linked[static_cast<size_t>(e.neighbor)];
      }
    }
    return order;
  }

  bool Feasible(VertexId pv, VertexId tv) const {
    if (pattern_.VertexLabel(pv) != target_.VertexLabel(tv)) return false;
    if (pattern_.Degree(pv) > target_.Degree(tv)) return false;
    // Every already-mapped pattern neighbor must be a target neighbor with
    // the same edge label.
    for (const AdjEntry& e : pattern_.Neighbors(pv)) {
      VertexId mapped = mapping_[static_cast<size_t>(e.neighbor)];
      if (mapped < 0) continue;
      EdgeId te = target_.FindEdge(tv, mapped);
      if (te < 0) return false;
      if (target_.GetEdge(te).label != e.edge_label) return false;
    }
    if (options_.induced) {
      // Mapped pattern non-neighbors must not be adjacent to tv.
      for (VertexId other = 0; other < pattern_.NumVertices(); ++other) {
        VertexId mapped = mapping_[static_cast<size_t>(other)];
        if (mapped < 0 || other == pv) continue;
        bool p_adj = pattern_.HasEdge(pv, other);
        bool t_adj = target_.HasEdge(tv, mapped);
        if (!p_adj && t_adj) return false;
      }
    }
    return true;
  }

  // Returns true when the search should stop (found + visitor said stop, or
  // node budget exhausted).
  bool Extend(size_t depth) {
    if (options_.max_nodes != 0 && nodes_ >= options_.max_nodes) {
      aborted_ = true;
      return true;
    }
    ++nodes_;
    if (depth == order_.size()) {
      return (*visit_)(mapping_);
    }
    VertexId pv = order_[depth];
    // Candidate generation: if some neighbor of pv is mapped, only the
    // target neighbors of its image are viable — much smaller than V(t).
    VertexId anchor = -1;
    for (const AdjEntry& e : pattern_.Neighbors(pv)) {
      if (mapping_[static_cast<size_t>(e.neighbor)] >= 0) {
        anchor = mapping_[static_cast<size_t>(e.neighbor)];
        break;
      }
    }
    if (anchor >= 0) {
      for (const AdjEntry& e : target_.Neighbors(anchor)) {
        VertexId tv = e.neighbor;
        if (used_[static_cast<size_t>(tv)]) continue;
        if (!Feasible(pv, tv)) continue;
        if (TryMap(pv, tv, depth)) return true;
      }
    } else {
      for (VertexId tv = 0; tv < target_.NumVertices(); ++tv) {
        if (used_[static_cast<size_t>(tv)]) continue;
        if (!Feasible(pv, tv)) continue;
        if (TryMap(pv, tv, depth)) return true;
      }
    }
    return false;
  }

  bool TryMap(VertexId pv, VertexId tv, size_t depth) {
    mapping_[static_cast<size_t>(pv)] = tv;
    used_[static_cast<size_t>(tv)] = true;
    bool stop = Extend(depth + 1);
    mapping_[static_cast<size_t>(pv)] = -1;
    used_[static_cast<size_t>(tv)] = false;
    return stop;
  }

  const Graph& pattern_;
  const Graph& target_;
  SubgraphIsoOptions options_;
  const std::function<bool(const std::vector<VertexId>&)>* visit_ = nullptr;
  std::vector<VertexId> order_;
  std::vector<VertexId> mapping_;
  std::vector<bool> used_;
  uint64_t nodes_ = 0;
  bool aborted_ = false;
};

}  // namespace

bool IsSubgraphIsomorphic(const Graph& pattern, const Graph& target,
                          const SubgraphIsoOptions& options,
                          SubgraphIsoStats* stats) {
  bool found = false;
  Vf2Engine engine(pattern, target, options);
  engine.Run([&found](const std::vector<VertexId>&) {
    found = true;
    return true;  // stop at first embedding
  });
  if (stats != nullptr) {
    stats->nodes = engine.nodes();
    stats->aborted = engine.aborted();
  }
  return found;
}

bool FindSubgraphEmbedding(const Graph& pattern, const Graph& target,
                           std::vector<VertexId>* mapping,
                           const SubgraphIsoOptions& options,
                           SubgraphIsoStats* stats) {
  bool found = false;
  Vf2Engine engine(pattern, target, options);
  engine.Run([&found, mapping](const std::vector<VertexId>& m) {
    found = true;
    *mapping = m;
    return true;
  });
  if (stats != nullptr) {
    stats->nodes = engine.nodes();
    stats->aborted = engine.aborted();
  }
  return found;
}

uint64_t CountSubgraphEmbeddings(const Graph& pattern, const Graph& target,
                                 const SubgraphIsoOptions& options) {
  uint64_t count = 0;
  Vf2Engine engine(pattern, target, options);
  engine.Run([&count](const std::vector<VertexId>&) {
    ++count;
    return false;  // keep enumerating
  });
  return count;
}

bool AreGraphsIsomorphic(const Graph& a, const Graph& b) {
  if (a.NumVertices() != b.NumVertices()) return false;
  if (a.NumEdges() != b.NumEdges()) return false;
  // With equal sizes, a non-induced embedding is automatically bijective and
  // edge counts force it to be an isomorphism.
  return IsSubgraphIsomorphic(a, b);
}

}  // namespace gdim
