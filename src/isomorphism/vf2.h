#ifndef GDIM_ISOMORPHISM_VF2_H_
#define GDIM_ISOMORPHISM_VF2_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace gdim {

/// Options for the subgraph isomorphism search.
struct SubgraphIsoOptions {
  /// If true, require an induced embedding (non-adjacent pattern vertices
  /// must map to non-adjacent target vertices). The paper's containment
  /// relation f ⊆ g is the standard non-induced monomorphism, the default.
  bool induced = false;

  /// Safety valve on backtracking nodes; 0 means unlimited. The graphs in
  /// this problem domain are tiny, so the default is effectively unlimited.
  uint64_t max_nodes = 0;
};

/// Statistics from one search, for benchmarking and tests.
struct SubgraphIsoStats {
  uint64_t nodes = 0;       ///< Backtracking tree nodes visited.
  bool aborted = false;     ///< True if max_nodes was hit.
};

/// Decides whether pattern is (non-induced by default) subgraph isomorphic
/// to target, matching vertex and edge labels exactly. Empty patterns embed
/// trivially. Implements a VF2-flavoured backtracking with connectivity-
/// aware variable ordering and label/degree pruning.
bool IsSubgraphIsomorphic(const Graph& pattern, const Graph& target,
                          const SubgraphIsoOptions& options = {},
                          SubgraphIsoStats* stats = nullptr);

/// Like IsSubgraphIsomorphic, and on success fills *mapping with the image
/// of each pattern vertex in target. mapping is untouched on failure.
bool FindSubgraphEmbedding(const Graph& pattern, const Graph& target,
                           std::vector<VertexId>* mapping,
                           const SubgraphIsoOptions& options = {},
                           SubgraphIsoStats* stats = nullptr);

/// Counts all embeddings (distinct vertex mappings). Exponential in the
/// worst case; intended for tests on small graphs.
uint64_t CountSubgraphEmbeddings(const Graph& pattern, const Graph& target,
                                 const SubgraphIsoOptions& options = {});

/// True iff a and b are isomorphic as labeled graphs (same vertex count and
/// a bijective embedding both ways; implemented as size check + one-way
/// embedding with induced semantics and equal edge counts).
bool AreGraphsIsomorphic(const Graph& a, const Graph& b);

}  // namespace gdim

#endif  // GDIM_ISOMORPHISM_VF2_H_
