#include "serve/query_engine.h"

#include <algorithm>
#include <limits>
#include <memory>
#include <numeric>
#include <string>
#include <utility>

#include "common/logging.h"
#include "common/parallel.h"
#include "common/timer.h"
#include "core/binary_db.h"
#include "core/kernels/scan_kernel.h"

namespace gdim {

namespace {

/// Sentinel score for tombstoned rows on the full-scan path. Real scores are
/// finite (sqrt(diff/p) ∈ [0, 1]), so the sentinel sorts strictly last and
/// can never displace a live row from the top-k.
constexpr double kRemovedScore = std::numeric_limits<double>::infinity();

}  // namespace

Result<QueryEngine> QueryEngine::FromIndex(PersistedIndex index,
                                           ServeOptions options) {
  const size_t p = index.features.size();
  for (size_t i = 0; i < index.db_bits.size(); ++i) {
    if (index.db_bits[i].size() != p) {
      return Status::InvalidArgument(
          "index row " + std::to_string(i) + " has " +
          std::to_string(index.db_bits[i].size()) + " bits, expected " +
          std::to_string(p));
    }
  }
  PackedIndex packed;
  packed.rows =
      PackedBitMatrix::FromRows(index.db_bits, static_cast<int>(p));
  packed.features = std::move(index.features);
  packed.ids = std::move(index.ids);
  packed.next_id = index.next_id;
  return FromPacked(std::move(packed), options);
}

Result<QueryEngine> QueryEngine::FromPacked(PackedIndex index,
                                            ServeOptions options) {
  const int p = static_cast<int>(index.features.size());
  if (index.rows.num_bits() != p) {
    return Status::InvalidArgument(
        "packed rows are " + std::to_string(index.rows.num_bits()) +
        " bits wide, feature dimension is " + std::to_string(p));
  }
  const int n = index.rows.num_rows();
  if (!index.ids.empty()) {
    if (index.ids.size() != static_cast<size_t>(n)) {
      return Status::InvalidArgument("index id count does not match rows");
    }
    for (size_t i = 0; i < index.ids.size(); ++i) {
      if (index.ids[i] < 0 ||
          (i > 0 && index.ids[i] <= index.ids[i - 1])) {
        return Status::InvalidArgument("index ids must be strictly ascending");
      }
    }
    // next_id_ = ids.back() + 1 must stay representable.
    if (index.ids.back() == std::numeric_limits<int>::max()) {
      return Status::InvalidArgument("index id out of range");
    }
  }
  const int64_t min_next_id = index.ids.empty()
                                  ? static_cast<int64_t>(n)
                                  : int64_t{index.ids.back()} + 1;
  if (index.next_id >= 0 && index.next_id < min_next_id) {
    return Status::InvalidArgument("index next_id must exceed every id");
  }
  QueryEngine engine;
  engine.options_ = options;
  engine.base_ =
      std::make_shared<const PackedBitMatrix>(std::move(index.rows));
  engine.delta_ = PackedBitMatrix::WithWidth(p);
  engine.tombstones_.assign(static_cast<size_t>(n), 0);
  engine.alive_ = n;
  if (index.ids.empty()) {
    engine.row_ids_.resize(static_cast<size_t>(n));
    std::iota(engine.row_ids_.begin(), engine.row_ids_.end(), 0);
  } else {
    engine.row_ids_ = std::move(index.ids);
  }
  // Resume the persisted id counter when present (so ids of removed graphs
  // are never re-issued after a reload); otherwise derive it.
  engine.next_id_ =
      index.next_id >= 0 ? index.next_id : static_cast<int>(min_next_id);
  // The inverted lists only serve the prefilter; skip the O(n·p) pass and
  // their memory when it is disabled.
  if (options.containment_prefilter) {
    engine.supports_.assign(static_cast<size_t>(p), {});
    for (int row = 0; row < n; ++row) {
      const std::vector<uint8_t> bits = engine.base_->UnpackRow(row);
      for (int r = 0; r < p; ++r) {
        if (bits[static_cast<size_t>(r)] != 0) {
          engine.supports_[static_cast<size_t>(r)].push_back(row);
        }
      }
    }
  }
  if (index.ivf.has_value()) {
    // Adopt the persisted IVF layout instead of re-clustering: reload skips
    // the O(n·sqrt(n)) Build. Snapshot postings are in external-id space
    // and may span a different shard partition than this engine's, so keep
    // exactly the buckets holding ids this engine owns, mapped to local
    // physical rows. Relative bucket order is preserved, so at an unchanged
    // shard count the probe's (distance, bucket id) ranking reproduces the
    // snapshotted engine's exactly.
    const PersistedIvf& persisted = *index.ivf;
    if (persisted.num_bits != p) {
      return Status::InvalidArgument("IVF width does not match the index");
    }
    const size_t wpc = engine.base_->words_per_row();
    std::vector<uint64_t> centroid_words;
    std::vector<std::vector<int>> postings;
    std::vector<uint8_t> seen(static_cast<size_t>(n), 0);
    int covered = 0;
    for (const PersistedIvfBucket& bucket : persisted.buckets) {
      if (bucket.centroid_words.size() != wpc) {
        return Status::InvalidArgument(
            "IVF centroid stride does not match width");
      }
      std::vector<int> rows;
      for (const int id : bucket.ids) {
        const auto it = std::lower_bound(engine.row_ids_.begin(),
                                         engine.row_ids_.end(), id);
        if (it == engine.row_ids_.end() || *it != id) {
          continue;  // another shard's row under this partition
        }
        const int row = static_cast<int>(it - engine.row_ids_.begin());
        if (seen[static_cast<size_t>(row)] != 0) {
          return Status::InvalidArgument("duplicate IVF posting id");
        }
        seen[static_cast<size_t>(row)] = 1;
        ++covered;
        // Bucket ids ascend and the id→row map is monotone, so each
        // adopted posting list stays sorted, as Probe requires.
        rows.push_back(row);
      }
      if (rows.empty()) continue;  // no rows of this engine's partition
      centroid_words.insert(centroid_words.end(),
                            bucket.centroid_words.begin(),
                            bucket.centroid_words.end());
      postings.push_back(std::move(rows));
    }
    // Strict coverage: every owned row reachable by some probe, or
    // NPROBE=all would silently diverge from MODE=full after a restart.
    if (covered != n) {
      return Status::InvalidArgument(
          "IVF postings do not cover this engine's rows");
    }
    // Count first: the by-value parameter's move-construction below is
    // unsequenced with the other argument's postings.size() read.
    const int num_buckets = static_cast<int>(postings.size());
    engine.ivf_ = IvfIndex::FromParts(
        PackedBitMatrix::FromWords(num_buckets, p, std::move(centroid_words)),
        std::move(postings));
  } else {
    // No persisted layout: the IVF index is rebuilt with the engine — which
    // is exactly what gives a generation swap fresh clusters over the
    // refreshed fingerprints (zero stale buckets by construction).
    engine.ivf_ = IvfIndex::Build(*engine.base_, options.ivf_buckets);
  }
  if (index.meta.has_value()) {
    // Resume the persisted mutation epoch so epoch-keyed consumers (the
    // result cache) never mistake a pre-restart answer for a fresh one.
    engine.epoch_ = index.meta->epoch;
  }
  engine.mapper_ = FeatureMapper(std::move(index.features));
  return engine;
}

Result<QueryEngine> QueryEngine::Open(const std::string& index_path,
                                      ServeOptions options) {
  // The packed reader adopts a v2 snapshot's word block as the base segment
  // in one block read — cold start never round-trips through byte rows.
  Result<PackedIndex> index = ReadIndexFilePacked(index_path);
  if (!index.ok()) return index.status();
  return FromPacked(std::move(index).value(), options);
}

void QueryEngine::AdoptGeneration(QueryEngine next) {
  const uint64_t floor = epoch_ + 1;
  *this = std::move(next);
  if (epoch_ < floor) epoch_ = floor;
}

void QueryEngine::RaiseEpochToAtLeast(uint64_t epoch) {
  if (epoch_ < epoch) epoch_ = epoch;
}

Result<int> QueryEngine::Insert(const Graph& graph) {
  return InsertMapped(mapper_.Map(graph));
}

Result<int> QueryEngine::InsertMapped(
    const std::vector<uint8_t>& fingerprint) {
  return InsertMappedWithId(fingerprint, next_id_);
}

Result<int> QueryEngine::InsertMappedWithId(
    const std::vector<uint8_t>& fingerprint, int id) {
  if (fingerprint.size() != static_cast<size_t>(num_features())) {
    return Status::InvalidArgument(
        "fingerprint has " + std::to_string(fingerprint.size()) +
        " bits, engine dimension is " + std::to_string(num_features()));
  }
  // INT_MAX itself is unassignable: next_id_ would overflow, and the v2
  // reader's id cap would reject the engine's own snapshot.
  if (id == std::numeric_limits<int>::max()) {
    return Status::ResourceExhausted("graph id space exhausted");
  }
  // Per-engine ids must stay strictly ascending (row order == id order is
  // what makes the score-then-id tie-break equal the physical-row order).
  if (id < next_id_) {
    return Status::InvalidArgument(
        "id " + std::to_string(id) + " not after the engine's id cursor " +
        std::to_string(next_id_));
  }
  const int row = base_->num_rows() + delta_.AppendRow(fingerprint);
  tombstones_.push_back(0);
  row_ids_.push_back(id);
  ++alive_;
  ivf_.AddRow(delta_.row(row - base_->num_rows()), delta_.words_per_row(),
              row);
  if (options_.containment_prefilter) {
    for (size_t r = 0; r < fingerprint.size(); ++r) {
      // Rows only grow, so appending keeps each list sorted.
      if (fingerprint[r] != 0) supports_[r].push_back(row);
    }
  }
  next_id_ = id + 1;
  ++epoch_;
  return id;
}

Status QueryEngine::Remove(int id) {
  const int row = FindLiveRow(id);
  if (row < 0) {
    return Status::NotFound("no live graph with id " + std::to_string(id));
  }
  tombstones_[static_cast<size_t>(row)] = 1;
  ++num_tombstones_;
  --alive_;
  if (options_.containment_prefilter) {
    const std::vector<uint8_t> bits = RowBits(row);
    for (size_t r = 0; r < bits.size(); ++r) {
      if (bits[r] == 0) continue;
      std::vector<int>& list = supports_[r];
      const auto it = std::lower_bound(list.begin(), list.end(), row);
      GDIM_DCHECK(it != list.end() && *it == row);
      list.erase(it);
    }
  }
  ++epoch_;
  return Status::OK();
}

void QueryEngine::Compact() {
  if (num_tombstones_ == 0 && delta_.num_rows() == 0) return;
  const int total = total_rows();
  PackedBitMatrix merged = PackedBitMatrix::WithWidth(num_features());
  merged.Reserve(alive_);
  std::vector<int> new_ids;
  new_ids.reserve(static_cast<size_t>(alive_));
  std::vector<int> old_to_new(static_cast<size_t>(total), -1);
  const int base_n = base_->num_rows();
  for (int row = 0; row < total; ++row) {
    if (tombstones_[static_cast<size_t>(row)] != 0) continue;
    old_to_new[static_cast<size_t>(row)] =
        row < base_n ? merged.AppendRowFrom(*base_, row)
                     : merged.AppendRowFrom(delta_, row - base_n);
    new_ids.push_back(row_ids_[static_cast<size_t>(row)]);
  }
  // Install a fresh sealed segment rather than mutating in place: frozen
  // snapshots may still hold a refcount on the old one.
  base_ = std::make_shared<const PackedBitMatrix>(std::move(merged));
  delta_ = PackedBitMatrix::WithWidth(num_features());
  row_ids_ = std::move(new_ids);
  tombstones_.assign(static_cast<size_t>(alive_), 0);
  num_tombstones_ = 0;
  ++epoch_;
  // Prune the IVF postings: tombstoned rows drop out (old_to_new == -1),
  // the survivors renumber monotonically. Centroids are kept — only a
  // generation swap re-clusters.
  ivf_.Renumber(old_to_new);
  if (options_.containment_prefilter) {
    // The lists already hold exactly the live rows; renumber in place (the
    // old→new map is monotone, so each list stays sorted).
    for (std::vector<int>& list : supports_) {
      for (int& row : list) {
        row = old_to_new[static_cast<size_t>(row)];
        GDIM_DCHECK(row >= 0);
      }
    }
  }
}

std::vector<int> QueryEngine::alive_ids() const {
  std::vector<int> ids;
  ids.reserve(static_cast<size_t>(alive_));
  for (int row = 0; row < total_rows(); ++row) {
    if (tombstones_[static_cast<size_t>(row)] == 0) {
      ids.push_back(row_ids_[static_cast<size_t>(row)]);
    }
  }
  return ids;
}

PersistedIndex QueryEngine::ToPersistedIndex() const {
  PersistedIndex index;
  index.features = mapper_.features();
  index.db_bits.reserve(static_cast<size_t>(alive_));
  for (int row = 0; row < total_rows(); ++row) {
    if (tombstones_[static_cast<size_t>(row)] == 0) {
      index.db_bits.push_back(RowBits(row));
    }
  }
  index.ids = alive_ids();
  index.next_id = next_id_;
  return index;
}

std::vector<std::pair<int, const uint64_t*>> QueryEngine::LiveRowWords()
    const {
  std::vector<std::pair<int, const uint64_t*>> live;
  live.reserve(static_cast<size_t>(alive_));
  const int base_n = base_->num_rows();
  for (int row = 0; row < total_rows(); ++row) {
    if (tombstones_[static_cast<size_t>(row)] != 0) continue;
    live.emplace_back(row_ids_[static_cast<size_t>(row)],
                      row < base_n ? base_->row(row)
                                   : delta_.row(row - base_n));
  }
  return live;
}

std::vector<std::pair<int, const uint64_t*>> FrozenEngineState::LiveRowWords()
    const {
  std::vector<std::pair<int, const uint64_t*>> live;
  const int base_n = base->num_rows();
  const int total = base_n + delta.num_rows();
  live.reserve(static_cast<size_t>(total));
  for (int row = 0; row < total; ++row) {
    if (tombstones[static_cast<size_t>(row)] != 0) continue;
    live.emplace_back(row_ids[static_cast<size_t>(row)],
                      row < base_n ? base->row(row)
                                   : delta.row(row - base_n));
  }
  return live;
}

FrozenEngineState QueryEngine::Freeze() const {
  FrozenEngineState frozen;
  frozen.base = base_;  // refcount clone; Compact replaces, never mutates
  frozen.delta = delta_;
  frozen.tombstones = tombstones_;
  frozen.row_ids = row_ids_;
  frozen.ivf = ivf_;
  return frozen;
}

PersistedIvf PersistIvf(const IvfIndex& ivf,
                        const std::vector<uint8_t>& tombstones,
                        const std::vector<int>& row_ids) {
  PersistedIvf persisted;
  persisted.num_bits = ivf.centroids().num_bits();
  const size_t wpc = ivf.centroids().words_per_row();
  for (int b = 0; b < ivf.num_buckets(); ++b) {
    PersistedIvfBucket bucket;
    for (const int row : ivf.posting(b)) {
      // Persist live rows only, lifted to external ids: the snapshot has no
      // notion of this engine's physical row space, and tombstoned postings
      // would violate the reader's live-coverage invariant.
      if (tombstones[static_cast<size_t>(row)] == 0) {
        bucket.ids.push_back(row_ids[static_cast<size_t>(row)]);
      }
    }
    // The reader rejects empty buckets, and a bucket emptied by tombstones
    // carries no information worth restoring.
    if (bucket.ids.empty()) continue;
    const uint64_t* words = ivf.centroids().row(b);
    bucket.centroid_words.assign(words, words + wpc);
    persisted.buckets.push_back(std::move(bucket));
  }
  return persisted;
}

Status QueryEngine::Snapshot(const std::string& path,
                             IndexFormat format) const {
  if (format == IndexFormat::kV2Binary) {
    // Stream the live rows' packed words straight from the segments — no
    // per-row byte materialization, no unpack/repack round trip.
    const std::vector<std::pair<int, const uint64_t*>> live = LiveRowWords();
    return WriteIndexFileV2Words(
        mapper_.features(), static_cast<uint64_t>(live.size()),
        static_cast<uint64_t>(base_->words_per_row()),
        [&](uint64_t i) { return live[i].second; }, alive_ids(), next_id_,
        path);
  }
  if (format == IndexFormat::kV3Sectioned) {
    // The single-engine v3 snapshot carries DIMS + META + IVFX. The engine
    // tracks no reindex generation of its own (that is ShardedEngine state),
    // so META records generation 0 alongside the mutation epoch.
    const std::vector<std::pair<int, const uint64_t*>> live = LiveRowWords();
    const PersistedIvf ivf = PersistIvf(ivf_, tombstones_, row_ids_);
    PersistedMeta meta;
    meta.generation = 0;
    meta.epoch = epoch_;
    V3Sections sections;
    sections.meta = &meta;
    sections.ivf = &ivf;
    return WriteIndexFileV3Words(
        mapper_.features(), static_cast<uint64_t>(live.size()),
        static_cast<uint64_t>(base_->words_per_row()),
        [&](uint64_t i) { return live[i].second; }, alive_ids(), next_id_,
        sections, path);
  }
  return WriteIndexFile(ToPersistedIndex(), path, format);
}

int QueryEngine::FindLiveRow(int id) const {
  const auto it = std::lower_bound(row_ids_.begin(), row_ids_.end(), id);
  if (it == row_ids_.end() || *it != id) return -1;
  const int row = static_cast<int>(it - row_ids_.begin());
  return tombstones_[static_cast<size_t>(row)] == 0 ? row : -1;
}

std::vector<uint8_t> QueryEngine::RowBits(int row) const {
  return row < base_->num_rows()
             ? base_->UnpackRow(row)
             : delta_.UnpackRow(row - base_->num_rows());
}

std::vector<int> QueryEngine::PrefilterCandidateRows(
    const std::vector<uint8_t>& fingerprint) const {
  GDIM_DCHECK(options_.containment_prefilter);
  return PrefilterCandidates(fingerprint);
}

Ranking QueryEngine::QueryMappedCandidates(
    const std::vector<uint8_t>& fingerprint, const QueryOptions& options,
    const std::vector<int>& candidate_rows, ServeQueryStats* stats) const {
  const int k = std::max(options.k, 0);
  WallTimer timer;
  const std::vector<uint64_t> packed_query = base_->PackQuery(fingerprint);
  std::vector<double> scores;
  ScoreRows(packed_query, candidate_rows, &scores);
  Ranking top = TopKCandidates(candidate_rows, scores, k);
  for (RankedResult& r : top) r.id = row_ids_[static_cast<size_t>(r.id)];
  if (stats != nullptr) {
    stats->latency_ms = timer.Millis();
    int features_on = 0;
    for (uint8_t b : fingerprint) features_on += b != 0 ? 1 : 0;
    stats->features_on = features_on;
    stats->scanned = static_cast<int>(candidate_rows.size());
    stats->prefiltered = true;
  }
  return top;
}

std::vector<int> QueryEngine::PrefilterCandidates(
    const std::vector<uint8_t>& fingerprint) const {
  // Collect the inverted lists of the set bits, smallest support first so
  // the running intersection shrinks as fast as possible.
  std::vector<const std::vector<int>*> lists;
  for (size_t r = 0; r < fingerprint.size(); ++r) {
    if (fingerprint[r] != 0) lists.push_back(&supports_[r]);
  }
  return IntersectSupports(std::move(lists));
}

void QueryEngine::ScoreRows(const std::vector<uint64_t>& packed_query,
                            const std::vector<int>& rows,
                            std::vector<double>* scores) const {
  // Candidate lists are ascending, so base rows form a prefix and delta
  // rows a suffix; score in place (no per-query candidate-list copies).
  scores->resize(rows.size());
  const int base_n = base_->num_rows();
  for (size_t j = 0; j < rows.size(); ++j) {
    const int row = rows[j];
    (*scores)[j] =
        row < base_n
            ? base_->NormalizedDistance(packed_query, row)
            : delta_.NormalizedDistance(packed_query, row - base_n);
  }
}

Ranking QueryEngine::Query(const Graph& query, const QueryOptions& options,
                           ServeQueryStats* stats) const {
  WallTimer timer;
  // Stage 1: fingerprint the query onto the selected dimension, then hand
  // the mapped vector to the scan stages.
  Ranking top = QueryMapped(mapper_.Map(query), options, stats);
  // The mapped path timed only stages 2–3; charge the VF2 mapping too.
  if (stats != nullptr) stats->latency_ms = timer.Millis();
  return top;
}

Ranking QueryEngine::QueryMapped(const std::vector<uint8_t>& fingerprint,
                                 const QueryOptions& options,
                                 ServeQueryStats* stats) const {
  // A malformed k must not abort the serving process; k < 0 answers like
  // k == 0 (empty ranking). The tool boundary additionally rejects it.
  const int k = std::max(options.k, 0);
  WallTimer timer;

  int features_on = 0;
  for (uint8_t b : fingerprint) features_on += b != 0 ? 1 : 0;
  const std::vector<uint64_t> packed_query = base_->PackQuery(fingerprint);

  // Stage 2: optional containment prefilter over the inverted lists.
  bool prefiltered = false;
  std::vector<int> candidates;
  if (options.scan_mode == ScanMode::kAuto &&
      options_.containment_prefilter && features_on > 0) {
    candidates = PrefilterCandidates(fingerprint);
    // Take the narrowed path only when it actually narrows: some candidate
    // survived (an empty intersection is a degenerate "scan of zero rows",
    // not a narrowed scan — the documented fallback applies, also at
    // k == 0), enough candidates to answer, and fewer than a full scan of
    // the live rows would touch.
    prefiltered = !candidates.empty() &&
                  static_cast<int>(candidates.size()) >= k &&
                  static_cast<int>(candidates.size()) < alive_;
  }

  // Approximate stage 2 (MODE=approx): the IVF probe collects the live
  // members of the nprobe nearest centroid buckets, and stage 3 then
  // exact-scores exactly those rows through the same machinery as the
  // prefiltered path. The answer differs from kFull only by rows the probe
  // pruned — at NPROBE=all nothing is pruned, the pool is precisely the
  // live rows, and the ranking is bit-identical to a full scan.
  const bool approx = options.scan_mode == ScanMode::kApprox;
  double ivf_probe_usec = 0.0;
  if (approx) {
    const int nprobe =
        options.nprobe > 0 ? options.nprobe : ivf_.default_nprobe();
    WallTimer probe_timer;
    candidates = ivf_.Probe(packed_query, nprobe, tombstones_);
    ivf_probe_usec = probe_timer.Micros();
  }

  // Stage 3: popcount distance scan (narrowed or full) + deterministic rank.
  // Rankings are computed over physical rows, then mapped to external ids;
  // row order is ascending-id, so the score-then-id tie-break is preserved.
  Ranking top;
  int scanned;
  std::vector<double> scores;
  if (prefiltered || approx) {
    ScoreRows(packed_query, candidates, &scores);
    top = TopKCandidates(candidates, scores, k);
    scanned = static_cast<int>(candidates.size());
  } else {
    scores.resize(static_cast<size_t>(total_rows()));
    base_->ScoreAllInto(packed_query, scores.data());
    delta_.ScoreAllInto(packed_query, scores.data() + base_->num_rows());
    if (num_tombstones_ > 0) {
      for (size_t row = 0; row < scores.size(); ++row) {
        if (tombstones_[row] != 0) scores[row] = kRemovedScore;
      }
    }
    top = TopKByScores(scores, k);
    // Tombstone sentinels can only appear when k exceeds the live count.
    while (!top.empty() && top.back().score == kRemovedScore) top.pop_back();
    scanned = total_rows();
  }
  for (RankedResult& r : top) r.id = row_ids_[static_cast<size_t>(r.id)];

  if (stats != nullptr) {
    stats->latency_ms = timer.Millis();
    stats->features_on = features_on;
    stats->scanned = scanned;
    stats->prefiltered = prefiltered;
    stats->approx = approx;
    stats->rows_pruned = approx ? alive_ - scanned : 0;
    stats->ivf_probe_usec = ivf_probe_usec;
  }
  return top;
}

void FillServeBatchReport(double wall_ms,
                          const std::vector<ServeQueryStats>& stats,
                          ServeBatchReport* report) {
  report->wall_ms = wall_ms;
  report->qps = wall_ms > 0.0
                    ? static_cast<double>(stats.size()) / (wall_ms * 1e-3)
                    : 0.0;
  std::vector<double> latencies;
  latencies.reserve(stats.size());
  report->scanned_rows = 0;
  report->prefiltered_queries = 0;
  report->approx_queries = 0;
  report->approx_candidates_scanned = 0;
  report->approx_rows_pruned = 0;
  report->stage_scan_usec.clear();
  report->stage_ivf_probe_usec.clear();
  report->stage_gather_usec.clear();
  for (const ServeQueryStats& s : stats) {
    latencies.push_back(s.latency_ms);
    report->scanned_rows += s.scanned;
    report->prefiltered_queries += s.prefiltered ? 1 : 0;
    if (s.approx) {
      ++report->approx_queries;
      report->approx_candidates_scanned += s.scanned;
      report->approx_rows_pruned += s.rows_pruned;
    }
    report->stage_scan_usec.insert(report->stage_scan_usec.end(),
                                   s.shard_scan_usec.begin(),
                                   s.shard_scan_usec.end());
    if (s.ivf_probe_usec > 0.0) {
      report->stage_ivf_probe_usec.push_back(s.ivf_probe_usec);
    }
    if (s.gather_usec > 0.0) {
      report->stage_gather_usec.push_back(s.gather_usec);
    }
  }
  report->latency_ms = SummarizeLatencies(std::move(latencies));
}

std::vector<Ranking> QueryEngine::QueryMappedTile(
    const std::vector<uint8_t>* fingerprints, int count,
    const QueryOptions& options, std::vector<ServeQueryStats>* stats) const {
  const int k = std::max(options.k, 0);
  WallTimer timer;
  std::vector<Ranking> results(static_cast<size_t>(std::max(count, 0)));
  if (stats != nullptr) {
    stats->assign(static_cast<size_t>(std::max(count, 0)),
                  ServeQueryStats{});
  }
  if (count <= 0) return results;

  const int total = total_rows();
  std::vector<std::vector<uint64_t>> packed(static_cast<size_t>(count));
  std::vector<const uint64_t*> query_ptrs(static_cast<size_t>(count));
  for (int q = 0; q < count; ++q) {
    packed[static_cast<size_t>(q)] =
        base_->PackQuery(fingerprints[q]);
    query_ptrs[static_cast<size_t>(q)] =
        packed[static_cast<size_t>(q)].data();
  }
  // One score column per query; base and delta fill disjoint row ranges of
  // every column, exactly like the single-query full-scan path.
  std::vector<std::vector<double>> scores(
      static_cast<size_t>(count),
      std::vector<double>(static_cast<size_t>(total)));
  std::vector<double*> outs(static_cast<size_t>(count));
  for (int q = 0; q < count; ++q) {
    outs[static_cast<size_t>(q)] = scores[static_cast<size_t>(q)].data();
  }
  base_->ScoreAllMultiInto(query_ptrs.data(), count, outs.data());
  if (delta_.num_rows() > 0) {
    std::vector<double*> delta_outs(static_cast<size_t>(count));
    for (int q = 0; q < count; ++q) {
      delta_outs[static_cast<size_t>(q)] =
          outs[static_cast<size_t>(q)] + base_->num_rows();
    }
    delta_.ScoreAllMultiInto(query_ptrs.data(), count, delta_outs.data());
  }

  for (int q = 0; q < count; ++q) {
    std::vector<double>& column = scores[static_cast<size_t>(q)];
    if (num_tombstones_ > 0) {
      for (size_t row = 0; row < column.size(); ++row) {
        if (tombstones_[row] != 0) column[row] = kRemovedScore;
      }
    }
    Ranking top = TopKByScores(column, k);
    while (!top.empty() && top.back().score == kRemovedScore) top.pop_back();
    for (RankedResult& r : top) r.id = row_ids_[static_cast<size_t>(r.id)];
    results[static_cast<size_t>(q)] = std::move(top);
  }

  if (stats != nullptr) {
    const double tile_ms = timer.Millis();
    for (int q = 0; q < count; ++q) {
      ServeQueryStats& s = (*stats)[static_cast<size_t>(q)];
      s.latency_ms = tile_ms;
      int features_on = 0;
      for (uint8_t b : fingerprints[q]) features_on += b != 0 ? 1 : 0;
      s.features_on = features_on;
      s.scanned = total;
      s.prefiltered = false;
    }
  }
  return results;
}

std::vector<Ranking> QueryEngine::QueryBatch(
    const GraphDatabase& queries, const QueryOptions& options,
    ServeBatchReport* report,
    std::vector<ServeQueryStats>* per_query) const {
  WallTimer batch_timer;
  const int n = static_cast<int>(queries.size());
  std::vector<Ranking> results(queries.size());
  std::vector<ServeQueryStats> stats(queries.size());
  // Stage 1 for the whole batch in one parallel pass; the scans below then
  // touch packed words only.
  const std::vector<std::vector<uint8_t>> fingerprints =
      mapper_.MapAll(queries, options_.threads);
  if (options.scan_mode == ScanMode::kApprox ||
      (options.scan_mode == ScanMode::kAuto &&
       options_.containment_prefilter)) {
    // The stage-2 decision (prefilter intersection or IVF probe) yields a
    // per-query candidate pool, so the batch cannot share row passes; keep
    // the per-query path.
    ParallelFor(
        0, n,
        [&](int i) {
          results[static_cast<size_t>(i)] =
              QueryMapped(fingerprints[static_cast<size_t>(i)], options,
                          &stats[static_cast<size_t>(i)]);
        },
        options_.threads);
  } else {
    // Block-tiled multi-query scan: tiles of tile_width() queries share
    // every row-block pass. Tile boundaries never affect results — scores
    // are bit-identical for every kernel and tile split.
    const int tile = ActiveScanKernel().tile_width();
    const int num_tiles = (n + tile - 1) / tile;
    ParallelFor(
        0, num_tiles,
        [&](int t) {
          const int begin = t * tile;
          const int count = std::min(tile, n - begin);
          std::vector<ServeQueryStats> tile_stats;
          std::vector<Ranking> tile_results = QueryMappedTile(
              fingerprints.data() + begin, count, options, &tile_stats);
          for (int j = 0; j < count; ++j) {
            results[static_cast<size_t>(begin + j)] =
                std::move(tile_results[static_cast<size_t>(j)]);
            stats[static_cast<size_t>(begin + j)] =
                tile_stats[static_cast<size_t>(j)];
          }
        },
        options_.threads);
  }
  const double wall_ms = batch_timer.Millis();

  if (report != nullptr) FillServeBatchReport(wall_ms, stats, report);
  if (per_query != nullptr) *per_query = std::move(stats);
  return results;
}

}  // namespace gdim
